package lossyckpt_test

import (
	"testing"

	lossyckpt "repro"
)

// TestFacadeEndToEnd exercises the public API exactly as the README's
// quickstart does: build a system, solve under lossy checkpointing,
// fail, recover, converge.
func TestFacadeEndToEnd(t *testing.T) {
	a := lossyckpt.Poisson3D(8)
	b := lossyckpt.OnesRHS(a.Rows)
	cg := lossyckpt.NewCG(a, nil, b, nil, lossyckpt.SeqSpace{}, lossyckpt.SolverOptions{RTol: 1e-7})
	mgr, err := lossyckpt.NewManager(lossyckpt.ManagerConfig{
		Scheme:   lossyckpt.Lossy,
		Interval: 5,
		SZParams: lossyckpt.SZParams{Mode: lossyckpt.PWRel, ErrorBound: 1e-4},
	}, lossyckpt.NewMemStorage(), cg)
	if err != nil {
		t.Fatal(err)
	}
	failed := false
	res, err := lossyckpt.RunToConvergence(cg, lossyckpt.SolverOptions{}, func(it int, rnorm float64) error {
		if _, err := mgr.MaybeCheckpoint(); err != nil {
			return err
		}
		if it == 12 && !failed {
			failed = true
			if _, err := mgr.Recover(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("facade solve did not converge")
	}
	if !failed {
		t.Fatal("failure injection did not run")
	}
}

// TestFacadeAsyncCheckpointing drives the async pipeline through the
// public API: Manager in async mode, the standalone AsyncCheckpointer,
// the SetKeep retention knob, and the overlapped-cost model helpers.
func TestFacadeAsyncCheckpointing(t *testing.T) {
	a := lossyckpt.Poisson3D(8)
	b := lossyckpt.OnesRHS(a.Rows)
	cg := lossyckpt.NewCG(a, nil, b, nil, lossyckpt.SeqSpace{}, lossyckpt.SolverOptions{RTol: 1e-7})
	mgr, err := lossyckpt.NewManager(lossyckpt.ManagerConfig{
		Scheme:   lossyckpt.Lossy,
		Interval: 5,
		Async:    true,
		SZParams: lossyckpt.SZParams{Mode: lossyckpt.PWRel, ErrorBound: 1e-4},
	}, lossyckpt.NewMemStorage(), cg)
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr.Checkpointer().SetKeep(3); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Checkpointer().SetKeep(0); err == nil {
		t.Fatal("SetKeep(0) must be rejected through the facade")
	}
	failed := false
	res, err := lossyckpt.RunToConvergence(cg, lossyckpt.SolverOptions{}, func(it int, rnorm float64) error {
		if _, err := mgr.MaybeCheckpoint(); err != nil {
			return err
		}
		if it == 12 && !failed {
			failed = true
			if _, err := mgr.Recover(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("async facade solve did not converge")
	}
	if _, err := mgr.WaitCheckpoint(); err != nil {
		t.Fatal(err)
	}
	if stats := mgr.AsyncCheckpointer().Stats(); stats.Saves == 0 {
		t.Fatal("no async saves recorded")
	}

	// Standalone pipeline usage.
	ac := lossyckpt.NewAsyncCheckpointer(lossyckpt.NewCheckpointer(lossyckpt.NewMemStorage(), lossyckpt.RawEncoder{}))
	x := []float64{1, 2, 3}
	tk, err := ac.SaveAsync(&lossyckpt.CheckpointSnapshot{Iteration: 1, Vectors: map[string][]float64{"x": x}})
	if err != nil {
		t.Fatal(err)
	}
	if info, err := tk.Wait(); err != nil || info.Seq != 1 {
		t.Fatalf("ticket wait: %+v %v", info, err)
	}

	// Overlapped-cost model: background hidden by the interval.
	if got := lossyckpt.AsyncEffectiveStall(0.5, 30, 120); got != 0.5 {
		t.Fatalf("AsyncEffectiveStall = %v, want 0.5", got)
	}
	if a, s := lossyckpt.AsyncOverheadRatio(1.0/3600, 0.5, 30, 120), lossyckpt.ExpectedOverheadRatio(1.0/3600, 30.5); a >= s {
		t.Fatalf("async ratio %v not below sync %v", a, s)
	}
}

// TestFacadeModel sanity-checks the re-exported model functions.
func TestFacadeModel(t *testing.T) {
	if got := lossyckpt.YoungInterval(3600, 25); got < 400 || got > 440 {
		t.Fatalf("YoungInterval = %v, want ≈424", got)
	}
	if got := lossyckpt.ExpectedOverheadRatio(1.0/3600, 120); got < 0.3 || got > 0.5 {
		t.Fatalf("ExpectedOverheadRatio = %v", got)
	}
	if got := lossyckpt.MaxExtraIterations(120, 25, 1.0/3600, 1.2); got < 400 || got > 600 {
		t.Fatalf("MaxExtraIterations = %v, want ≈500", got)
	}
}

// TestFacadeCompression round-trips the re-exported compressor.
func TestFacadeCompression(t *testing.T) {
	x := lossyckpt.SmoothField(5000, 1)
	comp, err := lossyckpt.CompressSZ(x, lossyckpt.SZParams{Mode: lossyckpt.AbsBound, ErrorBound: 1e-5})
	if err != nil {
		t.Fatal(err)
	}
	got, err := lossyckpt.DecompressSZ(comp)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(x) {
		t.Fatalf("round trip length %d != %d", len(got), len(x))
	}
	for i := range x {
		if d := x[i] - got[i]; d > 1e-5*1.000001 || d < -1e-5*1.000001 {
			t.Fatalf("bound violated at %d: %g", i, d)
		}
	}
}

// TestExperimentRegistryViaFacade lists and runs one experiment.
func TestExperimentRegistryViaFacade(t *testing.T) {
	ids := lossyckpt.ExperimentIDs()
	if len(ids) != 12 {
		t.Fatalf("expected 12 artifacts, got %v", ids)
	}
	res, err := lossyckpt.RunExperiment("fig1", lossyckpt.ExperimentConfig{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if res == nil {
		t.Fatal("nil result")
	}
}

// TestFacadeTieredRecovery drives the tiered ABFT recovery chain
// through the public API: guard a CG solve, recover a lost rank
// checkpoint-free, then corrupt the retained redundancy and watch the
// chain degrade to the checkpoint tier, all via facade names.
func TestFacadeTieredRecovery(t *testing.T) {
	a := lossyckpt.Poisson3D(8)
	b := lossyckpt.OnesRHS(a.Rows)
	cg := lossyckpt.NewCG(a, nil, b, nil, lossyckpt.SeqSpace{}, lossyckpt.SolverOptions{RTol: 1e-7})
	guard, err := lossyckpt.NewABFTGuard(a, b, cg, lossyckpt.ABFTConfig{Seed: 1, Method: lossyckpt.ABFTExactState})
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := lossyckpt.NewManager(lossyckpt.ManagerConfig{
		Scheme:   lossyckpt.Lossy,
		SZParams: lossyckpt.SZParams{Mode: lossyckpt.PWRel, ErrorBound: 1e-4},
		ABFT:     guard,
	}, lossyckpt.NewMemStorage(), cg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		cg.Step()
		guard.Observe()
	}
	if _, err := mgr.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	x0 := make([]float64, a.Rows)

	// Tier 0: checkpoint-free reconstruction, no PFS reads.
	guard.FailNextRank()
	rep, err := mgr.RecoverTiered(x0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Used != lossyckpt.TierABFT || rep.ReadBytes() != 0 {
		t.Fatalf("report %+v, want a read-free abft recovery", rep)
	}

	// Corrupted redundancy: the chain degrades to the checkpoint tier.
	guard.CorruptRetained()
	guard.FailNextRank()
	rep, err = mgr.RecoverTiered(x0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Used != lossyckpt.TierCheckpoint || rep.ReadBytes() == 0 {
		t.Fatalf("report %+v, want a paid checkpoint-tier recovery", rep)
	}
	if st := guard.Stats(); st.Reconstructions != 1 || st.Rejected != 1 {
		t.Fatalf("guard stats %+v, want one acceptance and one rejection", st)
	}

	res, err := lossyckpt.RunToConvergence(cg, lossyckpt.SolverOptions{}, func(int, float64) error {
		guard.Observe()
		return nil
	})
	if err != nil || !res.Converged {
		t.Fatalf("post-recovery solve: converged=%v err=%v", res != nil && res.Converged, err)
	}

	// The injection grammar parses through the facade.
	plan, err := lossyckpt.ParseFailurePlan("proc@3,abft+proc@6", 1)
	if err != nil {
		t.Fatal(err)
	}
	if kinds := plan.Take(6); len(kinds) != 3 || kinds[0] != lossyckpt.FailProcLoss {
		t.Fatalf("Take(6) = %v, want [proc abft proc]", kinds)
	}

	// Huang–Abraham verification on the operator's hot path.
	co := lossyckpt.NewChecksumOperator(a)
	dst := make([]float64, a.Rows)
	co.MulVec(dst, b)
	if !co.Verified() || co.Applications() != 1 {
		t.Fatalf("checksum operator: verified=%v applications=%d", co.Verified(), co.Applications())
	}
}
