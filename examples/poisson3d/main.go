// Distributed solve demo: the paper's experiments run PETSc over MPI;
// this example runs the same distributed machinery of this repository
// — row-partitioned matrices with ghost exchange, allreduce-backed dot
// products — across simulated ranks, solving the 3D Poisson system
// with CG, taking per-rank lossy checkpoints, and recovering every
// rank after an injected failure.
package main

import (
	"fmt"
	"log"
	"sync/atomic"

	lossyckpt "repro"
	"repro/internal/mpi"
	"repro/internal/solver"
	"repro/internal/sparse"
)

const (
	grid  = 12 // 1,728 unknowns
	ranks = 4
)

func main() {
	a := sparse.Poisson3D(grid)
	b := sparse.OnesRHS(a.Rows)
	var totalCkptBytes int64

	err := mpi.Run(ranks, func(c *mpi.Comm) error {
		d := sparse.NewDist(c, a)
		lo, n := d.RowStart(), d.LocalRows()
		bl := append([]float64(nil), b[lo:lo+n]...)

		cg := solver.NewCG(d, nil, bl, nil, solver.MPISpace{Comm: c}, solver.Options{RTol: 1e-8})
		// Each rank checkpoints its owned block — the paper's per-rank
		// MPI-IO layout.
		mgr, err := lossyckpt.NewManager(lossyckpt.ManagerConfig{
			Scheme:   lossyckpt.Lossy,
			Interval: 10,
			SZParams: lossyckpt.SZParams{Mode: lossyckpt.PWRel, ErrorBound: 1e-4},
		}, lossyckpt.NewMemStorage(), cg)
		if err != nil {
			return err
		}

		failed := false
		res, err := solver.RunToConvergence(cg, solver.Options{MaxIter: 100000},
			func(it int, rnorm float64) error {
				if info, err := mgr.MaybeCheckpoint(); err != nil {
					return err
				} else if info != nil {
					atomic.AddInt64(&totalCkptBytes, int64(info.Bytes))
				}
				// All ranks fail together at iteration 25 (fail-stop
				// takes down the job; every rank recovers from its own
				// checkpoint).
				if it == 25 && !failed {
					failed = true
					if _, err := mgr.Recover(); err != nil {
						return err
					}
				}
				return nil
			})
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			fmt.Printf("distributed CG on %d ranks: converged=%v in %d iterations (residual %.2e)\n",
				ranks, res.Converged, res.Iterations, res.FinalResidual)
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("total lossy checkpoint traffic across ranks: %d bytes (raw would be %d)\n",
		totalCkptBytes, 8*a.Rows)
}
