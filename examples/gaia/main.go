// Gaia-style least squares: the paper's §1 opening example is the Gaia
// astrometric solution — a sparse least-squares system with ~7.2e10
// equations solved iteratively for days on 2,048 nodes. This example
// solves a (much smaller) sparse overdetermined system min ‖Gy − o‖₂
// by running CG on the normal equations GᵀG·y = Gᵀo, protected by
// lossy checkpointing with two injected failures.
package main

import (
	"fmt"
	"log"
	"math/rand"

	lossyckpt "repro"
)

const (
	nStars       = 1500 // unknowns (star parameters)
	nObservation = 6000 // observations (equations)
)

func main() {
	rng := rand.New(rand.NewSource(7))

	// G: each observation couples a star parameter with two calibration
	// neighbours — sparse, tall, full rank.
	g := lossyckpt.NewMatrixBuilder(nObservation, nStars)
	for i := 0; i < nObservation; i++ {
		s := rng.Intn(nStars)
		g.Add(i, s, 1+rng.Float64())
		g.Add(i, (s+1)%nStars, 0.3*rng.NormFloat64())
		g.Add(i, (s+7)%nStars, 0.1*rng.NormFloat64())
	}
	gm := g.Build()

	// Ground truth and observations o = G·yTrue + noise.
	yTrue := lossyckpt.SmoothField(nStars, 3)
	o := make([]float64, nObservation)
	gm.MulVec(o, yTrue)
	for i := range o {
		o[i] += 1e-8 * rng.NormFloat64()
	}

	// Normal equations: A = GᵀG (SPD), b = Gᵀo.
	gt := gm.Transpose()
	b := make([]float64, nStars)
	gt.MulVec(b, o)
	a := multiplySparse(gt, gm)

	cg := lossyckpt.NewCG(a, nil, b, nil, lossyckpt.SeqSpace{}, lossyckpt.SolverOptions{RTol: 1e-10})
	mgr, err := lossyckpt.NewManager(lossyckpt.ManagerConfig{
		Scheme:   lossyckpt.Lossy,
		Interval: 25,
		SZParams: lossyckpt.SZParams{Mode: lossyckpt.PWRel, ErrorBound: 1e-5},
	}, lossyckpt.NewMemStorage(), cg)
	if err != nil {
		log.Fatal(err)
	}

	failures := map[int]bool{40: true, 110: true}
	res, err := lossyckpt.RunToConvergence(cg, lossyckpt.SolverOptions{MaxIter: 100000},
		func(it int, rnorm float64) error {
			if _, err := mgr.MaybeCheckpoint(); err != nil {
				return err
			}
			if failures[it] {
				delete(failures, it)
				rolledTo, err := mgr.Recover()
				if err != nil {
					return err
				}
				fmt.Printf("failure at iteration %d -> recovered to %d\n", it, rolledTo)
			}
			return nil
		})
	if err != nil {
		log.Fatal(err)
	}

	// Solution quality against ground truth.
	var num, den float64
	for i, v := range cg.X() {
		d := v - yTrue[i]
		num += d * d
		den += yTrue[i] * yTrue[i]
	}
	fmt.Printf("converged=%v iterations=%d residual=%.2e\n", res.Converged, res.Iterations, res.FinalResidual)
	fmt.Printf("relative solution error vs ground truth: %.2e\n", num/den)
}

// multiplySparse computes GᵀG through the builder (adequate for the
// example's size; a production sparse GEMM lives outside this demo).
func multiplySparse(gt, g *lossyckpt.CSR) *lossyckpt.CSR {
	b := lossyckpt.NewMatrixBuilder(gt.Rows, g.Cols)
	// Row i of Gᵀ dotted with columns of G: accumulate via G's rows.
	// (GᵀG)_{jk} = Σ_i G_{ij} G_{ik}: iterate rows of G and form outer
	// products of their sparse entries.
	for i := 0; i < g.Rows; i++ {
		lo, hi := g.RowPtr[i], g.RowPtr[i+1]
		for p := lo; p < hi; p++ {
			for q := lo; q < hi; q++ {
				b.Add(g.ColIdx[p], g.ColIdx[q], g.Val[p]*g.Val[q])
			}
		}
	}
	return b.Build()
}
