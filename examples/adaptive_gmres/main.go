// Theorem-3 demo: GMRES with the adaptive lossy-checkpoint error
// bound. The paper proves (Theorem 3) that if the compressor's
// pointwise-relative bound tracks ‖r⁽ᵗ⁾‖/‖b‖, a lossy recovery leaves
// the GMRES residual at its pre-failure order — so convergence is not
// delayed (expected N′ = 0). This example prints the adaptive bound
// and the resulting checkpoint sizes as GMRES converges, then
// demonstrates a delay-free recovery.
package main

import (
	"fmt"
	"log"

	lossyckpt "repro"
)

func main() {
	a := lossyckpt.Poisson3D(12)
	b := lossyckpt.OnesRHS(a.Rows)
	bnorm := lossyckpt.SeqSpace{}.Norm2(b)

	// Failure-free reference.
	ref := lossyckpt.NewGMRES(a, nil, b, nil, 10, lossyckpt.SeqSpace{}, lossyckpt.SolverOptions{RTol: 1e-9})
	resRef, err := lossyckpt.RunToConvergence(ref, lossyckpt.SolverOptions{MaxIter: 100000}, nil)
	if err != nil || !resRef.Converged {
		log.Fatalf("reference GMRES failed: %v", err)
	}
	fmt.Printf("failure-free GMRES: %d iterations\n", resRef.Iterations)

	s := lossyckpt.NewGMRES(a, nil, b, nil, 10, lossyckpt.SeqSpace{}, lossyckpt.SolverOptions{RTol: 1e-9})
	mgr, err := lossyckpt.NewManager(lossyckpt.ManagerConfig{
		Scheme:    lossyckpt.Lossy,
		Interval:  8,
		Adaptive:  true, // Theorem 3: eb = ‖r‖/‖b‖ per checkpoint
		AdaptiveC: 1,
		BNorm:     bnorm,
	}, lossyckpt.NewMemStorage(), s)
	if err != nil {
		log.Fatal(err)
	}

	failAt := resRef.Iterations / 2
	rollback := 0
	res, err := lossyckpt.RunToConvergence(s, lossyckpt.SolverOptions{MaxIter: 100000},
		func(it int, rnorm float64) error {
			if info, err := mgr.MaybeCheckpoint(); err != nil {
				return err
			} else if info != nil {
				eb := lossyckpt.GMRESAdaptiveBound(rnorm, bnorm, 1)
				fmt.Printf("  ckpt at it %3d: adaptive eb %.2e, %5d bytes (ratio %6.1fx)\n",
					it, eb, info.Bytes, info.CompressionRatio)
			}
			if it == failAt {
				failAt = -1
				rolledTo, err := mgr.Recover()
				if err != nil {
					return err
				}
				rollback = it - rolledTo
				fmt.Printf("  failure at it %d -> lossy recovery (rollback %d iterations)\n", it, rollback)
			}
			return nil
		})
	if err != nil {
		log.Fatal(err)
	}
	extra := res.Iterations - resRef.Iterations - rollback
	fmt.Printf("with lossy recovery: %d iterations (rollback %d, N' = %d)\n",
		res.Iterations, rollback, extra)
	fmt.Println("Theorem 3 predicts N' ≈ 0: the recovery does not delay convergence.")
}
