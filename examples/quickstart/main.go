// Quickstart: solve a sparse SPD system with CG under lossy
// checkpointing, kill the solver mid-run, and recover from the
// compressed checkpoint — the 60-second tour of the public API.
package main

import (
	"fmt"
	"log"

	lossyckpt "repro"
)

func main() {
	// 1. A linear system: the paper's 3D Poisson operator (Eq. 15).
	a := lossyckpt.Poisson3D(16) // 4,096 unknowns
	b := lossyckpt.OnesRHS(a.Rows)

	// 2. A solver with a step-level API.
	cg := lossyckpt.NewCG(a, nil, b, nil, lossyckpt.SeqSpace{}, lossyckpt.SolverOptions{RTol: 1e-7})

	// 3. The lossy checkpointing scheme: only the solution vector is
	//    saved, compressed within a pointwise-relative error bound.
	mgr, err := lossyckpt.NewManager(lossyckpt.ManagerConfig{
		Scheme:   lossyckpt.Lossy,
		Interval: 10, // checkpoint every 10 iterations
		SZParams: lossyckpt.SZParams{Mode: lossyckpt.PWRel, ErrorBound: 1e-4},
	}, lossyckpt.NewMemStorage(), cg)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Iterate; at iteration 17 a "failure" strikes and we recover
	//    from the latest lossy checkpoint.
	failed := false
	res, err := lossyckpt.RunToConvergence(cg, lossyckpt.SolverOptions{}, func(it int, rnorm float64) error {
		if info, err := mgr.MaybeCheckpoint(); err != nil {
			return err
		} else if info != nil {
			fmt.Printf("  checkpoint at iteration %d: %d bytes (ratio %.1fx)\n",
				it, info.Bytes, info.CompressionRatio)
		}
		if it == 17 && !failed {
			failed = true
			rolledTo, err := mgr.Recover()
			if err != nil {
				return err
			}
			fmt.Printf("  failure at iteration %d -> recovered from checkpointed iteration %d\n", it, rolledTo)
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("converged=%v after %d iterations, residual %.2e\n",
		res.Converged, res.Iterations, res.FinalResidual)
}
