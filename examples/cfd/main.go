// CFD pressure-correction demo: the paper's §1 motivation. SIMPLE-like
// incompressible-flow timestepping spends most of its time in a
// Poisson pressure solve; checkpointing the iterative solver therefore
// dominates the application's checkpointing cost. This example runs a
// toy 2D pressure-correction loop where every timestep solves a
// pressure Poisson system with CG under lossy checkpointing, and one
// timestep is interrupted by a failure.
package main

import (
	"fmt"
	"log"
	"math"

	lossyckpt "repro"
)

const (
	gridN     = 24 // pressure grid (576 cells)
	timesteps = 5
)

func main() {
	a := lossyckpt.Poisson2D(gridN)
	n := a.Rows

	// A divergence field that evolves across timesteps (the "velocity
	// predictor" of SIMPLE produces a new RHS every outer iteration).
	div := make([]float64, n)
	pressure := make([]float64, n)

	storage := lossyckpt.NewMemStorage()
	totalIters := 0
	for step := 0; step < timesteps; step++ {
		// Update the divergence source: a translating smooth blob.
		for j := 0; j < gridN; j++ {
			for i := 0; i < gridN; i++ {
				x := float64(i)/gridN - 0.3 - 0.1*float64(step)
				y := float64(j)/gridN - 0.5
				div[j*gridN+i] = math.Exp(-40 * (x*x + y*y))
			}
		}

		// Pressure solve with warm start from the previous timestep —
		// exactly the iterative kernel the paper protects.
		cg := lossyckpt.NewCG(a, nil, div, pressure, lossyckpt.SeqSpace{},
			lossyckpt.SolverOptions{RTol: 1e-8})
		mgr, err := lossyckpt.NewManager(lossyckpt.ManagerConfig{
			Scheme:   lossyckpt.Lossy,
			Interval: 8,
			SZParams: lossyckpt.SZParams{Mode: lossyckpt.PWRel, ErrorBound: 1e-5},
		}, storage, cg)
		if err != nil {
			log.Fatal(err)
		}

		failAt := -1
		if step == 2 {
			failAt = 20 // one failure in the middle of timestep 2
		}
		res, err := lossyckpt.RunToConvergence(cg, lossyckpt.SolverOptions{}, func(it int, rnorm float64) error {
			if _, err := mgr.MaybeCheckpoint(); err != nil {
				return err
			}
			if it == failAt {
				failAt = -1
				rolledTo, err := mgr.Recover()
				if err != nil {
					return err
				}
				fmt.Printf("  [step %d] failure mid-solve -> lossy recovery to iteration %d\n",
					step, rolledTo)
			}
			return nil
		})
		if err != nil {
			log.Fatal(err)
		}
		copy(pressure, cg.X())
		totalIters += res.Iterations

		// Pressure correction applied to the (implicit) velocity field;
		// here we just report the solve.
		fmt.Printf("timestep %d: pressure solve converged=%v in %d iterations (residual %.2e)\n",
			step, res.Converged, res.Iterations, res.FinalResidual)
	}
	fmt.Printf("completed %d timesteps, %d total CG iterations\n", timesteps, totalIters)
}
