package lossyckpt_test

import (
	"repro/internal/core"
	"repro/internal/failure"
	"repro/internal/fti"
	"repro/internal/sim"
	"repro/internal/solver"
)

// simRunJacobi drives one lossy-checkpointed Jacobi run in virtual
// time and returns the total simulated seconds (shared by the interval
// ablation bench).
func simRunJacobi(s solver.Checkpointable, mgr *core.Manager, n int, tit, interval, ckptCost float64) (float64, error) {
	out, err := sim.Run(sim.Config{
		Stepper:           s,
		Manager:           mgr,
		X0:                make([]float64, n),
		TitSeconds:        tit,
		IntervalSeconds:   interval,
		CheckpointSeconds: func(fti.Info) float64 { return ckptCost },
		RecoverySeconds:   func(fti.Info) float64 { return ckptCost * 1.2 },
		Failures:          failure.NewInjector(3600, 5),
		MaxIterations:     5_000_000,
	})
	if err != nil {
		return 0, err
	}
	return out.SimSeconds, nil
}
