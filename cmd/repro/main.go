// Command repro regenerates the paper's tables and figures.
//
// Usage:
//
//	repro -exp fig10            # one experiment, full configuration
//	repro -exp all -quick       # everything, reduced sizes
//	repro -list                 # show available experiment IDs
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment ID (fig1..fig10, table3, adapt) or 'all'")
	quick := flag.Bool("quick", false, "reduced problem sizes and trial counts")
	seed := flag.Int64("seed", 1, "random seed for stochastic experiments")
	trials := flag.Int("trials", 0, "override per-experiment trial count (0 = default)")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Printf("%-8s %s\n", id, experiments.Title(id))
		}
		return
	}

	ids := experiments.IDs()
	if *exp != "all" {
		ids = []string{*exp}
	}
	cfg := experiments.Config{Quick: *quick, Seed: *seed, Trials: *trials}
	for _, id := range ids {
		fmt.Printf("==== %s: %s ====\n", id, experiments.Title(id))
		start := time.Now()
		res, err := experiments.Run(id, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "repro: %s: %v\n", id, err)
			os.Exit(1)
		}
		if err := res.WriteText(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "repro: %s render: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Printf("---- %s finished in %.1fs ----\n\n", id, time.Since(start).Seconds())
	}
}
