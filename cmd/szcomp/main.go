// Command szcomp compresses and decompresses raw little-endian
// float64 files with the repository's error-bounded compressors — the
// standalone equivalent of the sz/zfp command-line tools.
//
// Usage:
//
//	szcomp -c -in state.f64 -out state.sz -mode pwrel -eb 1e-4
//	szcomp -d -in state.sz  -out state.f64
//	szcomp -c -in state.f64 -out state.zfp -codec zfp -eb 1e-6
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"math"
	"os"

	"repro/internal/sz"
	"repro/internal/zfp"
)

func main() {
	compress := flag.Bool("c", false, "compress")
	decompress := flag.Bool("d", false, "decompress")
	in := flag.String("in", "", "input file")
	out := flag.String("out", "", "output file")
	codec := flag.String("codec", "sz", "codec: sz | zfp")
	mode := flag.String("mode", "pwrel", "sz bound mode: abs | rel | pwrel")
	eb := flag.Float64("eb", 1e-4, "error bound")
	flag.Parse()

	if *compress == *decompress {
		fmt.Fprintln(os.Stderr, "szcomp: exactly one of -c / -d is required")
		os.Exit(2)
	}
	if *in == "" || *out == "" {
		fmt.Fprintln(os.Stderr, "szcomp: -in and -out are required")
		os.Exit(2)
	}
	if err := run(*compress, *in, *out, *codec, *mode, *eb); err != nil {
		fmt.Fprintln(os.Stderr, "szcomp:", err)
		os.Exit(1)
	}
}

func run(compress bool, in, out, codec, mode string, eb float64) error {
	data, err := os.ReadFile(in)
	if err != nil {
		return err
	}
	if compress {
		if len(data)%8 != 0 {
			return fmt.Errorf("input length %d is not a multiple of 8 (raw float64 expected)", len(data))
		}
		x := make([]float64, len(data)/8)
		for i := range x {
			x[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[8*i:]))
		}
		var blob []byte
		switch codec {
		case "sz":
			var m sz.Mode
			switch mode {
			case "abs":
				m = sz.Abs
			case "rel":
				m = sz.RelRange
			case "pwrel":
				m = sz.PWRel
			default:
				return fmt.Errorf("unknown mode %q", mode)
			}
			blob, err = sz.Compress(x, sz.Params{Mode: m, ErrorBound: eb})
		case "zfp":
			blob, err = zfp.Compress(x, eb)
		default:
			return fmt.Errorf("unknown codec %q", codec)
		}
		if err != nil {
			return err
		}
		if err := os.WriteFile(out, blob, 0o644); err != nil {
			return err
		}
		fmt.Printf("%d values -> %d bytes (ratio %.2fx)\n",
			len(x), len(blob), float64(len(data))/float64(len(blob)))
		return nil
	}

	var x []float64
	switch codec {
	case "sz":
		x, err = sz.Decompress(data)
	case "zfp":
		x, err = zfp.Decompress(data)
	default:
		return fmt.Errorf("unknown codec %q", codec)
	}
	if err != nil {
		return err
	}
	raw := make([]byte, 8*len(x))
	for i, v := range x {
		binary.LittleEndian.PutUint64(raw[8*i:], math.Float64bits(v))
	}
	if err := os.WriteFile(out, raw, 0o644); err != nil {
		return err
	}
	fmt.Printf("%d bytes -> %d values\n", len(data), len(x))
	return nil
}
