// Command solve runs one fault-tolerant iterative solve end to end:
// it builds a 3D Poisson system, solves it with the chosen method and
// checkpointing scheme, optionally injecting failures in virtual time,
// and reports the outcome.
//
// Usage:
//
//	solve -method cg -grid 16 -scheme lossy -eb 1e-4 -mtti 300
//	solve -method jacobi -grid 12 -scheme traditional -ckptdir /tmp/ck
//	solve -method cg -grid 16 -scheme lossy -mtti 300 -async
//	solve -method cg -grid 16 -scheme lossy -mtti 300 -async -shards 8 -storage-workers 4
//	solve -method jacobi -grid 12 -scheme lossy -mtti 300 -adaptive -prior-mtti 3600
//
// -adaptive replaces the fixed (or Young-probed) checkpoint interval
// with the online controller: per-checkpoint costs and the failure
// rate are estimated from the run itself (the controller is never told
// C, R, or λ — only -prior-mtti seeds its failure-rate prior), and the
// interval is re-planned from the Young/Daly fixed point after every
// observation. The interval trajectory is printed at the end of the
// run alongside a per-phase cost table (capture/encode/write/restart,
// modeled at cluster scale vs measured in-process).
//
// -recovery-tiers arms the tiered recovery chain: an ABFT guard
// retains per-iteration redundancy (exact-state for CG, periodic
// retained solutions for the stationary methods) and every failure
// tries checkpoint-free algorithmic reconstruction first, falling back
// to the latest checkpoint, an older checkpoint, and finally
// restart-from-zero. With -mtti the simulated run prices ABFT
// recoveries in local-solve iterations (no PFS reads) and reports
// per-tier counts and read traffic.
//
// -inject runs the REAL solve (no virtual clock) under a seeded
// deterministic fault plan and prints a per-failure table of the tier
// each recovery used. The spec grammar is
//
//	spec  := event ("," event)*
//	event := kind ("+" kind)* "@" iterspec
//	kind  := proc | abft | shard | manifest | midckpt
//	       | storagewrite | storageread | slowio | crash
//	iterspec := N | N..M | N..M/S
//
// e.g. -inject 'proc@50,abft+proc@120,manifest+proc@200'. Corruption
// kinds without proc/midckpt are latent and surface at the next
// recovery. The storage kinds arm faults in the injector interposed
// beneath the resilient retry layer: storagewrite/storageread fail one
// storage attempt, slowio delays one (exercising hedged reads), and
// crash kills the store mid-commit — a partial temp artifact is left
// behind, the store revives, and fsck sweeps the debris before tiered
// recovery runs. A range iterspec ("storagewrite@100..600") schedules
// a whole campaign in one event. -inject requires -recovery-tiers and
// excludes -mtti; in this mode -interval is a checkpoint cadence in
// iterations (default 25).
//
// Observability: -metrics-out writes the end-of-run metrics snapshot
// as JSON, -trace-out writes a Chrome trace_event file (load it at
// chrome://tracing or https://ui.perfetto.dev), and -debug-addr
// serves /metrics (Prometheus text), /trace, and /debug/pprof live
// while the solve runs. The cost table and a metrics summary are
// emitted on every exit path — success, error, and injected runs
// alike. With -inject -async the trace shows the background
// encode/write spans overlapping solver iterations on real clocks;
// simulated runs emit the same span schema in virtual time.
//
// Storage resilience: every store is wrapped in the retry layer
// (-storage-retries, default 4) that absorbs transient faults with
// capped exponential backoff and hedges slow reads; -storage-timeout
// bounds the cumulative backoff one op may accrue. -scrub-interval
// starts the background scrubber, which CRC-verifies committed shards
// and repairs corrupt ones from retained state. -storage-fault-rate
// runs a seeded per-attempt transient-fault campaign against the
// store — the run must complete with zero solver-visible errors, and
// simulated runs price the expected retry delay into the checkpoint
// cost (Outcome.StorageRetryTime). On-disk checkpoint directories are
// fsck-swept at startup so partial commits from a crashed run never
// surface as restorable checkpoints.
//
// -shards N splits every checkpoint into N shard objects plus a
// manifest, written concurrently by up to -storage-workers goroutines
// (0 = GOMAXPROCS). Passing -shards (any value, 1 included) also
// switches the simulated write cost from the paper's collective model
// (2,048 ranks writing concurrently at the full aggregate PFS
// bandwidth) to the single-writer striped model: per-stripe bandwidth
// × min(shards, stripes), saturating at the aggregate. Compare
// -shards 1 against -shards 8 to see the storage stage scale with
// stripes; the two models are different physical setups, so comparing
// a -shards run against a run without the flag compares collective
// writes against single-writer ones.
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/pprof"
	"os"
	"strings"
	"sync"
	"time"

	"repro/internal/abft"
	"repro/internal/adapt"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/failure"
	"repro/internal/fti"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/precond"
	"repro/internal/quality"
	"repro/internal/sim"
	"repro/internal/solver"
	"repro/internal/sparse"
	"repro/internal/sz"
)

func main() {
	method := flag.String("method", "cg", "iterative method: jacobi | gs | sor | ssor | cg | gmres")
	grid := flag.Int("grid", 14, "Poisson grid dimension (n³ unknowns)")
	rtol := flag.Float64("rtol", 1e-7, "relative convergence tolerance")
	schemeName := flag.String("scheme", "lossy", "checkpoint scheme: traditional | lossless | lossy | none")
	eb := flag.Float64("eb", 1e-4, "lossy pointwise-relative error bound")
	interval := flag.Float64("interval", 0, "checkpoint interval in simulated seconds (0 = Young-optimal)")
	mtti := flag.Float64("mtti", 0, "mean time to interruption in simulated seconds (0 = no failures)")
	tit := flag.Float64("tit", 1, "simulated seconds per iteration")
	seed := flag.Int64("seed", 1, "failure-injection seed")
	ckptDir := flag.String("ckptdir", "", "write checkpoints to this directory (default: in-memory)")
	maxIter := flag.Int("maxiter", 2_000_000, "iteration cap")
	async := flag.Bool("async", false, "asynchronous checkpointing: charge only the capture stall; encode+write overlap iterations")
	shards := flag.Int("shards", 1, "shard objects per checkpoint (>1 writes shards + a manifest; passing the flag at all prices writes with the single-writer striped-PFS model)")
	storageWorkers := flag.Int("storage-workers", 0, "worker pool bound for shard writes/reads (0 = GOMAXPROCS)")
	storageRetries := flag.Int("storage-retries", 4, "max retries per storage op for transient faults (0 disables the resilient wrapper)")
	storageTimeout := flag.Duration("storage-timeout", 0, "per-op retry budget: an op gives up once its cumulative backoff would exceed this (0 = no budget)")
	scrubInterval := flag.Duration("scrub-interval", 0, "background scrubber sweep cadence (0 = scrubbing off)")
	storageFaultRate := flag.Float64("storage-fault-rate", 0, "seeded per-attempt transient storage-fault probability, injected beneath the retry layer (0 = none)")
	adaptive := flag.Bool("adaptive", false, "adaptive checkpoint interval: estimate costs and failure rate online, re-plan the Young/Daly fixed point each epoch")
	priorMTTI := flag.Float64("prior-mtti", 3600, "adaptive controller's prior mean time to interruption in seconds (its only a-priori knowledge)")
	recoveryTiers := flag.Bool("recovery-tiers", false, "tiered recovery: ABFT reconstruction, then latest checkpoint, then older checkpoints, then restart-from-zero")
	injectSpec := flag.String("inject", "", "seeded fault plan 'kind(+kind)*@iterspec,...' (kinds proc|abft|shard|manifest|midckpt|storagewrite|storageread|slowio|crash; iterspec N or N..M[/S]) driving the real solve; requires -recovery-tiers, excludes -mtti")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /trace, /report, and /debug/pprof on this address (e.g. localhost:6060) while the run is live")
	metricsOut := flag.String("metrics-out", "", "write the end-of-run metrics snapshot as JSON to this file")
	traceOut := flag.String("trace-out", "", "write the end-of-run Chrome trace_event JSON to this file")
	qualityOn := flag.Bool("quality", false, "numerical telemetry: audit per-checkpoint distortion against the live state (sampled) and attribute post-recovery convergence delay")
	qualitySample := flag.Int("quality-sample", 4, "audit every Nth committed checkpoint (1 = every checkpoint)")
	qualityExhaustive := flag.Bool("quality-exhaustive", false, "audit every checkpoint and decode-verify every audited vector (implies -quality)")
	reportOut := flag.String("report-out", "", "write the versioned JSON run report (cost table, metrics, per-checkpoint quality, recovery attributions, stability verdict) to this file (implies -quality)")
	flag.Parse()
	// The striped single-writer cost model engages when -shards is
	// given explicitly — including -shards 1, so monolithic and sharded
	// runs compare within one model instead of across two.
	striped := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "shards" {
			striped = true
		}
	})

	qual := qualityOpts{
		enabled:    *qualityOn || *qualityExhaustive || *reportOut != "",
		sample:     *qualitySample,
		exhaustive: *qualityExhaustive,
	}

	// One registry + tracer pair backs the live endpoint and the
	// end-of-run artifacts; left nil (zero overhead) unless asked for.
	var wiring obsWiring
	wiring.metricsOut, wiring.traceOut, wiring.reportOut = *metricsOut, *traceOut, *reportOut
	if *debugAddr != "" || *metricsOut != "" || *traceOut != "" || qual.enabled {
		wiring.reg = obs.New()
		wiring.tr = obs.NewTracer()
	}
	if *debugAddr != "" {
		serveDebug(*debugAddr, wiring.reg, wiring.tr)
	}

	sto := storageOpts{
		retries:    *storageRetries,
		timeout:    *storageTimeout,
		scrubEvery: *scrubInterval,
		faultRate:  *storageFaultRate,
	}
	if err := run(*method, *grid, *rtol, *schemeName, *eb, *interval, *mtti, *tit, *seed, *ckptDir, *maxIter, *async, *shards, *storageWorkers, striped, *adaptive, *priorMTTI, *recoveryTiers, *injectSpec, sto, qual, wiring); err != nil {
		fmt.Fprintln(os.Stderr, "solve:", err)
		os.Exit(1)
	}
}

// qualityOpts carries the numerical-telemetry knobs from flag parsing
// into the run.
type qualityOpts struct {
	enabled    bool
	sample     int
	exhaustive bool
}

// storageOpts carries the fault-tolerant storage layer's knobs from
// flag parsing into the run.
type storageOpts struct {
	retries    int
	timeout    time.Duration
	scrubEvery time.Duration
	faultRate  float64
}

func run(method string, grid int, rtol float64, schemeName string, eb, interval, mtti, tit float64, seed int64, ckptDir string, maxIter int, async bool, shards, storageWorkers int, striped, adaptive bool, priorMTTI float64, recoveryTiers bool, injectSpec string, sto storageOpts, qual qualityOpts, wiring obsWiring) (err error) {
	// Setup failures exit before the full reporter is armed; -report-out
	// still deserves an artifact recording the disposition, so a
	// minimal report covers the gap until reportArmed flips.
	reportArmed := false
	defer func() {
		if err == nil || reportArmed || wiring.reportOut == "" {
			return
		}
		min := &quality.RunReport{
			Run:             quality.RunInfo{Command: strings.Join(os.Args[1:], " "), Exit: "error: " + err.Error()},
			GeneratedAtUnix: time.Now().Unix(),
		}
		(*quality.Auditor)(nil).Fill(min)
		if f, ferr := os.Create(wiring.reportOut); ferr == nil {
			if werr := min.WriteJSON(f); werr == nil {
				fmt.Printf("run report written to %s\n", wiring.reportOut)
			}
			f.Close()
		}
	}()
	if adaptive && interval > 0 {
		return fmt.Errorf("-adaptive and -interval are mutually exclusive (the controller owns the cadence)")
	}
	if injectSpec != "" && !recoveryTiers {
		return fmt.Errorf("-inject requires -recovery-tiers (the fault plan exercises the tier chain)")
	}
	if injectSpec != "" && mtti > 0 {
		return fmt.Errorf("-inject and -mtti are mutually exclusive (seeded plan vs random virtual-time failures)")
	}
	if recoveryTiers && schemeName == "none" {
		return fmt.Errorf("-recovery-tiers needs a checkpoint scheme (the chain's middle tiers read checkpoints)")
	}
	a := sparse.Poisson3D(grid)
	b := sparse.OnesRHS(a.Rows)
	fmt.Printf("system: 3D Poisson %d³ = %d unknowns, %d nonzeros\n", grid, a.Rows, a.NNZ())

	var s solver.Checkpointable
	var co *abft.ChecksumOperator
	opts := solver.Options{RTol: rtol}
	switch method {
	case "jacobi":
		s, err = solver.NewStationary(solver.KindJacobi, a, b, nil, 0, opts)
	case "gs":
		s, err = solver.NewStationary(solver.KindGaussSeidel, a, b, nil, 0, opts)
	case "sor":
		s, err = solver.NewStationary(solver.KindSOR, a, b, nil, 1.5, opts)
	case "ssor":
		s, err = solver.NewStationary(solver.KindSSOR, a, b, nil, 1.2, opts)
	case "cg":
		var m *precond.IC0
		m, err = precond.NewIC0(a)
		if err != nil {
			return err
		}
		op := solver.Operator(a)
		if recoveryTiers {
			// Huang–Abraham checksum augmentation: every operator
			// application is verified against precomputed column sums, so
			// silent corruption surfaces before it contaminates the
			// retained ABFT redundancy.
			co = abft.NewChecksumOperator(a)
			op = co
		}
		s = solver.NewCG(op, m, b, nil, solver.SeqSpace{}, opts)
	case "gmres":
		s = solver.NewGMRES(a, nil, b, nil, 30, solver.SeqSpace{}, opts)
	default:
		return fmt.Errorf("unknown method %q", method)
	}
	if err != nil {
		return err
	}
	var guard *abft.Guard
	if recoveryTiers {
		gcfg := abft.Config{Seed: seed}
		switch method {
		case "cg":
			gcfg.Method = abft.ExactState
		case "jacobi", "gs", "sor", "ssor":
			gcfg.Method = abft.BackwardForward
		default:
			return fmt.Errorf("-recovery-tiers is not supported for method %q (need cg or a stationary method)", method)
		}
		guard, err = abft.NewGuard(a, b, s, gcfg)
		if err != nil {
			return err
		}
		fmt.Printf("recovery tiers armed: %s ABFT guard, %d logical ranks\n", guard.Method(), guard.Ranks())
	}

	var scheme core.Scheme
	switch schemeName {
	case "traditional":
		scheme = core.Traditional
	case "lossless":
		scheme = core.Lossless
	case "lossy":
		scheme = core.Lossy
	case "none":
		res, err := solver.RunToConvergence(s, solver.Options{MaxIter: maxIter}, nil)
		if err != nil {
			return err
		}
		fmt.Printf("converged=%v iterations=%d residual=%.3e\n",
			res.Converged, res.Iterations, res.FinalResidual)
		return nil
	default:
		return fmt.Errorf("unknown scheme %q", schemeName)
	}

	var plan *failure.Plan
	if injectSpec != "" {
		plan, err = failure.ParsePlan(injectSpec, seed)
		if err != nil {
			return err
		}
	}

	// The storage stack, bottom up: the real store, the fault injector
	// (only when a campaign or plan needs one), and the resilient retry
	// wrapper on top — so injected transient faults are absorbed by
	// retries before the checkpoint layer ever sees them.
	var baseStorage fti.Storage = fti.NewMemStorage()
	if ckptDir != "" {
		ds, err := fti.NewDirStorage(ckptDir)
		if err != nil {
			return err
		}
		baseStorage = ds
		// Crash-consistency sweep: a previous run may have died
		// mid-commit, leaving temp files, orphan shards, or manifest-less
		// groups. Fsck GCs them so List only exposes fully committed
		// checkpoints.
		frep, err := fti.Fsck(baseStorage)
		if err != nil {
			return fmt.Errorf("fsck %s: %w", ckptDir, err)
		}
		if !frep.Clean() {
			fmt.Println(frep)
		}
	}
	storage := baseStorage
	injectStorage := sto.faultRate > 0 || planArmsStorage(plan)
	var injector *failure.StorageInjector
	if injectStorage {
		injector = failure.NewStorageInjector(storage, seed, failure.StorageProfile{Rate: sto.faultRate})
		storage = injector
	}
	var resilient *fti.Resilient
	if sto.retries > 0 {
		pol := fti.FaultPolicy{MaxRetries: sto.retries, OpBudget: sto.timeout, Seed: seed}
		resilient = fti.NewResilient(storage, pol)
		if wiring.reg != nil {
			resilient.Instrument(wiring.reg)
		}
		storage = resilient
	}
	mgr, err := core.NewManager(core.Config{
		Scheme:         scheme,
		SZParams:       sz.Params{Mode: sz.PWRel, ErrorBound: eb},
		Shards:         shards,
		StorageWorkers: storageWorkers,
		ABFT:           guard,
		// Under an injected-fault campaign a save that exhausts its
		// retries degrades — the group fails, the counter bumps, and the
		// solver keeps iterating toward the next interval — instead of
		// killing the run.
		DegradedWrites: injectStorage,
		// The simulator needs a synchronous Manager (it prices the async
		// overlap itself); the real injected run uses the actual async
		// pipeline so its overlap shows up on the trace's wall clocks.
		Async: async && injectSpec != "",
	}, storage, s)
	if err != nil {
		return err
	}
	var scrubber *fti.Scrubber
	if sto.scrubEvery > 0 {
		scrubber = fti.NewScrubber(storage)
		if wiring.armed() {
			scrubber.Instrument(wiring.reg, wiring.tr)
		}
		mgr.Checkpointer().AttachScrubber(scrubber)
		if err := scrubber.Start(sto.scrubEvery); err != nil {
			return err
		}
		defer scrubber.Stop()
	}
	// Storage-resilience accounting prints on every exit path, after the
	// scrubber has stopped (LIFO) so its final sweep is counted.
	defer func() {
		if scrubber != nil {
			ss := scrubber.Stats()
			fmt.Printf("scrubber: sweeps=%d verified=%d corruptions=%d repairs=%d dropped=%d\n",
				ss.Sweeps, ss.Verified, ss.Corruptions, ss.Repairs, ss.Dropped)
		}
		if resilient != nil {
			rs := resilient.Stats()
			if rs.Retries > 0 || rs.Exhausted > 0 || rs.Permanent > 0 || rs.HedgedReads > 0 {
				fmt.Printf("storage resilience: ops=%d retries=%d recovered=%d exhausted=%d permanent=%d hedged-reads=%d hedge-wins=%d backoff=%.1fms\n",
					rs.Ops, rs.Retries, rs.Recovered, rs.Exhausted, rs.Permanent, rs.HedgedReads, rs.HedgeWins, 1e3*rs.RetryDelay.Seconds())
			}
		}
		if injector != nil {
			is := injector.Stats()
			fmt.Printf("storage injection: write-faults=%d read-faults=%d transient=%d permanent=%d slow=%d\n",
				is.WriteFaults, is.ReadFaults, is.TransientFaults, is.PermanentFaults, is.SlowOps)
		}
		if n := mgr.DegradedSaves(); n > 0 {
			fmt.Printf("degraded saves: %d checkpoint(s) failed and were skipped (last: %v)\n", n, mgr.LastSaveError())
		}
	}()
	if wiring.armed() {
		if injectSpec != "" {
			// Real run: the pipeline emits wall-clock spans itself.
			mgr.Instrument(wiring.reg, wiring.tr)
		} else {
			// Virtual-time run: the simulator owns the trace (same span
			// schema, virtual clock); the Manager still exports metrics.
			mgr.Instrument(wiring.reg, nil)
		}
	}
	// Numerical telemetry: the auditor is a pure observer (sampled
	// decode-on-the-fly distortion audits, recovery-delay attribution),
	// so arming it never perturbs the solve trajectory.
	var qa *quality.Auditor
	if qual.enabled {
		qa = quality.New(quality.Config{
			SampleEvery: qual.sample,
			Exhaustive:  qual.exhaustive,
			BNorm:       vecNorm(b),
			StabilityC:  1,
		})
		qa.Instrument(wiring.reg, wiring.tr)
		mgr.InstrumentQuality(qa)
		every := qual.sample
		if qual.exhaustive || every < 1 {
			every = 1
		}
		mode := "encode-path stats"
		if qual.exhaustive {
			mode = "exhaustive decode verification"
		}
		fmt.Printf("quality telemetry: auditing every %d committed checkpoint(s), %s\n", every, mode)
	}
	if err := core.RegisterStatics(mgr.Checkpointer(), a, b); err != nil {
		return err
	}

	// Cost the checkpoints with the Bebop model at 2,048 processes so
	// the Young-optimal interval is meaningful.
	mdl := cluster.Bebop()
	raw := float64(a.Rows) * 8
	ckptSec := func(info fti.Info) float64 {
		sch := cluster.Uncompressed
		switch scheme {
		case core.Lossless:
			sch = cluster.LosslessCompressed
		case core.Lossy:
			sch = cluster.LossyCompressed
		}
		if striped {
			// Single-writer object writes under the striped-PFS model,
			// engaging min(shards, stripes) stripes — used for every
			// value of -shards (1 included) so monolithic and sharded
			// runs compare within the same model.
			n := info.Shards
			if n < 1 {
				n = shards
			}
			return mdl.ShardedCheckpointSeconds(2048, float64(info.Bytes), raw, sch, n)
		}
		return mdl.CheckpointSeconds(2048, float64(info.Bytes), raw, sch)
	}
	recSec := func(info fti.Info) float64 {
		sch := cluster.Uncompressed
		switch scheme {
		case core.Lossless:
			sch = cluster.LosslessCompressed
		case core.Lossy:
			sch = cluster.LossyCompressed
		}
		if striped {
			// Restarts priced like the write path: a sharded group
			// streams through min(shards, stripes) concurrent reads
			// overlapped with decompression; shards=1 is the serial
			// monolithic restore (exactly RecoverySeconds).
			n := info.Shards
			if n < 1 {
				n = shards
			}
			return mdl.ShardedRecoverySeconds(2048, float64(info.Bytes), raw, sch, n)
		}
		return mdl.RecoverySeconds(2048, float64(info.Bytes), raw, sch)
	}
	capSec := func(info fti.Info) float64 {
		return mdl.CaptureSeconds(2048, float64(info.RawBytes))
	}
	// Under a fault campaign, simulated checkpoint writes carry the
	// retry layer's expected backoff delay, calibrated from the same
	// policy defaults the real wrapper runs with.
	pol := fti.FaultPolicy{MaxRetries: sto.retries}.Normalize()
	retrySec := func(info fti.Info) float64 {
		if sto.faultRate <= 0 || sto.retries <= 0 {
			return 0
		}
		n := info.Shards
		if n < 1 {
			n = shards
		}
		return mdl.StorageRetrySeconds(n, sto.faultRate,
			pol.BaseDelay.Seconds(), pol.MaxDelay.Seconds(), pol.MaxRetries)
	}
	// The reporter is deferred so the cost table, metrics summary, and
	// observability artifacts come out on EVERY exit path — converged,
	// errored, or injected — not just the happy one.
	rep := &reporter{mgr: mgr, mdl: mdl, scheme: scheme, raw: raw, striped: striped,
		recSec: recSec, measuredRestart: math.NaN(), wiring: wiring, qa: qa, start: time.Now()}
	rep.runInfo = quality.RunInfo{
		Command:    strings.Join(os.Args[1:], " "),
		Solver:     method,
		Unknowns:   a.Rows,
		Scheme:     schemeName,
		Async:      async,
		Shards:     shards,
		ErrorBound: eb,
		Adaptive:   adaptive,
		Injected:   injectSpec,
	}
	reportArmed = true
	defer rep.emit()
	// Capture the exit disposition before emit (deferred later → runs
	// first): error exits still produce one coherent report artifact.
	defer func() {
		if err != nil {
			rep.update(func(ri *quality.RunInfo) { ri.Exit = "error: " + err.Error() })
		}
	}()
	setReportSource(rep.snapshotReport)
	if injectSpec != "" {
		ckptEvery := int(interval)
		if ckptEvery <= 0 {
			ckptEvery = 25
		}
		rep.update(func(ri *quality.RunInfo) { ri.Interval = ckptEvery })
		// Corruption helpers damage objects on the BASE store, bypassing
		// the injector (their writes must not consume armed faults) and
		// the retry layer (a corruption is not an op to retry).
		return runInjected(a, s, mgr, guard, co, plan, baseStorage, injector, mdl, recSec, tit, ckptEvery, maxIter, wiring.tr, rep)
	}
	var ctrl *adapt.Controller
	if adaptive {
		// The controller learns C, R, and λ from the run itself; the
		// prior MTTI is its only seed. It plans the async fixed point
		// (AsyncEffectiveStall) when the pipeline is overlapped.
		var err error
		ctrl, err = adapt.New(adapt.Config{PriorMTTI: priorMTTI, Async: async})
		if err != nil {
			return err
		}
		fmt.Printf("adaptive interval: prior MTTI %.0f s, bootstrap interval %.0f s\n",
			priorMTTI, ctrl.Interval(0))
	} else if interval == 0 {
		probe, err := mgr.Checkpoint()
		if err != nil {
			return err
		}
		// Young's interval balances the failure rate against the cost
		// the solver actually pays per checkpoint: the full write in
		// sync mode, the capture stall alone in async mode. The async
		// interval is floored at the background encode+write time —
		// checkpointing faster than the pipeline drains only converts
		// the hidden cost back into backpressure stall.
		perCkpt := ckptSec(probe)
		if async {
			perCkpt = capSec(probe)
		}
		interval = model.YoungInterval(mtti, perCkpt)
		if async && interval < ckptSec(probe) {
			interval = ckptSec(probe)
		}
		if interval == 0 {
			interval = 100 * tit
		}
		fmt.Printf("Young-optimal interval: %.0f simulated seconds\n", interval)
	}

	// The ABFT tier is priced in local-solve iterations over the lost
	// block, re-gathered over the interconnect — never through the PFS.
	abftSec := func(att core.TierAttempt) float64 {
		return mdl.ABFTRecoverySeconds(raw/2048, att.Iterations, tit)
	}
	out, err := sim.Run(sim.Config{
		Stepper:             s,
		Manager:             mgr,
		X0:                  make([]float64, a.Rows),
		TitSeconds:          tit,
		IntervalSeconds:     interval,
		Controller:          ctrl,
		CheckpointSeconds:   ckptSec,
		RecoverySeconds:     recSec,
		StorageRetrySeconds: retrySec,
		AsyncCheckpoint:     async,
		CaptureSeconds:      capSec,
		ABFTSeconds:         abftSec,
		Failures:            failure.NewInjector(mtti, seed),
		MaxIterations:       maxIter,
		Metrics:             wiring.reg,
		Tracer:              wiring.tr,
		Quality:             qa,
	})
	if err != nil {
		return err
	}
	rep.update(func(ri *quality.RunInfo) {
		ri.Interval = int(interval)
		ri.Iterations = out.IterationsExecuted
		ri.Converged = out.Converged
		ri.FinalResidual = out.FinalResidual
	})
	fmt.Printf("converged=%v iterations=%d sim-time=%.0fs failures=%d checkpoints=%d\n",
		out.Converged, out.IterationsExecuted, out.SimSeconds, out.Failures, out.Checkpoints)
	fmt.Printf("checkpoint-time=%.1fs recovery-time=%.0fs final-residual=%.3e\n",
		out.CheckpointTime, out.RecoveryTime, out.FinalResidual)
	if recoveryTiers {
		fmt.Printf("recovery tiers: abft=%d checkpoint-restart=%d restart-zero=%d pfs-read-bytes=%d\n",
			out.ABFTRecoveries, out.CheckpointRestarts, out.FreshRestarts, out.RecoveryReadBytes)
	}
	if async {
		fmt.Printf("async: aborted-in-flight=%d backpressure=%.1fs (stall is capture-only when 0)\n",
			out.AbortedCheckpoints, out.BackpressureTime)
	}
	if sto.faultRate > 0 {
		fmt.Printf("storage faults: rate=%.3g priced retry delay %.2fs across %d checkpoints\n",
			sto.faultRate, out.StorageRetryTime, out.Checkpoints)
	}
	if adaptive && len(out.IntervalPlans) > 0 {
		plans := out.IntervalPlans
		last := plans[len(plans)-1]
		fmt.Printf("adaptive: %d re-plans; final interval %.0f s (estimated MTTI %.0f s, per-checkpoint cost %.2f s)\n",
			len(plans), last.Interval, 1/last.Lambda, last.Cost)
		fmt.Printf("interval trajectory (sim-time  interval  est-MTTI  est-cost  est-ratio):\n")
		step := (len(plans) + 11) / 12 // at most ~12 rows plus the final one
		for i := 0; i < len(plans); i += step {
			p := plans[i]
			fmt.Printf("  %8.0fs %8.0fs %8.0fs %8.2fs %8.1fx\n", p.When, p.Interval, 1/p.Lambda, p.Cost, p.Ratio)
		}
		if (len(plans)-1)%step != 0 {
			fmt.Printf("  %8.0fs %8.0fs %8.0fs %8.2fs %8.1fx\n", last.When, last.Interval, 1/last.Lambda, last.Cost, last.Ratio)
		}
	}
	if info := mgr.LastInfo(); info.Bytes > 0 {
		fmt.Printf("last checkpoint: %d bytes (ratio %.1fx, encoder %s)\n",
			info.Bytes, info.CompressionRatio, info.EncoderName)
		if info.Shards > 1 {
			fmt.Printf("sharded: %d shard objects + manifest, %d storage workers, striped write bandwidth %.2f GB/s\n",
				info.Shards, storageWorkers, mdl.StripedWriteBandwidth(info.Shards)/1e9)
		}
	}
	// On failure-injected runs, measure one real restart so the
	// in-process R (streaming shard-parallel restore) can be compared
	// against the modeled ShardedRecoverySeconds at cluster scale.
	if mtti > 0 && mgr.HasCheckpoint() {
		info := mgr.LastInfo()
		// Detach the auditor first: the measurement is not a failure, so
		// it must not add a recovery-attribution entry to the report.
		mgr.InstrumentQuality(nil)
		start := time.Now()
		it, err := mgr.Recover()
		if err != nil {
			return fmt.Errorf("restart measurement: %w", err)
		}
		wall := time.Since(start).Seconds()
		rep.measuredRestart = wall
		bps := 0.0
		if wall > 0 {
			bps = float64(info.Bytes) / wall
		}
		fmt.Printf("restart: measured %.2f ms wall for %d encoded bytes (%.1f MB/s, rolled back to iteration %d)\n",
			1e3*wall, info.Bytes, bps/1e6, it)
		fmt.Printf("restart: modeled R=%.2fs at 2048 ranks (%d shard objects)\n",
			recSec(info), max(info.Shards, 1))
	}
	return nil // the deferred reporter prints the cost table and metrics
}

// obsWiring carries the optional observability plumbing from flag
// parsing into the run: both pointers nil means every hook in every
// instrumented layer is a no-op.
type obsWiring struct {
	reg        *obs.Registry
	tr         *obs.Tracer
	metricsOut string
	traceOut   string
	reportOut  string
}

func (w obsWiring) armed() bool { return w.reg != nil || w.tr != nil }

// reportSource is the live run-report builder that /report serves.
// run() installs it once the reporter exists — the debug listener
// starts earlier, during flag handling.
var reportSource struct {
	mu sync.Mutex
	fn func() *quality.RunReport
}

func setReportSource(fn func() *quality.RunReport) {
	reportSource.mu.Lock()
	reportSource.fn = fn
	reportSource.mu.Unlock()
}

// serveDebug exposes the live registry and tracer (plus pprof) on a
// background HTTP listener. Snapshots are taken per request, so
// hitting /metrics mid-run observes the solve without pausing it.
func serveDebug(addr string, reg *obs.Registry, tr *obs.Tracer) {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WriteProm(w)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = tr.WriteChrome(w)
	})
	mux.HandleFunc("/report", func(w http.ResponseWriter, _ *http.Request) {
		reportSource.mu.Lock()
		fn := reportSource.fn
		reportSource.mu.Unlock()
		if fn == nil {
			http.Error(w, "report not ready", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = fn().WriteJSON(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	go func() {
		if err := http.ListenAndServe(addr, mux); err != nil {
			fmt.Fprintln(os.Stderr, "solve: debug server:", err)
		}
	}()
	fmt.Printf("debug endpoint: http://%s/{metrics,trace,report,debug/pprof}\n", addr)
}

// reporter emits the end-of-run cost table, metrics summary, quality
// digest, and observability artifacts exactly once — all assembled
// from ONE quality.RunReport, so the text output, -report-out file,
// and /report endpoint always agree. run defers it, so error and
// injection paths report the same way the happy path does.
type reporter struct {
	once            sync.Once
	mu              sync.Mutex // guards runInfo and final
	mgr             *core.Manager
	mdl             *cluster.Model
	scheme          core.Scheme
	raw             float64
	striped         bool
	recSec          func(fti.Info) float64
	measuredRestart float64
	wiring          obsWiring
	qa              *quality.Auditor
	start           time.Time
	runInfo         quality.RunInfo
	final           *quality.RunReport
}

// update mutates the run-description fields under the reporter's lock
// (the /report handler reads them concurrently with the solve).
func (r *reporter) update(fn func(*quality.RunInfo)) {
	r.mu.Lock()
	fn(&r.runInfo)
	r.mu.Unlock()
}

// buildReport assembles the versioned run report from the current
// state: run info, cost lines, quality sections, metrics snapshot.
func (r *reporter) buildReport(cost []quality.CostLine) *quality.RunReport {
	r.mu.Lock()
	ri := r.runInfo
	r.mu.Unlock()
	if ri.Exit == "" {
		ri.Exit = "ok"
	}
	if ri.WallSeconds == 0 && !r.start.IsZero() {
		ri.WallSeconds = time.Since(r.start).Seconds()
	}
	rep := &quality.RunReport{Run: ri, Cost: cost, GeneratedAtUnix: time.Now().Unix()}
	r.qa.Fill(rep)
	if r.wiring.reg != nil {
		rep.Metrics = r.wiring.reg.Snapshot()
	}
	return rep
}

// snapshotReport backs /report: the final report once emit has run,
// else a live view built on demand. The live view has no cost lines —
// those need the Manager's committed Info, which cannot be probed
// concurrently with the solver thread.
func (r *reporter) snapshotReport() *quality.RunReport {
	r.mu.Lock()
	final := r.final
	r.mu.Unlock()
	if final != nil {
		return final
	}
	rep := r.buildReport(nil)
	if rep.Run.Exit == "ok" {
		// The disposition is only known once emit runs; a mid-run
		// snapshot must not claim a clean exit.
		rep.Run.Exit = "running"
	}
	return rep
}

func (r *reporter) emit() {
	r.once.Do(func() {
		// Drain any in-flight async save first so LastInfo and the
		// registry describe the run's final state (no-op when sync).
		info, _ := r.mgr.WaitCheckpoint()
		cost := printCostBreakdown(r.mdl, r.scheme, info, r.raw, r.striped, r.recSec, r.measuredRestart)
		rep := r.buildReport(cost)
		r.mu.Lock()
		r.final = rep
		r.mu.Unlock()
		r.printMetricsSummary(rep.Metrics)
		r.printQualitySummary(rep)
		r.writeArtifacts(rep)
	})
}

// printQualitySummary digests the quality sections of the report:
// audited saves, bound violations, per-recovery convergence-delay
// attribution, and the stability verdict.
func (r *reporter) printQualitySummary(rep *quality.RunReport) {
	if r.qa == nil {
		return
	}
	viol, worst := 0, 0.0
	for i := range rep.Checkpoints {
		rec := &rep.Checkpoints[i]
		if rec.Violated {
			viol++
		}
		if rec.BoundRatio > worst {
			worst = rec.BoundRatio
		}
	}
	fmt.Printf("quality: %d audited vector saves, %d bound violations, worst observed/requested %.3g\n",
		len(rep.Checkpoints), viol, worst)
	for _, e := range rep.Recoveries {
		delay := "unresolved (run ended before the failure-time residual was reacquired)"
		if e.Resolved {
			delay = fmt.Sprintf("realized N'=%d, residual reacquired in %d iterations",
				e.RealizedNPrime, e.ReacquireIterations)
		}
		dist := ""
		if e.Distortion != nil {
			dist = fmt.Sprintf(", adopted max-err %.3g", e.Distortion.MaxError)
		}
		fmt.Printf("  recovery@%-6d via %-18s (ckpt iter %d%s): %s\n",
			e.FailureIteration, e.Tier, e.CheckpointIteration, dist, delay)
	}
	if v := rep.Stability; v.Defined {
		state := "INSIDE"
		if !v.Inside {
			state = "OUTSIDE"
		}
		fmt.Printf("stability (%s): %s — %d/%d audited lossy checkpoints within c·‖r‖/‖b‖, worst margin %.3g\n",
			v.Region, state, v.CheckpointsInside, v.CheckpointsInside+v.CheckpointsOutside, v.WorstMargin)
	}
}

// printMetricsSummary renders the non-zero counters, gauges, and
// histogram aggregates from the report's snapshot — a digest of what
// -metrics-out (or /metrics) exposes in full.
func (r *reporter) printMetricsSummary(snap obs.Snapshot) {
	if r.wiring.reg == nil {
		return
	}
	printed := false
	for i := range snap.Metrics {
		md := &snap.Metrics[i]
		name := md.Name
		for _, l := range md.Labels {
			name += fmt.Sprintf("{%s=%q}", l.Key, l.Value)
		}
		var line string
		switch {
		case md.Type == "histogram" && md.Count > 0:
			line = fmt.Sprintf("  %-52s count=%-6d mean=%-10.4g p99=%.4g",
				name, md.Count, md.Sum/float64(md.Count), md.Quantile(0.99))
		case md.Type != "histogram" && md.Value != 0:
			line = fmt.Sprintf("  %-52s %g", name, md.Value)
		default:
			continue // zero-valued: present in the snapshot, noise here
		}
		if !printed {
			fmt.Printf("metrics summary (non-zero; full snapshot via -metrics-out or /metrics):\n")
			printed = true
		}
		fmt.Println(line)
	}
}

func (r *reporter) writeArtifacts(rep *quality.RunReport) {
	write := func(path, what string, emit func(io.Writer) error) {
		if path == "" {
			return
		}
		f, err := os.Create(path)
		if err == nil {
			err = emit(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "solve: writing %s: %v\n", what, err)
			return
		}
		fmt.Printf("%s written to %s\n", what, path)
	}
	if r.wiring.reg != nil {
		write(r.wiring.metricsOut, "metrics snapshot", r.wiring.reg.WriteJSON)
	}
	if r.wiring.tr != nil {
		write(r.wiring.traceOut, "chrome trace", r.wiring.tr.WriteChrome)
	}
	write(r.wiring.reportOut, "run report", rep.WriteJSON)
}

// injectedFailure records one injected event and the tier chain that
// recovered from it.
type injectedFailure struct {
	iter  int
	kinds []failure.Kind
	rep   *core.RecoveryReport
}

// planArmsStorage reports whether any scheduled event carries a
// storage fault kind — those need the injector interposed in the
// storage stack before the Manager is built.
func planArmsStorage(plan *failure.Plan) bool {
	if plan == nil {
		return false
	}
	for _, ev := range plan.Events() {
		for _, k := range ev.Kinds {
			switch k {
			case failure.StorageWriteFault, failure.StorageReadFault, failure.SlowIO, failure.Crash:
				return true
			}
		}
	}
	return false
}

// runInjected drives the REAL solve (wall clock, no simulator) under a
// seeded deterministic fault plan, recovering every failure through
// the tier chain, and prints the per-failure tier table. storage is
// the BASE store (beneath the injector and retry layers): corruption
// writes bypass the fault gate, and the post-crash fsck sweeps the
// debris where the crash left it.
func runInjected(a *sparse.CSR, s solver.Checkpointable, mgr *core.Manager, guard *abft.Guard,
	co *abft.ChecksumOperator, plan *failure.Plan, storage fti.Storage, injector *failure.StorageInjector,
	mdl *cluster.Model, recSec func(fti.Info) float64, tit float64, ckptEvery, maxIter int, tr *obs.Tracer, repr *reporter) error {
	fmt.Printf("injection plan: %d events, checkpoint every %d iterations\n", len(plan.Events()), ckptEvery)
	x0 := make([]float64, a.Rows)
	var failures []injectedFailure
	// Coalesce the iteration stretches between lifecycle events into
	// compute spans, so the trace shows the async pipeline's
	// encode/write spans overlapping them. All no-ops when tr is nil.
	computeStart := tr.Now()
	markCompute := func() {
		if now := tr.Now(); now > computeStart {
			tr.Complete(obs.TrackSolver, obs.CatSolver, obs.SpanCompute, computeStart, now-computeStart, nil)
		}
	}
	cb := func(it int, rnorm float64) error {
		// Feed the residual trajectory to the quality auditor (nil-safe
		// no-op when -quality is off): it tags checkpoints with the
		// residual at save and counts post-recovery reacquisition.
		mgr.Quality().ObserveResidual(it, rnorm)
		// Retain this iteration's redundancy first: the guard protects
		// the state the step just produced.
		guard.Observe()
		if it%ckptEvery == 0 {
			markCompute()
			if _, err := mgr.Checkpoint(); err != nil {
				return err
			}
			computeStart = tr.Now()
		}
		kinds := plan.Take(it)
		if len(kinds) == 0 {
			return nil
		}
		// Corruption kinds damage state first (latently, if no failure
		// accompanies them); proc/midckpt then lose a rank and force the
		// chain to run against whatever survives.
		needRecovery := false
		for _, k := range kinds {
			switch k {
			case failure.CorruptABFT:
				guard.CorruptRetained()
			case failure.CorruptShard:
				if _, err := failure.CorruptLatestShard(storage, plan.Rand()); err != nil {
					return fmt.Errorf("inject shard corruption at %d: %w", it, err)
				}
			case failure.CorruptManifest:
				if _, err := failure.CorruptLatestManifest(storage); err != nil {
					return fmt.Errorf("inject manifest corruption at %d: %w", it, err)
				}
			case failure.StorageWriteFault:
				injector.ArmWrite(1)
			case failure.StorageReadFault:
				injector.ArmRead(1)
			case failure.SlowIO:
				injector.ArmSlow(1)
			}
		}
		for _, k := range kinds {
			switch k {
			case failure.MidCheckpoint:
				// The failure strikes mid-write: the in-flight checkpoint
				// never commits and its partial object is discarded.
				if _, err := mgr.Checkpoint(); err != nil {
					return err
				}
				if err := mgr.AbortLastCheckpoint(); err != nil {
					return err
				}
				needRecovery = true
			case failure.ProcLoss:
				needRecovery = true
			case failure.Crash:
				// The storage dies mid-commit: the forced checkpoint leaves
				// a partial temp artifact and never commits (the save error
				// is the expected outcome, swallowed by degraded mode or
				// tolerated here). The store then revives — the restart —
				// and fsck sweeps the debris before tiered recovery runs
				// against what actually committed.
				injector.ArmCrash()
				_, _ = mgr.Checkpoint()
				_, _ = mgr.WaitCheckpoint() // drain an async save; its failure is the point
				if !injector.Crashed() {
					return fmt.Errorf("inject crash at %d: the store never saw a write", it)
				}
				injector.Revive()
				frep, err := fti.Fsck(storage)
				if err != nil {
					return fmt.Errorf("fsck after crash at %d: %w", it, err)
				}
				fmt.Printf("  crash@%d: store revived; %s\n", it, frep)
				needRecovery = true
			}
		}
		if !needRecovery {
			return nil // latent corruption: surfaces at the next recovery
		}
		markCompute()
		tr.Instant(obs.TrackSolver, obs.CatRecovery, obs.SpanFailure)
		guard.FailNextRank()
		rep, err := mgr.RecoverTiered(x0)
		if err != nil {
			return err
		}
		computeStart = tr.Now()
		failures = append(failures, injectedFailure{iter: it, kinds: kinds, rep: rep})
		return nil
	}
	res, err := solver.RunToConvergence(s, solver.Options{MaxIter: maxIter}, cb)
	markCompute()
	if err != nil {
		return err
	}
	repr.update(func(ri *quality.RunInfo) {
		ri.Iterations = res.Iterations
		ri.Converged = res.Converged
		ri.FinalResidual = res.FinalResidual
	})
	fmt.Printf("converged=%v iterations=%d residual=%.3e failures=%d\n",
		res.Converged, res.Iterations, res.FinalResidual, len(failures))
	if co != nil {
		fmt.Printf("checksum operator: %d applications, %d mismatches\n", co.Applications(), co.Mismatches())
	}
	st := guard.Stats()
	fmt.Printf("abft guard: observes=%d reconstructions=%d rejected=%d local-iterations=%d\n",
		st.Observes, st.Reconstructions, st.Rejected, st.LocalIterations)
	if len(failures) == 0 {
		return nil
	}
	fmt.Printf("per-failure recovery tiers (modeled costs at 2048 ranks):\n")
	raw := float64(a.Rows) * 8
	for _, f := range failures {
		names := make([]string, len(f.kinds))
		for i, k := range f.kinds {
			names[i] = k.String()
		}
		fmt.Printf("  @%-6d %-24s recovered via %s\n", f.iter, strings.Join(names, "+"), f.rep.Used)
		for _, att := range f.rep.Attempts {
			status := "accepted"
			if !att.Accepted {
				status = "rejected: " + att.Err
			}
			var cost string
			switch att.Tier {
			case core.TierABFT:
				cost = fmt.Sprintf("%d local its, modeled %.3gs, 0 B read",
					att.Iterations, mdl.ABFTRecoverySeconds(raw/2048, att.Iterations, tit))
			case core.TierCheckpoint, core.TierPreviousCheckpoint:
				cost = fmt.Sprintf("seq %d, %d B read, modeled %.3gs",
					att.Seq, att.ReadBytes, recSec(mgr.LastInfo()))
			default:
				cost = "free (all progress lost)"
			}
			fmt.Printf("    %-20s %-10s %.3g ms wall — %s\n",
				att.Tier, status, 1e3*att.Seconds, cost)
		}
	}
	return nil
}

// printCostBreakdown renders the per-phase checkpoint/restart cost
// table: the cluster model's 2,048-rank prediction next to what the
// in-process run actually measured (fti.Info stage timings and the
// measured restart). The two columns are different machines by design
// — the point is seeing each phase's model beside a real measurement
// of the same code path. The same rows come back as structured cost
// lines for the run report (NaN "not measured" sentinels become 0,
// which omitempty drops — NaN is not valid JSON).
func printCostBreakdown(mdl *cluster.Model, scheme core.Scheme, info fti.Info, raw float64,
	striped bool, recSec func(fti.Info) float64, measuredRestart float64) []quality.CostLine {
	if info.Bytes == 0 {
		return nil // no checkpoint was ever committed; nothing to break down
	}
	sch := cluster.Uncompressed
	switch scheme {
	case core.Lossless:
		sch = cluster.LosslessCompressed
	case core.Lossy:
		sch = cluster.LossyCompressed
	}
	modCapture := mdl.CaptureSeconds(2048, raw)
	// The stage helpers share the fused cost model's terms, so the
	// per-phase rows always sum to the ckptSec the run was priced with:
	// the codec-aware encode rate is pinned to the scheme-level
	// calibration for the schemes' default codecs (sz, gzip) and falls
	// back to it for codecs without a CodecRates entry.
	modEncode := mdl.CodecCompressSeconds(2048, raw, info.EncoderName, sch)
	modWrite := mdl.WriteStageSeconds(2048, float64(info.Bytes), max(info.Shards, 1), striped)
	ms := func(s float64) string {
		if math.IsNaN(s) {
			return "      -"
		}
		return fmt.Sprintf("%10.4g", 1e3*s)
	}
	measCapture := math.NaN()
	if info.CaptureSeconds > 0 {
		measCapture = info.CaptureSeconds
	}
	fmt.Printf("per-checkpoint phase costs — modeled at 2048 ranks vs measured in-process (ms):\n")
	fmt.Printf("  %-8s %12s %12s\n", "phase", "modeled", "measured")
	fmt.Printf("  %-8s %12s %12s   (in-process sync capture happens inside the save)\n", "capture", ms(modCapture), ms(measCapture))
	fmt.Printf("  %-8s %12s %12s\n", "encode", ms(modEncode), ms(info.EncodeSeconds))
	if sch != cluster.Uncompressed && info.EncodeSeconds > 0 {
		// Measured per-codec encode throughput beside the model's
		// per-core rate: the in-process figure is this machine's cores,
		// the modeled one is one Bebop core.
		measMBs := raw / info.EncodeSeconds / 1e6
		modMBs := raw / mdl.CodecCompressSeconds(1, raw, info.EncoderName, sch) / 1e6
		fmt.Printf("  %-8s %12.4g %12.4g   (encode MB/s, codec %s; modeled is per Bebop core)\n",
			"enc-MB/s", modMBs, measMBs, info.EncoderName)
	}
	fmt.Printf("  %-8s %12s %12s\n", "write", ms(modWrite), ms(info.WriteSeconds))
	fmt.Printf("  %-8s %12s %12s   (measured only on failure runs)\n", "restart", ms(recSec(info)), ms(measuredRestart))
	fin := func(s float64) float64 {
		if math.IsNaN(s) {
			return 0
		}
		return s
	}
	return []quality.CostLine{
		{Phase: "capture", ModeledSeconds: modCapture, MeasuredSeconds: fin(measCapture)},
		{Phase: "encode", ModeledSeconds: modEncode, MeasuredSeconds: info.EncodeSeconds},
		{Phase: "write", ModeledSeconds: modWrite, MeasuredSeconds: info.WriteSeconds},
		{Phase: "restart", ModeledSeconds: recSec(info), MeasuredSeconds: fin(measuredRestart)},
	}
}

// vecNorm is the Euclidean norm of the right-hand side — the ‖b‖ the
// stability verdict normalizes residuals against.
func vecNorm(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}
