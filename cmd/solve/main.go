// Command solve runs one fault-tolerant iterative solve end to end:
// it builds a 3D Poisson system, solves it with the chosen method and
// checkpointing scheme, optionally injecting failures in virtual time,
// and reports the outcome.
//
// Usage:
//
//	solve -method cg -grid 16 -scheme lossy -eb 1e-4 -mtti 300
//	solve -method jacobi -grid 12 -scheme traditional -ckptdir /tmp/ck
//	solve -method cg -grid 16 -scheme lossy -mtti 300 -async
//	solve -method cg -grid 16 -scheme lossy -mtti 300 -async -shards 8 -storage-workers 4
//
// -shards N splits every checkpoint into N shard objects plus a
// manifest, written concurrently by up to -storage-workers goroutines
// (0 = GOMAXPROCS). Passing -shards (any value, 1 included) also
// switches the simulated write cost from the paper's collective model
// (2,048 ranks writing concurrently at the full aggregate PFS
// bandwidth) to the single-writer striped model: per-stripe bandwidth
// × min(shards, stripes), saturating at the aggregate. Compare
// -shards 1 against -shards 8 to see the storage stage scale with
// stripes; the two models are different physical setups, so comparing
// a -shards run against a run without the flag compares collective
// writes against single-writer ones.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/failure"
	"repro/internal/fti"
	"repro/internal/model"
	"repro/internal/precond"
	"repro/internal/sim"
	"repro/internal/solver"
	"repro/internal/sparse"
	"repro/internal/sz"
)

func main() {
	method := flag.String("method", "cg", "iterative method: jacobi | gs | sor | ssor | cg | gmres")
	grid := flag.Int("grid", 14, "Poisson grid dimension (n³ unknowns)")
	rtol := flag.Float64("rtol", 1e-7, "relative convergence tolerance")
	schemeName := flag.String("scheme", "lossy", "checkpoint scheme: traditional | lossless | lossy | none")
	eb := flag.Float64("eb", 1e-4, "lossy pointwise-relative error bound")
	interval := flag.Float64("interval", 0, "checkpoint interval in simulated seconds (0 = Young-optimal)")
	mtti := flag.Float64("mtti", 0, "mean time to interruption in simulated seconds (0 = no failures)")
	tit := flag.Float64("tit", 1, "simulated seconds per iteration")
	seed := flag.Int64("seed", 1, "failure-injection seed")
	ckptDir := flag.String("ckptdir", "", "write checkpoints to this directory (default: in-memory)")
	maxIter := flag.Int("maxiter", 2_000_000, "iteration cap")
	async := flag.Bool("async", false, "asynchronous checkpointing: charge only the capture stall; encode+write overlap iterations")
	shards := flag.Int("shards", 1, "shard objects per checkpoint (>1 writes shards + a manifest; passing the flag at all prices writes with the single-writer striped-PFS model)")
	storageWorkers := flag.Int("storage-workers", 0, "worker pool bound for shard writes/reads (0 = GOMAXPROCS)")
	flag.Parse()
	// The striped single-writer cost model engages when -shards is
	// given explicitly — including -shards 1, so monolithic and sharded
	// runs compare within one model instead of across two.
	striped := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "shards" {
			striped = true
		}
	})

	if err := run(*method, *grid, *rtol, *schemeName, *eb, *interval, *mtti, *tit, *seed, *ckptDir, *maxIter, *async, *shards, *storageWorkers, striped); err != nil {
		fmt.Fprintln(os.Stderr, "solve:", err)
		os.Exit(1)
	}
}

func run(method string, grid int, rtol float64, schemeName string, eb, interval, mtti, tit float64, seed int64, ckptDir string, maxIter int, async bool, shards, storageWorkers int, striped bool) error {
	a := sparse.Poisson3D(grid)
	b := sparse.OnesRHS(a.Rows)
	fmt.Printf("system: 3D Poisson %d³ = %d unknowns, %d nonzeros\n", grid, a.Rows, a.NNZ())

	var s solver.Checkpointable
	var err error
	opts := solver.Options{RTol: rtol}
	switch method {
	case "jacobi":
		s, err = solver.NewStationary(solver.KindJacobi, a, b, nil, 0, opts)
	case "gs":
		s, err = solver.NewStationary(solver.KindGaussSeidel, a, b, nil, 0, opts)
	case "sor":
		s, err = solver.NewStationary(solver.KindSOR, a, b, nil, 1.5, opts)
	case "ssor":
		s, err = solver.NewStationary(solver.KindSSOR, a, b, nil, 1.2, opts)
	case "cg":
		var m *precond.IC0
		m, err = precond.NewIC0(a)
		if err != nil {
			return err
		}
		s = solver.NewCG(a, m, b, nil, solver.SeqSpace{}, opts)
	case "gmres":
		s = solver.NewGMRES(a, nil, b, nil, 30, solver.SeqSpace{}, opts)
	default:
		return fmt.Errorf("unknown method %q", method)
	}
	if err != nil {
		return err
	}

	var scheme core.Scheme
	switch schemeName {
	case "traditional":
		scheme = core.Traditional
	case "lossless":
		scheme = core.Lossless
	case "lossy":
		scheme = core.Lossy
	case "none":
		res, err := solver.RunToConvergence(s, solver.Options{MaxIter: maxIter}, nil)
		if err != nil {
			return err
		}
		fmt.Printf("converged=%v iterations=%d residual=%.3e\n",
			res.Converged, res.Iterations, res.FinalResidual)
		return nil
	default:
		return fmt.Errorf("unknown scheme %q", schemeName)
	}

	var storage fti.Storage = fti.NewMemStorage()
	if ckptDir != "" {
		ds, err := fti.NewDirStorage(ckptDir)
		if err != nil {
			return err
		}
		storage = ds
	}
	mgr, err := core.NewManager(core.Config{
		Scheme:         scheme,
		SZParams:       sz.Params{Mode: sz.PWRel, ErrorBound: eb},
		Shards:         shards,
		StorageWorkers: storageWorkers,
	}, storage, s)
	if err != nil {
		return err
	}
	if err := core.RegisterStatics(mgr.Checkpointer(), a, b); err != nil {
		return err
	}

	// Cost the checkpoints with the Bebop model at 2,048 processes so
	// the Young-optimal interval is meaningful.
	mdl := cluster.Bebop()
	raw := float64(a.Rows) * 8
	ckptSec := func(info fti.Info) float64 {
		sch := cluster.Uncompressed
		switch scheme {
		case core.Lossless:
			sch = cluster.LosslessCompressed
		case core.Lossy:
			sch = cluster.LossyCompressed
		}
		if striped {
			// Single-writer object writes under the striped-PFS model,
			// engaging min(shards, stripes) stripes — used for every
			// value of -shards (1 included) so monolithic and sharded
			// runs compare within the same model.
			n := info.Shards
			if n < 1 {
				n = shards
			}
			return mdl.ShardedCheckpointSeconds(2048, float64(info.Bytes), raw, sch, n)
		}
		return mdl.CheckpointSeconds(2048, float64(info.Bytes), raw, sch)
	}
	recSec := func(info fti.Info) float64 {
		sch := cluster.Uncompressed
		switch scheme {
		case core.Lossless:
			sch = cluster.LosslessCompressed
		case core.Lossy:
			sch = cluster.LossyCompressed
		}
		if striped {
			// Restarts priced like the write path: a sharded group
			// streams through min(shards, stripes) concurrent reads
			// overlapped with decompression; shards=1 is the serial
			// monolithic restore (exactly RecoverySeconds).
			n := info.Shards
			if n < 1 {
				n = shards
			}
			return mdl.ShardedRecoverySeconds(2048, float64(info.Bytes), raw, sch, n)
		}
		return mdl.RecoverySeconds(2048, float64(info.Bytes), raw, sch)
	}
	capSec := func(info fti.Info) float64 {
		return mdl.CaptureSeconds(2048, float64(info.RawBytes))
	}
	if interval == 0 {
		probe, err := mgr.Checkpoint()
		if err != nil {
			return err
		}
		// Young's interval balances the failure rate against the cost
		// the solver actually pays per checkpoint: the full write in
		// sync mode, the capture stall alone in async mode. The async
		// interval is floored at the background encode+write time —
		// checkpointing faster than the pipeline drains only converts
		// the hidden cost back into backpressure stall.
		perCkpt := ckptSec(probe)
		if async {
			perCkpt = capSec(probe)
		}
		interval = model.YoungInterval(mtti, perCkpt)
		if async && interval < ckptSec(probe) {
			interval = ckptSec(probe)
		}
		if interval == 0 {
			interval = 100 * tit
		}
		fmt.Printf("Young-optimal interval: %.0f simulated seconds\n", interval)
	}

	out, err := sim.Run(sim.Config{
		Stepper:           s,
		Manager:           mgr,
		X0:                make([]float64, a.Rows),
		TitSeconds:        tit,
		IntervalSeconds:   interval,
		CheckpointSeconds: ckptSec,
		RecoverySeconds:   recSec,
		AsyncCheckpoint:   async,
		CaptureSeconds:    capSec,
		Failures:          failure.NewInjector(mtti, seed),
		MaxIterations:     maxIter,
	})
	if err != nil {
		return err
	}
	fmt.Printf("converged=%v iterations=%d sim-time=%.0fs failures=%d checkpoints=%d\n",
		out.Converged, out.IterationsExecuted, out.SimSeconds, out.Failures, out.Checkpoints)
	fmt.Printf("checkpoint-time=%.1fs recovery-time=%.0fs final-residual=%.3e\n",
		out.CheckpointTime, out.RecoveryTime, out.FinalResidual)
	if async {
		fmt.Printf("async: aborted-in-flight=%d backpressure=%.1fs (stall is capture-only when 0)\n",
			out.AbortedCheckpoints, out.BackpressureTime)
	}
	if info := mgr.LastInfo(); info.Bytes > 0 {
		fmt.Printf("last checkpoint: %d bytes (ratio %.1fx, encoder %s)\n",
			info.Bytes, info.CompressionRatio, info.EncoderName)
		if info.Shards > 1 {
			fmt.Printf("sharded: %d shard objects + manifest, %d storage workers, striped write bandwidth %.2f GB/s\n",
				info.Shards, storageWorkers, mdl.StripedWriteBandwidth(info.Shards)/1e9)
		}
	}
	// On failure-injected runs, measure one real restart so the
	// in-process R (streaming shard-parallel restore) can be compared
	// against the modeled ShardedRecoverySeconds at cluster scale.
	if mtti > 0 && mgr.HasCheckpoint() {
		info := mgr.LastInfo()
		start := time.Now()
		it, err := mgr.Recover()
		if err != nil {
			return fmt.Errorf("restart measurement: %w", err)
		}
		wall := time.Since(start).Seconds()
		bps := 0.0
		if wall > 0 {
			bps = float64(info.Bytes) / wall
		}
		fmt.Printf("restart: measured %.2f ms wall for %d encoded bytes (%.1f MB/s, rolled back to iteration %d)\n",
			1e3*wall, info.Bytes, bps/1e6, it)
		fmt.Printf("restart: modeled R=%.2fs at 2048 ranks (%d shard objects)\n",
			recSec(info), max(info.Shards, 1))
	}
	return nil
}
