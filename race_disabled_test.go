//go:build !race

package lossyckpt_test

// raceEnabled: see race_enabled_test.go.
const raceEnabled = false
