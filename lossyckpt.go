// Package lossyckpt is the public facade of this reproduction of
// "Improving Performance of Iterative Methods by Lossy Checkpointing"
// (Tao, Di, Liang, Chen, Cappello — HPDC'18).
//
// The package re-exports the user-facing pieces of the internal
// implementation:
//
//   - iterative solvers (Jacobi/Gauss-Seidel/SOR/SSOR, CG, GMRES(k))
//     with a step-level API and restart support,
//   - error-bounded lossy compressors (SZ-like and ZFP-like) plus
//     lossless baselines,
//   - an FTI-like checkpoint/restart library (Protect/Checkpoint/
//     Recover) with pluggable storage and encoders,
//   - the paper's lossy checkpointing scheme connecting the two
//     (Manager), including the Theorem-3 adaptive error bound for
//     GMRES,
//   - the analytic performance model (Young's interval, overhead
//     equations, Theorems 1–3),
//   - and the experiment registry that regenerates every table and
//     figure of the paper's evaluation.
//
// A minimal end-to-end use:
//
//	a := lossyckpt.Poisson3D(32)
//	b := lossyckpt.OnesRHS(a.Rows)
//	cg := lossyckpt.NewCG(a, nil, b, nil, lossyckpt.SeqSpace{}, lossyckpt.SolverOptions{RTol: 1e-7})
//	mgr, _ := lossyckpt.NewManager(lossyckpt.ManagerConfig{
//	    Scheme:   lossyckpt.Lossy,
//	    Interval: 100,
//	    SZParams: lossyckpt.SZParams{Mode: lossyckpt.PWRel, ErrorBound: 1e-4},
//	}, lossyckpt.NewMemStorage(), cg)
//	res, _ := lossyckpt.RunToConvergence(cg, lossyckpt.SolverOptions{}, func(it int, rnorm float64) error {
//	    _, err := mgr.MaybeCheckpoint()
//	    return err
//	})
//
// # Performance
//
// The two hot paths of the lossy-checkpointing argument — the
// compressor and the solver inner loop — are parallel:
//
// SZ compression uses a blocked container ("SZG2"): vectors larger
// than SZParams.BlockSize elements (default 32,768 = 256 KiB) are
// split into fixed-size blocks that compress and decompress
// independently, each with its own predictor state and Huffman table,
// across a worker pool sized by GOMAXPROCS. The pointwise error bound
// of every mode is preserved exactly (RelRange converts to an absolute
// bound using the global value range before blocking), the output
// bytes are schedule-independent, and legacy single-stream "SZG1"
// checkpoints remain decodable. Inputs of at most one block keep the
// legacy format byte-for-byte. The ZFP, FPC, and flate codecs get the
// same treatment through a shared blocked container ("BLK1",
// CompressBlocked/DecompressBlockedInto): per-block independent
// state, concurrent compress and in-place decode, shard cuts aligned
// to block boundaries, legacy streams still decoding — with ZFP's
// blocks pinned to transform-block multiples so its blocked and
// legacy streams reconstruct bitwise identically.
//
// Sparse matrix-vector products (CSR.MulVec / MulVecSub) partition by
// row ranges above ~32k nonzeros; each row accumulates in serial
// order, so parallel results are bitwise identical to serial ones and
// convergence traces do not change. Smaller systems stay on the serial
// path. BLAS-1 kernels (Dot, Norm2, NormInf) use 4-way unrolled
// independent accumulators.
//
// Checkpointing itself is asynchronous on request: ManagerConfig.Async
// (or fti.NewAsync around a Checkpointer) routes checkpoints through a
// three-stage pipeline — synchronous capture (a deep copy into a
// double buffer, the only part the solver waits for), background
// encode through the blocked compressor, background storage write. At
// most one checkpoint is in flight; a second request blocks until the
// first commits (backpressure), and a background failure is surfaced
// on the next Checkpoint call. Recovery drains the in-flight write
// first, and a write that never completed falls back to the previous
// committed checkpoint, exactly like the paper's failure-during-
// checkpoint path. The numerics are unaffected: async and sync runs
// produce bitwise-identical convergence traces. The analytic model
// mirrors this with a capture-stall-only cost: AsyncEffectiveStall
// (capture + max(0, encode+write − interval)) replaces Tckp in
// Eq. (5)/(8), and the virtual-time simulator's AsyncCheckpoint mode
// charges exactly that stall while background writes occupy simulated
// time concurrently with iterations.
//
// The storage stage itself shards on request: ManagerConfig.Shards
// (or (*Checkpointer).SetSharding) splits every checkpoint into N
// shard objects written concurrently by a bounded worker pool
// (ManagerConfig.StorageWorkers), with cut points aligned to the SZG2
// compression-block boundaries, plus a small manifest — shard names,
// sizes, per-shard CRC32C checksums, encoder mode — committed last.
// A checkpoint exists exactly when its manifest does: shards without a
// manifest (a crashed write) are orphans that recovery ignores and gc
// sweeps, and a group with any missing or checksum-corrupted shard is
// rejected whole, so recovery falls back to the previous committed
// checkpoint, the paper's failure-during-checkpoint path again.
// Sharded and monolithic checkpoints coexist in one storage directory,
// and convergence traces are bitwise independent of the layout. The
// cluster model prices the layout via striped-PFS bandwidth:
// per-stripe bandwidth × min(shards, stripes)
// (cluster.Model.ShardedCheckpointSeconds, keyed off
// CheckpointInfo.Shards).
//
// The restore path streams symmetrically: a sharded checkpoint is
// decoded without reassembling its payload — each worker reads its
// shard, verifies its CRC32C, and block-decodes the SZG2 compression
// blocks it holds straight into the destination vectors, overlapping
// read, checksum, and decode across shards. Recover decodes directly
// into the registered (protected) variables when lengths match, so a
// restart performs no whole-payload buffer allocation and no
// decode-then-copy; the redundant whole-payload CRC is skipped for
// sharded groups (per-shard CRC32C already covered every byte) and
// kept for monolithic ones. Encoders expose the in-place decode via
// the DecoderInto extension (DecompressSZInto, zfp.DecompressInto,
// the lossless codecs' DecompressInto), with a decode-plus-copy
// fallback for encoders that lack it. The cluster model prices
// restarts the same way (cluster.Model.ShardedRecoverySeconds:
// per-stripe read bandwidth × min(shards, stripes), saturating at the
// read aggregate, overlapped with decompress-per-core).
//
// The checkpoint cadence itself can close the loop on the model:
// ManagerConfig.AdaptiveInterval (or sim.Config.Controller in the
// virtual-time simulator) plugs in the online interval controller —
// EWMA estimators over the measured per-checkpoint stage timings
// (capture/encode/write seconds and bytes in/out now surfaced on every
// CheckpointInfo), a censored-exponential posterior over observed
// failures (NewFailureRateEstimator), and a re-plan of the optimal
// interval each planning epoch via Young's √(2·C·M) or Daly's
// higher-order formula (DalyInterval). Asynchronous runs solve the
// fixed point τ = policy(M̂, AsyncEffectiveStall(t̂cap, t̂bg, τ)), so the
// planned interval reflects the overlapped stall rather than the raw
// checkpoint cost. The controller is a pure state machine driven on
// the caller's clock: simulated runs are bitwise reproducible —
// same seed and failure trace, same interval trajectory.
//
// Recovery itself is tiered: an ABFTGuard wired into
// ManagerConfig.ABFT retains per-iteration algorithmic redundancy
// (exact-state CG/PCG reconstruction, or a backward/forward hybrid for
// restartable solvers), and Manager.RecoverTiered then runs the full
// chain after a failure — checkpoint-free ABFT reconstruction, the
// latest committed checkpoint, older checkpoints, restart-from-zero —
// accepting the highest tier that verifies (bitwise checksums over the
// retained state, a true-residual band over the reconstruction) and
// reporting every attempt's cost in a RecoveryReport. A
// ChecksumOperator adds Huang–Abraham verification of every
// matrix-vector product for silent-corruption detection. The
// deterministic fault-injection harness (ParseFailurePlan, the
// cmd/solve -inject flag) drives seeded process losses and targeted
// corruptions of retained state, shards and manifests to exercise
// every rung of the chain.
//
// The whole pipeline is observable without being perturbable:
// Manager.Instrument wires a MetricsRegistry and LifecycleTracer
// through every layer it owns (fti stage timings and byte counts,
// shard fan-out, ABFT guard verdicts, controller re-plans, per-tier
// recovery outcomes), emitting per-stage spans on a Chrome
// trace_event timeline. Both are nil-safe — uninstrumented runs pay
// nothing — and instrumentation is a pure observer: instrumented and
// uninstrumented runs produce bitwise-identical convergence traces.
// The simulator (sim.Config.Metrics/Tracer) emits the same span
// schema on its virtual clock, and cmd/solve serves everything live
// (-debug-addr) or as exit artifacts (-metrics-out, -trace-out).
//
// The storage layer beneath all of this is fault-tolerant: wrapping
// any Storage in NewResilientStorage classifies every error
// (transient / permanent / corruption), absorbs transient PFS faults
// with capped exponential backoff under a per-op retry and time
// budget, fails fast on permanent ones, and hedges slow reads with a
// delayed second fetch. Commit-protocol crash points (a torn temp
// file, an unrenamed temp, shards without a manifest, a partial
// manifest) are enumerated and swept by FsckStorage at startup, so
// List exposes only fully committed checkpoints; a background
// StorageScrubber CRC-verifies committed groups between checkpoints
// and repairs latent corruption from retained state before a restart
// ever needs the bytes. ManagerConfig.DegradedWrites keeps the solver
// iterating when a save fails anyway — a failed checkpoint degrades
// the retention window, never the solve. The deterministic harness
// drives all of it: StorageInjector (and the -inject grammar's
// storagewrite/storageread/slowio/crash kinds, with N..M/S iteration
// ranges for sustained campaigns) injects seeded fault mixes that the
// wrapper must absorb with a bitwise-unchanged convergence trace, and
// the sim/cluster models price the expected retry delay per
// checkpoint (cluster.Model.StorageRetrySeconds).
//
// Knobs: GOMAXPROCS sizes the pool; SetParallelWorkers overrides it
// (SetParallelWorkers(1) forces serial execution, useful for
// reproducing single-core baselines); SZParams.BlockSize trades
// per-block Huffman-table overhead against parallelism;
// (*Checkpointer).SetKeep sets the checkpoint retention window
// (default 2, minimum 1); (*Checkpointer).SetSharding sets the shard
// count and storage worker bound. Checkpoint encode buffers are reused
// across checkpoints — double-buffered in the async pipeline — so a
// custom Storage implementation must not retain the byte slice passed
// to Write, must not recycle buffers returned by Read, and must be
// safe for concurrent use (the background writer runs while
// recovery-side reads may be issued, and the shard pool issues
// concurrent writes/reads for distinct names); see fti.Storage for the
// full ownership contract and the manifest+shard object layout.
//
// Benchmarks: go test -bench 'SZCompressParallel|CSRMulVecParallel'
// compares serial and parallel sub-benchmarks on 1M-element states
// and the 100³ Poisson operator; go test -bench CheckpointStall
// compares the solver-visible stall of sync vs async checkpoints;
// go test -bench ShardedWrite compares monolithic and sharded storage
// throughput on the same workload.
package lossyckpt

import (
	"repro/internal/abft"
	"repro/internal/adapt"
	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/failure"
	"repro/internal/fti"
	"repro/internal/fti/shard"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/quality"
	"repro/internal/solver"
	"repro/internal/sparse"
	"repro/internal/sz"
)

// ---- Parallelism knobs ------------------------------------------------------

// SetParallelWorkers overrides the worker count used by the blocked
// compressor and the parallel matrix kernels, returning the previous
// override (0 means "track GOMAXPROCS"). Pass 0 to restore the
// default; pass 1 to force serial execution.
func SetParallelWorkers(n int) int { return parallel.SetWorkers(n) }

// ParallelWorkers reports the effective worker count.
func ParallelWorkers() int { return parallel.Workers() }

// ---- Sparse matrices and problem generators --------------------------------

// CSR is a compressed-sparse-row matrix.
type CSR = sparse.CSR

// MatrixBuilder accumulates COO entries into a CSR matrix.
type MatrixBuilder = sparse.Builder

// NewMatrixBuilder returns a builder for a rows×cols matrix.
func NewMatrixBuilder(rows, cols int) *MatrixBuilder { return sparse.NewBuilder(rows, cols) }

// Poisson3D builds the paper's Eq. (15) operator on an n×n×n grid.
func Poisson3D(n int) *CSR { return sparse.Poisson3D(n) }

// Poisson3DAniso builds the 7-point operator on an nx×ny×nz grid.
func Poisson3DAniso(nx, ny, nz int) *CSR { return sparse.Poisson3DAniso(nx, ny, nz) }

// Poisson2D builds the 5-point operator on an n×n grid.
func Poisson2D(n int) *CSR { return sparse.Poisson2D(n) }

// KKT builds a symmetric indefinite saddle-point system (the Fig. 3
// workload class).
func KKT(gridN, nc int, seed int64) *CSR { return sparse.KKT(gridN, nc, seed) }

// OnesRHS returns the all-ones right-hand side.
func OnesRHS(n int) []float64 { return sparse.OnesRHS(n) }

// SmoothField samples a smooth synthetic field (a realistic solver
// state / forcing).
func SmoothField(n int, seed int64) []float64 { return sparse.SmoothField(n, seed) }

// RHSForSolution returns b = A·xExact.
func RHSForSolution(a *CSR, xExact []float64) []float64 { return sparse.RHSForSolution(a, xExact) }

// ---- Solvers ----------------------------------------------------------------

// SolverOptions configure convergence testing.
type SolverOptions = solver.Options

// Stepper is the iteration-level solver interface.
type Stepper = solver.Stepper

// Result summarizes a solve.
type Result = solver.Result

// SeqSpace is the sequential reduction space.
type SeqSpace = solver.SeqSpace

// CG is the preconditioned conjugate gradient solver.
type CG = solver.CG

// GMRES is the restarted GMRES(k) solver.
type GMRES = solver.GMRES

// Stationary covers Jacobi/Gauss-Seidel/SOR/SSOR.
type Stationary = solver.Stationary

// StationaryKind selects the stationary sweep.
type StationaryKind = solver.StationaryKind

// Stationary method kinds.
const (
	KindJacobi      = solver.KindJacobi
	KindGaussSeidel = solver.KindGaussSeidel
	KindSOR         = solver.KindSOR
	KindSSOR        = solver.KindSSOR
)

// NewCG constructs a CG solver; see solver.NewCG.
var NewCG = solver.NewCG

// NewGMRES constructs a GMRES(k) solver; see solver.NewGMRES.
var NewGMRES = solver.NewGMRES

// NewStationary constructs a stationary solver; see solver.NewStationary.
var NewStationary = solver.NewStationary

// RunToConvergence drives a Stepper to convergence with an optional
// per-iteration callback.
var RunToConvergence = solver.RunToConvergence

// ---- Compression -------------------------------------------------------------

// SZParams configure the SZ-like compressor.
type SZParams = sz.Params

// SZMode selects the error-bound interpretation.
type SZMode = sz.Mode

// Error-bound modes.
const (
	AbsBound = sz.Abs
	RelRange = sz.RelRange
	PWRel    = sz.PWRel
)

// CompressSZ compresses with the SZ-like error-bounded compressor.
var CompressSZ = sz.Compress

// DecompressSZ reverses CompressSZ.
var DecompressSZ = sz.Decompress

// DecompressSZInto reverses CompressSZ into a caller-provided slice
// whose length must equal the stream's element count — the zero-copy
// decode the streaming restore path is built on.
var DecompressSZInto = sz.DecompressInto

// SZBlockLayout describes the block structure of an SZG2 stream for
// streaming decode: element count, elements per block, and the byte
// span of every independently decodable block.
type SZBlockLayout = sz.BlockLayout

// ParseSZBlockLayout parses an SZG2 container header (header bytes
// plus the full stream length) into its block layout.
var ParseSZBlockLayout = sz.ParseBlockLayout

// DecodeSZBlockInto decodes one SZG2 block payload into a slice
// holding exactly that block's elements.
var DecodeSZBlockInto = sz.DecodeBlockInto

// SZRange is a byte span within an encoded SZ stream.
type SZRange = sz.Range

// SZBlockRanges reports the byte span of every compression block in an
// SZG2 stream (false for legacy/foreign streams) — the shard-alignment
// cut points.
var SZBlockRanges = sz.BlockRanges

// SZSplitBlocks partitions an SZ stream into at most n contiguous
// spans cut on block boundaries.
var SZSplitBlocks = sz.SplitBlocks

// ---- Blocked containers (ZFP / FPC / flate) ---------------------------------

// CodecID identifies a codec inside the shared "BLK1" blocked
// container (the ZFP/FPC/flate counterpart of SZ's SZG2).
type CodecID = codec.ID

// The blocked container's codec IDs.
const (
	CodecZFP   = codec.ZFP
	CodecFPC   = codec.FPC
	CodecFlate = codec.Flate
)

// CodecParams select the codec and its knobs (error bound for ZFP,
// DEFLATE level for flate, elements per block) for CompressBlocked.
type CodecParams = codec.Params

// CompressBlocked encodes through the blocked container: inputs above
// one block emit a BLK1 stream whose blocks compress concurrently
// with fully independent state; smaller inputs keep the codec's
// legacy stream byte-for-byte.
var CompressBlocked = codec.Compress

// DecompressBlocked decodes a BLK1 container or any codec's legacy
// stream, dispatching on the stream magic.
var DecompressBlocked = codec.Decompress

// DecompressBlockedInto is DecompressBlocked into a caller-provided
// slice whose length must equal the stream's element count — the
// zero-copy decode the streaming restore path uses.
var DecompressBlockedInto = codec.DecompressInto

// IsBlockedStream reports whether a stream is a BLK1 container.
var IsBlockedStream = codec.IsBlocked

// BlockedStreamID reads the codec ID out of a BLK1 container header.
var BlockedStreamID = codec.StreamID

// ParseBlockedLayout parses a BLK1 container header (header bytes plus
// the full stream length) into its block layout for streaming decode.
var ParseBlockedLayout = codec.ParseBlockLayout

// BlockedRanges reports the byte span of every block in a BLK1 stream
// (false for legacy/foreign streams) — the shard-alignment cut points.
var BlockedRanges = codec.BlockRanges

// SplitBlockedStream partitions a BLK1 stream into at most n
// contiguous spans cut on block boundaries.
var SplitBlockedStream = codec.SplitBlocks

// DecodeBlockedBlockInto decodes one BLK1 block payload into a slice
// holding exactly that block's elements.
var DecodeBlockedBlockInto = codec.DecodeBlockInto

// BlockedFPC is the lossless FPC codec behind the blocked container —
// plug into LosslessEncoder for parallel lossless checkpoints.
type BlockedFPC = codec.BlockedFPC

// BlockedFlate is the lossless DEFLATE codec behind the blocked
// container.
type BlockedFlate = codec.BlockedFlate

// ---- Checkpoint/restart -------------------------------------------------------

// Checkpointer is the FTI-like Protect/Checkpoint/Recover library.
type Checkpointer = fti.Checkpointer

// Storage is where checkpoints live.
type Storage = fti.Storage

// CheckpointInfo reports the cost of one checkpoint.
type CheckpointInfo = fti.Info

// CheckpointSnapshot is one checkpoint's content (iteration, scalars,
// vectors), for direct Checkpointer/AsyncCheckpointer use.
type CheckpointSnapshot = fti.Snapshot

// NewCheckpointer wraps storage with an encoder.
var NewCheckpointer = fti.New

// AsyncCheckpointer is the three-stage asynchronous checkpoint
// pipeline: synchronous capture, background encode, background write.
type AsyncCheckpointer = fti.AsyncCheckpointer

// CheckpointTicket identifies one asynchronous save (Done/Wait).
type CheckpointTicket = fti.Ticket

// AsyncCheckpointStats accounts capture/backpressure/background time.
type AsyncCheckpointStats = fti.AsyncStats

// NewAsyncCheckpointer wraps a Checkpointer in the async pipeline.
var NewAsyncCheckpointer = fti.NewAsync

// NewMemStorage returns an in-memory checkpoint store.
var NewMemStorage = fti.NewMemStorage

// NewDirStorage returns a directory-backed checkpoint store.
var NewDirStorage = fti.NewDirStorage

// ShardManifest describes a committed sharded checkpoint: encoder
// mode, total payload length, and the shard objects with their sizes
// and CRC32C checksums.
type ShardManifest = shard.Manifest

// ShardInfo describes one shard object of a manifest.
type ShardInfo = shard.Info

// ParseShardManifest decodes and validates a manifest object (crafted
// sizes and shard counts are rejected before any allocation).
var ParseShardManifest = shard.ParseManifest

// IsShardManifest reports whether a stored object is a shard manifest
// rather than a monolithic checkpoint payload.
var IsShardManifest = shard.IsManifest

// RawEncoder stores vectors verbatim (traditional checkpointing).
type RawEncoder = fti.Raw

// SZEncoder stores vectors through the lossy compressor.
type SZEncoder = fti.SZ

// ZFPEncoder stores vectors through the ZFP-like transform codec,
// blocked above ZFPEncoder.BlockElems elements (transform-block
// aligned, so blocked and legacy streams decode bitwise identically).
type ZFPEncoder = fti.ZFP

// LosslessEncoder stores vectors through a lossless codec — wrap
// BlockedFPC or BlockedFlate for the parallel blocked containers.
type LosslessEncoder = fti.Lossless

// DecoderInto is the optional streaming extension of a checkpoint
// encoder: decode directly into a caller-provided slice (the restore
// path then reconstructs vectors in place). Encoders without it fall
// back to decode-plus-copy via EncoderDecodeInto.
type DecoderInto = fti.DecoderInto

// EncoderDecodeInto decodes with an encoder's DecoderInto fast path
// when implemented, falling back to Decode plus a copy.
var EncoderDecodeInto = fti.DecodeInto

// ---- Fault-tolerant storage ---------------------------------------------------

// StorageFaultPolicy tunes the resilient storage wrapper: retry count,
// capped exponential backoff with seeded jitter, per-op time budget,
// and the hedged-read delay for slow primaries.
type StorageFaultPolicy = fti.FaultPolicy

// ResilientStorage wraps any Storage with error classification,
// bounded retry/backoff for transient faults, fail-fast on permanent
// ones, and hedged re-reads — the solver above it never sees a
// transient PFS error.
type ResilientStorage = fti.Resilient

// NewResilientStorage wraps a Storage under a policy (zero value =
// defaults: 4 retries, 2ms base / 250ms cap backoff).
var NewResilientStorage = fti.NewResilient

// StorageErrClass is the retry layer's error taxonomy.
type StorageErrClass = fti.ErrClass

// The error classes.
const (
	StorageErrTransient  = fti.ClassTransient
	StorageErrPermanent  = fti.ClassPermanent
	StorageErrCorruption = fti.ClassCorruption
)

// ClassifyStorageError classifies an error (self-classifying errors
// via the fti.Classifier interface win; syscall errnos and sentinel
// errors otherwise).
var ClassifyStorageError = fti.ClassifyError

// StorageFaultError is the terminal error of an exhausted or
// fail-fast storage op: op, object name, attempt count, class, cause.
type StorageFaultError = fti.FaultError

// StorageRetryStats snapshots a ResilientStorage's accounting.
type StorageRetryStats = fti.RetryStats

// AsyncSaveError wraps a background save failure with the op, the
// checkpoint name, and the attempt count the retry layer reported.
type AsyncSaveError = fti.AsyncSaveError

// FsckStorage sweeps a storage namespace at startup: stale temp files
// unlinked, orphan shards and uncommitted groups GC'd, so List
// exposes only fully committed checkpoints afterwards.
var FsckStorage = fti.Fsck

// FsckReport is what a startup sweep found and removed.
type FsckReport = fti.FsckReport

// TempSweeper is the optional Storage extension the fsck sweep uses
// to unlink stale temp files (DirStorage implements it).
type TempSweeper = fti.TempSweeper

// StorageScrubber CRC-verifies committed checkpoints in the
// background and repairs latent corruption from retained state — or
// GC's an unrepairable group when an intact sibling exists.
type StorageScrubber = fti.Scrubber

// NewStorageScrubber builds a scrubber over a storage namespace; wire
// it to a Checkpointer with (*Checkpointer).AttachScrubber so the
// newest group stays repairable from memory.
var NewStorageScrubber = fti.NewScrubber

// StorageScrubStats counts sweeps, corruptions, repairs and drops.
type StorageScrubStats = fti.ScrubStats

// StorageInjector interposes seeded storage faults (transient and
// permanent read/write errors, slow ops, mid-commit crashes) under
// the resilient wrapper — the deterministic harness behind the
// storagewrite/storageread/slowio/crash injection kinds.
type StorageInjector = failure.StorageInjector

// NewStorageInjector seeds an injector over a Storage.
var NewStorageInjector = failure.NewStorageInjector

// StorageFaultProfile configures an injector's continuous fault
// campaign (per-attempt rate, transient fraction, first-attempt
// determinism, slow-op delay).
type StorageFaultProfile = failure.StorageProfile

// StorageInjectStats counts what an injector did.
type StorageInjectStats = failure.InjectStats

// ErrStorageCrashed is every operation's error between an injected
// crash and revival.
var ErrStorageCrashed = failure.ErrCrashed

// ---- The paper's scheme --------------------------------------------------------

// Scheme selects traditional, lossless, or lossy checkpointing.
type Scheme = core.Scheme

// The three checkpointing schemes.
const (
	Traditional = core.Traditional
	LosslessGz  = core.Lossless
	Lossy       = core.Lossy
)

// ManagerConfig assembles a Manager.
type ManagerConfig = core.Config

// Manager wires a solver to checkpoint storage under a scheme.
type Manager = core.Manager

// NewManager builds a Manager; see core.NewManager.
var NewManager = core.NewManager

// RegisterStatics checkpoints A and b once (static variables).
var RegisterStatics = core.RegisterStatics

// ---- Tiered ABFT recovery --------------------------------------------------------

// ABFTGuard retains per-iteration algorithmic redundancy over a solver
// so a lost rank's block can be reconstructed without any checkpoint:
// exact-state reconstruction for CG/PCG (retained r, p, ρ plus a local
// solve of the failed block), or the backward/forward hybrid for
// restartable solvers (periodically retained x spliced into a
// restart). Wire into ManagerConfig.ABFT to arm the recovery chain's
// first tier.
type ABFTGuard = abft.Guard

// ABFTConfig assembles an ABFTGuard.
type ABFTConfig = abft.Config

// ABFTMethod selects the reconstruction algorithm.
type ABFTMethod = abft.Method

// Reconstruction methods.
const (
	ABFTExactState      = abft.ExactState
	ABFTBackwardForward = abft.BackwardForward
)

// ABFTRecon reports one accepted reconstruction (rank, iteration,
// local-solve iterations, verification residuals).
type ABFTRecon = abft.Recon

// ABFTStats counts a guard's observes, reconstructions and rejections.
type ABFTStats = abft.Stats

// NewABFTGuard builds an ABFTGuard over an operator, right-hand side
// and solver.
var NewABFTGuard = abft.NewGuard

// ChecksumOperator wraps a CSR operator with Huang–Abraham checksum
// verification of every matrix-vector product — silent-corruption
// detection on the solver's hot path, numerics untouched.
type ChecksumOperator = abft.ChecksumOperator

// NewChecksumOperator precomputes the column-sum checksum vector.
var NewChecksumOperator = abft.NewChecksumOperator

// RecoveryTier names one rung of the tiered recovery chain.
type RecoveryTier = core.RecoveryTier

// The chain's tiers, tried in order by Manager.RecoverTiered.
const (
	TierABFT               = core.TierABFT
	TierCheckpoint         = core.TierCheckpoint
	TierPreviousCheckpoint = core.TierPreviousCheckpoint
	TierRestartZero        = core.TierRestartZero
)

// TierAttempt is one tier try: accepted or not, and what it cost.
type TierAttempt = core.TierAttempt

// RecoveryReport is the outcome of one Manager.RecoverTiered call.
type RecoveryReport = core.RecoveryReport

// RecoveryObservation is one completed recovery's measured cost with
// its tier flavor (RestartIO=false for ABFT reconstructions), fed to
// the interval controller's ObserveRecoveryKind so checkpoint-free
// recoveries never contaminate the I/O restart-cost estimate.
type RecoveryObservation = adapt.RecoveryObs

// FailureKind is one injectable fault of the deterministic harness.
type FailureKind = failure.Kind

// The injectable fault kinds (the -inject spec grammar's names).
const (
	FailProcLoss        = failure.ProcLoss
	FailCorruptABFT     = failure.CorruptABFT
	FailCorruptShard    = failure.CorruptShard
	FailCorruptManifest = failure.CorruptManifest
	FailMidCheckpoint   = failure.MidCheckpoint
	FailStorageWrite    = failure.StorageWriteFault
	FailStorageRead     = failure.StorageReadFault
	FailSlowIO          = failure.SlowIO
	FailCrash           = failure.Crash
)

// FailurePlan is a parsed deterministic injection schedule.
type FailurePlan = failure.Plan

// ParseFailurePlan parses a `kind(+kind)*@iter(,...)` injection spec
// into a seeded plan.
var ParseFailurePlan = failure.ParsePlan

// ParseFailureKind parses one fault-kind name.
var ParseFailureKind = failure.ParseKind

// CorruptLatestShard flips bytes in a random shard of the newest
// stored checkpoint (fault injection for recovery testing).
var CorruptLatestShard = failure.CorruptLatestShard

// CorruptLatestManifest corrupts the newest checkpoint's manifest (or
// monolithic object), forcing recovery onto an older checkpoint.
var CorruptLatestManifest = failure.CorruptLatestManifest

// ---- Adaptive checkpoint interval ------------------------------------------------

// IntervalController is the online checkpoint-interval controller:
// EWMA cost estimators + censored failure-rate posterior + Young/Daly
// re-planning (the AsyncEffectiveStall fixed point in async mode).
// Plug into ManagerConfig.AdaptiveInterval or sim.Config.Controller.
type IntervalController = adapt.Controller

// IntervalControllerConfig assembles an IntervalController.
type IntervalControllerConfig = adapt.Config

// NewIntervalController builds an IntervalController.
var NewIntervalController = adapt.New

// IntervalPolicy selects the optimal-interval formula a re-plan solves.
type IntervalPolicy = adapt.Policy

// Interval policies.
const (
	IntervalPolicyDaly  = adapt.PolicyDaly
	IntervalPolicyYoung = adapt.PolicyYoung
)

// CheckpointObservation is one completed checkpoint's measured cost,
// fed to the controller's ObserveCheckpoint.
type CheckpointObservation = adapt.CheckpointObs

// IntervalPlan is one re-planning decision (time, interval, and the
// estimates it was made from).
type IntervalPlan = adapt.Plan

// IntervalEstimates snapshots the controller's current beliefs.
type IntervalEstimates = adapt.Estimates

// EstimateFailureRate is the censored-exponential MLE of a failure
// rate from observed inter-failure gaps plus failure-free tail time.
var EstimateFailureRate = failure.EstimateRate

// FailureRateEstimator is the incremental, prior-backed posterior the
// controller estimates λ with.
type FailureRateEstimator = failure.RateEstimator

// NewFailureRateEstimator builds a FailureRateEstimator from a prior
// MTTI worth `weight` pseudo-failures of evidence.
var NewFailureRateEstimator = failure.NewRateEstimator

// ---- Performance model ----------------------------------------------------------

// YoungInterval is Eq. (1): the optimal checkpoint interval.
var YoungInterval = model.YoungInterval

// DalyInterval is Daly's higher-order optimal checkpoint interval,
// accurate even when the checkpoint cost approaches the MTTI.
var DalyInterval = model.DalyInterval

// ExpectedOverheadRatio is Eq. (5).
var ExpectedOverheadRatio = model.ExpectedOverheadRatio

// LossyOverheadRatio is Eq. (8).
var LossyOverheadRatio = model.LossyOverheadRatio

// MaxExtraIterations is Theorem 1 (Eq. 9).
var MaxExtraIterations = model.MaxExtraIterations

// StationaryExtraIterations is Theorem 2's pointwise bound.
var StationaryExtraIterations = model.StationaryExtraIterations

// AsyncEffectiveStall is the solver-visible stall per asynchronous
// checkpoint: capture + max(0, encode+write − interval).
var AsyncEffectiveStall = model.AsyncEffectiveStall

// AsyncOverheadRatio is Eq. (5) with the overlapped checkpoint cost.
var AsyncOverheadRatio = model.AsyncOverheadRatio

// GMRESAdaptiveBound is Theorem 3's adaptive error bound.
var GMRESAdaptiveBound = model.GMRESAdaptiveBound

// ---- Observability ---------------------------------------------------------------

// MetricsRegistry is the dependency-free metrics registry: atomic
// counters, gauges, and fixed-bucket histograms with labeled child
// scopes, snapshot-able and mergeable, written as Prometheus text or
// JSON. A nil *MetricsRegistry is fully usable — every handle it
// hands out no-ops — so instrumented code pays nothing when metrics
// are off. Wire into a Manager with Manager.Instrument, or into the
// virtual-time simulator via sim.Config.Metrics; cmd/solve exposes it
// live on -debug-addr and at exit via -metrics-out.
type MetricsRegistry = obs.Registry

// NewMetricsRegistry builds an empty registry.
var NewMetricsRegistry = obs.New

// MetricCounter is a monotonically increasing counter handle.
type MetricCounter = obs.Counter

// MetricGauge is a last-value gauge handle.
type MetricGauge = obs.Gauge

// MetricHistogram is a fixed-bucket histogram handle.
type MetricHistogram = obs.Histogram

// MetricLabel is one key=value label on a registry scope.
type MetricLabel = obs.Label

// MetricsSnapshot is a point-in-time copy of a registry, safe to
// merge (across shards or processes) and serialize.
type MetricsSnapshot = obs.Snapshot

// MetricData is one metric inside a MetricsSnapshot.
type MetricData = obs.MetricData

// LatencyBuckets are the default histogram bounds for durations in
// seconds; ByteBuckets for sizes in bytes.
var (
	LatencyBuckets = obs.LatencyBuckets
	ByteBuckets    = obs.ByteBuckets
)

// ValidMetricName reports whether a name follows the repository's
// subsystem_name_unit convention (internal/obs/names.go is the single
// source of truth for the catalog).
var ValidMetricName = obs.ValidMetricName

// LifecycleTracer records structured spans for every checkpoint stage
// (capture → encode → write → shard-commit) and recovery attempt,
// exported as Chrome trace_event JSON (chrome://tracing, Perfetto).
// Nil tracers no-op like nil registries. Real runs stamp wall clocks;
// the simulator emits the same span schema on its virtual clock.
type LifecycleTracer = obs.Tracer

// TraceSpanEvent is one recorded span or instant from a tracer.
type TraceSpanEvent = obs.SpanEvent

// NewLifecycleTracer builds a wall-clock tracer.
var NewLifecycleTracer = obs.NewTracer

// NewLifecycleTracerWithClock builds a tracer on a caller-provided
// clock (the virtual-time simulator's, in simulated runs).
var NewLifecycleTracerWithClock = obs.NewTracerWithClock

// ---- Numerical telemetry ---------------------------------------------------------

// QualityAuditor audits the distortion committed checkpoints actually
// introduced (observed vs requested bound, PSNR, compression ratio —
// sampled, via the encoders' encode-path accumulators or a decode
// cross-check) and attributes each recovery's convergence delay (the
// paper's N′, realized). It is strictly observational — instrumented
// runs converge bitwise-identically — and nil-safe. Attach with
// Manager.InstrumentQuality (and sim.Config.Quality for virtual-time
// runs); feed residuals once per iteration via ObserveResidual.
type QualityAuditor = quality.Auditor

// QualityConfig tunes the auditor (sampling cadence, exhaustive
// decode verification, ‖b‖ and c for the stability verdict).
type QualityConfig = quality.Config

// NewQualityAuditor builds a QualityAuditor.
var NewQualityAuditor = quality.New

// QualityRecord is one audited vector of one committed checkpoint.
type QualityRecord = quality.Record

// CheckpointDistortion aggregates a checkpoint's audited vectors —
// the shape RecoveryReport.AdoptedDistortion tags adopted state with.
type CheckpointDistortion = quality.Distortion

// RecoveryAttribution is one recovery's realized convergence delay:
// realized N′ and iterations until the failure-point residual was
// reacquired.
type RecoveryAttribution = quality.RecoveryEntry

// RunReport is the versioned JSON artifact unifying the cost table,
// metrics snapshot, per-checkpoint quality records, recovery
// attributions, and the stability verdict (cmd/solve -report-out,
// served live at /report on -debug-addr).
type RunReport = quality.RunReport

// RunReportInfo identifies the run a RunReport describes.
type RunReportInfo = quality.RunInfo

// RunReportCostLine is one phase of a RunReport's cost table.
type RunReportCostLine = quality.CostLine

// StabilityVerdict classifies a run's lossy checkpoints against the
// Fox et al. inline-compression stability region (bound within
// c·‖r‖/‖b‖ at each save).
type StabilityVerdict = quality.StabilityVerdict

// RunReportSchema versions the RunReport JSON layout.
const RunReportSchema = quality.ReportSchema

// ---- Experiments -----------------------------------------------------------------

// ExperimentConfig tunes an experiment run.
type ExperimentConfig = experiments.Config

// ExperimentResult is a rendered experiment outcome.
type ExperimentResult = experiments.Result

// RunExperiment regenerates a table/figure by ID (fig1…fig10, table3).
var RunExperiment = experiments.Run

// ExperimentIDs lists all reproducible artifacts.
var ExperimentIDs = experiments.IDs
