//go:build race

package lossyckpt_test

// raceEnabled reports that this binary was built with the race
// detector, whose instrumentation inflates heap allocation counts;
// allocation-bound assertions are skipped under it.
const raceEnabled = true
