// Benchmarks regenerating every table and figure of the paper's
// evaluation (one benchmark per artifact, backed by the experiment
// registry), plus kernel benchmarks for the substrates and ablation
// benchmarks for the design choices called out in DESIGN.md §5.
package lossyckpt_test

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"testing"
	"time"

	lossyckpt "repro"
	"repro/internal/abft"
	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/failure"
	"repro/internal/fti"
	"repro/internal/lossless"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/precond"
	"repro/internal/quality"
	"repro/internal/solver"
	"repro/internal/sparse"
	"repro/internal/sz"
	"repro/internal/zfp"
)

// runExperiment executes one registry experiment in quick mode.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Run(id, experiments.Config{Quick: true, Seed: 1})
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if err := res.WriteText(io.Discard); err != nil {
			b.Fatalf("%s render: %v", id, err)
		}
	}
}

// ---- One benchmark per paper artifact --------------------------------------

func BenchmarkFig1OverheadSurface(b *testing.B)         { runExperiment(b, "fig1") }
func BenchmarkFig2CGExtraIterations(b *testing.B)       { runExperiment(b, "fig2") }
func BenchmarkFig3KKTScaling(b *testing.B)              { runExperiment(b, "fig3") }
func BenchmarkTable3CheckpointSizes(b *testing.B)       { runExperiment(b, "table3") }
func BenchmarkFig4JacobiCkptTime(b *testing.B)          { runExperiment(b, "fig4") }
func BenchmarkFig5GMRESCkptTime(b *testing.B)           { runExperiment(b, "fig5") }
func BenchmarkFig6CGCkptTime(b *testing.B)              { runExperiment(b, "fig6") }
func BenchmarkFig7ExpectedOverhead(b *testing.B)        { runExperiment(b, "fig7") }
func BenchmarkFig8ConvergenceIterations(b *testing.B)   { runExperiment(b, "fig8") }
func BenchmarkFig9JacobiResidualTrace(b *testing.B)     { runExperiment(b, "fig9") }
func BenchmarkFig10FaultToleranceOverhead(b *testing.B) { runExperiment(b, "fig10") }

// ---- Kernel benchmarks -------------------------------------------------------

func solverState(n int) []float64 {
	x := sparse.SmoothField(n, 7)
	for i := range x {
		x[i] += 2.5
	}
	return x
}

func BenchmarkSZCompressPWRel(b *testing.B) {
	x := solverState(1 << 20)
	b.SetBytes(int64(8 * len(x)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sz.Compress(x, sz.Params{Mode: sz.PWRel, ErrorBound: 1e-4}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSZCompressAbs(b *testing.B) {
	x := solverState(1 << 20)
	b.SetBytes(int64(8 * len(x)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sz.Compress(x, sz.Params{Mode: sz.Abs, ErrorBound: 1e-4}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSZDecompress(b *testing.B) {
	x := solverState(1 << 20)
	comp, err := sz.Compress(x, sz.Params{Mode: sz.Abs, ErrorBound: 1e-4})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(8 * len(x)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sz.Decompress(comp); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkZFPCompress(b *testing.B) {
	x := solverState(1 << 20)
	b.SetBytes(int64(8 * len(x)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := zfp.Compress(x, 1e-4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFlateCompress(b *testing.B) {
	x := solverState(1 << 20)
	b.SetBytes(int64(8 * len(x)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (lossless.Flate{}).Compress(x); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFPCCompress(b *testing.B) {
	x := solverState(1 << 20)
	b.SetBytes(int64(8 * len(x)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (lossless.FPC{}).Compress(x); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCodecThroughput is the per-codec, per-core throughput
// matrix on the 1M-element solver state: one compress and one
// decompress sub-benchmark per codec (SZ PWRel/Abs through the SZG2
// container, ZFP/FPC/flate through the shared BLK1 blocked container),
// all pinned to a single worker so the MB/s column is per-core. The
// decompress side decodes into a reused target (the DecompressInto
// path the streaming restore is built on). Acceptance bands are
// asserted in-bench (skipped under the race detector, whose
// instrumentation distorts both time and allocation counts):
//
//   - SZ PWRel compress must run at least 2× faster than the 46.7 ms
//     1M-element baseline recorded when the blocked container first
//     landed (PR 1), i.e. ≤ 23.35 ms/op;
//   - the blocked ZFP/FPC/flate compressors must allocate O(block)
//     amortized — strictly less than the 8 MB raw payload per op —
//     proving the per-block scratch is pooled, not reallocated.
func BenchmarkCodecThroughput(b *testing.B) {
	x := solverState(1 << 20)
	rawBytes := float64(8 * len(x))
	prev := parallel.SetWorkers(1)
	defer parallel.SetWorkers(prev)

	cases := []struct {
		name     string
		compress func([]float64) ([]byte, error)
		decInto  func([]float64, []byte) error
		// maxCompressNs is the per-op compress time band (0 = none).
		maxCompressNs float64
		// blockedAlloc asserts the O(block) allocation band on compress.
		blockedAlloc bool
	}{
		{
			name: "sz-pwrel",
			compress: func(v []float64) ([]byte, error) {
				return sz.Compress(v, sz.Params{Mode: sz.PWRel, ErrorBound: 1e-4})
			},
			decInto:       sz.DecompressInto,
			maxCompressNs: 23.35e6,
		},
		{
			name: "sz-abs",
			compress: func(v []float64) ([]byte, error) {
				return sz.Compress(v, sz.Params{Mode: sz.Abs, ErrorBound: 1e-4})
			},
			decInto: sz.DecompressInto,
		},
		{
			name: "zfp",
			compress: func(v []float64) ([]byte, error) {
				return codec.Compress(v, codec.Params{Codec: codec.ZFP, Bound: 1e-4})
			},
			decInto:      codec.DecompressInto,
			blockedAlloc: true,
		},
		{
			name:         "fpc",
			compress:     codec.BlockedFPC{}.Compress,
			decInto:      codec.BlockedFPC{}.DecompressInto,
			blockedAlloc: true,
		},
		{
			name:         "flate",
			compress:     codec.BlockedFlate{}.Compress,
			decInto:      codec.BlockedFlate{}.DecompressInto,
			blockedAlloc: true,
		},
	}

	for _, c := range cases {
		comp, err := c.compress(x)
		if err != nil {
			b.Fatalf("%s: %v", c.name, err)
		}
		dst := make([]float64, len(x))
		if err := c.decInto(dst, comp); err != nil {
			b.Fatalf("%s: decode: %v", c.name, err)
		}
		for i := range dst {
			if math.IsNaN(dst[i]) || math.IsInf(dst[i], 0) {
				b.Fatalf("%s: non-finite reconstruction at %d", c.name, i)
			}
		}
		b.Run(c.name+"/compress", func(b *testing.B) {
			b.SetBytes(int64(rawBytes))
			// Warm the shared scratch pools, then pause GC while
			// counting: sync.Pool contents are dropped at every cycle,
			// so a mid-loop collection would bill the pool re-warm (big
			// block buffers, DEFLATE writers) to whichever op it landed
			// on and drown the steady-state figure the band is about.
			if _, err := c.compress(x); err != nil {
				b.Fatal(err)
			}
			prevGC := debug.SetGCPercent(-1)
			defer debug.SetGCPercent(prevGC)
			runtime.GC()
			var m0, m1 runtime.MemStats
			runtime.ReadMemStats(&m0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.compress(x); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			runtime.ReadMemStats(&m1)
			per := float64(m1.TotalAlloc-m0.TotalAlloc) / float64(b.N)
			b.ReportMetric(per/1e6, "MB-alloc/op")
			if raceEnabled {
				return
			}
			if c.blockedAlloc && per >= rawBytes {
				b.Fatalf("%s compress allocated %.1f MB/op — the blocked container must stay under the %.1f MB raw payload (pooled per-block scratch)",
					c.name, per/1e6, rawBytes/1e6)
			}
			if c.maxCompressNs > 0 {
				if perOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N); perOp > c.maxCompressNs {
					b.Fatalf("%s compress %.1f ms/op exceeds the %.1f ms acceptance band (2x the 46.7 ms PR-1 baseline)",
						c.name, perOp/1e6, c.maxCompressNs/1e6)
				}
			}
		})
		b.Run(c.name+"/decompress", func(b *testing.B) {
			b.SetBytes(int64(rawBytes))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := c.decInto(dst, comp); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSZCompressParallel measures the blocked SZ pipeline on a
// 1M-element solver state, serial (one worker) versus the full worker
// pool. The error bound is verified once post-decompression so the
// timed path is known to produce valid output.
func BenchmarkSZCompressParallel(b *testing.B) {
	x := solverState(1 << 20)
	p := sz.Params{Mode: sz.PWRel, ErrorBound: 1e-4}
	comp, err := sz.Compress(x, p)
	if err != nil {
		b.Fatal(err)
	}
	got, err := sz.Decompress(comp)
	if err != nil {
		b.Fatal(err)
	}
	for i := range x {
		if d := math.Abs(x[i] - got[i]); d > 1e-4*math.Abs(x[i])*(1+1e-10) {
			b.Fatalf("index %d: error bound violated: %g", i, d)
		}
	}
	for _, bc := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"parallel", 0}} {
		b.Run(bc.name, func(b *testing.B) {
			prev := parallel.SetWorkers(bc.workers)
			defer parallel.SetWorkers(prev)
			b.SetBytes(int64(8 * len(x)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sz.Compress(x, p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSZDecompressParallel is the decode side of the blocked
// container on the same 1M-element state.
func BenchmarkSZDecompressParallel(b *testing.B) {
	x := solverState(1 << 20)
	comp, err := sz.Compress(x, sz.Params{Mode: sz.PWRel, ErrorBound: 1e-4})
	if err != nil {
		b.Fatal(err)
	}
	for _, bc := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"parallel", 0}} {
		b.Run(bc.name, func(b *testing.B) {
			prev := parallel.SetWorkers(bc.workers)
			defer parallel.SetWorkers(prev)
			b.SetBytes(int64(8 * len(x)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sz.Decompress(comp); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCSRMulVecParallel measures SpMV on the paper's 100³ Poisson
// operator (1M rows, ~6.9M nonzeros), serial versus the worker pool.
func BenchmarkCSRMulVecParallel(b *testing.B) {
	a := sparse.Poisson3D(100)
	x := make([]float64, a.Cols)
	dst := make([]float64, a.Rows)
	for i := range x {
		x[i] = float64(i%17) + 0.25
	}
	for _, bc := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"parallel", 0}} {
		b.Run(bc.name, func(b *testing.B) {
			prev := parallel.SetWorkers(bc.workers)
			defer parallel.SetWorkers(prev)
			b.SetBytes(int64(12 * a.NNZ()))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a.MulVec(dst, x)
			}
		})
	}
}

func BenchmarkSparseMatVec(b *testing.B) {
	a := sparse.Poisson3D(32) // 32,768 rows, ~223k nnz
	x := make([]float64, a.Rows)
	dst := make([]float64, a.Rows)
	for i := range x {
		x[i] = float64(i % 17)
	}
	b.SetBytes(int64(12 * a.NNZ()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.MulVec(dst, x)
	}
}

func BenchmarkCGStep(b *testing.B) {
	a := sparse.Poisson3D(24)
	rhs := sparse.OnesRHS(a.Rows)
	s := solver.NewCG(a, nil, rhs, nil, solver.SeqSpace{}, solver.Options{RTol: 1e-300})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}

func BenchmarkGMRESStep(b *testing.B) {
	a := sparse.Poisson3D(24)
	rhs := sparse.OnesRHS(a.Rows)
	s := solver.NewGMRES(a, nil, rhs, nil, 30, solver.SeqSpace{}, solver.Options{RTol: 1e-300})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}

func BenchmarkJacobiSweep(b *testing.B) {
	a := sparse.Poisson3D(24)
	rhs := sparse.OnesRHS(a.Rows)
	s, err := solver.NewStationary(solver.KindJacobi, a, rhs, nil, 0, solver.Options{RTol: 1e-300})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}

func BenchmarkCheckpointLossy(b *testing.B) {
	x := solverState(1 << 18)
	ck := fti.New(fti.NewMemStorage(), fti.SZ{Params: sz.Params{Mode: sz.PWRel, ErrorBound: 1e-4}})
	ck.Protect("x", &x)
	b.SetBytes(int64(8 * len(x)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ck.Checkpoint(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCheckpointStall measures the solver-visible stall of one
// checkpoint on the 1M-element PWRel workload: the full encode+write
// in sync mode versus the capture copy alone in async mode (the
// background encode+write runs between iterations and is drained
// outside the timed region, as it would overlap solver work). The
// async/sync ns/op ratio is the pipeline's critical-path win.
func BenchmarkCheckpointStall(b *testing.B) {
	x := solverState(1 << 20)
	params := sz.Params{Mode: sz.PWRel, ErrorBound: 1e-4}
	snap := func(i int) *fti.Snapshot {
		return &fti.Snapshot{Iteration: i, Vectors: map[string][]float64{"x": x}}
	}
	b.Run("sync", func(b *testing.B) {
		ck := fti.New(fti.NewMemStorage(), fti.SZ{Params: params})
		b.SetBytes(int64(8 * len(x)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ck.Save(snap(i)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("async", func(b *testing.B) {
		ac := fti.NewAsync(fti.New(fti.NewMemStorage(), fti.SZ{Params: params}))
		b.SetBytes(int64(8 * len(x)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ac.SaveAsync(snap(i)); err != nil {
				b.Fatal(err)
			}
			// Solver iterations would run here; the drain stands in for
			// them and stays outside the timed stall.
			b.StopTimer()
			if _, err := ac.Flush(); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
	})
}

// BenchmarkShardedWrite compares the storage stage of a checkpoint on
// the 1M-element PWRel workload: a monolithic single-object write
// versus the sharded manifest+shard layout (Shards=8, StorageWorkers=4,
// the ISSUE acceptance configuration). Storage is a real directory
// (DirStorage fsyncs before its atomic rename), so the sharded
// sub-benchmark measures genuinely concurrent file writes — on
// multicore CI the fan-out should meet or beat the monolithic write;
// on a 1-CPU container the two should tie. The encode cost is
// identical across sub-benchmarks, so the ns/op difference is the
// write stage alone.
func BenchmarkShardedWrite(b *testing.B) {
	x := solverState(1 << 20)
	params := sz.Params{Mode: sz.PWRel, ErrorBound: 1e-4}
	run := func(b *testing.B, shards, workers int) {
		ck := fti.New(mustDirStorage(b), fti.SZ{Params: params})
		if err := ck.SetSharding(shards, workers); err != nil {
			b.Fatal(err)
		}
		if err := ck.SetKeep(1); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(8 * len(x)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ck.Save(&fti.Snapshot{Iteration: i, Vectors: map[string][]float64{"x": x}}); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("monolithic", func(b *testing.B) { run(b, 1, 0) })
	b.Run("shards=8,workers=4", func(b *testing.B) { run(b, 8, 4) })
}

// BenchmarkRecoverStall measures the restart path on the 1M-element
// PWRel workload stored as 8 shards (4 storage workers) in a real
// directory store: the legacy reassemble-then-decode restore
// (RestoreReassembled: shard.Read into one contiguous buffer, whole-
// payload CRC, fresh vector allocations) versus the streaming
// shard-parallel restore (RestoreInto: per-shard read/CRC32C/block-
// decode straight into reusable targets). Before timing, both paths
// restore once and the snapshots are compared bitwise (reported as the
// "bitwise-identical" metric). Allocation assertions enforce the
// zero-copy claim: the streaming path must allocate less than the raw
// payload per restore (no reassembly buffer, no fresh output vectors),
// while the legacy path necessarily allocates more than it.
func BenchmarkRecoverStall(b *testing.B) {
	x := solverState(1 << 20)
	rawBytes := float64(8 * len(x))
	params := sz.Params{Mode: sz.PWRel, ErrorBound: 1e-4}
	ck := fti.New(mustDirStorage(b), fti.SZ{Params: params})
	if err := ck.SetSharding(8, 4); err != nil {
		b.Fatal(err)
	}
	if _, err := ck.Save(&fti.Snapshot{Iteration: 1, Vectors: map[string][]float64{"x": x}}); err != nil {
		b.Fatal(err)
	}

	legacySnap, err := ck.RestoreReassembled()
	if err != nil {
		b.Fatal(err)
	}
	streamSnap, err := ck.Restore()
	if err != nil {
		b.Fatal(err)
	}
	lv, sv := legacySnap.Vectors["x"], streamSnap.Vectors["x"]
	if legacySnap.Iteration != streamSnap.Iteration || len(lv) != len(sv) {
		b.Fatal("streaming restore shape differs from the legacy path")
	}
	for i := range lv {
		if math.Float64bits(lv[i]) != math.Float64bits(sv[i]) {
			b.Fatalf("index %d: streaming %g != legacy %g", i, sv[i], lv[i])
		}
	}
	b.ReportMetric(1, "bitwise-identical")

	// allocPerOp times fn b.N times and returns the heap bytes
	// allocated per op across all goroutines (the parallel decode
	// workers included).
	allocPerOp := func(b *testing.B, fn func()) float64 {
		b.SetBytes(int64(rawBytes))
		runtime.GC()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			fn()
		}
		b.StopTimer()
		runtime.ReadMemStats(&m1)
		per := float64(m1.TotalAlloc-m0.TotalAlloc) / float64(b.N)
		b.ReportMetric(per/1e6, "MB-alloc/op")
		return per
	}

	var legacyPer, streamPer float64
	b.Run("legacy-reassemble", func(b *testing.B) {
		legacyPer = allocPerOp(b, func() {
			if _, err := ck.RestoreReassembled(); err != nil {
				b.Fatal(err)
			}
		})
		// Reassembly buffer + chunks + fresh output vectors: the legacy
		// path cannot stay under the raw payload size. (Race builds
		// inflate allocation counts; the bound only holds unraced.)
		if !raceEnabled && legacyPer < rawBytes {
			b.Fatalf("legacy restore allocated only %.1f MB/op — expected more than the %.1f MB raw payload",
				legacyPer/1e6, rawBytes/1e6)
		}
	})
	b.Run("streaming", func(b *testing.B) {
		targets := map[string][]float64{"x": make([]float64, len(x))}
		streamPer = allocPerOp(b, func() {
			if _, err := ck.RestoreInto(targets); err != nil {
				b.Fatal(err)
			}
		})
		// O(shard) transient memory: shard chunks (≈ encoded bytes,
		// released as they decode) plus skeleton bookkeeping — never
		// the raw payload, never a reassembly buffer. (Race builds
		// inflate allocation counts; the bound only holds unraced.)
		if !raceEnabled && streamPer >= rawBytes {
			b.Fatalf("streaming restore allocated %.1f MB/op — expected less than the %.1f MB raw payload",
				streamPer/1e6, rawBytes/1e6)
		}
	})
	if !raceEnabled && legacyPer > 0 && streamPer > 0 && streamPer >= legacyPer {
		b.Fatalf("streaming restore (%.1f MB/op) must allocate less than the legacy path (%.1f MB/op)",
			streamPer/1e6, legacyPer/1e6)
	}
}

// BenchmarkObsOverhead bounds the cost of the observability layer on
// the checkpoint hot path: the 1M-element PWRel sync save is timed
// with instrumentation disabled (nil registry and tracer — every hook
// a no-op) and with a live registry+tracer attached, and the band
// sub-benchmark asserts the interleaved medians agree within 2%. The
// disabled/instrumented sub-benchmarks report the two ns/op figures;
// the A/B trials interleave so machine drift cancels. Race builds
// skip the assertion (the detector inflates the instrumented atomics
// far past anything a production build sees).
func BenchmarkObsOverhead(b *testing.B) {
	x := solverState(1 << 20)
	params := sz.Params{Mode: sz.PWRel, ErrorBound: 1e-4}
	newCk := func(instrument bool) *fti.Checkpointer {
		ck := fti.New(fti.NewMemStorage(), fti.SZ{Params: params})
		if err := ck.SetKeep(1); err != nil {
			b.Fatal(err)
		}
		if instrument {
			ck.Instrument(obs.New(), obs.NewTracer())
		}
		return ck
	}
	save := func(ck *fti.Checkpointer, i int) float64 {
		start := time.Now()
		if _, err := ck.Save(&fti.Snapshot{Iteration: i, Vectors: map[string][]float64{"x": x}}); err != nil {
			b.Fatal(err)
		}
		return time.Since(start).Seconds()
	}
	b.Run("disabled", func(b *testing.B) {
		ck := newCk(false)
		b.SetBytes(int64(8 * len(x)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			save(ck, i)
		}
	})
	b.Run("instrumented", func(b *testing.B) {
		ck := newCk(true)
		b.SetBytes(int64(8 * len(x)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			save(ck, i)
		}
	})
	b.Run("band", func(b *testing.B) {
		const trials = 9
		plain, inst := newCk(false), newCk(true)
		save(plain, 0) // warm both paths (pool spin-up, buffer growth)
		save(inst, 0)
		plainT := make([]float64, 0, trials)
		instT := make([]float64, 0, trials)
		for t := 1; t <= trials; t++ {
			plainT = append(plainT, save(plain, t))
			instT = append(instT, save(inst, t))
		}
		sort.Float64s(plainT)
		sort.Float64s(instT)
		ratio := instT[trials/2] / plainT[trials/2]
		b.ReportMetric(100*(ratio-1), "overhead-%")
		if !raceEnabled && ratio > 1.02 {
			b.Fatalf("instrumented save median %.2f ms vs disabled %.2f ms: %.2f%% overhead exceeds the 2%% band",
				1e3*instT[trials/2], 1e3*plainT[trials/2], 100*(ratio-1))
		}
	})
}

// BenchmarkQualityTelemetry bounds the cost of the numerical-telemetry
// audit on the checkpoint hot path: the 1M-element PWRel sync save is
// timed uninstrumented and with a sampled (every-4th) audit attached
// — the production default, riding the encoder's own encode-path
// accumulators — and the band sub-benchmark asserts the interleaved
// medians agree within 2%. The exhaustive sub-benchmark additionally
// decode-verifies every save; its ratio is reported as a metric but
// not gated (a full audit decode per save is priced, not promised).
// Race builds skip the band (the detector inflates the audited path).
func BenchmarkQualityTelemetry(b *testing.B) {
	x := solverState(1 << 20)
	params := sz.Params{Mode: sz.PWRel, ErrorBound: 1e-4}
	newCk := func(qa *quality.Auditor) *fti.Checkpointer {
		ck := fti.New(fti.NewMemStorage(), fti.SZ{Params: params})
		if err := ck.SetKeep(1); err != nil {
			b.Fatal(err)
		}
		ck.SetSaveAudit(qa) // nil leaves the hook a no-op
		return ck
	}
	newAuditor := func(exhaustive bool) *quality.Auditor {
		qa := quality.New(quality.Config{Exhaustive: exhaustive})
		qa.Instrument(obs.New(), nil)
		return qa
	}
	save := func(ck *fti.Checkpointer, i int) float64 {
		start := time.Now()
		if _, err := ck.Save(&fti.Snapshot{Iteration: i, Vectors: map[string][]float64{"x": x}}); err != nil {
			b.Fatal(err)
		}
		return time.Since(start).Seconds()
	}
	b.Run("disabled", func(b *testing.B) {
		ck := newCk(nil)
		b.SetBytes(int64(8 * len(x)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			save(ck, i)
		}
	})
	b.Run("sampled", func(b *testing.B) {
		ck := newCk(newAuditor(false))
		b.SetBytes(int64(8 * len(x)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			save(ck, i)
		}
	})
	b.Run("exhaustive", func(b *testing.B) {
		ck := newCk(newAuditor(true))
		b.SetBytes(int64(8 * len(x)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			save(ck, i)
		}
	})
	b.Run("band", func(b *testing.B) {
		const trials = 9
		plain, sampled, exhaustive := newCk(nil), newCk(newAuditor(false)), newCk(newAuditor(true))
		save(plain, 0) // warm all paths (pool spin-up, buffer growth)
		save(sampled, 0)
		save(exhaustive, 0)
		plainT := make([]float64, 0, trials)
		sampledT := make([]float64, 0, trials)
		exhaustT := make([]float64, 0, trials)
		for t := 1; t <= trials; t++ {
			plainT = append(plainT, save(plain, t))
			sampledT = append(sampledT, save(sampled, t))
			exhaustT = append(exhaustT, save(exhaustive, t))
		}
		sort.Float64s(plainT)
		sort.Float64s(sampledT)
		sort.Float64s(exhaustT)
		ratio := sampledT[trials/2] / plainT[trials/2]
		b.ReportMetric(100*(ratio-1), "sampled-overhead-%")
		b.ReportMetric(100*(exhaustT[trials/2]/plainT[trials/2]-1), "exhaustive-overhead-%")
		if !raceEnabled && ratio > 1.02 {
			b.Fatalf("sampled audit median %.2f ms vs disabled %.2f ms: %.2f%% overhead exceeds the 2%% band",
				1e3*sampledT[trials/2], 1e3*plainT[trials/2], 100*(ratio-1))
		}
	})
}

func mustDirStorage(b *testing.B) *fti.DirStorage {
	b.Helper()
	ds, err := fti.NewDirStorage(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	return ds
}

func BenchmarkCheckpointTraditional(b *testing.B) {
	x := solverState(1 << 18)
	ck := fti.New(fti.NewMemStorage(), fti.Raw{})
	ck.Protect("x", &x)
	b.SetBytes(int64(8 * len(x)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ck.Checkpoint(); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Ablation benchmarks (DESIGN.md §5) --------------------------------------

// BenchmarkAblationCGRestart compares the paper's restarted lossy
// recovery for CG (Algorithm 2) against naively restoring lossy
// (x, p, ρ) without a restart — the design choice §4.2 motivates with
// the broken-orthogonality argument. The reported metrics are the
// extra iterations per recovery for both strategies.
func BenchmarkAblationCGRestart(b *testing.B) {
	a := sparse.Poisson3D(12)
	rhs := sparse.OnesRHS(a.Rows)
	const rtol = 1e-9
	newCG := func() *solver.CG {
		return solver.NewCG(a, nil, rhs, nil, solver.SeqSpace{}, solver.Options{RTol: rtol})
	}
	base, err := solver.RunToConvergence(newCG(), solver.Options{MaxIter: 100000}, nil)
	if err != nil || !base.Converged {
		b.Fatalf("baseline: %v", err)
	}
	lossyVec := func(v []float64) []float64 {
		comp, err := sz.Compress(v, sz.Params{Mode: sz.PWRel, ErrorBound: 1e-4})
		if err != nil {
			b.Fatal(err)
		}
		out, err := sz.Decompress(comp)
		if err != nil {
			b.Fatal(err)
		}
		return out
	}
	var restarted, naive float64
	for i := 0; i < b.N; i++ {
		t := base.Iterations / 2
		// Restarted recovery (the paper's scheme).
		s1 := newCG()
		for j := 0; j < t; j++ {
			s1.Step()
		}
		s1.Restart(lossyVec(s1.X()))
		r1, _ := solver.RunToConvergence(s1, solver.Options{MaxIter: 400000}, nil)
		restarted += float64(r1.Iterations - base.Iterations)

		// Naive recovery: lossy (x, p, ρ) without restart.
		s2 := newCG()
		for j := 0; j < t; j++ {
			s2.Step()
		}
		st := s2.CaptureDynamic()
		st.Vectors["x"] = lossyVec(st.Vectors["x"])
		st.Vectors["p"] = lossyVec(st.Vectors["p"])
		if err := s2.RestoreDynamic(st); err != nil {
			b.Fatal(err)
		}
		r2, _ := solver.RunToConvergence(s2, solver.Options{MaxIter: 400000}, nil)
		naive += float64(r2.Iterations - base.Iterations)
	}
	b.ReportMetric(restarted/float64(b.N), "extra-its-restarted")
	b.ReportMetric(naive/float64(b.N), "extra-its-naive")
}

// BenchmarkAblationBoundModes reports the compression ratio of the
// three error-bound modes on the same solver state at eb = 1e-4.
func BenchmarkAblationBoundModes(b *testing.B) {
	x := solverState(1 << 19)
	modes := []struct {
		name string
		mode sz.Mode
	}{{"abs", sz.Abs}, {"relrange", sz.RelRange}, {"pwrel", sz.PWRel}}
	for i := 0; i < b.N; i++ {
		for _, m := range modes {
			comp, err := sz.Compress(x, sz.Params{Mode: m.mode, ErrorBound: 1e-4})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(sz.Ratio(len(x), comp), "ratio-"+m.name)
		}
	}
}

// BenchmarkAblationAdaptiveGMRESBound compares Theorem 3's adaptive
// bound against a fixed loose bound: extra iterations per recovery.
func BenchmarkAblationAdaptiveGMRESBound(b *testing.B) {
	a := sparse.Poisson3D(12)
	rhs := sparse.OnesRHS(a.Rows)
	bnorm := solver.SeqSpace{}.Norm2(rhs)
	const rtol = 1e-9
	newG := func() *solver.GMRES {
		return solver.NewGMRES(a, nil, rhs, nil, 10, solver.SeqSpace{}, solver.Options{RTol: rtol})
	}
	base, err := solver.RunToConvergence(newG(), solver.Options{MaxIter: 100000}, nil)
	if err != nil || !base.Converged {
		b.Fatalf("baseline: %v", err)
	}
	recoverWith := func(eb float64) int {
		s := newG()
		for j := 0; j < base.Iterations/2; j++ {
			s.Step()
		}
		comp, err := sz.Compress(s.CurrentX(), sz.Params{Mode: sz.PWRel, ErrorBound: eb})
		if err != nil {
			b.Fatal(err)
		}
		x, err := sz.Decompress(comp)
		if err != nil {
			b.Fatal(err)
		}
		s.Restart(x)
		r, _ := solver.RunToConvergence(s, solver.Options{MaxIter: 400000}, nil)
		return r.Iterations - base.Iterations
	}
	var adaptive, fixed float64
	for i := 0; i < b.N; i++ {
		s := newG()
		for j := 0; j < base.Iterations/2; j++ {
			s.Step()
		}
		ebAdaptive := model.GMRESAdaptiveBound(s.ResidualNorm(), bnorm, 1)
		adaptive += float64(recoverWith(ebAdaptive))
		fixed += float64(recoverWith(0.2)) // loose fixed bound
	}
	b.ReportMetric(adaptive/float64(b.N), "extra-its-adaptive")
	b.ReportMetric(fixed/float64(b.N), "extra-its-fixed0.2")
}

// BenchmarkAblationCompressorChoice reports ratio for SZ vs ZFP vs
// Gzip on identical solver state (the paper's §5.1 compressor choice).
func BenchmarkAblationCompressorChoice(b *testing.B) {
	x := solverState(1 << 19)
	for i := 0; i < b.N; i++ {
		szc, err := sz.Compress(x, sz.Params{Mode: sz.Abs, ErrorBound: 1e-4})
		if err != nil {
			b.Fatal(err)
		}
		zc, err := zfp.Compress(x, 1e-4)
		if err != nil {
			b.Fatal(err)
		}
		fc, err := (lossless.Flate{}).Compress(x)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(sz.Ratio(len(x), szc), "ratio-sz")
		b.ReportMetric(zfp.Ratio(len(x), zc), "ratio-zfp")
		b.ReportMetric(lossless.Ratio(len(x), fc), "ratio-gzip")
	}
}

// BenchmarkAblationIntervalSensitivity measures the simulated FT
// overhead of lossy-checkpointed Jacobi at the Young-optimal interval
// and at half/double that interval.
func BenchmarkAblationIntervalSensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, mult := range []float64{0.5, 1, 2} {
			pct, err := intervalOverheadPct(mult)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(pct, fmt.Sprintf("overhead%%-x%g", mult))
		}
	}
}

func intervalOverheadPct(mult float64) (float64, error) {
	a := lossyckpt.Poisson3D(10)
	rhs := lossyckpt.OnesRHS(a.Rows)
	s, err := solver.NewStationary(solver.KindJacobi, a, rhs, nil, 0, solver.Options{RTol: 1e-4})
	if err != nil {
		return 0, err
	}
	baseRes, err := solver.RunToConvergence(s, solver.Options{MaxIter: 200000}, nil)
	if err != nil || !baseRes.Converged {
		return 0, fmt.Errorf("baseline failed")
	}
	tit := 3000.0 / float64(baseRes.Iterations)
	const ckptCost = 25.0
	interval := mult * model.YoungInterval(3600, ckptCost)

	s2, err := solver.NewStationary(solver.KindJacobi, a, rhs, nil, 0, solver.Options{RTol: 1e-4})
	if err != nil {
		return 0, err
	}
	mgr, err := core.NewManager(core.Config{
		Scheme:   core.Lossy,
		SZParams: sz.Params{Mode: sz.PWRel, ErrorBound: 1e-4},
	}, fti.NewMemStorage(), s2)
	if err != nil {
		return 0, err
	}
	out, err := simRunJacobi(s2, mgr, a.Rows, tit, interval, ckptCost)
	if err != nil {
		return 0, err
	}
	return 100 * (out - 3000) / 3000, nil
}

// BenchmarkAdaptiveInterval runs the deterministic fixed-vs-adaptive
// sweep (the `adapt` experiment: shared failure traces, steady and
// ratio-drift cost regimes) and reports the simulated wall-clocks as
// metrics — the CI artifact tracking the controller's quality. The
// acceptance bands are asserted in-bench: adaptive within 10% of the
// best fixed interval under steady costs (the sim package's 12-seed
// test enforces the strict 5%), and strictly better than the stale
// probe-derived Young interval once the compression ratio drifts.
func BenchmarkAdaptiveInterval(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := lossyckpt.RunExperiment("adapt", lossyckpt.ExperimentConfig{Quick: true, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		r := res.(*experiments.AdaptResult)
		steady, drift := r.Scenario("steady"), r.Scenario("ratio-drift")
		if steady == nil || drift == nil {
			b.Fatal("sweep scenarios missing")
		}
		b.ReportMetric(steady.AdaptiveSecs, "steady-adaptive-sim-s")
		b.ReportMetric(steady.BestSeconds, "steady-best-fixed-sim-s")
		b.ReportMetric(drift.AdaptiveSecs, "drift-adaptive-sim-s")
		b.ReportMetric(drift.ProbeSeconds, "drift-probe-fixed-sim-s")
		if steady.AdaptiveSecs > 1.10*steady.BestSeconds {
			b.Fatalf("adaptive %.1f s exceeds 1.10× best fixed %.1f s (steady)",
				steady.AdaptiveSecs, steady.BestSeconds)
		}
		if drift.AdaptiveSecs >= drift.ProbeSeconds {
			b.Fatalf("adaptive %.1f s does not beat the stale probe interval's %.1f s (drift)",
				drift.AdaptiveSecs, drift.ProbeSeconds)
		}
	}
}

// abftRig is one guarded lossy-checkpointed CG over the 1M-unknown
// Poisson operator, advanced a few retained iterations with committed
// checkpoints — the state every BenchmarkABFTRecovery sub-benchmark
// injects failures into.
type abftRig struct {
	st *fti.MemStorage
	cg *solver.CG
	g  *abft.Guard
	m  *core.Manager
	x0 []float64
}

func newABFTRig(b *testing.B, a *sparse.CSR, rhs []float64) *abftRig {
	b.Helper()
	cg := solver.NewCG(a, precond.NewJacobiFromMatrix(a), rhs, nil, solver.SeqSpace{},
		solver.Options{RTol: 1e-8})
	g, err := abft.NewGuard(a, rhs, cg, abft.Config{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	st := fti.NewMemStorage()
	m, err := core.NewManager(core.Config{
		Scheme:   core.Lossy,
		SZParams: sz.Params{Mode: sz.PWRel, ErrorBound: 1e-4},
		ABFT:     g,
	}, st, cg)
	if err != nil {
		b.Fatal(err)
	}
	r := &abftRig{st: st, cg: cg, g: g, m: m, x0: make([]float64, a.Rows)}
	// Two committed checkpoints (keep=2) with retained redundancy at the
	// head: every tier of the chain has something to offer.
	for i := 0; i < 4; i++ {
		cg.Step()
		g.Observe()
	}
	if _, err := m.Checkpoint(); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		cg.Step()
		g.Observe()
	}
	if _, err := m.Checkpoint(); err != nil {
		b.Fatal(err)
	}
	return r
}

// corruptStoredCheckpoints flips a byte in every stored checkpoint
// object so the whole checkpoint chain fails its CRCs.
func (r *abftRig) corruptStoredCheckpoints(b *testing.B) {
	b.Helper()
	names, err := r.st.List()
	if err != nil {
		b.Fatal(err)
	}
	for _, name := range names {
		if !strings.HasPrefix(name, "ckpt-") {
			continue
		}
		data, err := r.st.Read(name)
		if err != nil {
			b.Fatal(err)
		}
		mut := append([]byte(nil), data...)
		mut[len(mut)/2] ^= 0xFF
		if err := r.st.Write(name, mut); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkABFTRecovery times one full RecoverTiered chain on the
// 1M-element PWRel workload (Poisson 100³, Jacobi-preconditioned CG),
// one sub-benchmark per recovery tier. Each iteration re-arms the
// failure outside the timer — seeded rank loss for the ABFT tier, plus
// retained-state corruption to force the checkpoint tiers, a corrupted
// latest manifest for the previous-checkpoint tier, and a fully
// corrupted store for restart-zero — then times the chain end to end.
// The acceptance bands are asserted in-bench: every sub-benchmark must
// recover via exactly its expected tier, the ABFT tier must read zero
// bytes from the PFS (its cost is local-solve iterations, reported as
// the local-iters metric), the checkpoint tiers must pay PFS reads,
// and the recovered solver's residual stays finite throughout.
func BenchmarkABFTRecovery(b *testing.B) {
	a := sparse.Poisson3D(100)
	rhs := sparse.OnesRHS(a.Rows)

	checkResidual := func(b *testing.B, r *abftRig) {
		if rn := r.cg.ResidualNorm(); math.IsNaN(rn) || math.IsInf(rn, 0) {
			b.Fatalf("post-recovery residual %v", rn)
		}
	}

	b.Run("abft", func(b *testing.B) {
		r := newABFTRig(b, a, rhs)
		var localIters float64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			r.g.FailNextRank()
			b.StartTimer()
			rep, err := r.m.RecoverTiered(r.x0)
			if err != nil {
				b.Fatal(err)
			}
			if rep.Used != core.TierABFT || len(rep.Attempts) != 1 {
				b.Fatalf("used %v with %d attempts, want the abft tier alone", rep.Used, len(rep.Attempts))
			}
			if rep.ReadBytes() != 0 {
				b.Fatalf("abft recovery read %d bytes from the PFS, want 0", rep.ReadBytes())
			}
			if rep.Attempts[0].Iterations <= 0 {
				b.Fatal("exact-state reconstruction reported no local-solve iterations")
			}
			localIters += float64(rep.Attempts[0].Iterations)
			checkResidual(b, r)
		}
		b.ReportMetric(localIters/float64(b.N), "local-iters")
	})

	b.Run("checkpoint", func(b *testing.B) {
		r := newABFTRig(b, a, rhs)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			r.g.CorruptRetained()
			r.g.FailNextRank()
			b.StartTimer()
			rep, err := r.m.RecoverTiered(r.x0)
			if err != nil {
				b.Fatal(err)
			}
			if rep.Used != core.TierCheckpoint {
				b.Fatalf("used %v, want the latest-checkpoint tier; attempts %+v", rep.Used, rep.Attempts)
			}
			if a0 := rep.Attempts[0]; a0.Tier != core.TierABFT || a0.Accepted {
				b.Fatalf("first attempt %+v, want a rejected abft try", a0)
			}
			if rep.ReadBytes() == 0 {
				b.Fatal("checkpoint recovery paid no PFS reads")
			}
			checkResidual(b, r)
		}
	})

	b.Run("previous-checkpoint", func(b *testing.B) {
		r := newABFTRig(b, a, rhs)
		if _, err := failure.CorruptLatestManifest(r.st); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			r.g.CorruptRetained()
			r.g.FailNextRank()
			b.StartTimer()
			rep, err := r.m.RecoverTiered(r.x0)
			if err != nil {
				b.Fatal(err)
			}
			if rep.Used != core.TierPreviousCheckpoint {
				b.Fatalf("used %v, want the previous-checkpoint tier; attempts %+v", rep.Used, rep.Attempts)
			}
			if rep.ReadBytes() == 0 {
				b.Fatal("previous-checkpoint recovery paid no PFS reads")
			}
			checkResidual(b, r)
		}
	})

	b.Run("restart-zero", func(b *testing.B) {
		r := newABFTRig(b, a, rhs)
		r.corruptStoredCheckpoints(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			r.g.CorruptRetained()
			r.g.FailNextRank()
			b.StartTimer()
			rep, err := r.m.RecoverTiered(r.x0)
			if err != nil {
				b.Fatal(err)
			}
			if rep.Used != core.TierRestartZero {
				b.Fatalf("used %v, want restart-zero; attempts %+v", rep.Used, rep.Attempts)
			}
			if rep.Iteration != 0 {
				b.Fatalf("restart-zero left the solver at iteration %d", rep.Iteration)
			}
			checkResidual(b, r)
		}
	})
}

// BenchmarkStorageFaults bounds the cost of the fault-tolerant
// storage layer (PR 9). The fault-free band asserts the retry wrapper
// adds under 2% to a 1M-element sync save — it is a thin
// classify-and-dispatch shim when nothing fails — using the same
// interleaved-median A/B protocol as BenchmarkObsOverhead. The
// campaign sub-benchmark then drives a sharded checkpointer through a
// 1% transient-fault storage and asserts every save still commits:
// the retry layer absorbs the campaign with bounded extra work.
// Backoff sleeps are stubbed out so the benchmark measures the retry
// machinery, not the (configurable) delay schedule. Race builds skip
// the band assertion.
func BenchmarkStorageFaults(b *testing.B) {
	x := solverState(1 << 20)
	params := sz.Params{Mode: sz.PWRel, ErrorBound: 1e-4}
	newCk := func(st fti.Storage) *fti.Checkpointer {
		ck := fti.New(st, fti.SZ{Params: params})
		if err := ck.SetKeep(1); err != nil {
			b.Fatal(err)
		}
		return ck
	}
	noSleep := func(time.Duration) {}
	save := func(ck *fti.Checkpointer, i int) float64 {
		start := time.Now()
		if _, err := ck.Save(&fti.Snapshot{Iteration: i, Vectors: map[string][]float64{"x": x}}); err != nil {
			b.Fatal(err)
		}
		return time.Since(start).Seconds()
	}
	b.Run("direct", func(b *testing.B) {
		ck := newCk(fti.NewMemStorage())
		b.SetBytes(int64(8 * len(x)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			save(ck, i)
		}
	})
	b.Run("resilient-fault-free", func(b *testing.B) {
		ck := newCk(fti.NewResilient(fti.NewMemStorage(), fti.FaultPolicy{Sleep: noSleep}))
		b.SetBytes(int64(8 * len(x)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			save(ck, i)
		}
	})
	b.Run("band", func(b *testing.B) {
		const trials = 15
		plain := newCk(fti.NewMemStorage())
		wrapped := newCk(fti.NewResilient(fti.NewMemStorage(), fti.FaultPolicy{Sleep: noSleep}))
		save(plain, 0) // warm both paths (pool spin-up, buffer growth)
		save(wrapped, 0)
		runtime.GC() // drain garbage from earlier sub-benchmarks off the trial window
		plainT := make([]float64, 0, trials)
		wrapT := make([]float64, 0, trials)
		for t := 1; t <= trials; t++ {
			plainT = append(plainT, save(plain, t))
			wrapT = append(wrapT, save(wrapped, t))
		}
		sort.Float64s(plainT)
		sort.Float64s(wrapT)
		ratio := wrapT[trials/2] / plainT[trials/2]
		b.ReportMetric(100*(ratio-1), "overhead-%")
		if !raceEnabled && ratio > 1.02 {
			b.Fatalf("resilient save median %.2f ms vs direct %.2f ms: %.2f%% overhead exceeds the 2%% band",
				1e3*wrapT[trials/2], 1e3*plainT[trials/2], 100*(ratio-1))
		}
	})
	b.Run("fault-campaign-1pct", func(b *testing.B) {
		inj := failure.NewStorageInjector(fti.NewMemStorage(), 7, failure.StorageProfile{Rate: 0.01})
		res := fti.NewResilient(inj, fti.FaultPolicy{Sleep: noSleep, Seed: 7})
		ck := newCk(res)
		if err := ck.SetSharding(8, 2); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(8 * len(x)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			save(ck, i)
		}
		b.StopTimer()
		st := res.Stats()
		if st.Exhausted != 0 || st.Permanent != 0 {
			b.Fatalf("campaign leaked solver-visible failures: %+v", st)
		}
		b.ReportMetric(float64(inj.Stats().Total())/float64(b.N), "faults/op")
		b.ReportMetric(float64(st.Retries)/float64(b.N), "retries/op")
	})
}
