// Package lossless provides the lossless baselines the paper compares
// against: a DEFLATE codec standing in for Gzip (the paper's "lossless
// checkpointing" uses Gzip) and an FPC-style predictive XOR coder
// (Burtscher & Ratanaworabhan) specialized for float64 streams. The
// paper's §2 observation — lossless ratios on floating-point
// scientific data rarely exceed ~2 except on very smooth fields — is
// reproduced by these codecs in the Table 3 experiment.
package lossless

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"math/bits"
	"sync"

	"repro/internal/parallel"
)

// Codec compresses float64 slices without loss.
type Codec interface {
	// Name identifies the codec in reports.
	Name() string
	// Compress encodes x exactly.
	Compress(x []float64) ([]byte, error)
	// Decompress reverses Compress bit-exactly.
	Decompress(data []byte) ([]float64, error)
	// DecompressInto reverses Compress bit-exactly into dst, whose
	// length must equal the stream's element count — no output
	// allocation, the streaming restore path's contract (every element
	// of dst is overwritten on success; on error dst's contents are
	// unspecified).
	DecompressInto(dst []float64, data []byte) error
}

// appendWriter is an io.Writer that appends to a byte slice, so the
// DEFLATE stage can emit straight into a caller-provided (possibly
// pooled) buffer instead of a bytes.Buffer of its own.
type appendWriter struct{ b []byte }

func (w *appendWriter) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

// flateWriterPools recycles flate.Writer instances per compression
// level (a flate.Writer carries ~600 KiB of match-finder state, by far
// the dominant allocation of a small compress call). Index is
// level+2: flate levels span -2 (HuffmanOnly) through 9.
var flateWriterPools [12]sync.Pool

// getFlateWriter returns a writer for level bound to w, reusing pooled
// state when available.
func getFlateWriter(level int, w io.Writer) (*flate.Writer, error) {
	idx := level + 2
	if idx < 0 || idx >= len(flateWriterPools) {
		return flate.NewWriter(w, level) // out-of-range level: let flate report it
	}
	if v := flateWriterPools[idx].Get(); v != nil {
		fw := v.(*flate.Writer)
		fw.Reset(w)
		return fw, nil
	}
	return flate.NewWriter(w, level)
}

// putFlateWriter recycles a writer obtained from getFlateWriter.
func putFlateWriter(level int, fw *flate.Writer) {
	idx := level + 2
	if idx >= 0 && idx < len(flateWriterPools) {
		flateWriterPools[idx].Put(fw)
	}
}

// Flate is the DEFLATE/Gzip-family codec. Level follows compress/flate
// (0 = default speed/ratio tradeoff used by gzip).
type Flate struct {
	Level int
}

// Name returns "gzip(deflate)".
func (Flate) Name() string { return "gzip(deflate)" }

// Compress DEFLATE-compresses the little-endian byte image of x.
func (f Flate) Compress(x []float64) ([]byte, error) {
	return f.AppendCompress(nil, x)
}

// AppendCompress is Compress appending to dst (which may be pooled
// scratch), returning the extended slice. The byte image and the
// DEFLATE state come from pools, so the only growth is dst itself —
// the blocked container uses this to keep per-block encode free of
// whole-payload intermediates.
func (f Flate) AppendCompress(dst []byte, x []float64) ([]byte, error) {
	level := f.Level
	if level == 0 {
		level = flate.DefaultCompression
	}
	raw := parallel.GetBytes(8 * len(x))[:8*len(x)]
	for i, v := range x {
		binary.LittleEndian.PutUint64(raw[8*i:], math.Float64bits(v))
	}
	aw := &appendWriter{b: dst}
	var b8 [8]byte
	binary.LittleEndian.PutUint64(b8[:], uint64(len(x)))
	aw.b = append(aw.b, b8[:]...)
	w, err := getFlateWriter(level, aw)
	if err != nil {
		parallel.PutBytes(raw)
		return nil, err
	}
	if _, err := w.Write(raw); err != nil {
		parallel.PutBytes(raw)
		return nil, err
	}
	err = w.Close()
	putFlateWriter(level, w)
	parallel.PutBytes(raw)
	if err != nil {
		return nil, err
	}
	return aw.b, nil
}

// Decompress reverses Compress.
func (f Flate) Decompress(data []byte) ([]float64, error) {
	raw, n, err := inflateFlate(data)
	if err != nil {
		return nil, err
	}
	out := make([]float64, n)
	fillFloats(out, raw)
	parallel.PutBytes(raw)
	return out, nil
}

// DecompressInto reverses Compress into dst (serial, allocation-free
// on the output side); len(dst) must equal the stream's element count.
func (f Flate) DecompressInto(dst []float64, data []byte) error {
	raw, n, err := inflateFlate(data)
	if err != nil {
		return err
	}
	if n != len(dst) {
		parallel.PutBytes(raw)
		return fmt.Errorf("lossless: stream holds %d values, dst has %d", n, len(dst))
	}
	fillFloats(dst, raw)
	parallel.PutBytes(raw)
	return nil
}

// inflateFlate validates a Flate stream and returns the inflated byte
// image (pooled; the caller returns it with parallel.PutBytes) plus
// the element count.
func inflateFlate(data []byte) ([]byte, int, error) {
	if len(data) < 8 {
		return nil, 0, fmt.Errorf("lossless: truncated flate header")
	}
	n := int(binary.LittleEndian.Uint64(data))
	if n < 0 {
		return nil, 0, fmt.Errorf("lossless: negative length")
	}
	// DEFLATE expands at most ~1032×, so a genuine stream can never
	// claim more raw bytes than that bound allows; checking before the
	// inflate loop sizes its buffer keeps crafted headers from
	// demanding terabytes.
	const maxDeflateExpansion = 1032
	if n > maxDeflateExpansion*(len(data)-8)/8+1 {
		return nil, 0, fmt.Errorf("lossless: %d values exceed %d payload bytes", n, len(data)-8)
	}
	r := flate.NewReader(bytes.NewReader(data[8:]))
	raw := parallel.GetBytes(8 * n)
	raw, err := readAllInto(raw, r)
	if err != nil {
		parallel.PutBytes(raw)
		return nil, 0, fmt.Errorf("lossless: inflate: %w", err)
	}
	if len(raw) != 8*n {
		parallel.PutBytes(raw)
		return nil, 0, fmt.Errorf("lossless: inflated %d bytes, want %d", len(raw), 8*n)
	}
	return raw, n, nil
}

// readAllInto reads r to EOF appending into buf, like io.ReadAll but
// reusing buf's capacity.
func readAllInto(buf []byte, r io.Reader) ([]byte, error) {
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		m, err := r.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+m]
		if err == io.EOF {
			return buf, nil
		}
		if err != nil {
			return buf, err
		}
	}
}

// fillFloats decodes the little-endian byte image raw into out.
func fillFloats(out []float64, raw []byte) {
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:]))
	}
}

// FPC is a simplified FPC coder: each value is predicted by the better
// of a last-value predictor and a linear-stride predictor, the
// prediction is XORed with the true bit pattern, and the leading zero
// bytes of the XOR are elided. A 4-bit header per value records the
// predictor choice and the count of residual bytes.
type FPC struct{}

// Name returns "fpc".
func (FPC) Name() string { return "fpc" }

// fpcWorstCase bounds the encoded size of n values: the 8-byte count,
// one header nibble per value, and a full 8-byte residual per value.
func fpcWorstCase(n int) int { return 8 + (n+1)/2 + 8*n }

// Compress encodes x exactly. The encode runs in pooled worst-case
// scratch and the result is copied out at its exact size, so the only
// retained allocation is the returned stream.
func (c FPC) Compress(x []float64) ([]byte, error) {
	scratch := parallel.GetBytes(fpcWorstCase(len(x)))
	enc, err := c.AppendCompress(scratch, x)
	if err != nil {
		parallel.PutBytes(scratch)
		return nil, err
	}
	out := make([]byte, len(enc))
	copy(out, enc)
	parallel.PutBytes(enc)
	return out, nil
}

// AppendCompress is Compress appending to dst, returning the extended
// slice. dst is grown once to the worst-case bound up front, then the
// single encode pass writes headers and residuals in place — no
// repeated append growth, no intermediate nibble or payload slices.
func (FPC) AppendCompress(dst []byte, x []float64) ([]byte, error) {
	n := len(x)
	base := len(dst)
	worst := fpcWorstCase(n)
	if cap(dst)-base < worst {
		grown := make([]byte, base, base+worst)
		copy(grown, dst)
		dst = grown
	}
	buf := dst[:base+worst]
	binary.LittleEndian.PutUint64(buf[base:], uint64(n))
	hdrLen := (n + 1) / 2
	hdr := buf[base+8 : base+8+hdrLen]
	for i := range hdr {
		hdr[i] = 0
	}
	idx := base + 8 + hdrLen

	var prev, prev2 float64
	for i, v := range x {
		vb := math.Float64bits(v)
		x1 := vb ^ math.Float64bits(prev)
		x2 := vb ^ math.Float64bits(2*prev-prev2) // linear stride
		sel := byte(0)
		res := x1
		if lzBytes(x2) > lzBytes(x1) {
			sel = 1
			res = x2
		}
		nres := 8 - lzBytes(res)
		nib := sel<<3 | byte(nres&7)
		emit := nres
		if nres >= 7 {
			// Can't distinguish 7 from 8 in 3 bits; code 7 means "7 or
			// 8" and always emits 8 bytes (one wasted byte for true
			// 7-byte residuals).
			nib = sel<<3 | 7
			emit = 8
		}
		if i&1 == 0 {
			hdr[i>>1] = nib << 4
		} else {
			hdr[i>>1] |= nib
		}
		for b := emit - 1; b >= 0; b-- {
			buf[idx] = byte(res >> (8 * uint(b)))
			idx++
		}
		prev2 = prev
		prev = v
	}
	return dst[:idx], nil
}

// Decompress reverses Compress.
func (c FPC) Decompress(data []byte) ([]float64, error) {
	if len(data) < 8 {
		return nil, fmt.Errorf("lossless: truncated fpc header")
	}
	n := int(binary.LittleEndian.Uint64(data))
	if n < 0 {
		return nil, fmt.Errorf("lossless: negative length")
	}
	// Every value costs a header nibble, so a genuine stream can never
	// claim more values than twice its remaining bytes; checking before
	// allocating keeps crafted headers from demanding terabytes.
	if n > 2*(len(data)-8) {
		return nil, fmt.Errorf("lossless: %d values exceed %d payload bytes", n, len(data)-8)
	}
	out := make([]float64, n)
	if err := c.DecompressInto(out, data); err != nil {
		return nil, err
	}
	return out, nil
}

// DecompressInto reverses Compress into dst (serial, allocation-free
// on the output side); len(dst) must equal the stream's element count.
func (FPC) DecompressInto(dst []float64, data []byte) error {
	if len(data) < 8 {
		return fmt.Errorf("lossless: truncated fpc header")
	}
	n := int(binary.LittleEndian.Uint64(data))
	if n < 0 {
		return fmt.Errorf("lossless: negative length")
	}
	if n != len(dst) {
		return fmt.Errorf("lossless: stream holds %d values, dst has %d", n, len(dst))
	}
	hdrLen := (n + 1) / 2
	if len(data) < 8+hdrLen {
		return fmt.Errorf("lossless: truncated fpc nibbles")
	}
	headers := data[8 : 8+hdrLen]
	payload := data[8+hdrLen:]
	out := dst
	var prev, prev2 float64
	off := 0
	for i := 0; i < n; i++ {
		nib := headers[i/2]
		if i%2 == 0 {
			nib >>= 4
		}
		nib &= 0x0f
		sel := nib >> 3
		nres := int(nib & 7)
		if nres == 7 {
			nres = 8
		}
		if off+nres > len(payload) {
			return fmt.Errorf("lossless: truncated fpc payload at value %d", i)
		}
		var res uint64
		for b := 0; b < nres; b++ {
			res = res<<8 | uint64(payload[off+b])
		}
		off += nres
		var pred uint64
		if sel == 0 {
			pred = math.Float64bits(prev)
		} else {
			pred = math.Float64bits(2*prev - prev2)
		}
		v := math.Float64frombits(pred ^ res)
		out[i] = v
		prev2 = prev
		prev = v
	}
	if off != len(payload) {
		return fmt.Errorf("lossless: %d payload bytes unconsumed", len(payload)-off)
	}
	return nil
}

// lzBytes counts the leading zero bytes of v (0–8).
func lzBytes(v uint64) int {
	return bits.LeadingZeros64(v) >> 3
}

// Ratio returns the compression ratio original/compressed in bytes.
func Ratio(n int, compressed []byte) float64 {
	if len(compressed) == 0 {
		return 0
	}
	return float64(8*n) / float64(len(compressed))
}
