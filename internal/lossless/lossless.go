// Package lossless provides the lossless baselines the paper compares
// against: a DEFLATE codec standing in for Gzip (the paper's "lossless
// checkpointing" uses Gzip) and an FPC-style predictive XOR coder
// (Burtscher & Ratanaworabhan) specialized for float64 streams. The
// paper's §2 observation — lossless ratios on floating-point
// scientific data rarely exceed ~2 except on very smooth fields — is
// reproduced by these codecs in the Table 3 experiment.
package lossless

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Codec compresses float64 slices without loss.
type Codec interface {
	// Name identifies the codec in reports.
	Name() string
	// Compress encodes x exactly.
	Compress(x []float64) ([]byte, error)
	// Decompress reverses Compress bit-exactly.
	Decompress(data []byte) ([]float64, error)
	// DecompressInto reverses Compress bit-exactly into dst, whose
	// length must equal the stream's element count — no output
	// allocation, the streaming restore path's contract (every element
	// of dst is overwritten on success; on error dst's contents are
	// unspecified).
	DecompressInto(dst []float64, data []byte) error
}

// Flate is the DEFLATE/Gzip-family codec. Level follows compress/flate
// (0 = default speed/ratio tradeoff used by gzip).
type Flate struct {
	Level int
}

// Name returns "gzip(deflate)".
func (Flate) Name() string { return "gzip(deflate)" }

// Compress DEFLATE-compresses the little-endian byte image of x.
func (f Flate) Compress(x []float64) ([]byte, error) {
	level := f.Level
	if level == 0 {
		level = flate.DefaultCompression
	}
	raw := make([]byte, 8*len(x))
	for i, v := range x {
		binary.LittleEndian.PutUint64(raw[8*i:], math.Float64bits(v))
	}
	var buf bytes.Buffer
	var b8 [8]byte
	binary.LittleEndian.PutUint64(b8[:], uint64(len(x)))
	buf.Write(b8[:])
	w, err := flate.NewWriter(&buf, level)
	if err != nil {
		return nil, err
	}
	if _, err := w.Write(raw); err != nil {
		return nil, err
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Decompress reverses Compress.
func (f Flate) Decompress(data []byte) ([]float64, error) {
	raw, n, err := inflateFlate(data)
	if err != nil {
		return nil, err
	}
	out := make([]float64, n)
	fillFloats(out, raw)
	return out, nil
}

// DecompressInto reverses Compress into dst (serial, allocation-free
// on the output side); len(dst) must equal the stream's element count.
func (f Flate) DecompressInto(dst []float64, data []byte) error {
	raw, n, err := inflateFlate(data)
	if err != nil {
		return err
	}
	if n != len(dst) {
		return fmt.Errorf("lossless: stream holds %d values, dst has %d", n, len(dst))
	}
	fillFloats(dst, raw)
	return nil
}

// inflateFlate validates a Flate stream and returns the inflated byte
// image plus the element count.
func inflateFlate(data []byte) ([]byte, int, error) {
	if len(data) < 8 {
		return nil, 0, fmt.Errorf("lossless: truncated flate header")
	}
	n := int(binary.LittleEndian.Uint64(data))
	if n < 0 {
		return nil, 0, fmt.Errorf("lossless: negative length")
	}
	r := flate.NewReader(bytes.NewReader(data[8:]))
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, 0, fmt.Errorf("lossless: inflate: %w", err)
	}
	if len(raw) != 8*n {
		return nil, 0, fmt.Errorf("lossless: inflated %d bytes, want %d", len(raw), 8*n)
	}
	return raw, n, nil
}

// fillFloats decodes the little-endian byte image raw into out.
func fillFloats(out []float64, raw []byte) {
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:]))
	}
}

// FPC is a simplified FPC coder: each value is predicted by the better
// of a last-value predictor and a linear-stride predictor, the
// prediction is XORed with the true bit pattern, and the leading zero
// bytes of the XOR are elided. A 4-bit header per value records the
// predictor choice and the count of residual bytes.
type FPC struct{}

// Name returns "fpc".
func (FPC) Name() string { return "fpc" }

// Compress encodes x exactly.
func (FPC) Compress(x []float64) ([]byte, error) {
	n := len(x)
	headers := make([]byte, 0, (n+1)/2)
	var payload []byte
	var nibbles []byte

	var prev, prev2 float64
	for i, v := range x {
		bits := math.Float64bits(v)
		p1 := math.Float64bits(prev)
		p2 := math.Float64bits(2*prev - prev2) // linear stride
		x1 := bits ^ p1
		x2 := bits ^ p2
		sel := byte(0)
		res := x1
		if lzBytes(x2) > lzBytes(x1) {
			sel = 1
			res = x2
		}
		nres := 8 - lzBytes(res)
		nib := sel<<3 | byte(nres&7)
		if nres == 8 {
			nib = sel<<3 | 7 // 7 means "7 or 8"; disambiguated below
		}
		nibbles = append(nibbles, nib)
		emit := nres
		if nres == 7 {
			// Can't distinguish 7 from 8 in 3 bits; always emit 8 for
			// code 7 (one wasted byte for true 7-byte residuals).
			emit = 8
		} else if nres == 8 {
			emit = 8
		}
		for b := emit - 1; b >= 0; b-- {
			payload = append(payload, byte(res>>(8*uint(b))))
		}
		prev2 = prev
		prev = v
		_ = i
	}
	for i := 0; i < len(nibbles); i += 2 {
		b := nibbles[i] << 4
		if i+1 < len(nibbles) {
			b |= nibbles[i+1]
		}
		headers = append(headers, b)
	}
	out := make([]byte, 8, 8+len(headers)+len(payload))
	binary.LittleEndian.PutUint64(out, uint64(n))
	out = append(out, headers...)
	return append(out, payload...), nil
}

// Decompress reverses Compress.
func (c FPC) Decompress(data []byte) ([]float64, error) {
	if len(data) < 8 {
		return nil, fmt.Errorf("lossless: truncated fpc header")
	}
	n := int(binary.LittleEndian.Uint64(data))
	if n < 0 {
		return nil, fmt.Errorf("lossless: negative length")
	}
	// Every value costs a header nibble, so a genuine stream can never
	// claim more values than twice its remaining bytes; checking before
	// allocating keeps crafted headers from demanding terabytes.
	if n > 2*(len(data)-8) {
		return nil, fmt.Errorf("lossless: %d values exceed %d payload bytes", n, len(data)-8)
	}
	out := make([]float64, n)
	if err := c.DecompressInto(out, data); err != nil {
		return nil, err
	}
	return out, nil
}

// DecompressInto reverses Compress into dst (serial, allocation-free
// on the output side); len(dst) must equal the stream's element count.
func (FPC) DecompressInto(dst []float64, data []byte) error {
	if len(data) < 8 {
		return fmt.Errorf("lossless: truncated fpc header")
	}
	n := int(binary.LittleEndian.Uint64(data))
	if n < 0 {
		return fmt.Errorf("lossless: negative length")
	}
	if n != len(dst) {
		return fmt.Errorf("lossless: stream holds %d values, dst has %d", n, len(dst))
	}
	hdrLen := (n + 1) / 2
	if len(data) < 8+hdrLen {
		return fmt.Errorf("lossless: truncated fpc nibbles")
	}
	headers := data[8 : 8+hdrLen]
	payload := data[8+hdrLen:]
	out := dst
	var prev, prev2 float64
	off := 0
	for i := 0; i < n; i++ {
		nib := headers[i/2]
		if i%2 == 0 {
			nib >>= 4
		}
		nib &= 0x0f
		sel := nib >> 3
		nres := int(nib & 7)
		if nres == 7 {
			nres = 8
		}
		if off+nres > len(payload) {
			return fmt.Errorf("lossless: truncated fpc payload at value %d", i)
		}
		var res uint64
		for b := 0; b < nres; b++ {
			res = res<<8 | uint64(payload[off+b])
		}
		off += nres
		var pred uint64
		if sel == 0 {
			pred = math.Float64bits(prev)
		} else {
			pred = math.Float64bits(2*prev - prev2)
		}
		v := math.Float64frombits(pred ^ res)
		out[i] = v
		prev2 = prev
		prev = v
	}
	if off != len(payload) {
		return fmt.Errorf("lossless: %d payload bytes unconsumed", len(payload)-off)
	}
	return nil
}

// lzBytes counts the leading zero bytes of v (0–8).
func lzBytes(v uint64) int {
	n := 0
	for n < 8 && v&(uint64(0xff)<<(8*(7-uint(n)))) == 0 {
		n++
	}
	return n
}

// Ratio returns the compression ratio original/compressed in bytes.
func Ratio(n int, compressed []byte) float64 {
	if len(compressed) == 0 {
		return 0
	}
	return float64(8*n) / float64(len(compressed))
}
