package lossless

import (
	"encoding/binary"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sparse"
)

func codecs() []Codec {
	return []Codec{Flate{}, FPC{}}
}

func roundTrip(t *testing.T, c Codec, x []float64) []byte {
	t.Helper()
	comp, err := c.Compress(x)
	if err != nil {
		t.Fatalf("%s: %v", c.Name(), err)
	}
	got, err := c.Decompress(comp)
	if err != nil {
		t.Fatalf("%s: %v", c.Name(), err)
	}
	if len(got) != len(x) {
		t.Fatalf("%s: got %d values, want %d", c.Name(), len(got), len(x))
	}
	for i := range x {
		if math.Float64bits(got[i]) != math.Float64bits(x[i]) {
			t.Fatalf("%s: value %d not bit-exact: %x vs %x",
				c.Name(), i, math.Float64bits(got[i]), math.Float64bits(x[i]))
		}
	}
	return comp
}

func TestRoundTripSmooth(t *testing.T) {
	x := sparse.SmoothField(5000, 1)
	for _, c := range codecs() {
		roundTrip(t, c, x)
	}
}

func TestRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := make([]float64, 3000)
	for i := range x {
		x[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(20))-10)
	}
	for _, c := range codecs() {
		roundTrip(t, c, x)
	}
}

func TestRoundTripSpecialValues(t *testing.T) {
	x := []float64{0, math.Copysign(0, -1), math.Inf(1), math.Inf(-1), math.NaN(),
		math.MaxFloat64, math.SmallestNonzeroFloat64, -1.5}
	for _, c := range codecs() {
		comp, err := c.Compress(x)
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		got, err := c.Decompress(comp)
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		for i := range x {
			if math.Float64bits(got[i]) != math.Float64bits(x[i]) {
				t.Fatalf("%s: special value %d corrupted", c.Name(), i)
			}
		}
	}
}

func TestRoundTripEmpty(t *testing.T) {
	for _, c := range codecs() {
		roundTrip(t, c, nil)
	}
}

func TestRepeatedDataCompressesWell(t *testing.T) {
	x := make([]float64, 10000)
	for i := range x {
		x[i] = 1.0
	}
	for _, c := range codecs() {
		comp := roundTrip(t, c, x)
		if r := Ratio(len(x), comp); r < 4 {
			t.Fatalf("%s: constant data ratio %.1f < 4", c.Name(), r)
		}
	}
}

func TestRandomMantissasBarelyCompress(t *testing.T) {
	// The paper's §2 point: random mantissa bits limit lossless ratios
	// to ≈2 on typical scientific data.
	rng := rand.New(rand.NewSource(7))
	x := make([]float64, 20000)
	for i := range x {
		x[i] = 1 + rng.Float64() // same exponent, random mantissa
	}
	for _, c := range codecs() {
		comp := roundTrip(t, c, x)
		r := Ratio(len(x), comp)
		if r > 2.5 {
			t.Fatalf("%s: ratio %.2f unexpectedly high for random mantissas", c.Name(), r)
		}
		if r < 0.8 {
			t.Fatalf("%s: ratio %.2f shows pathological expansion", c.Name(), r)
		}
	}
}

func TestDecompressRejectsGarbage(t *testing.T) {
	for _, c := range codecs() {
		if _, err := c.Decompress([]byte{1, 2, 3}); err == nil {
			t.Fatalf("%s: expected error on truncated input", c.Name())
		}
	}
	comp, err := Flate{}.Compress(sparse.SmoothField(100, 5))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (Flate{}).Decompress(comp[:len(comp)-3]); err == nil {
		t.Fatal("flate: expected error on truncated stream")
	}
	compF, err := FPC{}.Compress(sparse.SmoothField(100, 5))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (FPC{}).Decompress(compF[:len(compF)-3]); err == nil {
		t.Fatal("fpc: expected error on truncated stream")
	}
}

func TestFPCExploitsSmoothness(t *testing.T) {
	// FPC's stride predictor should beat flate on slowly varying data
	// with shared exponents, and both must stay lossless.
	x := make([]float64, 20000)
	for i := range x {
		x[i] = 1000 + float64(i)*1e-6
	}
	fpc := roundTrip(t, FPC{}, x)
	if r := Ratio(len(x), fpc); r < 2 {
		t.Fatalf("fpc ratio %.2f < 2 on linear data", r)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(2000)
		x := make([]float64, n)
		for i := range x {
			switch rng.Intn(3) {
			case 0:
				x[i] = rng.NormFloat64()
			case 1:
				x[i] = float64(rng.Intn(100))
			default:
				x[i] = math.Float64frombits(rng.Uint64()) // arbitrary bits
			}
		}
		for _, c := range codecs() {
			comp, err := c.Compress(x)
			if err != nil {
				return false
			}
			got, err := c.Decompress(comp)
			if err != nil || len(got) != n {
				return false
			}
			for i := range x {
				if math.Float64bits(got[i]) != math.Float64bits(x[i]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestDecompressIntoMatchesDecompress: both codecs' in-place decodes
// must be bit-exact against the allocating path and reject wrong-size
// destinations (the extended Encoder contract's into-variant).
func TestDecompressIntoMatchesDecompress(t *testing.T) {
	x := sparse.SmoothField(20_000, 21)
	for _, c := range codecs() {
		comp, err := c.Compress(x)
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		want, err := c.Decompress(comp)
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		got := make([]float64, len(x))
		for i := range got {
			got[i] = math.NaN()
		}
		if err := c.DecompressInto(got, comp); err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		for i := range want {
			if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
				t.Fatalf("%s index %d: into %g != alloc %g", c.Name(), i, got[i], want[i])
			}
		}
		if err := c.DecompressInto(make([]float64, len(x)-1), comp); err == nil {
			t.Fatalf("%s: short dst accepted", c.Name())
		}
		if err := c.DecompressInto(make([]float64, len(x)+1), comp); err == nil {
			t.Fatalf("%s: long dst accepted", c.Name())
		}
	}
}

// TestFPCRejectsCraftedLength: a header claiming far more values than
// the payload could hold must error before any allocation, so a
// corrupt checkpoint falls back instead of OOM-ing the restore.
func TestFPCRejectsCraftedLength(t *testing.T) {
	crafted := make([]byte, 24)
	binary.LittleEndian.PutUint64(crafted, 1<<40)
	if _, err := (FPC{}).Decompress(crafted); err == nil {
		t.Fatal("crafted fpc length accepted")
	}
	if err := (FPC{}).DecompressInto(make([]float64, 4), crafted); err == nil {
		t.Fatal("crafted fpc length accepted by DecompressInto")
	}
}
