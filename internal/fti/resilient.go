package fti

import (
	"errors"
	"fmt"
	"io/fs"
	"math/rand"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/obs"
)

// This file is the fault-tolerant storage layer: Resilient wraps any
// Storage with a FaultPolicy that classifies errors, retries transient
// ones with capped exponential backoff plus seeded jitter under a
// per-operation retry budget, and hedges slow reads with a parallel
// second attempt. The PFS the paper's setup writes to (and the
// Bebop-class model in package cluster prices) fails transiently and
// partially; without this layer a single flaky write aborts a whole
// checkpoint and a slow stripe stalls a whole restore.

// ErrClass is the failure taxonomy the retry policy keys off.
type ErrClass int

const (
	// ClassTransient errors (I/O timeouts, interrupted syscalls,
	// momentary unavailability) are worth retrying: the same operation
	// against the same healthy object is expected to succeed shortly.
	ClassTransient ErrClass = iota
	// ClassPermanent errors (object missing, no space, read-only or
	// misconfigured storage, invalid names) will not improve with
	// retries; they fail fast.
	ClassPermanent
	// ClassCorruption marks data that was read successfully but failed
	// an integrity check. The storage op itself "worked", so retrying
	// blindly is wrong — the read-side CRC layers issue their own
	// targeted re-reads instead (see shard.fetchVerify).
	ClassCorruption
)

// String names the class for error messages and reports.
func (c ErrClass) String() string {
	switch c {
	case ClassTransient:
		return "transient"
	case ClassPermanent:
		return "permanent"
	case ClassCorruption:
		return "corruption"
	}
	return fmt.Sprintf("ErrClass(%d)", int(c))
}

// Classifier is the optional interface an error implements to declare
// its own class — the fault-injection harness (internal/failure) uses
// it so injected faults are classified exactly as armed, and
// FaultError re-exports the class of the error it wraps.
type Classifier interface {
	FaultClass() ErrClass
}

// ClassifyError sorts a storage error into the retry taxonomy:
// self-classified errors are believed verbatim; missing objects,
// exhausted space, read-only filesystems, permission failures, and
// invalid names are permanent; interrupted or timed-out I/O is
// transient; anything unrecognized defaults to transient, because the
// retry budget bounds the cost of optimism while misclassifying a
// recoverable blip as permanent loses a checkpoint for nothing.
func ClassifyError(err error) ErrClass {
	var cl Classifier
	if errors.As(err, &cl) {
		return cl.FaultClass()
	}
	if errors.Is(err, fs.ErrNotExist) || errors.Is(err, fs.ErrPermission) || errors.Is(err, fs.ErrInvalid) {
		return ClassPermanent
	}
	var errno syscall.Errno
	if errors.As(err, &errno) {
		switch errno {
		case syscall.EINTR, syscall.EAGAIN, syscall.EIO, syscall.ETIMEDOUT, syscall.EBUSY, syscall.ENOBUFS:
			return ClassTransient
		case syscall.ENOSPC, syscall.EROFS, syscall.EDQUOT, syscall.EACCES, syscall.EPERM, syscall.ENOENT:
			return ClassPermanent
		}
	}
	msg := err.Error()
	if strings.Contains(msg, "not found") || strings.Contains(msg, "invalid object name") {
		return ClassPermanent
	}
	return ClassTransient
}

// FaultPolicy tunes Resilient. The zero value is usable: Normalize
// fills every unset knob with the defaults below.
type FaultPolicy struct {
	// MaxRetries is the number of retry attempts after the first try
	// (so an op issues at most MaxRetries+1 attempts). Default 4.
	MaxRetries int
	// BaseDelay is the pre-jitter backoff before the first retry; each
	// further retry doubles it up to MaxDelay. Defaults 2ms / 250ms.
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// OpBudget caps the total backoff delay one operation may spend
	// across its retries; a retry whose backoff would exceed the
	// remaining budget is not attempted and the op fails as exhausted.
	// 0 means no budget (MaxRetries alone bounds the op).
	OpBudget time.Duration
	// HedgeDelay, when positive, arms hedged reads: a Read still
	// outstanding after this long gets a parallel second read of the
	// same object, and the first success wins. 0 disables hedging.
	HedgeDelay time.Duration
	// Seed drives the jitter stream, so a seeded run's backoff
	// schedule is reproducible.
	Seed int64
	// Classify overrides the error taxonomy; nil means ClassifyError.
	Classify func(error) ErrClass
	// Sleep overrides the backoff sleep (tests substitute a recorder);
	// nil means time.Sleep.
	Sleep func(time.Duration)
}

// Normalize returns the policy with defaults filled in.
func (p FaultPolicy) Normalize() FaultPolicy {
	if p.MaxRetries <= 0 {
		p.MaxRetries = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 2 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 250 * time.Millisecond
	}
	if p.Classify == nil {
		p.Classify = ClassifyError
	}
	if p.Sleep == nil {
		p.Sleep = time.Sleep
	}
	return p
}

// FaultError is what a Resilient operation returns when it gives up:
// the op and object name, how many attempts were issued, the class
// that stopped the retrying, and the last underlying error. Retry
// exhaustion (Class == ClassTransient, Attempts > 1) is thereby
// distinguishable from a permanent failure that never retried.
type FaultError struct {
	Op       string // "write" | "read" | "delete" | "list"
	Name     string // object name ("" for list)
	Attempts int    // attempts actually issued
	Class    ErrClass
	Err      error
}

// Error formats the failure with its full context.
func (e *FaultError) Error() string {
	what := "failed"
	if e.Class == ClassTransient && e.Attempts > 1 {
		what = "exhausted retries"
	}
	if e.Name == "" {
		return fmt.Sprintf("fti: %s %s after %d attempt(s) (%s): %v", e.Op, what, e.Attempts, e.Class, e.Err)
	}
	return fmt.Sprintf("fti: %s %s %s after %d attempt(s) (%s): %v", e.Op, e.Name, what, e.Attempts, e.Class, e.Err)
}

// Unwrap exposes the last underlying error to errors.Is/As.
func (e *FaultError) Unwrap() error { return e.Err }

// FaultClass re-exports the class, so a FaultError crossing another
// Resilient (tiered stacks) keeps its classification.
func (e *FaultError) FaultClass() ErrClass { return e.Class }

// RetryStats is Resilient's cumulative accounting.
type RetryStats struct {
	Ops         int           // operations issued through the wrapper
	Retries     int           // retry attempts (beyond each op's first)
	Recovered   int           // ops that failed at least once but eventually succeeded
	Exhausted   int           // ops abandoned after the retry budget ran out
	Permanent   int           // ops failed fast on a permanent error
	HedgedReads int           // reads that armed a hedge request
	HedgeWins   int           // hedge requests that beat the primary
	RetryDelay  time.Duration // total backoff slept
}

// Resilient wraps a Storage with the FaultPolicy retry/backoff/hedging
// machinery. It implements Storage, and forwards WriteBatched to the
// inner store's BatchWriter when present so the shard group-commit
// optimization survives the wrapping. Safe for concurrent use to the
// same degree as the wrapped store.
type Resilient struct {
	inner Storage
	pol   FaultPolicy

	mu    sync.Mutex
	rng   *rand.Rand
	stats RetryStats

	met *resilientMetrics
}

// NewResilient wraps inner with pol (normalized). Wrapping an already
// resilient store is allowed but multiplies retry counts; don't.
func NewResilient(inner Storage, pol FaultPolicy) *Resilient {
	pol = pol.Normalize()
	return &Resilient{
		inner: inner,
		pol:   pol,
		rng:   rand.New(rand.NewSource(pol.Seed)),
	}
}

// Unwrap returns the wrapped Storage (fault injectors and fsck sweeps
// reach through the retry layer with it).
func (r *Resilient) Unwrap() Storage { return r.inner }

// Stats returns a snapshot of the cumulative retry accounting.
func (r *Resilient) Stats() RetryStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

type resilientMetrics struct {
	retries   *obs.Counter
	exhausted *obs.Counter
	permanent *obs.Counter
	hedged    *obs.Counter
	hedgeWins *obs.Counter
	delaySec  *obs.Histogram
}

// Instrument attaches retry/hedge counters to reg; nil detaches.
func (r *Resilient) Instrument(reg *obs.Registry) {
	if reg == nil {
		r.met = nil
		return
	}
	r.met = &resilientMetrics{
		retries:   reg.Counter(obs.MStorageRetriesTotal),
		exhausted: reg.Counter(obs.MStorageRetryExhaustedTotal),
		permanent: reg.Counter(obs.MStoragePermanentErrorsTotal),
		hedged:    reg.Counter(obs.MStorageHedgedReadsTotal),
		hedgeWins: reg.Counter(obs.MStorageHedgeWinsTotal),
		delaySec:  reg.Histogram(obs.MStorageRetryDelaySeconds, obs.LatencyBuckets()),
	}
}

// backoff returns the jittered delay before retry number attempt
// (0-based): the capped exponential step, jittered uniformly into
// [step/2, step] so concurrent retriers decorrelate.
func (r *Resilient) backoff(attempt int) time.Duration {
	step := r.pol.BaseDelay << uint(attempt)
	if step > r.pol.MaxDelay || step <= 0 { // <= 0: shift overflow
		step = r.pol.MaxDelay
	}
	r.mu.Lock()
	j := time.Duration(r.rng.Int63n(int64(step)/2 + 1))
	r.mu.Unlock()
	return step/2 + j
}

// retry runs fn under the policy: transient failures back off and
// retry until MaxRetries or the OpBudget runs out; permanent and
// corruption failures return immediately. The terminal error is
// always a *FaultError carrying the attempt count and class.
func (r *Resilient) retry(op, name string, fn func() error) error {
	var slept time.Duration
	var last error
	for attempt := 0; ; attempt++ {
		err := fn()
		if err == nil {
			r.mu.Lock()
			r.stats.Ops++
			if attempt > 0 {
				r.stats.Recovered++
			}
			r.mu.Unlock()
			return nil
		}
		last = err
		class := r.pol.Classify(err)
		if class != ClassTransient {
			r.mu.Lock()
			r.stats.Ops++
			r.stats.Permanent++
			r.mu.Unlock()
			r.met.permanentInc()
			return &FaultError{Op: op, Name: name, Attempts: attempt + 1, Class: class, Err: err}
		}
		d := r.backoff(attempt)
		if attempt >= r.pol.MaxRetries || (r.pol.OpBudget > 0 && slept+d > r.pol.OpBudget) {
			r.mu.Lock()
			r.stats.Ops++
			r.stats.Exhausted++
			r.mu.Unlock()
			r.met.exhaustedInc()
			return &FaultError{Op: op, Name: name, Attempts: attempt + 1, Class: ClassTransient, Err: last}
		}
		slept += d
		r.mu.Lock()
		r.stats.Retries++
		r.stats.RetryDelay += d
		r.mu.Unlock()
		r.met.retryObserve(d)
		r.pol.Sleep(d)
	}
}

// Write stores data under name, retrying transient failures.
func (r *Resilient) Write(name string, data []byte) error {
	return r.retry("write", name, func() error { return r.inner.Write(name, data) })
}

// WriteBatched forwards to the inner store's BatchWriter (preserving
// the shard layer's deferred-namespace-fsync group commit) with the
// same retry policy, falling back to Write when the inner store has
// no batch path.
func (r *Resilient) WriteBatched(name string, data []byte) error {
	bw, ok := r.inner.(shardBatchWriter)
	if !ok {
		return r.Write(name, data)
	}
	return r.retry("write", name, func() error { return bw.WriteBatched(name, data) })
}

// shardBatchWriter mirrors shard.BatchWriter without importing the
// shard package here (fti already depends on shard elsewhere; the
// local alias keeps this file self-contained).
type shardBatchWriter interface {
	WriteBatched(name string, data []byte) error
}

// Read loads name, retrying transient failures; when HedgeDelay is
// armed, each attempt races a hedge read launched if the primary is
// still outstanding after the delay, and the first success wins
// (slices returned by Read are caller-owned, so the loser's result is
// simply dropped).
func (r *Resilient) Read(name string) ([]byte, error) {
	var data []byte
	err := r.retry("read", name, func() error {
		var err error
		data, err = r.hedgedRead(name)
		return err
	})
	if err != nil {
		return nil, err
	}
	return data, nil
}

func (r *Resilient) hedgedRead(name string) ([]byte, error) {
	if r.pol.HedgeDelay <= 0 {
		return r.inner.Read(name)
	}
	type result struct {
		data   []byte
		err    error
		hedged bool
	}
	ch := make(chan result, 2) // buffered: the losing goroutine must not leak
	launch := func(hedged bool) {
		go func() {
			d, e := r.inner.Read(name)
			ch <- result{d, e, hedged}
		}()
	}
	launch(false)
	timer := time.NewTimer(r.pol.HedgeDelay)
	defer timer.Stop()
	pending, hedged := 1, false
	var firstErr error
	for {
		select {
		case res := <-ch:
			pending--
			if res.err == nil {
				if res.hedged {
					r.mu.Lock()
					r.stats.HedgeWins++
					r.mu.Unlock()
					r.met.hedgeWinInc()
				}
				return res.data, nil
			}
			if firstErr == nil {
				firstErr = res.err
			}
			if pending == 0 {
				return nil, firstErr
			}
			// The other request (primary or hedge) is still out; wait for it.
		case <-timer.C:
			if !hedged {
				hedged = true
				pending++
				r.mu.Lock()
				r.stats.HedgedReads++
				r.mu.Unlock()
				r.met.hedgedInc()
				launch(true)
			}
		}
	}
}

// Delete removes name, retrying transient failures.
func (r *Resilient) Delete(name string) error {
	return r.retry("delete", name, func() error { return r.inner.Delete(name) })
}

// List lists the inner store, retrying transient failures.
func (r *Resilient) List() ([]string, error) {
	var names []string
	err := r.retry("list", "", func() error {
		var err error
		names, err = r.inner.List()
		return err
	})
	if err != nil {
		return nil, err
	}
	return names, nil
}

// SweepTemp forwards to the inner store's temp-file sweeper when it
// has one (see TempSweeper), so fsck works through the wrapper.
func (r *Resilient) SweepTemp() ([]string, error) {
	ts, ok := r.inner.(TempSweeper)
	if !ok {
		return nil, nil
	}
	return ts.SweepTemp()
}

func (m *resilientMetrics) retryObserve(d time.Duration) {
	if m == nil {
		return
	}
	m.retries.Inc()
	m.delaySec.Observe(d.Seconds())
}

func (m *resilientMetrics) exhaustedInc() {
	if m == nil {
		return
	}
	m.exhausted.Inc()
}

func (m *resilientMetrics) permanentInc() {
	if m == nil {
		return
	}
	m.permanent.Inc()
}

func (m *resilientMetrics) hedgedInc() {
	if m == nil {
		return
	}
	m.hedged.Inc()
}

func (m *resilientMetrics) hedgeWinInc() {
	if m == nil {
		return
	}
	m.hedgeWins.Inc()
}
