package fti

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/codec"
	"repro/internal/sz"
)

// This file holds the cross-codec identity matrix: every codec ×
// container layout {legacy monolithic, blocked-3, blocked-8} × writer
// {sync, async} × storage {monolithic, 4-shard} must round-trip
// through all three restore paths — streaming (shard.Reader +
// per-block/DecompressInto), reassembled (whole-payload Decompress),
// and in-place (RestoreInto targets, the DecompressInto path) — with
// bitwise identical reconstructions. Lossless codecs must reproduce
// the input exactly; lossy codecs must hold their error bound; and
// ZFP, whose container blocks are forced to transform-block multiples,
// must reconstruct bitwise identically in every layout.

// matrixLayouts names the three container layouts and, per codec, the
// block-size knob that produces them for the 12,800-element vector
// used by the matrix.
var matrixLayouts = []string{"legacy", "blocked-3", "blocked-8"}

const matrixN = 12_800

// matrixCase builds the encoder for one (codec, layout) cell.
// Block sizes: 4288 and 1600 split 12,800 elements into 3 and 8
// blocks; both are multiples of zfp's 32-element transform block, so
// ZFP's blocked streams are bitwise identical to its legacy stream.
// 16384 ≥ 12,800 keeps the stream in the legacy single-block format.
type matrixCase struct {
	codec string
	// identicalAcrossLayouts: reconstruction must match bitwise
	// between legacy and blocked layouts (lossless codecs trivially,
	// ZFP by block alignment). SZ's blocked predictor restarts at
	// block boundaries, so only the error bound carries across
	// layouts.
	identicalAcrossLayouts bool
	// check verifies the reconstruction against the original.
	check func(t *testing.T, label string, x, dec []float64)
	enc   func(layout string) Encoder
}

func matrixBlockElems(layout string) int {
	switch layout {
	case "blocked-3":
		return 4288
	case "blocked-8":
		return 1600
	default:
		return 16384
	}
}

func exactCheck(t *testing.T, label string, x, dec []float64) {
	t.Helper()
	for i := range x {
		if math.Float64bits(x[i]) != math.Float64bits(dec[i]) {
			t.Fatalf("%s: lossless codec changed element %d: %g != %g", label, i, dec[i], x[i])
		}
	}
}

func matrixCases() []matrixCase {
	return []matrixCase{
		{
			codec:                  "sz",
			identicalAcrossLayouts: false,
			check: func(t *testing.T, label string, x, dec []float64) {
				t.Helper()
				const eb = 1e-4
				for i := range x {
					if d := math.Abs(x[i] - dec[i]); d > eb*math.Abs(x[i])*(1+1e-10) {
						t.Fatalf("%s: PWRel bound broken at %d: |%g-%g| = %g", label, i, x[i], dec[i], d)
					}
				}
			},
			enc: func(layout string) Encoder {
				return SZ{Params: sz.Params{Mode: sz.PWRel, ErrorBound: 1e-4, BlockSize: matrixBlockElems(layout)}}
			},
		},
		{
			codec:                  "zfp",
			identicalAcrossLayouts: true,
			check: func(t *testing.T, label string, x, dec []float64) {
				t.Helper()
				const eb = 1e-5
				for i := range x {
					if d := math.Abs(x[i] - dec[i]); d > eb*(1+1e-9) {
						t.Fatalf("%s: ABS bound broken at %d: |%g-%g| = %g", label, i, x[i], dec[i], d)
					}
				}
			},
			enc: func(layout string) Encoder {
				return ZFP{Bound: 1e-5, BlockElems: matrixBlockElems(layout)}
			},
		},
		{
			codec:                  "fpc",
			identicalAcrossLayouts: true,
			check:                  exactCheck,
			enc: func(layout string) Encoder {
				return Lossless{Codec: codec.BlockedFPC{BlockElems: matrixBlockElems(layout)}}
			},
		},
		{
			codec:                  "flate",
			identicalAcrossLayouts: true,
			check:                  exactCheck,
			enc: func(layout string) Encoder {
				return Lossless{Codec: codec.BlockedFlate{BlockElems: matrixBlockElems(layout)}}
			},
		},
	}
}

// TestCodecIdentityMatrix drives the full matrix. For each (codec,
// layout) the reconstruction from the first (sync, monolithic) variant
// is the reference; every other variant and every restore path must
// reproduce it bitwise.
func TestCodecIdentityMatrix(t *testing.T) {
	big := streamState(matrixN, 21)
	small := streamState(300, 22)
	for _, mc := range matrixCases() {
		var layoutRef []float64 // reference across layouts (when identical)
		for _, layout := range matrixLayouts {
			enc := mc.enc(layout)

			// The layout knob must actually select the container: blocked
			// layouts emit a block container, legacy stays single-stream.
			blob, err := enc.Encode(big)
			if err != nil {
				t.Fatalf("%s/%s: encode: %v", mc.codec, layout, err)
			}
			isBlocked := codec.IsBlocked(blob)
			if mc.codec == "sz" {
				_, isBlocked = sz.BlockRanges(blob)
			}
			if wantBlocked := layout != "legacy"; isBlocked != wantBlocked {
				t.Fatalf("%s/%s: blocked=%v, want %v", mc.codec, layout, isBlocked, wantBlocked)
			}

			var cellRef []float64 // reference across variants of this cell
			for _, shards := range []int{1, 4} {
				for _, async := range []bool{false, true} {
					label := fmt.Sprintf("%s/%s/shards=%d/async=%v", mc.codec, layout, shards, async)
					st := NewMemStorage()
					c := New(st, enc)
					if err := c.SetSharding(shards, 2); err != nil {
						t.Fatal(err)
					}
					snap := streamSnap(7, big, small)
					if async {
						ac := NewAsync(c)
						if _, err := ac.SaveAsync(snap); err != nil {
							t.Fatalf("%s: %v", label, err)
						}
						if _, err := ac.Flush(); err != nil {
							t.Fatalf("%s: %v", label, err)
						}
					} else if _, err := c.Save(snap); err != nil {
						t.Fatalf("%s: %v", label, err)
					}

					// Path 1: streaming restore (shard.Reader + per-block
					// DecompressInto for blocked streams).
					streaming, err := c.Restore()
					if err != nil {
						t.Fatalf("%s: streaming restore: %v", label, err)
					}
					// Path 2: reassembled whole-payload Decompress.
					legacy, err := c.RestoreReassembled()
					if err != nil {
						t.Fatalf("%s: reassembled restore: %v", label, err)
					}
					snapshotsBitwiseEqual(t, label+" streaming-vs-reassembled", streaming, legacy)
					// Path 3: in-place DecompressInto via restore targets.
					targets := map[string][]float64{
						"x": make([]float64, len(big)),
						"p": make([]float64, len(small)),
					}
					inPlace, err := c.RestoreInto(targets)
					if err != nil {
						t.Fatalf("%s: in-place restore: %v", label, err)
					}
					snapshotsBitwiseEqual(t, label+" streaming-vs-inplace", streaming, inPlace)
					if &targets["x"][0] != &inPlace.Vectors["x"][0] {
						t.Fatalf("%s: RestoreInto did not decode into the provided target", label)
					}

					dec := streaming.Vectors["x"]
					mc.check(t, label, big, dec)
					mc.check(t, label+"/small", small, streaming.Vectors["p"])
					if cellRef == nil {
						cellRef = dec
					} else {
						for i := range cellRef {
							if math.Float64bits(cellRef[i]) != math.Float64bits(dec[i]) {
								t.Fatalf("%s: reconstruction differs from the cell's sync/monolithic reference at %d", label, i)
							}
						}
					}
				}
			}
			if mc.identicalAcrossLayouts {
				if layoutRef == nil {
					layoutRef = cellRef
				} else {
					for i := range layoutRef {
						if math.Float64bits(layoutRef[i]) != math.Float64bits(cellRef[i]) {
							t.Fatalf("%s/%s: blocked reconstruction differs from legacy at %d", mc.codec, layout, i)
						}
					}
				}
			}
		}
	}
}
