package fti

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Storage is where checkpoint bytes live. DirStorage writes real files
// (the PFS in the paper's setup); MemStorage backs the virtual-time
// simulator, where thousands of checkpoints are taken per experiment
// and the I/O cost is accounted by the cluster model instead.
//
// Ownership and concurrency contract: Write's data slice is owned by
// the caller. Implementations must either finish using it or copy it
// before returning — the Checkpointer reuses its encode buffers across
// checkpoints (double-buffered in the asynchronous pipeline), so a
// retained slice WILL be overwritten by a later snapshot. Conversely,
// slices returned by Read are owned by the caller; the implementation
// must not reuse their backing arrays. With the AsyncCheckpointer,
// Write runs on a background goroutine while Read/List/Delete may be
// issued from the solver goroutine (statics, recovery probes), so
// implementations must be safe for concurrent use. The sharded layout
// (Checkpointer.SetSharding) additionally issues concurrent Writes —
// and, on recovery, concurrent Reads — from its worker pool, always
// for distinct object names; implementations must support that too
// (distinct files or map keys make it natural). All three provided
// implementations satisfy the contract.
//
// Read-side concurrency under streaming restore: a sharded recovery
// (shard.Reader.Process via Checkpointer.RestoreInto) issues up to
// storage-workers concurrent Reads for the group's shard objects and
// decodes each returned slice on the worker that read it, retaining it
// only until that shard's blocks are decoded. Because the returned
// slices are caller-owned, the decoder slices them zero-copy; an
// implementation that recycled Read buffers would corrupt restores.
// Reads of distinct names may also race a concurrent background Write
// of *different* names (an async save committing while an earlier
// checkpoint is restored); implementations must not serialize
// correctness on global mutable state beyond the per-name entries.
//
// Object layout under sharding: checkpoint seq N is either one
// monolithic object "ckpt-%012d" (the snapshot payload) or a group —
// shard objects "ckpt-%012d.s00000", ".s00001", … holding contiguous
// payload spans, plus a manifest under the plain "ckpt-%012d" name,
// written last as the commit point (see package shard for the commit
// protocol and the manifest format). Retention, recovery scans, and
// DropLatest all operate on the manifest name and treat the group as
// one checkpoint; shard objects without a manifest are orphans that
// recovery ignores and gc sweeps.
type Storage interface {
	// Write stores data under name, replacing any previous content.
	// See the interface comment for the ownership rules on data.
	Write(name string, data []byte) error
	// Read returns the content stored under name.
	Read(name string) ([]byte, error)
	// Delete removes name; deleting a missing name is not an error.
	Delete(name string) error
	// List returns all stored names in lexicographic order.
	List() ([]string, error)
}

// DirStorage stores each object as a file in a directory.
type DirStorage struct {
	dir string
}

// NewDirStorage creates (if needed) and wraps the directory.
func NewDirStorage(dir string) (*DirStorage, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("fti: create storage dir: %w", err)
	}
	return &DirStorage{dir: dir}, nil
}

func (s *DirStorage) path(name string) (string, error) {
	if name == "" || strings.ContainsAny(name, "/\\") || strings.Contains(name, "..") {
		return "", fmt.Errorf("fti: invalid object name %q", name)
	}
	return filepath.Join(s.dir, name), nil
}

// Write stores data as a file, atomically via rename, fully durable:
// the temp file is fsynced before the rename (the rename orders the
// *name* but not the *data*, so without the sync a crash shortly
// after commit could leave a committed shard or manifest as an empty
// or partial file), and the directory is fsynced after it (a rename
// lives in the page cache only; without the directory sync a crash
// could persist a later operation — gc's unlink of the previous
// checkpoint — but not this commit).
func (s *DirStorage) Write(name string, data []byte) error {
	return s.write(name, data, true)
}

// WriteBatched is Write minus the directory fsync — the shard batch
// path (see shard.BatchWriter): the data is durable, the rename is
// issued, and the directory sync of the next full Write (the group's
// manifest commit, always in this same directory) makes every batched
// entry durable at once.
func (s *DirStorage) WriteBatched(name string, data []byte) error {
	return s.write(name, data, false)
}

func (s *DirStorage) write(name string, data []byte, syncDir bool) error {
	p, err := s.path(name)
	if err != nil {
		return err
	}
	tmp := p + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("fti: write %s: %w", name, err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("fti: write %s: %w", name, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("fti: sync %s: %w", name, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("fti: close %s: %w", name, err)
	}
	if err := os.Rename(tmp, p); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("fti: commit %s: %w", name, err)
	}
	if syncDir {
		d, err := os.Open(s.dir)
		if err != nil {
			// Failing to open the directory means the commit cannot be
			// made durable; report it rather than claim success.
			return fmt.Errorf("fti: sync dir for %s: %w", name, err)
		}
		syncErr := d.Sync()
		d.Close()
		if syncErr != nil {
			return fmt.Errorf("fti: sync dir for %s: %w", name, syncErr)
		}
	}
	return nil
}

// Read returns the file's contents.
func (s *DirStorage) Read(name string) ([]byte, error) {
	p, err := s.path(name)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(p)
	if err != nil {
		return nil, fmt.Errorf("fti: read %s: %w", name, err)
	}
	return data, nil
}

// Delete removes the file if present.
func (s *DirStorage) Delete(name string) error {
	p, err := s.path(name)
	if err != nil {
		return err
	}
	if err := os.Remove(p); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("fti: delete %s: %w", name, err)
	}
	return nil
}

// List returns stored names sorted.
func (s *DirStorage) List() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("fti: list: %w", err)
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() || strings.HasSuffix(e.Name(), ".tmp") {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names, nil
}

// TempSweeper is the optional Storage extension fsck uses to clean up
// temp files from interrupted writes: implementations remove every
// stale in-progress artifact (for DirStorage, "*.tmp" files — which
// List already hides) and return the names removed. Only call it when
// no write can be in flight; a sweep racing a live writer could
// unlink a temp file about to be committed.
type TempSweeper interface {
	SweepTemp() ([]string, error)
}

// SweepTemp removes stale "*.tmp" files left by writes that were
// interrupted between creating the temp file and renaming it over the
// final name. Crash points (1)–(2) of the commit protocol (temp
// written, temp fsynced — see Fsck) both strand exactly such a file.
func (s *DirStorage) SweepTemp() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("fti: sweep temp: %w", err)
	}
	var removed []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".tmp") {
			continue
		}
		if err := os.Remove(filepath.Join(s.dir, e.Name())); err != nil && !os.IsNotExist(err) {
			return removed, fmt.Errorf("fti: sweep temp %s: %w", e.Name(), err)
		}
		removed = append(removed, e.Name())
	}
	sort.Strings(removed)
	return removed, nil
}

// MemStorage is an in-memory Storage, safe for concurrent use.
type MemStorage struct {
	mu    sync.Mutex
	files map[string][]byte
}

// NewMemStorage returns an empty in-memory store.
func NewMemStorage() *MemStorage {
	return &MemStorage{files: map[string][]byte{}}
}

// Write stores a copy of data.
func (s *MemStorage) Write(name string, data []byte) error {
	if name == "" {
		return fmt.Errorf("fti: invalid object name %q", name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.files[name] = append([]byte(nil), data...)
	return nil
}

// Read returns a copy of the stored bytes.
func (s *MemStorage) Read(name string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	data, ok := s.files[name]
	if !ok {
		return nil, fmt.Errorf("fti: read %s: not found", name)
	}
	return append([]byte(nil), data...), nil
}

// Delete removes the entry if present.
func (s *MemStorage) Delete(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.files, name)
	return nil
}

// List returns stored names sorted.
func (s *MemStorage) List() ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.files))
	for n := range s.files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

// TotalBytes reports the number of bytes held (test/diagnostic aid).
func (s *MemStorage) TotalBytes() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	total := 0
	for _, d := range s.files {
		total += len(d)
	}
	return total
}

// Tiered mirrors FTI's multilevel idea in its simplest useful form:
// writes go to both a fast local level and a reliable global level;
// reads try local first and fall back to global. Deletes apply to both.
type Tiered struct {
	Local  Storage
	Global Storage
}

// Write stores to both levels; the global level must succeed.
func (s *Tiered) Write(name string, data []byte) error {
	if err := s.Global.Write(name, data); err != nil {
		return err
	}
	// A local-level failure only costs the fast path.
	_ = s.Local.Write(name, data)
	return nil
}

// Read prefers the local level.
func (s *Tiered) Read(name string) ([]byte, error) {
	if data, err := s.Local.Read(name); err == nil {
		return data, nil
	}
	return s.Global.Read(name)
}

// Delete removes from both levels.
func (s *Tiered) Delete(name string) error {
	_ = s.Local.Delete(name)
	return s.Global.Delete(name)
}

// List lists the global (authoritative) level.
func (s *Tiered) List() ([]string, error) { return s.Global.List() }
