package fti

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/codec"
	"repro/internal/lossless"
	"repro/internal/sz"
	"repro/internal/zfp"
)

// DecoderInto is the optional streaming extension of Encoder: encoders
// implementing it decode directly into a caller-provided slice, which
// the restore path uses to reconstruct vector payloads in place —
// straight into the registered (protected) variables — instead of
// allocating a fresh vector and copying. All encoders in this package
// implement it.
//
// Contract: dst's length must equal the encoded element count exactly
// (an error is returned otherwise — never a partial decode into a
// shorter dst); every element of dst is overwritten on success, so
// stale contents cannot survive (accumulate-style decoders must zero
// dst first); on error dst's contents are unspecified; and the
// reconstruction must be bitwise identical to Decode on the same
// bytes.
type DecoderInto interface {
	DecodeInto(dst []float64, data []byte) error
}

// DecodeInto decodes data with enc into dst, whose length must match
// the encoded element count, using the encoder's DecoderInto fast path
// when implemented and falling back to Decode plus a copy.
func DecodeInto(enc Encoder, dst []float64, data []byte) error {
	if di, ok := enc.(DecoderInto); ok {
		return di.DecodeInto(dst, data)
	}
	v, err := enc.Decode(data)
	if err != nil {
		return err
	}
	if len(v) != len(dst) {
		return fmt.Errorf("fti: decoded %d values into a %d-element destination", len(v), len(dst))
	}
	copy(dst, v)
	return nil
}

// Raw is the traditional-checkpointing encoder: vectors are stored as
// their exact little-endian byte image, no compression.
type Raw struct{}

// Name returns "raw".
func (Raw) Name() string { return "raw" }

// Encode stores the exact bytes of x.
func (Raw) Encode(x []float64) ([]byte, error) {
	out := make([]byte, 8*len(x))
	for i, v := range x {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(v))
	}
	return out, nil
}

// Decode reverses Encode.
func (Raw) Decode(data []byte) ([]float64, error) {
	if len(data)%8 != 0 {
		return nil, fmt.Errorf("fti: raw payload length %d not a multiple of 8", len(data))
	}
	out := make([]float64, len(data)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[8*i:]))
	}
	return out, nil
}

// DecodeInto reverses Encode into dst (DecoderInto).
func (Raw) DecodeInto(dst []float64, data []byte) error {
	if len(data) != 8*len(dst) {
		return fmt.Errorf("fti: raw payload is %d bytes, a %d-element destination needs %d", len(data), len(dst), 8*len(dst))
	}
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[8*i:]))
	}
	return nil
}

// Lossless wraps a lossless codec (the paper's Gzip baseline).
type Lossless struct {
	Codec lossless.Codec
}

// Name returns "lossless/<codec>".
func (e Lossless) Name() string { return "lossless/" + e.Codec.Name() }

// Encode compresses exactly.
func (e Lossless) Encode(x []float64) ([]byte, error) { return e.Codec.Compress(x) }

// Decode decompresses exactly.
func (e Lossless) Decode(data []byte) ([]float64, error) { return e.Codec.Decompress(data) }

// DecodeInto decompresses exactly into dst (DecoderInto).
func (e Lossless) DecodeInto(dst []float64, data []byte) error {
	return e.Codec.DecompressInto(dst, data)
}

// SZ wraps the SZ-like error-bounded lossy compressor — the paper's
// choice for 1D solver state.
type SZ struct {
	Params sz.Params
}

// Name returns "sz".
func (SZ) Name() string { return "sz" }

// Encode compresses within the configured error bound.
func (e SZ) Encode(x []float64) ([]byte, error) { return sz.Compress(x, e.Params) }

// Decode reconstructs within the error bound.
func (SZ) Decode(data []byte) ([]float64, error) { return sz.Decompress(data) }

// DecodeInto reconstructs within the error bound into dst
// (DecoderInto).
func (SZ) DecodeInto(dst []float64, data []byte) error { return sz.DecompressInto(dst, data) }

// ZFP wraps the transform-based lossy compressor (absolute bound).
// Vectors larger than one container block are written in the BLK1
// blocked container — compressed block-parallel and restorable
// shard-by-shard through the streaming path — with bitwise identical
// reconstruction to the legacy stream; legacy single-block streams
// from older checkpoints still decode.
type ZFP struct {
	Bound float64
	// BlockElems is the container block size in elements; 0 means
	// codec.DefaultBlockElems (rounded to a transform-block multiple).
	BlockElems int
}

// Name returns "zfp".
func (ZFP) Name() string { return "zfp" }

// Encode compresses within the absolute error bound.
func (e ZFP) Encode(x []float64) ([]byte, error) {
	return codec.Compress(x, codec.Params{Codec: codec.ZFP, Bound: e.Bound, BlockElems: e.BlockElems})
}

// Decode reconstructs within the bound.
func (ZFP) Decode(data []byte) ([]float64, error) {
	if codec.IsBlocked(data) {
		return codec.DecompressAs(data, codec.ZFP)
	}
	return zfp.Decompress(data)
}

// DecodeInto reconstructs within the bound into dst (DecoderInto).
func (ZFP) DecodeInto(dst []float64, data []byte) error {
	if codec.IsBlocked(data) {
		return codec.DecompressIntoAs(dst, data, codec.ZFP)
	}
	return zfp.DecompressInto(dst, data)
}
