package fti

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/lossless"
	"repro/internal/sz"
	"repro/internal/zfp"
)

// Raw is the traditional-checkpointing encoder: vectors are stored as
// their exact little-endian byte image, no compression.
type Raw struct{}

// Name returns "raw".
func (Raw) Name() string { return "raw" }

// Encode stores the exact bytes of x.
func (Raw) Encode(x []float64) ([]byte, error) {
	out := make([]byte, 8*len(x))
	for i, v := range x {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(v))
	}
	return out, nil
}

// Decode reverses Encode.
func (Raw) Decode(data []byte) ([]float64, error) {
	if len(data)%8 != 0 {
		return nil, fmt.Errorf("fti: raw payload length %d not a multiple of 8", len(data))
	}
	out := make([]float64, len(data)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[8*i:]))
	}
	return out, nil
}

// Lossless wraps a lossless codec (the paper's Gzip baseline).
type Lossless struct {
	Codec lossless.Codec
}

// Name returns "lossless/<codec>".
func (e Lossless) Name() string { return "lossless/" + e.Codec.Name() }

// Encode compresses exactly.
func (e Lossless) Encode(x []float64) ([]byte, error) { return e.Codec.Compress(x) }

// Decode decompresses exactly.
func (e Lossless) Decode(data []byte) ([]float64, error) { return e.Codec.Decompress(data) }

// SZ wraps the SZ-like error-bounded lossy compressor — the paper's
// choice for 1D solver state.
type SZ struct {
	Params sz.Params
}

// Name returns "sz".
func (SZ) Name() string { return "sz" }

// Encode compresses within the configured error bound.
func (e SZ) Encode(x []float64) ([]byte, error) { return sz.Compress(x, e.Params) }

// Decode reconstructs within the error bound.
func (SZ) Decode(data []byte) ([]float64, error) { return sz.Decompress(data) }

// ZFP wraps the transform-based lossy compressor (absolute bound).
type ZFP struct {
	Bound float64
}

// Name returns "zfp".
func (ZFP) Name() string { return "zfp" }

// Encode compresses within the absolute error bound.
func (e ZFP) Encode(x []float64) ([]byte, error) { return zfp.Compress(x, e.Bound) }

// Decode reconstructs within the bound.
func (ZFP) Decode(data []byte) ([]float64, error) { return zfp.Decompress(data) }
