package fti

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/codec"
	"repro/internal/lossless"
	"repro/internal/sz"
	"repro/internal/zfp"
)

// DecoderInto is the optional streaming extension of Encoder: encoders
// implementing it decode directly into a caller-provided slice, which
// the restore path uses to reconstruct vector payloads in place —
// straight into the registered (protected) variables — instead of
// allocating a fresh vector and copying. All encoders in this package
// implement it.
//
// Contract: dst's length must equal the encoded element count exactly
// (an error is returned otherwise — never a partial decode into a
// shorter dst); every element of dst is overwritten on success, so
// stale contents cannot survive (accumulate-style decoders must zero
// dst first); on error dst's contents are unspecified; and the
// reconstruction must be bitwise identical to Decode on the same
// bytes.
type DecoderInto interface {
	DecodeInto(dst []float64, data []byte) error
}

// DecodeInto decodes data with enc into dst, whose length must match
// the encoded element count, using the encoder's DecoderInto fast path
// when implemented and falling back to Decode plus a copy.
func DecodeInto(enc Encoder, dst []float64, data []byte) error {
	if di, ok := enc.(DecoderInto); ok {
		return di.DecodeInto(dst, data)
	}
	v, err := enc.Decode(data)
	if err != nil {
		return err
	}
	if len(v) != len(dst) {
		return fmt.Errorf("fti: decoded %d values into a %d-element destination", len(v), len(dst))
	}
	copy(dst, v)
	return nil
}

// EncodeStats summarizes the distortion one vector's encoding
// introduced, in the shape the sz/codec containers report it: errors
// in the bound's native metric (absolute, or relative when Relative),
// plus the value-domain aggregates PSNR needs. Lossless encoders
// report exact zeros. It mirrors sz.Stats field-for-field so the
// quality layer depends only on fti.
type EncodeStats struct {
	Elements    int
	MaxErr      float64
	SumErr      float64
	SumSqAbs    float64
	MaxAbsValue float64
	Bound       float64
	Relative    bool
	// Lossy reports whether the encoder can distort at all; exact
	// encoders audit trivially (zero error, no decode).
	Lossy bool
}

// fromSZStats converts the container packages' stats form.
func fromSZStats(st sz.Stats, lossy bool) EncodeStats {
	return EncodeStats{
		Elements:    st.Elements,
		MaxErr:      st.MaxErr,
		SumErr:      st.SumErr,
		SumSqAbs:    st.SumSqAbs,
		MaxAbsValue: st.MaxAbsValue,
		Bound:       st.Bound,
		Relative:    st.Relative,
		Lossy:       lossy,
	}
}

// MeanErr returns the mean per-element error in the bound's metric.
func (s EncodeStats) MeanErr() float64 {
	if s.Elements == 0 {
		return 0
	}
	return s.SumErr / float64(s.Elements)
}

// RMSE returns the root-mean-square absolute (value-domain) error.
func (s EncodeStats) RMSE() float64 {
	if s.Elements == 0 {
		return 0
	}
	return math.Sqrt(s.SumSqAbs / float64(s.Elements))
}

// PSNR returns the peak signal-to-noise ratio in dB; +Inf for exact
// reconstructions, 0 for an all-zero input.
func (s EncodeStats) PSNR() float64 {
	rmse := s.RMSE()
	if rmse == 0 {
		if s.MaxAbsValue == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return 20 * math.Log10(s.MaxAbsValue/rmse)
}

// StatsEncoder is the optional audit extension of Encoder: EncodeStats
// returns the same bytes Encode would — bitwise — plus the distortion
// the encoding introduced, accumulated on the encode path itself (the
// sz quantizer already knows every reconstruction; the ZFP container
// decodes each block while cache-hot; lossless encoders report exact
// zeros without any extra pass over the payload).
type StatsEncoder interface {
	Encoder
	EncodeStats(x []float64) ([]byte, EncodeStats, error)
}

// exactStats builds the EncodeStats of a lossless encoding of x.
func exactStats(x []float64) EncodeStats {
	st := EncodeStats{Elements: len(x)}
	for _, v := range x {
		if v < 0 {
			v = -v
		}
		if v > st.MaxAbsValue {
			st.MaxAbsValue = v
		}
	}
	return st
}

// Raw is the traditional-checkpointing encoder: vectors are stored as
// their exact little-endian byte image, no compression.
type Raw struct{}

// Name returns "raw".
func (Raw) Name() string { return "raw" }

// Encode stores the exact bytes of x.
func (Raw) Encode(x []float64) ([]byte, error) {
	out := make([]byte, 8*len(x))
	for i, v := range x {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(v))
	}
	return out, nil
}

// Decode reverses Encode.
func (Raw) Decode(data []byte) ([]float64, error) {
	if len(data)%8 != 0 {
		return nil, fmt.Errorf("fti: raw payload length %d not a multiple of 8", len(data))
	}
	out := make([]float64, len(data)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[8*i:]))
	}
	return out, nil
}

// DecodeInto reverses Encode into dst (DecoderInto).
func (Raw) DecodeInto(dst []float64, data []byte) error {
	if len(data) != 8*len(dst) {
		return fmt.Errorf("fti: raw payload is %d bytes, a %d-element destination needs %d", len(data), len(dst), 8*len(dst))
	}
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[8*i:]))
	}
	return nil
}

// Lossless wraps a lossless codec (the paper's Gzip baseline).
type Lossless struct {
	Codec lossless.Codec
}

// Name returns "lossless/<codec>".
func (e Lossless) Name() string { return "lossless/" + e.Codec.Name() }

// Encode compresses exactly.
func (e Lossless) Encode(x []float64) ([]byte, error) { return e.Codec.Compress(x) }

// Decode decompresses exactly.
func (e Lossless) Decode(data []byte) ([]float64, error) { return e.Codec.Decompress(data) }

// DecodeInto decompresses exactly into dst (DecoderInto).
func (e Lossless) DecodeInto(dst []float64, data []byte) error {
	return e.Codec.DecompressInto(dst, data)
}

// SZ wraps the SZ-like error-bounded lossy compressor — the paper's
// choice for 1D solver state.
type SZ struct {
	Params sz.Params
}

// Name returns "sz".
func (SZ) Name() string { return "sz" }

// Encode compresses within the configured error bound.
func (e SZ) Encode(x []float64) ([]byte, error) { return sz.Compress(x, e.Params) }

// Decode reconstructs within the error bound.
func (SZ) Decode(data []byte) ([]float64, error) { return sz.Decompress(data) }

// DecodeInto reconstructs within the error bound into dst
// (DecoderInto).
func (SZ) DecodeInto(dst []float64, data []byte) error { return sz.DecompressInto(dst, data) }

// ZFP wraps the transform-based lossy compressor (absolute bound).
// Vectors larger than one container block are written in the BLK1
// blocked container — compressed block-parallel and restorable
// shard-by-shard through the streaming path — with bitwise identical
// reconstruction to the legacy stream; legacy single-block streams
// from older checkpoints still decode.
type ZFP struct {
	Bound float64
	// BlockElems is the container block size in elements; 0 means
	// codec.DefaultBlockElems (rounded to a transform-block multiple).
	BlockElems int
}

// Name returns "zfp".
func (ZFP) Name() string { return "zfp" }

// Encode compresses within the absolute error bound.
func (e ZFP) Encode(x []float64) ([]byte, error) {
	return codec.Compress(x, codec.Params{Codec: codec.ZFP, Bound: e.Bound, BlockElems: e.BlockElems})
}

// Decode reconstructs within the bound.
func (ZFP) Decode(data []byte) ([]float64, error) {
	if codec.IsBlocked(data) {
		return codec.DecompressAs(data, codec.ZFP)
	}
	return zfp.Decompress(data)
}

// DecodeInto reconstructs within the bound into dst (DecoderInto).
func (ZFP) DecodeInto(dst []float64, data []byte) error {
	if codec.IsBlocked(data) {
		return codec.DecompressIntoAs(dst, data, codec.ZFP)
	}
	return zfp.DecompressInto(dst, data)
}

// EncodeStats implements StatsEncoder: exact bytes, zero error.
func (e Raw) EncodeStats(x []float64) ([]byte, EncodeStats, error) {
	blob, err := e.Encode(x)
	if err != nil {
		return nil, EncodeStats{}, err
	}
	return blob, exactStats(x), nil
}

// EncodeStats implements StatsEncoder: exact bytes, zero error.
func (e Lossless) EncodeStats(x []float64) ([]byte, EncodeStats, error) {
	blob, err := e.Encode(x)
	if err != nil {
		return nil, EncodeStats{}, err
	}
	return blob, exactStats(x), nil
}

// EncodeStats implements StatsEncoder via the sz encode-path
// accumulators: same bytes as Encode, no audit decode.
func (e SZ) EncodeStats(x []float64) ([]byte, EncodeStats, error) {
	blob, st, err := sz.CompressWithStats(x, e.Params)
	if err != nil {
		return nil, EncodeStats{}, err
	}
	return blob, fromSZStats(st, true), nil
}

// EncodeStats implements StatsEncoder via the blocked container's
// audit path (per-block decode into pooled scratch).
func (e ZFP) EncodeStats(x []float64) ([]byte, EncodeStats, error) {
	blob, st, err := codec.CompressWithStats(x, codec.Params{Codec: codec.ZFP, Bound: e.Bound, BlockElems: e.BlockElems})
	if err != nil {
		return nil, EncodeStats{}, err
	}
	return blob, fromSZStats(st, true), nil
}

// BoundInfo describes the distortion contract an encoder was
// configured with: the requested error bound in its native metric
// (absolute, or relative when Relative) and whether the encoder can
// distort at all. Encoders whose bound cannot be stated up front
// (e.g. range-relative, where the absolute bound depends on the data)
// report Bound 0 with Lossy true.
type BoundInfo struct {
	Bound    float64
	Relative bool
	Lossy    bool
}

// Bounded is the optional introspection extension of Encoder: it
// exposes the configured error-bound contract so an external auditor
// can judge a decoded reconstruction against it even when the encoder
// does not implement StatsEncoder.
type Bounded interface {
	BoundInfo() BoundInfo
}

// BoundInfo reports the exact contract (no distortion).
func (Raw) BoundInfo() BoundInfo { return BoundInfo{} }

// BoundInfo reports the exact contract (no distortion).
func (Lossless) BoundInfo() BoundInfo { return BoundInfo{} }

// BoundInfo reports the configured sz bound in its native metric.
func (e SZ) BoundInfo() BoundInfo {
	switch e.Params.Mode {
	case sz.PWRel:
		return BoundInfo{Bound: e.Params.ErrorBound, Relative: true, Lossy: true}
	case sz.RelRange:
		// The absolute bound is data-dependent (bound × value range).
		return BoundInfo{Lossy: true}
	default:
		return BoundInfo{Bound: e.Params.ErrorBound, Lossy: true}
	}
}

// BoundInfo reports the configured absolute ZFP bound.
func (e ZFP) BoundInfo() BoundInfo { return BoundInfo{Bound: e.Bound, Lossy: true} }

// The four built-in encoders all support audited saves.
var (
	_ StatsEncoder = Raw{}
	_ StatsEncoder = Lossless{}
	_ StatsEncoder = SZ{}
	_ StatsEncoder = ZFP{}

	_ Bounded = Raw{}
	_ Bounded = Lossless{}
	_ Bounded = SZ{}
	_ Bounded = ZFP{}
)
