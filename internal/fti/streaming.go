package fti

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"repro/internal/codec"
	"repro/internal/fti/shard"
	"repro/internal/sz"
)

// This file is the streaming half of the restore path: a sharded
// checkpoint is decoded without ever reassembling its payload. The
// snapshot skeleton (framing, scalars, vector headers, SZG2/BLK1
// container headers) is parsed serially through a chunk cursor that touches only
// the bytes it needs — zero-copy within a shard, tiny stitched copies
// across boundaries — and then every compression block decodes straight
// into its destination slice, fanned out over the shard worker pool so
// read, CRC32C verification, and decode overlap across shards. Memory
// stays at the in-flight shard chunks plus the destinations; the
// legacy whole-payload buffer (shard.Read) and the decode-then-copy
// are both gone.

// chunkCursor is a serial forward reader over a shard group's payload,
// used to parse the snapshot skeleton without reassembly.
type chunkCursor struct {
	r     *shard.Reader
	off   int
	limit int // parseable bytes: payload minus the IEEE CRC trailer
}

func (c *chunkCursor) bytes(n int) ([]byte, error) {
	if n < 0 || c.off+n > c.limit {
		return nil, fmt.Errorf("truncated checkpoint at offset %d", c.off)
	}
	b, err := c.r.Bytes(c.off, c.off+n)
	if err != nil {
		return nil, err
	}
	c.off += n
	return b, nil
}

func (c *chunkCursor) uvarint() (uint64, error) {
	end := c.off + binary.MaxVarintLen64
	if end > c.limit {
		end = c.limit
	}
	b, err := c.r.Bytes(c.off, end)
	if err != nil {
		return 0, err
	}
	v, k := binary.Uvarint(b)
	if k <= 0 {
		return 0, fmt.Errorf("truncated varint at %d", c.off)
	}
	c.off += k
	return v, nil
}

func (c *chunkCursor) str() (string, error) {
	l, err := c.uvarint()
	if err != nil {
		return "", err
	}
	if l > uint64(c.limit-c.off) {
		return "", fmt.Errorf("truncated string at %d", c.off)
	}
	b, err := c.bytes(int(l))
	if err != nil {
		return "", err
	}
	return string(b), nil
}

func (c *chunkCursor) float() (float64, error) {
	b, err := c.bytes(8)
	if err != nil {
		return 0, err
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b)), nil
}

// streamBlock is one compression block (SZG2 or BLK1) scheduled for
// decode: its absolute byte span within the payload and its
// destination slice.
type streamBlock struct {
	span sz.Range
	dst  []float64
	vec  string // for error messages
}

// blockFormat describes one blocked-container family — how to bound
// and parse its header and how to decode one block payload — so the
// streaming restore path handles SZ's SZG2 container and the generic
// BLK1 container through a single code path.
type blockFormat struct {
	prefixLen   int
	lenBound    func(prefix []byte) (int, bool)
	parse       func(header []byte, streamLen int) (sz.BlockLayout, error)
	decodeBlock func(dst []float64, block []byte) error
}

var (
	szFormat = &blockFormat{
		prefixLen:   sz.HeaderPrefixLen,
		lenBound:    sz.HeaderLenBound,
		parse:       sz.ParseBlockLayout,
		decodeBlock: sz.DecodeBlockInto,
	}
	codecFormat = &blockFormat{
		prefixLen:   codec.HeaderPrefixLen,
		lenBound:    codec.HeaderLenBound,
		parse:       codec.ParseBlockLayout,
		decodeBlock: codec.DecodeBlockInto,
	}
)

// blockFormatFor returns the blocked-container family enc writes, or
// nil when enc writes monolithic payloads only. For any other encoder
// a blob starting with a container magic is a byte coincidence (e.g. a
// raw float image), not a block container — hence the explicit
// dispatch instead of sniffing.
func blockFormatFor(enc Encoder) *blockFormat {
	switch e := enc.(type) {
	case SZ:
		return szFormat
	case ZFP:
		return codecFormat
	case Lossless:
		if _, ok := e.Codec.(codec.Container); ok {
			return codecFormat
		}
	}
	return nil
}

// restoreStreaming decodes a sharded checkpoint in place. Vector
// payloads in a blocked container (SZ's SZG2, or the generic BLK1 the
// ZFP and blocked-lossless encoders write) are block-decoded per
// shard; other payloads (legacy single-block streams, raw,
// un-containered lossless) are
// stitched and decoded through the encoder's DecodeInto path. The
// whole-payload IEEE CRC trailer is not re-verified: every byte served
// by the Reader already passed its shard's CRC32C.
func (c *Checkpointer) restoreStreaming(man *shard.Manifest, targets map[string][]float64) (*Snapshot, error) {
	if man.Encoder != c.enc.Name() {
		return nil, fmt.Errorf("checkpoint written by encoder %q, decoder is %q", man.Encoder, c.enc.Name())
	}
	r := shard.NewReader(c.storage, man)
	r.Instrument(c.ins.shardMetrics())
	if r.Total() < len(fileMagic)+4 {
		return nil, fmt.Errorf("truncated checkpoint")
	}
	cur := &chunkCursor{r: r, limit: r.Total() - 4}

	b, err := cur.bytes(len(fileMagic))
	if err != nil {
		return nil, err
	}
	if string(b) != fileMagic {
		return nil, fmt.Errorf("bad magic")
	}
	iter, err := cur.uvarint()
	if err != nil {
		return nil, err
	}
	encName, err := cur.str()
	if err != nil {
		return nil, err
	}
	if encName != c.enc.Name() {
		return nil, fmt.Errorf("checkpoint written by encoder %q, decoder is %q", encName, c.enc.Name())
	}

	s := &Snapshot{Iteration: int(iter), Scalars: map[string]float64{}, Vectors: map[string][]float64{}}
	nScalars, err := cur.uvarint()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nScalars; i++ {
		name, err := cur.str()
		if err != nil {
			return nil, err
		}
		v, err := cur.float()
		if err != nil {
			return nil, fmt.Errorf("truncated scalar %q", name)
		}
		s.Scalars[name] = v
	}

	bf := blockFormatFor(c.enc)

	nVecs, err := cur.uvarint()
	if err != nil {
		return nil, err
	}
	offsets := r.Offsets()
	perShard := make([][]streamBlock, len(man.Shards))
	var stitched []streamBlock
	for i := uint64(0); i < nVecs; i++ {
		name, err := cur.str()
		if err != nil {
			return nil, err
		}
		n64, err := cur.uvarint()
		if err != nil {
			return nil, err
		}
		blobLen64, err := cur.uvarint()
		if err != nil {
			return nil, err
		}
		blobStart := cur.off
		if blobLen64 > uint64(cur.limit-blobStart) {
			return nil, fmt.Errorf("truncated vector %q", name)
		}
		blobLen := int(blobLen64)
		var dst []float64
		if t, ok := targets[name]; ok && uint64(len(t)) == n64 {
			dst = t
		}

		lay, blocked, err := peekBlockLayout(r, blobStart, blobLen, bf)
		if err != nil {
			return nil, fmt.Errorf("vector %q: %w", name, err)
		}
		if blocked && uint64(lay.N) == n64 {
			// Streaming path: schedule each whole-in-one-shard block
			// for the per-shard decode pass; blocks that straddle a
			// shard boundary (an unaligned cut) are stitched serially.
			if dst == nil {
				// lay.N is guarded against crafted headers by the
				// format's ParseBlockLayout allocation guards.
				dst = make([]float64, lay.N)
			}
			for bi := range lay.Blocks {
				lo, hi := lay.ElemRange(bi)
				blk := streamBlock{
					span: sz.Range{Start: blobStart + lay.Blocks[bi].Start, End: blobStart + lay.Blocks[bi].End},
					dst:  dst[lo:hi],
					vec:  name,
				}
				si := sort.Search(len(offsets)-1, func(j int) bool { return offsets[j+1] > blk.span.Start })
				if blk.span.End <= offsets[si+1] {
					perShard[si] = append(perShard[si], blk)
				} else {
					stitched = append(stitched, blk)
				}
			}
		} else {
			// Non-blocked blob: stitch its bytes (zero-copy when it
			// lies inside one shard) and decode through the encoder.
			// Prefetch first so a blob spanning several shards reads
			// them through the bounded pool instead of one at a time —
			// the read fan-out the pre-streaming shard.Read path had.
			if err := r.Prefetch(blobStart, blobStart+blobLen, shard.Options{Workers: c.storageWorkers}); err != nil {
				return nil, err
			}
			blob, err := r.Bytes(blobStart, blobStart+blobLen)
			if err != nil {
				return nil, err
			}
			if dst != nil {
				if err := DecodeInto(c.enc, dst, blob); err != nil {
					return nil, fmt.Errorf("decode vector %q: %w", name, err)
				}
			} else {
				v, err := c.enc.Decode(blob)
				if err != nil {
					return nil, fmt.Errorf("decode vector %q: %w", name, err)
				}
				if uint64(len(v)) != n64 {
					return nil, fmt.Errorf("vector %q decoded to %d values, header says %d", name, len(v), n64)
				}
				dst = v
			}
		}
		s.Vectors[name] = dst
		cur.off = blobStart + blobLen
	}
	if cur.off != cur.limit {
		return nil, fmt.Errorf("%d trailing checkpoint bytes", cur.limit-cur.off)
	}

	for _, blk := range stitched {
		raw, err := r.Bytes(blk.span.Start, blk.span.End)
		if err != nil {
			return nil, err
		}
		if err := bf.decodeBlock(blk.dst, raw); err != nil {
			return nil, fmt.Errorf("decode vector %q: %w", blk.vec, err)
		}
	}
	// Each worker reads its shard, verifies its CRC32C, and decodes the
	// blocks it fully contains straight into the destination vectors —
	// read, checksum, and decode overlap across shards. Shards with no
	// scheduled blocks are still fetched and verified, so a corrupt or
	// missing shard anywhere rejects the whole group and recovery falls
	// back mid-stream.
	err = r.Process(shard.Options{Workers: c.storageWorkers}, func(i, start int, chunk []byte) error {
		for _, blk := range perShard[i] {
			if err := bf.decodeBlock(blk.dst, chunk[blk.span.Start-start:blk.span.End-start]); err != nil {
				return fmt.Errorf("decode vector %q: %w", blk.vec, err)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return s, nil
}

// peekBlockLayout inspects a blob's head and, when it is a block
// container of the encoder's format family (SZG2 or BLK1), parses its
// layout from the header bytes alone (no whole-blob read). A blob that
// does not parse as a container — legacy single-block streams, other
// encoders' payloads — reports blocked=false and is decoded whole by
// the caller; parse failures are only errors when the blob
// unambiguously started as a container, since a truncated container
// would fail whole-blob decode anyway. bf == nil means the encoder
// never writes containers.
func peekBlockLayout(r *shard.Reader, blobStart, blobLen int, bf *blockFormat) (sz.BlockLayout, bool, error) {
	if bf == nil || blobLen < bf.prefixLen {
		return sz.BlockLayout{}, false, nil
	}
	head, err := r.Bytes(blobStart, blobStart+bf.prefixLen)
	if err != nil {
		return sz.BlockLayout{}, false, err
	}
	bound, ok := bf.lenBound(head)
	if !ok {
		return sz.BlockLayout{}, false, nil
	}
	if bound > blobLen {
		bound = blobLen
	}
	hdr, err := r.Bytes(blobStart, blobStart+bound)
	if err != nil {
		return sz.BlockLayout{}, false, err
	}
	lay, err := bf.parse(hdr, blobLen)
	if err != nil {
		return sz.BlockLayout{}, false, err
	}
	return lay, true, nil
}
