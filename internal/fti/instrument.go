package fti

import (
	"repro/internal/fti/shard"
	"repro/internal/obs"
)

// instruments is the fti layer's observability bundle: stage latency
// and size histograms, lifecycle counters, the shard layer's bundle,
// and the trace sink. A nil *instruments (the default) makes every
// hook a no-op, so the save/restore paths call them unconditionally
// and an uninstrumented Checkpointer pays one nil check per stage.
type instruments struct {
	captureSec *obs.Histogram
	encodeSec  *obs.Histogram
	writeSec   *obs.Histogram
	restoreSec *obs.Histogram
	rawBytes   *obs.Histogram
	encBytes   *obs.Histogram
	ratio      *obs.Gauge
	ckpts      *obs.Counter
	ckptErrs   *obs.Counter
	asyncAbort *obs.Counter
	restAtts   *obs.Counter
	restRejs   *obs.Counter
	restBytes  *obs.Counter

	tr    *obs.Tracer
	track int // the track save-stage spans land on (solver or pipeline)
	sm    *shard.Metrics
}

func newInstruments(reg *obs.Registry, tr *obs.Tracer, track int) *instruments {
	if reg == nil && tr == nil {
		return nil
	}
	return &instruments{
		captureSec: reg.Histogram(obs.MFTICaptureSeconds, obs.LatencyBuckets()),
		encodeSec:  reg.Histogram(obs.MFTIEncodeSeconds, obs.LatencyBuckets()),
		writeSec:   reg.Histogram(obs.MFTIWriteSeconds, obs.LatencyBuckets()),
		restoreSec: reg.Histogram(obs.MFTIRestoreSeconds, obs.LatencyBuckets()),
		rawBytes:   reg.Histogram(obs.MFTIRawBytes, obs.ByteBuckets()),
		encBytes:   reg.Histogram(obs.MFTIEncodedBytes, obs.ByteBuckets()),
		ratio:      reg.Gauge(obs.MFTICompressionRatio),
		ckpts:      reg.Counter(obs.MFTICheckpointsTotal),
		ckptErrs:   reg.Counter(obs.MFTICheckpointErrorsTotal),
		asyncAbort: reg.Counter(obs.MFTIAsyncAbortedTotal),
		restAtts:   reg.Counter(obs.MFTIRestoreAttemptsTotal),
		restRejs:   reg.Counter(obs.MFTIRestoreRejectsTotal),
		restBytes:  reg.Counter(obs.MFTIRestoreReadBytesTotal),
		tr:         tr,
		track:      track,
		sm:         shard.NewMetrics(reg),
	}
}

// Instrument attaches metric and trace sinks to the Checkpointer's
// save and restore paths. Sync saves emit their encode/write spans on
// the solver track; wrap with AsyncCheckpointer.Instrument instead
// when the pipeline runs in the background. Passing nil for both
// detaches.
func (c *Checkpointer) Instrument(reg *obs.Registry, tr *obs.Tracer) {
	c.ins = newInstruments(reg, tr, obs.TrackSolver)
}

// Instrument attaches metric and trace sinks to the async pipeline:
// the capture stall is traced on the solver track, and the wrapped
// Checkpointer's background encode/write stages land on the
// checkpoint-pipeline track — the overlap with solver iterations is
// exactly what the Chrome trace makes visible. Only safe while no
// save is in flight.
func (a *AsyncCheckpointer) Instrument(reg *obs.Registry, tr *obs.Tracer) {
	a.drain(false)
	a.c.ins = newInstruments(reg, tr, obs.TrackPipeline)
}

func (in *instruments) span(cat, name string) obs.Span {
	if in == nil {
		return obs.Span{}
	}
	return in.tr.Begin(in.track, cat, name)
}

func (in *instruments) spanOn(track int, cat, name string) obs.Span {
	if in == nil {
		return obs.Span{}
	}
	return in.tr.Begin(track, cat, name)
}

// shardOpts decorates a shard write's Options with the metric and
// trace sinks.
func (in *instruments) shardOpts(o shard.Options) shard.Options {
	if in == nil {
		return o
	}
	o.Metrics = in.sm
	o.Tracer = in.tr
	o.Track = in.track
	return o
}

// shardMetrics returns the shard-layer bundle for read-side paths.
func (in *instruments) shardMetrics() *shard.Metrics {
	if in == nil {
		return nil
	}
	return in.sm
}

// observeSave records a committed save's stage timings and sizes.
func (in *instruments) observeSave(info Info) {
	if in == nil {
		return
	}
	in.encodeSec.Observe(info.EncodeSeconds)
	in.writeSec.Observe(info.WriteSeconds)
	in.rawBytes.Observe(float64(info.RawBytes))
	in.encBytes.Observe(float64(info.Bytes))
	if info.CompressionRatio > 0 {
		in.ratio.Set(info.CompressionRatio)
	}
	in.ckpts.Inc()
}

// observeSaveError counts a failed (rolled-back) save.
func (in *instruments) observeSaveError() {
	if in == nil {
		return
	}
	in.ckptErrs.Inc()
}

// observeAsyncAbort counts a background save that aborted instead of
// committing.
func (in *instruments) observeAsyncAbort() {
	if in == nil {
		return
	}
	in.asyncAbort.Inc()
}

// observeCapture records the async capture stall.
func (in *instruments) observeCapture(sec float64) {
	if in == nil {
		return
	}
	in.captureSec.Observe(sec)
}

// observeRestoreAttempt records one checkpoint the restore walk
// tried, accepted or rejected.
func (in *instruments) observeRestoreAttempt(att RestoreAttempt) {
	if in == nil {
		return
	}
	in.restAtts.Inc()
	if att.Err != "" {
		in.restRejs.Inc()
	}
	in.restoreSec.Observe(att.Seconds)
	in.restBytes.Add(uint64(att.Bytes))
}
