package fti

import (
	"testing"
	"time"
)

// scrubFixture builds a sharded Checkpointer with an attached scrubber
// over an in-memory store.
func scrubFixture(t *testing.T, shards int) (*Checkpointer, *Scrubber, *MemStorage, *[]float64) {
	t.Helper()
	mem := NewMemStorage()
	c := New(mem, Raw{})
	if shards > 0 {
		if err := c.SetSharding(shards, 1); err != nil {
			t.Fatal(err)
		}
	}
	sc := NewScrubber(mem)
	c.AttachScrubber(sc)
	x := make([]float64, 64)
	c.Protect("x", &x)
	return c, sc, mem, &x
}

func corrupt(t *testing.T, st Storage, name string) {
	t.Helper()
	data, err := st.Read(name)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := st.Write(name, data); err != nil {
		t.Fatal(err)
	}
}

func TestScrubberRepairsNewestShard(t *testing.T) {
	c, sc, mem, x := scrubFixture(t, 4)
	for i := range *x {
		(*x)[i] = 3.5
	}
	if _, err := c.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	corrupt(t, mem, ckptName(1)+".s00002")
	if err := sc.Sweep(); err != nil {
		t.Fatal(err)
	}
	st := sc.Stats()
	if st.Corruptions != 1 || st.Repairs != 1 || st.Dropped != 0 {
		t.Fatalf("stats %+v: want 1 corruption repaired in place", st)
	}
	// The repaired group restores without restart-time fallback.
	for i := range *x {
		(*x)[i] = 0
	}
	if err := c.Recover(); err != nil {
		t.Fatalf("recover after repair: %v", err)
	}
	if (*x)[0] != 3.5 {
		t.Fatalf("restored %v", (*x)[:4])
	}
}

func TestScrubberRepairsMonolithicPayload(t *testing.T) {
	c, sc, mem, x := scrubFixture(t, 0)
	(*x)[7] = 9
	if _, err := c.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	corrupt(t, mem, ckptName(1))
	if err := sc.Sweep(); err != nil {
		t.Fatal(err)
	}
	if st := sc.Stats(); st.Repairs != 1 {
		t.Fatalf("stats %+v: want the monolithic payload rewritten", st)
	}
	(*x)[7] = 0
	if err := c.Recover(); err != nil {
		t.Fatal(err)
	}
	if (*x)[7] != 9 {
		t.Fatalf("restored %v", (*x)[:8])
	}
}

func TestScrubberDropsOldCorruptGroupUnderIntactSibling(t *testing.T) {
	c, sc, mem, x := scrubFixture(t, 2)
	if _, err := c.Checkpoint(); err != nil { // seq 1: will go corrupt
		t.Fatal(err)
	}
	(*x)[0] = 1
	if _, err := c.Checkpoint(); err != nil { // seq 2: intact, retained
		t.Fatal(err)
	}
	// Seq 1's payload is no longer retained, so it cannot be repaired —
	// but seq 2 is an intact sibling, so the corpse is GC'd.
	corrupt(t, mem, ckptName(1)+".s00000")
	if err := sc.Sweep(); err != nil {
		t.Fatal(err)
	}
	st := sc.Stats()
	if st.Corruptions != 1 || st.Repairs != 0 || st.Dropped != 1 {
		t.Fatalf("stats %+v: want the old group dropped, not repaired", st)
	}
	names, err := mem.List()
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		if n == ckptName(1) {
			t.Fatal("dropped group's manifest still listed")
		}
	}
	if err := c.Recover(); err != nil {
		t.Fatalf("recover after drop: %v", err)
	}
	if (*x)[0] != 1 {
		t.Fatalf("recover landed on the wrong group: %v", (*x)[:2])
	}
}

func TestScrubberKeepsLoneCorruptGroup(t *testing.T) {
	// With no intact sibling, even an unrepairable group is kept — a
	// partially corrupt checkpoint may still beat nothing.
	mem := NewMemStorage()
	c := New(mem, Raw{})
	x := []float64{1, 2}
	c.Protect("x", &x)
	if _, err := c.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	sc := NewScrubber(mem) // never attached: nothing retained, no repair rung
	corrupt(t, mem, ckptName(1))
	if err := sc.Sweep(); err != nil {
		t.Fatal(err)
	}
	st := sc.Stats()
	if st.Corruptions != 1 || st.Dropped != 0 {
		t.Fatalf("stats %+v: the lone group must survive", st)
	}
	if _, err := mem.Read(ckptName(1)); err != nil {
		t.Fatalf("lone corrupt group was deleted: %v", err)
	}
}

func TestScrubberBackgroundLoop(t *testing.T) {
	c, sc, mem, x := scrubFixture(t, 2)
	(*x)[1] = 4
	if _, err := c.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := sc.Start(time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := sc.Start(time.Millisecond); err == nil {
		sc.Stop()
		t.Fatal("double Start must fail")
	}
	corrupt(t, mem, ckptName(1)+".s00001")
	deadline := time.After(5 * time.Second)
	for sc.Stats().Repairs == 0 {
		select {
		case <-deadline:
			t.Fatal("background loop never repaired the corruption")
		case <-time.After(2 * time.Millisecond):
		}
	}
	sc.Stop()
	sc.Stop() // idempotent
	if st := sc.Stats(); st.Sweeps == 0 || st.Repairs != 1 {
		t.Fatalf("stats %+v", st)
	}
	for i := range *x {
		(*x)[i] = 0
	}
	if err := c.Recover(); err != nil {
		t.Fatal(err)
	}
	if (*x)[1] != 4 {
		t.Fatalf("restored %v", (*x)[:2])
	}
}
