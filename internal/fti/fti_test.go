package fti

import (
	"math"
	"path/filepath"
	"testing"

	"repro/internal/lossless"
	"repro/internal/sparse"
	"repro/internal/sz"
	"repro/internal/vec"
)

func encoders() []Encoder {
	return []Encoder{
		Raw{},
		Lossless{Codec: lossless.Flate{}},
		Lossless{Codec: lossless.FPC{}},
		SZ{Params: sz.Params{Mode: sz.Abs, ErrorBound: 1e-6}},
		ZFP{Bound: 1e-6},
	}
}

func TestEncoderRoundTrips(t *testing.T) {
	x := sparse.SmoothField(2000, 1)
	for _, e := range encoders() {
		blob, err := e.Encode(x)
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		got, err := e.Decode(blob)
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		if len(got) != len(x) {
			t.Fatalf("%s: got %d values", e.Name(), len(got))
		}
		if d := vec.MaxAbsDiff(x, got); d > 1e-6 {
			t.Fatalf("%s: error %g beyond encoder bound", e.Name(), d)
		}
	}
}

func TestRawIsExact(t *testing.T) {
	x := []float64{1.5, -2.25, math.Pi}
	blob, err := Raw{}.Encode(x)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Raw{}.Decode(blob)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if got[i] != x[i] {
			t.Fatalf("raw round trip changed value %d", i)
		}
	}
	if _, err := (Raw{}).Decode(blob[:5]); err == nil {
		t.Fatal("expected error for misaligned raw payload")
	}
}

func storages(t *testing.T) map[string]Storage {
	t.Helper()
	ds, err := NewDirStorage(filepath.Join(t.TempDir(), "ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	local, err := NewDirStorage(filepath.Join(t.TempDir(), "local"))
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Storage{
		"dir":    ds,
		"mem":    NewMemStorage(),
		"tiered": &Tiered{Local: local, Global: NewMemStorage()},
	}
}

func TestStorageBasics(t *testing.T) {
	for name, s := range storages(t) {
		if err := s.Write("a", []byte{1, 2, 3}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := s.Read("a")
		if err != nil || len(got) != 3 || got[2] != 3 {
			t.Fatalf("%s: read %v %v", name, got, err)
		}
		if err := s.Write("a", []byte{9}); err != nil {
			t.Fatalf("%s: overwrite: %v", name, err)
		}
		got, _ = s.Read("a")
		if len(got) != 1 || got[0] != 9 {
			t.Fatalf("%s: overwrite not visible: %v", name, got)
		}
		names, err := s.List()
		if err != nil || len(names) != 1 || names[0] != "a" {
			t.Fatalf("%s: list %v %v", name, names, err)
		}
		if err := s.Delete("a"); err != nil {
			t.Fatalf("%s: delete: %v", name, err)
		}
		if _, err := s.Read("a"); err == nil {
			t.Fatalf("%s: read after delete should fail", name)
		}
		if err := s.Delete("a"); err != nil {
			t.Fatalf("%s: double delete should be fine: %v", name, err)
		}
	}
}

func TestDirStorageRejectsPathEscape(t *testing.T) {
	ds, err := NewDirStorage(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"", "../x", "a/b", "..", `a\b`} {
		if err := ds.Write(bad, []byte{1}); err == nil {
			t.Fatalf("name %q should be rejected", bad)
		}
	}
}

func TestSnapshotSaveRestore(t *testing.T) {
	for name, st := range storages(t) {
		c := New(st, Raw{})
		x := sparse.SmoothField(500, 2)
		s := &Snapshot{
			Iteration: 42,
			Scalars:   map[string]float64{"rho": 3.5},
			Vectors:   map[string][]float64{"x": x},
		}
		info, err := c.Save(s)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if info.RawBytes != 8*500+8 {
			t.Fatalf("%s: RawBytes = %d", name, info.RawBytes)
		}
		got, err := c.Restore()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got.Iteration != 42 || got.Scalars["rho"] != 3.5 {
			t.Fatalf("%s: restored %+v", name, got)
		}
		if d := vec.MaxAbsDiff(x, got.Vectors["x"]); d != 0 {
			t.Fatalf("%s: vector corrupted by %g", name, d)
		}
	}
}

func TestRestoreNewestCheckpoint(t *testing.T) {
	c := New(NewMemStorage(), Raw{})
	for i := 1; i <= 3; i++ {
		_, err := c.Save(&Snapshot{Iteration: i * 10})
		if err != nil {
			t.Fatal(err)
		}
	}
	got, err := c.Restore()
	if err != nil {
		t.Fatal(err)
	}
	if got.Iteration != 30 {
		t.Fatalf("restored iteration %d, want 30 (newest)", got.Iteration)
	}
}

// TestNewResumesSequence: a Checkpointer created over pre-existing
// storage (the restart-after-failure path) must extend the checkpoint
// series, not silently overwrite ckpt-000000000001.
func TestNewResumesSequence(t *testing.T) {
	st := NewMemStorage()
	c1 := New(st, Raw{})
	for i := 1; i <= 3; i++ {
		if _, err := c1.Save(&Snapshot{Iteration: i * 10}); err != nil {
			t.Fatal(err)
		}
	}
	// keep=2 leaves ckpt-2 and ckpt-3.
	before, _ := st.Read(ckptName(3))
	saved := append([]byte(nil), before...)

	c2 := New(st, Raw{})
	if c2.LatestSeq() != 3 {
		t.Fatalf("restarted Checkpointer starts at seq %d, want 3", c2.LatestSeq())
	}
	info, err := c2.Save(&Snapshot{Iteration: 40})
	if err != nil {
		t.Fatal(err)
	}
	if info.Seq != 4 {
		t.Fatalf("post-restart save got seq %d, want 4", info.Seq)
	}
	after, err := st.Read(ckptName(3))
	if err != nil {
		t.Fatalf("pre-existing checkpoint vanished: %v", err)
	}
	if string(saved) != string(after) {
		t.Fatal("post-restart save overwrote a pre-existing checkpoint")
	}
	got, err := c2.Restore()
	if err != nil {
		t.Fatal(err)
	}
	if got.Iteration != 40 {
		t.Fatalf("restored iteration %d, want 40", got.Iteration)
	}
}

// TestRestoreResyncsSequence: if storage advanced behind this
// Checkpointer's back (another writer, a recovered run), Restore must
// re-sync the counter so the next save does not overwrite survivors.
func TestRestoreResyncsSequence(t *testing.T) {
	st := NewMemStorage()
	c1 := New(st, Raw{})
	if _, err := c1.Save(&Snapshot{Iteration: 10}); err != nil {
		t.Fatal(err)
	}
	c2 := New(st, Raw{}) // sees seq 1
	for i := 2; i <= 3; i++ {
		if _, err := c1.Save(&Snapshot{Iteration: i * 10}); err != nil {
			t.Fatal(err)
		}
	}
	got, err := c2.Restore()
	if err != nil {
		t.Fatal(err)
	}
	if got.Iteration != 30 {
		t.Fatalf("restored iteration %d, want 30", got.Iteration)
	}
	if c2.LatestSeq() != 3 {
		t.Fatalf("seq after Restore = %d, want 3", c2.LatestSeq())
	}
	if info, err := c2.Save(&Snapshot{Iteration: 40}); err != nil || info.Seq != 4 {
		t.Fatalf("save after resync: %+v %v, want seq 4", info, err)
	}
}

func TestSetKeepValidatesAndApplies(t *testing.T) {
	st := NewMemStorage()
	c := New(st, Raw{})
	if err := c.SetKeep(0); err == nil {
		t.Fatal("SetKeep(0) must be rejected: recovery needs a target")
	}
	if err := c.SetKeep(-2); err == nil {
		t.Fatal("SetKeep(-2) must be rejected")
	}
	if err := c.SetKeep(3); err != nil {
		t.Fatal(err)
	}
	if c.Keep() != 3 {
		t.Fatalf("Keep() = %d", c.Keep())
	}
	for i := 0; i < 6; i++ {
		if _, err := c.Save(&Snapshot{Iteration: i}); err != nil {
			t.Fatal(err)
		}
	}
	names, _ := st.List()
	if len(names) != 3 {
		t.Fatalf("retained %d checkpoints with keep=3: %v", len(names), names)
	}
}

func TestRetentionKeepsTwo(t *testing.T) {
	st := NewMemStorage()
	c := New(st, Raw{})
	for i := 0; i < 5; i++ {
		if _, err := c.Save(&Snapshot{Iteration: i}); err != nil {
			t.Fatal(err)
		}
	}
	names, _ := st.List()
	if len(names) != 2 {
		t.Fatalf("retained %d checkpoints, want 2: %v", len(names), names)
	}
}

func TestCorruptCheckpointFallsBack(t *testing.T) {
	st := NewMemStorage()
	c := New(st, Raw{})
	if _, err := c.Save(&Snapshot{Iteration: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Save(&Snapshot{Iteration: 2}); err != nil {
		t.Fatal(err)
	}
	// Corrupt the newest checkpoint.
	names, _ := st.List()
	newest := names[len(names)-1]
	data, _ := st.Read(newest)
	data[len(data)/2] ^= 0xff
	if err := st.Write(newest, data); err != nil {
		t.Fatal(err)
	}
	got, err := c.Restore()
	if err != nil {
		t.Fatal(err)
	}
	if got.Iteration != 1 {
		t.Fatalf("fallback restored iteration %d, want 1", got.Iteration)
	}
}

func TestRestoreNoCheckpoints(t *testing.T) {
	c := New(NewMemStorage(), Raw{})
	if _, err := c.Restore(); err == nil {
		t.Fatal("expected error with no checkpoints")
	}
}

func TestEncoderMismatchRejected(t *testing.T) {
	st := NewMemStorage()
	c := New(st, Raw{})
	if _, err := c.Save(&Snapshot{Iteration: 5}); err != nil {
		t.Fatal(err)
	}
	c2 := New(st, SZ{Params: sz.Params{Mode: sz.Abs, ErrorBound: 1e-4}})
	c2.seq = c.seq
	if _, err := c2.Restore(); err == nil {
		t.Fatal("expected encoder-mismatch error")
	}
}

func TestProtectCheckpointRecover(t *testing.T) {
	// The paper's workflow (§4.2): register variables, snapshot
	// periodically, recover after a failure.
	st := NewMemStorage()
	c := New(st, Raw{})
	x := sparse.SmoothField(200, 4)
	it := 7
	rho := 2.25
	c.Protect("x", &x)
	c.ProtectInt("iteration", &it)
	c.ProtectFloat("rho", &rho)

	info, err := c.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if info.Seq != 1 {
		t.Fatalf("Seq = %d", info.Seq)
	}

	// Simulate the failure: trash the live state.
	saved := append([]float64(nil), x...)
	for i := range x {
		x[i] = -1
	}
	it = 0
	rho = 0

	if err := c.Recover(); err != nil {
		t.Fatal(err)
	}
	if it != 7 || rho != 2.25 {
		t.Fatalf("recovered it=%d rho=%v", it, rho)
	}
	if d := vec.MaxAbsDiff(saved, x); d != 0 {
		t.Fatalf("recovered x differs by %g", d)
	}
}

func TestLossyCheckpointRespectsBound(t *testing.T) {
	st := NewMemStorage()
	const eb = 1e-4
	c := New(st, SZ{Params: sz.Params{Mode: sz.PWRel, ErrorBound: eb}})
	x := sparse.SmoothField(5000, 6)
	for i := range x {
		x[i] += 3 // keep away from zero
	}
	orig := append([]float64(nil), x...)
	c.Protect("x", &x)
	info, err := c.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if info.CompressionRatio < 5 {
		t.Fatalf("lossy checkpoint ratio %.1f too low", info.CompressionRatio)
	}
	for i := range x {
		x[i] = 0
	}
	if err := c.Recover(); err != nil {
		t.Fatal(err)
	}
	if d := vec.MaxRelDiff(orig, x); d > eb*(1+1e-10) {
		t.Fatalf("recovered x violates pointwise bound: %g > %g", d, eb)
	}
}

func TestStatics(t *testing.T) {
	st := NewMemStorage()
	c := New(st, Raw{})
	a := sparse.Poisson2D(4)
	if err := c.WriteStatic("A", a.Serialize()); err != nil {
		t.Fatal(err)
	}
	blob, err := c.ReadStatic("A")
	if err != nil {
		t.Fatal(err)
	}
	got, err := sparse.Deserialize(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows != a.Rows || got.NNZ() != a.NNZ() {
		t.Fatal("static matrix corrupted")
	}
	if _, err := c.ReadStatic("missing"); err == nil {
		t.Fatal("expected error for missing static")
	}
}

func TestTieredFallsBackToGlobal(t *testing.T) {
	local := NewMemStorage()
	global := NewMemStorage()
	tiered := &Tiered{Local: local, Global: global}
	if err := tiered.Write("a", []byte{5}); err != nil {
		t.Fatal(err)
	}
	// Simulate node-local loss (the failure mode FTI levels exist for).
	if err := local.Delete("a"); err != nil {
		t.Fatal(err)
	}
	got, err := tiered.Read("a")
	if err != nil || got[0] != 5 {
		t.Fatalf("tiered read after local loss: %v %v", got, err)
	}
}

func TestSetEncoderAdaptiveBound(t *testing.T) {
	// Theorem-3 style: tighten the bound between checkpoints.
	st := NewMemStorage()
	c := New(st, SZ{Params: sz.Params{Mode: sz.Abs, ErrorBound: 1e-2}})
	x := sparse.SmoothField(3000, 8)
	c.Protect("x", &x)
	infoLoose, err := c.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	c.SetEncoder(SZ{Params: sz.Params{Mode: sz.Abs, ErrorBound: 1e-10}})
	infoTight, err := c.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if infoTight.Bytes <= infoLoose.Bytes {
		t.Fatalf("tighter bound should cost more: %d vs %d", infoTight.Bytes, infoLoose.Bytes)
	}
	if err := c.Recover(); err != nil {
		t.Fatal(err)
	}
}

// TestEncodeBufferReuseKeepsCheckpointsIndependent: the Checkpointer
// reuses its encode buffer across checkpoints; earlier checkpoints in
// storage must not be clobbered by later ones, and recovery from an
// older retained checkpoint must still decode.
func TestEncodeBufferReuseKeepsCheckpoints(t *testing.T) {
	store := NewMemStorage()
	x := sparse.SmoothField(5000, 9)
	it := 0
	c := New(store, Raw{})
	c.Protect("x", &x)
	c.ProtectInt("iteration", &it)

	// First checkpoint.
	it = 1
	if _, err := c.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	firstBytes, err := store.Read(ckptName(1))
	if err != nil {
		t.Fatal(err)
	}
	saved := append([]byte(nil), firstBytes...)

	// Second checkpoint with different content reuses the buffer.
	for i := range x {
		x[i] = -x[i]
	}
	it = 2
	if _, err := c.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	afterBytes, err := store.Read(ckptName(1))
	if err != nil {
		t.Fatal(err)
	}
	if string(saved) != string(afterBytes) {
		t.Fatal("buffer reuse corrupted an already-stored checkpoint")
	}

	// Drop the newest; recovery must reproduce checkpoint 1 exactly.
	if err := c.DropLatest(); err != nil {
		t.Fatal(err)
	}
	it = 0
	for i := range x {
		x[i] = 0
	}
	if err := c.Recover(); err != nil {
		t.Fatal(err)
	}
	if it != 1 {
		t.Fatalf("recovered iteration %d, want 1", it)
	}
	want := sparse.SmoothField(5000, 9)
	if d := vec.MaxAbsDiff(want, x); d != 0 {
		t.Fatalf("recovered vector differs from checkpoint 1 by %g", d)
	}
}
