package shard

import (
	"testing"
)

// FuzzParseManifest hammers the manifest parser with mutated inputs:
// it must never panic, never accept a byte stream that fails its own
// re-serialization check, and — the property the crafted-header tests
// pin down deterministically — never size an allocation from a length
// field that the bytes present cannot justify (the shard slice is the
// only parser allocation, bounded by len(data)/7 entries).
func FuzzParseManifest(f *testing.F) {
	valid := AppendManifest(nil, &Manifest{
		Encoder: "sz",
		Total:   128,
		Shards: []Info{
			{Name: ShardName("ckpt-000000000001", 0), Size: 64, CRC: 7},
			{Name: ShardName("ckpt-000000000001", 1), Size: 64, CRC: 8},
		},
	})
	f.Add(valid)
	f.Add([]byte(manifestMagic))
	f.Add(sealManifest([]byte("FTSM\x01")))
	f.Add(craftFuzzManifest("sz", 1<<40, 1<<40))
	f.Add(craftFuzzManifest("", 0, 0))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ParseManifest(data)
		if err != nil {
			return
		}
		// Anything accepted must be internally consistent and must
		// round-trip to an equivalent manifest.
		if len(m.Shards) == 0 || len(m.Shards) > MaxShards {
			t.Fatalf("accepted manifest with %d shards", len(m.Shards))
		}
		sum := 0
		for _, s := range m.Shards {
			if s.Size < 0 || s.Size > m.Total {
				t.Fatalf("accepted shard size %d of total %d", s.Size, m.Total)
			}
			if _, _, ok := ShardBase(s.Name); !ok {
				t.Fatalf("accepted malformed shard name %q", s.Name)
			}
			sum += s.Size
		}
		if sum != m.Total {
			t.Fatalf("accepted sizes summing to %d with total %d", sum, m.Total)
		}
		// Semantic round trip (byte equality is too strict: Uvarint
		// accepts non-canonical varint encodings that AppendManifest
		// would re-emit canonically).
		m2, err := ParseManifest(AppendManifest(nil, m))
		if err != nil {
			t.Fatalf("accepted manifest fails to re-parse: %v", err)
		}
		if m2.Encoder != m.Encoder || m2.Total != m.Total || len(m2.Shards) != len(m.Shards) {
			t.Fatalf("manifest round trip mismatch")
		}
	})
}

// craftFuzzManifest frames a manifest header claiming the given total
// and shard count with a valid CRC trailer and no entries.
func craftFuzzManifest(encoder string, total, nShards uint64) []byte {
	out := []byte(manifestMagic)
	out = append(out, manifestVersion)
	out = appendUvarint(out, uint64(len(encoder)))
	out = append(out, encoder...)
	out = appendUvarint(out, total)
	out = appendUvarint(out, nShards)
	return sealManifest(out)
}
