// Package shard implements sharded checkpoint storage: one encoded
// checkpoint payload is split into N independently written shard
// objects plus a small manifest that names them. The decomposition is
// the same one FTI-style multi-level checkpointing uses to engage
// parallel-file-system stripes — each shard streams through its own
// stripe (or its own worker goroutine on a local store), so the
// storage stage of the checkpoint pipeline scales with workers
// instead of being one serial monolithic write.
//
// Commit protocol (atomic by construction):
//
//  1. every shard object is written first, fanned out over a bounded
//     worker pool;
//  2. the manifest — shard names, sizes, per-shard CRC32C checksums,
//     the encoder mode, and the total payload length — is written
//     last, under the checkpoint's own name.
//
// A checkpoint group therefore exists exactly when its manifest does.
// Readers that find shard objects without a manifest (a write aborted
// by a crash) ignore them as orphans; readers that find a manifest
// whose shards are missing or fail their checksum reject the whole
// group, so recovery falls back to the previous committed checkpoint —
// the paper's failure-during-checkpoint path. Deletion inverts the
// order: manifest first (the group instantly stops being a recovery
// target), then the shards, so a crash mid-delete leaves only
// ignorable orphans, never a manifest pointing at deleted data.
package shard

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/parallel"
)

// Storage is the minimal object-store contract the shard layer needs.
// It is structurally identical to fti.Storage (which satisfies it), and
// is redeclared here so the fti package can build on this one without
// an import cycle. Write is called concurrently from the worker pool —
// always with distinct names — so implementations must tolerate
// concurrent writes to distinct objects.
type Storage interface {
	Write(name string, data []byte) error
	Read(name string) ([]byte, error)
	Delete(name string) error
	List() ([]string, error)
}

// BatchWriter is an optional Storage extension the shard writer uses
// for the shard objects of one group: WriteBatched must make the
// object's *data* durable but may defer making its namespace entry
// durable until the next full Write to the same store. The manifest is
// always committed with a full Write after the batch, so on a
// directory store one directory fsync commits the entire group —
// N shards cost N data flushes but a single namespace flush, and the
// commit protocol stays intact (no manifest entry can become durable
// ahead of it in the same directory sync). Stores without the
// extension just get a full Write per shard.
type BatchWriter interface {
	WriteBatched(name string, data []byte) error
}

const (
	manifestMagic   = "FTSM"
	manifestVersion = 1

	// MaxShards bounds the shard count a writer accepts and a manifest
	// parser believes. Far above any sane fan-out; its job is to make
	// crafted manifests fail fast, mirroring the SZG2 header hardening.
	MaxShards = 1 << 16

	// maxNameLen bounds each shard name in a manifest; real names are
	// "ckpt-%012d.s%05d" (25 bytes).
	maxNameLen = 255
)

// castagnoli is the CRC32C polynomial table — the checksum storage
// systems (iSCSI, ext4, Lustre) use, distinct from the IEEE CRC32 the
// snapshot trailer uses, so a manifest can never be mistaken for a
// payload integrity check.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checksum returns the CRC32C of data, the per-shard checksum recorded
// in the manifest.
func Checksum(data []byte) uint32 { return crc32.Checksum(data, castagnoli) }

// Info describes one shard object of a committed group.
type Info struct {
	Name string // storage object name
	Size int    // exact byte length
	CRC  uint32 // CRC32C of the object's bytes
}

// Manifest describes a committed sharded checkpoint: the encoder that
// produced the payload, its total reassembled length, and the shard
// objects in payload order.
type Manifest struct {
	Encoder string
	Total   int
	Shards  []Info
}

// Options tune a sharded write or read.
type Options struct {
	// Shards is the number of shard objects per checkpoint. Values
	// below 2 are the caller's monolithic path; Write clamps to the
	// payload length so no shard is empty.
	Shards int
	// Workers bounds the worker pool that writes/reads shard objects
	// concurrently; 0 means parallel.Workers(). The pool never exceeds
	// the shard count.
	Workers int
	// Metrics, when non-nil, receives per-shard-object write/read
	// timings, bytes, and integrity failures (see NewMetrics).
	Metrics *Metrics
	// Tracer/Track, when Tracer is non-nil, receive the shard-write
	// fan-out and manifest-commit lifecycle spans.
	Tracer *obs.Tracer
	Track  int
}

// ShardName returns the storage object name of shard i of group base.
func ShardName(base string, i int) string {
	return fmt.Sprintf("%s.s%05d", base, i)
}

// ShardBase reports whether name is a shard object name and, if so,
// the base (manifest) name of its group and the shard's index.
func ShardBase(name string) (base string, idx int, ok bool) {
	i := strings.LastIndex(name, ".s")
	if i <= 0 {
		return "", 0, false
	}
	digits := name[i+2:]
	if len(digits) != 5 {
		return "", 0, false
	}
	for _, c := range digits {
		if c < '0' || c > '9' {
			return "", 0, false
		}
		idx = idx*10 + int(c-'0')
	}
	return name[:i], idx, true
}

// Split partitions [0, totalLen) into n contiguous byte ranges. Each
// cut starts at its even-split position and snaps to the nearest
// aligned boundary (a sorted list of offsets, e.g. SZG2 block starts
// within the payload) when one lies within half an even span — shards
// then hold whole compression blocks, at the cost of mild imbalance.
// n is clamped so every range is non-empty.
func Split(totalLen, n int, aligned []int) []Range {
	if n < 1 {
		n = 1
	}
	if n > totalLen {
		n = totalLen
	}
	if totalLen == 0 || n <= 1 {
		return []Range{{0, totalLen}}
	}
	span := totalLen / n
	ranges := make([]Range, 0, n)
	start := 0
	ai := 0
	for k := 1; k < n; k++ {
		ideal := k * totalLen / n
		cut := ideal
		// Advance to the aligned boundary closest to ideal.
		for ai < len(aligned) && aligned[ai] < ideal {
			ai++
		}
		best, found := 0, false
		if ai < len(aligned) && aligned[ai] < totalLen {
			best, found = aligned[ai], true
		}
		if ai > 0 && aligned[ai-1] > start {
			if !found || ideal-aligned[ai-1] < best-ideal {
				best, found = aligned[ai-1], true
			}
		}
		if found && abs(best-ideal) <= span/2 && best > start && best < totalLen {
			cut = best
		}
		if cut <= start {
			continue // degenerate: skip the cut rather than emit an empty shard
		}
		ranges = append(ranges, Range{start, cut})
		start = cut
	}
	return append(ranges, Range{start, totalLen})
}

// Range is a half-open [Start, End) byte span of the payload.
type Range struct {
	Start, End int
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func (o Options) workers(shards int) int {
	w := o.Workers
	if w <= 0 {
		w = parallel.Workers()
	}
	if w > shards {
		w = shards
	}
	return w
}

// Write stores payload under base as a sharded group: the shard
// objects first, fanned out over the bounded worker pool, then the
// manifest last (the commit point). aligned lists preferred cut
// offsets within payload (sorted ascending; nil for even splits). On
// any shard failure the already-written shards are best-effort deleted
// and no manifest is written, so the group never becomes visible. The
// shard count actually used (≥ 1) is returned.
func Write(st Storage, base, encoder string, payload []byte, aligned []int, opt Options) (int, error) {
	n := opt.Shards
	if n > MaxShards {
		return 0, fmt.Errorf("shard: %d shards exceed the %d maximum", n, MaxShards)
	}
	ranges := Split(len(payload), n, aligned)
	n = len(ranges)
	m := &Manifest{Encoder: encoder, Total: len(payload), Shards: make([]Info, n)}
	writeShard := st.Write
	if bw, ok := st.(BatchWriter); ok {
		writeShard = bw.WriteBatched
	}
	errs := make([]error, n)
	fanout := opt.Tracer.Begin(opt.Track, obs.CatCheckpoint, obs.SpanShardWrite)
	parallel.ForBounded(n, 1, opt.workers(n), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			chunk := payload[ranges[i].Start:ranges[i].End]
			name := ShardName(base, i)
			m.Shards[i] = Info{Name: name, Size: len(chunk), CRC: Checksum(chunk)}
			start := opt.Metrics.now()
			errs[i] = writeShard(name, chunk)
			if errs[i] == nil {
				opt.Metrics.observeWrite(time.Since(start).Seconds(), len(chunk))
			}
		}
	})
	fanout.EndArgs(map[string]float64{"shards": float64(n), "bytes": float64(len(payload))})
	for i, err := range errs {
		if err != nil {
			// Roll back: the group must not be half-visible. Failures
			// here are tolerable — shards without a manifest are
			// orphans that every reader ignores and gc sweeps.
			for j := range m.Shards {
				if errs[j] == nil {
					_ = st.Delete(m.Shards[j].Name)
				}
			}
			return 0, fmt.Errorf("shard: write %s: %w", ShardName(base, i), err)
		}
	}
	commit := opt.Tracer.Begin(opt.Track, obs.CatCheckpoint, obs.SpanShardCommit)
	defer commit.End()
	if err := st.Write(base, AppendManifest(nil, m)); err != nil {
		// The write may have failed *after* making the manifest visible
		// (e.g. a directory-store sync failure post-rename); delete the
		// base first so no manifest can outlive its shards and count as
		// an unrecoverable-but-present checkpoint.
		_ = st.Delete(base)
		for i := range m.Shards {
			_ = st.Delete(m.Shards[i].Name)
		}
		return 0, fmt.Errorf("shard: commit manifest %s: %w", base, err)
	}
	return n, nil
}

// maxRereads is how many fresh reads a verification failure earns
// before the shard is rejected: a transient read-side fault (a torn
// page from a flaky NFS client, a mid-flight buffer corruption)
// produces wrong bytes exactly once, while genuine at-rest corruption
// reproduces on every re-read — so two extra attempts cleanly split
// the cases without retrying persistent damage forever.
const maxRereads = 2

// fetchVerify reads shard i of m and verifies it against its manifest
// size and CRC32C — the single read-side integrity gate shared by the
// reassembling Read and the streaming Reader, so no payload byte is
// ever served unverified. A size or checksum mismatch earns up to
// maxRereads fresh reads (hedged degraded reads) before the shard —
// and with it the group — is abandoned: recovery should only fall a
// tier when the bytes at rest are truly bad, not when one read went
// wrong in flight.
func fetchVerify(st Storage, m *Manifest, i int, met *Metrics) ([]byte, error) {
	s := m.Shards[i]
	start := met.now()
	data, err := st.Read(s.Name)
	if err != nil {
		met.observeReadFailure()
		return nil, fmt.Errorf("shard: missing shard %s: %w", s.Name, err)
	}
	verify := func(d []byte) error {
		if len(d) != s.Size {
			return fmt.Errorf("shard: shard %s is %d bytes, manifest says %d", s.Name, len(d), s.Size)
		}
		if Checksum(d) != s.CRC {
			met.observeCRCFailure()
			return fmt.Errorf("shard: shard %s fails its CRC32C (corrupt)", s.Name)
		}
		return nil
	}
	verr := verify(data)
	for r := 0; verr != nil && r < maxRereads; r++ {
		met.observeReread()
		again, err := st.Read(s.Name)
		if err != nil {
			break // the object degraded from corrupt to unreadable; give up
		}
		if e := verify(again); e == nil {
			met.observeRereadRepair()
			data, verr = again, nil
			break
		}
	}
	if verr != nil {
		met.observeReadFailure()
		return nil, verr
	}
	met.observeRead(time.Since(start).Seconds(), len(data))
	return data, nil
}

// Read loads every shard of m over the bounded worker pool, verifies
// each against its manifest size and CRC32C, and returns the
// reassembled payload. A missing, truncated, or corrupted shard fails
// the whole group with an error naming the offending shard.
//
// Read is the legacy whole-payload path (and the reference for
// equivalence tests); the streaming Reader serves byte ranges and
// per-shard decode without the reassembly buffer.
func Read(st Storage, m *Manifest, opt Options) ([]byte, error) {
	n := len(m.Shards)
	chunks := make([][]byte, n)
	errs := make([]error, n)
	parallel.ForBounded(n, 1, opt.workers(n), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			chunks[i], errs[i] = fetchVerify(st, m, i, opt.Metrics)
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	// Assemble only after every shard verified: a crafted manifest's
	// Total can't size an allocation unless real, checksummed shards
	// add up to it.
	payload := make([]byte, 0, m.Total)
	for _, c := range chunks {
		payload = append(payload, c...)
	}
	if len(payload) != m.Total {
		return nil, fmt.Errorf("shard: reassembled %d bytes, manifest says %d", len(payload), m.Total)
	}
	return payload, nil
}

// Reader provides streaming access to a committed shard group without
// reassembling its payload. Byte ranges are served straight from the
// verified shard chunks — zero-copy when a range lies inside one shard,
// a small stitched copy otherwise — and Process fans the chunks out
// over a bounded worker pool so read, checksum verification, and the
// caller's decode overlap across shards. Every served byte comes from
// a chunk that already passed its manifest size and CRC32C checks, and
// any missing, truncated, or corrupt shard fails the group, so callers
// fall back to an older checkpoint exactly as with Read.
//
// A Reader serves one restore attempt on one goroutine: Bytes is the
// serial skeleton-parsing phase, Process the terminal parallel decode
// phase (it releases each chunk after its callback returns, so Bytes
// must not be used afterwards).
type Reader struct {
	st      Storage
	m       *Manifest
	offs    []int // offs[i] = payload offset of shard i; offs[n] = Total
	chunks  [][]byte
	fetched []bool
	met     *Metrics
}

// Instrument attaches a metrics bundle to the reader's shard fetches;
// nil detaches. Call before the first read.
func (r *Reader) Instrument(met *Metrics) { r.met = met }

// NewReader wraps a parsed manifest for streaming reads.
func NewReader(st Storage, m *Manifest) *Reader {
	offs := make([]int, len(m.Shards)+1)
	for i, s := range m.Shards {
		offs[i+1] = offs[i] + s.Size
	}
	return &Reader{
		st: st, m: m, offs: offs,
		chunks:  make([][]byte, len(m.Shards)),
		fetched: make([]bool, len(m.Shards)),
	}
}

// Total returns the reassembled payload length the group represents.
func (r *Reader) Total() int { return r.offs[len(r.offs)-1] }

// Offsets returns the payload offset of every shard boundary:
// Offsets()[i] is where shard i begins and Offsets()[len(shards)] is
// Total(). Callers must not modify the returned slice.
func (r *Reader) Offsets() []int { return r.offs }

// shardAt returns the index of the shard containing payload offset
// off (off < Total), skipping any zero-size shards.
func (r *Reader) shardAt(off int) int {
	return sort.Search(len(r.offs)-1, func(i int) bool { return r.offs[i+1] > off })
}

// chunk returns shard i's verified content, reading it on first touch.
func (r *Reader) chunk(i int) ([]byte, error) {
	if !r.fetched[i] {
		data, err := fetchVerify(r.st, r.m, i, r.met)
		if err != nil {
			return nil, err
		}
		r.chunks[i], r.fetched[i] = data, true
	}
	return r.chunks[i], nil
}

// Bytes returns payload bytes [start, end): a zero-copy sub-slice of
// one shard's chunk when the span lies inside it, otherwise a fresh
// stitched copy. Shards are fetched and verified on first touch.
// Serial use only; Process is the concurrent path.
func (r *Reader) Bytes(start, end int) ([]byte, error) {
	if start < 0 || end < start || end > r.Total() {
		return nil, fmt.Errorf("shard: byte range [%d,%d) outside payload of %d bytes", start, end, r.Total())
	}
	if start == end {
		return []byte{}, nil
	}
	i := r.shardAt(start)
	if end <= r.offs[i+1] {
		c, err := r.chunk(i)
		if err != nil {
			return nil, err
		}
		return c[start-r.offs[i] : end-r.offs[i]], nil
	}
	out := make([]byte, 0, end-start)
	for start < end {
		c, err := r.chunk(i)
		if err != nil {
			return nil, err
		}
		hi := end
		if hi > r.offs[i+1] {
			hi = r.offs[i+1]
		}
		out = append(out, c[start-r.offs[i]:hi-r.offs[i]]...)
		start = hi
		i++
	}
	return out, nil
}

// Prefetch fetches and verifies every not-yet-cached shard overlapping
// payload range [start, end) over the bounded worker pool, so a
// subsequent Bytes call for the range is served from cache instead of
// fetching shard-by-shard on the calling goroutine. Serial-phase use
// only (call it between Bytes calls, not concurrently with them); the
// fan-out inside is the same bounded pool Process uses.
func (r *Reader) Prefetch(start, end int, opt Options) error {
	if start < 0 || end < start || end > r.Total() {
		return fmt.Errorf("shard: byte range [%d,%d) outside payload of %d bytes", start, end, r.Total())
	}
	if start == end {
		return nil
	}
	lo := r.shardAt(start)
	hi := r.shardAt(end - 1)
	n := hi - lo + 1
	errs := make([]error, n)
	parallel.ForBounded(n, 1, opt.workers(n), func(a, b int) {
		for i := a; i < b; i++ {
			s := lo + i
			if r.fetched[s] {
				continue
			}
			data, err := fetchVerify(r.st, r.m, s, r.met)
			if err != nil {
				errs[i] = err
				continue
			}
			r.chunks[s], r.fetched[s] = data, true
		}
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Process fetches and verifies every shard of the group over a bounded
// worker pool — including shards the caller has no work for, so a
// corrupt or missing shard anywhere rejects the whole group — and
// hands each verified chunk to fn exactly once as fn(i, start, chunk),
// where start is the chunk's payload offset. The chunk is released
// after fn returns, keeping transient memory proportional to the
// in-flight shards rather than the payload; chunks already fetched by
// Bytes are handed over without a second read. fn must be safe for
// concurrent calls on distinct shards. The first shard or fn error
// fails the group.
func (r *Reader) Process(opt Options, fn func(i, start int, chunk []byte) error) error {
	n := len(r.m.Shards)
	errs := make([]error, n)
	parallel.ForBounded(n, 1, opt.workers(n), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			c, err := r.chunk(i)
			if err != nil {
				errs[i] = err
				continue
			}
			errs[i] = fn(i, r.offs[i], c)
			r.chunks[i] = nil // release; decode output lives elsewhere
		}
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Delete removes the group stored under base: the manifest (or
// monolithic object) first — the group instantly stops being a
// recovery target — then any shard objects of base still listed.
// Shard deletions are best effort; leftovers are orphans that readers
// ignore and a later gc sweeps.
func Delete(st Storage, base string) error {
	if err := st.Delete(base); err != nil {
		return err
	}
	names, err := st.List()
	if err != nil {
		return nil // listing is advisory here; orphans are harmless
	}
	for _, n := range names {
		if b, _, ok := ShardBase(n); ok && b == base {
			_ = st.Delete(n)
		}
	}
	return nil
}

// IsManifest reports whether data begins with the shard-manifest
// magic — the cheap test the restore path uses to tell a sharded
// checkpoint from a monolithic payload stored under the same name.
func IsManifest(data []byte) bool {
	return len(data) >= len(manifestMagic) && string(data[:len(manifestMagic)]) == manifestMagic
}

// AppendManifest serializes m into buf's backing array:
//
//	"FTSM" | version | encoder string | uvarint total | uvarint nShards
//	       | nShards × (name string, uvarint size, 4-byte CRC32C)
//	       | 4-byte CRC32C trailer over everything before it
//
// Strings are uvarint-length-prefixed.
func AppendManifest(buf []byte, m *Manifest) []byte {
	out := append(buf[:0], manifestMagic...)
	out = append(out, manifestVersion)
	var scratch [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) {
		k := binary.PutUvarint(scratch[:], v)
		out = append(out, scratch[:k]...)
	}
	putString := func(s string) {
		putUvarint(uint64(len(s)))
		out = append(out, s...)
	}
	putString(m.Encoder)
	putUvarint(uint64(m.Total))
	putUvarint(uint64(len(m.Shards)))
	var b4 [4]byte
	for _, s := range m.Shards {
		putString(s.Name)
		putUvarint(uint64(s.Size))
		binary.LittleEndian.PutUint32(b4[:], s.CRC)
		out = append(out, b4[:]...)
	}
	binary.LittleEndian.PutUint32(b4[:], Checksum(out))
	return append(out, b4[:]...)
}

// ParseManifest decodes and validates a manifest. Crafted inputs are
// rejected before any size derived from them backs an allocation: the
// trailer CRC must match, the shard count is bounded by both MaxShards
// and the bytes actually present (each entry costs ≥ 7 bytes), name
// lengths are capped, sizes must be non-negative and sum exactly to
// Total, and every name must be a well-formed shard name.
func ParseManifest(data []byte) (*Manifest, error) {
	if !IsManifest(data) {
		return nil, fmt.Errorf("shard: not a manifest (bad magic)")
	}
	if len(data) < len(manifestMagic)+1+4 {
		return nil, fmt.Errorf("shard: truncated manifest")
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	if Checksum(body) != binary.LittleEndian.Uint32(trailer) {
		return nil, fmt.Errorf("shard: manifest CRC32C mismatch (corrupt)")
	}
	if v := body[len(manifestMagic)]; v != manifestVersion {
		return nil, fmt.Errorf("shard: unsupported manifest version %d", v)
	}
	off := len(manifestMagic) + 1
	getUvarint := func() (uint64, error) {
		v, k := binary.Uvarint(body[off:])
		if k <= 0 {
			return 0, fmt.Errorf("shard: truncated manifest varint at %d", off)
		}
		off += k
		return v, nil
	}
	getString := func(maxLen int) (string, error) {
		l, err := getUvarint()
		if err != nil {
			return "", err
		}
		if l > uint64(maxLen) || off+int(l) > len(body) {
			return "", fmt.Errorf("shard: manifest string of %d bytes at %d rejected", l, off)
		}
		s := string(body[off : off+int(l)])
		off += int(l)
		return s, nil
	}
	m := &Manifest{}
	var err error
	if m.Encoder, err = getString(maxNameLen); err != nil {
		return nil, err
	}
	total, err := getUvarint()
	if err != nil {
		return nil, err
	}
	if total > 1<<56 {
		return nil, fmt.Errorf("shard: manifest total %d rejected", total)
	}
	m.Total = int(total)
	nShards, err := getUvarint()
	if err != nil {
		return nil, err
	}
	// Each entry needs at least a 1-byte name length, a 1-byte name, a
	// 1-byte size varint, and the 4-byte CRC.
	if nShards > MaxShards || nShards > uint64(len(body)-off)/7 {
		return nil, fmt.Errorf("shard: manifest claims %d shards in %d bytes", nShards, len(body)-off)
	}
	if nShards == 0 {
		return nil, fmt.Errorf("shard: manifest lists no shards")
	}
	m.Shards = make([]Info, nShards)
	sum := 0
	for i := range m.Shards {
		name, err := getString(maxNameLen)
		if err != nil {
			return nil, err
		}
		if _, _, ok := ShardBase(name); !ok {
			return nil, fmt.Errorf("shard: manifest entry %d has malformed shard name %q", i, name)
		}
		size, err := getUvarint()
		if err != nil {
			return nil, err
		}
		if size > total {
			return nil, fmt.Errorf("shard: shard %q size %d exceeds total %d", name, size, total)
		}
		if off+4 > len(body) {
			return nil, fmt.Errorf("shard: truncated manifest entry %d", i)
		}
		crc := binary.LittleEndian.Uint32(body[off:])
		off += 4
		m.Shards[i] = Info{Name: name, Size: int(size), CRC: crc}
		sum += int(size)
	}
	if off != len(body) {
		return nil, fmt.Errorf("shard: %d trailing manifest bytes", len(body)-off)
	}
	if sum != m.Total {
		return nil, fmt.Errorf("shard: shard sizes sum to %d, manifest total is %d", sum, m.Total)
	}
	return m, nil
}
