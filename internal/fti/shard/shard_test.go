package shard

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"
)

// memStore is a minimal concurrent-safe Storage for the tests,
// mirroring fti.MemStorage without importing the parent package.
type memStore struct {
	mu    sync.Mutex
	files map[string][]byte
}

func newMemStore() *memStore { return &memStore{files: map[string][]byte{}} }

func (s *memStore) Write(name string, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.files[name] = append([]byte(nil), data...)
	return nil
}

func (s *memStore) Read(name string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.files[name]
	if !ok {
		return nil, fmt.Errorf("not found: %s", name)
	}
	return append([]byte(nil), d...), nil
}

func (s *memStore) Delete(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.files, name)
	return nil
}

func (s *memStore) List() ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var names []string
	for n := range s.files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

// failStore fails Write for names containing a substring.
type failStore struct {
	Storage
	failSub string
}

func (s *failStore) Write(name string, data []byte) error {
	if s.failSub != "" && strings.Contains(name, s.failSub) {
		return fmt.Errorf("injected write failure for %s", name)
	}
	return s.Storage.Write(name, data)
}

func payloadOf(n int) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = byte(i * 31)
	}
	return p
}

func TestSplitCoversAndAligns(t *testing.T) {
	aligned := []int{100, 200, 300, 400, 500, 600, 700, 800, 900}
	ranges := Split(1000, 4, aligned)
	if len(ranges) != 4 {
		t.Fatalf("want 4 ranges, got %d: %v", len(ranges), ranges)
	}
	// Coverage: contiguous, non-empty, exact.
	prev := 0
	for _, r := range ranges {
		if r.Start != prev || r.End <= r.Start {
			t.Fatalf("ranges not contiguous/non-empty: %v", ranges)
		}
		prev = r.End
	}
	if prev != 1000 {
		t.Fatalf("ranges cover %d of 1000", prev)
	}
	// Alignment: every interior cut sits on an aligned boundary (the
	// even cuts 250/500/750 snap to 200 or 300, 500, 700 or 800).
	for _, r := range ranges[1:] {
		found := false
		for _, a := range aligned {
			if r.Start == a {
				found = true
			}
		}
		if !found {
			t.Fatalf("cut %d not on an aligned boundary", r.Start)
		}
	}
}

func TestSplitNoAlignmentFallsBackEven(t *testing.T) {
	ranges := Split(1000, 4, nil)
	want := []Range{{0, 250}, {250, 500}, {500, 750}, {750, 1000}}
	for i, r := range ranges {
		if r != want[i] {
			t.Fatalf("even split mismatch: got %v want %v", ranges, want)
		}
	}
}

func TestSplitDistantBoundariesIgnored(t *testing.T) {
	// Only boundary is near the end: even cuts must not all snap to it.
	ranges := Split(1000, 4, []int{990})
	if len(ranges) != 4 {
		t.Fatalf("want 4 ranges, got %v", ranges)
	}
	if ranges[1].Start != 250 || ranges[2].Start != 500 {
		t.Fatalf("distant boundary distorted the split: %v", ranges)
	}
}

func TestSplitClampsToPayload(t *testing.T) {
	ranges := Split(3, 8, nil)
	if len(ranges) != 3 {
		t.Fatalf("3-byte payload must clamp to 3 shards, got %v", ranges)
	}
	if r := Split(0, 4, nil); len(r) != 1 || r[0] != (Range{0, 0}) {
		t.Fatalf("empty payload: %v", r)
	}
}

func TestShardNameRoundTrip(t *testing.T) {
	base := "ckpt-000000000007"
	for _, i := range []int{0, 1, 99999} {
		name := ShardName(base, i)
		got, idx, ok := ShardBase(name)
		if !ok || got != base {
			t.Fatalf("ShardBase(%q) = %q, %v", name, got, ok)
		}
		if idx != i {
			t.Fatalf("ShardBase(%q) index = %d, want %d", name, idx, i)
		}
	}
	for _, bad := range []string{"ckpt-000000000007", "x.s123", "x.s1234567", "x.sabcde", ".s00000", "static-a"} {
		if base, _, ok := ShardBase(bad); ok {
			t.Fatalf("ShardBase(%q) accepted as shard of %q", bad, base)
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	for _, workers := range []int{0, 1, 3} {
		for _, shards := range []int{2, 4, 8} {
			st := newMemStore()
			payload := payloadOf(10_000)
			written, err := Write(st, "ckpt-000000000001", "sz", payload, []int{1000, 2000, 5000, 9000},
				Options{Shards: shards, Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if written != shards {
				t.Fatalf("wrote %d shards, want %d", written, shards)
			}
			names, _ := st.List()
			if len(names) != shards+1 {
				t.Fatalf("storage holds %d objects, want %d shards + manifest", len(names), shards)
			}
			manData, err := st.Read("ckpt-000000000001")
			if err != nil {
				t.Fatal(err)
			}
			if !IsManifest(manData) {
				t.Fatal("base object is not a manifest")
			}
			m, err := ParseManifest(manData)
			if err != nil {
				t.Fatal(err)
			}
			if m.Encoder != "sz" || m.Total != len(payload) || len(m.Shards) != shards {
				t.Fatalf("manifest %+v", m)
			}
			got, err := Read(st, m, Options{Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, payload) {
				t.Fatal("reassembled payload differs")
			}
		}
	}
}

func TestWriteShardFailureRollsBack(t *testing.T) {
	st := newMemStore()
	fs := &failStore{Storage: st, failSub: ".s00002"}
	_, err := Write(fs, "ckpt-000000000001", "sz", payloadOf(4096), nil, Options{Shards: 4})
	if err == nil {
		t.Fatal("want write error")
	}
	names, _ := st.List()
	if len(names) != 0 {
		t.Fatalf("failed write left objects behind: %v", names)
	}
}

func TestWriteManifestFailureRollsBack(t *testing.T) {
	st := newMemStore()
	// Shard names contain the base as a prefix, so fail only the exact
	// base name — the manifest commit.
	wrapped := &manifestFailStore{Storage: st, base: "ckpt-000000000001"}
	_, err := Write(wrapped, "ckpt-000000000001", "sz", payloadOf(4096), nil, Options{Shards: 4})
	if err == nil {
		t.Fatal("want manifest commit error")
	}
	names, _ := st.List()
	if len(names) != 0 {
		t.Fatalf("failed commit left objects behind: %v", names)
	}
}

type manifestFailStore struct {
	Storage
	base string
}

func (s *manifestFailStore) Write(name string, data []byte) error {
	if name == s.base {
		return fmt.Errorf("injected manifest failure")
	}
	return s.Storage.Write(name, data)
}

func TestReadDetectsMissingAndCorrupt(t *testing.T) {
	newGroup := func() (*memStore, *Manifest) {
		st := newMemStore()
		if _, err := Write(st, "ckpt-000000000001", "sz", payloadOf(8192), nil, Options{Shards: 4}); err != nil {
			t.Fatal(err)
		}
		man, _ := st.Read("ckpt-000000000001")
		m, err := ParseManifest(man)
		if err != nil {
			t.Fatal(err)
		}
		return st, m
	}

	st, m := newGroup()
	_ = st.Delete(m.Shards[2].Name)
	if _, err := Read(st, m, Options{}); err == nil || !strings.Contains(err.Error(), "missing shard") {
		t.Fatalf("missing shard not detected: %v", err)
	}

	st, m = newGroup()
	data, _ := st.Read(m.Shards[1].Name)
	data[len(data)/2] ^= 0xFF
	_ = st.Write(m.Shards[1].Name, data)
	if _, err := Read(st, m, Options{}); err == nil || !strings.Contains(err.Error(), "CRC32C") {
		t.Fatalf("corrupted shard not detected: %v", err)
	}

	st, m = newGroup()
	data, _ = st.Read(m.Shards[0].Name)
	_ = st.Write(m.Shards[0].Name, data[:len(data)-1])
	if _, err := Read(st, m, Options{}); err == nil || !strings.Contains(err.Error(), "bytes") {
		t.Fatalf("truncated shard not detected: %v", err)
	}
}

func TestDeleteRemovesGroupManifestFirst(t *testing.T) {
	st := newMemStore()
	if _, err := Write(st, "ckpt-000000000001", "sz", payloadOf(4096), nil, Options{Shards: 3}); err != nil {
		t.Fatal(err)
	}
	// An unrelated monolithic object and a different group survive.
	_ = st.Write("ckpt-000000000002", []byte("mono"))
	if err := Delete(st, "ckpt-000000000001"); err != nil {
		t.Fatal(err)
	}
	names, _ := st.List()
	if len(names) != 1 || names[0] != "ckpt-000000000002" {
		t.Fatalf("delete left %v", names)
	}
}

func TestManifestRoundTrip(t *testing.T) {
	m := &Manifest{
		Encoder: "sz",
		Total:   300,
		Shards: []Info{
			{Name: ShardName("ckpt-000000000009", 0), Size: 100, CRC: 0xDEADBEEF},
			{Name: ShardName("ckpt-000000000009", 1), Size: 200, CRC: 1},
		},
	}
	got, err := ParseManifest(AppendManifest(nil, m))
	if err != nil {
		t.Fatal(err)
	}
	if got.Encoder != m.Encoder || got.Total != m.Total || len(got.Shards) != 2 ||
		got.Shards[0] != m.Shards[0] || got.Shards[1] != m.Shards[1] {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, m)
	}
}

// TestCraftedManifestsRejected: manifests with absurd shard counts or
// sizes must be rejected before any allocation is sized from them —
// the shard-layer mirror of the SZG2 header hardening. Every crafted
// case re-seals the CRC trailer so it exercises the structural checks,
// not just the checksum.
func TestCraftedManifestsRejected(t *testing.T) {
	valid := &Manifest{
		Encoder: "sz",
		Total:   128,
		Shards: []Info{
			{Name: ShardName("ckpt-000000000001", 0), Size: 64, CRC: 7},
			{Name: ShardName("ckpt-000000000001", 1), Size: 64, CRC: 8},
		},
	}
	base := AppendManifest(nil, valid)
	if _, err := ParseManifest(base); err != nil {
		t.Fatalf("valid manifest rejected: %v", err)
	}

	cases := []struct {
		name string
		m    *Manifest
	}{
		{"sizes exceed total", &Manifest{Encoder: "sz", Total: 10, Shards: []Info{
			{Name: ShardName("x", 0), Size: 11, CRC: 0}}}},
		{"sum mismatch", &Manifest{Encoder: "sz", Total: 100, Shards: []Info{
			{Name: ShardName("x", 0), Size: 10, CRC: 0},
			{Name: ShardName("x", 1), Size: 10, CRC: 0}}}},
		{"malformed shard name", &Manifest{Encoder: "sz", Total: 10, Shards: []Info{
			{Name: "not-a-shard", Size: 10, CRC: 0}}}},
		{"no shards", &Manifest{Encoder: "sz", Total: 0, Shards: nil}},
	}
	for _, tc := range cases {
		if _, err := ParseManifest(AppendManifest(nil, tc.m)); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}

	// Hand-crafted: a shard count far beyond the bytes present. The
	// count check must fire before make([]Info, n).
	huge := craftManifest(t, "sz", 1<<40, 1<<40)
	if _, err := ParseManifest(huge); err == nil {
		t.Fatal("manifest with 2^40 shards accepted")
	}
	// Shard count just over MaxShards with a plausible byte budget.
	over := craftManifest(t, "sz", 1<<30, MaxShards+1)
	if _, err := ParseManifest(over); err == nil {
		t.Fatal("manifest beyond MaxShards accepted")
	}
	// Corrupt trailer.
	bad := append([]byte(nil), base...)
	bad[len(bad)-1] ^= 0xFF
	if _, err := ParseManifest(bad); err == nil {
		t.Fatal("manifest with bad CRC accepted")
	}
	// Truncations at every length must error, never panic.
	for i := 0; i < len(base); i++ {
		if _, err := ParseManifest(base[:i]); err == nil {
			t.Fatalf("truncated manifest (%d bytes) accepted", i)
		}
	}
}

// craftManifest builds a syntactically framed manifest claiming the
// given total and shard count, with a correct CRC trailer but no
// entries behind the count.
func craftManifest(t *testing.T, encoder string, total, nShards uint64) []byte {
	t.Helper()
	out := []byte(manifestMagic)
	out = append(out, manifestVersion)
	out = appendUvarint(out, uint64(len(encoder)))
	out = append(out, encoder...)
	out = appendUvarint(out, total)
	out = appendUvarint(out, nShards)
	return sealManifest(out)
}

// sealManifest appends the CRC32C trailer over body, producing a
// checksum-valid manifest so parse tests exercise the structural
// validation rather than the trailer check.
func sealManifest(body []byte) []byte {
	var b4 [4]byte
	binary.LittleEndian.PutUint32(b4[:], Checksum(body))
	return append(body, b4[:]...)
}

func appendUvarint(b []byte, v uint64) []byte {
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}

// readerGroup writes a deterministic payload as a 5-shard group and
// returns the store, the parsed manifest, and the payload.
func readerGroup(t *testing.T, n int) (*memStore, *Manifest, []byte) {
	t.Helper()
	st := newMemStore()
	payload := payloadOf(n)
	if _, err := Write(st, "ckpt-000000000001", "sz", payload, nil, Options{Shards: 5}); err != nil {
		t.Fatal(err)
	}
	man, _ := st.Read("ckpt-000000000001")
	m, err := ParseManifest(man)
	if err != nil {
		t.Fatal(err)
	}
	return st, m, payload
}

// TestReaderBytes: every span — inside one shard, across boundaries,
// whole payload, empty — must match the reassembled payload, and
// in-shard spans must be served zero-copy from the chunk.
func TestReaderBytes(t *testing.T) {
	st, m, payload := readerGroup(t, 10_000)
	r := NewReader(st, m)
	if r.Total() != len(payload) {
		t.Fatalf("Total %d != %d", r.Total(), len(payload))
	}
	offs := r.Offsets()
	if len(offs) != len(m.Shards)+1 || offs[len(offs)-1] != len(payload) {
		t.Fatalf("bad offsets %v", offs)
	}
	spans := [][2]int{
		{0, 0},
		{0, len(payload)},
		{offs[1] - 3, offs[1] + 3}, // straddles a boundary
		{offs[2], offs[3]},         // exactly one shard
		{offs[1] + 1, offs[2] - 1}, // inside one shard
		{len(payload) - 1, len(payload)},
	}
	for _, sp := range spans {
		got, err := r.Bytes(sp[0], sp[1])
		if err != nil {
			t.Fatalf("Bytes(%d,%d): %v", sp[0], sp[1], err)
		}
		if !bytes.Equal(got, payload[sp[0]:sp[1]]) {
			t.Fatalf("Bytes(%d,%d) mismatch", sp[0], sp[1])
		}
	}
	if _, err := r.Bytes(-1, 3); err == nil {
		t.Fatal("negative start accepted")
	}
	if _, err := r.Bytes(0, len(payload)+1); err == nil {
		t.Fatal("overlong span accepted")
	}
}

// TestReaderProcess: every shard chunk is handed over exactly once
// with its payload offset, shards already fetched by Bytes included.
func TestReaderProcess(t *testing.T) {
	st, m, payload := readerGroup(t, 10_000)
	r := NewReader(st, m)
	if _, err := r.Bytes(0, 10); err != nil { // pre-fetch shard 0
		t.Fatal(err)
	}
	var mu sync.Mutex
	seen := make(map[int]int)
	rebuilt := make([]byte, len(payload))
	err := r.Process(Options{Workers: 3}, func(i, start int, chunk []byte) error {
		mu.Lock()
		seen[i]++
		mu.Unlock()
		copy(rebuilt[start:], chunk)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range m.Shards {
		if seen[i] != 1 {
			t.Fatalf("shard %d processed %d times", i, seen[i])
		}
	}
	if !bytes.Equal(rebuilt, payload) {
		t.Fatal("processed chunks do not reassemble the payload")
	}
}

// TestReaderRejectsCorruptAndMissing: both access paths must fail on
// a bad shard, naming it.
func TestReaderRejectsCorruptAndMissing(t *testing.T) {
	st, m, _ := readerGroup(t, 10_000)
	bad, _ := st.Read(m.Shards[3].Name)
	bad[0] ^= 0xff
	_ = st.Write(m.Shards[3].Name, bad)
	r := NewReader(st, m)
	if _, err := r.Bytes(r.Offsets()[3], r.Offsets()[4]); err == nil || !strings.Contains(err.Error(), "CRC32C") {
		t.Fatalf("corrupt shard served by Bytes: %v", err)
	}
	if err := r.Process(Options{}, func(int, int, []byte) error { return nil }); err == nil || !strings.Contains(err.Error(), "CRC32C") {
		t.Fatalf("corrupt shard passed Process: %v", err)
	}

	st2, m2, _ := readerGroup(t, 10_000)
	_ = st2.Delete(m2.Shards[1].Name)
	r2 := NewReader(st2, m2)
	if err := r2.Process(Options{}, func(int, int, []byte) error { return nil }); err == nil || !strings.Contains(err.Error(), "missing shard") {
		t.Fatalf("missing shard passed Process: %v", err)
	}
}

// TestReaderPrefetch: prefetched spans are served from cache, already
// cached shards are not re-read, and a corrupt shard in the span
// fails the prefetch.
func TestReaderPrefetch(t *testing.T) {
	st, m, payload := readerGroup(t, 10_000)
	r := NewReader(st, m)
	offs := r.Offsets()
	if err := r.Prefetch(offs[1], offs[4], Options{Workers: 3}); err != nil {
		t.Fatal(err)
	}
	got, err := r.Bytes(offs[1], offs[4])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload[offs[1]:offs[4]]) {
		t.Fatal("prefetched span mismatch")
	}
	if err := r.Prefetch(0, len(payload), Options{}); err != nil {
		t.Fatal(err)
	}
	if err := r.Prefetch(0, 0, Options{}); err != nil {
		t.Fatal(err)
	}
	if err := r.Prefetch(-1, 4, Options{}); err == nil {
		t.Fatal("negative start accepted")
	}

	st2, m2, _ := readerGroup(t, 10_000)
	bad, _ := st2.Read(m2.Shards[2].Name)
	bad[3] ^= 0x55
	_ = st2.Write(m2.Shards[2].Name, bad)
	r2 := NewReader(st2, m2)
	if err := r2.Prefetch(0, r2.Total(), Options{}); err == nil || !strings.Contains(err.Error(), "CRC32C") {
		t.Fatalf("corrupt shard passed Prefetch: %v", err)
	}
}
