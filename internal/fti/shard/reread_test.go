package shard

import (
	"strings"
	"sync"
	"testing"
)

// tornStore corrupts the first N reads of a chosen name in flight —
// the bytes at rest stay intact, modeling a transient read-side fault
// — while persistent=true keeps returning corrupt bytes forever,
// modeling at-rest corruption.
type tornStore struct {
	Storage
	mu         sync.Mutex
	name       string
	torn       int
	persistent bool
	reads      int
}

func (s *tornStore) Read(name string) ([]byte, error) {
	data, err := s.Storage.Read(name)
	if err != nil || name != s.name {
		return data, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reads++
	if s.persistent || s.torn > 0 {
		if s.torn > 0 {
			s.torn--
		}
		data[len(data)/2] ^= 0xFF
	}
	return data, nil
}

func manifestOf(t *testing.T, st Storage, base string) *Manifest {
	t.Helper()
	data, err := st.Read(base)
	if err != nil {
		t.Fatal(err)
	}
	m, err := ParseManifest(data)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestFetchVerifyReReadsTransientCorruption(t *testing.T) {
	st := newMemStore()
	payload := payloadOf(8192)
	if _, err := Write(st, "ckpt-000000000001", "sz", payload, nil, Options{Shards: 4}); err != nil {
		t.Fatal(err)
	}
	m := manifestOf(t, st, "ckpt-000000000001")
	// One in-flight corruption: the first read of shard 2 is torn, the
	// re-read sees the intact at-rest bytes and repairs the fetch.
	ts := &tornStore{Storage: st, name: m.Shards[2].Name, torn: 1}
	got, err := Read(ts, m, Options{Workers: 1})
	if err != nil {
		t.Fatalf("transient read corruption should be absorbed by re-reads: %v", err)
	}
	if len(got) != len(payload) || got[4100] != payload[4100] {
		t.Fatal("reassembled payload differs")
	}
	if ts.reads != 2 {
		t.Fatalf("expected exactly one re-read of the torn shard, saw %d reads", ts.reads)
	}
}

func TestFetchVerifyStillRejectsPersistentCorruption(t *testing.T) {
	st := newMemStore()
	if _, err := Write(st, "ckpt-000000000001", "sz", payloadOf(8192), nil, Options{Shards: 4}); err != nil {
		t.Fatal(err)
	}
	m := manifestOf(t, st, "ckpt-000000000001")
	ts := &tornStore{Storage: st, name: m.Shards[1].Name, persistent: true}
	if _, err := Read(ts, m, Options{Workers: 1}); err == nil || !strings.Contains(err.Error(), "CRC32C") {
		t.Fatalf("persistent corruption must still fail the group, got %v", err)
	}
	// The first read plus maxRereads re-reads, no more: persistent
	// damage must not be retried forever.
	if ts.reads != 1+maxRereads {
		t.Fatalf("saw %d reads, want %d", ts.reads, 1+maxRereads)
	}
}
