package shard

import (
	"time"

	"repro/internal/obs"
)

// Metrics is the shard layer's observability bundle: per-shard-object
// write/read latency and bytes, plus integrity failures split into
// CRC mismatches and all read-side rejections. A nil *Metrics (the
// disabled mode) makes every observation a no-op, so the I/O paths
// call these unconditionally.
type Metrics struct {
	writeSec     *obs.Histogram
	readSec      *obs.Histogram
	writes       *obs.Counter
	reads        *obs.Counter
	writtenBytes *obs.Counter
	readBytes    *obs.Counter
	crcFailures  *obs.Counter
	readFailures *obs.Counter
	rereads      *obs.Counter
	rereadFixes  *obs.Counter
}

// NewMetrics registers the shard metrics in reg; nil reg returns a
// nil (disabled) bundle.
func NewMetrics(reg *obs.Registry) *Metrics {
	if reg == nil {
		return nil
	}
	return &Metrics{
		writeSec:     reg.Histogram(obs.MShardWriteSeconds, obs.LatencyBuckets()),
		readSec:      reg.Histogram(obs.MShardReadSeconds, obs.LatencyBuckets()),
		writes:       reg.Counter(obs.MShardWritesTotal),
		reads:        reg.Counter(obs.MShardReadsTotal),
		writtenBytes: reg.Counter(obs.MShardWrittenBytesTotal),
		readBytes:    reg.Counter(obs.MShardReadBytesTotal),
		crcFailures:  reg.Counter(obs.MShardCRCFailuresTotal),
		readFailures: reg.Counter(obs.MShardReadFailuresTotal),
		rereads:      reg.Counter(obs.MShardRereadsTotal),
		rereadFixes:  reg.Counter(obs.MShardRereadRepairsTotal),
	}
}

func (m *Metrics) observeWrite(sec float64, n int) {
	if m == nil {
		return
	}
	m.writeSec.Observe(sec)
	m.writes.Inc()
	m.writtenBytes.Add(uint64(n))
}

func (m *Metrics) observeRead(sec float64, n int) {
	if m == nil {
		return
	}
	m.readSec.Observe(sec)
	m.reads.Inc()
	m.readBytes.Add(uint64(n))
}

func (m *Metrics) observeCRCFailure() {
	if m == nil {
		return
	}
	m.crcFailures.Inc()
}

func (m *Metrics) observeReadFailure() {
	if m == nil {
		return
	}
	m.readFailures.Inc()
}

func (m *Metrics) observeReread() {
	if m == nil {
		return
	}
	m.rereads.Inc()
}

func (m *Metrics) observeRereadRepair() {
	if m == nil {
		return
	}
	m.rereadFixes.Inc()
}

// now returns the wall clock only when the bundle is live, so the
// disabled mode skips even the clock read.
func (m *Metrics) now() time.Time {
	if m == nil {
		return time.Time{}
	}
	return time.Now()
}
