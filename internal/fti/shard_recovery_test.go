package fti

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/fti/shard"
	"repro/internal/sz"
)

// shardTestState returns a deterministic smooth state large enough to
// span several SZG2 blocks, so sharded checkpoints exercise the
// block-aligned cut path.
func shardTestState(n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = 3 + math.Sin(float64(i)/700)*math.Cos(float64(i)/91)
	}
	return x
}

func newShardedCheckpointer(t *testing.T, st Storage, shards, workers int) *Checkpointer {
	t.Helper()
	c := New(st, SZ{Params: sz.Params{Mode: sz.PWRel, ErrorBound: 1e-6}})
	if err := c.SetSharding(shards, workers); err != nil {
		t.Fatal(err)
	}
	return c
}

func shardSnap(it int, x []float64) *Snapshot {
	return &Snapshot{Iteration: it, Vectors: map[string][]float64{"x": x}}
}

// saveSharded writes one sharded checkpoint and returns its Info.
func saveSharded(t *testing.T, c *Checkpointer, it int, x []float64) Info {
	t.Helper()
	info, err := c.Save(shardSnap(it, x))
	if err != nil {
		t.Fatal(err)
	}
	return info
}

func TestShardedSaveRestoreRoundTrip(t *testing.T) {
	st := NewMemStorage()
	c := newShardedCheckpointer(t, st, 8, 4)
	x := shardTestState(200_000)
	info := saveSharded(t, c, 7, x)
	if info.Shards != 8 {
		t.Fatalf("Info.Shards = %d, want 8", info.Shards)
	}
	names, _ := st.List()
	manifest := 0
	shardsSeen := 0
	for _, n := range names {
		if _, _, ok := shard.ShardBase(n); ok {
			shardsSeen++
		} else if _, ok := parseCkptName(n); ok {
			manifest++
		}
	}
	if manifest != 1 || shardsSeen != 8 {
		t.Fatalf("layout: %d manifests, %d shards (%v)", manifest, shardsSeen, names)
	}
	s, err := c.Restore()
	if err != nil {
		t.Fatal(err)
	}
	if s.Iteration != 7 || len(s.Vectors["x"]) != len(x) {
		t.Fatalf("restored iteration %d, %d values", s.Iteration, len(s.Vectors["x"]))
	}
	for i, v := range s.Vectors["x"] {
		if math.Abs(v-x[i]) > 1e-6*math.Abs(x[i]) {
			t.Fatalf("value %d outside error bound: %g vs %g", i, v, x[i])
		}
	}
}

func TestShardedCutsAlignToSZBlocks(t *testing.T) {
	// With a large vector the payload is dominated by one SZG2 stream;
	// the shard cut points must land on its block boundaries.
	x := shardTestState(300_000)
	enc := SZ{Params: sz.Params{Mode: sz.PWRel, ErrorBound: 1e-6}}
	payload, _, _, bounds, err := encodeSnapshot(shardSnap(1, x), enc, nil, true, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(bounds) < 8 {
		t.Fatalf("expected ≥8 aligned boundaries for a %d-element state, got %d", len(x), len(bounds))
	}
	ranges := shard.Split(len(payload), 4, bounds)
	aligned := 0
	for _, r := range ranges[1:] {
		for _, b := range bounds {
			if r.Start == b {
				aligned++
				break
			}
		}
	}
	if aligned != len(ranges)-1 {
		t.Fatalf("only %d of %d cuts aligned to SZ block boundaries", aligned, len(ranges)-1)
	}
}

func TestShardedMissingShardFallsBack(t *testing.T) {
	st := NewMemStorage()
	c := newShardedCheckpointer(t, st, 4, 2)
	x1 := shardTestState(150_000)
	saveSharded(t, c, 1, x1)
	saveSharded(t, c, 2, shardTestState(150_001))
	// Lose one shard of the newest checkpoint.
	if err := st.Delete(shard.ShardName(ckptName(2), 2)); err != nil {
		t.Fatal(err)
	}
	s, err := c.Restore()
	if err != nil {
		t.Fatal(err)
	}
	if s.Iteration != 1 {
		t.Fatalf("restore picked iteration %d, want fallback to 1", s.Iteration)
	}
}

func TestShardedCorruptShardFallsBack(t *testing.T) {
	st := NewMemStorage()
	c := newShardedCheckpointer(t, st, 4, 0)
	saveSharded(t, c, 1, shardTestState(150_000))
	saveSharded(t, c, 2, shardTestState(150_001))
	name := shard.ShardName(ckptName(2), 1)
	data, err := st.Read(name)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/3] ^= 0x55
	if err := st.Write(name, data); err != nil {
		t.Fatal(err)
	}
	s, err := c.Restore()
	if err != nil {
		t.Fatal(err)
	}
	if s.Iteration != 1 {
		t.Fatalf("restore picked iteration %d, want fallback to 1", s.Iteration)
	}
}

func TestShardedCorruptManifestFallsBack(t *testing.T) {
	st := NewMemStorage()
	c := newShardedCheckpointer(t, st, 4, 0)
	saveSharded(t, c, 1, shardTestState(150_000))
	saveSharded(t, c, 2, shardTestState(150_001))
	name := ckptName(2)
	data, _ := st.Read(name)
	data[len(data)-1] ^= 0xFF // break the manifest trailer CRC
	_ = st.Write(name, data)
	s, err := c.Restore()
	if err != nil {
		t.Fatal(err)
	}
	if s.Iteration != 1 {
		t.Fatalf("restore picked iteration %d, want fallback to 1", s.Iteration)
	}
}

// TestOrphanShardsIgnoredAndSwept: shard objects without a manifest —
// the debris of a write that crashed between its shard writes and its
// manifest commit — must be invisible to recovery, must not block a
// restarted Checkpointer, and must be garbage-collected by the next
// successful save.
func TestOrphanShardsIgnoredAndSwept(t *testing.T) {
	st := NewMemStorage()
	c := newShardedCheckpointer(t, st, 4, 0)
	saveSharded(t, c, 1, shardTestState(150_000))
	// Simulate an aborted write at seq 9: shards present, no manifest.
	// The sequence counter only syncs off manifests, so seq 9 stays
	// dead — exactly the state a crash between shard writes and the
	// manifest commit leaves behind.
	for i := 0; i < 4; i++ {
		if err := st.Write(shard.ShardName(ckptName(9), i), []byte("partial")); err != nil {
			t.Fatal(err)
		}
	}
	// A restarted Checkpointer over this directory must not count the
	// orphans as a checkpoint...
	c2 := newShardedCheckpointer(t, st, 4, 0)
	if got := c2.CheckpointCount(); got != 1 {
		t.Fatalf("CheckpointCount = %d with orphans present, want 1", got)
	}
	// ...must recover from the committed checkpoint...
	s, err := c2.Restore()
	if err != nil {
		t.Fatal(err)
	}
	if s.Iteration != 1 {
		t.Fatalf("restore picked iteration %d, want 1", s.Iteration)
	}
	// ...and the next save's gc must sweep the dead group's shards.
	saveSharded(t, c2, 5, shardTestState(150_001)) // commits seq 2
	names, _ := st.List()
	for _, n := range names {
		if strings.HasPrefix(n, ckptName(9)) {
			t.Fatalf("orphan shard %s survived gc (%v)", n, names)
		}
	}
}

// TestStaleShardsOfReusedSeqSwept: after a crash mid-sharded-write,
// restart re-uses the orphans' sequence number. If the new write at
// that sequence is monolithic, or sharded with fewer shards, the stale
// higher-indexed shard objects share a live base name — they must
// still be swept, not leak forever.
func TestStaleShardsOfReusedSeqSwept(t *testing.T) {
	st := NewMemStorage()
	// Orphans of a crashed 8-shard write at seq 1.
	for i := 0; i < 8; i++ {
		if err := st.Write(shard.ShardName(ckptName(1), i), []byte("stale")); err != nil {
			t.Fatal(err)
		}
	}

	// Case 1: restart writes seq 1 sharded with only 4 shards.
	c := newShardedCheckpointer(t, st, 4, 0)
	saveSharded(t, c, 1, shardTestState(150_000))
	names, _ := st.List()
	for _, n := range names {
		if base, idx, ok := shard.ShardBase(n); ok && base == ckptName(1) && idx >= 4 {
			t.Fatalf("stale shard %s outlived the narrower rewrite (%v)", n, names)
		}
	}
	s, err := c.Restore()
	if err != nil {
		t.Fatal(err)
	}
	if s.Iteration != 1 {
		t.Fatalf("restore picked %d, want 1", s.Iteration)
	}

	// Case 2: restart writes the reused seq monolithically — every
	// stale shard of that base is debris.
	st2 := NewMemStorage()
	for i := 0; i < 8; i++ {
		if err := st2.Write(shard.ShardName(ckptName(1), i), []byte("stale")); err != nil {
			t.Fatal(err)
		}
	}
	mono := New(st2, SZ{Params: sz.Params{Mode: sz.PWRel, ErrorBound: 1e-6}})
	if _, err := mono.Save(shardSnap(1, shardTestState(150_000))); err != nil {
		t.Fatal(err)
	}
	names, _ = st2.List()
	for _, n := range names {
		if _, _, ok := shard.ShardBase(n); ok {
			t.Fatalf("stale shard %s outlived the monolithic rewrite (%v)", n, names)
		}
	}
}

// TestMixedShardedMonolithicSeries: one storage directory holding both
// layouts — the upgrade path — must restore the newest valid
// checkpoint regardless of layout and fall across layout boundaries.
func TestMixedShardedMonolithicSeries(t *testing.T) {
	st := NewMemStorage()
	enc := SZ{Params: sz.Params{Mode: sz.PWRel, ErrorBound: 1e-6}}
	x := shardTestState(120_000)
	// Alternate layouts with fresh Checkpointers so each syncs its
	// sequence counter off storage, extending the series: seq 1
	// monolithic, seq 2 sharded, seq 3 monolithic.
	m1 := New(st, enc)
	m1.SetKeep(10)
	if _, err := m1.Save(shardSnap(1, x)); err != nil {
		t.Fatal(err)
	}
	sh := newShardedCheckpointer(t, st, 4, 2)
	sh.SetKeep(10)
	saveSharded(t, sh, 2, shardTestState(120_001))
	m2 := New(st, enc)
	m2.SetKeep(10)
	if _, err := m2.Save(shardSnap(3, x)); err != nil {
		t.Fatal(err)
	}

	// A fresh Checkpointer (any sharding config) sees the full series.
	c := newShardedCheckpointer(t, st, 8, 0)
	c.SetKeep(10)
	s, err := c.Restore()
	if err != nil {
		t.Fatal(err)
	}
	if s.Iteration != 3 {
		t.Fatalf("restore picked iteration %d, want newest (3)", s.Iteration)
	}
	// Corrupt the newest (monolithic) checkpoint and fall back across
	// the layout boundary to the sharded seq 2.
	data, _ := st.Read(ckptName(3))
	data[len(data)-1] ^= 0xFF
	_ = st.Write(ckptName(3), data)
	s, err = c.Restore()
	if err != nil {
		t.Fatal(err)
	}
	if s.Iteration != 2 {
		t.Fatalf("fallback picked iteration %d, want sharded 2", s.Iteration)
	}
}

func TestShardedRetentionDeletesGroups(t *testing.T) {
	st := NewMemStorage()
	c := newShardedCheckpointer(t, st, 4, 0)
	// keep defaults to 2: after three saves, seq 1's group must be gone.
	for it := 1; it <= 3; it++ {
		saveSharded(t, c, it, shardTestState(120_000+it))
	}
	names, _ := st.List()
	for _, n := range names {
		if strings.HasPrefix(n, ckptName(1)) {
			t.Fatalf("retention left %s behind (%v)", n, names)
		}
	}
	// 2 groups × (manifest + 4 shards).
	if len(names) != 10 {
		t.Fatalf("storage holds %d objects, want 10: %v", len(names), names)
	}
}

func TestShardedDropLatestRemovesGroup(t *testing.T) {
	st := NewMemStorage()
	c := newShardedCheckpointer(t, st, 4, 0)
	saveSharded(t, c, 1, shardTestState(120_000))
	saveSharded(t, c, 2, shardTestState(120_001))
	if err := c.DropLatest(); err != nil {
		t.Fatal(err)
	}
	names, _ := st.List()
	for _, n := range names {
		if strings.HasPrefix(n, ckptName(2)) {
			t.Fatalf("DropLatest left %s behind", n)
		}
	}
	s, err := c.Restore()
	if err != nil {
		t.Fatal(err)
	}
	if s.Iteration != 1 {
		t.Fatalf("after drop, restore picked %d, want 1", s.Iteration)
	}
}

// TestShardedWriteFailureRollsBackSeq: a shard-write failure must leave
// no manifest, roll the sequence counter back, and keep the previous
// checkpoint restorable — the failure-during-checkpoint contract.
func TestShardedWriteFailureRollsBackSeq(t *testing.T) {
	st := NewMemStorage()
	fs := &flakyShardStorage{Storage: st}
	c := New(fs, SZ{Params: sz.Params{Mode: sz.PWRel, ErrorBound: 1e-6}})
	if err := c.SetSharding(4, 2); err != nil {
		t.Fatal(err)
	}
	saveSharded(t, c, 1, shardTestState(120_000))
	fs.failSub = ".s00002"
	if _, err := c.Save(shardSnap(2, shardTestState(120_001))); err == nil {
		t.Fatal("expected sharded write failure")
	}
	if c.LatestSeq() != 1 {
		t.Fatalf("sequence did not roll back: %d", c.LatestSeq())
	}
	fs.failSub = ""
	s, err := c.Restore()
	if err != nil {
		t.Fatal(err)
	}
	if s.Iteration != 1 {
		t.Fatalf("restore picked %d, want 1", s.Iteration)
	}
}

type flakyShardStorage struct {
	Storage
	failSub string
}

func (s *flakyShardStorage) Write(name string, data []byte) error {
	if s.failSub != "" && strings.Contains(name, s.failSub) {
		return fmt.Errorf("injected shard write failure")
	}
	return s.Storage.Write(name, data)
}

// TestAsyncShardedMatchesSyncMonolithic: the async pipeline with a
// sharded layout must commit checkpoints that decode to exactly the
// bytes a synchronous monolithic save produces — layout and pipeline
// change where bytes live, never what they decode to.
func TestAsyncShardedMatchesSyncMonolithic(t *testing.T) {
	x := shardTestState(150_000)

	syncSt := NewMemStorage()
	syncC := New(syncSt, SZ{Params: sz.Params{Mode: sz.PWRel, ErrorBound: 1e-6}})
	if _, err := syncC.Save(shardSnap(3, x)); err != nil {
		t.Fatal(err)
	}
	want, err := syncC.Restore()
	if err != nil {
		t.Fatal(err)
	}

	asyncSt := NewMemStorage()
	ac := NewAsync(New(asyncSt, SZ{Params: sz.Params{Mode: sz.PWRel, ErrorBound: 1e-6}}))
	if err := ac.SetSharding(8, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := ac.SaveAsync(shardSnap(3, x)); err != nil {
		t.Fatal(err)
	}
	if info, err := ac.Flush(); err != nil {
		t.Fatal(err)
	} else if info.Shards != 8 {
		t.Fatalf("async committed %d shards, want 8", info.Shards)
	}
	got, err := ac.Checkpointer().Restore()
	if err != nil {
		t.Fatal(err)
	}

	if got.Iteration != want.Iteration || len(got.Vectors["x"]) != len(want.Vectors["x"]) {
		t.Fatal("async sharded snapshot shape differs from sync monolithic")
	}
	for i := range want.Vectors["x"] {
		if got.Vectors["x"][i] != want.Vectors["x"][i] {
			t.Fatalf("value %d differs bitwise: %g vs %g", i, got.Vectors["x"][i], want.Vectors["x"][i])
		}
	}
}
