package fti

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
)

// AsyncSaveError is how a failed background save surfaces: the next
// SaveAsync, Flush, or Ticket.Wait returns it instead of the raw
// storage error, carrying the sequence and object name the save was
// committing, the storage attempt count, and the error class — so a
// caller (or a log line) can tell retry exhaustion on a transient
// fault from a genuinely permanent failure without string-matching.
type AsyncSaveError struct {
	Seq      int      // sequence the save would have committed as
	Name     string   // checkpoint object name
	Attempts int      // storage attempts issued (0 when the storage layer didn't say)
	Class    ErrClass // classification of the underlying error
	Err      error
}

// Error formats the failure with its pipeline context.
func (e *AsyncSaveError) Error() string {
	if e.Attempts > 1 && e.Class == ClassTransient {
		return fmt.Sprintf("fti: async save %s (seq %d) exhausted %d storage attempts (%s): %v",
			e.Name, e.Seq, e.Attempts, e.Class, e.Err)
	}
	return fmt.Sprintf("fti: async save %s (seq %d) failed (%s): %v", e.Name, e.Seq, e.Class, e.Err)
}

// Unwrap exposes the underlying error to errors.Is/As.
func (e *AsyncSaveError) Unwrap() error { return e.Err }

// FaultClass re-exports the class for upstream classifiers.
func (e *AsyncSaveError) FaultClass() ErrClass { return e.Class }

// wrapSaveError decorates a background save failure with its context;
// a FaultError from the resilient storage layer contributes its
// attempt count and class, anything else is classified here.
func wrapSaveError(seq int, err error) error {
	ase := &AsyncSaveError{Seq: seq, Name: ckptName(seq), Err: err}
	var fe *FaultError
	if errors.As(err, &fe) {
		ase.Attempts = fe.Attempts
		ase.Class = fe.Class
	} else {
		ase.Class = ClassifyError(err)
	}
	return ase
}

// AsyncCheckpointer is the asynchronous checkpoint pipeline: the
// paper's overhead model (Eqs. 5 and 8) separates checkpoint cost from
// compute cost, and FTI's headline feature is exactly this split — a
// dedicated background flusher so the application only pays for
// capturing its state. The pipeline has three stages:
//
//  1. capture — SaveAsync deep-copies the snapshot into one half of a
//     double buffer. This is the only stage the solver waits for.
//  2. encode — a background goroutine runs the configured Encoder
//     (blocked SZ, lossless, or raw) over the captured copy.
//  3. write — the same goroutine commits the encoded bytes to Storage.
//
// At most one save is in flight: a SaveAsync issued while the previous
// encode+write is still running blocks until it finishes
// (backpressure), which bounds memory at two capture buffers and two
// encode buffers and keeps checkpoint ordering trivial.
//
// Concurrency contract: all AsyncCheckpointer methods, and any direct
// use of the wrapped Checkpointer (SetEncoder, Restore, DropLatest,
// ...), must happen on one goroutine — the solver loop — and direct
// Checkpointer use is only safe after Wait/Flush has drained the
// in-flight save. The background goroutine is the only other toucher
// of the wrapped Checkpointer, and the drain forms the happens-before
// edge between the two.
//
// A background save that fails does not panic and is not lost: the
// error is held and surfaced by the next SaveAsync, Flush, or the
// ticket's Wait, whichever comes first. The failed save rolled its
// sequence number back, so recovery falls back to the previous
// committed checkpoint — the same contract as the paper's
// failure-during-checkpoint path.
type AsyncCheckpointer struct {
	c *Checkpointer

	mu       sync.Mutex
	inflight *asyncJob
	sticky   error     // background failure awaiting surfacing
	stickyJb *asyncJob // the job sticky came from (cleared by its Wait)
	lastInfo Info      // most recent committed save
	commit   int       // sequence of the most recent committed save
	stats    AsyncStats

	// Double buffers: slot flips on every save, so the capture of save
	// n+1 never touches the memory the in-flight encode of save n is
	// reading. (With at-most-one-in-flight the flip is one save ahead
	// of strictly necessary, which is exactly the margin that keeps a
	// Storage implementation that mis-retains its data argument from
	// corrupting an already-written checkpoint.)
	slot    int
	caps    [2]*Snapshot
	encBufs [2][]byte
}

// AsyncStats accounts where the pipeline's time went, in seconds of
// real time. CaptureSeconds + BackpressureSeconds is the total
// solver-visible stall; EncodeWriteSeconds ran in the background and
// splits into EncodeSeconds (the Encoder pass) and WriteSeconds (the
// storage commit) plus scheduling slack. Per-save stage timings are on
// each save's Info (Ticket.Wait, LastInfo) — these are the cumulative
// sums.
type AsyncStats struct {
	Saves               int
	FailedSaves         int // background saves that aborted (rolled back) instead of committing
	CaptureSeconds      float64
	BackpressureSeconds float64
	EncodeWriteSeconds  float64
	EncodeSeconds       float64
	WriteSeconds        float64
}

type asyncJob struct {
	snap   *Snapshot
	slot   int
	seq    int           // sequence the save will commit as if it succeeds
	capSec float64       // capture-stage duration, folded into the Info
	done   chan struct{} // closed when the job's results are published
	info   Info
	err    error
}

// Ticket identifies one asynchronous save.
type Ticket struct {
	// Seq is the sequence number the save will commit under if it
	// succeeds.
	Seq int
	a   *AsyncCheckpointer
	job *asyncJob
}

// Done returns a channel closed when the save has finished (committed
// or failed). A zero Ticket returns a closed channel.
func (t Ticket) Done() <-chan struct{} {
	if t.job == nil {
		ch := make(chan struct{})
		close(ch)
		return ch
	}
	return t.job.done
}

// Wait blocks until the save finishes and returns its Info and error.
// Consuming the error here also clears it from the pipeline, so it is
// not surfaced a second time by the next SaveAsync or Flush.
func (t Ticket) Wait() (Info, error) {
	if t.job == nil {
		return Info{}, fmt.Errorf("fti: wait on zero Ticket")
	}
	<-t.job.done
	t.a.mu.Lock()
	if t.a.stickyJb == t.job {
		t.a.sticky, t.a.stickyJb = nil, nil
	}
	t.a.mu.Unlock()
	return t.job.info, t.job.err
}

// NewAsync wraps a Checkpointer in the asynchronous pipeline. The
// wrapped Checkpointer must not be used directly while a save is in
// flight (drain with Wait or Flush first).
func NewAsync(c *Checkpointer) *AsyncCheckpointer {
	return &AsyncCheckpointer{c: c}
}

// Checkpointer returns the wrapped synchronous Checkpointer. Only safe
// to use after Wait/Flush has drained the in-flight save.
func (a *AsyncCheckpointer) Checkpointer() *Checkpointer { return a.c }

// SetSharding configures the wrapped Checkpointer's sharded storage
// layout (see Checkpointer.SetSharding): the background write stage
// then fans each checkpoint out into shards objects over a bounded
// worker pool and commits a manifest last. The in-flight save, if any,
// is drained first so the layout never changes mid-write.
func (a *AsyncCheckpointer) SetSharding(shards, workers int) error {
	a.drain(false)
	return a.c.SetSharding(shards, workers)
}

// SaveAsync captures s and schedules its encode+write in the
// background. It returns once the capture copy is complete — the
// solver may mutate the snapshot's vectors immediately afterwards. If
// a previous save is still in flight, SaveAsync first blocks until it
// finishes (at-most-one-in-flight backpressure). If a previous
// background save failed, that error is returned now and the new save
// is not started.
func (a *AsyncCheckpointer) SaveAsync(s *Snapshot) (Ticket, error) {
	a.drain(true)
	a.mu.Lock()
	if err := a.sticky; err != nil {
		a.sticky, a.stickyJb = nil, nil
		a.mu.Unlock()
		return Ticket{}, err
	}
	capSpan := a.c.ins.spanOn(obs.TrackSolver, obs.CatCheckpoint, obs.SpanCapture)
	start := time.Now()
	slot := a.slot
	a.slot ^= 1
	a.caps[slot] = copySnapshotInto(a.caps[slot], s)
	job := &asyncJob{snap: a.caps[slot], slot: slot, done: make(chan struct{})}
	job.capSec = time.Since(start).Seconds()
	capSpan.End()
	a.c.ins.observeCapture(job.capSec)
	a.inflight = job
	a.stats.Saves++
	a.stats.CaptureSeconds += job.capSec
	seq := a.c.seq + 1
	job.seq = seq
	a.mu.Unlock()
	go a.run(job)
	return Ticket{Seq: seq, a: a, job: job}, nil
}

// run is the background encode+write stage.
func (a *AsyncCheckpointer) run(job *asyncJob) {
	start := time.Now()
	a.mu.Lock()
	buf := a.encBufs[job.slot]
	a.mu.Unlock()
	payload, info, err := a.c.save(job.snap, buf)
	// Surface the capture stall on the save's own Info, so a Ticket
	// holder (or LastInfo) sees all three stage timings together.
	info.CaptureSeconds = job.capSec
	a.mu.Lock()
	if payload != nil {
		a.encBufs[job.slot] = payload
	}
	if err == nil {
		a.lastInfo = info
		a.commit = info.Seq
		a.stats.EncodeSeconds += info.EncodeSeconds
		a.stats.WriteSeconds += info.WriteSeconds
	} else {
		err = wrapSaveError(job.seq, err)
		a.stats.FailedSaves++
		a.c.ins.observeAsyncAbort()
		a.sticky, a.stickyJb = err, job
	}
	job.info, job.err = info, err
	// Close inside the critical section: anyone who observes
	// inflight == nil under the mutex must also observe the ticket as
	// done, or a non-blocking poll right after a drain could miss a
	// finished save.
	close(job.done)
	a.inflight = nil
	a.stats.EncodeWriteSeconds += time.Since(start).Seconds()
	a.mu.Unlock()
}

// drain blocks until no save is in flight. backpressure marks the wait
// as solver-visible stall in the stats.
func (a *AsyncCheckpointer) drain(backpressure bool) {
	a.mu.Lock()
	job := a.inflight
	a.mu.Unlock()
	if job == nil {
		return
	}
	start := time.Now()
	<-job.done
	if backpressure {
		a.mu.Lock()
		a.stats.BackpressureSeconds += time.Since(start).Seconds()
		a.mu.Unlock()
	}
}

// Wait blocks until no save is in flight. Afterwards the wrapped
// Checkpointer may be used directly (swap encoders, Restore, ...).
// Unlike Flush, Wait leaves any pending background error in place.
func (a *AsyncCheckpointer) Wait() { a.drain(false) }

// WaitBackpressure is Wait with the time spent blocked accounted as
// solver-visible backpressure. Callers draining on the checkpoint path
// (a new save about to be submitted) use it so Stats keeps its
// invariant: CaptureSeconds + BackpressureSeconds is the total stall
// the solver paid.
func (a *AsyncCheckpointer) WaitBackpressure() { a.drain(true) }

// Flush drains the in-flight save and returns the Info of the most
// recent committed checkpoint along with any background error not yet
// surfaced (which it clears).
func (a *AsyncCheckpointer) Flush() (Info, error) {
	a.drain(false)
	a.mu.Lock()
	defer a.mu.Unlock()
	err := a.sticky
	a.sticky, a.stickyJb = nil, nil
	return a.lastInfo, err
}

// InFlight reports whether a save is currently running.
func (a *AsyncCheckpointer) InFlight() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.inflight != nil
}

// CommittedSeq returns the sequence number of the most recent save the
// background stage fully committed to storage, 0 if none. In-flight
// and failed saves are excluded — this is the recovery target.
func (a *AsyncCheckpointer) CommittedSeq() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.commit
}

// LastInfo returns the Info of the most recent committed save.
func (a *AsyncCheckpointer) LastInfo() Info {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.lastInfo
}

// Stats returns a snapshot of the pipeline's accounting.
func (a *AsyncCheckpointer) Stats() AsyncStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.stats
}

// copySnapshotInto deep-copies src into dst, reusing dst's maps and
// vector backing arrays when shapes allow — the capture stage of the
// pipeline, and the reason steady-state checkpointing allocates
// nothing beyond the first two saves.
func copySnapshotInto(dst, src *Snapshot) *Snapshot {
	if dst == nil {
		dst = &Snapshot{
			Scalars: make(map[string]float64, len(src.Scalars)),
			Vectors: make(map[string][]float64, len(src.Vectors)),
		}
	}
	dst.Iteration = src.Iteration
	clear(dst.Scalars)
	for k, v := range src.Scalars {
		dst.Scalars[k] = v
	}
	for k := range dst.Vectors {
		if _, ok := src.Vectors[k]; !ok {
			delete(dst.Vectors, k)
		}
	}
	for k, v := range src.Vectors {
		buf := dst.Vectors[k]
		if cap(buf) < len(v) {
			buf = make([]float64, len(v))
		} else {
			buf = buf[:len(v)]
		}
		copy(buf, v)
		dst.Vectors[k] = buf
	}
	return dst
}
