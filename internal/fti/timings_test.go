package fti

import (
	"testing"
	"time"

	"repro/internal/sparse"
)

// slowEncoder delays Encode so the encode stage has measurable
// duration; slowWriteStorage delays Write likewise.
type slowEncoder struct {
	Encoder
	delay time.Duration
}

func (s slowEncoder) Encode(x []float64) ([]byte, error) {
	time.Sleep(s.delay)
	return s.Encoder.Encode(x)
}

// TestSyncSaveStageTimings: a synchronous Save fills EncodeSeconds and
// WriteSeconds on its Info; CaptureSeconds stays zero (the caller owns
// the capture in sync mode).
func TestSyncSaveStageTimings(t *testing.T) {
	st := NewMemStorage()
	c := New(&hookStorage{Storage: st, onWrite: func(string) error {
		time.Sleep(2 * time.Millisecond)
		return nil
	}}, slowEncoder{Encoder: Raw{}, delay: 2 * time.Millisecond})
	x := sparse.SmoothField(1024, 3)
	info, err := c.Save(testSnapshot(1, x))
	if err != nil {
		t.Fatal(err)
	}
	if info.EncodeSeconds < 0.002 {
		t.Errorf("EncodeSeconds %.6f, want ≥ 2 ms (slow encoder)", info.EncodeSeconds)
	}
	if info.WriteSeconds < 0.002 {
		t.Errorf("WriteSeconds %.6f, want ≥ 2 ms (slow storage)", info.WriteSeconds)
	}
	if info.CaptureSeconds != 0 {
		t.Errorf("sync save reported CaptureSeconds %.6f, want 0", info.CaptureSeconds)
	}
	if info.RawBytes == 0 || info.Bytes == 0 {
		t.Errorf("bytes in/out missing: raw=%d encoded=%d", info.RawBytes, info.Bytes)
	}
}

// TestAsyncTicketStageTimings: the Info surfaced by Ticket.Wait (and
// LastInfo) carries capture, encode, and write durations — the
// pipeline's stall accounting is observable per save, not only
// aggregated in AsyncStats.
func TestAsyncTicketStageTimings(t *testing.T) {
	a := NewAsync(New(NewMemStorage(), slowEncoder{Encoder: Raw{}, delay: 2 * time.Millisecond}))
	x := sparse.SmoothField(1<<16, 7)
	tk, err := a.SaveAsync(testSnapshot(1, x))
	if err != nil {
		t.Fatal(err)
	}
	info, err := tk.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if info.CaptureSeconds <= 0 {
		t.Errorf("CaptureSeconds %.9f, want > 0 (the deep copy)", info.CaptureSeconds)
	}
	if info.EncodeSeconds < 0.002 {
		t.Errorf("EncodeSeconds %.6f, want ≥ 2 ms", info.EncodeSeconds)
	}
	if info.WriteSeconds <= 0 {
		t.Errorf("WriteSeconds %.9f, want > 0", info.WriteSeconds)
	}
	if got := a.LastInfo(); got.CaptureSeconds != info.CaptureSeconds ||
		got.EncodeSeconds != info.EncodeSeconds || got.WriteSeconds != info.WriteSeconds {
		t.Errorf("LastInfo timings %+v differ from ticket's %+v", got, info)
	}

	// The cumulative stats split must cover the per-save stage sums and
	// stay inside the fused background total.
	st := a.Stats()
	if st.EncodeSeconds < info.EncodeSeconds || st.WriteSeconds < info.WriteSeconds {
		t.Errorf("stats stage sums %+v below the save's own %+v", st, info)
	}
	if st.EncodeSeconds+st.WriteSeconds > st.EncodeWriteSeconds+1e-9 {
		t.Errorf("encode %.6f + write %.6f exceed the background total %.6f",
			st.EncodeSeconds, st.WriteSeconds, st.EncodeWriteSeconds)
	}
}
