package fti

import (
	"fmt"
	"testing"
)

// failStorage fails every operation — the "global level down" stand-in.
type failStorage struct{ err error }

func (f failStorage) Write(string, []byte) error  { return f.err }
func (f failStorage) Read(string) ([]byte, error) { return nil, f.err }
func (f failStorage) Delete(string) error         { return f.err }
func (f failStorage) List() ([]string, error)     { return nil, f.err }

func TestTieredGlobalWriteFailurePropagates(t *testing.T) {
	local := NewMemStorage()
	tiered := &Tiered{Local: local, Global: failStorage{err: fmt.Errorf("pfs down")}}
	if err := tiered.Write("a", []byte{1}); err == nil {
		t.Fatal("global write failure must propagate: the global level is the reliability guarantee")
	}
	// The failed write must not leave a local copy that a later read
	// could mistake for durable data.
	if _, err := local.Read("a"); err == nil {
		t.Fatal("local level has a copy of a write that never reached the global level")
	}
}

func TestTieredLocalWriteFailureTolerated(t *testing.T) {
	global := NewMemStorage()
	tiered := &Tiered{Local: failStorage{err: fmt.Errorf("local disk full")}, Global: global}
	if err := tiered.Write("a", []byte{7}); err != nil {
		t.Fatalf("local-level failure must only cost the fast path: %v", err)
	}
	got, err := tiered.Read("a")
	if err != nil || len(got) != 1 || got[0] != 7 {
		t.Fatalf("read after local write failure: %v %v", got, err)
	}
}

func TestTieredReadPrefersLocalFallsBackToGlobal(t *testing.T) {
	local := NewMemStorage()
	global := NewMemStorage()
	tiered := &Tiered{Local: local, Global: global}

	// Distinct contents expose which level served the read.
	if err := local.Write("a", []byte{1}); err != nil {
		t.Fatal(err)
	}
	if err := global.Write("a", []byte{2}); err != nil {
		t.Fatal(err)
	}
	if got, err := tiered.Read("a"); err != nil || got[0] != 1 {
		t.Fatalf("read should prefer the local level: %v %v", got, err)
	}

	// Node-local loss (the failure mode FTI levels exist for).
	if err := local.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if got, err := tiered.Read("a"); err != nil || got[0] != 2 {
		t.Fatalf("read should fall back to the global level: %v %v", got, err)
	}
}

func TestTieredDeleteAppliesToBoth(t *testing.T) {
	local := NewMemStorage()
	global := NewMemStorage()
	tiered := &Tiered{Local: local, Global: global}
	if err := tiered.Write("a", []byte{3}); err != nil {
		t.Fatal(err)
	}
	if err := tiered.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := local.Read("a"); err == nil {
		t.Fatal("delete did not reach the local level")
	}
	if _, err := global.Read("a"); err == nil {
		t.Fatal("delete did not reach the global level")
	}
	// A failing local level must not block the authoritative delete.
	tiered2 := &Tiered{Local: failStorage{err: fmt.Errorf("gone")}, Global: global}
	if err := global.Write("b", []byte{4}); err != nil {
		t.Fatal(err)
	}
	if err := tiered2.Delete("b"); err != nil {
		t.Fatalf("delete with failing local level: %v", err)
	}
	if _, err := global.Read("b"); err == nil {
		t.Fatal("global delete skipped")
	}
}

func TestTieredListsGlobalLevel(t *testing.T) {
	local := NewMemStorage()
	global := NewMemStorage()
	tiered := &Tiered{Local: local, Global: global}
	// Stale local-only junk (e.g. survivors of a partial cleanup) must
	// not appear: the global level is authoritative.
	if err := local.Write("stale", []byte{9}); err != nil {
		t.Fatal(err)
	}
	if err := tiered.Write("a", []byte{1}); err != nil {
		t.Fatal(err)
	}
	names, err := tiered.List()
	if err != nil || len(names) != 1 || names[0] != "a" {
		t.Fatalf("List = %v, %v; want [a]", names, err)
	}
}
