package fti

import (
	"errors"
	"fmt"
	"io/fs"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/fti/shard"
)

// classedErr self-classifies, like the fault injector's errors.
type classedErr struct{ class ErrClass }

func (e *classedErr) Error() string        { return "classed " + e.class.String() + " fault" }
func (e *classedErr) FaultClass() ErrClass { return e.class }

// flakyStore fails the first N attempts of each named op with err,
// then forwards to an in-memory store.
type flakyStore struct {
	*MemStorage
	mu       sync.Mutex
	failures map[string]int // "op:name" → attempts left to fail
	err      error
	attempts map[string]int
}

func newFlakyStore(err error) *flakyStore {
	return &flakyStore{
		MemStorage: NewMemStorage(),
		failures:   map[string]int{},
		err:        err,
		attempts:   map[string]int{},
	}
}

func (f *flakyStore) fail(op, name string, n int) {
	f.mu.Lock()
	f.failures[op+":"+name] = n
	f.mu.Unlock()
}

func (f *flakyStore) gate(op, name string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	key := op + ":" + name
	f.attempts[key]++
	if f.failures[key] > 0 {
		f.failures[key]--
		return f.err
	}
	return nil
}

func (f *flakyStore) Write(name string, data []byte) error {
	if err := f.gate("write", name); err != nil {
		return err
	}
	return f.MemStorage.Write(name, data)
}

func (f *flakyStore) Read(name string) ([]byte, error) {
	if err := f.gate("read", name); err != nil {
		return nil, err
	}
	return f.MemStorage.Read(name)
}

// sleepRecorder substitutes FaultPolicy.Sleep so tests observe the
// backoff schedule without wall-clock waits.
type sleepRecorder struct {
	mu    sync.Mutex
	slept []time.Duration
}

func (s *sleepRecorder) sleep(d time.Duration) {
	s.mu.Lock()
	s.slept = append(s.slept, d)
	s.mu.Unlock()
}

func (s *sleepRecorder) all() []time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]time.Duration(nil), s.slept...)
}

func TestResilientAbsorbsTransientFaults(t *testing.T) {
	fs := newFlakyStore(&classedErr{ClassTransient})
	fs.fail("write", "a", 2)
	rec := &sleepRecorder{}
	r := NewResilient(fs, FaultPolicy{MaxRetries: 4, Seed: 1, Sleep: rec.sleep})
	if err := r.Write("a", []byte{1, 2}); err != nil {
		t.Fatalf("write should have been absorbed: %v", err)
	}
	got, err := r.Read("a")
	if err != nil || len(got) != 2 {
		t.Fatalf("read back: %v %v", got, err)
	}
	st := r.Stats()
	if st.Retries != 2 || st.Recovered != 1 || st.Exhausted != 0 || st.Permanent != 0 {
		t.Fatalf("stats %+v: want 2 retries, 1 recovered", st)
	}
	if len(rec.all()) != 2 {
		t.Fatalf("slept %d times, want 2", len(rec.all()))
	}
}

func TestResilientPermanentFailsFast(t *testing.T) {
	fs := newFlakyStore(&classedErr{ClassPermanent})
	fs.fail("write", "a", 1)
	rec := &sleepRecorder{}
	r := NewResilient(fs, FaultPolicy{MaxRetries: 4, Sleep: rec.sleep})
	err := r.Write("a", []byte{1})
	var fe *FaultError
	if !errors.As(err, &fe) {
		t.Fatalf("want *FaultError, got %v", err)
	}
	if fe.Attempts != 1 || fe.Class != ClassPermanent || fe.Op != "write" || fe.Name != "a" {
		t.Fatalf("fault error %+v", fe)
	}
	if len(rec.all()) != 0 {
		t.Fatal("permanent errors must not back off")
	}
	if st := r.Stats(); st.Permanent != 1 {
		t.Fatalf("stats %+v: want 1 permanent", st)
	}
}

func TestResilientExhaustsRetries(t *testing.T) {
	fs := newFlakyStore(&classedErr{ClassTransient})
	fs.fail("write", "a", 100)
	rec := &sleepRecorder{}
	r := NewResilient(fs, FaultPolicy{MaxRetries: 3, Sleep: rec.sleep})
	err := r.Write("a", []byte{1})
	var fe *FaultError
	if !errors.As(err, &fe) {
		t.Fatalf("want *FaultError, got %v", err)
	}
	if fe.Attempts != 4 || fe.Class != ClassTransient {
		t.Fatalf("fault error %+v: want 4 attempts, transient", fe)
	}
	if len(rec.all()) != 3 {
		t.Fatalf("slept %d times, want 3", len(rec.all()))
	}
	if st := r.Stats(); st.Exhausted != 1 {
		t.Fatalf("stats %+v: want 1 exhausted", st)
	}
}

func TestResilientOpBudgetBoundsBackoff(t *testing.T) {
	fs := newFlakyStore(&classedErr{ClassTransient})
	fs.fail("write", "a", 100)
	rec := &sleepRecorder{}
	// The first backoff step is ≥ BaseDelay/2 = 5ms > the 4ms budget,
	// so the op must give up without sleeping at all.
	r := NewResilient(fs, FaultPolicy{
		MaxRetries: 10, BaseDelay: 10 * time.Millisecond,
		OpBudget: 4 * time.Millisecond, Sleep: rec.sleep,
	})
	err := r.Write("a", []byte{1})
	var fe *FaultError
	if !errors.As(err, &fe) || fe.Attempts != 1 {
		t.Fatalf("want 1-attempt exhaustion, got %v", err)
	}
	if len(rec.all()) != 0 {
		t.Fatalf("budget exceeded before the first retry; slept %v", rec.all())
	}
}

func TestResilientBackoffDeterministicAndCapped(t *testing.T) {
	schedule := func() []time.Duration {
		fs := newFlakyStore(&classedErr{ClassTransient})
		fs.fail("write", "a", 100)
		rec := &sleepRecorder{}
		r := NewResilient(fs, FaultPolicy{
			MaxRetries: 8, BaseDelay: time.Millisecond,
			MaxDelay: 8 * time.Millisecond, Seed: 42, Sleep: rec.sleep,
		})
		_ = r.Write("a", []byte{1})
		return rec.all()
	}
	a, b := schedule(), schedule()
	if len(a) != 8 {
		t.Fatalf("want 8 backoffs, got %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seeded backoff differs at step %d: %v vs %v", i, a[i], b[i])
		}
		step := time.Millisecond << uint(i)
		if step > 8*time.Millisecond {
			step = 8 * time.Millisecond
		}
		if a[i] < step/2 || a[i] > step {
			t.Fatalf("backoff %d = %v outside [%v, %v]", i, a[i], step/2, step)
		}
	}
}

// stallStore blocks the first Read until released; later reads return
// immediately. It drives the hedged-read race deterministically.
type stallStore struct {
	*MemStorage
	mu      sync.Mutex
	reads   int
	release chan struct{}
}

func (s *stallStore) Read(name string) ([]byte, error) {
	s.mu.Lock()
	first := s.reads == 0
	s.reads++
	s.mu.Unlock()
	if first {
		<-s.release
	}
	return s.MemStorage.Read(name)
}

func TestResilientHedgedReadWins(t *testing.T) {
	ss := &stallStore{MemStorage: NewMemStorage(), release: make(chan struct{})}
	if err := ss.MemStorage.Write("a", []byte{7}); err != nil {
		t.Fatal(err)
	}
	defer close(ss.release) // unblock the stalled primary at test end
	r := NewResilient(ss, FaultPolicy{HedgeDelay: time.Millisecond})
	done := make(chan error, 1)
	var got []byte
	go func() {
		var err error
		got, err = r.Read("a")
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil || len(got) != 1 || got[0] != 7 {
			t.Fatalf("hedged read: %v %v", got, err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("hedged read never completed; the hedge was not issued")
	}
	st := r.Stats()
	if st.HedgedReads != 1 || st.HedgeWins != 1 {
		t.Fatalf("stats %+v: want the hedge to be armed and to win", st)
	}
}

func TestClassifyError(t *testing.T) {
	cases := []struct {
		err  error
		want ErrClass
	}{
		{&classedErr{ClassCorruption}, ClassCorruption},
		{&classedErr{ClassPermanent}, ClassPermanent},
		{fmt.Errorf("wrap: %w", &classedErr{ClassPermanent}), ClassPermanent},
		{&FaultError{Class: ClassTransient, Err: errors.New("x")}, ClassTransient},
		{fs.ErrNotExist, ClassPermanent},
		{fs.ErrPermission, ClassPermanent},
		{syscall.EIO, ClassTransient},
		{syscall.EINTR, ClassTransient},
		{syscall.ETIMEDOUT, ClassTransient},
		{syscall.ENOSPC, ClassPermanent},
		{syscall.EROFS, ClassPermanent},
		{errors.New("fti: object \"x\" not found"), ClassPermanent},
		{errors.New("some mysterious blip"), ClassTransient},
	}
	for _, c := range cases {
		if got := ClassifyError(c.err); got != c.want {
			t.Errorf("ClassifyError(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

// batchProbe records whether the batch path was taken.
type batchProbe struct {
	*MemStorage
	batched int
}

func (b *batchProbe) WriteBatched(name string, data []byte) error {
	b.batched++
	return b.MemStorage.Write(name, data)
}

func TestResilientPreservesBatchPath(t *testing.T) {
	bp := &batchProbe{MemStorage: NewMemStorage()}
	r := NewResilient(bp, FaultPolicy{})
	if err := r.WriteBatched("a", []byte{1}); err != nil {
		t.Fatal(err)
	}
	if bp.batched != 1 {
		t.Fatalf("batch path not taken (batched=%d)", bp.batched)
	}
	// A store without a batch path silently degrades to Write.
	r2 := NewResilient(NewMemStorage(), FaultPolicy{})
	if err := r2.WriteBatched("b", []byte{2}); err != nil {
		t.Fatal(err)
	}
	if got, err := r2.Read("b"); err != nil || len(got) != 1 {
		t.Fatalf("fallback write not visible: %v %v", got, err)
	}
}

func TestResilientCheckpointRoundTrip(t *testing.T) {
	// End to end: a Checkpointer over a flaky store (every object's
	// first write attempt fails) commits and restores cleanly.
	fs := newFlakyStore(&classedErr{ClassTransient})
	r := NewResilient(fs, FaultPolicy{MaxRetries: 2, Sleep: func(time.Duration) {}})
	c := New(r, Raw{})
	if err := c.SetSharding(4, 2); err != nil {
		t.Fatal(err)
	}
	x := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	c.Protect("x", &x)
	// Fail the first attempt of every shard object of the next group.
	base := ckptName(1)
	for i := 0; i < 4; i++ {
		fs.fail("write", shard.ShardName(base, i), 1)
	}
	fs.fail("write", base, 1)
	if _, err := c.Checkpoint(); err != nil {
		t.Fatalf("checkpoint under flaky store: %v", err)
	}
	for i := range x {
		x[i] = 0
	}
	if err := c.Recover(); err != nil {
		t.Fatalf("recover: %v", err)
	}
	if x[7] != 8 {
		t.Fatalf("restored state wrong: %v", x)
	}
	if st := r.Stats(); st.Recovered != 5 {
		t.Fatalf("stats %+v: want all 5 object writes recovered", st)
	}
}
