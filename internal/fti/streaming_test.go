package fti

import (
	"math"
	"testing"

	"repro/internal/fti/shard"
	"repro/internal/lossless"
	"repro/internal/sparse"
	"repro/internal/sz"
)

// streamState builds a smooth positive state large enough that the SZ
// encoder emits the blocked SZG2 container with many blocks.
func streamState(n int, seed int64) []float64 {
	x := sparse.SmoothField(n, seed)
	for i := range x {
		x[i] += 2.5
	}
	return x
}

// streamSnap is a representative snapshot: one large vector (SZG2 under
// SZ), one small vector (legacy SZG1 under SZ), scalars, iteration.
func streamSnap(it int, big, small []float64) *Snapshot {
	return &Snapshot{
		Iteration: it,
		Scalars:   map[string]float64{"rho": 0.125, "int:k": 7},
		Vectors:   map[string][]float64{"x": big, "p": small},
	}
}

// snapshotsBitwiseEqual fails the test unless a and b match exactly.
func snapshotsBitwiseEqual(t *testing.T, label string, a, b *Snapshot) {
	t.Helper()
	if a.Iteration != b.Iteration {
		t.Fatalf("%s: iteration %d != %d", label, a.Iteration, b.Iteration)
	}
	if len(a.Scalars) != len(b.Scalars) || len(a.Vectors) != len(b.Vectors) {
		t.Fatalf("%s: shape mismatch", label)
	}
	for k, v := range a.Scalars {
		if w, ok := b.Scalars[k]; !ok || math.Float64bits(v) != math.Float64bits(w) {
			t.Fatalf("%s: scalar %q %v != %v", label, k, v, b.Scalars[k])
		}
	}
	for k, v := range a.Vectors {
		w, ok := b.Vectors[k]
		if !ok || len(v) != len(w) {
			t.Fatalf("%s: vector %q shape mismatch", label, k)
		}
		for i := range v {
			if math.Float64bits(v[i]) != math.Float64bits(w[i]) {
				t.Fatalf("%s: vector %q index %d: %g != %g", label, k, i, v[i], w[i])
			}
		}
	}
}

// streamingEncoders is the encoder matrix for the equivalence tests:
// the SZ blocked container (the streaming fast path), plus every
// encoder that takes the stitched whole-blob path.
func streamingEncoders() []Encoder {
	return []Encoder{
		SZ{Params: sz.Params{Mode: sz.PWRel, ErrorBound: 1e-4, BlockSize: 4096}},
		SZ{Params: sz.Params{Mode: sz.Abs, ErrorBound: 1e-5}},
		Raw{},
		Lossless{Codec: lossless.Flate{}},
		Lossless{Codec: lossless.FPC{}},
		ZFP{Bound: 1e-5},
	}
}

// TestStreamingRestoreMatchesReassembled: across every encoder and
// layout, the streaming restore must produce snapshots bitwise
// identical to the legacy reassemble-then-decode path.
func TestStreamingRestoreMatchesReassembled(t *testing.T) {
	big := streamState(60_000, 1)
	small := streamState(500, 2)
	for _, enc := range streamingEncoders() {
		for _, shards := range []int{1, 3, 8} {
			st := NewMemStorage()
			c := New(st, enc)
			if err := c.SetSharding(shards, 2); err != nil {
				t.Fatal(err)
			}
			if _, err := c.Save(streamSnap(42, big, small)); err != nil {
				t.Fatalf("%s shards=%d: %v", enc.Name(), shards, err)
			}
			legacy, err := c.RestoreReassembled()
			if err != nil {
				t.Fatalf("%s shards=%d legacy: %v", enc.Name(), shards, err)
			}
			streaming, err := c.Restore()
			if err != nil {
				t.Fatalf("%s shards=%d streaming: %v", enc.Name(), shards, err)
			}
			snapshotsBitwiseEqual(t, enc.Name(), legacy, streaming)
		}
	}
}

// TestStreamingRestoreMatchesReassembledAsync extends the matrix to
// checkpoints written by the asynchronous pipeline: sharded/monolithic
// × sync/async writers must all restore bitwise identically through
// both decode paths.
func TestStreamingRestoreMatchesReassembledAsync(t *testing.T) {
	big := streamState(60_000, 3)
	small := streamState(500, 4)
	enc := SZ{Params: sz.Params{Mode: sz.PWRel, ErrorBound: 1e-4, BlockSize: 4096}}
	for _, shards := range []int{1, 8} {
		for _, async := range []bool{false, true} {
			st := NewMemStorage()
			c := New(st, enc)
			if err := c.SetSharding(shards, 2); err != nil {
				t.Fatal(err)
			}
			if async {
				ac := NewAsync(c)
				if _, err := ac.SaveAsync(streamSnap(42, big, small)); err != nil {
					t.Fatal(err)
				}
				if _, err := ac.Flush(); err != nil {
					t.Fatal(err)
				}
			} else if _, err := c.Save(streamSnap(42, big, small)); err != nil {
				t.Fatal(err)
			}
			legacy, err := c.RestoreReassembled()
			if err != nil {
				t.Fatalf("shards=%d async=%v legacy: %v", shards, async, err)
			}
			streaming, err := c.Restore()
			if err != nil {
				t.Fatalf("shards=%d async=%v streaming: %v", shards, async, err)
			}
			snapshotsBitwiseEqual(t, "async-matrix", legacy, streaming)
		}
	}
}

// TestRestoreIntoDecodesInPlace: a target with matching name and
// length must receive the decode in place (the snapshot aliases it);
// mismatched lengths must get fresh allocations.
func TestRestoreIntoDecodesInPlace(t *testing.T) {
	big := streamState(60_000, 5)
	small := streamState(500, 6)
	enc := SZ{Params: sz.Params{Mode: sz.PWRel, ErrorBound: 1e-4, BlockSize: 4096}}
	for _, shards := range []int{1, 8} {
		st := NewMemStorage()
		c := New(st, enc)
		if err := c.SetSharding(shards, 2); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Save(streamSnap(7, big, small)); err != nil {
			t.Fatal(err)
		}
		want, err := c.RestoreReassembled()
		if err != nil {
			t.Fatal(err)
		}
		tx := make([]float64, len(big))
		tp := make([]float64, len(small)+1) // length mismatch: must not be used
		s, err := c.RestoreInto(map[string][]float64{"x": tx, "p": tp})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if &s.Vectors["x"][0] != &tx[0] {
			t.Fatalf("shards=%d: x not decoded into the provided target", shards)
		}
		if len(s.Vectors["p"]) != len(small) || &s.Vectors["p"][0] == &tp[0] {
			t.Fatalf("shards=%d: mismatched-length target misused", shards)
		}
		snapshotsBitwiseEqual(t, "restore-into", want, s)
	}
}

// TestRecoverInPlaceAndLengthMismatch: Recover must decode into the
// registered slices without replacing them when lengths match, and on
// a length change must install a fresh copy that does not alias the
// restored snapshot's arrays (the retained-Snapshot safety fix).
func TestRecoverInPlaceAndLengthMismatch(t *testing.T) {
	big := streamState(60_000, 7)
	small := streamState(500, 8)
	enc := SZ{Params: sz.Params{Mode: sz.PWRel, ErrorBound: 1e-4, BlockSize: 4096}}
	st := NewMemStorage()
	c := New(st, enc)
	if err := c.SetSharding(8, 2); err != nil {
		t.Fatal(err)
	}

	x := append([]float64(nil), big...)
	p := append([]float64(nil), small...)
	it, k := 0, 0
	rho := 0.0
	c.Protect("x", &x)
	c.Protect("p", &p)
	c.ProtectInt("iteration", &it)
	c.ProtectInt("k", &k)
	c.ProtectFloat("rho", &rho)
	it, k, rho = 42, 7, 0.125
	if _, err := c.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	want, err := c.RestoreReassembled()
	if err != nil {
		t.Fatal(err)
	}

	// Matching lengths: decode lands in the registered backing arrays.
	it, k, rho = 0, 0, 0
	for i := range x {
		x[i] = -1
	}
	x0, p0 := &x[0], &p[0]
	if err := c.Recover(); err != nil {
		t.Fatal(err)
	}
	if &x[0] != x0 || &p[0] != p0 {
		t.Fatal("Recover replaced registered slices despite matching lengths")
	}
	if it != 42 || k != 7 || rho != 0.125 {
		t.Fatalf("scalars not recovered: it=%d k=%d rho=%v", it, k, rho)
	}
	for i := range x {
		if math.Float64bits(x[i]) != math.Float64bits(want.Vectors["x"][i]) {
			t.Fatalf("x[%d] = %g, want %g", i, x[i], want.Vectors["x"][i])
		}
	}

	// Length mismatch: a fresh slice is installed, and mutating it must
	// not reach the snapshot a later Restore returns (no aliasing).
	x = make([]float64, 10)
	if err := c.Recover(); err != nil {
		t.Fatal(err)
	}
	if len(x) != len(big) {
		t.Fatalf("recovered x has %d elements, want %d", len(x), len(big))
	}
	x[0] = math.Inf(1)
	s2, err := c.Restore()
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(s2.Vectors["x"][0], 1) {
		t.Fatal("mutating the recovered slice reached a restored snapshot (aliasing)")
	}
}

// corrupt flips a byte of a stored object in place.
func corruptObject(t *testing.T, st *MemStorage, name string, flip int) {
	t.Helper()
	data, err := st.Read(name)
	if err != nil {
		t.Fatal(err)
	}
	data[flip%len(data)] ^= 0xff
	if err := st.Write(name, data); err != nil {
		t.Fatal(err)
	}
}

// TestStreamingFallbackMidStream: a corrupt or missing shard detected
// while streaming — possibly after blocks of the bad checkpoint were
// already decoded into the registered vectors — must land recovery on
// the previous committed checkpoint, for sync- and async-written
// series alike.
func TestStreamingFallbackMidStream(t *testing.T) {
	enc := SZ{Params: sz.Params{Mode: sz.PWRel, ErrorBound: 1e-4, BlockSize: 4096}}
	gen1 := streamState(60_000, 9)
	gen2 := streamState(60_000, 10)
	small := streamState(500, 11)

	for _, async := range []bool{false, true} {
		for _, breakIt := range []string{"corrupt-shard", "missing-shard", "corrupt-manifest"} {
			st := NewMemStorage()
			c := New(st, enc)
			if err := c.SetSharding(6, 2); err != nil {
				t.Fatal(err)
			}
			save := func(it int, x []float64) {
				t.Helper()
				if async {
					ac := NewAsync(c)
					if _, err := ac.SaveAsync(streamSnap(it, x, small)); err != nil {
						t.Fatal(err)
					}
					if _, err := ac.Flush(); err != nil {
						t.Fatal(err)
					}
				} else if _, err := c.Save(streamSnap(it, x, small)); err != nil {
					t.Fatal(err)
				}
			}
			save(10, gen1)
			save(20, gen2)
			want, err := c.RestoreReassembled() // gen2, while still intact
			if err != nil {
				t.Fatal(err)
			}
			switch breakIt {
			case "corrupt-shard":
				corruptObject(t, st, "ckpt-000000000002.s00003", 100)
			case "missing-shard":
				if err := st.Delete("ckpt-000000000002.s00001"); err != nil {
					t.Fatal(err)
				}
			case "corrupt-manifest":
				corruptObject(t, st, "ckpt-000000000002", 9)
			}

			// Decode into live targets, as Recover does: partial decode
			// of the bad generation must be fully overwritten by the
			// fallback to checkpoint 1.
			x := append([]float64(nil), want.Vectors["x"]...)
			p := append([]float64(nil), want.Vectors["p"]...)
			it := 0
			c.Protect("x", &x)
			c.Protect("p", &p)
			c.ProtectInt("iteration", &it)
			if err := c.Recover(); err != nil {
				t.Fatalf("async=%v %s: %v", async, breakIt, err)
			}
			if it != 10 {
				t.Fatalf("async=%v %s: recovered iteration %d, want fallback to 10", async, breakIt, it)
			}
			prev, err := c.RestoreReassembled() // now resolves to checkpoint 1
			if err != nil {
				t.Fatal(err)
			}
			if prev.Iteration != 10 {
				t.Fatalf("fallback target is iteration %d", prev.Iteration)
			}
			for i := range x {
				if math.Float64bits(x[i]) != math.Float64bits(prev.Vectors["x"][i]) {
					t.Fatalf("async=%v %s: x[%d] not from the fallback checkpoint", async, breakIt, i)
				}
			}
		}
	}
}

// TestStreamingUnalignedCuts: shard cuts that ignore block boundaries
// (no aligned offsets handed to the writer) force blocks to straddle
// shards; the stitched-block path must still restore bitwise
// identically.
func TestStreamingUnalignedCuts(t *testing.T) {
	big := streamState(60_000, 12)
	enc := SZ{Params: sz.Params{Mode: sz.PWRel, ErrorBound: 1e-4, BlockSize: 4096}}
	st := NewMemStorage()
	c := New(st, enc)

	// Encode the snapshot exactly as Save would, then shard it with
	// nil alignment so cuts fall mid-block.
	payload, _, _, _, err := encodeSnapshot(streamSnap(5, big, big[:500]), enc, nil, false, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	c.seq = 1
	if _, err := shard.Write(st, ckptName(1), enc.Name(), payload, nil, shard.Options{Shards: 7}); err != nil {
		t.Fatal(err)
	}
	legacy, err := c.RestoreReassembled()
	if err != nil {
		t.Fatal(err)
	}
	streaming, err := c.Restore()
	if err != nil {
		t.Fatal(err)
	}
	snapshotsBitwiseEqual(t, "unaligned", legacy, streaming)
}
