package fti

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"
	"strings"

	"repro/internal/fti/shard"
)

// Crash consistency. The commit protocol (DirStorage.write plus the
// shard layer's manifest-last group commit) can be interrupted at five
// distinct points, each leaving a different artifact:
//
//  1. temp file written, not fsynced — a "*.tmp" file whose content
//     may be partial; the final name never existed.
//  2. temp file fsynced, not renamed — a complete "*.tmp" file; the
//     final name never existed.
//  3. renamed, directory not fsynced — after the crash the file either
//     survived (commit happened) or vanished (commit never happened);
//     both are consistent states, which is the point of the protocol.
//  4. shard objects written, manifest not committed — orphan
//     "<base>.sNNNNN" objects with no base; the group never existed.
//  5. manifest temp written/partial — case 1/2 under the base name;
//     the group never became visible.
//
// Only after the manifest's rename is durable (its Write's directory
// fsync) does the group exist. Every artifact of points 1–5 is
// invisible to Restore (List hides temp files; orphan shards have no
// base), but they consume space and — for stale temp files and shards
// reusing a sequence number after a crash-restart — can shadow later
// writes. Fsck is the startup sweep that removes them, and
// additionally verifies that every visible checkpoint is *fully*
// committed (manifest parseable, all shards present with matching
// size and CRC32C; monolithic payloads passing their IEEE CRC),
// garbage-collecting any that are not, so that after Fsck returns,
// List exposes only checkpoints Restore would accept.
//
// Fsck must run while no writer is active (startup, before the
// Checkpointer issues saves): the orphan-shard and temp sweeps cannot
// distinguish a crash's debris from a commit in flight.

// FsckReport says what the sweep found and removed.
type FsckReport struct {
	TempRemoved    []string // stale temp files unlinked
	OrphansRemoved []string // shard objects with no (or no matching) committed base
	GroupsRemoved  []string // partially committed or corrupt checkpoint bases GC'd
	Committed      []string // checkpoint bases that verified fully committed
}

// Clean reports whether the sweep found nothing to repair.
func (r *FsckReport) Clean() bool {
	return len(r.TempRemoved) == 0 && len(r.OrphansRemoved) == 0 && len(r.GroupsRemoved) == 0
}

// String summarizes the sweep for logs.
func (r *FsckReport) String() string {
	return fmt.Sprintf("fsck: %d committed, %d partial group(s) removed, %d orphan shard(s) removed, %d temp file(s) removed",
		len(r.Committed), len(r.GroupsRemoved), len(r.OrphansRemoved), len(r.TempRemoved))
}

// Fsck sweeps storage into a crash-consistent state: stale temp files
// and orphan shard objects are removed, every visible checkpoint is
// integrity-verified end to end, and partially committed or corrupt
// groups are garbage-collected (manifest first, so the group stops
// being a recovery target before its shards go). Static blobs and
// unrecognized names are left untouched. After a clean return, List
// exposes only fully committed checkpoints and Recover lands on the
// newest of them.
func Fsck(st Storage) (*FsckReport, error) {
	rep := &FsckReport{}
	if ts, ok := st.(TempSweeper); ok {
		removed, err := ts.SweepTemp()
		if err != nil {
			return rep, err
		}
		rep.TempRemoved = append(rep.TempRemoved, removed...)
	}
	names, err := st.List()
	if err != nil {
		return rep, err
	}
	// Stores whose List exposes in-progress names (MemStorage under a
	// crash injector) get the generic temp sweep.
	var bases []string
	shardsByBase := map[string][]string{}
	for _, n := range names {
		if strings.HasSuffix(n, ".tmp") {
			if err := st.Delete(n); err != nil {
				return rep, err
			}
			rep.TempRemoved = append(rep.TempRemoved, n)
			continue
		}
		if base, _, ok := shard.ShardBase(n); ok {
			if _, isCkpt := parseCkptName(base); isCkpt {
				shardsByBase[base] = append(shardsByBase[base], n)
				continue
			}
		}
		if _, ok := parseCkptName(n); ok {
			bases = append(bases, n)
		}
	}
	sort.Strings(bases)
	liveShards := map[string]bool{}
	for _, base := range bases {
		man, err := verifyGroup(st, base)
		if err != nil {
			if derr := shard.Delete(st, base); derr != nil {
				return rep, derr
			}
			rep.GroupsRemoved = append(rep.GroupsRemoved, base)
			continue
		}
		rep.Committed = append(rep.Committed, base)
		if man != nil {
			for _, s := range man.Shards {
				liveShards[s.Name] = true
			}
		}
	}
	committed := map[string]bool{}
	for _, b := range rep.Committed {
		committed[b] = true
	}
	for base, objs := range shardsByBase {
		for _, n := range objs {
			if committed[base] && liveShards[n] {
				continue
			}
			if err := st.Delete(n); err != nil {
				return rep, err
			}
			rep.OrphansRemoved = append(rep.OrphansRemoved, n)
		}
	}
	sort.Strings(rep.TempRemoved)
	sort.Strings(rep.OrphansRemoved)
	return rep, nil
}

// verifyGroup integrity-checks the checkpoint stored under base: for a
// sharded group, the manifest must parse and every shard must be
// present with its manifest size and CRC32C; for a monolithic object,
// the payload must carry the snapshot magic and pass its IEEE CRC
// trailer. It returns the parsed manifest (nil for monolithic) on
// success, and the first integrity error otherwise.
func verifyGroup(st Storage, base string) (*shard.Manifest, error) {
	data, err := st.Read(base)
	if err != nil {
		return nil, err
	}
	return verifyLoadedGroup(st, data)
}

// verifyLoadedGroup is verifyGroup for an already-read base object
// (the scrubber reads the base itself so a group vanishing under a
// concurrent gc is distinguishable from a corrupt one).
func verifyLoadedGroup(st Storage, data []byte) (*shard.Manifest, error) {
	if !shard.IsManifest(data) {
		return nil, verifyMonolithic(data)
	}
	man, err := shard.ParseManifest(data)
	if err != nil {
		return nil, err
	}
	for _, s := range man.Shards {
		chunk, err := st.Read(s.Name)
		if err != nil {
			return nil, fmt.Errorf("fti: shard %s: %w", s.Name, err)
		}
		if len(chunk) != s.Size {
			return nil, fmt.Errorf("fti: shard %s is %d bytes, manifest says %d", s.Name, len(chunk), s.Size)
		}
		if shard.Checksum(chunk) != s.CRC {
			return nil, fmt.Errorf("fti: shard %s fails its CRC32C", s.Name)
		}
	}
	return man, nil
}

// verifyMonolithic checks a monolithic snapshot payload's framing:
// magic plus the IEEE CRC32 trailer over everything before it.
func verifyMonolithic(data []byte) error {
	if len(data) < len(fileMagic)+4 {
		return fmt.Errorf("fti: truncated checkpoint payload")
	}
	if string(data[:len(fileMagic)]) != fileMagic {
		return fmt.Errorf("fti: bad checkpoint magic")
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(trailer) {
		return fmt.Errorf("fti: checkpoint CRC mismatch")
	}
	return nil
}
