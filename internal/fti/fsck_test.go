package fti

import (
	"errors"
	"path/filepath"
	"sync"
	"testing"
)

// killStore simulates a crash at an exact point in the commit
// protocol: after `after` successful writes, the next write tears (a
// partial "*.tmp" artifact lands on the inner store) and every
// operation from then on fails — the process is dead.
type killStore struct {
	inner Storage
	mu    sync.Mutex
	after int // successful writes before the kill; -1 = never
	dead  bool
}

var errKilled = errors.New("killStore: process killed")

func (k *killStore) Write(name string, data []byte) error {
	k.mu.Lock()
	if k.dead {
		k.mu.Unlock()
		return errKilled
	}
	if k.after == 0 {
		k.dead = true
		k.mu.Unlock()
		// Crash points 1–2: the temp file exists (possibly partial), the
		// final name never did.
		_ = k.inner.Write(name+".tmp", data[:len(data)/2])
		return errKilled
	}
	if k.after > 0 {
		k.after--
	}
	k.mu.Unlock()
	return k.inner.Write(name, data)
}

func (k *killStore) gate() error {
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.dead {
		return errKilled
	}
	return nil
}

func (k *killStore) Read(name string) ([]byte, error) {
	if err := k.gate(); err != nil {
		return nil, err
	}
	return k.inner.Read(name)
}

func (k *killStore) Delete(name string) error {
	if err := k.gate(); err != nil {
		return err
	}
	return k.inner.Delete(name)
}

func (k *killStore) List() ([]string, error) {
	if err := k.gate(); err != nil {
		return nil, err
	}
	return k.inner.List()
}

// TestFsckCrashPointMatrix kills the commit protocol after every
// possible number of completed object writes — monolithic (1 op) and
// sharded (S shard ops + the manifest) — then verifies the restart
// path: Fsck leaves storage consistent, List exposes only fully
// committed checkpoints, and Recover lands on the newest of them.
func TestFsckCrashPointMatrix(t *testing.T) {
	for _, tc := range []struct {
		name   string
		shards int // 0 = monolithic
	}{
		{"monolithic", 0},
		{"sharded", 4},
	} {
		opsPerCkpt := 1
		if tc.shards > 0 {
			opsPerCkpt = tc.shards + 1 // shards then the manifest
		}
		for kill := 0; kill <= opsPerCkpt; kill++ {
			t.Run(tc.name+"/kill-after-"+string(rune('0'+kill)), func(t *testing.T) {
				mem := NewMemStorage()
				build := func(st Storage) (*Checkpointer, *[]float64) {
					c := New(st, Raw{})
					if tc.shards > 0 {
						if err := c.SetSharding(tc.shards, 1); err != nil {
							t.Fatal(err)
						}
					}
					x := make([]float64, 64)
					c.Protect("x", &x)
					return c, &x
				}
				c, x := build(mem)
				for i := range *x {
					(*x)[i] = 1
				}
				if _, err := c.Checkpoint(); err != nil {
					t.Fatalf("first checkpoint: %v", err)
				}
				// Second checkpoint dies after `kill` completed writes.
				ks := &killStore{inner: mem, after: kill}
				c2, x2 := build(ks)
				for i := range *x2 {
					(*x2)[i] = 2
				}
				_, err := c2.Checkpoint()
				committed2 := kill >= opsPerCkpt
				if committed2 != (err == nil) {
					t.Fatalf("kill after %d/%d ops: checkpoint err=%v", kill, opsPerCkpt, err)
				}

				// Restart: fsck the store the crash left behind, then
				// recover with a fresh Checkpointer.
				rep, err := Fsck(mem)
				if err != nil {
					t.Fatalf("fsck: %v", err)
				}
				wantCommitted := 1
				if committed2 {
					wantCommitted = 2
				}
				if len(rep.Committed) != wantCommitted {
					t.Fatalf("fsck committed %v, want %d groups", rep.Committed, wantCommitted)
				}
				// Only committed groups' objects may remain visible.
				names, err := mem.List()
				if err != nil {
					t.Fatal(err)
				}
				live := map[string]bool{}
				for _, b := range rep.Committed {
					live[b] = true
					if man, err := verifyGroup(mem, b); err != nil {
						t.Fatalf("committed group %s fails verification after fsck: %v", b, err)
					} else if man != nil {
						for _, s := range man.Shards {
							live[s.Name] = true
						}
					}
				}
				for _, n := range names {
					if !live[n] {
						t.Fatalf("fsck left non-committed object %q (report: %s)", n, rep)
					}
				}
				// Idempotent: a second sweep finds nothing.
				rep2, err := Fsck(mem)
				if err != nil || !rep2.Clean() {
					t.Fatalf("second fsck not clean: %s err=%v", rep2, err)
				}
				// Recover lands on the newest committed state.
				c3, x3 := build(mem)
				if err := c3.Recover(); err != nil {
					t.Fatalf("recover after fsck: %v", err)
				}
				want := 1.0
				if committed2 {
					want = 2.0
				}
				if (*x3)[0] != want || (*x3)[63] != want {
					t.Fatalf("recovered state %v..., want all %v", (*x3)[:4], want)
				}
			})
		}
	}
}

// TestFsckSweepsDirStorageTemps exercises the on-disk temp sweep: a
// stale *.tmp from a crashed rename is unlinked at startup.
func TestFsckSweepsDirStorageTemps(t *testing.T) {
	dir := t.TempDir()
	ds, err := NewDirStorage(filepath.Join(dir, "ck"))
	if err != nil {
		t.Fatal(err)
	}
	c := New(ds, Raw{})
	x := []float64{1, 2, 3}
	c.Protect("x", &x)
	if _, err := c.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Simulate crash debris the protocol can leave at points 1–2.
	ks := &killStore{inner: ds, after: 0}
	if err := ks.Write(ckptName(2), []byte("half-written payload")); err == nil {
		t.Fatal("kill store should have failed the write")
	}
	rep, err := Fsck(ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.TempRemoved) != 1 || len(rep.Committed) != 1 {
		t.Fatalf("report %s: want 1 temp removed, 1 committed", rep)
	}
	if err := c.Recover(); err != nil {
		t.Fatalf("recover after sweep: %v", err)
	}
	if x[2] != 3 {
		t.Fatalf("restored %v", x)
	}
}

// TestDirStorageSweepTemp covers the satellite fix directly: stale
// temp files are swept, fresh objects are untouched.
func TestDirStorageSweepTemp(t *testing.T) {
	ds, err := NewDirStorage(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Write("keep", []byte{1}); err != nil {
		t.Fatal(err)
	}
	if err := ds.Write("stale.tmp", []byte{2}); err != nil {
		t.Fatal(err)
	}
	removed, err := ds.SweepTemp()
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 1 || removed[0] != "stale.tmp" {
		t.Fatalf("swept %v", removed)
	}
	if _, err := ds.Read("keep"); err != nil {
		t.Fatalf("sweep touched a live object: %v", err)
	}
	names, err := ds.List()
	if err != nil || len(names) != 1 {
		t.Fatalf("list after sweep: %v %v", names, err)
	}
}
