package fti

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/sparse"
	"repro/internal/vec"
)

// hookStorage intercepts Write for failure injection and gating. The
// hook runs before the delegated write; returning an error simulates a
// storage failure, blocking on a channel simulates a slow PFS.
type hookStorage struct {
	Storage
	onWrite func(name string) error
}

func (h *hookStorage) Write(name string, data []byte) error {
	if h.onWrite != nil {
		if err := h.onWrite(name); err != nil {
			return err
		}
	}
	return h.Storage.Write(name, data)
}

// gateEncoder blocks Encode until the gate channel is closed, making
// the background stage's timing deterministic in tests.
type gateEncoder struct {
	Encoder
	gate chan struct{}
}

func (g gateEncoder) Encode(x []float64) ([]byte, error) {
	<-g.gate
	return g.Encoder.Encode(x)
}

func testSnapshot(iter int, x []float64) *Snapshot {
	return &Snapshot{
		Iteration: iter,
		Scalars:   map[string]float64{"rho": 1.5},
		Vectors:   map[string][]float64{"x": x},
	}
}

func TestAsyncSaveReturnsBeforeWriteCompletes(t *testing.T) {
	mem := NewMemStorage()
	gate := make(chan struct{})
	st := &hookStorage{Storage: mem, onWrite: func(string) error { <-gate; return nil }}
	a := NewAsync(New(st, Raw{}))

	x := sparse.SmoothField(1000, 1)
	tk, err := a.SaveAsync(testSnapshot(3, x))
	if err != nil {
		t.Fatal(err)
	}
	if !a.InFlight() {
		t.Fatal("save should be in flight while the write is gated")
	}
	select {
	case <-tk.Done():
		t.Fatal("ticket done before the write was released")
	default:
	}
	if names, _ := mem.List(); len(names) != 0 {
		t.Fatalf("storage already has %v before the write was released", names)
	}

	close(gate)
	info, err := tk.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if info.Seq != 1 || tk.Seq != 1 {
		t.Fatalf("committed seq %d, ticket seq %d, want 1", info.Seq, tk.Seq)
	}
	if a.InFlight() {
		t.Fatal("still in flight after Wait")
	}
	if names, _ := mem.List(); len(names) != 1 {
		t.Fatalf("storage has %v after commit", names)
	}
	if a.CommittedSeq() != 1 {
		t.Fatalf("CommittedSeq = %d", a.CommittedSeq())
	}
}

func TestAsyncAtMostOneInFlightBackpressure(t *testing.T) {
	mem := NewMemStorage()
	gate := make(chan struct{})
	st := &hookStorage{Storage: mem, onWrite: func(string) error { <-gate; return nil }}
	a := NewAsync(New(st, Raw{}))

	x := sparse.SmoothField(500, 2)
	if _, err := a.SaveAsync(testSnapshot(1, x)); err != nil {
		t.Fatal(err)
	}

	second := make(chan error, 1)
	go func() {
		_, err := a.SaveAsync(testSnapshot(2, x))
		second <- err
	}()
	select {
	case <-second:
		t.Fatal("second SaveAsync returned while the first write was still in flight")
	case <-time.After(20 * time.Millisecond):
	}

	close(gate)
	if err := <-second; err != nil {
		t.Fatal(err)
	}
	if _, err := a.Flush(); err != nil {
		t.Fatal(err)
	}
	names, _ := mem.List()
	if len(names) != 2 {
		t.Fatalf("want 2 checkpoints, have %v", names)
	}
	if s := a.Stats(); s.Saves != 2 || s.BackpressureSeconds <= 0 {
		t.Fatalf("stats %+v: want 2 saves and positive backpressure", s)
	}
}

func TestAsyncErrorSurfacedOnNextSave(t *testing.T) {
	mem := NewMemStorage()
	var failNext atomic.Bool
	boom := fmt.Errorf("pfs exploded")
	st := &hookStorage{Storage: mem, onWrite: func(string) error {
		if failNext.CompareAndSwap(true, false) {
			return boom
		}
		return nil
	}}
	a := NewAsync(New(st, Raw{}))
	x := sparse.SmoothField(500, 3)

	if _, err := a.SaveAsync(testSnapshot(1, x)); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Flush(); err != nil {
		t.Fatal(err)
	}

	failNext.Store(true)
	tk, err := a.SaveAsync(testSnapshot(2, x))
	if err != nil {
		t.Fatalf("SaveAsync itself must not fail, the write does: %v", err)
	}
	<-tk.Done()

	// The failure surfaces on the next call, which is not started.
	if _, err := a.SaveAsync(testSnapshot(3, x)); err == nil {
		t.Fatal("previous background failure was not surfaced")
	}
	// The error is consumed; subsequent saves proceed.
	if _, err := a.SaveAsync(testSnapshot(4, x)); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := a.Checkpointer().Restore()
	if err != nil {
		t.Fatal(err)
	}
	if got.Iteration != 4 {
		t.Fatalf("restored iteration %d, want 4", got.Iteration)
	}
	if a.CommittedSeq() != 2 {
		t.Fatalf("CommittedSeq %d, want 2 (failed save rolled back)", a.CommittedSeq())
	}
}

func TestAsyncTicketWaitConsumesError(t *testing.T) {
	var failNext atomic.Bool
	st := &hookStorage{Storage: NewMemStorage(), onWrite: func(string) error {
		if failNext.CompareAndSwap(true, false) {
			return fmt.Errorf("transient")
		}
		return nil
	}}
	a := NewAsync(New(st, Raw{}))
	x := sparse.SmoothField(100, 4)

	failNext.Store(true)
	tk, err := a.SaveAsync(testSnapshot(1, x))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tk.Wait(); err == nil {
		t.Fatal("ticket Wait should report the write failure")
	}
	// Consumed by Wait: the next save must not see it again.
	if _, err := a.SaveAsync(testSnapshot(2, x)); err != nil {
		t.Fatalf("error surfaced twice: %v", err)
	}
	if _, err := a.Flush(); err != nil {
		t.Fatal(err)
	}
}

// TestAsyncCaptureIsDeepCopy pins the pipeline's central safety
// property: the solver may mutate its state the moment SaveAsync
// returns, and the checkpoint still holds the values at capture time.
// The encoder is gated so the mutation provably happens before the
// background encode reads anything.
func TestAsyncCaptureIsDeepCopy(t *testing.T) {
	gate := make(chan struct{})
	a := NewAsync(New(NewMemStorage(), gateEncoder{Encoder: Raw{}, gate: gate}))

	x := sparse.SmoothField(2000, 5)
	want := append([]float64(nil), x...)
	tk, err := a.SaveAsync(testSnapshot(9, x))
	if err != nil {
		t.Fatal(err)
	}
	// Solver keeps iterating: trash the live vector mid-flight.
	for i := range x {
		x[i] = -7
	}
	close(gate)
	if _, err := tk.Wait(); err != nil {
		t.Fatal(err)
	}
	got, err := a.Checkpointer().Restore()
	if err != nil {
		t.Fatal(err)
	}
	if d := vec.MaxAbsDiff(want, got.Vectors["x"]); d != 0 {
		t.Fatalf("checkpoint saw post-capture mutations (diff %g)", d)
	}
	if got.Iteration != 9 || got.Scalars["rho"] != 1.5 {
		t.Fatalf("restored %+v", got)
	}
}

// TestAsyncDoubleBufferKeepsCommittedCheckpoints mirrors the
// synchronous encode-buffer-reuse test for the double-buffered async
// path: consecutive saves must not clobber each other's stored bytes.
func TestAsyncDoubleBufferKeepsCommittedCheckpoints(t *testing.T) {
	mem := NewMemStorage()
	a := NewAsync(New(mem, Raw{}))

	x := sparse.SmoothField(3000, 6)
	v1 := append([]float64(nil), x...)
	if _, err := a.SaveAsync(testSnapshot(1, x)); err != nil {
		t.Fatal(err)
	}
	for i := range x {
		x[i] = -x[i]
	}
	if _, err := a.SaveAsync(testSnapshot(2, x)); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Flush(); err != nil {
		t.Fatal(err)
	}

	c := a.Checkpointer()
	if err := c.DropLatest(); err != nil {
		t.Fatal(err)
	}
	got, err := c.Restore()
	if err != nil {
		t.Fatal(err)
	}
	if got.Iteration != 1 {
		t.Fatalf("restored iteration %d, want 1", got.Iteration)
	}
	if d := vec.MaxAbsDiff(v1, got.Vectors["x"]); d != 0 {
		t.Fatalf("save 2 corrupted save 1's bytes (diff %g)", d)
	}
}

func TestAsyncFlushIdleAndZeroTicket(t *testing.T) {
	a := NewAsync(New(NewMemStorage(), Raw{}))
	if info, err := a.Flush(); err != nil || info.Seq != 0 {
		t.Fatalf("idle Flush: %+v %v", info, err)
	}
	var zero Ticket
	select {
	case <-zero.Done():
	default:
		t.Fatal("zero ticket Done must be closed")
	}
	if _, err := zero.Wait(); err == nil {
		t.Fatal("zero ticket Wait must error")
	}
}

func TestAsyncStatsAccounting(t *testing.T) {
	a := NewAsync(New(NewMemStorage(), Raw{}))
	x := sparse.SmoothField(200000, 7)
	for i := 1; i <= 3; i++ {
		if _, err := a.SaveAsync(testSnapshot(i, x)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := a.Flush(); err != nil {
		t.Fatal(err)
	}
	s := a.Stats()
	if s.Saves != 3 {
		t.Fatalf("Saves = %d", s.Saves)
	}
	if s.EncodeWriteSeconds <= 0 {
		t.Fatalf("EncodeWriteSeconds = %g, want > 0", s.EncodeWriteSeconds)
	}
}
