// Package fti is a checkpoint/restart library modeled on the Fault
// Tolerance Interface (FTI) the paper builds on (Bautista-Gomez et
// al., SC'11): applications register ("protect") their variables and
// call a single snapshot entry point; recovery reloads the latest
// valid checkpoint. Unlike FTI, the vector payload passes through a
// pluggable Encoder, which is exactly where the paper's contribution
// plugs in: a lossy compressor between the solver state and storage.
package fti

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/codec"
	"repro/internal/fti/shard"
	"repro/internal/obs"
	"repro/internal/sz"
)

// Encoder turns a float64 vector into checkpoint bytes and back.
// Raw (traditional checkpointing), lossless codecs, and error-bounded
// lossy compressors all implement it. Encoders that can decode into a
// caller-provided slice additionally implement DecoderInto — the
// restore path then reconstructs vectors in place (straight into the
// registered variables) instead of allocating and copying; encoders
// without it transparently fall back to Decode plus a copy (see
// DecodeInto).
type Encoder interface {
	// Name tags checkpoint files for decode-time verification.
	Name() string
	// Encode serializes x.
	Encode(x []float64) ([]byte, error)
	// Decode reverses Encode (up to the encoder's error bound).
	Decode(data []byte) ([]float64, error)
}

// Snapshot is one checkpoint's content: the iteration number, named
// scalars (CG's ρ), named vectors (x, and p for traditional CG), and
// the raw sizes for accounting.
type Snapshot struct {
	Iteration int
	Scalars   map[string]float64
	Vectors   map[string][]float64
}

// Info reports what a checkpoint cost.
type Info struct {
	Seq              int
	Bytes            int // encoded bytes written
	RawBytes         int // 8 × total vector elements (plus scalars)
	EncoderName      string
	VectorBytes      int // encoded bytes of the vector payload only
	StaticBytes      int // bytes of statics written so far (once)
	CompressionRatio float64
	// Shards is the number of shard objects the checkpoint was written
	// as (1 = a single monolithic object). Striped-PFS cost models key
	// off it: a sharded write engages min(Shards, stripes) stripes.
	Shards int

	// Per-stage wall-clock timings of the save that produced this Info,
	// in seconds. CaptureSeconds is the solver-visible deep copy of the
	// asynchronous pipeline (zero for synchronous saves, whose capture
	// happens in the caller); EncodeSeconds covers the Encoder pass over
	// every vector; WriteSeconds covers the storage commit (all shard
	// objects plus the manifest for sharded layouts). Together with
	// RawBytes (bytes in) and Bytes (bytes out) they are the measured
	// observations the adaptive interval controller (package adapt)
	// estimates per-checkpoint costs from — previously this accounting
	// was internal to the async pipeline and only a benchmark could see
	// the stall.
	CaptureSeconds float64
	EncodeSeconds  float64
	WriteSeconds   float64
}

// Checkpointer coordinates Protect/Checkpoint/Recover for one rank (or
// one sequential application).
type Checkpointer struct {
	storage Storage
	enc     Encoder
	keep    int // checkpoints retained (≥1)

	// shards > 1 splits every checkpoint into that many shard objects
	// plus a manifest (see package shard); storageWorkers bounds the
	// worker pool writing/reading them (0 = GOMAXPROCS-sized).
	shards         int
	storageWorkers int

	seq        int
	staticSize int

	// encBuf is the snapshot encode buffer, reused across checkpoints.
	// Checkpoints recur every few hundred iterations for the life of a
	// solve, so the steady state writes into the same backing array
	// instead of growing a fresh multi-megabyte slice each time.
	// Reuse is safe because Storage.Write must not retain its data
	// argument after returning.
	encBuf []byte

	// Registered variables (FTI-style Protect API).
	vecs   []protVec
	ints   []protInt
	floats []protFloat

	// ins is the optional observability bundle (see Instrument); nil
	// means every hook is a no-op.
	ins *instruments

	// scrub, when attached, retains each committed checkpoint's
	// encoded payload as the scrubber's repair source.
	scrub *Scrubber

	// audit, when attached, observes every save's per-vector encoding
	// against the live state (see SaveAudit). Nil means no auditing.
	audit SaveAudit
}

// SaveAudit observes the encoding of every vector of a save, for
// numerical-quality telemetry (package quality). SampleSave is asked
// once per save whether this save should be audited at all — the
// sampled-audit fast path skips every per-vector hook when it says
// no. For audited saves ObserveVector fires once per encoded vector
// while the live values and the encoded blob coexist: st carries the
// encode-path distortion stats when the encoder implements
// StatsEncoder, and is nil otherwise (the observer may then decode
// blob itself to audit — DecodeInto into its own scratch).
//
// The AsyncCheckpointer runs saves on its background goroutine, so
// implementations must be safe for concurrent use. Implementations
// must treat live and blob as read-only and must not retain them.
type SaveAudit interface {
	SampleSave(seq, iteration int) bool
	ObserveVector(seq, iteration int, name string, live []float64, blob []byte, enc Encoder, st *EncodeStats)
}

// SetSaveAudit attaches (or, with nil, detaches) a save auditor. Only
// safe while no save is in flight.
func (c *Checkpointer) SetSaveAudit(a SaveAudit) { c.audit = a }

type protVec struct {
	name string
	ptr  *[]float64
}
type protInt struct {
	name string
	ptr  *int
}
type protFloat struct {
	name string
	ptr  *float64
}

// New creates a Checkpointer writing encoder-processed snapshots to
// storage, retaining the two most recent checkpoints (FTI's default
// safety margin: if a failure corrupts the newest file, recovery falls
// back to the previous one).
//
// The sequence counter starts after the highest checkpoint already in
// storage, so a Checkpointer created over a pre-existing checkpoint
// directory (the restart-after-failure path) extends the series
// instead of silently overwriting ckpt-000000000001.
func New(storage Storage, enc Encoder) *Checkpointer {
	c := &Checkpointer{storage: storage, enc: enc, keep: 2}
	c.syncSeq()
	return c
}

// ckptSeqs lists the sequence numbers of the checkpoints currently in
// storage, nil on a listing error (best effort: the callers are
// bookkeeping scans; a broken storage surfaces on the next read or
// write). The single scan keeps the sequence counter, the retention
// gc, and the abort-time emptiness check agreeing on what counts as a
// checkpoint.
func (c *Checkpointer) ckptSeqs() []int {
	names, err := c.storage.List()
	if err != nil {
		return nil
	}
	var seqs []int
	for _, n := range names {
		if seq, ok := parseCkptName(n); ok {
			seqs = append(seqs, seq)
		}
	}
	return seqs
}

// syncSeq advances seq past every checkpoint present in storage.
func (c *Checkpointer) syncSeq() {
	for _, seq := range c.ckptSeqs() {
		if seq > c.seq {
			c.seq = seq
		}
	}
}

// SetKeep sets the retention window: the n most recent checkpoints are
// kept, older ones are garbage-collected after each successful save.
// n must be at least 1; at least one checkpoint must survive for
// recovery to have a target.
func (c *Checkpointer) SetKeep(n int) error {
	if n < 1 {
		return fmt.Errorf("fti: retention must keep at least 1 checkpoint, got %d", n)
	}
	c.keep = n
	return nil
}

// Keep reports the current retention window.
func (c *Checkpointer) Keep() int { return c.keep }

// SetSharding configures sharded checkpoint storage: each subsequent
// checkpoint is split into shards objects (cut points aligned to the
// SZG2 block boundaries of the encoded vectors) written concurrently
// by at most workers goroutines, plus a manifest committed last.
// shards ≤ 1 restores the monolithic layout; workers ≤ 0 sizes the
// pool from GOMAXPROCS. Previously written checkpoints — sharded or
// monolithic — remain restorable either way: Restore distinguishes the
// layouts by the object's magic, not the configuration.
func (c *Checkpointer) SetSharding(shards, workers int) error {
	if shards > shard.MaxShards {
		return fmt.Errorf("fti: %d shards exceed the %d maximum", shards, shard.MaxShards)
	}
	if shards < 1 {
		shards = 1
	}
	if workers < 0 {
		workers = 0
	}
	c.shards = shards
	c.storageWorkers = workers
	return nil
}

// Sharding reports the configured shard count and storage worker
// bound (1, 0 means monolithic writes).
func (c *Checkpointer) Sharding() (shards, workers int) { return max(c.shards, 1), c.storageWorkers }

// AttachScrubber wires s into the save path: every committed
// checkpoint's encoded payload is retained (copied) by the scrubber
// as its repair source. Pass nil to detach. Follows the same
// concurrency rule as SetEncoder: only between saves (drain the async
// pipeline first).
func (c *Checkpointer) AttachScrubber(s *Scrubber) { c.scrub = s }

// SetEncoder swaps the vector encoder; subsequent checkpoints use it.
// The paper's Theorem-3 adaptive GMRES bound re-parameterizes the
// compressor before every checkpoint, which lands here.
func (c *Checkpointer) SetEncoder(enc Encoder) { c.enc = enc }

// Encoder returns the current encoder.
func (c *Checkpointer) Encoder() Encoder { return c.enc }

// Protect registers a vector variable: Checkpoint saves the slice the
// pointer currently refers to; Recover overwrites it in place (or
// replaces it if the length changed).
func (c *Checkpointer) Protect(name string, ptr *[]float64) {
	c.vecs = append(c.vecs, protVec{name: name, ptr: ptr})
}

// ProtectInt registers an integer variable (e.g. the iteration count).
func (c *Checkpointer) ProtectInt(name string, ptr *int) {
	c.ints = append(c.ints, protInt{name: name, ptr: ptr})
}

// ProtectFloat registers a scalar variable (e.g. CG's ρ).
func (c *Checkpointer) ProtectFloat(name string, ptr *float64) {
	c.floats = append(c.floats, protFloat{name: name, ptr: ptr})
}

// WriteStatic stores a write-once blob (the system matrix A, the
// preconditioner M, the right-hand side b — the paper's static
// variables, checkpointed once before the iteration loop).
func (c *Checkpointer) WriteStatic(name string, data []byte) error {
	if err := c.storage.Write("static-"+name, data); err != nil {
		return err
	}
	c.staticSize += len(data)
	return nil
}

// ReadStatic loads a static blob during recovery.
func (c *Checkpointer) ReadStatic(name string) ([]byte, error) {
	return c.storage.Read("static-" + name)
}

// Checkpoint snapshots all protected variables (FTI's Snapshot()).
func (c *Checkpointer) Checkpoint() (Info, error) {
	s := Snapshot{
		Scalars: map[string]float64{},
		Vectors: map[string][]float64{},
	}
	for _, pv := range c.vecs {
		s.Vectors[pv.name] = *pv.ptr
	}
	for _, pi := range c.ints {
		if pi.name == "iteration" {
			s.Iteration = *pi.ptr
		} else {
			s.Scalars["int:"+pi.name] = float64(*pi.ptr)
		}
	}
	for _, pf := range c.floats {
		s.Scalars[pf.name] = *pf.ptr
	}
	return c.Save(&s)
}

// Recover loads the latest valid checkpoint back into the protected
// variables. Vector payloads whose length matches the registered slice
// decode directly into it — no whole-payload reassembly buffer, no
// decode-then-copy; a vector whose length changed gets a freshly
// allocated slice that never aliases the restored snapshot's backing
// arrays, so a Snapshot retained from Restore cannot be mutated by
// subsequent solver iterations.
//
// Because the decode is in place, a Recover that fails after decoding
// began (every checkpoint invalid) may leave the protected vectors
// partially overwritten; callers must treat the state as unspecified
// after an error.
func (c *Checkpointer) Recover() error {
	targets := make(map[string][]float64, len(c.vecs))
	for _, pv := range c.vecs {
		if v := *pv.ptr; len(v) > 0 {
			targets[pv.name] = v
		}
	}
	s, err := c.RestoreInto(targets)
	if err != nil {
		return err
	}
	for _, pv := range c.vecs {
		v, ok := s.Vectors[pv.name]
		if !ok {
			return fmt.Errorf("fti: checkpoint lacks protected vector %q", pv.name)
		}
		if len(*pv.ptr) == len(v) {
			if len(v) > 0 && &v[0] == &(*pv.ptr)[0] {
				continue // decoded in place
			}
			copy(*pv.ptr, v)
		} else {
			*pv.ptr = append([]float64(nil), v...)
		}
	}
	for _, pi := range c.ints {
		if pi.name == "iteration" {
			*pi.ptr = s.Iteration
		} else if v, ok := s.Scalars["int:"+pi.name]; ok {
			*pi.ptr = int(v)
		} else {
			return fmt.Errorf("fti: checkpoint lacks protected int %q", pi.name)
		}
	}
	for _, pf := range c.floats {
		v, ok := s.Scalars[pf.name]
		if !ok {
			return fmt.Errorf("fti: checkpoint lacks protected scalar %q", pf.name)
		}
		*pf.ptr = v
	}
	return nil
}

// Save writes a snapshot without going through the registration API;
// the solver-integration layer (package core) uses it directly.
func (c *Checkpointer) Save(s *Snapshot) (Info, error) {
	payload, info, err := c.save(s, c.encBuf)
	if payload != nil {
		c.encBuf = payload
	}
	return info, err
}

// save encodes s into buf's backing array (growing it as needed) and
// writes the result to storage, rolling the sequence counter back on
// failure. It returns the (possibly reallocated) buffer so the caller
// can reuse it on the next save; the buffer is returned even on error.
// The AsyncCheckpointer calls save from its background goroutine with
// its own double buffers, so save must not touch c.encBuf.
func (c *Checkpointer) save(s *Snapshot, buf []byte) ([]byte, Info, error) {
	c.seq++
	info := Info{Seq: c.seq, EncoderName: c.enc.Name(), StaticBytes: c.staticSize, Shards: 1}
	encSpan := c.ins.span(obs.CatCheckpoint, obs.SpanEncode)
	encStart := time.Now()
	payload, rawBytes, vecBytes, bounds, err := encodeSnapshot(s, c.enc, buf, c.shards > 1, c.seq, c.audit)
	if err != nil {
		c.seq--
		c.ins.observeSaveError()
		return buf, Info{}, err
	}
	info.EncodeSeconds = time.Since(encStart).Seconds()
	info.RawBytes = rawBytes
	info.VectorBytes = vecBytes
	info.Bytes = len(payload)
	if info.Bytes > 0 {
		info.CompressionRatio = float64(rawBytes) / float64(info.Bytes)
	}
	encSpan.EndArgs(map[string]float64{
		"raw_bytes": float64(rawBytes), "encoded_bytes": float64(info.Bytes),
	})
	name := ckptName(c.seq)
	wrSpan := c.ins.span(obs.CatCheckpoint, obs.SpanWrite)
	writeStart := time.Now()
	// groupShards is the number of shard *objects* the just-written
	// checkpoint owns: 0 for a monolithic write (its base name holds
	// the payload itself, so any shard object under that base is stale
	// debris from a crashed earlier attempt at the same sequence).
	groupShards := 0
	if c.shards > 1 {
		written, err := shard.Write(c.storage, name, c.enc.Name(), payload, bounds,
			c.ins.shardOpts(shard.Options{Shards: c.shards, Workers: c.storageWorkers}))
		if err != nil {
			c.seq--
			c.ins.observeSaveError()
			return payload, Info{}, err
		}
		info.Shards = written
		groupShards = written
	} else if err := c.storage.Write(name, payload); err != nil {
		c.seq--
		c.ins.observeSaveError()
		return payload, Info{}, err
	}
	info.WriteSeconds = time.Since(writeStart).Seconds()
	wrSpan.EndArgs(map[string]float64{
		"bytes": float64(info.Bytes), "shards": float64(max(groupShards, 1)),
	})
	c.ins.observeSave(info)
	c.gc(groupShards)
	if c.scrub != nil {
		c.scrub.Retain(name, payload)
	}
	return payload, info, nil
}

// Restore returns the most recent snapshot that passes integrity
// checks, falling back to older ones. The returned snapshot owns its
// vectors (freshly allocated); RestoreInto is the in-place variant.
func (c *Checkpointer) Restore() (*Snapshot, error) { return c.RestoreInto(nil) }

// RestoreInto is Restore with caller-provided decode targets: a vector
// payload whose name and length match an entry of targets decodes
// directly into that slice — the returned snapshot's Vectors then
// alias the targets — while all other vectors are freshly allocated.
//
// Sharded checkpoints stream: each shard is read, CRC32C-verified, and
// block-decoded straight into its destination slices by a bounded
// worker pool, with no whole-payload reassembly buffer. The redundant
// whole-payload IEEE CRC is skipped for them — the per-shard CRC32C
// checksums already covered every byte — while monolithic checkpoints
// keep it. On error, target slices may hold partially decoded data
// from a checkpoint that was later rejected; a recovery that falls
// back to an older checkpoint overwrites them in full.
func (c *Checkpointer) RestoreInto(targets map[string][]float64) (*Snapshot, error) {
	s, _, err := c.RestoreIntoTrace(targets)
	return s, err
}

// RestoreAttempt records one checkpoint the restore walk tried: its
// sequence number, the encoded bytes read from storage for the attempt
// (base object plus, for sharded groups, the manifest's shard
// payloads), the wall-clock duration, and the rejection reason (empty
// for the accepted attempt). The trace is the per-tier observability
// the tiered recovery chain prices fallbacks from — a restore that
// fell back past the newest checkpoint paid for the rejected reads
// too.
type RestoreAttempt struct {
	Seq     int
	Bytes   int
	Seconds float64
	Err     string
}

// restoreArgs flattens an attempt into trace span args.
func restoreArgs(att RestoreAttempt, accepted bool) map[string]float64 {
	acc := 0.0
	if accepted {
		acc = 1
	}
	return map[string]float64{
		"seq": float64(att.Seq), "bytes": float64(att.Bytes), "accepted": acc,
	}
}

// RestoreIntoTrace is RestoreInto returning, additionally, the ordered
// trace of every checkpoint the newest-first walk attempted. On total
// failure (every checkpoint invalid) the trace covers all rejected
// attempts and the error is the usual "all checkpoints invalid".
func (c *Checkpointer) RestoreIntoTrace(targets map[string][]float64) (*Snapshot, []RestoreAttempt, error) {
	return c.restoreTrace(func(seq int, data []byte, att *RestoreAttempt) (*Snapshot, error) {
		if shard.IsManifest(data) {
			man, err := shard.ParseManifest(data)
			if err != nil {
				return nil, err
			}
			for _, sh := range man.Shards {
				att.Bytes += sh.Size
			}
			return c.restoreStreaming(man, targets)
		}
		return decodeSnapshotInto(data, c.enc, targets)
	})
}

// RestoreReassembled is the pre-streaming restore path, retained for
// equivalence testing and benchmarking against the streaming decoder:
// a sharded group is reassembled into one contiguous payload
// (shard.Read), the whole-payload IEEE CRC is verified, and every
// vector decodes into a fresh allocation. Restore must produce a
// bitwise-identical snapshot.
func (c *Checkpointer) RestoreReassembled() (*Snapshot, error) {
	s, _, err := c.restoreTrace(func(seq int, data []byte, att *RestoreAttempt) (*Snapshot, error) {
		if shard.IsManifest(data) {
			man, err := shard.ParseManifest(data)
			if err != nil {
				return nil, err
			}
			for _, sh := range man.Shards {
				att.Bytes += sh.Size
			}
			data, err = shard.Read(c.storage, man, shard.Options{Workers: c.storageWorkers})
			if err != nil {
				return nil, err
			}
		}
		return decodeSnapshot(data, c.enc)
	})
	return s, err
}

// restoreTrace walks the checkpoint series newest-first, handing each
// base object (monolithic payload or shard manifest) to decode; any
// missing, corrupt, or rejected checkpoint falls back to the previous
// one — the paper's failure-during-checkpoint recovery path. Every
// attempted checkpoint is recorded in the returned trace, accepted or
// not.
func (c *Checkpointer) restoreTrace(decode func(seq int, data []byte, att *RestoreAttempt) (*Snapshot, error)) (*Snapshot, []RestoreAttempt, error) {
	names, err := c.storage.List()
	if err != nil {
		return nil, nil, err
	}
	var seqs []int
	for _, n := range names {
		if seq, ok := parseCkptName(n); ok {
			seqs = append(seqs, seq)
		}
	}
	if len(seqs) == 0 {
		return nil, nil, fmt.Errorf("fti: no checkpoints available")
	}
	sort.Sort(sort.Reverse(sort.IntSlice(seqs)))
	var attempts []RestoreAttempt
	var lastErr error
	for _, seq := range seqs {
		att := RestoreAttempt{Seq: seq}
		sp := c.ins.spanOn(obs.TrackRecovery, obs.CatRecovery, obs.SpanRestore)
		start := time.Now()
		data, err := c.storage.Read(ckptName(seq))
		if err != nil {
			att.Seconds = time.Since(start).Seconds()
			att.Err = err.Error()
			c.ins.observeRestoreAttempt(att)
			sp.EndArgs(restoreArgs(att, false))
			attempts = append(attempts, att)
			lastErr = err
			continue
		}
		att.Bytes = len(data)
		s, err := decode(seq, data, &att)
		att.Seconds = time.Since(start).Seconds()
		if err != nil {
			lastErr = fmt.Errorf("fti: checkpoint %d: %w", seq, err)
			att.Err = err.Error()
			c.ins.observeRestoreAttempt(att)
			sp.EndArgs(restoreArgs(att, false))
			attempts = append(attempts, att)
			continue
		}
		c.ins.observeRestoreAttempt(att)
		sp.EndArgs(restoreArgs(att, true))
		attempts = append(attempts, att)
		// Re-sync the sequence counter with storage: a restore may have
		// fallen back past checkpoints this Checkpointer never wrote,
		// and the next save must not overwrite any surviving file.
		c.syncSeq()
		return s, attempts, nil
	}
	return nil, attempts, fmt.Errorf("fti: all checkpoints invalid: %w", lastErr)
}

// LatestSeq returns the sequence number of the last written
// checkpoint, 0 if none.
func (c *Checkpointer) LatestSeq() int { return c.seq }

// CheckpointCount reports how many checkpoint files storage currently
// holds (0 on a listing error). With keep=1 an aborted checkpoint can
// empty storage even though the sequence counter is positive, so
// recovery decisions must consult this, not LatestSeq.
func (c *Checkpointer) CheckpointCount() int { return len(c.ckptSeqs()) }

// DropLatest discards the most recent checkpoint — the failure-during-
// checkpoint path: a fail-stop error mid-write leaves a partial file
// that recovery must not use (the CRC would reject it anyway; dropping
// models it never having completed). Recovery then falls back to the
// previous retained checkpoint.
func (c *Checkpointer) DropLatest() error {
	if c.seq == 0 {
		return nil
	}
	// shard.Delete removes the manifest (or monolithic object) first —
	// the checkpoint instantly stops being a recovery target — then any
	// shard objects of the group.
	if err := shard.Delete(c.storage, ckptName(c.seq)); err != nil {
		return err
	}
	c.seq--
	return nil
}

// gc removes checkpoints beyond the retention window — manifest (or
// monolithic object) first, then the group's shards — and sweeps
// orphan shards: objects named like a shard whose base checkpoint no
// longer exists, left behind by a write that crashed between its shard
// writes and its manifest commit. gc runs synchronously inside save,
// after the new manifest committed, so the only in-flight group is its
// own (already committed) one and the sweep cannot race a writer.
//
// writtenShards is the shard count of the just-written checkpoint
// (c.seq): a crash-restart re-uses the orphans' sequence number, so
// the new group can land on a base that stale higher-indexed shard
// objects still reference — those are dead too, even though the base
// is live.
func (c *Checkpointer) gc(writtenShards int) {
	names, err := c.storage.List()
	if err != nil {
		return
	}
	live := make(map[string]bool)
	var seqs []int
	for _, n := range names {
		if seq, ok := parseCkptName(n); ok {
			seqs = append(seqs, seq)
			live[n] = true
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(seqs)))
	for i := c.keep; i < len(seqs); i++ {
		base := ckptName(seqs[i])
		delete(live, base)
		_ = c.storage.Delete(base)
	}
	cur := ckptName(c.seq)
	for _, n := range names {
		base, idx, ok := shard.ShardBase(n)
		if !ok {
			continue
		}
		if live[base] && (base != cur || idx < writtenShards) {
			continue
		}
		// Only objects whose base is a checkpoint name are checkpoint
		// shards; a static blob that happens to end in ".sNNNNN" is not.
		if _, isCkpt := parseCkptName(base); isCkpt {
			_ = c.storage.Delete(n)
		}
	}
}

func ckptName(seq int) string { return fmt.Sprintf("ckpt-%012d", seq) }

func parseCkptName(name string) (int, bool) {
	if !strings.HasPrefix(name, "ckpt-") {
		return 0, false
	}
	seq, err := strconv.Atoi(strings.TrimPrefix(name, "ckpt-"))
	if err != nil {
		return 0, false
	}
	return seq, true
}

const fileMagic = "FTIG"

// encodeSnapshot serializes a snapshot: header, scalars, encoded
// vectors, CRC32 trailer. The payload is appended into buf's backing
// array when capacity allows (buf may be nil); the caller owns the
// returned slice and may pass it back as buf on the next call.
//
// With wantBounds set, bounds lists preferred shard cut offsets within
// the payload, sorted ascending: the start of every vector blob plus,
// for blobs in the SZG2 blocked container, the start of each
// compression block inside them — so a sharded write can cut along
// boundaries where a shard holds whole compression units. Monolithic
// callers pass false and skip the per-blob header parse entirely.
// When audit is non-nil and samples this save (seq identifies it),
// every vector's encoding is reported to it — through the encoder's
// StatsEncoder fast path when available, so the audited bytes are the
// exact bytes written and the common case needs no decode.
func encodeSnapshot(s *Snapshot, enc Encoder, buf []byte, wantBounds bool, seq int, audit SaveAudit) (payload []byte, rawBytes, vecBytes int, bounds []int, err error) {
	out := buf[:0]
	var scratch [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) {
		n := binary.PutUvarint(scratch[:], v)
		out = append(out, scratch[:n]...)
	}
	putString := func(str string) {
		putUvarint(uint64(len(str)))
		out = append(out, str...)
	}
	putFloat := func(f float64) {
		var b8 [8]byte
		binary.LittleEndian.PutUint64(b8[:], math.Float64bits(f))
		out = append(out, b8[:]...)
	}

	out = append(out, fileMagic...)
	putUvarint(uint64(s.Iteration))
	putString(enc.Name())

	scalarNames := sortedKeysF(s.Scalars)
	putUvarint(uint64(len(scalarNames)))
	for _, name := range scalarNames {
		putString(name)
		putFloat(s.Scalars[name])
		rawBytes += 8
	}

	audited := audit != nil && audit.SampleSave(seq, s.Iteration)
	se, haveStats := enc.(StatsEncoder)

	vecNames := sortedKeysV(s.Vectors)
	putUvarint(uint64(len(vecNames)))
	for _, name := range vecNames {
		v := s.Vectors[name]
		var blob []byte
		var err error
		if audited && haveStats {
			var st EncodeStats
			blob, st, err = se.EncodeStats(v)
			if err == nil {
				audit.ObserveVector(seq, s.Iteration, name, v, blob, enc, &st)
			}
		} else {
			blob, err = enc.Encode(v)
			if err == nil && audited {
				audit.ObserveVector(seq, s.Iteration, name, v, blob, enc, nil)
			}
		}
		if err != nil {
			return nil, 0, 0, nil, fmt.Errorf("fti: encode vector %q: %w", name, err)
		}
		putString(name)
		putUvarint(uint64(len(v)))
		putUvarint(uint64(len(blob)))
		if wantBounds {
			blobStart := len(out)
			bounds = append(bounds, blobStart)
			ranges, ok := sz.BlockRanges(blob)
			if !ok {
				ranges, ok = codec.BlockRanges(blob)
			}
			if ok {
				for _, r := range ranges[1:] { // ranges[0].Start is mid-header
					bounds = append(bounds, blobStart+r.Start)
				}
			}
		}
		out = append(out, blob...)
		rawBytes += 8 * len(v)
		vecBytes += len(blob)
	}

	crc := crc32.ChecksumIEEE(out)
	var b4 [4]byte
	binary.LittleEndian.PutUint32(b4[:], crc)
	out = append(out, b4[:]...)
	return out, rawBytes, vecBytes, bounds, nil
}

func decodeSnapshot(data []byte, enc Encoder) (*Snapshot, error) {
	return decodeSnapshotInto(data, enc, nil)
}

// decodeSnapshotInto decodes a monolithic checkpoint payload,
// reconstructing vectors whose name and length match a targets entry
// directly into that slice (the returned snapshot aliases it) and
// allocating the rest. The whole-payload IEEE CRC is verified — for a
// monolithic object it is the only integrity check the bytes get.
func decodeSnapshotInto(data []byte, enc Encoder, targets map[string][]float64) (*Snapshot, error) {
	if len(data) < len(fileMagic)+4 {
		return nil, fmt.Errorf("truncated checkpoint")
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(trailer) {
		return nil, fmt.Errorf("CRC mismatch (corrupt checkpoint)")
	}
	if string(body[:4]) != fileMagic {
		return nil, fmt.Errorf("bad magic")
	}
	off := 4
	getUvarint := func() (uint64, error) {
		v, n := binary.Uvarint(body[off:])
		if n <= 0 {
			return 0, fmt.Errorf("truncated varint at %d", off)
		}
		off += n
		return v, nil
	}
	getString := func() (string, error) {
		l, err := getUvarint()
		if err != nil {
			return "", err
		}
		if off+int(l) > len(body) {
			return "", fmt.Errorf("truncated string at %d", off)
		}
		s := string(body[off : off+int(l)])
		off += int(l)
		return s, nil
	}

	s := &Snapshot{Scalars: map[string]float64{}, Vectors: map[string][]float64{}}
	iter, err := getUvarint()
	if err != nil {
		return nil, err
	}
	s.Iteration = int(iter)
	encName, err := getString()
	if err != nil {
		return nil, err
	}
	if encName != enc.Name() {
		return nil, fmt.Errorf("checkpoint written by encoder %q, decoder is %q", encName, enc.Name())
	}

	nScalars, err := getUvarint()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nScalars; i++ {
		name, err := getString()
		if err != nil {
			return nil, err
		}
		if off+8 > len(body) {
			return nil, fmt.Errorf("truncated scalar %q", name)
		}
		s.Scalars[name] = math.Float64frombits(binary.LittleEndian.Uint64(body[off:]))
		off += 8
	}

	nVecs, err := getUvarint()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nVecs; i++ {
		name, err := getString()
		if err != nil {
			return nil, err
		}
		n, err := getUvarint()
		if err != nil {
			return nil, err
		}
		blobLen, err := getUvarint()
		if err != nil {
			return nil, err
		}
		if off+int(blobLen) > len(body) {
			return nil, fmt.Errorf("truncated vector %q", name)
		}
		blob := body[off : off+int(blobLen)]
		off += int(blobLen)
		var v []float64
		if t, ok := targets[name]; ok && uint64(len(t)) == n {
			if err := DecodeInto(enc, t, blob); err != nil {
				return nil, fmt.Errorf("decode vector %q: %w", name, err)
			}
			v = t
		} else {
			var err error
			v, err = enc.Decode(blob)
			if err != nil {
				return nil, fmt.Errorf("decode vector %q: %w", name, err)
			}
			if uint64(len(v)) != n {
				return nil, fmt.Errorf("vector %q decoded to %d values, header says %d", name, len(v), n)
			}
		}
		s.Vectors[name] = v
	}
	return s, nil
}

func sortedKeysF(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sortedKeysV(m map[string][]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
