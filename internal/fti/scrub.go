package fti

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/fti/shard"
	"repro/internal/obs"
)

// Scrubber periodically CRC-verifies the committed checkpoints in a
// Storage so silent corruption (bit rot, a misbehaving storage tier)
// is found while it can still be repaired — not at restart time, when
// a corrupt shard costs a whole recovery tier. Repair has two rungs:
//
//  1. The newest checkpoint's encoded payload is retained in memory
//     (AttachScrubber wires Checkpointer.save to Retain); a corrupt
//     object of that group — shard, manifest, or monolithic payload —
//     is rewritten from the retained bytes and re-verified.
//  2. An older corrupt group cannot be rebuilt (its payload is gone),
//     but the retention window means a redundant checkpoint exists:
//     if at least one other group verifies intact this sweep, the
//     corrupt group is garbage-collected so the restore walk never
//     wastes a read on it. With no intact sibling it is left in place
//     — a partially corrupt checkpoint may still beat nothing.
//
// Sweep is safe to run concurrently with an active checkpoint
// pipeline: it only reads committed groups, repairs only the group
// whose payload it retains (the newest, which retention never
// collects), and skips bases that vanish mid-sweep under a concurrent
// gc.
type Scrubber struct {
	st Storage

	mu          sync.Mutex
	retained    string // base name of the retained checkpoint
	retainedMan *shard.Manifest
	baseBytes   []byte // retained base object (manifest or monolithic payload)
	payload     []byte // retained encoded payload
	stats       ScrubStats

	met *scrubMetrics
	tr  *obs.Tracer

	stopCh chan struct{}
	wg     sync.WaitGroup
}

// ScrubStats is the scrubber's cumulative accounting.
type ScrubStats struct {
	Sweeps      int // Sweep passes completed
	Verified    int // groups that passed verification
	Corruptions int // groups found corrupt or partial
	Repairs     int // groups rewritten from retained state and re-verified
	Dropped     int // unrepairable groups GC'd under an intact sibling
	Skipped     int // bases that vanished mid-sweep (racing gc)
}

// NewScrubber scrubs st. Attach it to a Checkpointer with
// AttachScrubber so the newest payload is retained for repair, then
// either call Sweep directly or Start a background loop.
func NewScrubber(st Storage) *Scrubber {
	return &Scrubber{st: st}
}

type scrubMetrics struct {
	sweeps      *obs.Counter
	corruptions *obs.Counter
	repairs     *obs.Counter
	dropped     *obs.Counter
}

// Instrument attaches metric and trace sinks; nil detaches. Call
// before Start.
func (s *Scrubber) Instrument(reg *obs.Registry, tr *obs.Tracer) {
	s.tr = tr
	if reg == nil {
		s.met = nil
		return
	}
	s.met = &scrubMetrics{
		sweeps:      reg.Counter(obs.MFTIScrubSweepsTotal),
		corruptions: reg.Counter(obs.MFTIScrubCorruptionsTotal),
		repairs:     reg.Counter(obs.MFTIScrubRepairsTotal),
		dropped:     reg.Counter(obs.MFTIScrubDroppedTotal),
	}
}

// Retain records base's encoded payload (copied) as the repair source
// for subsequent sweeps, replacing the previously retained
// checkpoint. The base object is read back from storage so a sharded
// group's manifest can be rewritten too; a failed read-back degrades
// to payload-only retention (shards remain repairable via a manifest
// still intact at repair time).
func (s *Scrubber) Retain(base string, payload []byte) {
	p := append([]byte(nil), payload...)
	baseBytes, err := s.st.Read(base)
	var man *shard.Manifest
	if err == nil && shard.IsManifest(baseBytes) {
		man, _ = shard.ParseManifest(baseBytes)
	}
	if err != nil {
		baseBytes = nil
	}
	s.mu.Lock()
	s.retained = base
	s.retainedMan = man
	s.baseBytes = baseBytes
	s.payload = p
	s.mu.Unlock()
}

// Stats returns a snapshot of the cumulative accounting.
func (s *Scrubber) Stats() ScrubStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Sweep verifies every committed checkpoint group once, repairing or
// garbage-collecting corrupt ones per the policy above. It returns
// the first storage error that prevented the sweep itself from
// proceeding (individual corrupt groups are handled, not returned).
func (s *Scrubber) Sweep() error {
	var sp obs.Span
	if s.tr != nil {
		sp = s.tr.Begin(obs.TrackScrubber, obs.CatStorage, obs.SpanScrub)
	}
	defer sp.End()
	names, err := s.st.List()
	if err != nil {
		return err
	}
	var bases []string
	for _, n := range names {
		if _, ok := parseCkptName(n); ok {
			if _, _, isShard := shard.ShardBase(n); !isShard {
				bases = append(bases, n)
			}
		}
	}
	intact := 0
	var corrupt []string
	for _, base := range bases {
		data, err := s.st.Read(base)
		if err != nil {
			s.bump(func(st *ScrubStats) { st.Skipped++ })
			continue // vanished under a racing gc (or unreadable); next sweep
		}
		if _, err := verifyLoadedGroup(s.st, data); err != nil {
			s.bump(func(st *ScrubStats) { st.Corruptions++ })
			s.met.corruptionInc()
			if s.repair(base) {
				s.bump(func(st *ScrubStats) { st.Repairs++ })
				s.met.repairInc()
				intact++
			} else {
				corrupt = append(corrupt, base)
			}
			continue
		}
		s.bump(func(st *ScrubStats) { st.Verified++ })
		intact++
	}
	// Unrepairable groups are dropped only under the cover of an intact
	// sibling — the "redundant previous checkpoint" the retention
	// window exists to provide.
	for _, base := range corrupt {
		if intact == 0 {
			break
		}
		if err := shard.Delete(s.st, base); err != nil {
			continue
		}
		s.bump(func(st *ScrubStats) { st.Dropped++ })
		s.met.droppedInc()
	}
	s.bump(func(st *ScrubStats) { st.Sweeps++ })
	s.met.sweepInc()
	return nil
}

// repair rewrites every object of base from the retained payload and
// re-verifies the group. Only the retained (newest) checkpoint can be
// repaired; anything else returns false.
func (s *Scrubber) repair(base string) bool {
	s.mu.Lock()
	retained, man, baseBytes, payload := s.retained, s.retainedMan, s.baseBytes, s.payload
	s.mu.Unlock()
	if retained != base || payload == nil {
		return false
	}
	if man == nil && baseBytes == nil {
		// Payload-only retention: for a monolithic group the payload IS
		// the base object; a sharded group needs the manifest still
		// readable in storage to locate shard spans.
		if data, err := s.st.Read(base); err == nil && shard.IsManifest(data) {
			man, _ = shard.ParseManifest(data)
			if man == nil {
				return false
			}
		}
	}
	if man != nil {
		off := 0
		for _, sh := range man.Shards {
			if off+sh.Size > len(payload) {
				return false // retained payload doesn't match the manifest
			}
			if err := s.st.Write(sh.Name, payload[off:off+sh.Size]); err != nil {
				return false
			}
			off += sh.Size
		}
		if baseBytes != nil {
			if err := s.st.Write(base, baseBytes); err != nil {
				return false
			}
		}
	} else {
		obj := baseBytes
		if obj == nil {
			obj = payload
		}
		if err := s.st.Write(base, obj); err != nil {
			return false
		}
	}
	_, err := verifyGroup(s.st, base)
	return err == nil
}

// Start launches the background scrub loop, sweeping every interval
// until Stop. Errors from individual sweeps are reflected in Stats
// only; the loop keeps going.
func (s *Scrubber) Start(interval time.Duration) error {
	if interval <= 0 {
		return fmt.Errorf("fti: scrub interval must be positive, got %v", interval)
	}
	s.mu.Lock()
	if s.stopCh != nil {
		s.mu.Unlock()
		return fmt.Errorf("fti: scrubber already running")
	}
	stop := make(chan struct{})
	s.stopCh = stop
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				_ = s.Sweep()
			}
		}
	}()
	return nil
}

// Stop halts the background loop and waits for an in-flight sweep to
// finish. Safe to call when not running.
func (s *Scrubber) Stop() {
	s.mu.Lock()
	stop := s.stopCh
	s.stopCh = nil
	s.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	s.wg.Wait()
}

func (s *Scrubber) bump(f func(*ScrubStats)) {
	s.mu.Lock()
	f(&s.stats)
	s.mu.Unlock()
}

func (m *scrubMetrics) sweepInc() {
	if m == nil {
		return
	}
	m.sweeps.Inc()
}

func (m *scrubMetrics) corruptionInc() {
	if m == nil {
		return
	}
	m.corruptions.Inc()
}

func (m *scrubMetrics) repairInc() {
	if m == nil {
		return
	}
	m.repairs.Inc()
}

func (m *scrubMetrics) droppedInc() {
	if m == nil {
		return
	}
	m.dropped.Inc()
}
