// Package precond implements the preconditioners the paper's PETSc
// configuration uses: Jacobi (diagonal) and block Jacobi with ILU(0)
// or IC(0) inside each block. A preconditioner approximates M⁻¹ and is
// applied once per iteration of PCG or left-preconditioned GMRES.
package precond

import (
	"fmt"
	"math"

	"repro/internal/sparse"
)

// Interface applies dst ← M⁻¹·r. dst and r have equal length and must
// not alias.
type Interface interface {
	Apply(dst, r []float64)
}

// Identity is the no-op preconditioner (M = I).
type Identity struct{}

// Apply copies r into dst.
func (Identity) Apply(dst, r []float64) { copy(dst, r) }

// Jacobi is the diagonal preconditioner M = diag(A). Zero diagonal
// entries are replaced by 1, matching PETSc's PCJACOBI behaviour on
// saddle-point systems such as the KKT matrices of the paper's Fig. 3.
type Jacobi struct {
	invDiag []float64
}

// NewJacobi builds a Jacobi preconditioner from the matrix diagonal.
func NewJacobi(diag []float64) *Jacobi {
	inv := make([]float64, len(diag))
	for i, d := range diag {
		if d == 0 {
			inv[i] = 1
		} else {
			inv[i] = 1 / d
		}
	}
	return &Jacobi{invDiag: inv}
}

// NewJacobiFromMatrix extracts the diagonal of a and builds the
// preconditioner.
func NewJacobiFromMatrix(a *sparse.CSR) *Jacobi {
	d := make([]float64, a.Rows)
	a.Diag(d)
	return NewJacobi(d)
}

// Apply computes dst ← D⁻¹·r.
func (j *Jacobi) Apply(dst, r []float64) {
	if len(dst) != len(j.invDiag) || len(r) != len(j.invDiag) {
		panic("precond: Jacobi.Apply length mismatch")
	}
	for i := range dst {
		dst[i] = j.invDiag[i] * r[i]
	}
}

// factorLU holds an incomplete LU factorization in CSR layout with a
// pointer to the diagonal position of each row. L has unit diagonal
// (not stored); U includes the diagonal.
type factorLU struct {
	n       int
	rowPtr  []int
	colIdx  []int
	val     []float64
	diagPos []int
}

// ilu0 computes the ILU(0) factorization of a (zero fill-in, pattern
// of A preserved) using the standard IKJ algorithm. Missing or zero
// pivots are replaced by a small multiple of the largest row entry to
// keep the factorization usable, mirroring PETSc's shift strategies.
func ilu0(a *sparse.CSR) (*factorLU, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("precond: ILU(0) needs square matrix, got %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	f := &factorLU{
		n:       n,
		rowPtr:  append([]int(nil), a.RowPtr...),
		colIdx:  append([]int(nil), a.ColIdx...),
		val:     append([]float64(nil), a.Val...),
		diagPos: make([]int, n),
	}
	// Locate (or report missing) diagonal entries.
	for i := 0; i < n; i++ {
		f.diagPos[i] = -1
		for k := f.rowPtr[i]; k < f.rowPtr[i+1]; k++ {
			if f.colIdx[k] == i {
				f.diagPos[i] = k
				break
			}
		}
		if f.diagPos[i] < 0 {
			return nil, fmt.Errorf("precond: ILU(0) requires a stored diagonal entry in row %d", i)
		}
	}
	// colPos[j] = position of column j in the current row (or -1).
	colPos := make([]int, n)
	for j := range colPos {
		colPos[j] = -1
	}
	for i := 0; i < n; i++ {
		lo, hi := f.rowPtr[i], f.rowPtr[i+1]
		for k := lo; k < hi; k++ {
			colPos[f.colIdx[k]] = k
		}
		for k := lo; k < hi && f.colIdx[k] < i; k++ {
			kc := f.colIdx[k]
			piv := f.val[f.diagPos[kc]]
			if piv == 0 {
				piv = shiftPivot(f, kc)
			}
			lik := f.val[k] / piv
			f.val[k] = lik
			// Update the intersection of row i's pattern with the
			// strict upper part of row kc.
			for kk := f.diagPos[kc] + 1; kk < f.rowPtr[kc+1]; kk++ {
				if p := colPos[f.colIdx[kk]]; p >= 0 {
					f.val[p] -= lik * f.val[kk]
				}
			}
		}
		if f.val[f.diagPos[i]] == 0 {
			f.val[f.diagPos[i]] = shiftPivot(f, i)
		}
		for k := lo; k < hi; k++ {
			colPos[f.colIdx[k]] = -1
		}
	}
	return f, nil
}

// shiftPivot returns a replacement pivot for a zero diagonal: a small
// multiple of the row's largest magnitude (or 1 for an empty row).
func shiftPivot(f *factorLU, row int) float64 {
	var m float64
	for k := f.rowPtr[row]; k < f.rowPtr[row+1]; k++ {
		if a := math.Abs(f.val[k]); a > m {
			m = a
		}
	}
	if m == 0 {
		return 1
	}
	return 1e-8 * m
}

// solve performs dst ← U⁻¹ L⁻¹ r over the factored rows [0, n).
func (f *factorLU) solve(dst, r []float64) {
	// Forward: L y = r with unit diagonal.
	for i := 0; i < f.n; i++ {
		s := r[i]
		for k := f.rowPtr[i]; k < f.diagPos[i]; k++ {
			s -= f.val[k] * dst[f.colIdx[k]]
		}
		dst[i] = s
	}
	// Backward: U x = y.
	for i := f.n - 1; i >= 0; i-- {
		s := dst[i]
		for k := f.diagPos[i] + 1; k < f.rowPtr[i+1]; k++ {
			s -= f.val[k] * dst[f.colIdx[k]]
		}
		dst[i] = s / f.val[f.diagPos[i]]
	}
}

// BlockILU0 is PETSc's default preconditioner shape: block Jacobi with
// an ILU(0) factorization inside each block. Couplings between blocks
// are dropped, which is what makes the preconditioner embarrassingly
// parallel (each MPI rank factors its own diagonal block).
type BlockILU0 struct {
	starts  []int // block boundaries, len nb+1
	factors []*factorLU
}

// NewBlockILU0 partitions the rows of a into nb contiguous blocks and
// factors each diagonal block with ILU(0).
func NewBlockILU0(a *sparse.CSR, nb int) (*BlockILU0, error) {
	if nb <= 0 {
		return nil, fmt.Errorf("precond: block count must be positive, got %d", nb)
	}
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("precond: BlockILU0 needs square matrix")
	}
	if nb > a.Rows {
		nb = a.Rows
	}
	p := &BlockILU0{starts: sparse.PartitionStarts(a.Rows, nb)}
	for bk := 0; bk < nb; bk++ {
		lo, hi := p.starts[bk], p.starts[bk+1]
		if lo == hi {
			p.factors = append(p.factors, nil)
			continue
		}
		blk := extractDiagonalBlock(a, lo, hi)
		f, err := ilu0(blk)
		if err != nil {
			return nil, fmt.Errorf("precond: block %d: %w", bk, err)
		}
		p.factors = append(p.factors, f)
	}
	return p, nil
}

// extractDiagonalBlock returns A[lo:hi, lo:hi] with local indexing,
// inserting an explicit zero diagonal entry where A has none so that
// ILU(0) (with pivot shifting) can proceed on saddle-point blocks.
func extractDiagonalBlock(a *sparse.CSR, lo, hi int) *sparse.CSR {
	n := hi - lo
	blk := &sparse.CSR{Rows: n, Cols: n, RowPtr: make([]int, n+1)}
	for i := lo; i < hi; i++ {
		sawDiag := false
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			j := a.ColIdx[k]
			if j < lo || j >= hi {
				continue
			}
			if j-lo == i-lo {
				sawDiag = true
			}
			if j-lo > i-lo && !sawDiag {
				blk.ColIdx = append(blk.ColIdx, i-lo)
				blk.Val = append(blk.Val, 0)
				sawDiag = true
			}
			blk.ColIdx = append(blk.ColIdx, j-lo)
			blk.Val = append(blk.Val, a.Val[k])
		}
		if !sawDiag {
			blk.ColIdx = append(blk.ColIdx, i-lo)
			blk.Val = append(blk.Val, 0)
		}
		blk.RowPtr[i-lo+1] = len(blk.Val)
	}
	return blk
}

// Apply computes dst ← M⁻¹·r block by block.
func (p *BlockILU0) Apply(dst, r []float64) {
	n := p.starts[len(p.starts)-1]
	if len(dst) != n || len(r) != n {
		panic("precond: BlockILU0.Apply length mismatch")
	}
	for bk, f := range p.factors {
		if f == nil {
			continue
		}
		lo, hi := p.starts[bk], p.starts[bk+1]
		f.solve(dst[lo:hi], r[lo:hi])
	}
}

// IC0 is the incomplete Cholesky factorization with zero fill-in for
// symmetric positive definite matrices: A ≈ L·Lᵀ on the pattern of the
// lower triangle of A.
type IC0 struct {
	n      int
	rowPtr []int // lower-triangular pattern including diagonal
	colIdx []int
	val    []float64
}

// NewIC0 factors the SPD matrix a. It returns an error if a pivot
// becomes non-positive (a is not SPD enough for IC(0)); callers should
// fall back to BlockILU0 in that case.
func NewIC0(a *sparse.CSR) (*IC0, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("precond: IC(0) needs square matrix")
	}
	n := a.Rows
	f := &IC0{n: n, rowPtr: make([]int, n+1)}
	for i := 0; i < n; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			if a.ColIdx[k] <= i {
				f.colIdx = append(f.colIdx, a.ColIdx[k])
				f.val = append(f.val, a.Val[k])
			}
		}
		f.rowPtr[i+1] = len(f.val)
		if f.rowPtr[i+1] == f.rowPtr[i] || f.colIdx[f.rowPtr[i+1]-1] != i {
			return nil, fmt.Errorf("precond: IC(0) requires stored diagonal in row %d", i)
		}
	}
	// Row-oriented incomplete Cholesky.
	pos := make([]int, n)
	for j := range pos {
		pos[j] = -1
	}
	for i := 0; i < n; i++ {
		lo, hi := f.rowPtr[i], f.rowPtr[i+1]
		for k := lo; k < hi; k++ {
			pos[f.colIdx[k]] = k
		}
		for k := lo; k < hi-1; k++ {
			kc := f.colIdx[k]
			// l_ik = (a_ik − Σ_{j<kc} l_ij·l_kj) / l_kk
			s := f.val[k]
			for kk := f.rowPtr[kc]; kk < f.rowPtr[kc+1]-1; kk++ {
				if p := pos[f.colIdx[kk]]; p >= 0 && p < k {
					s -= f.val[p] * f.val[kk]
				}
			}
			f.val[k] = s / f.val[f.rowPtr[kc+1]-1]
		}
		// Diagonal: l_ii = sqrt(a_ii − Σ l_ij²)
		d := f.val[hi-1]
		for k := lo; k < hi-1; k++ {
			d -= f.val[k] * f.val[k]
		}
		if d <= 0 {
			for k := lo; k < hi; k++ {
				pos[f.colIdx[k]] = -1
			}
			return nil, fmt.Errorf("precond: IC(0) pivot %d non-positive (%g); matrix not SPD enough", i, d)
		}
		f.val[hi-1] = math.Sqrt(d)
		for k := lo; k < hi; k++ {
			pos[f.colIdx[k]] = -1
		}
	}
	return f, nil
}

// Apply computes dst ← (L·Lᵀ)⁻¹·r.
func (f *IC0) Apply(dst, r []float64) {
	if len(dst) != f.n || len(r) != f.n {
		panic("precond: IC0.Apply length mismatch")
	}
	// Forward: L y = r.
	for i := 0; i < f.n; i++ {
		s := r[i]
		lo, hi := f.rowPtr[i], f.rowPtr[i+1]
		for k := lo; k < hi-1; k++ {
			s -= f.val[k] * dst[f.colIdx[k]]
		}
		dst[i] = s / f.val[hi-1]
	}
	// Backward: Lᵀ x = y, traversing L's rows in reverse and
	// scattering updates column-wise.
	for i := f.n - 1; i >= 0; i-- {
		lo, hi := f.rowPtr[i], f.rowPtr[i+1]
		dst[i] /= f.val[hi-1]
		xi := dst[i]
		for k := lo; k < hi-1; k++ {
			dst[f.colIdx[k]] -= f.val[k] * xi
		}
	}
}
