package precond

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/sparse"
	"repro/internal/vec"
)

func TestIdentity(t *testing.T) {
	r := []float64{1, 2, 3}
	dst := make([]float64, 3)
	Identity{}.Apply(dst, r)
	if vec.MaxAbsDiff(dst, r) != 0 {
		t.Fatalf("Identity.Apply = %v", dst)
	}
}

func TestJacobi(t *testing.T) {
	j := NewJacobi([]float64{2, 4, 8})
	dst := make([]float64, 3)
	j.Apply(dst, []float64{2, 4, 8})
	for _, v := range dst {
		if v != 1 {
			t.Fatalf("Jacobi.Apply = %v, want ones", dst)
		}
	}
}

func TestJacobiZeroDiagonalGuard(t *testing.T) {
	j := NewJacobi([]float64{0, 5})
	dst := make([]float64, 2)
	j.Apply(dst, []float64{3, 10})
	if dst[0] != 3 { // zero diagonal treated as 1
		t.Fatalf("zero-diagonal guard failed: %v", dst)
	}
	if dst[1] != 2 {
		t.Fatalf("Apply = %v", dst)
	}
}

func TestJacobiFromMatrix(t *testing.T) {
	a := sparse.Tridiag(4, -1, 2, -1)
	j := NewJacobiFromMatrix(a)
	dst := make([]float64, 4)
	j.Apply(dst, []float64{2, 2, 2, 2})
	for _, v := range dst {
		if v != 1 {
			t.Fatalf("Apply = %v", dst)
		}
	}
}

// applyAsMatrix multiplies out M⁻¹ acting on basis vectors so we can
// verify factorization quality as ‖A·M⁻¹·e − e‖.
func preconditionQuality(t *testing.T, a *sparse.CSR, p Interface) float64 {
	t.Helper()
	n := a.Rows
	e := make([]float64, n)
	minv := make([]float64, n)
	am := make([]float64, n)
	worst := 0.0
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 10; trial++ {
		for i := range e {
			e[i] = rng.NormFloat64()
		}
		p.Apply(minv, e)
		a.MulVec(am, minv)
		num := 0.0
		for i := range am {
			d := am[i] - e[i]
			num += d * d
		}
		den := vec.Dot(e, e)
		if q := math.Sqrt(num / den); q > worst {
			worst = q
		}
	}
	return worst
}

func TestILU0ExactForTridiagonal(t *testing.T) {
	// A tridiagonal matrix has no fill-in, so ILU(0) = exact LU and
	// the preconditioner must invert A to machine precision.
	a := sparse.Tridiag(50, -1, 2, -1)
	p, err := NewBlockILU0(a, 1)
	if err != nil {
		t.Fatal(err)
	}
	if q := preconditionQuality(t, a, p); q > 1e-10 {
		t.Fatalf("single-block ILU(0) on tridiagonal should be exact, got residual %g", q)
	}
}

func TestILU0ApproximatesPoisson(t *testing.T) {
	a := sparse.Poisson2D(8)
	p, err := NewBlockILU0(a, 1)
	if err != nil {
		t.Fatal(err)
	}
	q := preconditionQuality(t, a, p)
	if q > 0.8 {
		t.Fatalf("ILU(0) quality too poor: %g", q)
	}
	if q == 0 {
		t.Fatal("ILU(0) on 2D Poisson cannot be exact (fill-in dropped)")
	}
}

func TestBlockILU0MultipleBlocks(t *testing.T) {
	a := sparse.Poisson2D(8)
	p4, err := NewBlockILU0(a, 4)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := NewBlockILU0(a, 1)
	if err != nil {
		t.Fatal(err)
	}
	q4 := preconditionQuality(t, a, p4)
	q1 := preconditionQuality(t, a, p1)
	if q4 <= q1 {
		t.Fatalf("more blocks should be a weaker preconditioner: q1=%g q4=%g", q1, q4)
	}
	if q4 > 1.5 {
		t.Fatalf("4-block ILU(0) unreasonably poor: %g", q4)
	}
}

func TestBlockILU0MoreBlocksThanRows(t *testing.T) {
	a := sparse.Tridiag(3, -1, 2, -1)
	p, err := NewBlockILU0(a, 10)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]float64, 3)
	p.Apply(dst, []float64{2, 2, 2})
	// With one row per block this is exact Jacobi: dst = r / diag.
	for _, v := range dst {
		if v != 1 {
			t.Fatalf("Apply = %v", dst)
		}
	}
}

func TestBlockILU0HandlesZeroDiagonal(t *testing.T) {
	// KKT systems have an all-zero (2,2) block; the factorization must
	// complete via pivot shifting rather than dividing by zero.
	a := sparse.KKT(4, 8, 1)
	p, err := NewBlockILU0(a, 2)
	if err != nil {
		t.Fatal(err)
	}
	n := a.Rows
	dst := make([]float64, n)
	r := make([]float64, n)
	for i := range r {
		r[i] = 1
	}
	p.Apply(dst, r)
	for _, v := range dst {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("Apply produced NaN/Inf on zero-diagonal block")
		}
	}
}

func TestNewBlockILU0Validation(t *testing.T) {
	a := sparse.Tridiag(3, -1, 2, -1)
	if _, err := NewBlockILU0(a, 0); err == nil {
		t.Fatal("expected error for zero blocks")
	}
	rect := sparse.NewBuilder(2, 3)
	rect.Add(0, 0, 1)
	if _, err := NewBlockILU0(rect.Build(), 1); err == nil {
		t.Fatal("expected error for rectangular matrix")
	}
}

func TestIC0ExactForTridiagonal(t *testing.T) {
	a := sparse.Tridiag(40, -1, 2, -1)
	f, err := NewIC0(a)
	if err != nil {
		t.Fatal(err)
	}
	if q := preconditionQuality(t, a, f); q > 1e-10 {
		t.Fatalf("IC(0) on tridiagonal should be exact, got %g", q)
	}
}

func TestIC0ApproximatesPoisson3D(t *testing.T) {
	a := sparse.Poisson3D(4)
	f, err := NewIC0(a)
	if err != nil {
		t.Fatal(err)
	}
	if q := preconditionQuality(t, a, f); q > 0.8 {
		t.Fatalf("IC(0) quality too poor: %g", q)
	}
}

func TestIC0RejectsIndefinite(t *testing.T) {
	// Symmetric indefinite with stored diagonal: IC(0) must fail with
	// an error rather than produce NaNs.
	b := sparse.NewBuilder(2, 2)
	b.Add(0, 0, 1)
	b.Add(0, 1, 3)
	b.Add(1, 0, 3)
	b.Add(1, 1, 1) // eigenvalues 4, −2
	if _, err := NewIC0(b.Build()); err == nil {
		t.Fatal("expected IC(0) failure on indefinite matrix")
	}
}

func TestIC0MatchesILU0OnSPD(t *testing.T) {
	// For SPD systems both incomplete factorizations should give
	// comparable quality (same sparsity pattern).
	a := sparse.RandomSPD(60, 2, 4)
	ic, err := NewIC0(a)
	if err != nil {
		t.Fatal(err)
	}
	ilu, err := NewBlockILU0(a, 1)
	if err != nil {
		t.Fatal(err)
	}
	qic := preconditionQuality(t, a, ic)
	qilu := preconditionQuality(t, a, ilu)
	if qic > 10*qilu+1e-9 || qilu > 10*qic+1e-9 {
		t.Fatalf("IC0 (%g) and ILU0 (%g) should be comparable on SPD", qic, qilu)
	}
}
