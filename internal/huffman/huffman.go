// Package huffman implements a canonical Huffman coder for the
// bounded-alphabet integer streams produced by error-controlled
// quantization (package sz). SZ's speed and ratio on solver state come
// from most quantization codes landing in a handful of bins around
// zero-difference; Huffman coding turns that skew into sub-bit-per-
// symbol output.
//
// The coder is tuned for SZ's shape: a huge nominal alphabet (65,536
// bins by default) of which only a few hundred symbols actually occur
// per block. Every per-alphabet cost — table clears, table walks,
// header emission — is charged per *distinct symbol* instead, by
// tracking the distinct set during frequency counting and keeping the
// pooled alphabet-sized tables all-zero between uses (only the dirtied
// entries are cleared on release). The bitstream is emitted into an
// exactly-sized buffer computed from the frequency histogram, so the
// hot emission loop performs no capacity checks.
package huffman

import (
	"container/heap"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
)

// node is a Huffman tree node used only during code-length
// computation.
type node struct {
	freq        uint64
	symbol      int // -1 for internal
	left, right *node
	depth       int // tiebreaker for deterministic trees
}

type nodeHeap []*node

func (h nodeHeap) Len() int { return len(h) }
func (h nodeHeap) Less(i, j int) bool {
	if h[i].freq != h[j].freq {
		return h[i].freq < h[j].freq
	}
	return h[i].depth < h[j].depth
}
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(*node)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

const maxCodeLen = 58 // fits a code plus slack in a uint64 accumulator

// codeLengths computes the canonical Huffman code length per occurring
// symbol, writing into the pooled lengths table (all-zero on entry).
// distinct lists the symbols with nonzero frequency in ascending
// order, which fixes the tree tiebreaker deterministically — the same
// order the pre-distinct-tracking coder got from walking the whole
// frequency table, so emitted streams are byte-identical. Lengths are
// clamped by construction far below maxCodeLen for any realistic
// input; if the tree ever gets deeper, frequencies are flattened and
// the tree is rebuilt (a standard, lossless fallback).
func codeLengths(freq []uint64, distinct []int, lengths []int) {
	for shift := uint(0); ; shift++ {
		var h nodeHeap
		for serial, sym := range distinct {
			adj := freq[sym] >> shift
			if adj == 0 {
				adj = 1
			}
			h = append(h, &node{freq: adj, symbol: sym, depth: serial})
		}
		if len(h) == 0 {
			return
		}
		if len(h) == 1 {
			lengths[h[0].symbol] = 1
			return
		}
		heap.Init(&h)
		for h.Len() > 1 {
			a := heap.Pop(&h).(*node)
			b := heap.Pop(&h).(*node)
			d := a.depth
			if b.depth > d {
				d = b.depth
			}
			heap.Push(&h, &node{freq: a.freq + b.freq, symbol: -1, left: a, right: b, depth: d + 1})
		}
		// assignDepths overwrites every distinct symbol's entry, so no
		// clear is needed between retries.
		deepest := assignDepths(h[0], 0, lengths)
		if deepest <= maxCodeLen {
			return
		}
		// Flatten the distribution and retry: halving frequencies
		// shrinks the depth while preserving optimality structure.
	}
}

func assignDepths(n *node, depth int, lengths []int) int {
	if n.symbol >= 0 {
		if depth == 0 {
			depth = 1 // single-symbol tree
		}
		lengths[n.symbol] = depth
		return depth
	}
	l := assignDepths(n.left, depth+1, lengths)
	r := assignDepths(n.right, depth+1, lengths)
	if r > l {
		return r
	}
	return l
}

// canonicalCodes converts code lengths to canonical codes — symbols
// sorted by (length, symbol) receive consecutive code values — and
// stores them packed as code<<6 | length in the pooled packed table,
// so the emission loop loads one table entry per symbol. distinct must
// be ascending; only its entries are written.
func canonicalCodes(lengths []int, distinct []int, packed []uint64) {
	type ls struct{ sym, l int }
	active := make([]ls, 0, len(distinct))
	for _, sym := range distinct {
		if l := lengths[sym]; l > 0 {
			active = append(active, ls{sym, l})
		}
	}
	sort.Slice(active, func(i, j int) bool {
		if active[i].l != active[j].l {
			return active[i].l < active[j].l
		}
		return active[i].sym < active[j].sym
	})
	var code uint64
	prevLen := 0
	for _, e := range active {
		code <<= uint(e.l - prevLen)
		packed[e.sym] = code<<6 | uint64(e.l)
		code++
		prevLen = e.l
	}
}

// tablePool recycles the alphabet-sized uint64 tables (frequencies and
// packed codes): with the default SZ alphabet of 65,536 bins a fresh
// table is a 512 KiB allocation per encoded block. Invariant: every
// pooled table is all-zero up to its capacity, maintained by clearing
// exactly the dirtied entries on release — O(distinct symbols), not a
// 512 KiB memclr per block.
var tablePool = sync.Pool{New: func() any { s := make([]uint64, 0, 1024); return &s }}

// getTable returns an all-zero []uint64 of length n.
func getTable(n int) []uint64 {
	s := *tablePool.Get().(*[]uint64)
	if cap(s) < n {
		s = make([]uint64, n)
	}
	return s[:n]
}

// putTable recycles a table, zeroing the entries listed in dirty
// (every index the caller wrote) to restore the pool invariant.
func putTable(s []uint64, dirty []int) {
	for _, d := range dirty {
		s[d] = 0
	}
	s = s[:0]
	tablePool.Put(&s)
}

// lengthsPool recycles the per-symbol code-length tables under the
// same all-zero invariant.
var lengthsPool = sync.Pool{New: func() any { s := make([]int, 0, 1024); return &s }}

func getLengthTable(n int) []int {
	s := *lengthsPool.Get().(*[]int)
	if cap(s) < n {
		s = make([]int, n)
	}
	return s[:n]
}

func putLengthTable(s []int, dirty []int) {
	for _, d := range dirty {
		s[d] = 0
	}
	s = s[:0]
	lengthsPool.Put(&s)
}

// symsPool recycles the distinct-symbol lists (no zero invariant).
var symsPool = sync.Pool{New: func() any { s := make([]int, 0, 1024); return &s }}

// Encode Huffman-codes the symbol stream. Symbols must lie in
// [0, alphabet). The output is self-describing: Decode needs no side
// information.
func Encode(symbols []int, alphabet int) ([]byte, error) {
	return AppendEncode(nil, symbols, alphabet)
}

// AppendEncode is Encode appending to dst (which may be nil or a
// recycled buffer), returning the extended slice. It is the
// allocation-free entry point used by the blocked SZ compressor, which
// encodes many blocks concurrently into pooled buffers.
func AppendEncode(dst []byte, symbols []int, alphabet int) ([]byte, error) {
	if alphabet <= 0 {
		return nil, fmt.Errorf("huffman: alphabet size must be positive, got %d", alphabet)
	}
	freq := getTable(alphabet)
	distinct := (*symsPool.Get().(*[]int))[:0]
	defer func() {
		putTable(freq, distinct)
		distinct = distinct[:0]
		symsPool.Put(&distinct)
	}()
	for _, s := range symbols {
		if uint(s) >= uint(alphabet) {
			return nil, fmt.Errorf("huffman: symbol %d outside alphabet [0,%d)", s, alphabet)
		}
		if freq[s] == 0 {
			distinct = append(distinct, s)
		}
		freq[s]++
	}
	sort.Ints(distinct)
	lengths := getLengthTable(alphabet)
	packed := getTable(alphabet)
	defer func() {
		putLengthTable(lengths, distinct)
		putTable(packed, distinct)
	}()
	codeLengths(freq, distinct, lengths)
	canonicalCodes(lengths, distinct, packed)

	out := dst
	var scratch [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) {
		n := binary.PutUvarint(scratch[:], v)
		out = append(out, scratch[:n]...)
	}
	putUvarint(uint64(len(symbols)))
	putUvarint(uint64(alphabet))
	// Table: count of present symbols, then (symbol, length) pairs in
	// ascending symbol order. Every distinct symbol has a code.
	putUvarint(uint64(len(distinct)))
	totalBits := uint64(0)
	for _, sym := range distinct {
		putUvarint(uint64(sym))
		out = append(out, byte(lengths[sym]))
		totalBits += freq[sym] * uint64(lengths[sym])
	}

	// Bitstream, MSB-first within the accumulator. The histogram gives
	// the exact output size, so the buffer is grown once and the hot
	// loop writes by index — no per-byte capacity checks.
	nBytes := int((totalBits + 7) / 8)
	start := len(out)
	if cap(out)-start < nBytes {
		grown := make([]byte, start, start+nBytes)
		copy(grown, out)
		out = grown
	}
	buf := out[start : start+nBytes]
	var acc uint64
	var nbits uint
	idx := 0
	for _, s := range symbols {
		e := packed[s]
		l := uint(e & 63)
		acc = (acc << l) | (e >> 6)
		nbits += l
		for nbits >= 8 {
			nbits -= 8
			buf[idx] = byte(acc >> nbits)
			idx++
		}
	}
	if nbits > 0 {
		buf[idx] = byte(acc << (8 - nbits))
		idx++
	}
	return out[:start+idx], nil
}

// Decode reverses Encode.
func Decode(data []byte) ([]int, error) {
	return DecodeInto(data, nil)
}

// decEntry is one code-table row during decode.
type decEntry struct{ sym, l int }

// DecodeInto is Decode writing into buf's backing array when its
// capacity suffices (buf may be nil or a recycled zero-length slice).
// The returned slice aliases buf when no growth was needed, letting
// callers pool the symbol buffer across blocks. The decoder builds its
// canonical tables from the stream's (symbol, length) pairs alone — no
// alphabet-sized scratch, so sparse tables over huge alphabets decode
// in O(present) setup time.
func DecodeInto(data []byte, buf []int) ([]int, error) {
	off := 0
	getUvarint := func() (uint64, error) {
		v, n := binary.Uvarint(data[off:])
		if n <= 0 {
			return 0, fmt.Errorf("huffman: truncated header at offset %d", off)
		}
		off += n
		return v, nil
	}
	count, err := getUvarint()
	if err != nil {
		return nil, err
	}
	alphabet, err := getUvarint()
	if err != nil {
		return nil, err
	}
	present, err := getUvarint()
	if err != nil {
		return nil, err
	}
	if alphabet > 1<<24 {
		return nil, fmt.Errorf("huffman: alphabet %d exceeds 2^24", alphabet)
	}
	// Allocation guards: every symbol costs at least one bit, every
	// table entry at least two bytes.
	if count > 8*uint64(len(data)) {
		return nil, fmt.Errorf("huffman: %d symbols exceed %d stream bytes", count, len(data))
	}
	if present > alphabet || present > uint64(len(data)-off)/2 {
		return nil, fmt.Errorf("huffman: table of %d entries cannot fit", present)
	}
	active := make([]decEntry, 0, present)
	for i := uint64(0); i < present; i++ {
		sym, err := getUvarint()
		if err != nil {
			return nil, err
		}
		if off >= len(data) {
			return nil, fmt.Errorf("huffman: truncated table")
		}
		if sym >= alphabet {
			return nil, fmt.Errorf("huffman: table symbol %d outside alphabet", sym)
		}
		l := int(data[off])
		off++
		if l < 1 || l > maxCodeLen {
			return nil, fmt.Errorf("huffman: invalid code length %d for symbol %d", l, sym)
		}
		active = append(active, decEntry{sym: int(sym), l: l})
	}
	if count == 0 {
		if buf != nil {
			return buf[:0], nil
		}
		return []int{}, nil
	}
	if len(active) == 0 {
		return nil, fmt.Errorf("huffman: no code table for %d symbols", count)
	}
	sort.Slice(active, func(i, j int) bool {
		if active[i].l != active[j].l {
			return active[i].l < active[j].l
		}
		return active[i].sym < active[j].sym
	})

	// Canonical (length → firstCode, firstIndex) decoding table.
	maxLen := active[len(active)-1].l
	var firstCode [maxCodeLen + 1]uint64
	var firstIdx, countAt [maxCodeLen + 1]int
	for _, e := range active {
		countAt[e.l]++
	}
	var code uint64
	prevLen := 0
	idx := 0
	for l := 1; l <= maxLen; l++ {
		if countAt[l] == 0 {
			continue
		}
		code <<= uint(l - prevLen)
		firstCode[l] = code
		firstIdx[l] = idx
		code += uint64(countAt[l])
		idx += countAt[l]
		prevLen = l
	}

	out := buf[:0]
	if uint64(cap(out)) < count {
		out = make([]int, 0, count)
	}
	var acc uint64
	var nbits uint
	for uint64(len(out)) < count {
		// Refill.
		for nbits < uint(maxLen) && off < len(data) {
			acc = (acc << 8) | uint64(data[off])
			off++
			nbits += 8
		}
		matched := false
		for l := 1; l <= maxLen && uint(l) <= nbits; l++ {
			if countAt[l] == 0 {
				continue
			}
			c := acc >> (nbits - uint(l))
			rel := int(c) - int(firstCode[l])
			if rel >= 0 && rel < countAt[l] {
				out = append(out, active[firstIdx[l]+rel].sym)
				nbits -= uint(l)
				acc &= (1 << nbits) - 1
				matched = true
				break
			}
		}
		if !matched {
			return nil, fmt.Errorf("huffman: corrupt bitstream at symbol %d", len(out))
		}
	}
	return out, nil
}
