// Package huffman implements a canonical Huffman coder for the
// bounded-alphabet integer streams produced by error-controlled
// quantization (package sz). SZ's speed and ratio on solver state come
// from most quantization codes landing in a handful of bins around
// zero-difference; Huffman coding turns that skew into sub-bit-per-
// symbol output.
package huffman

import (
	"container/heap"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
)

// node is a Huffman tree node used only during code-length
// computation.
type node struct {
	freq        uint64
	symbol      int // -1 for internal
	left, right *node
	depth       int // tiebreaker for deterministic trees
}

type nodeHeap []*node

func (h nodeHeap) Len() int { return len(h) }
func (h nodeHeap) Less(i, j int) bool {
	if h[i].freq != h[j].freq {
		return h[i].freq < h[j].freq
	}
	return h[i].depth < h[j].depth
}
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(*node)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

const maxCodeLen = 58 // fits a code plus slack in a uint64 accumulator

// codeLengths returns the canonical Huffman code length per symbol
// given frequencies (zero frequency ⇒ length 0), writing into the
// pooled lengths slice its caller provides (pre-zeroed, same length as
// freq). Lengths are clamped by construction far below maxCodeLen for
// any realistic input; if the tree ever gets deeper, frequencies are
// flattened and the tree is rebuilt (a standard, lossless fallback).
func codeLengths(freq []uint64, lengths []int) []int {
	for shift := uint(0); ; shift++ {
		var h nodeHeap
		serial := 0
		for sym, f := range freq {
			if f == 0 {
				continue
			}
			adj := f >> shift
			if adj == 0 {
				adj = 1
			}
			h = append(h, &node{freq: adj, symbol: sym, depth: serial})
			serial++
		}
		if len(h) == 0 {
			return lengths
		}
		if len(h) == 1 {
			lengths[h[0].symbol] = 1
			return lengths
		}
		heap.Init(&h)
		for h.Len() > 1 {
			a := heap.Pop(&h).(*node)
			b := heap.Pop(&h).(*node)
			d := a.depth
			if b.depth > d {
				d = b.depth
			}
			heap.Push(&h, &node{freq: a.freq + b.freq, symbol: -1, left: a, right: b, depth: d + 1})
		}
		root := h[0]
		for i := range lengths {
			lengths[i] = 0
		}
		deepest := assignDepths(root, 0, lengths)
		if deepest <= maxCodeLen {
			return lengths
		}
		// Flatten the distribution and retry: halving frequencies
		// shrinks the depth while preserving optimality structure.
	}
}

func assignDepths(n *node, depth int, lengths []int) int {
	if n.symbol >= 0 {
		if depth == 0 {
			depth = 1 // single-symbol tree
		}
		lengths[n.symbol] = depth
		return depth
	}
	l := assignDepths(n.left, depth+1, lengths)
	r := assignDepths(n.right, depth+1, lengths)
	if r > l {
		return r
	}
	return l
}

// canonicalCodes converts code lengths to canonical codes: symbols
// sorted by (length, symbol) receive consecutive code values. codes is
// a caller-provided (pooled) slice of the same length as lengths; only
// entries for symbols with nonzero length are written, and only those
// are ever read back.
func canonicalCodes(lengths []int, codes []uint64) {
	type ls struct{ sym, l int }
	var active []ls
	for sym, l := range lengths {
		if l > 0 {
			active = append(active, ls{sym, l})
		}
	}
	sort.Slice(active, func(i, j int) bool {
		if active[i].l != active[j].l {
			return active[i].l < active[j].l
		}
		return active[i].sym < active[j].sym
	})
	var code uint64
	prevLen := 0
	for _, e := range active {
		code <<= uint(e.l - prevLen)
		codes[e.sym] = code
		code++
		prevLen = e.l
	}
}

// freqPool recycles frequency-count buffers: with the default SZ
// alphabet of 65,536 bins a fresh table is a 512 KiB allocation per
// encoded block, which dominated the allocation profile of the
// checkpoint path. Clearing a pooled table is a memclr — far cheaper
// than allocating and garbage-collecting one.
var freqPool = sync.Pool{New: func() any { s := make([]uint64, 0, 1024); return &s }}

func getFreq(n int) []uint64 {
	s := *freqPool.Get().(*[]uint64)
	if cap(s) < n {
		s = make([]uint64, n)
	} else {
		s = s[:n]
		clear(s)
	}
	return s
}

func putFreq(s []uint64) {
	s = s[:0]
	freqPool.Put(&s)
}

// getCodes returns an uncleared pooled []uint64 for canonical codes;
// canonicalCodes writes every entry that is ever read back.
func getCodes(n int) []uint64 {
	s := *freqPool.Get().(*[]uint64)
	if cap(s) < n {
		s = make([]uint64, n)
	}
	return s[:n]
}

// lengthsPool recycles the per-symbol code-length tables (another
// 512 KiB at the default SZ alphabet).
var lengthsPool = sync.Pool{New: func() any { s := make([]int, 0, 1024); return &s }}

func getLengths(n int) []int {
	s := *lengthsPool.Get().(*[]int)
	if cap(s) < n {
		s = make([]int, n)
	} else {
		s = s[:n]
		clear(s)
	}
	return s
}

func putLengths(s []int) {
	s = s[:0]
	lengthsPool.Put(&s)
}

// Encode Huffman-codes the symbol stream. Symbols must lie in
// [0, alphabet). The output is self-describing: Decode needs no side
// information.
func Encode(symbols []int, alphabet int) ([]byte, error) {
	return AppendEncode(nil, symbols, alphabet)
}

// AppendEncode is Encode appending to dst (which may be nil or a
// recycled buffer), returning the extended slice. It is the
// allocation-free entry point used by the blocked SZ compressor, which
// encodes many blocks concurrently into pooled buffers.
func AppendEncode(dst []byte, symbols []int, alphabet int) ([]byte, error) {
	if alphabet <= 0 {
		return nil, fmt.Errorf("huffman: alphabet size must be positive, got %d", alphabet)
	}
	freq := getFreq(alphabet)
	defer putFreq(freq)
	for _, s := range symbols {
		if s < 0 || s >= alphabet {
			return nil, fmt.Errorf("huffman: symbol %d outside alphabet [0,%d)", s, alphabet)
		}
		freq[s]++
	}
	lengths := codeLengths(freq, getLengths(alphabet))
	defer putLengths(lengths)
	codes := getCodes(alphabet)
	defer putFreq(codes)
	canonicalCodes(lengths, codes)

	out := dst
	var scratch [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) {
		n := binary.PutUvarint(scratch[:], v)
		out = append(out, scratch[:n]...)
	}
	putUvarint(uint64(len(symbols)))
	putUvarint(uint64(alphabet))
	// Table: count of present symbols, then (symbol, length) pairs.
	present := 0
	for _, l := range lengths {
		if l > 0 {
			present++
		}
	}
	putUvarint(uint64(present))
	for sym, l := range lengths {
		if l > 0 {
			putUvarint(uint64(sym))
			out = append(out, byte(l))
		}
	}
	// Bitstream, MSB-first within the accumulator.
	var acc uint64
	var nbits uint
	for _, s := range symbols {
		l := uint(lengths[s])
		acc = (acc << l) | codes[s]
		nbits += l
		for nbits >= 8 {
			nbits -= 8
			out = append(out, byte(acc>>nbits))
		}
	}
	if nbits > 0 {
		out = append(out, byte(acc<<(8-nbits)))
	}
	return out, nil
}

// Decode reverses Encode.
func Decode(data []byte) ([]int, error) {
	return DecodeInto(data, nil)
}

// DecodeInto is Decode writing into buf's backing array when its
// capacity suffices (buf may be nil or a recycled zero-length slice).
// The returned slice aliases buf when no growth was needed, letting
// callers pool the symbol buffer across blocks.
func DecodeInto(data []byte, buf []int) ([]int, error) {
	off := 0
	getUvarint := func() (uint64, error) {
		v, n := binary.Uvarint(data[off:])
		if n <= 0 {
			return 0, fmt.Errorf("huffman: truncated header at offset %d", off)
		}
		off += n
		return v, nil
	}
	count, err := getUvarint()
	if err != nil {
		return nil, err
	}
	alphabet, err := getUvarint()
	if err != nil {
		return nil, err
	}
	present, err := getUvarint()
	if err != nil {
		return nil, err
	}
	if alphabet > 1<<24 {
		return nil, fmt.Errorf("huffman: alphabet %d exceeds 2^24", alphabet)
	}
	lengths := getLengths(int(alphabet))
	defer putLengths(lengths)
	for i := uint64(0); i < present; i++ {
		sym, err := getUvarint()
		if err != nil {
			return nil, err
		}
		if off >= len(data) {
			return nil, fmt.Errorf("huffman: truncated table")
		}
		if sym >= alphabet {
			return nil, fmt.Errorf("huffman: table symbol %d outside alphabet", sym)
		}
		lengths[sym] = int(data[off])
		off++
	}
	if count == 0 {
		if buf != nil {
			return buf[:0], nil
		}
		return []int{}, nil
	}
	codes := getCodes(int(alphabet))
	defer putFreq(codes)
	canonicalCodes(lengths, codes)

	// Build a (length → firstCode, firstIndex) canonical decoding
	// table plus symbols sorted canonically.
	type ls struct{ sym, l int }
	var active []ls
	for sym, l := range lengths {
		if l > 0 {
			active = append(active, ls{sym, l})
		}
	}
	if len(active) == 0 {
		return nil, fmt.Errorf("huffman: no code table for %d symbols", count)
	}
	sort.Slice(active, func(i, j int) bool {
		if active[i].l != active[j].l {
			return active[i].l < active[j].l
		}
		return active[i].sym < active[j].sym
	})
	maxLen := active[len(active)-1].l
	firstCode := make([]uint64, maxLen+1)
	firstIdx := make([]int, maxLen+1)
	countAt := make([]int, maxLen+1)
	for _, e := range active {
		countAt[e.l]++
	}
	idx := 0
	for l := 1; l <= maxLen; l++ {
		if countAt[l] > 0 {
			// First canonical code of this length is the code of the
			// first symbol of this length in canonical order.
			firstCode[l] = codes[active[idx].sym]
			firstIdx[l] = idx
			idx += countAt[l]
		}
	}

	out := buf[:0]
	if uint64(cap(out)) < count {
		out = make([]int, 0, count)
	}
	var acc uint64
	var nbits uint
	for uint64(len(out)) < count {
		// Refill.
		for nbits < uint(maxLen) && off < len(data) {
			acc = (acc << 8) | uint64(data[off])
			off++
			nbits += 8
		}
		matched := false
		for l := 1; l <= maxLen && uint(l) <= nbits; l++ {
			if countAt[l] == 0 {
				continue
			}
			code := acc >> (nbits - uint(l))
			rel := int(code) - int(firstCode[l])
			if rel >= 0 && rel < countAt[l] {
				out = append(out, active[firstIdx[l]+rel].sym)
				nbits -= uint(l)
				acc &= (1 << nbits) - 1
				matched = true
				break
			}
		}
		if !matched {
			return nil, fmt.Errorf("huffman: corrupt bitstream at symbol %d", len(out))
		}
	}
	return out, nil
}
