package huffman

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, symbols []int, alphabet int) []byte {
	t.Helper()
	enc, err := Encode(symbols, alphabet)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != len(symbols) {
		t.Fatalf("decoded %d symbols, want %d", len(dec), len(symbols))
	}
	for i := range symbols {
		if dec[i] != symbols[i] {
			t.Fatalf("symbol %d: got %d, want %d", i, dec[i], symbols[i])
		}
	}
	return enc
}

func TestRoundTripSimple(t *testing.T) {
	roundTrip(t, []int{0, 1, 2, 1, 0, 0, 0, 3}, 4)
}

func TestRoundTripEmpty(t *testing.T) {
	roundTrip(t, []int{}, 10)
}

func TestRoundTripSingleSymbolRepeated(t *testing.T) {
	symbols := make([]int, 1000)
	for i := range symbols {
		symbols[i] = 5
	}
	enc := roundTrip(t, symbols, 8)
	// 1000 identical symbols at 1 bit each ≈ 125 bytes + tiny header.
	if len(enc) > 200 {
		t.Fatalf("single-symbol stream should compress to ~125 bytes, got %d", len(enc))
	}
}

func TestRoundTripSingleElement(t *testing.T) {
	roundTrip(t, []int{3}, 4)
}

func TestSkewedDistributionCompresses(t *testing.T) {
	// 95% of symbols are the same value — the typical quantization-
	// code distribution for smooth data. Expect close to the entropy
	// (~0.4 bits/symbol), far below the naive 2 bytes/symbol.
	rng := rand.New(rand.NewSource(1))
	symbols := make([]int, 100000)
	for i := range symbols {
		if rng.Float64() < 0.95 {
			symbols[i] = 32768
		} else {
			symbols[i] = rng.Intn(65536)
		}
	}
	enc, err := Encode(symbols, 65536)
	if err != nil {
		t.Fatal(err)
	}
	// Entropy ≈ 1.1 bits/symbol plus ≈1.6 bits/symbol of code-table
	// header (≈4,800 distinct rare symbols); anything below 4
	// bits/symbol confirms the coder exploits the skew (uncoded would
	// be 16 bits/symbol).
	if bits := 8 * float64(len(enc)) / float64(len(symbols)); bits > 4 {
		t.Fatalf("skewed stream coded at %.2f bits/symbol, want < 4", bits)
	}
	roundTrip(t, symbols, 65536)
}

func TestUniformDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	symbols := make([]int, 5000)
	for i := range symbols {
		symbols[i] = rng.Intn(256)
	}
	roundTrip(t, symbols, 256)
}

func TestEncodeRejectsOutOfRange(t *testing.T) {
	if _, err := Encode([]int{5}, 4); err == nil {
		t.Fatal("expected error for symbol outside alphabet")
	}
	if _, err := Encode([]int{-1}, 4); err == nil {
		t.Fatal("expected error for negative symbol")
	}
	if _, err := Encode(nil, 0); err == nil {
		t.Fatal("expected error for empty alphabet")
	}
}

func TestDecodeRejectsTruncated(t *testing.T) {
	enc, err := Encode([]int{1, 2, 3, 1, 2, 3, 0, 0, 0}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(enc[:2]); err == nil {
		t.Fatal("expected error on truncated header")
	}
	if _, err := Decode(enc[:len(enc)-1]); err == nil {
		t.Fatal("expected error on truncated bitstream")
	}
}

func TestCodeLengthsKraft(t *testing.T) {
	// Kraft inequality must hold with equality for a full tree.
	freq := []uint64{100, 50, 20, 5, 5, 1, 0, 0}
	var distinct []int
	for sym, f := range freq {
		if f > 0 {
			distinct = append(distinct, sym)
		}
	}
	lengths := make([]int, len(freq))
	codeLengths(freq, distinct, lengths)
	var kraft float64
	for sym, l := range lengths {
		if freq[sym] > 0 && l == 0 {
			t.Fatalf("symbol %d has frequency but no code", sym)
		}
		if l > 0 {
			kraft += 1 / float64(uint64(1)<<uint(l))
		}
	}
	if kraft > 1.0000001 {
		t.Fatalf("Kraft sum %v > 1: codes not decodable", kraft)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(2000)
		alphabet := 1 + rng.Intn(300)
		symbols := make([]int, n)
		// Mix of skewed and uniform regions.
		for i := range symbols {
			if rng.Float64() < 0.7 {
				symbols[i] = rng.Intn(1 + alphabet/10)
			} else {
				symbols[i] = rng.Intn(alphabet)
			}
		}
		enc, err := Encode(symbols, alphabet)
		if err != nil {
			return false
		}
		dec, err := Decode(enc)
		if err != nil || len(dec) != n {
			return false
		}
		for i := range symbols {
			if dec[i] != symbols[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
