package abft

import (
	"math"
	"strings"
	"testing"

	"repro/internal/precond"
	"repro/internal/solver"
	"repro/internal/sparse"
)

// protectedCG builds a Jacobi-preconditioned CG on a 3D Poisson system
// with an exact-state guard over it.
func protectedCG(t *testing.T, n int, cfg Config) (*sparse.CSR, *solver.CG, *Guard) {
	t.Helper()
	a := sparse.Poisson3D(n)
	b := sparse.OnesRHS(a.Rows)
	cg := solver.NewCG(a, precond.NewJacobiFromMatrix(a), b, nil, solver.SeqSpace{},
		solver.Options{RTol: 1e-8})
	g, err := NewGuard(a, b, cg, cfg)
	if err != nil {
		t.Fatalf("NewGuard: %v", err)
	}
	return a, cg, g
}

// stepObserved advances the solver k iterations, retaining redundancy
// after every step, and returns the last residual norm.
func stepObserved(s solver.Checkpointable, g *Guard, k int) float64 {
	rnorm := s.ResidualNorm()
	for i := 0; i < k; i++ {
		rnorm = s.Step()
		g.Observe()
	}
	return rnorm
}

func TestExactStateReconstructionConvergesLikeFailureFree(t *testing.T) {
	// Failure-free reference: iterations to converge.
	a := sparse.Poisson3D(8)
	b := sparse.OnesRHS(a.Rows)
	ref := solver.NewCG(a, precond.NewJacobiFromMatrix(a), b, nil, solver.SeqSpace{},
		solver.Options{RTol: 1e-8})
	refRes, err := solver.RunToConvergence(ref, solver.Options{}, nil)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	if !refRes.Converged {
		t.Fatal("reference run did not converge")
	}

	_, cg, g := protectedCG(t, 8, Config{})
	stepObserved(cg, g, 10)
	preIt := cg.Iteration()

	rank := 3
	g.FailRank(rank)
	if !math.IsNaN(cg.X()[g.cuts[rank]]) {
		t.Fatal("FailRank did not poison the block")
	}
	rec, err := g.Reconstruct()
	if err != nil {
		t.Fatalf("Reconstruct: %v", err)
	}
	if rec.Method != ExactState || rec.Rank != rank {
		t.Fatalf("recon = %+v, want exact-state rank %d", rec, rank)
	}
	if rec.Iteration != preIt {
		t.Fatalf("reconstructed iteration %d, want pre-failure %d", rec.Iteration, preIt)
	}
	if rec.LocalIterations <= 0 {
		t.Fatal("exact-state reconstruction reported no local-solve iterations")
	}
	if !(rec.ResidualNorm <= g.cfg.VerifyFactor*rec.Reference) {
		t.Fatalf("accepted residual %.3e outside the verification band (ref %.3e)", rec.ResidualNorm, rec.Reference)
	}

	// The run continues to the same tolerance in (essentially) the same
	// number of iterations — the failure never happened, algorithmically.
	res, err := solver.RunToConvergence(cg, solver.Options{}, func(int, float64) error {
		g.Observe()
		return nil
	})
	if err != nil {
		t.Fatalf("post-reconstruction run: %v", err)
	}
	if !res.Converged {
		t.Fatal("ABFT-recovered CG did not converge")
	}
	if d := res.Iterations - refRes.Iterations; d < -2 || d > 2 {
		t.Fatalf("ABFT-recovered CG took %d iterations, failure-free took %d — not exact-state recovery",
			res.Iterations, refRes.Iterations)
	}
	st := g.Stats()
	if st.Reconstructions != 1 || st.Rejected != 0 {
		t.Fatalf("stats = %+v, want exactly one accepted reconstruction", st)
	}
}

func TestBackwardForwardReconstruction(t *testing.T) {
	a := sparse.Poisson2D(14)
	b := sparse.OnesRHS(a.Rows)
	s, err := solver.NewStationary(solver.KindJacobi, a, b, nil, 0, solver.Options{RTol: 1e-6})
	if err != nil {
		t.Fatalf("NewStationary: %v", err)
	}
	g, err := NewGuard(a, b, s, Config{Method: BackwardForward, ProtectEvery: 5})
	if err != nil {
		t.Fatalf("NewGuard: %v", err)
	}
	stepObserved(s, g, 40)
	rank := g.FailNextRank()
	rec, err := g.Reconstruct()
	if err != nil {
		t.Fatalf("Reconstruct: %v", err)
	}
	if rec.Method != BackwardForward || rec.Rank != rank {
		t.Fatalf("recon = %+v, want backward-forward rank %d", rec, rank)
	}
	if rec.LocalIterations != 0 {
		t.Fatalf("backward/forward reported %d local iterations, want 0 (no local solve)", rec.LocalIterations)
	}
	res, err := solver.RunToConvergence(s, solver.Options{}, func(int, float64) error {
		g.Observe()
		return nil
	})
	if err != nil {
		t.Fatalf("post-reconstruction run: %v", err)
	}
	if !res.Converged {
		t.Fatal("backward/forward-recovered Jacobi did not converge")
	}
}

func TestCorruptRetainedRejectedByChecksum(t *testing.T) {
	_, cg, g := protectedCG(t, 8, Config{})
	stepObserved(cg, g, 8)
	g.CorruptRetained()
	g.FailRank(0)
	_, err := g.Reconstruct()
	if err == nil {
		t.Fatal("corrupted retained state was accepted")
	}
	if !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("rejection reason %q does not name the checksum", err)
	}
	if st := g.Stats(); st.Rejected != 1 || st.Reconstructions != 0 {
		t.Fatalf("stats = %+v, want one rejection and no acceptance", st)
	}
}

func TestStaleRetentionRejected(t *testing.T) {
	_, cg, g := protectedCG(t, 8, Config{})
	stepObserved(cg, g, 6)
	// Two steps without Observe: the redundancy now describes an older
	// iteration and the exact-state system no longer holds.
	cg.Step()
	cg.Step()
	g.FailRank(1)
	_, err := g.Reconstruct()
	if err == nil {
		t.Fatal("stale retained state was accepted")
	}
	if !strings.Contains(err.Error(), "stale") {
		t.Fatalf("rejection reason %q does not name staleness", err)
	}
}

func TestFailureBeforeFirstObserveRejected(t *testing.T) {
	_, _, g := protectedCG(t, 6, Config{})
	g.FailRank(0)
	if _, err := g.Reconstruct(); err == nil {
		t.Fatal("reconstruction with no retained state was accepted")
	}
}

func TestReconstructWithoutFailureRejected(t *testing.T) {
	_, cg, g := protectedCG(t, 6, Config{})
	stepObserved(cg, g, 3)
	if _, err := g.Reconstruct(); err == nil {
		t.Fatal("reconstruction with no failed rank was accepted")
	}
}

func TestFailNextRankDeterministicPerSeed(t *testing.T) {
	draw := func(seed int64) []int {
		_, cg, g := protectedCG(t, 6, Config{Seed: seed})
		var ranks []int
		for i := 0; i < 6; i++ {
			stepObserved(cg, g, 1)
			ranks = append(ranks, g.FailNextRank())
			if _, err := g.Reconstruct(); err != nil {
				t.Fatalf("draw %d: %v", i, err)
			}
		}
		return ranks
	}
	a, b := draw(7), draw(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seeded rank streams diverge at %d: %v vs %v", i, a, b)
		}
	}
}

func TestGuardMethodValidation(t *testing.T) {
	a := sparse.Poisson2D(6)
	b := sparse.OnesRHS(a.Rows)
	s, err := solver.NewStationary(solver.KindJacobi, a, b, nil, 0, solver.Options{})
	if err != nil {
		t.Fatalf("NewStationary: %v", err)
	}
	if _, err := NewGuard(a, b, s, Config{Method: ExactState}); err == nil {
		t.Fatal("exact-state guard accepted a non-CG solver")
	}
	cg := solver.NewCG(a, precond.NewJacobiFromMatrix(a), b, nil, solver.SeqSpace{}, solver.Options{})
	if _, err := NewGuard(a, b, cg, Config{Method: BackwardForward}); err != nil {
		t.Fatalf("backward/forward guard rejected restartable CG: %v", err)
	}
}

func TestChecksumOperatorDetectsSilentCorruption(t *testing.T) {
	a := sparse.Poisson3D(6)
	co := NewChecksumOperator(a)
	x := make([]float64, a.Rows)
	for i := range x {
		x[i] = float64(i%13) - 6
	}
	dst := make([]float64, a.Rows)
	ref := make([]float64, a.Rows)
	a.MulVec(ref, x)
	co.MulVec(dst, x)
	for i := range dst {
		if dst[i] != ref[i] {
			t.Fatal("checksum operator changed the numerics")
		}
	}
	if !co.Verified() {
		t.Fatalf("clean application flagged: %d mismatches", co.Mismatches())
	}
	// Silently corrupt the operator after the checksums were
	// precomputed: the next application must be flagged.
	a.Val[len(a.Val)/2] *= 3
	co.MulVec(dst, x)
	if co.Mismatches() != 1 {
		t.Fatalf("corrupted application not flagged: %d mismatches after 2 applications", co.Mismatches())
	}
	if co.Applications() != 2 {
		t.Fatalf("applications = %d, want 2", co.Applications())
	}
}
