package abft

import "repro/internal/obs"

// guardMetrics is the guard's observability bundle. A nil bundle (the
// default) makes every hook a no-op, so the retention and
// reconstruction paths call them unconditionally.
type guardMetrics struct {
	observes         *obs.Counter
	reconstructions  *obs.Counter
	rejects          *obs.Counter
	checksumFailures *obs.Counter
	localIterations  *obs.Counter
}

// Instrument attaches metric sinks to the guard's retention and
// reconstruction paths. Passing nil detaches.
func (g *Guard) Instrument(reg *obs.Registry) {
	if reg == nil {
		g.met = nil
		return
	}
	g.met = &guardMetrics{
		observes:         reg.Counter(obs.MABFTObservesTotal),
		reconstructions:  reg.Counter(obs.MABFTReconstructionsTotal),
		rejects:          reg.Counter(obs.MABFTRejectsTotal),
		checksumFailures: reg.Counter(obs.MABFTChecksumFailuresTotal),
		localIterations:  reg.Counter(obs.MABFTLocalIterationsTotal),
	}
}

func (m *guardMetrics) observe() {
	if m == nil {
		return
	}
	m.observes.Inc()
}

func (m *guardMetrics) reject() {
	if m == nil {
		return
	}
	m.rejects.Inc()
}

func (m *guardMetrics) reconstruct(localIterations int) {
	if m == nil {
		return
	}
	m.reconstructions.Inc()
	m.localIterations.Add(uint64(localIterations))
}

func (m *guardMetrics) checksumFailure() {
	if m == nil {
		return
	}
	m.checksumFailures.Inc()
}
