// Package abft provides algorithm-based fault tolerance for the
// Krylov solvers: checkpoint-free recovery of CG/PCG state from
// redundant algorithm data, so the tiered recovery chain can try an
// algorithmic reconstruction before touching the parallel file system.
//
// Two reconstruction methods are implemented, following the related
// work cited in PAPERS.md:
//
//   - ExactState (Pachajoa & Levonyak): every iteration the guard
//     retains redundant copies of the search direction p and residual r
//     plus the replicated scalars (i, ρ, ‖r‖). When a rank's block of x
//     is lost, the block is reconstructed by solving the local system
//
//     A_kk·x_k = b_k − r_k − Σ_{j≠k} A_kj·x_j
//
//     with a local inner solve, after which the full dynamic state
//     (x, p, ρ, i) is reinstated exactly (up to the inner tolerance)
//     and CG continues as if the failure never happened.
//
//   - BackwardForward (Fasi, Langou, Robert & Uçar): every
//     ProtectEvery iterations the guard retains a copy of x only. On
//     failure the lost block is spliced from the retained (stale) copy
//     into the surviving blocks' current values and the solver is
//     Restarted from the hybrid iterate — trading a few extra
//     iterations for far less retained state, and applicable to any
//     Restartable solver, not just CG.
//
// Either way, the reconstruction is accepted only after verification:
// the retained copies must pass their checksums, and the true residual
// ‖b − A·x‖ after reconstruction must be within VerifyFactor of the
// retained pre-failure residual norm. A reconstruction that fails
// verification is rejected and the caller falls back to the next
// recovery tier (the lossy checkpoint).
//
// The package also provides ChecksumOperator, a Huang–Abraham style
// checksum-augmented operator: A's column sums are precomputed and
// every MulVec verifies Σ(A·x) against c·x, detecting silent
// corruption of the operator application.
package abft

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/precond"
	"repro/internal/solver"
	"repro/internal/sparse"
	"repro/internal/vec"
)

// Method selects the reconstruction algorithm.
type Method int

const (
	// ExactState is Pachajoa/Levonyak exact-state reconstruction for
	// CG: redundant (r, p) retained every iteration, lost x-block
	// rebuilt by a local solve. Requires a *solver.CG.
	ExactState Method = iota
	// BackwardForward is the Fasi et al. backward/forward recovery:
	// a periodic retained copy of x, hybrid restart on failure. Works
	// with any Restartable solver.
	BackwardForward
)

// String names the method.
func (m Method) String() string {
	switch m {
	case ExactState:
		return "exact-state"
	case BackwardForward:
		return "backward-forward"
	}
	return fmt.Sprintf("Method(%d)", int(m))
}

// Config assembles a Guard.
type Config struct {
	// Ranks is the number of simulated process blocks the vectors are
	// partitioned into (default 8, clamped to the system size). A
	// failure loses one block.
	Ranks int
	// Method picks the reconstruction algorithm (default ExactState).
	Method Method
	// ProtectEvery is the BackwardForward retention cadence in
	// iterations (default 10). ExactState retains every iteration —
	// its redundancy is the per-iteration neighbor exchange.
	ProtectEvery int
	// VerifyFactor bounds the accepted post-reconstruction true
	// residual at VerifyFactor × the retained pre-failure residual
	// norm (default 4). NaN or anything beyond rejects the tier.
	VerifyFactor float64
	// LocalRTol is the relative tolerance of the exact-state local
	// solve (default 1e-12 — well below any outer tolerance, so the
	// reconstruction error stays invisible to the outer iteration).
	LocalRTol float64
	// LocalMaxIter caps the local solve (default 4× the block size).
	LocalMaxIter int
	// Seed drives the deterministic failed-rank selection of
	// FailNextRank (default 1).
	Seed int64
}

// Recon reports one accepted reconstruction.
type Recon struct {
	Method Method
	// Rank is the block that was lost and rebuilt.
	Rank int
	// Iteration is the solver iteration the reconstruction restored —
	// the pre-failure iteration for ExactState, the current iteration
	// for BackwardForward (Restart preserves the counter).
	Iteration int
	// LocalIterations is the inner-solve iteration count (ExactState;
	// zero for BackwardForward). This is what the ABFT tier costs —
	// iterations, not PFS reads.
	LocalIterations int
	// ResidualNorm is the verified true residual after reconstruction.
	ResidualNorm float64
	// Reference is the retained pre-failure residual norm the
	// verification compared against.
	Reference float64
}

// Stats counts what the guard did over its lifetime.
type Stats struct {
	Observes        int // retention updates
	Reconstructions int // accepted reconstructions
	Rejected        int // reconstructions that failed verification
	LocalIterations int // total inner-solve iterations across reconstructions
}

// Guard retains the redundant algorithm data ABFT recovery rebuilds
// from and performs the reconstruction. It is not safe for concurrent
// use; drive it from the solver loop.
type Guard struct {
	cfg  Config
	a    *sparse.CSR
	b    []float64
	s    solver.Checkpointable
	cg   *solver.CG         // non-nil for ExactState
	rst  solver.Restartable // non-nil for BackwardForward
	cuts []int              // rank block boundaries, len Ranks+1

	// Retained redundancy. ExactState keeps (r, p, ρ, ‖r‖, i) from the
	// last Observe; BackwardForward keeps (x, ‖r‖, i) from the last
	// retention point. The checksums are plain float sums recomputed
	// bitwise-identically at verification time, the vector-level
	// analogue of the operator checksum — corruption of the retained
	// copies is detected before any reconstruction work is done.
	have       bool
	retainedAt int
	rRho       float64
	rRnorm     float64
	rR, rP     []float64 // ExactState
	rX         []float64 // BackwardForward
	sumR, sumP float64   // retained-copy checksums (ExactState)
	sumX       float64   // retained-copy checksum (BackwardForward)

	rng    *rand.Rand
	failed int // rank lost by the most recent failure, -1 when none

	stats Stats
	met   *guardMetrics
}

// NewGuard builds a guard over the system A·x = b protected by the
// given solver. ExactState requires a *solver.CG; BackwardForward
// requires a Restartable solver.
func NewGuard(a *sparse.CSR, b []float64, s solver.Checkpointable, cfg Config) (*Guard, error) {
	if a == nil || a.Rows != a.Cols {
		return nil, fmt.Errorf("abft: need a square operator")
	}
	if len(b) != a.Rows {
		return nil, fmt.Errorf("abft: rhs length %d does not match system size %d", len(b), a.Rows)
	}
	if cfg.Ranks <= 0 {
		cfg.Ranks = 8
	}
	if cfg.Ranks > a.Rows {
		cfg.Ranks = a.Rows
	}
	if cfg.ProtectEvery <= 0 {
		cfg.ProtectEvery = 10
	}
	if cfg.VerifyFactor <= 0 {
		cfg.VerifyFactor = 4
	}
	if cfg.LocalRTol <= 0 {
		cfg.LocalRTol = 1e-12
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	g := &Guard{cfg: cfg, a: a, b: b, s: s, failed: -1}
	switch cfg.Method {
	case ExactState:
		cg, ok := s.(*solver.CG)
		if !ok {
			return nil, fmt.Errorf("abft: exact-state reconstruction needs a *solver.CG, %T is not", s)
		}
		g.cg = cg
		g.rR = make([]float64, a.Rows)
		g.rP = make([]float64, a.Rows)
	case BackwardForward:
		rst, ok := s.(solver.Restartable)
		if !ok {
			return nil, fmt.Errorf("abft: backward/forward recovery needs a restartable solver, %T is not", s)
		}
		g.rst = rst
		g.rX = make([]float64, a.Rows)
	default:
		return nil, fmt.Errorf("abft: unknown method %v", cfg.Method)
	}
	g.cuts = make([]int, cfg.Ranks+1)
	for i := 0; i <= cfg.Ranks; i++ {
		g.cuts[i] = i * a.Rows / cfg.Ranks
	}
	g.rng = rand.New(rand.NewSource(cfg.Seed))
	return g, nil
}

// Solver returns the solver the guard protects.
func (g *Guard) Solver() solver.Checkpointable { return g.s }

// Method returns the configured reconstruction method.
func (g *Guard) Method() Method { return g.cfg.Method }

// Ranks returns the number of simulated process blocks.
func (g *Guard) Ranks() int { return g.cfg.Ranks }

// BlockRows returns the row range [lo, hi) owned by rank k.
func (g *Guard) BlockRows(k int) (lo, hi int) { return g.cuts[k], g.cuts[k+1] }

// Stats returns the guard's lifetime counters.
func (g *Guard) Stats() Stats { return g.stats }

// Observe refreshes the retained redundancy after one accepted solver
// step. Call it once per iteration, after Step. For ExactState this is
// the per-iteration retention of (r, p, ρ); for BackwardForward it
// retains x every ProtectEvery iterations.
func (g *Guard) Observe() {
	it := g.s.Iteration()
	switch g.cfg.Method {
	case ExactState:
		copy(g.rR, g.cg.R())
		copy(g.rP, g.cg.P())
		g.rRho = g.cg.Rho()
		g.rRnorm = g.s.ResidualNorm()
		g.sumR = checksum(g.rR)
		g.sumP = checksum(g.rP)
	case BackwardForward:
		if g.have && it-g.retainedAt < g.cfg.ProtectEvery {
			return
		}
		copy(g.rX, g.s.X())
		g.rRnorm = g.s.ResidualNorm()
		g.sumX = checksum(g.rX)
	}
	g.retainedAt = it
	g.have = true
	g.stats.Observes++
	g.met.observe()
}

// FailRank simulates the fail-stop loss of rank k: the rank's block of
// the live solver state is poisoned (set to NaN, the way a lost node's
// memory is simply gone). Reconstruct then rebuilds it.
func (g *Guard) FailRank(k int) {
	if k < 0 || k >= g.cfg.Ranks {
		return
	}
	lo, hi := g.cuts[k], g.cuts[k+1]
	poison(g.s.X()[lo:hi])
	if g.cg != nil {
		poison(g.cg.P()[lo:hi])
		poison(g.cg.R()[lo:hi])
	}
	g.failed = k
}

// FailNextRank draws the next failed rank from the guard's seeded
// stream and fails it, returning the rank — the deterministic
// injection entry point.
func (g *Guard) FailNextRank() int {
	k := g.rng.Intn(g.cfg.Ranks)
	g.FailRank(k)
	return k
}

// FailedRank returns the rank lost by the most recent failure, -1 when
// none is pending.
func (g *Guard) FailedRank() int { return g.failed }

// CorruptRetained damages the retained redundant copies — the
// injection hook for the ABFT-verify-fail tier transition. The
// corruption is detected by the retained-copy checksums at
// Reconstruct time.
func (g *Guard) CorruptRetained() {
	for i := 0; i < len(g.rR); i += 97 {
		g.rR[i] = g.rR[i]*1.75 + 1e-3
	}
	for i := 0; i < len(g.rP); i += 97 {
		g.rP[i] = g.rP[i]*1.75 + 1e-3
	}
	for i := 0; i < len(g.rX); i += 97 {
		g.rX[i] = g.rX[i]*1.75 + 1e-3
	}
}

// Reconstruct rebuilds the failed rank's state from the retained
// redundancy and verifies the result against the true residual. On
// success the solver is left fully restored and ready to Step. On
// error the solver state is unspecified — the caller must fall back to
// the next recovery tier, whose restore overwrites everything.
func (g *Guard) Reconstruct() (*Recon, error) {
	if g.failed < 0 {
		return nil, fmt.Errorf("abft: no failed rank recorded")
	}
	if !g.have {
		return nil, fmt.Errorf("abft: no retained state yet (failure before the first protected iteration)")
	}
	k := g.failed
	var rec *Recon
	var err error
	switch g.cfg.Method {
	case ExactState:
		rec, err = g.reconstructExact(k)
	default:
		rec, err = g.reconstructBF(k)
	}
	if err != nil {
		g.stats.Rejected++
		g.met.reject()
		return nil, err
	}
	g.failed = -1
	g.stats.Reconstructions++
	g.stats.LocalIterations += rec.LocalIterations
	g.met.reconstruct(rec.LocalIterations)
	return rec, nil
}

// reconstructExact is the Pachajoa/Levonyak path: verify the retained
// copies, rebuild x_k by the local solve, reinstate (x, p, ρ, i) and
// verify the recomputed true residual.
func (g *Guard) reconstructExact(k int) (*Recon, error) {
	if checksum(g.rR) != g.sumR || checksum(g.rP) != g.sumP {
		g.met.checksumFailure()
		return nil, fmt.Errorf("abft: retained state failed checksum verification")
	}
	if it := g.s.Iteration(); it != g.retainedAt {
		// The redundancy describes iteration retainedAt but the solver
		// stands elsewhere (e.g. a nested failure after a checkpoint
		// rollback): the surviving blocks would be inconsistent with the
		// retained residual, so the exact-state system does not hold.
		return nil, fmt.Errorf("abft: retained state is stale (iteration %d, solver at %d)", g.retainedAt, it)
	}
	lo, hi := g.cuts[k], g.cuts[k+1]

	// Surviving blocks of x with the lost block zeroed: the off-block
	// contribution Σ_{j≠k} A_kj·x_j is then just (A·x)|rows k.
	xwork := append([]float64(nil), g.cg.X()...)
	for i := lo; i < hi; i++ {
		xwork[i] = 0
	}
	rhs := make([]float64, hi-lo)
	for i := lo; i < hi; i++ {
		s := 0.0
		for idx := g.a.RowPtr[i]; idx < g.a.RowPtr[i+1]; idx++ {
			s += g.a.Val[idx] * xwork[g.a.ColIdx[idx]]
		}
		rhs[i-lo] = g.b[i] - g.rR[i] - s
	}

	// Local solve A_kk·x_k = rhs. The principal submatrix of an SPD
	// matrix is SPD, so a Jacobi-preconditioned local CG applies.
	sub := extractBlock(g.a, lo, hi)
	maxIter := g.cfg.LocalMaxIter
	if maxIter <= 0 {
		maxIter = 4 * (hi - lo)
	}
	local := solver.NewCG(sub, precond.NewJacobiFromMatrix(sub), rhs, nil, solver.SeqSpace{},
		solver.Options{RTol: g.cfg.LocalRTol, MaxIter: maxIter})
	res, err := solver.RunToConvergence(local, solver.Options{RTol: g.cfg.LocalRTol, MaxIter: maxIter}, nil)
	if err != nil {
		return nil, fmt.Errorf("abft: local solve: %w", err)
	}
	copy(xwork[lo:hi], local.X())

	// Reinstate the exact dynamic state; RestoreDynamic recomputes
	// r = b − A·x and the true residual norm.
	if err := g.cg.RestoreDynamic(solver.DynamicState{
		Iteration: g.retainedAt,
		Scalars:   map[string]float64{"rho": g.rRho},
		Vectors:   map[string][]float64{"x": xwork, "p": g.rP},
	}); err != nil {
		return nil, fmt.Errorf("abft: reinstate: %w", err)
	}
	rnorm := g.cg.ResidualNorm()
	if !(rnorm <= g.cfg.VerifyFactor*g.rRnorm) { // NaN-safe: NaN fails the comparison
		return nil, fmt.Errorf("abft: verification failed: reconstructed residual %.3e exceeds %.1f× retained %.3e",
			rnorm, g.cfg.VerifyFactor, g.rRnorm)
	}
	return &Recon{
		Method:          ExactState,
		Rank:            k,
		Iteration:       g.retainedAt,
		LocalIterations: res.Iterations,
		ResidualNorm:    rnorm,
		Reference:       g.rRnorm,
	}, nil
}

// reconstructBF is the Fasi et al. backward/forward path: splice the
// retained (possibly stale) x-block into the surviving blocks' current
// values and Restart from the hybrid iterate.
func (g *Guard) reconstructBF(k int) (*Recon, error) {
	if checksum(g.rX) != g.sumX {
		g.met.checksumFailure()
		return nil, fmt.Errorf("abft: retained state failed checksum verification")
	}
	lo, hi := g.cuts[k], g.cuts[k+1]
	xh := append([]float64(nil), g.s.X()...)
	copy(xh[lo:hi], g.rX[lo:hi])
	g.rst.Restart(xh)
	rnorm := g.s.ResidualNorm()
	if !(rnorm <= g.cfg.VerifyFactor*g.rRnorm) { // NaN-safe
		return nil, fmt.Errorf("abft: verification failed: hybrid-restart residual %.3e exceeds %.1f× retained %.3e",
			rnorm, g.cfg.VerifyFactor, g.rRnorm)
	}
	return &Recon{
		Method:       BackwardForward,
		Rank:         k,
		Iteration:    g.s.Iteration(),
		ResidualNorm: rnorm,
		Reference:    g.rRnorm,
	}, nil
}

// checksum is the retained-copy integrity check: a plain left-to-right
// float sum, recomputed in the identical order at verification time so
// an intact copy compares bitwise equal.
func checksum(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s
}

// poison overwrites a lost block with NaN.
func poison(v []float64) {
	nan := math.NaN()
	for i := range v {
		v[i] = nan
	}
}

// extractBlock returns the principal submatrix A[lo:hi, lo:hi) as a
// fresh CSR with column indices shifted to the block.
func extractBlock(a *sparse.CSR, lo, hi int) *sparse.CSR {
	n := hi - lo
	sub := &sparse.CSR{Rows: n, Cols: n, RowPtr: make([]int, n+1)}
	for i := lo; i < hi; i++ {
		for idx := a.RowPtr[i]; idx < a.RowPtr[i+1]; idx++ {
			if j := a.ColIdx[idx]; j >= lo && j < hi {
				sub.ColIdx = append(sub.ColIdx, j-lo)
				sub.Val = append(sub.Val, a.Val[idx])
			}
		}
		sub.RowPtr[i-lo+1] = len(sub.ColIdx)
	}
	return sub
}

// ChecksumOperator wraps a CSR operator with Huang–Abraham checksum
// verification: the column sums c_j = Σ_i A_ij are precomputed, and
// every MulVec checks Σ_i (A·x)_i against c·x to a rounding-aware
// tolerance. The numerics are untouched — dst is exactly A·x — so a
// checksum-augmented run is bitwise identical to an unguarded one;
// only silent corruption of the apply is detected and counted.
type ChecksumOperator struct {
	a            *sparse.CSR
	c            []float64 // column sums
	cabs         []float64 // absolute column sums, for the error bound
	applications int
	mismatches   int
}

// NewChecksumOperator precomputes the checksum rows of a.
func NewChecksumOperator(a *sparse.CSR) *ChecksumOperator {
	o := &ChecksumOperator{a: a, c: make([]float64, a.Cols), cabs: make([]float64, a.Cols)}
	for i := 0; i < a.Rows; i++ {
		for idx := a.RowPtr[i]; idx < a.RowPtr[i+1]; idx++ {
			j := a.ColIdx[idx]
			o.c[j] += a.Val[idx]
			o.cabs[j] += math.Abs(a.Val[idx])
		}
	}
	return o
}

// MulVec applies dst ← A·x and verifies the result's checksum.
func (o *ChecksumOperator) MulVec(dst, x []float64) {
	o.a.MulVec(dst, x)
	o.applications++
	want := vec.Dot(o.c, x)
	got := 0.0
	for _, v := range dst {
		got += v
	}
	scale := 0.0
	for j, xv := range x {
		scale += o.cabs[j] * math.Abs(xv)
	}
	// The two sums accumulate the same products in different orders;
	// the tolerance covers that reordering at float64 precision.
	tol := 1e-10*scale + 1e-300
	if diff := math.Abs(want - got); !(diff <= tol) { // NaN-safe
		o.mismatches++
	}
}

// Applications reports how many operator applications were checked.
func (o *ChecksumOperator) Applications() int { return o.applications }

// Mismatches reports how many applications failed the checksum.
func (o *ChecksumOperator) Mismatches() int { return o.mismatches }

// Verified reports whether every application so far passed.
func (o *ChecksumOperator) Verified() bool { return o.mismatches == 0 }

var _ solver.Operator = (*ChecksumOperator)(nil)
