package cluster

import (
	"math"
	"testing"
)

func TestBebopCheckpointAnchor(t *testing.T) {
	// §3: checkpointing one 78.8 GB vector from 2,048 processes takes
	// about 120 seconds.
	m := Bebop()
	got := m.CheckpointSeconds(2048, 78.8e9, 78.8e9, Uncompressed)
	if got < 100 || got > 140 {
		t.Fatalf("traditional 78.8 GB @2048 = %.1f s, paper says ≈120", got)
	}
}

func TestBebopLossyCheckpointAnchor(t *testing.T) {
	// §4.3: lossy compression reduces GMRES checkpoint time from
	// ≈120 s to ≈25 s (≈80 GB at ratio ≈34, Table 3).
	m := Bebop()
	got := m.CheckpointSeconds(2048, 78.8e9/34, 78.8e9, LossyCompressed)
	if got < 18 || got > 32 {
		t.Fatalf("lossy 78.8 GB @2048 = %.1f s, paper says ≈25", got)
	}
}

func TestCompressionTimeAnchor(t *testing.T) {
	// §5.3: compressing/decompressing 78.8 GB across 2,048 cores takes
	// ≈0.5 s and ≈0.2 s — the compute stage must stay negligible.
	m := Bebop()
	comp := 78.8e9 / (m.CompressPerCore * 2048)
	dec := 78.8e9 / (m.DecompressPerCore * 2048)
	if comp < 0.3 || comp > 0.8 {
		t.Fatalf("compression time %.2f s, paper says ≈0.5", comp)
	}
	if dec < 0.1 || dec > 0.4 {
		t.Fatalf("decompression time %.2f s, paper says ≈0.2", dec)
	}
}

func TestCheckpointTimeGrowsWithScale(t *testing.T) {
	// Weak scaling: per-process size fixed, total bytes ∝ procs, so
	// checkpoint time grows ≈linearly (Figs. 4–6).
	m := Bebop()
	perProc := 39.4e6
	prev := 0.0
	for _, p := range []int{256, 512, 1024, 2048} {
		got := m.CheckpointSeconds(p, float64(p)*perProc, float64(p)*perProc, Uncompressed)
		if got <= prev {
			t.Fatalf("checkpoint time must grow with scale: %v after %v", got, prev)
		}
		prev = got
	}
}

func TestRecoveryExceedsCheckpoint(t *testing.T) {
	// §5.4: recovery time exceeds checkpoint time because static
	// variables are reconstructed.
	m := Bebop()
	for _, scheme := range []Scheme{Uncompressed, LosslessCompressed, LossyCompressed} {
		ck := m.CheckpointSeconds(1024, 40e9, 40e9, scheme)
		rc := m.RecoverySeconds(1024, 40e9, 40e9, scheme)
		if rc <= ck {
			t.Fatalf("scheme %d: recovery %.1f ≤ checkpoint %.1f", scheme, rc, ck)
		}
	}
}

func TestLossySchemeFasterThanTraditional(t *testing.T) {
	m := Bebop()
	raw := 2048 * 39.4e6
	trad := m.CheckpointSeconds(2048, raw, raw, Uncompressed)
	lossless := m.CheckpointSeconds(2048, raw/5, raw, LosslessCompressed)
	lossy := m.CheckpointSeconds(2048, raw/34, raw, LossyCompressed)
	if !(lossy < lossless && lossless < trad) {
		t.Fatalf("ordering violated: lossy %.1f, lossless %.1f, trad %.1f", lossy, lossless, trad)
	}
}

func TestPaperBaselines(t *testing.T) {
	bases := PaperBaselines()
	g := bases["gmres"]
	// §4.3: GMRES Tit ≈ 1.2 s.
	if tit := g.TitSeconds(); math.Abs(tit-1.2) > 0.05 {
		t.Fatalf("GMRES Tit = %.3f, paper says ≈1.2", tit)
	}
	if bases["cg"].CkptVectors != 2 {
		t.Fatal("traditional CG checkpoints two vectors (x and p)")
	}
	if bases["jacobi"].CkptVectors != 1 {
		t.Fatal("Jacobi checkpoints one vector")
	}
	for name, b := range bases {
		if b.TitSeconds() <= 0 || b.PerProcMB <= 0 {
			t.Fatalf("%s: incomplete baseline %+v", name, b)
		}
	}
}

func TestTable3Sizes(t *testing.T) {
	sizes := Table3ProblemSizes()
	if len(sizes) != 8 {
		t.Fatalf("Table 3 has 8 scales, got %d", len(sizes))
	}
	if sizes[0].Procs != 256 || sizes[0].N != 1088 {
		t.Fatalf("first row %+v", sizes[0])
	}
	if sizes[7].Procs != 2048 || sizes[7].N != 2160 {
		t.Fatalf("last row %+v", sizes[7])
	}
	// Weak scaling: elements per process ≈ constant (±15%).
	ref := float64(sizes[0].N) * float64(sizes[0].N) * float64(sizes[0].N) / float64(sizes[0].Procs)
	for _, s := range sizes {
		per := float64(s.N) * float64(s.N) * float64(s.N) / float64(s.Procs)
		if per < 0.85*ref || per > 1.15*ref {
			t.Fatalf("weak scaling broken at %d procs: %.3g vs %.3g elems/proc", s.Procs, per, ref)
		}
	}
}
