package cluster

import (
	"math"
	"testing"
)

func TestBebopCheckpointAnchor(t *testing.T) {
	// §3: checkpointing one 78.8 GB vector from 2,048 processes takes
	// about 120 seconds.
	m := Bebop()
	got := m.CheckpointSeconds(2048, 78.8e9, 78.8e9, Uncompressed)
	if got < 100 || got > 140 {
		t.Fatalf("traditional 78.8 GB @2048 = %.1f s, paper says ≈120", got)
	}
}

func TestBebopLossyCheckpointAnchor(t *testing.T) {
	// §4.3: lossy compression reduces GMRES checkpoint time from
	// ≈120 s to ≈25 s (≈80 GB at ratio ≈34, Table 3).
	m := Bebop()
	got := m.CheckpointSeconds(2048, 78.8e9/34, 78.8e9, LossyCompressed)
	if got < 18 || got > 32 {
		t.Fatalf("lossy 78.8 GB @2048 = %.1f s, paper says ≈25", got)
	}
}

func TestCompressionTimeAnchor(t *testing.T) {
	// §5.3: compressing/decompressing 78.8 GB across 2,048 cores takes
	// ≈0.5 s and ≈0.2 s — the compute stage must stay negligible.
	m := Bebop()
	comp := 78.8e9 / (m.CompressPerCore * 2048)
	dec := 78.8e9 / (m.DecompressPerCore * 2048)
	if comp < 0.3 || comp > 0.8 {
		t.Fatalf("compression time %.2f s, paper says ≈0.5", comp)
	}
	if dec < 0.1 || dec > 0.4 {
		t.Fatalf("decompression time %.2f s, paper says ≈0.2", dec)
	}
}

func TestCheckpointTimeGrowsWithScale(t *testing.T) {
	// Weak scaling: per-process size fixed, total bytes ∝ procs, so
	// checkpoint time grows ≈linearly (Figs. 4–6).
	m := Bebop()
	perProc := 39.4e6
	prev := 0.0
	for _, p := range []int{256, 512, 1024, 2048} {
		got := m.CheckpointSeconds(p, float64(p)*perProc, float64(p)*perProc, Uncompressed)
		if got <= prev {
			t.Fatalf("checkpoint time must grow with scale: %v after %v", got, prev)
		}
		prev = got
	}
}

func TestRecoveryExceedsCheckpoint(t *testing.T) {
	// §5.4: recovery time exceeds checkpoint time because static
	// variables are reconstructed.
	m := Bebop()
	for _, scheme := range []Scheme{Uncompressed, LosslessCompressed, LossyCompressed} {
		ck := m.CheckpointSeconds(1024, 40e9, 40e9, scheme)
		rc := m.RecoverySeconds(1024, 40e9, 40e9, scheme)
		if rc <= ck {
			t.Fatalf("scheme %d: recovery %.1f ≤ checkpoint %.1f", scheme, rc, ck)
		}
	}
}

func TestLossySchemeFasterThanTraditional(t *testing.T) {
	m := Bebop()
	raw := 2048 * 39.4e6
	trad := m.CheckpointSeconds(2048, raw, raw, Uncompressed)
	lossless := m.CheckpointSeconds(2048, raw/5, raw, LosslessCompressed)
	lossy := m.CheckpointSeconds(2048, raw/34, raw, LossyCompressed)
	if !(lossy < lossless && lossless < trad) {
		t.Fatalf("ordering violated: lossy %.1f, lossless %.1f, trad %.1f", lossy, lossless, trad)
	}
}

func TestPaperBaselines(t *testing.T) {
	bases := PaperBaselines()
	g := bases["gmres"]
	// §4.3: GMRES Tit ≈ 1.2 s.
	if tit := g.TitSeconds(); math.Abs(tit-1.2) > 0.05 {
		t.Fatalf("GMRES Tit = %.3f, paper says ≈1.2", tit)
	}
	if bases["cg"].CkptVectors != 2 {
		t.Fatal("traditional CG checkpoints two vectors (x and p)")
	}
	if bases["jacobi"].CkptVectors != 1 {
		t.Fatal("Jacobi checkpoints one vector")
	}
	for name, b := range bases {
		if b.TitSeconds() <= 0 || b.PerProcMB <= 0 {
			t.Fatalf("%s: incomplete baseline %+v", name, b)
		}
	}
}

func TestTable3Sizes(t *testing.T) {
	sizes := Table3ProblemSizes()
	if len(sizes) != 8 {
		t.Fatalf("Table 3 has 8 scales, got %d", len(sizes))
	}
	if sizes[0].Procs != 256 || sizes[0].N != 1088 {
		t.Fatalf("first row %+v", sizes[0])
	}
	if sizes[7].Procs != 2048 || sizes[7].N != 2160 {
		t.Fatalf("last row %+v", sizes[7])
	}
	// Weak scaling: elements per process ≈ constant (±15%).
	ref := float64(sizes[0].N) * float64(sizes[0].N) * float64(sizes[0].N) / float64(sizes[0].Procs)
	for _, s := range sizes {
		per := float64(s.N) * float64(s.N) * float64(s.N) / float64(s.Procs)
		if per < 0.85*ref || per > 1.15*ref {
			t.Fatalf("weak scaling broken at %d procs: %.3g vs %.3g elems/proc", s.Procs, per, ref)
		}
	}
}

func TestStripedWriteBandwidth(t *testing.T) {
	m := Bebop()
	// Striping splits the calibrated aggregate exactly.
	if got := m.StripedWriteBandwidth(m.Stripes) - m.PFSBandwidth; got > 1e-6 || got < -1e-6 {
		t.Fatalf("full-stripe bandwidth %.3g != aggregate %.3g", m.StripedWriteBandwidth(m.Stripes), m.PFSBandwidth)
	}
	one := m.StripedWriteBandwidth(1)
	if one != m.StripeBandwidth {
		t.Fatalf("monolithic write should get one stripe: %.3g vs %.3g", one, m.StripeBandwidth)
	}
	// min(shards, stripes): bandwidth grows linearly then saturates.
	if m.StripedWriteBandwidth(8) != 8*m.StripeBandwidth {
		t.Fatal("8 shards should engage 8 stripes")
	}
	if m.StripedWriteBandwidth(10*m.Stripes) != m.PFSBandwidth {
		t.Fatal("over-sharding must saturate at the aggregate")
	}
	if m.StripedWriteBandwidth(0) != one || m.StripedWriteBandwidth(-3) != one {
		t.Fatal("shards < 1 must be treated as monolithic")
	}
	// A model without striping parameters keeps the aggregate (legacy
	// Model literals).
	legacy := &Model{PFSBandwidth: 1e9}
	if legacy.StripedWriteBandwidth(4) != 1e9 {
		t.Fatal("legacy model must fall back to the aggregate bandwidth")
	}
}

func TestShardedCheckpointSeconds(t *testing.T) {
	m := Bebop()
	const procs = 2048
	enc, raw := 1.0e9, 8.0e9
	mono := m.ShardedCheckpointSeconds(procs, enc, raw, LossyCompressed, 1)
	s8 := m.ShardedCheckpointSeconds(procs, enc, raw, LossyCompressed, 8)
	full := m.ShardedCheckpointSeconds(procs, enc, raw, LossyCompressed, m.Stripes)
	if !(s8 < mono) || !(full < s8) {
		t.Fatalf("sharding must speed up the write: mono=%.2f s8=%.2f full=%.2f", mono, s8, full)
	}
	// At full striping the transfer term matches the collective model;
	// only the per-shard metadata differs.
	collective := m.CheckpointSeconds(procs, enc, raw, LossyCompressed)
	extra := full - collective
	want := m.PerShardSeconds * float64(m.Stripes+1)
	if diff := extra - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("full-stripe sharded cost differs from collective by %.6f, want metadata %.6f", extra, want)
	}
	// Over-sharding: bandwidth saturated, metadata keeps growing.
	over := m.ShardedCheckpointSeconds(procs, enc, raw, LossyCompressed, 4*m.Stripes)
	if !(over > full) {
		t.Fatal("over-sharding must cost more than full striping")
	}
}

func TestStripedReadBandwidth(t *testing.T) {
	m := Bebop()
	// A monolithic read is one striped file scanned at the aggregate.
	if m.StripedReadBandwidth(1) != m.PFSBandwidth {
		t.Fatalf("single-object read %.3g, want the aggregate %.3g", m.StripedReadBandwidth(1), m.PFSBandwidth)
	}
	// The fan-out can always fall back to the monolithic scan, so the
	// effective bandwidth never drops below the aggregate...
	for s := 1; s <= 4*m.Stripes; s++ {
		if m.StripedReadBandwidth(s) < m.PFSBandwidth {
			t.Fatalf("%d shards read below the aggregate", s)
		}
		if s > 1 && m.StripedReadBandwidth(s) < m.StripedReadBandwidth(s-1) {
			t.Fatalf("read bandwidth must be non-decreasing at %d shards", s)
		}
	}
	// ...and saturates at the read-side aggregate at full striping.
	full := m.ReadStripeBandwidth * float64(m.Stripes)
	if got := m.StripedReadBandwidth(m.Stripes); got != full {
		t.Fatalf("full-stripe read %.3g, want %.3g", got, full)
	}
	if m.StripedReadBandwidth(10*m.Stripes) != full {
		t.Fatal("over-sharding must saturate at the read aggregate")
	}
	// Bebop's read path outpaces its write path.
	if full <= m.PFSBandwidth {
		t.Fatal("full-stripe read aggregate should exceed the write aggregate")
	}
	// A model without striping/read parameters keeps the aggregate.
	legacy := &Model{PFSBandwidth: 1e9}
	if legacy.StripedReadBandwidth(8) != 1e9 {
		t.Fatal("legacy model must fall back to the aggregate bandwidth")
	}
}

func TestShardedRecoverySeconds(t *testing.T) {
	m := Bebop()
	const procs = 2048
	enc, raw := 2.0e9, 8.0e9
	schemes := []Scheme{Uncompressed, LosslessCompressed, LossyCompressed}
	// shards ≤ 1 prices exactly like the serial monolithic restore.
	for _, sch := range schemes {
		want := m.RecoverySeconds(procs, enc, raw, sch)
		for _, s := range []int{-1, 0, 1} {
			if got := m.ShardedRecoverySeconds(procs, enc, raw, sch, s); got != want {
				t.Fatalf("scheme %d shards=%d: %.6f != RecoverySeconds %.6f", sch, s, got, want)
			}
		}
	}
	// Monotonically non-increasing in shard count up to (and past) the
	// stripe saturation point, for every scheme.
	for _, sch := range schemes {
		prev := m.ShardedRecoverySeconds(procs, enc, raw, sch, 1)
		for s := 2; s <= 2*m.Stripes; s++ {
			got := m.ShardedRecoverySeconds(procs, enc, raw, sch, s)
			if got > prev+1e-12 {
				t.Fatalf("scheme %d: recovery cost increased at %d shards (%.6f after %.6f)", sch, s, got, prev)
			}
			prev = got
		}
	}
	// The streaming pipeline overlaps read with decompression, so a
	// sharded lossy restore strictly beats the serial one...
	mono := m.ShardedRecoverySeconds(procs, enc, raw, LossyCompressed, 1)
	s8 := m.ShardedRecoverySeconds(procs, enc, raw, LossyCompressed, 8)
	full := m.ShardedRecoverySeconds(procs, enc, raw, LossyCompressed, m.Stripes)
	if !(s8 < mono) {
		t.Fatalf("sharding must speed up recovery: mono=%.2f s8=%.2f", mono, s8)
	}
	// ...and past saturation nothing changes (no per-object penalty on
	// the read side).
	if over := m.ShardedRecoverySeconds(procs, enc, raw, LossyCompressed, 4*m.Stripes); over != full {
		t.Fatalf("over-sharded recovery %.4f != saturated %.4f", over, full)
	}
	// The transfer term is max(read, decompress) + fixed per-rank
	// costs: verify against the explicit formula at full striping.
	read := enc / m.StripedReadBandwidth(m.Stripes)
	dec := raw / (m.DecompressPerCore * procs)
	wantFull := m.PerRankSeconds*procs + math.Max(read, dec) + m.StaticPerRankSeconds*procs
	if d := full - wantFull; d > 1e-9 || d < -1e-9 {
		t.Fatalf("full-stripe recovery %.6f, want %.6f", full, wantFull)
	}
}

// TestStageHelpersSumToFusedCosts: the exported per-phase helpers
// (cmd/solve's modeled cost table) must decompose the fused checkpoint
// costs exactly, for every scheme, shard count, and write model — a
// calibration change cannot skew the breakdown against the totals.
func TestStageHelpersSumToFusedCosts(t *testing.T) {
	m := Bebop()
	const procs, encoded, raw = 2048, 3.2e9, 78.8e9
	for _, sch := range []Scheme{Uncompressed, LosslessCompressed, LossyCompressed} {
		sum := m.CompressStageSeconds(procs, raw, sch) + m.WriteStageSeconds(procs, encoded, 1, false)
		if got := m.CheckpointSeconds(procs, encoded, raw, sch); !approxEq(sum, got) {
			t.Errorf("scheme %v: stages sum to %g, CheckpointSeconds %g", sch, sum, got)
		}
		for _, shards := range []int{1, 8, 48, 96} {
			sum := m.CompressStageSeconds(procs, raw, sch) + m.WriteStageSeconds(procs, encoded, shards, true)
			if got := m.ShardedCheckpointSeconds(procs, encoded, raw, sch, shards); !approxEq(sum, got) {
				t.Errorf("scheme %v shards %d: stages sum to %g, ShardedCheckpointSeconds %g", sch, shards, sum, got)
			}
		}
	}
}

func approxEq(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= 1e-12*(1+b)
}

func TestABFTRecoverySeconds(t *testing.T) {
	m := Bebop()
	// One 2,048-rank block of the CG checkpoint state (78.8 GB / 2048)
	// re-gathered over Omni-Path plus 30 local iterations at 0.5 s.
	block := 78.8e9 / 2048
	got := m.ABFTRecoverySeconds(block, 30, 0.5)
	want := m.PerRankSeconds + block/m.InterconnectBandwidth + 30*0.5
	if !approxEq(got, want) {
		t.Fatalf("ABFTRecoverySeconds = %g, want %g", got, want)
	}
	// The tier's raison d'être: no PFS term — it must be far below even
	// the cheapest modeled restart of the same state.
	restart := m.RecoverySeconds(2048, 78.8e9, 78.8e9, Uncompressed)
	if got >= restart {
		t.Fatalf("ABFT recovery %g s not below the PFS restart %g s", got, restart)
	}
	// Negative local iterations clamp to zero.
	if m.ABFTRecoverySeconds(block, -5, 0.5) != m.ABFTRecoverySeconds(block, 0, 0.5) {
		t.Fatal("negative local iterations must clamp to zero")
	}
	// Legacy literals without the interconnect field stay finite via
	// the node-local memory fallback.
	legacy := &Model{PerRankSeconds: 0.01, MemCopyPerCore: 4e9}
	if v := legacy.ABFTRecoverySeconds(block, 0, 0); math.IsInf(v, 0) || math.IsNaN(v) {
		t.Fatalf("legacy model ABFT cost not finite: %g", v)
	}
}

func TestCodecRates(t *testing.T) {
	m := Bebop()
	raw := 78.8e9
	// The schemes' default codecs are pinned to the scheme-level
	// calibration, so codec-aware and scheme-level pricing agree for
	// the paper's configurations.
	if got, want := m.CodecCompressSeconds(2048, raw, "sz", LossyCompressed), m.CompressStageSeconds(2048, raw, LossyCompressed); !approxEq(got, want) {
		t.Fatalf("sz codec pricing %g != scheme pricing %g", got, want)
	}
	if got, want := m.CodecCompressSeconds(2048, raw, "gzip(deflate)", LosslessCompressed), m.CompressStageSeconds(2048, raw, LosslessCompressed); !approxEq(got, want) {
		t.Fatalf("gzip codec pricing %g != scheme pricing %g", got, want)
	}
	// The fti Lossless encoder's composite name resolves to the codec.
	if got, want := m.CodecCompressSeconds(2048, raw, "lossless/fpc", LosslessCompressed), raw/(m.CodecRates["fpc"].CompressPerCore*2048); !approxEq(got, want) {
		t.Fatalf("lossless/fpc priced %g, want fpc rate %g", got, want)
	}
	// zfp's dedicated rate outruns the sz calibration on both sides.
	if c, s := m.CodecCompressSeconds(2048, raw, "zfp", LossyCompressed), m.CompressStageSeconds(2048, raw, LossyCompressed); c >= s {
		t.Fatalf("zfp compress %g not below sz-calibrated %g", c, s)
	}
	if d, s := m.CodecDecompressSeconds(2048, raw, "zfp", LossyCompressed), raw/(m.DecompressPerCore*2048); d >= s {
		t.Fatalf("zfp decompress %g not below sz-calibrated %g", d, s)
	}
	// Unknown codecs and legacy literals fall back to the scheme rate.
	if got, want := m.CodecCompressSeconds(2048, raw, "mystery", LossyCompressed), m.CompressStageSeconds(2048, raw, LossyCompressed); !approxEq(got, want) {
		t.Fatalf("unknown codec priced %g, want scheme fallback %g", got, want)
	}
	legacy := &Model{CompressPerCore: 77e6, LosslessPerCore: 100e6, DecompressPerCore: 192e6}
	if got, want := legacy.CodecCompressSeconds(2048, raw, "zfp", LossyCompressed), raw/(77e6*2048); !approxEq(got, want) {
		t.Fatalf("legacy literal priced %g, want %g", got, want)
	}
	// Uncompressed transfers cost nothing to encode regardless of name.
	if got := m.CodecCompressSeconds(2048, raw, "sz", Uncompressed); got != 0 {
		t.Fatalf("uncompressed encode cost %g, want 0", got)
	}
	if got := m.CodecDecompressSeconds(2048, raw, "raw", Uncompressed); got != 0 {
		t.Fatalf("uncompressed decode cost %g, want 0", got)
	}
}
