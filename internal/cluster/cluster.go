// Package cluster models the timing behaviour of the paper's
// experimental platform — the Bebop cluster at Argonne (64 nodes,
// 2×16-core Xeon E5-2695v4, 128 GB/node) with its parallel file
// system — so that checkpoint, recovery, and iteration times at the
// paper's scale (256–4,096 processes, up to 78.8 GB checkpoints) can
// be reproduced on a laptop.
//
// Calibration anchors, all taken from the paper:
//   - writing one 78.8 GB traditional checkpoint from 2,048 ranks
//     takes ≈120 s (§3, §4.3, Fig. 5);
//   - the same write from 256 ranks (9.8 GB) takes ≈15 s (Figs. 4–6):
//     together these fix an aggregate PFS bandwidth of ≈0.8 GB/s plus
//     a per-rank I/O overhead of ≈11 ms;
//   - SZ compression/decompression of 78.8 GB across 2,048 cores costs
//     ≈0.5 s / ≈0.2 s (§5.3), fixing per-core throughputs of ≈77 and
//     ≈192 MB/s;
//   - recovery exceeds checkpointing because static variables (A, M,
//     b) are reconstructed (§5.4, Figs. 4–6).
package cluster

import (
	"fmt"
	"strings"
)

// Model captures the platform's timing parameters. All bandwidths are
// bytes per second.
type Model struct {
	// PerRankSeconds is the fixed per-rank I/O overhead of one
	// collective checkpoint write (metadata, file-system contention).
	PerRankSeconds float64
	// PFSBandwidth is the aggregate parallel-file-system bandwidth —
	// the constant bottleneck that makes checkpoint time grow linearly
	// with scale under weak scaling (paper §5.3).
	PFSBandwidth float64
	// CompressPerCore and DecompressPerCore are per-core throughputs
	// of the lossy compressor; compression is embarrassingly parallel
	// (no communication, §5.3).
	CompressPerCore   float64
	DecompressPerCore float64
	// LosslessPerCore is the per-core throughput of the Gzip-class
	// codec (slower than SZ).
	LosslessPerCore float64
	// StaticPerRankSeconds models the extra recovery cost of
	// reconstructing static variables, growing with scale.
	StaticPerRankSeconds float64
	// MemCopyPerCore is the per-core node-local memory bandwidth used
	// by the asynchronous pipeline's capture stage (a deep copy of the
	// protected state into the double buffer) — no PFS, no
	// compression, so orders of magnitude faster than a checkpoint.
	MemCopyPerCore float64

	// Stripes and StripeBandwidth model the PFS's object-storage
	// striping (Lustre OSTs): the file system exposes Stripes stripes
	// of StripeBandwidth bytes/s each, with Stripes×StripeBandwidth =
	// PFSBandwidth (the aggregate a fully collective write achieves).
	// A checkpoint written as one monolithic object streams through a
	// single stripe; sharding it into S objects engages min(S, Stripes)
	// stripes — exactly why per-block shard objects make the storage
	// stage scale (ShardedCheckpointSeconds).
	Stripes         int
	StripeBandwidth float64
	// PerShardSeconds is the metadata cost of creating one shard
	// object (open/create+commit on the PFS metadata server); it is
	// the term that makes over-sharding (S ≫ Stripes) a loss.
	PerShardSeconds float64

	// InterconnectBandwidth is the point-to-point node interconnect
	// bandwidth (bytes/s) — the channel an ABFT reconstruction uses to
	// re-gather the surviving ranks' contributions to the lost block
	// (checksum/neighbor exchanges), never touching the PFS. Zero falls
	// back to MemCopyPerCore so pre-ABFT Model literals keep working.
	InterconnectBandwidth float64

	// CodecRates refines the two scheme-level throughput knobs
	// (CompressPerCore/LosslessPerCore) with per-codec rates, keyed by
	// codec name as the fti encoders report it ("sz", "zfp", "fpc",
	// "gzip(deflate)"; "lossless/<name>" encoder names resolve to
	// <name>). Codecs without an entry fall back to the scheme-level
	// rate, so legacy Model literals price exactly as before.
	CodecRates map[string]CodecRate

	// ReadStripeBandwidth is the per-stripe bandwidth of the restore
	// path's shard fan-out reads. PFS read paths typically outpace the
	// write paths (no commit/sync round trips, no parity update,
	// server-side caching), so per stripe this exceeds the write-side
	// StripeBandwidth; a sharded restore reading min(shards, Stripes)
	// objects concurrently can therefore beat even the aggregate write
	// bandwidth a monolithic restore streams at. Zero means the read
	// fan-out adds nothing beyond the aggregate (legacy Model
	// literals).
	ReadStripeBandwidth float64
}

// CodecRate holds one codec's per-core compress and decompress
// throughputs, in bytes per second of *raw* (uncompressed) data.
type CodecRate struct {
	CompressPerCore   float64
	DecompressPerCore float64
}

// Bebop returns the model calibrated to the paper's measurements.
func Bebop() *Model {
	return &Model{
		PerRankSeconds:       0.0108,
		PFSBandwidth:         0.80e9,
		CompressPerCore:      77e6,
		DecompressPerCore:    192e6,
		LosslessPerCore:      100e6,
		StaticPerRankSeconds: 0.004,
		MemCopyPerCore:       4e9,
		// 48 OSTs splitting the calibrated 0.8 GB/s aggregate: a full
		// stripe-wide sharded write recovers exactly the collective
		// bandwidth the paper's measurements fix, a monolithic write
		// gets one stripe's worth.
		Stripes:         48,
		StripeBandwidth: 0.80e9 / 48,
		PerShardSeconds: 0.0005,
		// Omni-Path node injection bandwidth (100 Gb/s ≈ 12.5 GB/s) —
		// the fabric Bebop's ABFT-style exchanges would ride on.
		InterconnectBandwidth: 12.5e9,
		// Read path per stripe at 2× the write path — the usual PFS
		// asymmetry (no commit, no parity) — so a full-stripe shard
		// fan-out restores at up to 1.6 GB/s against the 0.8 GB/s
		// write aggregate.
		ReadStripeBandwidth: 2 * 0.80e9 / 48,
		// Per-codec refinements of the scheme-level rates. The two
		// codecs the schemes default to ("sz" for lossy,
		// "gzip(deflate)" for lossless) are pinned to the scheme-level
		// calibration, so codec-aware and scheme-level pricing agree
		// for the paper's configurations; zfp and fpc are
		// representative Xeon per-core figures (zfp's fixed-rate
		// transform and FPC's predictor both outrun SZ's
		// quantize+Huffman pipeline), not paper measurements.
		CodecRates: map[string]CodecRate{
			"sz":            {CompressPerCore: 77e6, DecompressPerCore: 192e6},
			"gzip(deflate)": {CompressPerCore: 100e6, DecompressPerCore: 250e6},
			"zfp":           {CompressPerCore: 300e6, DecompressPerCore: 600e6},
			"fpc":           {CompressPerCore: 400e6, DecompressPerCore: 500e6},
		},
	}
}

// Scheme tags which compression stage applies to a transfer.
type Scheme int

// Checkpoint data flavors.
const (
	Uncompressed Scheme = iota
	LosslessCompressed
	LossyCompressed
)

// compressSeconds is the scheme-dependent compression cost of one
// checkpoint, shared by the collective and sharded write models so a
// calibration change cannot skew their comparison.
func (m *Model) compressSeconds(procs int, rawBytes float64, scheme Scheme) float64 {
	switch scheme {
	case LossyCompressed:
		return rawBytes / (m.CompressPerCore * float64(procs))
	case LosslessCompressed:
		return rawBytes / (m.LosslessPerCore * float64(procs))
	}
	return 0
}

// CompressStageSeconds is the compression term of one checkpoint —
// compressSeconds exported for per-phase cost breakdowns (cmd/solve's
// modeled-vs-measured table), so a calibration change cannot diverge
// from the fused CheckpointSeconds/ShardedCheckpointSeconds totals.
func (m *Model) CompressStageSeconds(procs int, rawBytes float64, scheme Scheme) float64 {
	if procs <= 0 {
		panic(fmt.Sprintf("cluster: procs must be positive, got %d", procs))
	}
	return m.compressSeconds(procs, rawBytes, scheme)
}

// codecRate resolves a codec or encoder name against CodecRates,
// accepting both bare codec names ("sz") and the fti Lossless
// encoder's composite names ("lossless/gzip(deflate)").
func (m *Model) codecRate(name string) (CodecRate, bool) {
	if r, ok := m.CodecRates[name]; ok {
		return r, true
	}
	if short, ok := strings.CutPrefix(name, "lossless/"); ok {
		if r, ok := m.CodecRates[short]; ok {
			return r, true
		}
	}
	return CodecRate{}, false
}

// CodecCompressSeconds is CompressStageSeconds refined with the named
// codec's per-core rate: rawBytes compressed across procs cores. A
// codec without a CodecRates entry (or a Model without the map) falls
// back to the scheme-level rate, so the fused checkpoint costs and the
// per-phase breakdown cannot diverge for unknown codecs.
func (m *Model) CodecCompressSeconds(procs int, rawBytes float64, name string, scheme Scheme) float64 {
	if procs <= 0 {
		panic(fmt.Sprintf("cluster: procs must be positive, got %d", procs))
	}
	if scheme == Uncompressed {
		return 0
	}
	if r, ok := m.codecRate(name); ok && r.CompressPerCore > 0 {
		return rawBytes / (r.CompressPerCore * float64(procs))
	}
	return m.compressSeconds(procs, rawBytes, scheme)
}

// CodecDecompressSeconds mirrors CodecCompressSeconds for the restore
// path's decompression stage.
func (m *Model) CodecDecompressSeconds(procs int, rawBytes float64, name string, scheme Scheme) float64 {
	if procs <= 0 {
		panic(fmt.Sprintf("cluster: procs must be positive, got %d", procs))
	}
	if scheme == Uncompressed {
		return 0
	}
	if r, ok := m.codecRate(name); ok && r.DecompressPerCore > 0 {
		return rawBytes / (r.DecompressPerCore * float64(procs))
	}
	return m.decompressSeconds(procs, rawBytes, scheme)
}

// WriteStageSeconds is the PFS-write term of one checkpoint: the
// per-rank metadata overhead plus the transfer. striped prices the
// single-writer striped-object model (per-shard metadata for the
// shards plus the manifest, min(shards, stripes) concurrent stripes);
// otherwise the collective aggregate-bandwidth write. By construction
// CompressStageSeconds + WriteStageSeconds equals CheckpointSeconds
// (collective) or ShardedCheckpointSeconds (striped).
func (m *Model) WriteStageSeconds(procs int, encodedBytes float64, shards int, striped bool) float64 {
	if procs <= 0 {
		panic(fmt.Sprintf("cluster: procs must be positive, got %d", procs))
	}
	if !striped {
		return m.PerRankSeconds*float64(procs) + encodedBytes/m.PFSBandwidth
	}
	if shards < 1 {
		shards = 1
	}
	return m.PerRankSeconds*float64(procs) +
		m.PerShardSeconds*float64(shards+1) +
		encodedBytes/m.StripedWriteBandwidth(shards)
}

// CheckpointSeconds returns the wall time of one checkpoint: optional
// compression of rawBytes across procs cores, then writing
// encodedBytes through the shared PFS.
func (m *Model) CheckpointSeconds(procs int, encodedBytes, rawBytes float64, scheme Scheme) float64 {
	if procs <= 0 {
		panic(fmt.Sprintf("cluster: procs must be positive, got %d", procs))
	}
	return m.PerRankSeconds*float64(procs) +
		encodedBytes/m.PFSBandwidth +
		m.compressSeconds(procs, rawBytes, scheme)
}

// StripedWriteBandwidth returns the effective PFS bandwidth of a
// checkpoint written as shards parallel shard objects: per-stripe
// bandwidth × min(shards, stripes), never exceeding the aggregate
// PFSBandwidth. shards < 1 is treated as a monolithic single-object
// write; a Model without striping parameters (Stripes or
// StripeBandwidth zero) falls back to the aggregate bandwidth, so
// pre-striping Model literals keep their old behavior.
func (m *Model) StripedWriteBandwidth(shards int) float64 {
	if m.Stripes <= 0 || m.StripeBandwidth <= 0 {
		return m.PFSBandwidth
	}
	if shards < 1 {
		shards = 1
	}
	if shards > m.Stripes {
		shards = m.Stripes
	}
	bw := m.StripeBandwidth * float64(shards)
	if m.PFSBandwidth > 0 && bw > m.PFSBandwidth {
		bw = m.PFSBandwidth
	}
	return bw
}

// ShardedCheckpointSeconds returns the wall time of one checkpoint
// written as shards parallel shard objects plus a manifest: optional
// compression of rawBytes across procs cores (as in
// CheckpointSeconds), then encodedBytes through min(shards, Stripes)
// stripes, plus the per-object metadata cost of the shards and the
// manifest. With shards = 1 and the Bebop striping parameters this is
// the single-stripe serial write; at shards ≥ Stripes it recovers the
// aggregate-bandwidth cost of the collective write the paper measures.
func (m *Model) ShardedCheckpointSeconds(procs int, encodedBytes, rawBytes float64, scheme Scheme, shards int) float64 {
	if procs <= 0 {
		panic(fmt.Sprintf("cluster: procs must be positive, got %d", procs))
	}
	if shards < 1 {
		shards = 1
	}
	return m.PerRankSeconds*float64(procs) +
		m.PerShardSeconds*float64(shards+1) + // +1: the manifest object
		encodedBytes/m.StripedWriteBandwidth(shards) +
		m.compressSeconds(procs, rawBytes, scheme)
}

// StorageRetrySeconds returns the expected retry/backoff delay the
// fault-tolerant storage wrapper (fti.Resilient) adds to one sharded
// checkpoint write when each object write fails transiently with
// probability faultRate. Each of the shards+1 object writes (the +1 is
// the manifest) pays the expected backoff sum
//
//	Σ_{k=0}^{maxRetries-1} p^{k+1} · min(base·2^k, max)
//
// — the k-th backoff step is slept only if attempts 0..k all failed,
// and steps grow geometrically from baseDelay up to the maxDelay cap,
// matching the wrapper's schedule (jitter averages out; the mean of
// the uniform [step/2, step] draw is 3/4·step, folded into base by
// callers that want that precision). Zero at faultRate ≤ 0 and
// monotone in it; faultRate ≥ 1 prices every attempt as failed.
func (m *Model) StorageRetrySeconds(shards int, faultRate, baseDelay, maxDelay float64, maxRetries int) float64 {
	if faultRate <= 0 || maxRetries <= 0 || baseDelay <= 0 {
		return 0
	}
	if faultRate > 1 {
		faultRate = 1
	}
	if shards < 1 {
		shards = 1
	}
	if maxDelay <= 0 {
		maxDelay = baseDelay
	}
	perOp := 0.0
	pPow := 1.0
	step := baseDelay
	for k := 0; k < maxRetries; k++ {
		pPow *= faultRate
		d := step
		if d > maxDelay {
			d = maxDelay
		}
		perOp += pPow * d
		step *= 2
	}
	return perOp * float64(shards+1) // +1: the manifest object
}

// CaptureSeconds returns the solver-visible stall of one asynchronous
// checkpoint: the node-local deep copy of rawBytes across procs cores.
// This is the only part of the checkpoint the async pipeline leaves on
// the critical path; encode and PFS write (CheckpointSeconds) proceed
// in the background.
func (m *Model) CaptureSeconds(procs int, rawBytes float64) float64 {
	if procs <= 0 {
		panic(fmt.Sprintf("cluster: procs must be positive, got %d", procs))
	}
	// No silent fallback, matching the sibling cost methods: a Model
	// literal that omits MemCopyPerCore yields a visible +Inf rather
	// than a quietly substituted default.
	return rawBytes / (m.MemCopyPerCore * float64(procs))
}

// decompressSeconds is the scheme-dependent decompression cost of one
// recovery, shared by the serial and streaming restore models so a
// calibration change cannot skew their comparison.
func (m *Model) decompressSeconds(procs int, rawBytes float64, scheme Scheme) float64 {
	switch scheme {
	case LossyCompressed:
		return rawBytes / (m.DecompressPerCore * float64(procs))
	case LosslessCompressed:
		return rawBytes / (m.LosslessPerCore * float64(procs))
	}
	return 0
}

// RecoverySeconds returns the wall time of one recovery: reading the
// checkpoint back, optional decompression, and reconstructing the
// static variables. This is the legacy serial restore — the full read,
// then the full decompression — of a monolithic checkpoint (which, as
// one file striped across the OSTs, already streams at the aggregate
// PFS bandwidth).
func (m *Model) RecoverySeconds(procs int, encodedBytes, rawBytes float64, scheme Scheme) float64 {
	if procs <= 0 {
		panic(fmt.Sprintf("cluster: procs must be positive, got %d", procs))
	}
	return m.PerRankSeconds*float64(procs) +
		encodedBytes/m.PFSBandwidth +
		m.decompressSeconds(procs, rawBytes, scheme) +
		m.StaticPerRankSeconds*float64(procs)
}

// StripedReadBandwidth returns the effective PFS bandwidth of a
// restore reading a checkpoint stored as shards parallel objects:
// per-stripe read bandwidth × min(shards, stripes), saturating at the
// read-side aggregate (ReadStripeBandwidth × Stripes) and never below
// the write-side aggregate PFSBandwidth — a monolithic checkpoint is
// one file striped across the OSTs, so even a single-object read
// streams at the aggregate, and a shard fan-out can always fall back
// to that scan. Models without striping or read parameters keep the
// aggregate (legacy Model literals).
func (m *Model) StripedReadBandwidth(shards int) float64 {
	if m.Stripes <= 0 || m.ReadStripeBandwidth <= 0 {
		return m.PFSBandwidth
	}
	if shards < 1 {
		shards = 1
	}
	if shards > m.Stripes {
		shards = m.Stripes
	}
	bw := m.ReadStripeBandwidth * float64(shards)
	if bw < m.PFSBandwidth {
		bw = m.PFSBandwidth
	}
	return bw
}

// ShardedRecoverySeconds returns the wall time of one recovery from a
// checkpoint stored as shards parallel objects, mirroring
// ShardedCheckpointSeconds on the read side. shards ≤ 1 is the legacy
// monolithic restore and prices exactly like RecoverySeconds: the full
// payload is read, then decompressed. A sharded group (shards ≥ 2)
// restores through the streaming pipeline: min(shards, Stripes)
// concurrent per-stripe reads, saturating at the read aggregate
// (StripedReadBandwidth), with decompression overlapped against the
// reads per shard — the transfer term is max(read, decompress) instead
// of their sum. Read-side object opens carry no create/commit round
// trips and overlap the transfer, so no per-shard metadata term
// applies; the cost is therefore monotonically non-increasing in the
// shard count up to the stripe saturation point.
func (m *Model) ShardedRecoverySeconds(procs int, encodedBytes, rawBytes float64, scheme Scheme, shards int) float64 {
	if procs <= 0 {
		panic(fmt.Sprintf("cluster: procs must be positive, got %d", procs))
	}
	if shards <= 1 {
		return m.RecoverySeconds(procs, encodedBytes, rawBytes, scheme)
	}
	read := encodedBytes / m.StripedReadBandwidth(shards)
	dec := m.decompressSeconds(procs, rawBytes, scheme)
	if dec > read {
		read = dec
	}
	return m.PerRankSeconds*float64(procs) + read + m.StaticPerRankSeconds*float64(procs)
}

// ABFTRecoverySeconds returns the wall time of one checkpoint-free
// algorithmic (ABFT) recovery: re-gathering the lost block's
// blockBytes over the interconnect from the surviving ranks'
// redundancy, then localIters iterations of the local reconstruction
// solve at iterSeconds each, plus the fixed per-rank coordination
// overhead. No PFS term appears anywhere — that absence is the tier's
// entire advantage, and why the sim's read-traffic comparison shows
// ABFT-on runs touching the file system less. A Model without
// InterconnectBandwidth falls back to MemCopyPerCore (node-local
// exchange), keeping legacy literals finite.
func (m *Model) ABFTRecoverySeconds(blockBytes float64, localIters int, iterSeconds float64) float64 {
	bw := m.InterconnectBandwidth
	if bw <= 0 {
		bw = m.MemCopyPerCore
	}
	if localIters < 0 {
		localIters = 0
	}
	return m.PerRankSeconds + blockBytes/bw + float64(localIters)*iterSeconds
}

// MethodBaseline holds the paper's failure-free reference execution
// for one iterative method at 2,048 processes (§5.4): total productive
// seconds and the iteration count, fixing the mean iteration time.
type MethodBaseline struct {
	Name            string
	BaselineSeconds float64
	Iterations      int
	CkptVectors     int     // vectors in a traditional checkpoint
	PerProcMB       float64 // traditional checkpoint MB per process (Table 3)
	RTol            float64 // convergence tolerance used by the paper
	LossyErrorBound float64 // paper's compressor setting
}

// TitSeconds returns the mean iteration time.
func (b MethodBaseline) TitSeconds() float64 {
	if b.Iterations == 0 {
		return 0
	}
	return b.BaselineSeconds / float64(b.Iterations)
}

// PaperBaselines returns the three methods' reference executions:
// Jacobi ≈50 min/3,941 its, GMRES ≈120 min/5,875 its, CG ≈35 min with
// rtol 1e-7 (§5.4, §4.3, Fig. 8).
func PaperBaselines() map[string]MethodBaseline {
	return map[string]MethodBaseline{
		"jacobi": {
			Name: "jacobi", BaselineSeconds: 50 * 60, Iterations: 3941,
			CkptVectors: 1, PerProcMB: 39.4, RTol: 1e-4, LossyErrorBound: 1e-4,
		},
		"gmres": {
			Name: "gmres", BaselineSeconds: 120 * 60, Iterations: 5875,
			CkptVectors: 1, PerProcMB: 39.4, RTol: 7e-5, LossyErrorBound: 1e-4,
		},
		"cg": {
			Name: "cg", BaselineSeconds: 35 * 60, Iterations: 2400,
			CkptVectors: 2, PerProcMB: 78.8, RTol: 1e-7, LossyErrorBound: 1e-4,
		},
	}
}

// Table3ProblemSizes returns the paper's weak-scaling grid: process
// count → problem dimension n (the linear system has n³ unknowns).
func Table3ProblemSizes() []struct {
	Procs int
	N     int
} {
	return []struct {
		Procs int
		N     int
	}{
		{256, 1088}, {512, 1368}, {768, 1568}, {1024, 1728},
		{1280, 1856}, {1536, 1968}, {1792, 2064}, {2048, 2160},
	}
}
