package solver

import (
	"math"
	"testing"

	"repro/internal/precond"
	"repro/internal/sparse"
	"repro/internal/vec"
)

// solveAndCheck runs s to convergence and asserts the final iterate is
// close to xExact in the relative 2-norm.
func solveAndCheck(t *testing.T, s Stepper, xExact []float64, tol float64) *Result {
	t.Helper()
	res, err := RunToConvergence(s, Options{MaxIter: 50000}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge in %d iterations (rnorm %g)", res.Iterations, res.FinalResidual)
	}
	diff := make([]float64, len(xExact))
	vec.Sub(diff, s.X(), xExact)
	rel := vec.Norm2(diff) / vec.Norm2(xExact)
	if rel > tol {
		t.Fatalf("solution error %g exceeds %g after %d its", rel, tol, res.Iterations)
	}
	return res
}

func poissonSystem(t *testing.T, n int) (*sparse.CSR, []float64, []float64) {
	t.Helper()
	a := sparse.Poisson2D(n)
	xe := sparse.SmoothField(a.Rows, 7)
	b := sparse.RHSForSolution(a, xe)
	return a, b, xe
}

func TestCGSolvesPoisson(t *testing.T) {
	a, b, xe := poissonSystem(t, 10)
	s := NewCG(a, nil, b, nil, SeqSpace{}, Options{RTol: 1e-10})
	res := solveAndCheck(t, s, xe, 1e-7)
	if res.Iterations > a.Rows {
		t.Fatalf("CG took %d iterations on %d unknowns", res.Iterations, a.Rows)
	}
}

func TestCGWithJacobiPreconditioner(t *testing.T) {
	a, b, xe := poissonSystem(t, 10)
	m := precond.NewJacobiFromMatrix(a)
	s := NewCG(a, m, b, nil, SeqSpace{}, Options{RTol: 1e-10})
	solveAndCheck(t, s, xe, 1e-7)
}

func TestCGWithBlockILU0ConvergesFaster(t *testing.T) {
	a, b, _ := poissonSystem(t, 16)
	plain := NewCG(a, nil, b, nil, SeqSpace{}, Options{RTol: 1e-8})
	resPlain, _ := RunToConvergence(plain, Options{MaxIter: 5000}, nil)
	m, err := precond.NewBlockILU0(a, 1)
	if err != nil {
		t.Fatal(err)
	}
	pc := NewCG(a, m, b, nil, SeqSpace{}, Options{RTol: 1e-8})
	resPC, _ := RunToConvergence(pc, Options{MaxIter: 5000}, nil)
	if !resPlain.Converged || !resPC.Converged {
		t.Fatal("both solves must converge")
	}
	if resPC.Iterations >= resPlain.Iterations {
		t.Fatalf("ILU(0) should accelerate CG: %d vs %d iterations",
			resPC.Iterations, resPlain.Iterations)
	}
}

func TestCGWithIC0(t *testing.T) {
	a, b, xe := poissonSystem(t, 12)
	m, err := precond.NewIC0(a)
	if err != nil {
		t.Fatal(err)
	}
	s := NewCG(a, m, b, nil, SeqSpace{}, Options{RTol: 1e-10})
	solveAndCheck(t, s, xe, 1e-7)
}

func TestCGNonzeroInitialGuess(t *testing.T) {
	a, b, xe := poissonSystem(t, 8)
	x0 := make([]float64, a.Rows)
	for i := range x0 {
		x0[i] = 0.5
	}
	s := NewCG(a, nil, b, x0, SeqSpace{}, Options{RTol: 1e-10})
	solveAndCheck(t, s, xe, 1e-7)
}

func TestCGImmediateConvergenceOnExactGuess(t *testing.T) {
	a, b, xe := poissonSystem(t, 6)
	s := NewCG(a, nil, b, xe, SeqSpace{}, Options{RTol: 1e-8})
	if !s.Converged(s.ResidualNorm()) {
		t.Fatalf("exact guess should already satisfy the test; rnorm = %g", s.ResidualNorm())
	}
}

func TestCGRestartPreservesIterationCount(t *testing.T) {
	a, b, _ := poissonSystem(t, 8)
	s := NewCG(a, nil, b, nil, SeqSpace{}, Options{})
	for i := 0; i < 5; i++ {
		s.Step()
	}
	x := append([]float64(nil), s.X()...)
	s.Restart(x)
	if s.Iteration() != 5 {
		t.Fatalf("Restart reset the iteration counter: %d", s.Iteration())
	}
}

func TestCGCaptureRestoreRoundTrip(t *testing.T) {
	// Traditional checkpointing (Algorithm 1): capturing (i, ρ, p, x)
	// and restoring must continue bit-identically.
	a, b, _ := poissonSystem(t, 8)
	s1 := NewCG(a, nil, b, nil, SeqSpace{}, Options{RTol: 1e-12})
	for i := 0; i < 10; i++ {
		s1.Step()
	}
	st := s1.CaptureDynamic()
	// Run s1 forward 10 more steps.
	var want []float64
	for i := 0; i < 10; i++ {
		s1.Step()
	}
	want = append(want, s1.X()...)

	// A second solver restored from the checkpoint must reproduce the
	// same trajectory.
	s2 := NewCG(a, nil, b, nil, SeqSpace{}, Options{RTol: 1e-12})
	if err := s2.RestoreDynamic(st); err != nil {
		t.Fatal(err)
	}
	if s2.Iteration() != 10 {
		t.Fatalf("restored iteration = %d, want 10", s2.Iteration())
	}
	for i := 0; i < 10; i++ {
		s2.Step()
	}
	// Recovery recomputes r = b − A·x (a "recomputed variable", paper
	// §3), which differs from the incrementally updated residual in
	// the last bits, so the trajectories agree to rounding — not
	// bitwise.
	if d := vec.MaxAbsDiff(want, s2.X()); d > 1e-12*vec.NormInf(want) {
		t.Fatalf("restored trajectory diverged by %g", d)
	}
}

func TestCGRestoreRejectsMissingFields(t *testing.T) {
	a, b, _ := poissonSystem(t, 4)
	s := NewCG(a, nil, b, nil, SeqSpace{}, Options{})
	if err := s.RestoreDynamic(DynamicState{}); err == nil {
		t.Fatal("expected error for empty state")
	}
}

func TestGMRESSolvesPoisson(t *testing.T) {
	a, b, xe := poissonSystem(t, 10)
	s := NewGMRES(a, nil, b, nil, 30, SeqSpace{}, Options{RTol: 1e-10})
	solveAndCheck(t, s, xe, 1e-6)
}

func TestGMRESSolvesNonsymmetric(t *testing.T) {
	// Convection-diffusion-like: Poisson plus a skew part.
	base := sparse.Poisson2D(8)
	bld := sparse.NewBuilder(base.Rows, base.Cols)
	for i := 0; i < base.Rows; i++ {
		for k := base.RowPtr[i]; k < base.RowPtr[i+1]; k++ {
			bld.Add(i, base.ColIdx[k], base.Val[k])
		}
		if i+1 < base.Rows {
			bld.Add(i, i+1, 0.3) // asymmetric coupling
		}
	}
	a := bld.Build()
	if a.IsSymmetric(0) {
		t.Fatal("test matrix should be nonsymmetric")
	}
	xe := sparse.SmoothField(a.Rows, 3)
	b := sparse.RHSForSolution(a, xe)
	s := NewGMRES(a, nil, b, nil, 30, SeqSpace{}, Options{RTol: 1e-12})
	solveAndCheck(t, s, xe, 1e-6)
}

func TestGMRESSolvesKKTWithJacobi(t *testing.T) {
	// The Fig. 3 configuration: GMRES + Jacobi preconditioner on a
	// symmetric indefinite KKT system. The zero-diagonal guard in the
	// Jacobi preconditioner is what makes this work at all.
	a := sparse.KKT(6, 18, 5)
	xe := sparse.SmoothField(a.Rows, 9)
	b := sparse.RHSForSolution(a, xe)
	d := make([]float64, a.Rows)
	a.Diag(d)
	m := precond.NewJacobi(d)
	s := NewGMRES(a, m, b, nil, 30, SeqSpace{}, Options{RTol: 1e-12})
	res, err := RunToConvergence(s, Options{MaxIter: 20000}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("GMRES did not converge on KKT: rnorm %g after %d its",
			res.FinalResidual, res.Iterations)
	}
	r := make([]float64, a.Rows)
	a.MulVecSub(r, b, s.X())
	if rel := vec.Norm2(r) / vec.Norm2(b); rel > 1e-8 {
		t.Fatalf("true relative residual %g too large", rel)
	}
}

func TestGMRESRestartLengthMatters(t *testing.T) {
	// Tiny restart length must still converge (slower) on SPD systems.
	a, b, xe := poissonSystem(t, 8)
	short := NewGMRES(a, nil, b, nil, 5, SeqSpace{}, Options{RTol: 1e-9})
	long := NewGMRES(a, nil, b, nil, 60, SeqSpace{}, Options{RTol: 1e-9})
	resShort := solveAndCheck(t, short, xe, 1e-5)
	resLong := solveAndCheck(t, long, xe, 1e-5)
	if resShort.Iterations < resLong.Iterations {
		t.Fatalf("GMRES(5) should not beat GMRES(60): %d vs %d",
			resShort.Iterations, resLong.Iterations)
	}
}

func TestGMRESCurrentXMidCycle(t *testing.T) {
	a, b, _ := poissonSystem(t, 8)
	s := NewGMRES(a, nil, b, nil, 30, SeqSpace{}, Options{RTol: 1e-10})
	for i := 0; i < 7; i++ { // mid-cycle
		s.Step()
	}
	x := s.CurrentX()
	// The materialized iterate must have residual close to the
	// estimate tracked by the Givens recurrence (identical up to
	// rounding for left preconditioning with identity M).
	r := make([]float64, a.Rows)
	a.MulVecSub(r, b, x)
	got := vec.Norm2(r)
	want := s.ResidualNorm()
	if math.Abs(got-want) > 1e-8*(1+want) {
		t.Fatalf("CurrentX residual %g vs tracked estimate %g", got, want)
	}
	// And CurrentX must not perturb the solver.
	before := s.ResidualNorm()
	_ = s.CurrentX()
	if s.ResidualNorm() != before {
		t.Fatal("CurrentX mutated solver state")
	}
}

func TestGMRESRestartFromOwnIterateDoesNotDiverge(t *testing.T) {
	a, b, _ := poissonSystem(t, 8)
	s := NewGMRES(a, nil, b, nil, 10, SeqSpace{}, Options{RTol: 1e-10})
	for i := 0; i < 12; i++ {
		s.Step()
	}
	rBefore := s.ResidualNorm()
	s.Restart(s.CurrentX())
	if s.ResidualNorm() > rBefore*1.0001 {
		t.Fatalf("restart from own iterate increased residual: %g -> %g",
			rBefore, s.ResidualNorm())
	}
}

func TestStationaryKinds(t *testing.T) {
	a := sparse.Poisson2D(6)
	xe := sparse.SmoothField(a.Rows, 5)
	b := sparse.RHSForSolution(a, xe)
	cases := []struct {
		kind  StationaryKind
		omega float64
	}{
		{KindJacobi, 0},
		{KindGaussSeidel, 0},
		{KindSOR, 1.5},
		{KindSSOR, 1.2},
	}
	iters := map[StationaryKind]int{}
	for _, c := range cases {
		s, err := NewStationary(c.kind, a, b, nil, c.omega, Options{RTol: 1e-8})
		if err != nil {
			t.Fatal(err)
		}
		res := solveAndCheck(t, s, xe, 1e-4)
		iters[c.kind] = res.Iterations
	}
	if iters[KindGaussSeidel] >= iters[KindJacobi] {
		t.Fatalf("Gauss-Seidel (%d its) should beat Jacobi (%d its)",
			iters[KindGaussSeidel], iters[KindJacobi])
	}
	if iters[KindSOR] >= iters[KindGaussSeidel] {
		t.Fatalf("SOR(1.5) (%d its) should beat Gauss-Seidel (%d its)",
			iters[KindSOR], iters[KindGaussSeidel])
	}
}

func TestStationaryValidation(t *testing.T) {
	a := sparse.Tridiag(3, -1, 2, -1)
	b := []float64{1, 1, 1}
	if _, err := NewStationary(KindSOR, a, b, nil, 2.5, Options{}); err == nil {
		t.Fatal("expected error for omega outside (0,2)")
	}
	if _, err := NewStationary(KindJacobi, a, []float64{1}, nil, 0, Options{}); err == nil {
		t.Fatal("expected error for b length mismatch")
	}
	zd := sparse.NewBuilder(2, 2)
	zd.Add(0, 1, 1)
	zd.Add(1, 0, 1)
	if _, err := NewStationary(KindJacobi, zd.Build(), []float64{1, 1}, nil, 0, Options{}); err == nil {
		t.Fatal("expected error for zero diagonal")
	}
}

func TestRichardsonEqualsJacobi(t *testing.T) {
	// Richardson with M = diag(A), ω = 1 must produce exactly the
	// Jacobi iterates.
	a := sparse.Poisson2D(5)
	xe := sparse.SmoothField(a.Rows, 1)
	b := sparse.RHSForSolution(a, xe)
	j, err := NewStationary(KindJacobi, a, b, nil, 0, Options{RTol: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	r := NewRichardson(a, precond.NewJacobiFromMatrix(a), b, nil, 1, SeqSpace{}, Options{RTol: 1e-8})
	for i := 0; i < 50; i++ {
		j.Step()
		r.Step()
		if d := vec.MaxAbsDiff(j.X(), r.X()); d > 1e-13 {
			t.Fatalf("iterate mismatch %g at step %d", d, i)
		}
	}
}

func TestStationaryCaptureRestore(t *testing.T) {
	a := sparse.Poisson2D(5)
	b := sparse.OnesRHS(a.Rows)
	s, err := NewStationary(KindJacobi, a, b, nil, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		s.Step()
	}
	st := s.CaptureDynamic()
	for i := 0; i < 20; i++ {
		s.Step()
	}
	want := append([]float64(nil), s.X()...)

	s2, _ := NewStationary(KindJacobi, a, b, nil, 0, Options{})
	if err := s2.RestoreDynamic(st); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		s2.Step()
	}
	if d := vec.MaxAbsDiff(want, s2.X()); d != 0 {
		t.Fatalf("restored Jacobi diverged by %g", d)
	}
}

func TestRunToConvergenceCallbackAbort(t *testing.T) {
	a, b, _ := poissonSystem(t, 6)
	s := NewCG(a, nil, b, nil, SeqSpace{}, Options{})
	sentinel := errSentinel{}
	_, err := RunToConvergence(s, Options{}, func(it int, rnorm float64) error {
		if it == 3 {
			return sentinel
		}
		return nil
	})
	if err != sentinel {
		t.Fatalf("callback error not propagated: %v", err)
	}
	if s.Iteration() != 3 {
		t.Fatalf("solve continued after abort: %d iterations", s.Iteration())
	}
}

type errSentinel struct{}

func (errSentinel) Error() string { return "sentinel" }

func TestRunToConvergenceRespectsMaxIter(t *testing.T) {
	a, b, _ := poissonSystem(t, 10)
	s, err := NewStationary(KindJacobi, a, b, nil, 0, Options{RTol: 1e-14})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunToConvergence(s, Options{MaxIter: 7, RTol: 1e-14}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Fatal("should not converge in 7 Jacobi sweeps at rtol 1e-14")
	}
	if res.Iterations != 7 {
		t.Fatalf("Iterations = %d, want 7", res.Iterations)
	}
}
