package solver

import (
	"errors"

	"repro/internal/precond"
)

// CG is the preconditioned conjugate gradient method (paper
// Algorithm 1) in step form. The dynamic variables of the traditional
// checkpointing scheme are (i, ρ, p, x); the residual r is a
// recomputed variable, rebuilt as r = b − A·x during recovery.
type CG struct {
	a     Operator
	m     precond.Interface
	b     []float64
	space Space
	opts  Options

	x, r, z, p, q []float64
	rho           float64
	it            int
	rnorm         float64
	threshold     float64
}

// NewCG constructs a CG solver for A·x = b with preconditioner m and
// initial guess x0 (nil means zero). The convergence threshold is
// RTol·‖b‖ + ATol, fixed for the lifetime of the solver.
func NewCG(a Operator, m precond.Interface, b []float64, x0 []float64, space Space, opts Options) *CG {
	if m == nil {
		m = precond.Identity{}
	}
	n := len(b)
	s := &CG{
		a:     a,
		m:     m,
		b:     append([]float64(nil), b...),
		space: space,
		opts:  opts.withDefaults(),
		x:     make([]float64, n),
		r:     make([]float64, n),
		z:     make([]float64, n),
		p:     make([]float64, n),
		q:     make([]float64, n),
	}
	normb := space.Norm2(b)
	s.threshold = s.opts.RTol*normb + s.opts.ATol
	if x0 == nil {
		x0 = make([]float64, n)
	}
	checkDims("x0", n, len(x0))
	s.Restart(x0)
	return s
}

// Restart adopts x as a new initial guess and rebuilds r, z, p, ρ —
// the lossy recovery path (Algorithm 2 lines 8–13). The iteration
// counter and the convergence threshold are preserved.
func (s *CG) Restart(x []float64) {
	checkDims("restart x", len(s.b), len(x))
	copy(s.x, x)
	s.a.MulVec(s.r, s.x) // r ← A·x
	for i := range s.r {
		s.r[i] = s.b[i] - s.r[i]
	}
	s.m.Apply(s.z, s.r)
	copy(s.p, s.z)
	s.rho = s.space.Dot(s.r, s.z)
	s.rnorm = s.space.Norm2(s.r)
}

// Step performs one CG iteration (paper Algorithm 1 lines 10–17) and
// returns the true residual norm ‖b − A·x‖.
func (s *CG) Step() float64 {
	s.a.MulVec(s.q, s.p)
	pq := s.space.Dot(s.p, s.q)
	s.it++
	if pq == 0 {
		// Breakdown: direction has zero curvature (already converged
		// or the matrix is not SPD). Leave the state unchanged.
		return s.rnorm
	}
	alpha := s.rho / pq
	for i := range s.x {
		s.x[i] += alpha * s.p[i]
		s.r[i] -= alpha * s.q[i]
	}
	s.m.Apply(s.z, s.r)
	rhoNew := s.space.Dot(s.r, s.z)
	beta := rhoNew / s.rho
	s.rho = rhoNew
	for i := range s.p {
		s.p[i] = s.z[i] + beta*s.p[i]
	}
	s.rnorm = s.space.Norm2(s.r)
	return s.rnorm
}

// Iteration returns the number of Steps performed since construction.
func (s *CG) Iteration() int { return s.it }

// Converged reports rnorm ≤ RTol·‖b‖ + ATol.
func (s *CG) Converged(rnorm float64) bool { return rnorm <= s.threshold }

// ResidualNorm returns the residual norm after the latest Step.
func (s *CG) ResidualNorm() float64 { return s.rnorm }

// X returns the live approximate solution vector.
func (s *CG) X() []float64 { return s.x }

// Rho returns the current ρ scalar (a dynamic variable).
func (s *CG) Rho() float64 { return s.rho }

// R returns the live residual vector. Callers must copy before
// mutating — the exact-state ABFT guard retains a redundant copy of it
// every iteration (Pachajoa/Levonyak's node-level redundancy).
func (s *CG) R() []float64 { return s.r }

// P returns the live search direction (a dynamic variable).
func (s *CG) P() []float64 { return s.p }

// CaptureDynamic deep-copies (i, ρ, p, x) — the traditional
// checkpoint of Algorithm 1 line 4.
func (s *CG) CaptureDynamic() DynamicState {
	return DynamicState{
		Iteration: s.it,
		Scalars:   map[string]float64{"rho": s.rho},
		Vectors: map[string][]float64{
			"x": append([]float64(nil), s.x...),
			"p": append([]float64(nil), s.p...),
		},
	}
}

// RestoreDynamic reinstates (i, ρ, p, x) and recomputes the recomputed
// variables r = b − A·x and z = M⁻¹·r (Algorithm 1 lines 7–8).
func (s *CG) RestoreDynamic(st DynamicState) error {
	x, okX := st.Vectors["x"]
	p, okP := st.Vectors["p"]
	rho, okR := st.Scalars["rho"]
	if !okX || !okP || !okR {
		return errors.New("solver: CG restore needs x, p vectors and rho scalar")
	}
	checkDims("restored x", len(s.b), len(x))
	checkDims("restored p", len(s.b), len(p))
	s.it = st.Iteration
	copy(s.x, x)
	copy(s.p, p)
	s.rho = rho
	s.a.MulVec(s.r, s.x)
	for i := range s.r {
		s.r[i] = s.b[i] - s.r[i]
	}
	s.m.Apply(s.z, s.r)
	s.rnorm = s.space.Norm2(s.r)
	return nil
}

var (
	_ Stepper        = (*CG)(nil)
	_ Restartable    = (*CG)(nil)
	_ Checkpointable = (*CG)(nil)
)
