package solver

import (
	"testing"

	"repro/internal/parallel"
	"repro/internal/sparse"
)

// jacobiTrace runs sweeps Jacobi iterations under the given worker
// count and returns the final iterate and per-sweep residuals.
func jacobiTrace(t *testing.T, a *sparse.CSR, b []float64, workers, sweeps int) ([]float64, []float64) {
	t.Helper()
	prev := parallel.SetWorkers(workers)
	defer parallel.SetWorkers(prev)
	s, err := NewStationary(KindJacobi, a, b, nil, 0, Options{RTol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	res := make([]float64, 0, sweeps)
	for i := 0; i < sweeps; i++ {
		res = append(res, s.Step())
	}
	x := append([]float64(nil), s.X()...)
	return x, res
}

// TestJacobiParallelBitwiseIdentical: the row-partitioned Jacobi sweep
// must be bitwise identical to the serial sweep at any worker count —
// each row's dot product accumulates in the same order regardless of
// which worker owns it. The 33³ grid (35,937 rows) is above the 32k
// serial-fallback cutoff, so the parallel path actually engages.
func TestJacobiParallelBitwiseIdentical(t *testing.T) {
	a := sparse.Poisson3D(33)
	if a.Rows <= 32768 {
		t.Fatalf("test system too small to engage the parallel sweep: %d rows", a.Rows)
	}
	b := sparse.OnesRHS(a.Rows)
	const sweeps = 25
	xSerial, resSerial := jacobiTrace(t, a, b, 1, sweeps)
	for _, workers := range []int{2, 4, 9} {
		x, res := jacobiTrace(t, a, b, workers, sweeps)
		for i := range resSerial {
			if res[i] != resSerial[i] {
				t.Fatalf("workers=%d: residual %d differs bitwise: %g vs %g", workers, i, res[i], resSerial[i])
			}
		}
		for i := range xSerial {
			if x[i] != xSerial[i] {
				t.Fatalf("workers=%d: x[%d] differs bitwise: %g vs %g", workers, i, x[i], xSerial[i])
			}
		}
	}
}

// TestJacobiSmallSystemStaysCorrect: below the cutoff the sweep runs
// inline; the numerics are the same either way.
func TestJacobiSmallSystemStaysCorrect(t *testing.T) {
	a := sparse.Poisson3D(8)
	b := sparse.OnesRHS(a.Rows)
	xSerial, resSerial := jacobiTrace(t, a, b, 1, 50)
	xPar, resPar := jacobiTrace(t, a, b, 8, 50)
	for i := range resSerial {
		if resPar[i] != resSerial[i] {
			t.Fatalf("small-system residual %d differs: %g vs %g", i, resPar[i], resSerial[i])
		}
	}
	for i := range xSerial {
		if xPar[i] != xSerial[i] {
			t.Fatalf("small-system x[%d] differs", i)
		}
	}
}
