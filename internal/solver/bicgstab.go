package solver

import (
	"errors"

	"repro/internal/precond"
)

// BiCGSTAB is the stabilized bi-conjugate gradient method (van der
// Vorst), a Krylov solver for general nonsymmetric systems. The paper
// lists extending lossy checkpointing to additional iterative methods
// as future work; BiCGSTAB is the natural next candidate (PETSc's
// KSPBCGS), and like CG it fits the scheme by restarting from the
// decompressed iterate after a lossy recovery.
type BiCGSTAB struct {
	a     Operator
	m     precond.Interface
	b     []float64
	space Space
	opts  Options

	x, r, rhat, p, v, s, t, ph, sh []float64

	rho, alpha, omega float64
	it                int
	rnorm             float64
	threshold         float64
}

// NewBiCGSTAB constructs a right-preconditioned BiCGSTAB solver for
// A·x = b with initial guess x0 (nil means zero).
func NewBiCGSTAB(a Operator, m precond.Interface, b []float64, x0 []float64, space Space, opts Options) *BiCGSTAB {
	if m == nil {
		m = precond.Identity{}
	}
	n := len(b)
	s := &BiCGSTAB{
		a:     a,
		m:     m,
		b:     append([]float64(nil), b...),
		space: space,
		opts:  opts.withDefaults(),
		x:     make([]float64, n),
		r:     make([]float64, n),
		rhat:  make([]float64, n),
		p:     make([]float64, n),
		v:     make([]float64, n),
		s:     make([]float64, n),
		t:     make([]float64, n),
		ph:    make([]float64, n),
		sh:    make([]float64, n),
	}
	s.threshold = s.opts.RTol*space.Norm2(b) + s.opts.ATol
	if x0 == nil {
		x0 = make([]float64, n)
	}
	checkDims("x0", n, len(x0))
	s.Restart(x0)
	return s
}

// Restart adopts x as a fresh initial guess: r is recomputed, the
// shadow residual r̂ is reset to r, and the recurrence scalars return
// to their initial values — the lossy recovery path.
func (s *BiCGSTAB) Restart(x []float64) {
	checkDims("restart x", len(s.b), len(x))
	copy(s.x, x)
	s.a.MulVec(s.r, s.x)
	for i := range s.r {
		s.r[i] = s.b[i] - s.r[i]
	}
	copy(s.rhat, s.r)
	for i := range s.p {
		s.p[i] = 0
		s.v[i] = 0
	}
	s.rho, s.alpha, s.omega = 1, 1, 1
	s.rnorm = s.space.Norm2(s.r)
}

// Step performs one BiCGSTAB iteration (one application of A via p and
// one via s) and returns the true residual norm.
func (s *BiCGSTAB) Step() float64 {
	s.it++
	rhoNew := s.space.Dot(s.rhat, s.r)
	if rhoNew == 0 || s.omega == 0 {
		// Breakdown: restart the recurrence from the current iterate,
		// the standard remedy.
		s.Restart(s.x)
		return s.rnorm
	}
	beta := (rhoNew / s.rho) * (s.alpha / s.omega)
	s.rho = rhoNew
	for i := range s.p {
		s.p[i] = s.r[i] + beta*(s.p[i]-s.omega*s.v[i])
	}
	s.m.Apply(s.ph, s.p)
	s.a.MulVec(s.v, s.ph)
	d := s.space.Dot(s.rhat, s.v)
	if d == 0 {
		s.Restart(s.x)
		return s.rnorm
	}
	s.alpha = s.rho / d
	for i := range s.s {
		s.s[i] = s.r[i] - s.alpha*s.v[i]
	}
	// Early exit on half-step convergence.
	if sn := s.space.Norm2(s.s); sn <= s.threshold {
		for i := range s.x {
			s.x[i] += s.alpha * s.ph[i]
		}
		copy(s.r, s.s)
		s.rnorm = sn
		return s.rnorm
	}
	s.m.Apply(s.sh, s.s)
	s.a.MulVec(s.t, s.sh)
	tt := s.space.Dot(s.t, s.t)
	if tt == 0 {
		s.Restart(s.x)
		return s.rnorm
	}
	s.omega = s.space.Dot(s.t, s.s) / tt
	for i := range s.x {
		s.x[i] += s.alpha*s.ph[i] + s.omega*s.sh[i]
	}
	for i := range s.r {
		s.r[i] = s.s[i] - s.omega*s.t[i]
	}
	s.rnorm = s.space.Norm2(s.r)
	return s.rnorm
}

// Iteration returns the number of Steps performed since construction.
func (s *BiCGSTAB) Iteration() int { return s.it }

// Converged reports rnorm ≤ RTol·‖b‖ + ATol.
func (s *BiCGSTAB) Converged(rnorm float64) bool { return rnorm <= s.threshold }

// ResidualNorm returns the residual norm after the latest Step.
func (s *BiCGSTAB) ResidualNorm() float64 { return s.rnorm }

// X returns the live approximate solution.
func (s *BiCGSTAB) X() []float64 { return s.x }

// CaptureDynamic saves the full recurrence state (x, r, r̂, p, v and
// the scalars) — the traditional checkpoint for BiCGSTAB.
func (s *BiCGSTAB) CaptureDynamic() DynamicState {
	cp := func(v []float64) []float64 { return append([]float64(nil), v...) }
	return DynamicState{
		Iteration: s.it,
		Scalars:   map[string]float64{"rho": s.rho, "alpha": s.alpha, "omega": s.omega},
		Vectors: map[string][]float64{
			"x": cp(s.x), "rhat": cp(s.rhat), "p": cp(s.p), "v": cp(s.v),
		},
	}
}

// RestoreDynamic reinstates the recurrence and recomputes r = b − A·x.
func (s *BiCGSTAB) RestoreDynamic(st DynamicState) error {
	for _, name := range []string{"x", "rhat", "p", "v"} {
		if _, ok := st.Vectors[name]; !ok {
			return errors.New("solver: BiCGSTAB restore needs vector " + name)
		}
	}
	for _, name := range []string{"rho", "alpha", "omega"} {
		if _, ok := st.Scalars[name]; !ok {
			return errors.New("solver: BiCGSTAB restore needs scalar " + name)
		}
	}
	s.it = st.Iteration
	copy(s.x, st.Vectors["x"])
	copy(s.rhat, st.Vectors["rhat"])
	copy(s.p, st.Vectors["p"])
	copy(s.v, st.Vectors["v"])
	s.rho = st.Scalars["rho"]
	s.alpha = st.Scalars["alpha"]
	s.omega = st.Scalars["omega"]
	s.a.MulVec(s.r, s.x)
	for i := range s.r {
		s.r[i] = s.b[i] - s.r[i]
	}
	s.rnorm = s.space.Norm2(s.r)
	return nil
}

var (
	_ Stepper        = (*BiCGSTAB)(nil)
	_ Restartable    = (*BiCGSTAB)(nil)
	_ Checkpointable = (*BiCGSTAB)(nil)
)
