package solver

import (
	"testing"

	"repro/internal/mpi"
	"repro/internal/precond"
	"repro/internal/sparse"
	"repro/internal/vec"
)

// TestDistributedCGMatchesSequential runs the same CG solve
// sequentially and across several rank counts; the distributed solves
// must converge to the same solution.
func TestDistributedCGMatchesSequential(t *testing.T) {
	a := sparse.Poisson3D(4)
	xe := sparse.SmoothField(a.Rows, 11)
	b := sparse.RHSForSolution(a, xe)

	seq := NewCG(a, nil, b, nil, SeqSpace{}, Options{RTol: 1e-10})
	resSeq, err := RunToConvergence(seq, Options{MaxIter: 2000}, nil)
	if err != nil || !resSeq.Converged {
		t.Fatalf("sequential CG failed: %v %+v", err, resSeq)
	}

	for _, p := range []int{2, 4, 7} {
		err := mpi.Run(p, func(c *mpi.Comm) error {
			d := sparse.NewDist(c, a)
			lo, n := d.RowStart(), d.LocalRows()
			bl := append([]float64(nil), b[lo:lo+n]...)
			s := NewCG(d, nil, bl, nil, MPISpace{Comm: c}, Options{RTol: 1e-10})
			res, err := RunToConvergence(s, Options{MaxIter: 2000}, nil)
			if err != nil {
				return err
			}
			if !res.Converged {
				t.Errorf("p=%d: distributed CG did not converge", p)
				return nil
			}
			full := d.Gather(s.X())
			diff := make([]float64, len(full))
			vec.Sub(diff, full, seq.X())
			if rel := vec.Norm2(diff) / vec.Norm2(seq.X()); rel > 1e-6 {
				t.Errorf("p=%d: distributed solution differs by %g", p, rel)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestDistributedJacobiMatchesSequential checks the Richardson/Jacobi
// equivalence across ranks: the distributed Jacobi iterates must equal
// the sequential ones step by step (no reductions are involved in the
// update itself, so this is exact).
func TestDistributedJacobiMatchesSequential(t *testing.T) {
	a := sparse.Poisson2D(6)
	xe := sparse.SmoothField(a.Rows, 13)
	b := sparse.RHSForSolution(a, xe)

	jac, err := NewStationary(KindJacobi, a, b, nil, 0, Options{RTol: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	const steps = 30
	seqIterates := make([][]float64, steps)
	for i := 0; i < steps; i++ {
		jac.Step()
		seqIterates[i] = append([]float64(nil), jac.X()...)
	}

	err = mpi.Run(3, func(c *mpi.Comm) error {
		d := sparse.NewDist(c, a)
		lo, n := d.RowStart(), d.LocalRows()
		bl := append([]float64(nil), b[lo:lo+n]...)
		diag := make([]float64, n)
		d.Diag(diag)
		s := NewRichardson(d, precond.NewJacobi(diag), bl, nil, 1, MPISpace{Comm: c}, Options{RTol: 1e-6})
		for i := 0; i < steps; i++ {
			s.Step()
			for k := 0; k < n; k++ {
				if diff := s.X()[k] - seqIterates[i][lo+k]; diff > 1e-12 || diff < -1e-12 {
					t.Errorf("rank %d step %d row %d: %g vs %g",
						c.Rank(), i, lo+k, s.X()[k], seqIterates[i][lo+k])
					return nil
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestDistributedGMRESMatchesSequential verifies the distributed GMRES
// path (reductions inside Arnoldi) reaches the same solution.
func TestDistributedGMRESMatchesSequential(t *testing.T) {
	a := sparse.Poisson3D(3)
	xe := sparse.SmoothField(a.Rows, 17)
	b := sparse.RHSForSolution(a, xe)

	seq := NewGMRES(a, nil, b, nil, 10, SeqSpace{}, Options{RTol: 1e-10})
	resSeq, err := RunToConvergence(seq, Options{MaxIter: 2000}, nil)
	if err != nil || !resSeq.Converged {
		t.Fatalf("sequential GMRES failed: %v", err)
	}

	err = mpi.Run(4, func(c *mpi.Comm) error {
		d := sparse.NewDist(c, a)
		lo, n := d.RowStart(), d.LocalRows()
		bl := append([]float64(nil), b[lo:lo+n]...)
		s := NewGMRES(d, nil, bl, nil, 10, MPISpace{Comm: c}, Options{RTol: 1e-10})
		res, err := RunToConvergence(s, Options{MaxIter: 2000}, nil)
		if err != nil {
			return err
		}
		if !res.Converged {
			t.Error("distributed GMRES did not converge")
			return nil
		}
		full := d.Gather(s.X())
		diff := make([]float64, len(full))
		vec.Sub(diff, full, seq.X())
		if rel := vec.Norm2(diff) / vec.Norm2(seq.X()); rel > 1e-6 {
			t.Errorf("distributed GMRES solution differs by %g", rel)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
