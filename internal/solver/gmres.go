package solver

import (
	"errors"
	"math"

	"repro/internal/precond"
)

// GMRES is the restarted generalized minimal residual method
// GMRES(k) of Saad and Schultz with left preconditioning, modified
// Gram–Schmidt orthogonalization, and Givens rotations for the
// incremental least-squares solve. The paper runs GMRES(30), PETSc's
// recommended restart length.
//
// Because the method is restarted anyway, its only dynamic variable in
// both checkpointing schemes is the current approximate solution x:
// recovery materializes x and begins a fresh Krylov cycle.
type GMRES struct {
	a     Operator
	m     precond.Interface
	b     []float64
	space Space
	opts  Options
	k     int

	x []float64
	v [][]float64 // k+1 basis vectors
	h [][]float64 // (k+1)×k Hessenberg
	g []float64   // least-squares RHS, length k+1
	c []float64   // Givens cosines
	s []float64   // Givens sines
	j int         // inner index within the current cycle

	w         []float64 // scratch
	t         []float64 // scratch
	it        int
	rnorm     float64
	threshold float64
}

// NewGMRES constructs GMRES(k) for A·x = b with left preconditioner m
// and initial guess x0 (nil means zero). Convergence is tested on the
// preconditioned residual norm against RTol·‖M⁻¹b‖ + ATol, PETSc's
// default left-preconditioned criterion.
func NewGMRES(a Operator, m precond.Interface, b []float64, x0 []float64, k int, space Space, opts Options) *GMRES {
	if k <= 0 {
		k = 30
	}
	if m == nil {
		m = precond.Identity{}
	}
	n := len(b)
	s := &GMRES{
		a:     a,
		m:     m,
		b:     append([]float64(nil), b...),
		space: space,
		opts:  opts.withDefaults(),
		k:     k,
		x:     make([]float64, n),
		g:     make([]float64, k+1),
		c:     make([]float64, k),
		s:     make([]float64, k),
		w:     make([]float64, n),
		t:     make([]float64, n),
	}
	s.v = make([][]float64, k+1)
	for i := range s.v {
		s.v[i] = make([]float64, n)
	}
	s.h = make([][]float64, k+1)
	for i := range s.h {
		s.h[i] = make([]float64, k)
	}
	// Reference norm: ‖M⁻¹·b‖.
	s.m.Apply(s.w, s.b)
	s.threshold = s.opts.RTol*space.Norm2(s.w) + s.opts.ATol
	if x0 == nil {
		x0 = make([]float64, n)
	}
	checkDims("x0", n, len(x0))
	s.Restart(x0)
	return s
}

// Restart adopts x as the new initial guess and begins a fresh Krylov
// cycle; the iteration counter and threshold are preserved.
func (s *GMRES) Restart(x []float64) {
	checkDims("restart x", len(s.b), len(x))
	copy(s.x, x)
	s.beginCycle()
}

// beginCycle computes the preconditioned residual and seeds the Arnoldi
// basis.
func (s *GMRES) beginCycle() {
	s.a.MulVec(s.t, s.x)
	for i := range s.t {
		s.t[i] = s.b[i] - s.t[i]
	}
	s.m.Apply(s.w, s.t)
	beta := s.space.Norm2(s.w)
	s.rnorm = beta
	s.j = 0
	for i := range s.g {
		s.g[i] = 0
	}
	s.g[0] = beta
	if beta > 0 {
		inv := 1 / beta
		for i := range s.w {
			s.v[0][i] = s.w[i] * inv
		}
	} else {
		for i := range s.v[0] {
			s.v[0][i] = 0
		}
	}
}

// Step performs one Arnoldi iteration and returns the preconditioned
// residual-norm estimate |g[j+1]|. When the cycle fills (j = k) or the
// estimate converges, the iterate is materialized and, if not yet
// converged, a new cycle begins.
func (s *GMRES) Step() float64 {
	j := s.j
	// w ← M⁻¹·A·v_j
	s.a.MulVec(s.t, s.v[j])
	s.m.Apply(s.w, s.t)
	// Modified Gram–Schmidt.
	for i := 0; i <= j; i++ {
		hij := s.space.Dot(s.w, s.v[i])
		s.h[i][j] = hij
		for l := range s.w {
			s.w[l] -= hij * s.v[i][l]
		}
	}
	hj1 := s.space.Norm2(s.w)
	s.h[j+1][j] = hj1
	if hj1 > 0 {
		inv := 1 / hj1
		for l := range s.w {
			s.v[j+1][l] = s.w[l] * inv
		}
	} else {
		// Happy breakdown: the Krylov space is invariant; the
		// least-squares solve below yields the exact solution.
		for l := range s.v[j+1] {
			s.v[j+1][l] = 0
		}
	}
	// Apply accumulated Givens rotations to the new column.
	for i := 0; i < j; i++ {
		h1, h2 := s.h[i][j], s.h[i+1][j]
		s.h[i][j] = s.c[i]*h1 + s.s[i]*h2
		s.h[i+1][j] = -s.s[i]*h1 + s.c[i]*h2
	}
	// New rotation annihilating h[j+1][j].
	h1, h2 := s.h[j][j], s.h[j+1][j]
	r := math.Hypot(h1, h2)
	if r == 0 {
		s.c[j], s.s[j] = 1, 0
	} else {
		s.c[j], s.s[j] = h1/r, h2/r
	}
	s.h[j][j] = r
	s.h[j+1][j] = 0
	gj := s.g[j]
	s.g[j] = s.c[j] * gj
	s.g[j+1] = -s.s[j] * gj

	s.j++
	s.it++
	s.rnorm = math.Abs(s.g[s.j])

	if s.Converged(s.rnorm) || s.j == s.k {
		s.materialize()
		if !s.Converged(s.rnorm) {
			s.beginCycle()
		}
	}
	return s.rnorm
}

// materialize solves the j×j triangular system and folds the Krylov
// correction into x.
func (s *GMRES) materialize() {
	m := s.j
	if m == 0 {
		return
	}
	y := make([]float64, m)
	for i := m - 1; i >= 0; i-- {
		sum := s.g[i]
		for l := i + 1; l < m; l++ {
			sum -= s.h[i][l] * y[l]
		}
		if s.h[i][i] != 0 {
			y[i] = sum / s.h[i][i]
		}
	}
	for i := 0; i < m; i++ {
		if y[i] == 0 {
			continue
		}
		for l := range s.x {
			s.x[l] += y[i] * s.v[i][l]
		}
	}
	s.j = 0
	s.g[0] = 0 // mark the cycle consumed; beginCycle recomputes
}

// CurrentX materializes the current approximate solution without
// disturbing the in-progress cycle. It is what a mid-cycle checkpoint
// saves.
func (s *GMRES) CurrentX() []float64 {
	out := append([]float64(nil), s.x...)
	m := s.j
	if m == 0 {
		return out
	}
	y := make([]float64, m)
	for i := m - 1; i >= 0; i-- {
		sum := s.g[i]
		for l := i + 1; l < m; l++ {
			sum -= s.h[i][l] * y[l]
		}
		if s.h[i][i] != 0 {
			y[i] = sum / s.h[i][i]
		}
	}
	for i := 0; i < m; i++ {
		if y[i] == 0 {
			continue
		}
		for l := range out {
			out[l] += y[i] * s.v[i][l]
		}
	}
	return out
}

// Iteration returns the number of inner iterations since construction.
func (s *GMRES) Iteration() int { return s.it }

// Converged reports rnorm ≤ RTol·‖M⁻¹b‖ + ATol.
func (s *GMRES) Converged(rnorm float64) bool { return rnorm <= s.threshold }

// ResidualNorm returns the current preconditioned residual estimate.
func (s *GMRES) ResidualNorm() float64 { return s.rnorm }

// X returns the solution materialized at the last cycle boundary. Use
// CurrentX for the up-to-the-iteration value.
func (s *GMRES) X() []float64 { return s.x }

// RestartLength returns k.
func (s *GMRES) RestartLength() int { return s.k }

// CaptureDynamic saves the materialized iterate — for a restarted
// method the approximate solution is the only dynamic variable.
func (s *GMRES) CaptureDynamic() DynamicState {
	return DynamicState{
		Iteration: s.it,
		Vectors:   map[string][]float64{"x": s.CurrentX()},
	}
}

// RestoreDynamic re-seeds the solver from the saved iterate.
func (s *GMRES) RestoreDynamic(st DynamicState) error {
	x, ok := st.Vectors["x"]
	if !ok {
		return errors.New("solver: GMRES restore needs the x vector")
	}
	s.it = st.Iteration
	s.Restart(x)
	return nil
}

var (
	_ Stepper        = (*GMRES)(nil)
	_ Restartable    = (*GMRES)(nil)
	_ Checkpointable = (*GMRES)(nil)
)
