// Package solver implements the iterative methods evaluated by the
// paper — stationary methods (Jacobi, Gauss-Seidel, SOR, SSOR), the
// preconditioned conjugate gradient method, and restarted GMRES(k) —
// with a step-based API so that checkpoint/recovery logic can be
// interleaved with iterations exactly as in the paper's Algorithms 1
// and 2.
//
// Solvers are written against two small abstractions: Operator (apply
// the system matrix) and Space (inner products and norms), so the same
// solver code runs sequentially (sparse.CSR + SeqSpace) or distributed
// (sparse.Dist + MPISpace over the mpi runtime).
package solver

import (
	"fmt"
	"math"

	"repro/internal/mpi"
	"repro/internal/vec"
)

// Operator applies a linear operator: dst ← A·x.
type Operator interface {
	MulVec(dst, x []float64)
}

// Space provides the reductions a Krylov method needs. For a
// distributed run, vectors hold only the locally owned block and the
// Space reduces across ranks.
type Space interface {
	Dot(x, y []float64) float64
	Norm2(x []float64) float64
}

// SeqSpace is the sequential Space: plain dot products and norms.
type SeqSpace struct{}

// Dot returns x·y.
func (SeqSpace) Dot(x, y []float64) float64 { return vec.Dot(x, y) }

// Norm2 returns ‖x‖₂.
func (SeqSpace) Norm2(x []float64) float64 { return vec.Norm2(x) }

// MPISpace reduces partial dot products across all ranks of a
// communicator, the distributed-memory analogue of SeqSpace.
type MPISpace struct{ Comm *mpi.Comm }

// Dot returns the global inner product of the distributed vectors.
func (s MPISpace) Dot(x, y []float64) float64 {
	return s.Comm.AllreduceSum(vec.Dot(x, y))
}

// Norm2 returns the global Euclidean norm of a distributed vector.
func (s MPISpace) Norm2(x []float64) float64 {
	return math.Sqrt(s.Comm.AllreduceSum(vec.Dot(x, x)))
}

// Options control convergence testing. The zero value picks the
// paper's/PETSc's defaults.
type Options struct {
	// RTol is the relative convergence tolerance: the solver stops
	// when the (possibly preconditioned) residual norm drops below
	// RTol times its right-hand-side norm. PETSc's default is 1e-5.
	RTol float64
	// ATol is the absolute floor on the residual norm.
	ATol float64
	// MaxIter caps the number of iterations (default 100000).
	MaxIter int
}

func (o Options) withDefaults() Options {
	if o.RTol == 0 {
		o.RTol = 1e-5
	}
	if o.ATol == 0 {
		o.ATol = 1e-50
	}
	if o.MaxIter == 0 {
		o.MaxIter = 100000
	}
	return o
}

// Stepper is the iteration-level view of a solver: one Step per
// iteration, a live solution vector, and a convergence test that is
// invariant under restarts (the threshold is fixed against the
// right-hand side at construction, so recovering from a checkpoint
// does not move the goalposts).
type Stepper interface {
	// Step performs one iteration and returns the residual norm used
	// for convergence testing.
	Step() float64
	// Iteration returns the number of Steps performed since
	// construction. Restarts do not reset it.
	Iteration() int
	// Converged reports whether the given residual norm meets the
	// convergence criterion.
	Converged(rnorm float64) bool
	// ResidualNorm returns the residual norm after the most recent
	// Step (or initialization).
	ResidualNorm() float64
	// X returns the live approximate solution (owned block in
	// distributed mode). Callers must copy before mutating.
	X() []float64
}

// Restartable solvers can adopt a new initial guess mid-run — the
// paper's lossy recovery path (Algorithm 2): the decompressed solution
// vector becomes a fresh starting point and all auxiliary Krylov state
// is rebuilt.
type Restartable interface {
	Restart(x []float64)
}

// DynamicState is the set of dynamic variables (paper §3) that a
// traditional checkpoint must save for a given solver: the iteration
// number, solver-specific scalars (CG's ρ), and solver-specific
// vectors (x, and p for CG).
type DynamicState struct {
	Iteration int
	Scalars   map[string]float64
	Vectors   map[string][]float64
}

// Checkpointable solvers expose their dynamic variables for the
// traditional checkpointing scheme (Algorithm 1).
type Checkpointable interface {
	Stepper
	// CaptureDynamic deep-copies the dynamic variables.
	CaptureDynamic() DynamicState
	// RestoreDynamic reinstates previously captured dynamic variables
	// and recomputes the recomputed variables (paper §3), e.g. CG's
	// residual r = b − A·x.
	RestoreDynamic(DynamicState) error
}

// Result summarizes a completed solve.
type Result struct {
	Converged     bool
	Iterations    int
	FinalResidual float64 // absolute residual norm at exit
	RelResidual   float64 // FinalResidual / reference norm
	History       []float64
}

// RunToConvergence drives a Stepper until convergence or the iteration
// cap. The optional callback runs after every iteration (checkpoint
// hooks, failure injection, residual recording); returning an error
// aborts the solve.
func RunToConvergence(s Stepper, opts Options, cb func(it int, rnorm float64) error) (*Result, error) {
	opts = opts.withDefaults()
	res := &Result{}
	rnorm := s.ResidualNorm()
	if s.Converged(rnorm) {
		res.Converged = true
		res.FinalResidual = rnorm
		return res, nil
	}
	for n := 0; n < opts.MaxIter; n++ {
		rnorm = s.Step()
		if cb != nil {
			if err := cb(s.Iteration(), rnorm); err != nil {
				return res, err
			}
		}
		if s.Converged(rnorm) {
			res.Converged = true
			break
		}
	}
	res.Iterations = s.Iteration()
	res.FinalResidual = rnorm
	return res, nil
}

// checkDims panics with a helpful message when a solver is constructed
// with inconsistent vector lengths.
func checkDims(what string, n int, got int) {
	if n != got {
		panic(fmt.Sprintf("solver: %s length %d does not match system size %d", what, got, n))
	}
}
