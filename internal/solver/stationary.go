package solver

import (
	"errors"
	"fmt"

	"repro/internal/parallel"
	"repro/internal/precond"
	"repro/internal/sparse"
)

// StationaryKind selects the sweep performed by a Stationary solver.
type StationaryKind int

// The four representative stationary methods analyzed in paper §4.4.1.
const (
	KindJacobi StationaryKind = iota
	KindGaussSeidel
	KindSOR
	KindSSOR
)

// String returns the conventional method name.
func (k StationaryKind) String() string {
	switch k {
	case KindJacobi:
		return "Jacobi"
	case KindGaussSeidel:
		return "Gauss-Seidel"
	case KindSOR:
		return "SOR"
	case KindSSOR:
		return "SSOR"
	}
	return fmt.Sprintf("StationaryKind(%d)", int(k))
}

// Stationary iterates x ← G·x + c for the classical splittings. The
// only dynamic variable is x itself, which makes these methods the
// cleanest fit for lossy checkpointing (paper Theorem 2 bounds the
// extra iterations).
type Stationary struct {
	a     *sparse.CSR
	b     []float64
	kind  StationaryKind
	omega float64
	opts  Options

	x, xNew, r []float64
	diag       []float64
	it         int
	rnorm      float64
	threshold  float64
}

// NewStationary constructs a stationary solver of the given kind for
// A·x = b. omega is the relaxation factor for SOR/SSOR (ignored by
// Jacobi and Gauss-Seidel; 1 ≤ omega < 2 accelerates, omega = 1
// reduces SOR to Gauss-Seidel).
func NewStationary(kind StationaryKind, a *sparse.CSR, b []float64, x0 []float64, omega float64, opts Options) (*Stationary, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("solver: stationary method needs square matrix, got %dx%d", a.Rows, a.Cols)
	}
	if a.Rows != len(b) {
		return nil, fmt.Errorf("solver: b has %d entries for %d×%d matrix", len(b), a.Rows, a.Cols)
	}
	if (kind == KindSOR || kind == KindSSOR) && (omega <= 0 || omega >= 2) {
		return nil, fmt.Errorf("solver: SOR relaxation omega = %g outside (0,2)", omega)
	}
	n := a.Rows
	s := &Stationary{
		a:     a,
		b:     append([]float64(nil), b...),
		kind:  kind,
		omega: omega,
		opts:  opts.withDefaults(),
		x:     make([]float64, n),
		xNew:  make([]float64, n),
		r:     make([]float64, n),
		diag:  make([]float64, n),
	}
	a.Diag(s.diag)
	for i, d := range s.diag {
		if d == 0 {
			return nil, fmt.Errorf("solver: stationary method needs nonzero diagonal (row %d)", i)
		}
	}
	s.threshold = s.opts.RTol*SeqSpace{}.Norm2(b) + s.opts.ATol
	if x0 == nil {
		x0 = make([]float64, n)
	}
	checkDims("x0", n, len(x0))
	s.Restart(x0)
	return s, nil
}

// Restart adopts x as the current iterate; stationary methods carry no
// auxiliary state, so this is a copy plus a residual refresh.
func (s *Stationary) Restart(x []float64) {
	checkDims("restart x", len(s.b), len(x))
	copy(s.x, x)
	s.refreshResidual()
}

func (s *Stationary) refreshResidual() {
	s.a.MulVecSub(s.r, s.b, s.x)
	s.rnorm = SeqSpace{}.Norm2(s.r)
}

// Step performs one sweep and returns the true residual norm.
func (s *Stationary) Step() float64 {
	switch s.kind {
	case KindJacobi:
		s.jacobiSweep()
	case KindGaussSeidel:
		s.sorSweep(1, false)
	case KindSOR:
		s.sorSweep(s.omega, false)
	case KindSSOR:
		s.sorSweep(s.omega, false)
		s.sorSweep(s.omega, true)
	}
	s.it++
	s.refreshResidual()
	return s.rnorm
}

// jacobiSweep computes xNew_i = (b_i − Σ_{j≠i} a_ij·x_j)/a_ii.
//
// Unlike Gauss-Seidel/SOR, the Jacobi update reads only the previous
// iterate, so rows are independent and the sweep partitions freely
// across the worker pool. Each row's dot product accumulates in the
// same serial order on every schedule, so the parallel sweep is
// bitwise identical to the serial one and convergence traces do not
// change. The 32k-row grain keeps sweeps below that size on the
// caller's goroutine (serial fallback), matching the SpMV cutoff.
func (s *Stationary) jacobiSweep() {
	a := s.a
	parallel.For(a.Rows, parallel.Grain(a.Rows, 32768, 4), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			sum := s.b[i]
			for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
				j := a.ColIdx[k]
				if j != i {
					sum -= a.Val[k] * s.x[j]
				}
			}
			s.xNew[i] = sum / s.diag[i]
		}
	})
	s.x, s.xNew = s.xNew, s.x
}

// sorSweep performs one in-place successive-overrelaxation sweep; a
// backward sweep (reverse row order) combined with a forward one
// yields the symmetric method SSOR.
func (s *Stationary) sorSweep(omega float64, backward bool) {
	a := s.a
	n := a.Rows
	for ii := 0; ii < n; ii++ {
		i := ii
		if backward {
			i = n - 1 - ii
		}
		sum := s.b[i]
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			j := a.ColIdx[k]
			if j != i {
				sum -= a.Val[k] * s.x[j]
			}
		}
		gs := sum / s.diag[i]
		s.x[i] = (1-omega)*s.x[i] + omega*gs
	}
}

// Iteration returns the number of sweeps since construction.
func (s *Stationary) Iteration() int { return s.it }

// Converged reports rnorm ≤ RTol·‖b‖ + ATol.
func (s *Stationary) Converged(rnorm float64) bool { return rnorm <= s.threshold }

// ResidualNorm returns ‖b − A·x‖ after the latest sweep.
func (s *Stationary) ResidualNorm() float64 { return s.rnorm }

// X returns the live iterate.
func (s *Stationary) X() []float64 { return s.x }

// Kind returns the sweep type.
func (s *Stationary) Kind() StationaryKind { return s.kind }

// CaptureDynamic saves (i, x): stationary methods have no other
// dynamic variables.
func (s *Stationary) CaptureDynamic() DynamicState {
	return DynamicState{
		Iteration: s.it,
		Vectors:   map[string][]float64{"x": append([]float64(nil), s.x...)},
	}
}

// RestoreDynamic reinstates (i, x).
func (s *Stationary) RestoreDynamic(st DynamicState) error {
	x, ok := st.Vectors["x"]
	if !ok {
		return errors.New("solver: stationary restore needs the x vector")
	}
	s.it = st.Iteration
	s.Restart(x)
	return nil
}

var (
	_ Stepper        = (*Stationary)(nil)
	_ Restartable    = (*Stationary)(nil)
	_ Checkpointable = (*Stationary)(nil)
)

// Richardson is the operator-form stationary iteration
// x ← x + ω·M⁻¹·(b − A·x). With M = diag(A) and ω = 1 it is exactly
// the Jacobi method, but expressed through Operator/Space it also runs
// distributed (sparse.Dist + MPISpace), which is how the examples run
// the paper's Jacobi experiments across ranks.
type Richardson struct {
	a     Operator
	m     precond.Interface
	b     []float64
	space Space
	omega float64
	opts  Options

	x, r, z   []float64
	it        int
	rnorm     float64
	threshold float64
}

// NewRichardson constructs the preconditioned Richardson iteration.
// m = nil means the identity; omega ≤ 0 defaults to 1.
func NewRichardson(a Operator, m precond.Interface, b []float64, x0 []float64, omega float64, space Space, opts Options) *Richardson {
	if m == nil {
		m = precond.Identity{}
	}
	if omega <= 0 {
		omega = 1
	}
	n := len(b)
	s := &Richardson{
		a:     a,
		m:     m,
		b:     append([]float64(nil), b...),
		space: space,
		omega: omega,
		opts:  opts.withDefaults(),
		x:     make([]float64, n),
		r:     make([]float64, n),
		z:     make([]float64, n),
	}
	s.threshold = s.opts.RTol*space.Norm2(b) + s.opts.ATol
	if x0 == nil {
		x0 = make([]float64, n)
	}
	checkDims("x0", n, len(x0))
	s.Restart(x0)
	return s
}

// Restart adopts x as the current iterate.
func (s *Richardson) Restart(x []float64) {
	checkDims("restart x", len(s.b), len(x))
	copy(s.x, x)
	s.refreshResidual()
}

func (s *Richardson) refreshResidual() {
	s.a.MulVec(s.r, s.x)
	for i := range s.r {
		s.r[i] = s.b[i] - s.r[i]
	}
	s.rnorm = s.space.Norm2(s.r)
}

// Step performs x ← x + ω·M⁻¹·r and returns the new residual norm.
func (s *Richardson) Step() float64 {
	s.m.Apply(s.z, s.r)
	for i := range s.x {
		s.x[i] += s.omega * s.z[i]
	}
	s.it++
	s.refreshResidual()
	return s.rnorm
}

// Iteration returns the number of sweeps since construction.
func (s *Richardson) Iteration() int { return s.it }

// Converged reports rnorm ≤ RTol·‖b‖ + ATol.
func (s *Richardson) Converged(rnorm float64) bool { return rnorm <= s.threshold }

// ResidualNorm returns the residual norm after the latest Step.
func (s *Richardson) ResidualNorm() float64 { return s.rnorm }

// X returns the live iterate.
func (s *Richardson) X() []float64 { return s.x }

// CaptureDynamic saves (i, x).
func (s *Richardson) CaptureDynamic() DynamicState {
	return DynamicState{
		Iteration: s.it,
		Vectors:   map[string][]float64{"x": append([]float64(nil), s.x...)},
	}
}

// RestoreDynamic reinstates (i, x).
func (s *Richardson) RestoreDynamic(st DynamicState) error {
	x, ok := st.Vectors["x"]
	if !ok {
		return errors.New("solver: Richardson restore needs the x vector")
	}
	s.it = st.Iteration
	s.Restart(x)
	return nil
}

var (
	_ Stepper        = (*Richardson)(nil)
	_ Restartable    = (*Richardson)(nil)
	_ Checkpointable = (*Richardson)(nil)
)
