package solver

import (
	"testing"

	"repro/internal/precond"
	"repro/internal/sparse"
	"repro/internal/vec"
)

// nonsymmetricSystem builds a convection-diffusion-like system that
// CG cannot handle but BiCGSTAB should.
func nonsymmetricSystem(t *testing.T, n int) (*sparse.CSR, []float64, []float64) {
	t.Helper()
	base := sparse.Poisson2D(n)
	bld := sparse.NewBuilder(base.Rows, base.Cols)
	for i := 0; i < base.Rows; i++ {
		for k := base.RowPtr[i]; k < base.RowPtr[i+1]; k++ {
			bld.Add(i, base.ColIdx[k], base.Val[k])
		}
		if i+1 < base.Rows {
			bld.Add(i, i+1, 0.5)
		}
		if i > 0 {
			bld.Add(i, i-1, -0.2)
		}
	}
	a := bld.Build()
	xe := sparse.SmoothField(a.Rows, 23)
	b := sparse.RHSForSolution(a, xe)
	return a, b, xe
}

func TestBiCGSTABSolvesNonsymmetric(t *testing.T) {
	a, b, xe := nonsymmetricSystem(t, 10)
	s := NewBiCGSTAB(a, nil, b, nil, SeqSpace{}, Options{RTol: 1e-10})
	solveAndCheck(t, s, xe, 1e-6)
}

func TestBiCGSTABSolvesSPD(t *testing.T) {
	a, b, xe := poissonSystem(t, 10)
	s := NewBiCGSTAB(a, nil, b, nil, SeqSpace{}, Options{RTol: 1e-10})
	solveAndCheck(t, s, xe, 1e-6)
}

func TestBiCGSTABWithPreconditioner(t *testing.T) {
	a, b, xe := nonsymmetricSystem(t, 12)
	m, err := precond.NewBlockILU0(a, 1)
	if err != nil {
		t.Fatal(err)
	}
	pc := NewBiCGSTAB(a, m, b, nil, SeqSpace{}, Options{RTol: 1e-10})
	resPC := solveAndCheck(t, pc, xe, 1e-6)

	plain := NewBiCGSTAB(a, nil, b, nil, SeqSpace{}, Options{RTol: 1e-10})
	resPlain := solveAndCheck(t, plain, xe, 1e-6)
	if resPC.Iterations >= resPlain.Iterations {
		t.Fatalf("ILU(0) should accelerate BiCGSTAB: %d vs %d",
			resPC.Iterations, resPlain.Iterations)
	}
}

func TestBiCGSTABFasterThanGMRESPerMatVec(t *testing.T) {
	// Not a strict theorem, but on this family BiCGSTAB (2 matvecs per
	// iteration) should converge within a comparable matvec budget to
	// GMRES(30). Guard against gross regressions.
	a, b, _ := nonsymmetricSystem(t, 10)
	bi := NewBiCGSTAB(a, nil, b, nil, SeqSpace{}, Options{RTol: 1e-8})
	resBi, _ := RunToConvergence(bi, Options{MaxIter: 10000}, nil)
	gm := NewGMRES(a, nil, b, nil, 30, SeqSpace{}, Options{RTol: 1e-8})
	resGM, _ := RunToConvergence(gm, Options{MaxIter: 10000}, nil)
	if !resBi.Converged || !resGM.Converged {
		t.Fatal("both must converge")
	}
	if 2*resBi.Iterations > 20*resGM.Iterations {
		t.Fatalf("BiCGSTAB used %d matvecs vs GMRES %d — out of family",
			2*resBi.Iterations, resGM.Iterations)
	}
}

func TestBiCGSTABRestartFromOwnIterate(t *testing.T) {
	a, b, xe := nonsymmetricSystem(t, 8)
	s := NewBiCGSTAB(a, nil, b, nil, SeqSpace{}, Options{RTol: 1e-10})
	for i := 0; i < 10; i++ {
		s.Step()
	}
	s.Restart(append([]float64(nil), s.X()...))
	solveAndCheck(t, s, xe, 1e-6)
	if s.Iteration() < 10 {
		t.Fatal("restart must not reset the iteration counter")
	}
}

func TestBiCGSTABCaptureRestoreRoundTrip(t *testing.T) {
	a, b, _ := nonsymmetricSystem(t, 8)
	s1 := NewBiCGSTAB(a, nil, b, nil, SeqSpace{}, Options{RTol: 1e-12})
	for i := 0; i < 8; i++ {
		s1.Step()
	}
	st := s1.CaptureDynamic()
	for i := 0; i < 8; i++ {
		s1.Step()
	}
	want := append([]float64(nil), s1.X()...)

	s2 := NewBiCGSTAB(a, nil, b, nil, SeqSpace{}, Options{RTol: 1e-12})
	if err := s2.RestoreDynamic(st); err != nil {
		t.Fatal(err)
	}
	if s2.Iteration() != 8 {
		t.Fatalf("restored iteration %d, want 8", s2.Iteration())
	}
	for i := 0; i < 8; i++ {
		s2.Step()
	}
	if d := vec.MaxAbsDiff(want, s2.X()); d > 1e-10*(1+vec.NormInf(want)) {
		t.Fatalf("restored trajectory diverged by %g", d)
	}
}

func TestBiCGSTABRestoreRejectsPartialState(t *testing.T) {
	a, b, _ := nonsymmetricSystem(t, 6)
	s := NewBiCGSTAB(a, nil, b, nil, SeqSpace{}, Options{})
	st := s.CaptureDynamic()
	delete(st.Vectors, "rhat")
	if err := s.RestoreDynamic(st); err == nil {
		t.Fatal("expected error for missing rhat")
	}
	st2 := s.CaptureDynamic()
	delete(st2.Scalars, "omega")
	if err := s.RestoreDynamic(st2); err == nil {
		t.Fatal("expected error for missing omega")
	}
}

func TestBiCGSTABExactGuess(t *testing.T) {
	a, b, xe := nonsymmetricSystem(t, 6)
	s := NewBiCGSTAB(a, nil, b, xe, SeqSpace{}, Options{RTol: 1e-8})
	if !s.Converged(s.ResidualNorm()) {
		t.Fatalf("exact guess should satisfy the test, rnorm %g", s.ResidualNorm())
	}
}
