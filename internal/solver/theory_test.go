package solver

import (
	"math"
	"testing"

	"repro/internal/sparse"
	"repro/internal/vec"
)

// TestJacobiRateMatchesSpectralRadius: for Tridiag(n, −1, 2, −1) the
// Jacobi iteration matrix has spectral radius cos(π/(n+1)); the
// empirical per-sweep error contraction must converge to it.
func TestJacobiRateMatchesSpectralRadius(t *testing.T) {
	n := 30
	a := sparse.Tridiag(n, -1, 2, -1)
	xe := sparse.SmoothField(n, 5)
	b := sparse.RHSForSolution(a, xe)
	s, err := NewStationary(KindJacobi, a, b, nil, 0, Options{RTol: 1e-300})
	if err != nil {
		t.Fatal(err)
	}
	want := math.Cos(math.Pi / float64(n+1))

	// Let transients die out, then measure the contraction over a
	// window (the asymptotic rate is the dominant eigenvalue).
	for i := 0; i < 200; i++ {
		s.Step()
	}
	e0 := errNorm(s.X(), xe)
	const window = 100
	for i := 0; i < window; i++ {
		s.Step()
	}
	e1 := errNorm(s.X(), xe)
	got := math.Pow(e1/e0, 1.0/window)
	if math.Abs(got-want) > 0.002 {
		t.Fatalf("empirical Jacobi rate %.5f, spectral radius %.5f", got, want)
	}
}

// TestGaussSeidelRateIsJacobiSquared: for consistently ordered
// matrices (tridiagonal), ρ(GS) = ρ(Jacobi)² — Gauss-Seidel converges
// twice as fast per sweep.
func TestGaussSeidelRateIsJacobiSquared(t *testing.T) {
	n := 30
	a := sparse.Tridiag(n, -1, 2, -1)
	xe := sparse.SmoothField(n, 6)
	b := sparse.RHSForSolution(a, xe)
	s, err := NewStationary(KindGaussSeidel, a, b, nil, 0, Options{RTol: 1e-300})
	if err != nil {
		t.Fatal(err)
	}
	rhoJ := math.Cos(math.Pi / float64(n+1))
	want := rhoJ * rhoJ

	for i := 0; i < 100; i++ {
		s.Step()
	}
	e0 := errNorm(s.X(), xe)
	const window = 60
	for i := 0; i < window; i++ {
		s.Step()
	}
	e1 := errNorm(s.X(), xe)
	got := math.Pow(e1/e0, 1.0/window)
	if math.Abs(got-want) > 0.005 {
		t.Fatalf("empirical GS rate %.5f, theory %.5f", got, want)
	}
}

// TestSOROptimalOmegaBeatsGaussSeidel: with the optimal relaxation
// ω* = 2/(1+√(1−ρ_J²)) SOR's rate ω*−1 is far better than GS's ρ_J².
func TestSOROptimalOmegaBeatsGaussSeidel(t *testing.T) {
	n := 30
	a := sparse.Tridiag(n, -1, 2, -1)
	xe := sparse.SmoothField(n, 7)
	b := sparse.RHSForSolution(a, xe)
	rhoJ := math.Cos(math.Pi / float64(n+1))
	omegaOpt := 2 / (1 + math.Sqrt(1-rhoJ*rhoJ))

	iters := func(kind StationaryKind, omega float64) int {
		s, err := NewStationary(kind, a, b, nil, omega, Options{RTol: 1e-10})
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunToConvergence(s, Options{MaxIter: 100000}, nil)
		if err != nil || !res.Converged {
			t.Fatalf("%v did not converge", kind)
		}
		return res.Iterations
	}
	gs := iters(KindGaussSeidel, 0)
	sor := iters(KindSOR, omegaOpt)
	// Theory: iteration counts scale like log(tol)/log(rate); optimal
	// SOR should cut iterations by roughly an order of magnitude here.
	if sor*4 > gs {
		t.Fatalf("optimal SOR (%d its) should be ≫ faster than GS (%d its)", sor, gs)
	}
}

// TestCGKrylovOptimality: the CG iterate minimizes the A-norm of the
// error over the Krylov subspace, so the A-norm of the error must be
// non-increasing per iteration.
func TestCGKrylovOptimality(t *testing.T) {
	a := sparse.Poisson2D(8)
	xe := sparse.SmoothField(a.Rows, 8)
	b := sparse.RHSForSolution(a, xe)
	s := NewCG(a, nil, b, nil, SeqSpace{}, Options{RTol: 1e-300})
	diff := make([]float64, a.Rows)
	ad := make([]float64, a.Rows)
	aNorm := func() float64 {
		vec.Sub(diff, s.X(), xe)
		a.MulVec(ad, diff)
		return math.Sqrt(math.Abs(vec.Dot(diff, ad)))
	}
	initial := aNorm()
	prev := initial
	for i := 0; i < 40; i++ {
		s.Step()
		cur := aNorm()
		if cur < 1e-13*initial {
			break // at machine precision rounding breaks monotonicity
		}
		if cur > prev*(1+1e-10) {
			t.Fatalf("A-norm of error grew at step %d: %g -> %g", i, prev, cur)
		}
		prev = cur
	}
}

// TestGMRESResidualMonotoneWithinCycle: the Givens residual estimate
// is non-increasing within one Krylov cycle (GMRES minimizes the
// residual over a growing subspace).
func TestGMRESResidualMonotoneWithinCycle(t *testing.T) {
	a := sparse.Poisson2D(8)
	xe := sparse.SmoothField(a.Rows, 9)
	b := sparse.RHSForSolution(a, xe)
	s := NewGMRES(a, nil, b, nil, 20, SeqSpace{}, Options{RTol: 1e-300})
	prev := s.ResidualNorm()
	for i := 0; i < 20; i++ { // within the first cycle
		cur := s.Step()
		if cur > prev*(1+1e-12) {
			t.Fatalf("GMRES residual estimate grew within a cycle at step %d: %g -> %g", i, prev, cur)
		}
		prev = cur
	}
}

func errNorm(x, xe []float64) float64 {
	d := make([]float64, len(x))
	vec.Sub(d, x, xe)
	return vec.Norm2(d)
}
