// Package quality is the numerical-telemetry layer of the lossy
// checkpointing pipeline: it audits the distortion each committed
// checkpoint actually introduced (observed vs. requested error bound,
// PSNR, achieved compression ratio) and attributes the convergence
// delay each recovery actually cost (the paper's N′, realized rather
// than modeled, plus iterations until the post-restart residual
// re-reached the residual at failure).
//
// The central type is Auditor. It is strictly observational: it never
// touches solver state, so instrumented runs produce bitwise-identical
// convergence trajectories to uninstrumented ones. Every method is
// nil-safe (a nil *Auditor is a no-op) and concurrency-safe (the async
// checkpointer invokes the save audit from its background goroutine).
//
// Distortion statistics come from the encoders' own encode-path
// accumulators (fti.StatsEncoder) whenever available, so the common
// case needs no audit decode at all; encoders without that extension
// — and every audited save when Exhaustive is set — are cross-checked
// by decoding the just-written blob into pooled scratch via
// fti.DecodeInto and comparing pointwise against the live vector.
package quality

import (
	"math"
	"sync"
	"time"

	"repro/internal/fti"
	"repro/internal/obs"
	"repro/internal/parallel"
)

// Config tunes the auditor. The zero value is usable: sample every
// DefaultSampleEvery-th checkpoint, keep DefaultMaxRecords records.
type Config struct {
	// SampleEvery audits every n-th committed save (by sequence
	// number, so sampling is deterministic and independent of
	// timing). 0 means DefaultSampleEvery; 1 audits every save.
	SampleEvery int
	// Exhaustive audits every save and additionally decode-verifies
	// every audited vector even when the encoder reports encode-path
	// stats, cross-checking the accumulators against a real decode.
	Exhaustive bool
	// MaxRecords caps retained per-vector records; older records are
	// dropped (and counted) once the cap is hit. 0 means
	// DefaultMaxRecords.
	MaxRecords int
	// BNorm is ‖b‖ of the system being solved; needed (with
	// StabilityC) for the stability verdict. 0 leaves the verdict
	// undefined.
	BNorm float64
	// StabilityC is the c in the adaptive bound eb = c·‖r‖/‖b‖ that
	// delimits the Fox et al. inline-ZFP stability region. 0 means 1.
	StabilityC float64
}

// Defaults for Config zero values.
const (
	DefaultSampleEvery = 4
	DefaultMaxRecords  = 4096
)

// Record is one audited vector of one committed checkpoint.
type Record struct {
	Seq       int    `json:"seq"`
	Iteration int    `json:"iteration"`
	Vector    string `json:"vector"`
	Elements  int    `json:"elements"`

	// Errors are in the bound's native metric: absolute, or
	// relative when Relative is set.
	MaxError       float64 `json:"max_error"`
	MeanError      float64 `json:"mean_error"`
	RMSE           float64 `json:"rmse"`
	PSNR           float64 `json:"psnr"` // 0 when Exact (would be +Inf)
	RequestedBound float64 `json:"requested_bound"`
	BoundRatio     float64 `json:"bound_ratio"` // MaxError/RequestedBound; ≤1 means the bound held
	Relative       bool    `json:"relative"`
	Lossy          bool    `json:"lossy"`
	Exact          bool    `json:"exact"` // reconstruction was bitwise error-free

	RawBytes         int     `json:"raw_bytes"`
	EncodedBytes     int     `json:"encoded_bytes"`
	CompressionRatio float64 `json:"compression_ratio"`
	PeakValue        float64 `json:"peak_value"`

	// Audit records how the stats were obtained: "encode-path",
	// "decode", or "encode-path+decode" (exhaustive cross-check).
	Audit    string `json:"audit"`
	Violated bool   `json:"violated"`

	// ResidualAtSave is the solver residual norm nearest (at or
	// before) the checkpoint's iteration, when the driver feeds
	// residuals; 0 otherwise.
	ResidualAtSave float64 `json:"residual_at_save,omitempty"`
}

// Distortion aggregates a checkpoint's audited vectors — the shape a
// RecoveryReport tags adopted state with.
type Distortion struct {
	Seq            int     `json:"seq"`
	Iteration      int     `json:"iteration"`
	Vectors        int     `json:"vectors"`
	MaxError       float64 `json:"max_error"`
	MeanError      float64 `json:"mean_error"`
	RequestedBound float64 `json:"requested_bound"`
	Relative       bool    `json:"relative"`
	Lossy          bool    `json:"lossy"`
	Violated       bool    `json:"violated"`

	sumErr float64
	elems  int
}

// residRing is a fixed window of recent (iteration, residual)
// observations for residual-at-save lookup.
const residRing = 1024

// Auditor implements fti.SaveAudit plus the post-recovery
// convergence-delay attribution. All methods are nil-safe and
// mutex-guarded.
type Auditor struct {
	mu  sync.Mutex
	cfg Config

	reg   *obs.Registry
	tr    *obs.Tracer
	clock func() float64 // span-timestamp override (sim virtual time)

	records []Record
	dropped int
	bySeq   map[int]*Distortion
	seqs    []int // insertion order, for pruning bySeq alongside records

	// Residual trajectory window.
	iters  [residRing]int
	resids [residRing]float64
	rn     int // total observations (ring head = rn % residRing)

	lastIter  int
	lastResid float64
	haveResid bool

	entries    []RecoveryEntry
	pendingIdx int // index into entries of the unresolved entry, -1 if none
	failIter   int
	failResid  float64
	haveFail   bool
}

// The Auditor plugs straight into the checkpointer's audit hook.
var _ fti.SaveAudit = (*Auditor)(nil)

// New builds an Auditor. Pass the result to Manager.InstrumentQuality
// (or sim.Config.Quality) and feed residuals via ObserveResidual.
func New(cfg Config) *Auditor {
	if cfg.SampleEvery <= 0 {
		cfg.SampleEvery = DefaultSampleEvery
	}
	if cfg.Exhaustive {
		cfg.SampleEvery = 1
	}
	if cfg.MaxRecords <= 0 {
		cfg.MaxRecords = DefaultMaxRecords
	}
	if cfg.StabilityC <= 0 {
		cfg.StabilityC = 1
	}
	return &Auditor{
		cfg:        cfg,
		bySeq:      make(map[int]*Distortion),
		pendingIdx: -1,
	}
}

// Instrument attaches a metrics registry and tracer; nil+nil
// detaches. Nil-safe.
func (a *Auditor) Instrument(reg *obs.Registry, tr *obs.Tracer) {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.reg, a.tr = reg, tr
	a.mu.Unlock()
}

// SetSpanClock overrides the timestamp source for emitted spans —
// the simulator points this at its virtual clock so real and
// simulated runs share one span schema. nil restores the tracer's
// own clock. Nil-safe.
func (a *Auditor) SetSpanClock(fn func() float64) {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.clock = fn
	a.mu.Unlock()
}

// SampleSave implements fti.SaveAudit: deterministic sequence-based
// sampling, so which checkpoints get audited never depends on timing.
func (a *Auditor) SampleSave(seq, iteration int) bool {
	if a == nil {
		return false
	}
	a.mu.Lock()
	every := a.cfg.SampleEvery
	a.mu.Unlock()
	if every <= 1 {
		return true
	}
	// seq is 1-based; always audit the first checkpoint.
	return (seq-1)%every == 0
}

// ObserveVector implements fti.SaveAudit. It runs on the saver's
// goroutine — the solver thread for sync checkpoints, the async
// pipeline's background goroutine otherwise — and must not retain
// live or blob.
func (a *Auditor) ObserveVector(seq, iteration int, name string, live []float64, blob []byte, enc fti.Encoder, st *fti.EncodeStats) {
	if a == nil {
		return
	}
	wallStart := time.Now()

	var s fti.EncodeStats
	audit := "encode-path"
	if st != nil {
		s = *st
	}
	a.mu.Lock()
	exhaustive := a.cfg.Exhaustive
	a.mu.Unlock()

	if st == nil || exhaustive {
		ds, ok := a.decodeStats(live, blob, enc)
		if ok {
			if st == nil {
				s, audit = ds, "decode"
			} else {
				audit = "encode-path+decode"
				// Cross-check: the decode must agree with (be bounded
				// by) the encode-path accumulators; keep the larger
				// observed error so a disagreement surfaces as a
				// violation rather than vanishing.
				if ds.MaxErr > s.MaxErr {
					s.MaxErr = ds.MaxErr
				}
				if ds.SumErr > s.SumErr {
					s.SumErr, s.SumSqAbs = ds.SumErr, ds.SumSqAbs
				}
			}
		} else if st == nil {
			// Encoder offers neither stats nor a decodable stream we
			// can check; nothing to record.
			return
		}
	}

	rec := Record{
		Seq:            seq,
		Iteration:      iteration,
		Vector:         name,
		Elements:       s.Elements,
		MaxError:       s.MaxErr,
		MeanError:      s.MeanErr(),
		RMSE:           s.RMSE(),
		RequestedBound: s.Bound,
		Relative:       s.Relative,
		Lossy:          s.Lossy,
		Exact:          s.MaxErr == 0,
		RawBytes:       8 * len(live),
		EncodedBytes:   len(blob),
		PeakValue:      s.MaxAbsValue,
		Audit:          audit,
	}
	if psnr := s.PSNR(); !math.IsInf(psnr, 0) && !math.IsNaN(psnr) {
		rec.PSNR = psnr
	}
	if rec.RequestedBound > 0 {
		rec.BoundRatio = rec.MaxError / rec.RequestedBound
		rec.Violated = rec.MaxError > rec.RequestedBound
	}
	if len(blob) > 0 {
		rec.CompressionRatio = float64(rec.RawBytes) / float64(len(blob))
	}
	wallDur := time.Since(wallStart).Seconds()

	a.mu.Lock()
	rec.ResidualAtSave = a.residualAtLocked(iteration)
	a.appendRecordLocked(rec)
	reg, tr := a.reg, a.tr
	ts, dur := a.spanTimeLocked(tr, wallDur)
	a.mu.Unlock()

	if reg != nil {
		reg.Counter(obs.MQualityAuditsTotal).Inc()
		reg.Histogram(obs.MQualityAuditSeconds, obs.LatencyBuckets()).Observe(wallDur)
		if rec.RequestedBound > 0 {
			reg.Gauge(obs.MQualityErrorRatio).Set(rec.BoundRatio)
		}
		if rec.CompressionRatio > 0 {
			reg.Gauge(obs.MQualityCompressionRatio).Set(rec.CompressionRatio)
		}
		if rec.Violated {
			reg.Counter(obs.MQualityViolationsTotal).Inc()
		}
	}
	if tr != nil {
		args := map[string]float64{
			"seq":       float64(seq),
			"iter":      float64(iteration),
			"max_error": rec.MaxError,
			"bound":     rec.RequestedBound,
			"ratio":     rec.CompressionRatio,
		}
		if rec.Violated {
			args["violated"] = 1
		}
		tr.Complete(obs.TrackPipeline, obs.CatQuality, obs.SpanQualityAudit, ts, dur, args)
		if rec.Violated {
			tr.InstantAt(obs.TrackPipeline, obs.CatQuality, obs.SpanQualityViolation, ts)
		}
	}
}

// spanTimeLocked returns the span timestamp and duration: virtual
// clock with zero duration when a span clock is installed, wall time
// otherwise.
func (a *Auditor) spanTimeLocked(tr *obs.Tracer, wallDur float64) (ts, dur float64) {
	if a.clock != nil {
		return a.clock(), 0
	}
	if tr != nil {
		return tr.Now() - wallDur, wallDur
	}
	return 0, wallDur
}

// decodeStats decodes blob into pooled scratch (the DecompressInto
// fast path) and accumulates pointwise errors against live, in the
// metric of the encoder's declared bound when it is fti.Bounded.
func (a *Auditor) decodeStats(live []float64, blob []byte, enc fti.Encoder) (fti.EncodeStats, bool) {
	if enc == nil || len(live) == 0 {
		return fti.EncodeStats{}, false
	}
	var bi fti.BoundInfo
	if b, ok := enc.(fti.Bounded); ok {
		bi = b.BoundInfo()
	} else {
		bi.Lossy = true // unknown contract: assume it can distort
	}
	scratch := parallel.GetFloat64s(len(live))[:len(live)]
	defer parallel.PutFloat64s(scratch)
	if err := fti.DecodeInto(enc, scratch, blob); err != nil {
		return fti.EncodeStats{}, false
	}
	st := fti.EncodeStats{
		Elements: len(live),
		Bound:    bi.Bound,
		Relative: bi.Relative,
		Lossy:    bi.Lossy,
	}
	for i, v := range live {
		av := math.Abs(v)
		if av > st.MaxAbsValue {
			st.MaxAbsValue = av
		}
		d := math.Abs(v - scratch[i])
		st.SumSqAbs += d * d
		if bi.Relative && v != 0 {
			d /= av
		}
		if d > st.MaxErr {
			st.MaxErr = d
		}
		st.SumErr += d
	}
	return st, true
}

// appendRecordLocked stores rec (bounded) and folds it into the
// per-checkpoint distortion aggregate.
func (a *Auditor) appendRecordLocked(rec Record) {
	if len(a.records) >= a.cfg.MaxRecords {
		a.records = append(a.records[:0], a.records[1:]...)
		a.dropped++
	}
	a.records = append(a.records, rec)

	d := a.bySeq[rec.Seq]
	if d == nil {
		d = &Distortion{Seq: rec.Seq, Iteration: rec.Iteration}
		a.bySeq[rec.Seq] = d
		a.seqs = append(a.seqs, rec.Seq)
		// Prune the oldest aggregates alongside the record cap.
		for len(a.seqs) > a.cfg.MaxRecords {
			delete(a.bySeq, a.seqs[0])
			a.seqs = a.seqs[1:]
		}
	}
	d.Vectors++
	if rec.MaxError > d.MaxError {
		d.MaxError = rec.MaxError
	}
	d.sumErr += rec.MeanError * float64(rec.Elements)
	d.elems += rec.Elements
	if d.elems > 0 {
		d.MeanError = d.sumErr / float64(d.elems)
	}
	if rec.Lossy {
		d.Lossy = true
	}
	if rec.RequestedBound > d.RequestedBound {
		d.RequestedBound = rec.RequestedBound
		d.Relative = rec.Relative
	}
	if rec.Violated {
		d.Violated = true
	}
}

// residualAtLocked returns the observed residual at the latest
// iteration ≤ iter, or 0 when none is known.
func (a *Auditor) residualAtLocked(iter int) float64 {
	n := a.rn
	if n > residRing {
		n = residRing
	}
	best, bestIter, found := 0.0, -1, false
	for i := 0; i < n; i++ {
		idx := (a.rn - 1 - i) % residRing
		if a.iters[idx] <= iter && a.iters[idx] > bestIter {
			best, bestIter, found = a.resids[idx], a.iters[idx], true
		}
	}
	if !found {
		return 0
	}
	return best
}

// DistortionFor returns a copy of the audited distortion aggregate
// for checkpoint sequence seq, or nil if that save was not sampled.
// Nil-safe.
func (a *Auditor) DistortionFor(seq int) *Distortion {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	d := a.bySeq[seq]
	if d == nil {
		return nil
	}
	cp := *d
	return &cp
}

// Records returns a copy of the retained per-vector audit records.
// Nil-safe.
func (a *Auditor) Records() []Record {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]Record(nil), a.records...)
}

// Dropped reports how many audit records were evicted by the
// MaxRecords cap. Nil-safe.
func (a *Auditor) Dropped() int {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.dropped
}

// Violations counts audited vectors whose observed error exceeded
// the requested bound. Nil-safe.
func (a *Auditor) Violations() int {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	n := 0
	for i := range a.records {
		if a.records[i].Violated {
			n++
		}
	}
	return n
}
