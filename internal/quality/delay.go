package quality

// Convergence-delay attribution. The paper's lossy-checkpointing
// overhead model charges each recovery N′ extra iterations — the
// iterations the restarted solver needs beyond simply replaying the
// lost segment, caused by restarting from a distorted state. This
// file measures the realized quantity: drivers feed the residual
// trajectory via ObserveResidual, the Manager marks failures and
// adoptions, and the auditor counts iterations until the post-restart
// residual re-reaches the residual at failure.

import "repro/internal/obs"

// RecoveryEntry attributes one recovery's convergence delay.
type RecoveryEntry struct {
	FailureIteration int     `json:"failure_iteration"`
	FailureResidual  float64 `json:"failure_residual"`

	Tier                  string  `json:"tier"`
	AdoptedSeq            int     `json:"adopted_seq,omitempty"`
	CheckpointIteration   int     `json:"checkpoint_iteration"`
	ResidualAfterAdoption float64 `json:"residual_after_adoption"`

	// Distortion is the audited distortion of the adopted checkpoint,
	// when that save was sampled (nil for ABFT/zero-restart tiers and
	// unsampled checkpoints).
	Distortion *Distortion `json:"distortion,omitempty"`

	// ReacquireIterations counts solver iterations after adoption
	// until the residual first re-reached FailureResidual.
	ReacquireIterations int `json:"reacquire_iterations"`
	// RealizedNPrime = ReacquireIterations − (FailureIteration −
	// CheckpointIteration): extra iterations beyond replaying the
	// lost segment. Exactly 0 for a lossless replay; negative when
	// recovery adopted a state ahead of the pre-failure trajectory.
	RealizedNPrime int `json:"realized_nprime"`
	// Resolved is false while (or if never) the residual re-reached
	// the failure-point residual.
	Resolved bool `json:"resolved"`

	steps int // residual observations since adoption (internal)
}

// ObserveResidual feeds one solver residual observation (iteration,
// residual norm). Call once per iteration, after the solver step;
// this is the only per-iteration call the quality layer needs, and it
// is read-only with respect to solver state. Nil-safe.
func (a *Auditor) ObserveResidual(iter int, rnorm float64) {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.iters[a.rn%residRing] = iter
	a.resids[a.rn%residRing] = rnorm
	a.rn++
	a.lastIter, a.lastResid, a.haveResid = iter, rnorm, true

	var resolved *RecoveryEntry
	if a.pendingIdx >= 0 {
		e := &a.entries[a.pendingIdx]
		e.steps++
		if rnorm <= e.FailureResidual {
			e.ReacquireIterations = e.steps
			e.RealizedNPrime = e.steps - (e.FailureIteration - e.CheckpointIteration)
			e.Resolved = true
			a.pendingIdx = -1
			cp := *e
			resolved = &cp
		}
	}
	reg, tr := a.reg, a.tr
	var ts float64
	if resolved != nil {
		ts, _ = a.spanTimeLocked(tr, 0)
	}
	a.mu.Unlock()

	if resolved == nil {
		return
	}
	if reg != nil {
		if resolved.RealizedNPrime > 0 {
			reg.Counter(obs.MQualityExtraIterTotal).Add(uint64(resolved.RealizedNPrime))
		}
		reg.Gauge(obs.MQualityReacquireIterations).Set(float64(resolved.ReacquireIterations))
	}
	if tr != nil {
		tr.Complete(obs.TrackRecovery, obs.CatQuality, obs.SpanQualityReacquire, ts, 0, map[string]float64{
			"nprime":    float64(resolved.RealizedNPrime),
			"reacquire": float64(resolved.ReacquireIterations),
			"iter":      float64(iter),
		})
	}
}

// ObserveFailure marks a failure: the Manager calls it at the top of
// a recovery, before any tier is attempted. Any still-unresolved
// prior attribution is finalized as such. Nil-safe.
func (a *Auditor) ObserveFailure() {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.pendingIdx = -1 // leave any prior entry unresolved
	a.failIter, a.failResid = a.lastIter, a.lastResid
	a.haveFail = a.haveResid
	a.mu.Unlock()
}

// ObserveRecovery records the adoption of recovered state: tier is
// the RecoveryTier string, seq the adopted checkpoint's sequence (0
// when no checkpoint was involved), ckptIter the iteration the
// adopted state corresponds to, and residualAfter the solver residual
// immediately after adoption. The Manager calls it after each
// successful adoption; a second call before any residual has been
// observed supersedes the first (tier demoted and retried). Nil-safe.
func (a *Auditor) ObserveRecovery(seq int, tier string, ckptIter int, residualAfter float64) {
	if a == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.haveFail {
		// No residual trajectory before the failure (e.g. failure at
		// iteration 0); attribute against the adopted state itself so
		// the entry still exists, already resolved.
		a.failIter, a.failResid = ckptIter, residualAfter
	}
	e := RecoveryEntry{
		FailureIteration:      a.failIter,
		FailureResidual:       a.failResid,
		Tier:                  tier,
		AdoptedSeq:            seq,
		CheckpointIteration:   ckptIter,
		ResidualAfterAdoption: residualAfter,
	}
	if seq > 0 {
		if d := a.bySeq[seq]; d != nil {
			cp := *d
			e.Distortion = &cp
		}
	}
	if residualAfter <= a.failResid {
		// Already at (or past) the failure-point residual: nothing to
		// reacquire. ABFT reconstruction and lossless restores of the
		// failure-point state land here with RealizedNPrime ≤ 0.
		e.Resolved = true
		e.RealizedNPrime = e.CheckpointIteration - a.failIter
	}
	if a.pendingIdx >= 0 && a.entries[a.pendingIdx].steps == 0 {
		// Demote-and-retry within one recovery: supersede in place.
		a.entries[a.pendingIdx] = e
		if e.Resolved {
			a.pendingIdx = -1
		}
		return
	}
	a.entries = append(a.entries, e)
	if !e.Resolved {
		a.pendingIdx = len(a.entries) - 1
	}
}

// RecoveryEntries returns a copy of the recovery attributions so far
// (the last may still be unresolved). Nil-safe.
func (a *Auditor) RecoveryEntries() []RecoveryEntry {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]RecoveryEntry(nil), a.entries...)
}
