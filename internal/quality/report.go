package quality

import (
	"encoding/json"
	"io"

	"repro/internal/obs"
)

// ReportSchema versions the run-report JSON layout. Consumers must
// check it before interpreting the rest of the document.
const ReportSchema = "lossyckpt.run-report/v1"

// StabilityRegion names the stability criterion the verdict is
// judged against: Fox, Diffenderfer et al.'s analysis of inline ZFP
// compression in iterative schemes, which is stable while the
// per-checkpoint relative error bound stays within c·‖r‖/‖b‖ of the
// current residual (the same region the paper's adaptive GMRES bound
// targets).
const StabilityRegion = "fox-inline-zfp"

// RunInfo identifies the run a report describes. Fields the driver
// does not know are left zero and omitted.
type RunInfo struct {
	Command       string  `json:"command,omitempty"`
	Solver        string  `json:"solver,omitempty"`
	Unknowns      int     `json:"unknowns,omitempty"`
	Scheme        string  `json:"scheme,omitempty"`
	Async         bool    `json:"async"`
	Shards        int     `json:"shards,omitempty"`
	ErrorBound    float64 `json:"error_bound,omitempty"`
	Adaptive      bool    `json:"adaptive,omitempty"`
	Interval      int     `json:"interval,omitempty"`
	Iterations    int     `json:"iterations,omitempty"`
	Converged     bool    `json:"converged"`
	FinalResidual float64 `json:"final_residual,omitempty"`
	WallSeconds   float64 `json:"wall_seconds,omitempty"`
	Injected      string  `json:"injected,omitempty"`
	// Exit is "ok" for a clean run, or a short description of the
	// error/injection path the run ended on — the report is emitted
	// on every exit path, not only success.
	Exit string `json:"exit,omitempty"`
}

// CostLine is one phase of the run's cost table (the text table
// cmd/solve prints is rendered from these).
type CostLine struct {
	Phase           string  `json:"phase"`
	ModeledSeconds  float64 `json:"modeled_seconds,omitempty"`
	MeasuredSeconds float64 `json:"measured_seconds,omitempty"`
	Count           int     `json:"count,omitempty"`
}

// StabilityVerdict classifies the run's lossy checkpoints against
// the inline-compression stability region: a checkpoint is inside
// when its requested relative error bound does not exceed
// StabilityC·(residual at save)/‖b‖.
type StabilityVerdict struct {
	Defined            bool   `json:"defined"`
	Inside             bool   `json:"inside"`
	Region             string `json:"region"`
	CheckpointsInside  int    `json:"checkpoints_inside"`
	CheckpointsOutside int    `json:"checkpoints_outside"`
	// WorstMargin is the minimum over audited lossy checkpoints of
	// (threshold − bound)/threshold; negative means some checkpoint
	// exceeded the region.
	WorstMargin float64 `json:"worst_margin"`
	StabilityC  float64 `json:"stability_c"`
	BNorm       float64 `json:"bnorm,omitempty"`
}

// RunReport is the structured, versioned artifact unifying the cost
// table, metrics snapshot, per-checkpoint quality records, recovery
// attributions, and the stability verdict. cmd/solve writes it with
// -report-out and serves it at /report on -debug-addr.
type RunReport struct {
	Schema             string           `json:"schema"`
	GeneratedAtUnix    int64            `json:"generated_at_unix,omitempty"`
	Run                RunInfo          `json:"run"`
	Cost               []CostLine       `json:"cost,omitempty"`
	Checkpoints        []Record         `json:"checkpoints,omitempty"`
	CheckpointsDropped int              `json:"checkpoints_dropped,omitempty"`
	Recoveries         []RecoveryEntry  `json:"recoveries,omitempty"`
	Stability          StabilityVerdict `json:"stability"`
	Metrics            obs.Snapshot     `json:"metrics"`
}

// Verdict computes the stability verdict over the audited records.
// Undefined (Defined=false) when BNorm is unknown or no lossy
// checkpoint was audited. Nil-safe.
func (a *Auditor) Verdict() StabilityVerdict {
	// Inside stays false until the run is actually classified: an
	// undefined verdict never claims stability.
	v := StabilityVerdict{Region: StabilityRegion}
	if a == nil {
		return v
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	v.StabilityC, v.BNorm = a.cfg.StabilityC, a.cfg.BNorm
	if v.BNorm <= 0 {
		return v
	}
	first := true
	for i := range a.records {
		rec := &a.records[i]
		if !rec.Lossy || rec.RequestedBound <= 0 || rec.ResidualAtSave <= 0 {
			continue
		}
		threshold := v.StabilityC * rec.ResidualAtSave / v.BNorm
		rel := rec.RequestedBound
		if !rec.Relative {
			if rec.PeakValue <= 0 {
				continue
			}
			rel = rec.RequestedBound / rec.PeakValue
		}
		margin := (threshold - rel) / threshold
		if rel <= threshold {
			v.CheckpointsInside++
		} else {
			v.CheckpointsOutside++
		}
		if first || margin < v.WorstMargin {
			v.WorstMargin = margin
			first = false
		}
	}
	v.Defined = v.CheckpointsInside+v.CheckpointsOutside > 0
	v.Inside = v.Defined && v.CheckpointsOutside == 0
	return v
}

// Fill populates the quality-owned sections of a report: records,
// recovery attributions, and the stability verdict. Nil-safe — a nil
// auditor fills an (empty) verdict only.
func (a *Auditor) Fill(rep *RunReport) {
	if rep == nil {
		return
	}
	rep.Schema = ReportSchema
	rep.Stability = a.Verdict()
	if a == nil {
		return
	}
	rep.Checkpoints = a.Records()
	rep.CheckpointsDropped = a.Dropped()
	rep.Recoveries = a.RecoveryEntries()
}

// WriteJSON writes the report as indented JSON.
func (r *RunReport) WriteJSON(w io.Writer) error {
	if r.Schema == "" {
		r.Schema = ReportSchema
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
