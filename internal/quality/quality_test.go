package quality

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"repro/internal/fti"
	"repro/internal/obs"
	"repro/internal/sz"
)

func metricValue(t *testing.T, reg *obs.Registry, name string) float64 {
	t.Helper()
	snap := reg.Snapshot()
	for i := range snap.Metrics {
		if snap.Metrics[i].Name == name && len(snap.Metrics[i].Labels) == 0 {
			return snap.Metrics[i].Value
		}
	}
	return 0
}

func rampState(n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = 1 + math.Sin(float64(i)/40)*0.5 + float64(i%17)*1e-3
	}
	return x
}

func TestSampleSaveDeterministic(t *testing.T) {
	a := New(Config{SampleEvery: 4})
	want := map[int]bool{1: true, 2: false, 3: false, 4: false, 5: true, 9: true}
	for seq, w := range want {
		if got := a.SampleSave(seq, seq*10); got != w {
			t.Errorf("SampleSave(seq=%d) = %v, want %v", seq, got, w)
		}
	}
	every := New(Config{SampleEvery: 1})
	exh := New(Config{SampleEvery: 7, Exhaustive: true})
	for seq := 1; seq <= 10; seq++ {
		if !every.SampleSave(seq, 0) {
			t.Errorf("SampleEvery=1 skipped seq %d", seq)
		}
		if !exh.SampleSave(seq, 0) {
			t.Errorf("Exhaustive skipped seq %d", seq)
		}
	}
}

func TestEncodePathAuditRecordsBoundedDistortion(t *testing.T) {
	const bound = 1e-3
	x := rampState(4096)
	enc := fti.SZ{Params: sz.Params{Mode: sz.PWRel, ErrorBound: bound}}
	blob, st, err := enc.EncodeStats(x)
	if err != nil {
		t.Fatal(err)
	}
	a := New(Config{SampleEvery: 1})
	a.ObserveResidual(9, 0.25)
	a.ObserveResidual(10, 0.125)
	a.ObserveVector(1, 10, "x", x, blob, enc, &st)

	recs := a.Records()
	if len(recs) != 1 {
		t.Fatalf("got %d records, want 1", len(recs))
	}
	rec := recs[0]
	if rec.Seq != 1 || rec.Iteration != 10 || rec.Vector != "x" {
		t.Fatalf("record identity wrong: %+v", rec)
	}
	if rec.Audit != "encode-path" {
		t.Fatalf("audit mode %q, want encode-path", rec.Audit)
	}
	if !rec.Lossy || !rec.Relative {
		t.Fatalf("PWRel record should be lossy+relative: %+v", rec)
	}
	if rec.MaxError <= 0 || rec.MaxError > bound {
		t.Fatalf("observed max error %g outside (0, %g]", rec.MaxError, bound)
	}
	if rec.Violated || rec.BoundRatio > 1 {
		t.Fatalf("bound was honored but record says violated (ratio %g)", rec.BoundRatio)
	}
	if rec.CompressionRatio <= 1 {
		t.Fatalf("compression ratio %g, want > 1", rec.CompressionRatio)
	}
	if rec.ResidualAtSave != 0.125 {
		t.Fatalf("residual at save %g, want the iteration-10 observation 0.125", rec.ResidualAtSave)
	}
	if rec.PSNR <= 0 {
		t.Fatalf("lossy reconstruction should report finite positive PSNR, got %g", rec.PSNR)
	}
	d := a.DistortionFor(1)
	if d == nil || d.MaxError != rec.MaxError || d.Vectors != 1 {
		t.Fatalf("distortion aggregate wrong: %+v", d)
	}
	if a.DistortionFor(2) != nil {
		t.Fatal("unsampled sequence must have no distortion aggregate")
	}
}

// corruptEncoder violates its declared contract: the stored bytes
// decode to values shifted by 10× the advertised absolute bound. It
// implements Encoder and Bounded but NOT StatsEncoder, so the auditor
// must catch the violation through the decode path.
type corruptEncoder struct{ bound float64 }

func (corruptEncoder) Name() string { return "corrupt" }

func (e corruptEncoder) Encode(x []float64) ([]byte, error) {
	y := make([]float64, len(x))
	for i, v := range x {
		y[i] = v + 10*e.bound
	}
	return fti.Raw{}.Encode(y)
}

func (corruptEncoder) Decode(data []byte) ([]float64, error) { return fti.Raw{}.Decode(data) }

func (e corruptEncoder) BoundInfo() fti.BoundInfo {
	return fti.BoundInfo{Bound: e.bound, Lossy: true}
}

// TestCraftedDistortionDetected is the detection satellite: a
// checkpoint whose decoded state carries an out-of-bound error must be
// flagged — the violation counter increments and the record names the
// violating vector and iteration.
func TestCraftedDistortionDetected(t *testing.T) {
	const bound = 1e-4
	x := rampState(512)
	enc := corruptEncoder{bound: bound}
	blob, err := enc.Encode(x)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.New()
	a := New(Config{SampleEvery: 1})
	a.Instrument(reg, obs.NewTracer())
	a.ObserveVector(3, 42, "x", x, blob, enc, nil)

	if got := a.Violations(); got != 1 {
		t.Fatalf("Violations() = %d, want 1", got)
	}
	if got := metricValue(t, reg, obs.MQualityViolationsTotal); got != 1 {
		t.Fatalf("%s = %g, want 1", obs.MQualityViolationsTotal, got)
	}
	recs := a.Records()
	if len(recs) != 1 {
		t.Fatalf("got %d records, want 1", len(recs))
	}
	rec := recs[0]
	if !rec.Violated {
		t.Fatal("out-of-bound distortion not flagged")
	}
	if rec.Vector != "x" || rec.Iteration != 42 || rec.Seq != 3 {
		t.Fatalf("violation must name the vector and iteration: %+v", rec)
	}
	if rec.Audit != "decode" {
		t.Fatalf("audit mode %q, want decode (no StatsEncoder)", rec.Audit)
	}
	if rec.BoundRatio < 9 {
		t.Fatalf("bound ratio %g, want ≈10 (10× the bound)", rec.BoundRatio)
	}
	d := a.DistortionFor(3)
	if d == nil || !d.Violated {
		t.Fatalf("distortion aggregate must carry the violation: %+v", d)
	}
}

// lyingEncoder pairs corrupt bytes with encode-path stats that claim
// zero error — only the exhaustive decode cross-check can expose it.
type lyingEncoder struct{ corruptEncoder }

func (e lyingEncoder) EncodeStats(x []float64) ([]byte, fti.EncodeStats, error) {
	blob, err := e.Encode(x)
	return blob, fti.EncodeStats{Elements: len(x), Bound: e.bound, Lossy: true}, err
}

func TestExhaustiveCrossCheckCatchesUnderreportedError(t *testing.T) {
	const bound = 1e-4
	x := rampState(256)
	enc := lyingEncoder{corruptEncoder{bound: bound}}
	blob, st, err := enc.EncodeStats(x)
	if err != nil {
		t.Fatal(err)
	}

	// Without Exhaustive the lie stands: encode-path stats are trusted.
	trusting := New(Config{SampleEvery: 1})
	trusting.ObserveVector(1, 5, "x", x, blob, enc, &st)
	if trusting.Violations() != 0 {
		t.Fatal("non-exhaustive audit should trust encode-path stats")
	}

	exhaustive := New(Config{Exhaustive: true})
	exhaustive.ObserveVector(1, 5, "x", x, blob, enc, &st)
	if exhaustive.Violations() != 1 {
		t.Fatal("exhaustive cross-check missed the under-reported error")
	}
	rec := exhaustive.Records()[0]
	if rec.Audit != "encode-path+decode" {
		t.Fatalf("audit mode %q, want encode-path+decode", rec.Audit)
	}
}

func TestRecoveryAttributionLosslessReplayIsZero(t *testing.T) {
	a := New(Config{})
	for it := 1; it <= 10; it++ {
		a.ObserveResidual(it, 1/float64(it))
	}
	a.ObserveFailure() // failure at iteration 10, residual 0.1
	a.ObserveRecovery(2, "checkpoint", 5, 1.0/5)
	// Replay iterations 6..10 exactly: the residual re-reaches the
	// failure value after precisely the rolled-back segment.
	for it := 6; it <= 10; it++ {
		a.ObserveResidual(it, 1/float64(it))
	}
	es := a.RecoveryEntries()
	if len(es) != 1 {
		t.Fatalf("got %d entries, want 1", len(es))
	}
	e := es[0]
	if !e.Resolved || e.ReacquireIterations != 5 || e.RealizedNPrime != 0 {
		t.Fatalf("lossless replay must attribute N'=0 over 5 iterations: %+v", e)
	}
	if e.FailureIteration != 10 || e.FailureResidual != 0.1 || e.AdoptedSeq != 2 {
		t.Fatalf("failure context wrong: %+v", e)
	}
}

func TestRecoveryAttributionLossyDelay(t *testing.T) {
	reg := obs.New()
	a := New(Config{})
	a.Instrument(reg, nil)
	for it := 1; it <= 10; it++ {
		a.ObserveResidual(it, 1/float64(it))
	}
	a.ObserveFailure()
	a.ObserveRecovery(1, "checkpoint", 5, 0.9)
	// The distorted restart needs 7 iterations to re-reach the
	// iteration-10 residual: 2 beyond the 5-iteration replay.
	resids := []float64{0.8, 0.5, 0.3, 0.2, 0.15, 0.12, 0.1}
	for i, r := range resids {
		a.ObserveResidual(6+i, r)
	}
	e := a.RecoveryEntries()[0]
	if !e.Resolved || e.ReacquireIterations != 7 || e.RealizedNPrime != 2 {
		t.Fatalf("want N'=2 over 7 iterations, got %+v", e)
	}
	if got := metricValue(t, reg, obs.MQualityExtraIterTotal); got != 2 {
		t.Fatalf("%s = %g, want 2", obs.MQualityExtraIterTotal, got)
	}
	if got := metricValue(t, reg, obs.MQualityReacquireIterations); got != 7 {
		t.Fatalf("%s = %g, want 7", obs.MQualityReacquireIterations, got)
	}
}

func TestRecoveryAttributionImmediateResolve(t *testing.T) {
	a := New(Config{})
	a.ObserveResidual(50, 0.25)
	a.ObserveFailure()
	// ABFT reconstructs the failure-point state exactly: the residual
	// after adoption already matches, nothing to reacquire.
	a.ObserveRecovery(0, "abft", 50, 0.25)
	e := a.RecoveryEntries()[0]
	if !e.Resolved || e.RealizedNPrime != 0 || e.ReacquireIterations != 0 {
		t.Fatalf("exact reconstruction must resolve immediately with N'=0: %+v", e)
	}
	if e.Distortion != nil {
		t.Fatal("no checkpoint adopted, distortion must be nil")
	}
}

func TestRecoveryDemoteRetrySupersedes(t *testing.T) {
	a := New(Config{})
	a.ObserveResidual(20, 0.5)
	a.ObserveFailure()
	// First adoption is rejected before any step runs; the chain
	// demotes to an older checkpoint. One attribution entry results.
	a.ObserveRecovery(4, "checkpoint", 18, 2.0)
	a.ObserveRecovery(3, "previous-checkpoint", 12, 3.0)
	es := a.RecoveryEntries()
	if len(es) != 1 {
		t.Fatalf("demote-retry must supersede in place, got %d entries", len(es))
	}
	if es[0].Tier != "previous-checkpoint" || es[0].AdoptedSeq != 3 {
		t.Fatalf("surviving entry is not the retried tier: %+v", es[0])
	}
}

func TestVerdictClassifiesStabilityRegion(t *testing.T) {
	const bound = 1e-4
	x := rampState(1024)
	enc := fti.SZ{Params: sz.Params{Mode: sz.PWRel, ErrorBound: bound}}
	save := func(a *Auditor, seq, iter int, resid float64) {
		t.Helper()
		a.ObserveResidual(iter, resid)
		blob, st, err := enc.EncodeStats(x)
		if err != nil {
			t.Fatal(err)
		}
		a.ObserveVector(seq, iter, "x", x, blob, enc, &st)
	}

	// ‖b‖ = 1, c = 1: threshold at save is simply the residual there.
	inside := New(Config{SampleEvery: 1, BNorm: 1})
	save(inside, 1, 10, 0.5) // bound 1e-4 ≤ 0.5: inside
	v := inside.Verdict()
	if !v.Defined || !v.Inside || v.CheckpointsInside != 1 || v.CheckpointsOutside != 0 {
		t.Fatalf("verdict should be inside: %+v", v)
	}
	if v.WorstMargin <= 0 || v.Region != StabilityRegion {
		t.Fatalf("inside verdict must carry positive margin and region: %+v", v)
	}

	mixed := New(Config{SampleEvery: 1, BNorm: 1})
	save(mixed, 1, 10, 0.5)  // inside
	save(mixed, 2, 90, 1e-6) // threshold 1e-6 < bound 1e-4: outside
	v = mixed.Verdict()
	if !v.Defined || v.Inside || v.CheckpointsOutside != 1 || v.CheckpointsInside != 1 {
		t.Fatalf("verdict should be outside with a 1/1 split: %+v", v)
	}
	if v.WorstMargin >= 0 {
		t.Fatalf("outside verdict must have negative worst margin, got %g", v.WorstMargin)
	}

	// No ‖b‖ → undefined, and undefined never claims Inside.
	unknown := New(Config{SampleEvery: 1})
	save(unknown, 1, 10, 0.5)
	if v = unknown.Verdict(); v.Defined || v.Inside {
		t.Fatalf("verdict without BNorm must be undefined: %+v", v)
	}
}

func TestRecordCapEvictsAndCounts(t *testing.T) {
	x := rampState(64)
	enc := fti.Raw{}
	blob, st, err := enc.EncodeStats(x)
	if err != nil {
		t.Fatal(err)
	}
	a := New(Config{SampleEvery: 1, MaxRecords: 2})
	for seq := 1; seq <= 3; seq++ {
		a.ObserveVector(seq, seq*10, "x", x, blob, enc, &st)
	}
	recs := a.Records()
	if len(recs) != 2 || a.Dropped() != 1 {
		t.Fatalf("cap=2 after 3 audits: %d records, %d dropped", len(recs), a.Dropped())
	}
	if recs[0].Seq != 2 || recs[1].Seq != 3 {
		t.Fatalf("oldest record must be evicted first: %+v", recs)
	}
	if !recs[0].Exact || recs[0].Lossy {
		t.Fatalf("raw encoding must audit as exact and non-lossy: %+v", recs[0])
	}
}

func TestReportFillAndWriteJSON(t *testing.T) {
	const bound = 1e-3
	x := rampState(512)
	enc := fti.SZ{Params: sz.Params{Mode: sz.PWRel, ErrorBound: bound}}
	blob, st, err := enc.EncodeStats(x)
	if err != nil {
		t.Fatal(err)
	}
	a := New(Config{SampleEvery: 1, BNorm: 1})
	a.ObserveResidual(10, 0.5)
	a.ObserveVector(1, 10, "x", x, blob, enc, &st)
	a.ObserveFailure()
	a.ObserveRecovery(1, "checkpoint", 10, 0.5)

	rep := &RunReport{Run: RunInfo{Solver: "cg", Scheme: "lossy", Exit: "ok"}}
	a.Fill(rep)
	if rep.Schema != ReportSchema {
		t.Fatalf("schema %q, want %q", rep.Schema, ReportSchema)
	}
	if len(rep.Checkpoints) != 1 || len(rep.Recoveries) != 1 || !rep.Stability.Defined {
		t.Fatalf("report sections incomplete: %+v", rep)
	}
	if rep.Recoveries[0].Distortion == nil {
		t.Fatal("adopted-checkpoint recovery must carry its distortion")
	}

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back map[string]any
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if back["schema"] != ReportSchema {
		t.Fatalf("round-trip schema %v", back["schema"])
	}
	for _, key := range []string{"run", "checkpoints", "recoveries", "stability"} {
		if _, ok := back[key]; !ok {
			t.Fatalf("report JSON missing %q", key)
		}
	}
}

func TestNilAuditorIsSafe(t *testing.T) {
	var a *Auditor
	a.Instrument(obs.New(), obs.NewTracer())
	a.SetSpanClock(func() float64 { return 0 })
	if a.SampleSave(1, 1) {
		t.Fatal("nil auditor must not request audits")
	}
	a.ObserveVector(1, 1, "x", []float64{1}, []byte{0}, fti.Raw{}, nil)
	a.ObserveResidual(1, 1)
	a.ObserveFailure()
	a.ObserveRecovery(1, "checkpoint", 1, 1)
	if a.Records() != nil || a.RecoveryEntries() != nil || a.DistortionFor(1) != nil {
		t.Fatal("nil auditor must report empty state")
	}
	if a.Dropped() != 0 || a.Violations() != 0 {
		t.Fatal("nil auditor counters must be zero")
	}
	v := a.Verdict()
	if v.Defined {
		t.Fatal("nil auditor verdict must be undefined")
	}
	rep := &RunReport{}
	a.Fill(rep)
	if rep.Schema != ReportSchema {
		t.Fatal("nil auditor Fill must still stamp the schema")
	}
}
