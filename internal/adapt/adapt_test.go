package adapt

import (
	"math"
	"testing"

	"repro/internal/model"
)

func mustNew(t *testing.T, cfg Config) *Controller {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestEWMA: initialization, smoothing, convergence to a constant.
func TestEWMA(t *testing.T) {
	e := NewEWMA(0.5)
	if e.Ok() || e.Value() != 0 {
		t.Fatal("fresh EWMA should be empty")
	}
	e.Observe(10)
	if !e.Ok() || e.Value() != 10 {
		t.Fatalf("first sample must initialize: %v", e.Value())
	}
	e.Observe(20)
	if e.Value() != 15 {
		t.Fatalf("0.5-smoothed 10→20 should be 15, got %v", e.Value())
	}
	for i := 0; i < 60; i++ {
		e.Observe(42)
	}
	if math.Abs(e.Value()-42) > 1e-6 {
		t.Fatalf("EWMA did not converge to the constant: %v", e.Value())
	}
}

// TestConfigValidation: bad configs are rejected.
func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{},                              // no prior MTTI
		{PriorMTTI: -1},                 // negative prior
		{PriorMTTI: 100, Alpha: 1.5},    // alpha out of range
		{PriorMTTI: 100, Alpha: -0.1},   // alpha negative
		{PriorMTTI: 100, PlanEvery: -1}, // negative epoch
		{PriorMTTI: 100, MinInterval: 10, MaxInterval: 5}, // inverted clamp
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: config %+v accepted", i, cfg)
		}
	}
	if _, err := New(Config{PriorMTTI: 3600}); err != nil {
		t.Errorf("minimal valid config rejected: %v", err)
	}
}

// TestInitialIntervalBeforeObservations: with no cost data the
// controller keeps its bootstrap interval.
func TestInitialIntervalBeforeObservations(t *testing.T) {
	c := mustNew(t, Config{PriorMTTI: 2000})
	if got, want := c.Interval(0), 100.0; got != want { // PriorMTTI/20
		t.Fatalf("bootstrap interval %g, want %g", got, want)
	}
	c2 := mustNew(t, Config{PriorMTTI: 2000, InitialInterval: 37})
	if got := c2.Interval(0); got != 37 {
		t.Fatalf("explicit initial interval %g, want 37", got)
	}
}

// TestSyncPlanMatchesPolicyOnKnownEstimates: after observations settle
// the planned interval equals the policy formula evaluated at the
// estimated MTTI and cost — the controller rediscovers the offline
// plan without being told C or λ.
func TestSyncPlanMatchesPolicyOnKnownEstimates(t *testing.T) {
	for _, pol := range []Policy{PolicyYoung, PolicyDaly} {
		c := mustNew(t, Config{PriorMTTI: 500, Policy: pol})
		const cost = 8.0
		now := 0.0
		for i := 0; i < 40; i++ {
			now += 50
			c.ObserveCheckpoint(CheckpointObs{When: now, SyncSeconds: cost})
		}
		got := c.Interval(now)
		mtti := 1 / c.Estimates(now).Lambda
		var want float64
		if pol == PolicyYoung {
			want = model.YoungInterval(mtti, cost)
		} else {
			want = model.DalyInterval(mtti, cost)
		}
		if math.Abs(got-want) > 1e-9*want {
			t.Errorf("%v: interval %g, want policy value %g", pol, got, want)
		}
	}
}

// TestFailureObservationsShortenInterval: more failures ⇒ higher λ̂ ⇒
// shorter interval.
func TestFailureObservationsShortenInterval(t *testing.T) {
	c := mustNew(t, Config{PriorMTTI: 10000})
	c.ObserveCheckpoint(CheckpointObs{When: 10, SyncSeconds: 5})
	before := c.Interval(10)
	// 100 failures 100 s apart: the posterior MTTI — (1·10000 + 10000
	// observed seconds) over (1 + 100) events — collapses toward 100 s
	// despite the 100× too-optimistic prior.
	now := 10.0
	for i := 0; i < 100; i++ {
		now += 100
		c.ObserveFailure(now)
	}
	after := c.Interval(now)
	if after >= before {
		t.Fatalf("interval did not shrink after failures: %g → %g", before, after)
	}
	est := c.Estimates(now)
	if est.Failures != 100 {
		t.Fatalf("failures %d, want 100", est.Failures)
	}
	if est.MTTI > 250 || est.MTTI < 150 {
		t.Fatalf("posterior MTTI %g, want ≈198 (prior washout)", est.MTTI)
	}
}

// TestCostDriftMovesInterval: when the observed checkpoint cost drifts
// down (compression ratio improving mid-run), the planned interval
// shrinks toward the new optimum — the behavior a fixed interval
// cannot have.
func TestCostDriftMovesInterval(t *testing.T) {
	c := mustNew(t, Config{PriorMTTI: 1000})
	now := 0.0
	for i := 0; i < 30; i++ {
		now += 30
		c.ObserveCheckpoint(CheckpointObs{When: now, SyncSeconds: 12, RawBytes: 8 << 20, Bytes: 4 << 20})
	}
	high := c.Interval(now)
	r1 := c.Estimates(now).Ratio
	for i := 0; i < 30; i++ {
		now += 30
		c.ObserveCheckpoint(CheckpointObs{When: now, SyncSeconds: 2, RawBytes: 8 << 20, Bytes: 1 << 20})
	}
	low := c.Interval(now)
	r2 := c.Estimates(now).Ratio
	if low >= high {
		t.Fatalf("interval did not track the cost drift: %g → %g", high, low)
	}
	// Young-style √C scaling: a 6× cost drop should roughly halve the
	// interval (the censored MTTI keeps growing between the two plans,
	// so the ratio sits a bit above the pure √(2/12) ≈ 0.41).
	if got := low / high; got < 0.3 || got > 0.65 {
		t.Fatalf("interval ratio %g, want ≈0.4–0.6 for a 6× cost drop", got)
	}
	if r2 <= r1 {
		t.Fatalf("compression-ratio estimate did not drift: %g → %g", r1, r2)
	}
}

// TestAsyncFixedPointDegeneratesToCaptureStall: when the policy
// interval for the capture stall alone exceeds the background time,
// the fixed point is policy(M̂, t̂cap) — the overlapped cost, not the
// raw one.
func TestAsyncFixedPointDegeneratesToCaptureStall(t *testing.T) {
	c := mustNew(t, Config{PriorMTTI: 10000, Async: true, Policy: PolicyYoung})
	now := 0.0
	for i := 0; i < 20; i++ {
		now += 100
		c.ObserveCheckpoint(CheckpointObs{When: now, CaptureSeconds: 0.5, BackgroundSeconds: 10})
	}
	got := c.Interval(now)
	mtti := 1 / c.Estimates(now).Lambda
	want := model.YoungInterval(mtti, 0.5)
	if want <= 10 {
		t.Fatalf("test setup broken: capture-only interval %g should exceed tbg 10", want)
	}
	if math.Abs(got-want) > 1e-6*want {
		t.Fatalf("async interval %g, want capture-only plan %g", got, want)
	}
	// Overlap pays: the async stall (0.5 s) is far below the sync cost
	// (10.5 s), so the async plan checkpoints much more often — Young's
	// interval scales with √C — at a lower modeled overhead.
	sync := mustNew(t, Config{PriorMTTI: 10000, Policy: PolicyYoung})
	for i := 0; i < 20; i++ {
		sync.ObserveCheckpoint(CheckpointObs{When: float64(i) * 100, SyncSeconds: 10.5})
	}
	s := sync.Interval(now)
	if got >= s {
		t.Fatalf("async plan %g should be shorter than the sync plan %g (cheaper stall)", got, s)
	}
	lam := c.Estimates(now).Lambda
	if oa, os := model.ExpectedOverheadRatio(lam, 0.5), model.ExpectedOverheadRatio(lam, 10.5); oa >= os {
		t.Fatalf("async overhead %g not below sync %g", oa, os)
	}
}

// TestAsyncFixedPointBackpressureRegime: with a background write far
// longer than the capture-only plan, the fixed point lands below t̂bg
// and satisfies τ = policy(M̂, stall(τ)) to solver precision.
func TestAsyncFixedPointBackpressureRegime(t *testing.T) {
	c := mustNew(t, Config{PriorMTTI: 10000, Async: true, Policy: PolicyYoung})
	now := 0.0
	const tcap, tbg = 0.001, 100.0
	for i := 0; i < 30; i++ {
		now += 200
		c.ObserveCheckpoint(CheckpointObs{When: now, CaptureSeconds: tcap, BackgroundSeconds: tbg})
	}
	tau := c.Interval(now)
	mtti := 1 / c.Estimates(now).Lambda
	if tau >= tbg {
		t.Fatalf("fixed point %g should sit below tbg %g in the backpressure regime", tau, tbg)
	}
	stall := model.AsyncEffectiveStall(tcap, tbg, tau)
	self := model.YoungInterval(mtti, stall)
	if math.Abs(self-tau) > 1e-6*tau {
		t.Fatalf("not a fixed point: τ=%g but policy(M, stall(τ))=%g", tau, self)
	}
}

// TestClampAndPlanEvery: clamps bound every plan; PlanEvery batches
// re-planning to the epoch cadence.
func TestClampAndPlanEvery(t *testing.T) {
	c := mustNew(t, Config{PriorMTTI: 1000, MinInterval: 40, MaxInterval: 60, PlanEvery: 100})
	c.ObserveCheckpoint(CheckpointObs{When: 1, SyncSeconds: 1e-9}) // →tiny τ, clamped up
	if got := c.Interval(1); got != 40 {
		t.Fatalf("min clamp: %g, want 40", got)
	}
	c.ObserveCheckpoint(CheckpointObs{When: 2, SyncSeconds: 1e6}) // →huge τ, clamped down
	// Inside the planning epoch: the old plan stands despite fresh data.
	if got := c.Interval(50); got != 40 {
		t.Fatalf("re-planned inside the epoch: %g", got)
	}
	if got := c.Interval(101); got != 60 {
		t.Fatalf("max clamp after epoch: %g, want 60", got)
	}
	if n := len(c.Trajectory()); n != 2 {
		t.Fatalf("trajectory has %d plans, want 2 (one per epoch)", n)
	}
}

// TestReplanWithoutCostKeepsPlan: failures alone (no checkpoint cost
// yet) re-plan but cannot move the interval off the bootstrap.
func TestReplanWithoutCostKeepsPlan(t *testing.T) {
	c := mustNew(t, Config{PriorMTTI: 2000})
	c.ObserveFailure(10)
	if got := c.Interval(10); got != 100 {
		t.Fatalf("interval moved without any cost estimate: %g", got)
	}
	if len(c.Trajectory()) != 1 {
		t.Fatalf("expected one recorded plan, got %d", len(c.Trajectory()))
	}
}

// TestTrajectoryDeterminism: identical observation sequences produce
// identical trajectories, bit for bit.
func TestTrajectoryDeterminism(t *testing.T) {
	run := func() []Plan {
		c := mustNew(t, Config{PriorMTTI: 777, Async: true})
		now := 0.0
		for i := 0; i < 25; i++ {
			now += 13.5
			c.ObserveCheckpoint(CheckpointObs{
				When: now, CaptureSeconds: 0.25, BackgroundSeconds: 3 + float64(i%5),
				RawBytes: 1 << 20, Bytes: 1 << 17,
			})
			if i%7 == 3 {
				c.ObserveFailure(now + 1)
				c.ObserveRecovery(3)
			}
			c.Interval(now + 2)
		}
		return c.Trajectory()
	}
	a, b := run(), run()
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("trajectory lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("plan %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestEstimatesSnapshot: recovery observations and ratio feed the
// Estimates view.
func TestEstimatesSnapshot(t *testing.T) {
	c := mustNew(t, Config{PriorMTTI: 100})
	c.ObserveRecovery(7)
	c.ObserveRecovery(9)
	est := c.Estimates(6)
	if est.Recovery <= 7 || est.Recovery >= 9 {
		t.Fatalf("recovery EWMA %g, want between the samples", est.Recovery)
	}
	if est.MTTI <= 0 || est.Lambda <= 0 {
		t.Fatalf("degenerate rate estimates: %+v", est)
	}
}

// TestObserveRecoveryKindSeparatesTiers pins the tier separation: ABFT
// recoveries feed their own EWMA and counter, checkpoint restarts feed
// the I/O restart-cost estimate the Young/Daly plan consumes, and
// neither moves the failure-rate posterior.
func TestObserveRecoveryKindSeparatesTiers(t *testing.T) {
	c, err := New(Config{PriorMTTI: 1000})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	c.ObserveFailure(100)
	lambdaBefore := c.Estimates(200).Lambda

	c.ObserveRecoveryKind(RecoveryObs{Seconds: 8, RestartIO: true})
	c.ObserveRecoveryKind(RecoveryObs{Seconds: 0.25, RestartIO: false})
	c.ObserveRecoveryKind(RecoveryObs{Seconds: 0.75, RestartIO: false})

	est := c.Estimates(200)
	if est.Lambda != lambdaBefore {
		t.Fatalf("recovery observations moved lambda: %.6g → %.6g", lambdaBefore, est.Lambda)
	}
	if est.Recovery != 8 {
		t.Fatalf("I/O restart EWMA %.3g, want 8 (ABFT costs must not dilute it)", est.Recovery)
	}
	if est.ABFTRecovery <= 0 || est.ABFTRecovery >= 8 {
		t.Fatalf("ABFT recovery EWMA %.3g, want within the observed 0.25–0.75 band", est.ABFTRecovery)
	}
	if est.IORestarts != 1 || est.ABFTRecoveries != 2 {
		t.Fatalf("recovery kind counts io=%d abft=%d, want 1/2", est.IORestarts, est.ABFTRecoveries)
	}

	// The legacy entry point is a checkpoint restart by definition.
	c.ObserveRecovery(8)
	if got := c.Estimates(200); got.IORestarts != 2 || got.ABFTRecoveries != 2 {
		t.Fatalf("legacy ObserveRecovery miscounted: io=%d abft=%d, want 2/2", got.IORestarts, got.ABFTRecoveries)
	}

	// Negative durations are ignored entirely.
	c.ObserveRecoveryKind(RecoveryObs{Seconds: -1, RestartIO: false})
	if got := c.Estimates(200); got.ABFTRecoveries != 2 {
		t.Fatal("negative-duration recovery observation was counted")
	}
}
