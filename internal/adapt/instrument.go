package adapt

import "repro/internal/obs"

// ctrlMetrics exports the controller's estimator state as gauges,
// refreshed at every re-plan — the decision points, so the exported
// values are exactly the beliefs each plan was made from. A nil
// bundle (the default) is a no-op.
type ctrlMetrics struct {
	replans    *obs.Counter
	interval   *obs.Gauge
	mtti       *obs.Gauge
	checkpoint *obs.Gauge
	recovery   *obs.Gauge
	ratio      *obs.Gauge
}

// Instrument attaches metric sinks to the controller's re-planning
// decisions. Passing nil detaches. Instrumentation never triggers a
// re-plan of its own — it only observes the ones Interval schedules —
// so an instrumented controller plans identically.
func (c *Controller) Instrument(reg *obs.Registry) {
	if reg == nil {
		c.met = nil
		return
	}
	c.met = &ctrlMetrics{
		replans:    reg.Counter(obs.MAdaptReplansTotal),
		interval:   reg.Gauge(obs.MAdaptIntervalSeconds),
		mtti:       reg.Gauge(obs.MAdaptMTTISeconds),
		checkpoint: reg.Gauge(obs.MAdaptCheckpointSeconds),
		recovery:   reg.Gauge(obs.MAdaptRecoverySeconds),
		ratio:      reg.Gauge(obs.MAdaptCompressionRatio),
	}
}

func (m *ctrlMetrics) observePlan(p Plan, recoverySeconds float64) {
	if m == nil {
		return
	}
	m.replans.Inc()
	m.interval.Set(p.Interval)
	if p.Lambda > 0 {
		m.mtti.Set(1 / p.Lambda)
	}
	m.checkpoint.Set(p.Cost)
	m.recovery.Set(recoverySeconds)
	if p.Ratio > 0 {
		m.ratio.Set(p.Ratio)
	}
}
