// Package adapt is the online checkpoint-interval controller: it
// closes the loop between the paper's analytic model and a running
// solve.
//
// The paper computes the optimal checkpoint interval offline from
// known per-checkpoint cost C, restart cost R, and failure rate λ
// (Young's Eq. 1, the Eq. 5/8 overhead model, Table 3). With lossy
// compression none of those are constants at runtime: the compression
// ratio tracks solver convergence (smoother iterates compress better,
// so C drifts downward), the asynchronous pipeline's solver-visible
// stall depends on storage contention, and λ is never known — only
// observed failures are. A fixed interval therefore leaves the modeled
// gains on the table. This package estimates all three online and
// re-plans the interval every planning epoch.
//
// # Estimators
//
// Per-checkpoint costs come from the instrumented checkpoint path
// (fti.Info's CaptureSeconds/EncodeSeconds/WriteSeconds and byte
// counts, or the simulator's modeled costs), smoothed by exponentially
// weighted moving averages:
//
//	est ← α·x + (1−α)·est
//
// with one EWMA each for the synchronous checkpoint cost, the
// asynchronous capture stall, the asynchronous background encode+write
// time, the recovery cost, and the achieved compression ratio. The
// failure rate is the censored-exponential posterior mean of
// failure.RateEstimator: a Gamma prior worth `weight` pseudo-failures
// at the configured prior MTTI, plus every observed inter-failure gap,
// plus the right-censored still-running gap — so the controller plans
// sensibly before the first failure and sharpens as failures arrive.
//
// # Policy
//
// Each re-plan solves for the interval τ from the estimated MTTI M̂ and
// per-checkpoint cost:
//
//   - synchronous runs: τ = policy(M̂, Ĉ) where policy is Young's
//     √(2·Ĉ·M̂) (model.YoungInterval) or Daly's higher-order formula
//     (model.DalyInterval, the default — it stays accurate when Ĉ
//     approaches M̂).
//
//   - asynchronous runs: the solver-visible cost per checkpoint is
//     itself a function of the interval — the background encode+write
//     overlaps iterations, so the stall is
//     model.AsyncEffectiveStall(t̂cap, t̂bg, τ) = t̂cap + max(0, t̂bg−τ)
//     — and the optimal interval is the fixed point
//
//     τ* = policy(M̂, AsyncEffectiveStall(t̂cap, t̂bg, τ*)).
//
//     The controller solves it by bisection: the right-hand side is
//     continuous and non-increasing in τ, so h(τ) = f(τ) − τ has
//     exactly one crossing, bracketed by [0, f(0)]. (Fixed-point
//     iteration — even damped — oscillates here: near the crossing
//     |f′| = M̂/τ* can far exceed 1.) In the common regime τ* ≥ t̂bg
//     this degenerates to policy(M̂, t̂cap), exactly the "interval
//     reflects the overlapped cost, not the raw one" planning the
//     ROADMAP asks for.
//
// The result is clamped to [MinInterval, MaxInterval] when configured,
// and the controller keeps its previous plan when the estimators have
// nothing new to say (no cost observed yet, or inside the current
// planning epoch).
//
// # Determinism
//
// The controller is a pure state machine: every method takes the
// current time (virtual or wall seconds) as an argument and nothing
// reads a real clock, so a simulated run driving it with virtual time
// is bitwise reproducible — same seed and failure trace, same interval
// trajectory (asserted under -race by the sim tests).
package adapt

import (
	"fmt"
	"math"

	"repro/internal/failure"
	"repro/internal/model"
)

// Policy selects the optimal-interval formula a re-plan solves.
type Policy int

const (
	// PolicyDaly plans with Daly's higher-order formula (the default):
	// accurate even when the checkpoint cost is comparable to the MTTI.
	PolicyDaly Policy = iota
	// PolicyYoung plans with Young's first-order √(2·C·M) (Eq. 1).
	PolicyYoung
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case PolicyDaly:
		return "daly"
	case PolicyYoung:
		return "young"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// Config assembles a Controller.
type Config struct {
	// PriorMTTI is the prior mean time to interruption in seconds —
	// what the controller assumes before the first observed failure.
	// Required (> 0).
	PriorMTTI float64
	// PriorWeight is how many pseudo-failures of evidence the prior is
	// worth (default 1). Larger values make the controller slower to
	// move off the prior.
	PriorWeight float64
	// Async plans against the asynchronous pipeline's solver-visible
	// stall (the AsyncEffectiveStall fixed point) instead of the full
	// synchronous checkpoint cost. Feed CaptureSeconds and
	// BackgroundSeconds observations in this mode, SyncSeconds
	// otherwise.
	Async bool
	// Policy picks the optimal-interval formula (default PolicyDaly).
	Policy Policy
	// PlanEvery is the planning epoch in seconds: a re-plan happens at
	// most once per epoch, at the first Interval call with fresh
	// observations after the epoch elapses. Zero re-plans on every
	// fresh observation.
	PlanEvery float64
	// InitialInterval seeds the plan before any cost observation
	// exists. Zero defaults to PriorMTTI/20 — short enough to take the
	// first (cost-measuring) checkpoint early, long enough not to storm
	// storage before the estimators have data.
	InitialInterval float64
	// MinInterval / MaxInterval clamp every plan (0 = unclamped).
	MinInterval float64
	MaxInterval float64
	// Alpha is the EWMA smoothing weight of the cost estimators in
	// (0, 1]; the default 0.3 follows ~3–4 checkpoints of history.
	Alpha float64
}

// EWMA is an exponentially weighted moving average: Observe folds a
// sample in with weight α, Value reports the current estimate, and Ok
// reports whether any sample arrived yet.
type EWMA struct {
	alpha float64
	value float64
	ok    bool
}

// NewEWMA returns an estimator with smoothing weight alpha in (0, 1].
func NewEWMA(alpha float64) EWMA { return EWMA{alpha: alpha} }

// Observe folds in one sample. The first sample initializes the
// estimate directly.
func (e *EWMA) Observe(x float64) {
	if !e.ok {
		e.value, e.ok = x, true
		return
	}
	e.value = e.alpha*x + (1-e.alpha)*e.value
}

// Value returns the current estimate (0 before any observation).
func (e *EWMA) Value() float64 { return e.value }

// Ok reports whether at least one sample was observed.
func (e *EWMA) Ok() bool { return e.ok }

// CheckpointObs is one completed checkpoint's measured cost, fed to
// ObserveCheckpoint. Times are in seconds of the caller's clock
// (virtual or wall); zero-valued fields are simply not observed.
type CheckpointObs struct {
	// When the checkpoint completed (capture completed, in async mode).
	When float64
	// SyncSeconds is the full solver-visible cost of a synchronous
	// checkpoint (encode + write on the critical path).
	SyncSeconds float64
	// CaptureSeconds is the asynchronous capture stall; the rest of the
	// pipeline ran in the background for BackgroundSeconds.
	CaptureSeconds    float64
	BackgroundSeconds float64
	// RawBytes and Bytes are the checkpoint's bytes in/out; their ratio
	// feeds the compression-ratio estimator.
	RawBytes int
	Bytes    int
}

// Plan is one re-planning decision: the interval the controller chose
// at time When and the estimates it chose it from.
type Plan struct {
	When     float64 // when the plan was made
	Interval float64 // planned checkpoint interval, seconds
	Lambda   float64 // estimated failure rate at When
	Cost     float64 // estimated solver-visible cost per checkpoint at the planned interval
	Ratio    float64 // estimated compression ratio (0 before any byte observation)
}

// Estimates is a snapshot of the controller's current beliefs.
type Estimates struct {
	Lambda     float64 // failures per second (posterior mean, censored)
	MTTI       float64 // 1/Lambda
	SyncCost   float64 // EWMA of synchronous checkpoint seconds
	Capture    float64 // EWMA of async capture stall seconds
	Background float64 // EWMA of async background encode+write seconds
	Recovery   float64 // EWMA of checkpoint-restart (I/O) recovery seconds
	Ratio      float64 // EWMA of achieved compression ratio
	Failures   int     // real failures observed
	// ABFTRecovery is the EWMA of checkpoint-free (ABFT) recovery
	// seconds — priced in iterations, not PFS reads, so it is tracked
	// apart from the I/O restart cost. IORestarts / ABFTRecoveries
	// split the observed recoveries by tier; neither count enters the
	// failure-rate posterior.
	ABFTRecovery   float64
	IORestarts     int
	ABFTRecoveries int
	// BoundRatio is the EWMA of the audited observed/requested error
	// ratio from the quality telemetry feed (0 before any audit;
	// ≤ 1 means the compressor honored its bound). QualityObs counts
	// the audits folded in. Informational for now — no planning policy
	// consumes them yet.
	BoundRatio float64
	QualityObs int
}

// RecoveryObs is one completed recovery, fed to ObserveRecoveryKind.
// RestartIO distinguishes a checkpoint restart (PFS reads — the R the
// lossy-aware policies would consume) from an ABFT algorithmic
// reconstruction (no restart I/O; it costs iterations instead).
type RecoveryObs struct {
	Seconds   float64
	RestartIO bool
}

// QualityObs is one audited checkpoint's distortion summary, fed to
// ObserveQuality by the quality-telemetry layer.
type QualityObs struct {
	When float64
	// BoundRatio is observed max error / requested bound (≤ 1 means
	// the bound held); 0 when the checkpoint was lossless.
	BoundRatio float64
	// CompressionRatio is the achieved raw/encoded ratio.
	CompressionRatio float64
	// Relative marks a pointwise-relative bound (vs. absolute).
	Relative bool
}

// Controller is the online interval planner. It is not safe for
// concurrent use; drive it from the solver loop (or the simulator).
type Controller struct {
	cfg  Config
	rate *failure.RateEstimator

	syncCost EWMA
	capture  EWMA
	backgrnd EWMA
	recovery EWMA // checkpoint-restart (I/O) recoveries only
	abftRec  EWMA // ABFT (checkpoint-free) recoveries only
	ratio    EWMA
	boundRat EWMA // audited observed/requested error ratio
	qualObs  int  // quality audits folded in

	interval   float64
	lastPlanAt float64
	planned    bool // at least one re-plan happened
	dirty      bool // fresh observations since the last re-plan
	traj       []Plan
	met        *ctrlMetrics
}

// New builds a Controller.
func New(cfg Config) (*Controller, error) {
	if cfg.PriorMTTI <= 0 {
		return nil, fmt.Errorf("adapt: PriorMTTI must be positive, got %g", cfg.PriorMTTI)
	}
	if cfg.PriorWeight == 0 {
		cfg.PriorWeight = 1
	}
	if cfg.Alpha == 0 {
		cfg.Alpha = 0.3
	}
	if cfg.Alpha < 0 || cfg.Alpha > 1 {
		return nil, fmt.Errorf("adapt: Alpha must be in (0, 1], got %g", cfg.Alpha)
	}
	if cfg.PlanEvery < 0 || cfg.MinInterval < 0 || cfg.MaxInterval < 0 || cfg.InitialInterval < 0 {
		return nil, fmt.Errorf("adapt: negative duration in config %+v", cfg)
	}
	if cfg.MaxInterval > 0 && cfg.MinInterval > cfg.MaxInterval {
		return nil, fmt.Errorf("adapt: MinInterval %g exceeds MaxInterval %g", cfg.MinInterval, cfg.MaxInterval)
	}
	if cfg.InitialInterval == 0 {
		cfg.InitialInterval = cfg.PriorMTTI / 20
	}
	rate, err := failure.NewRateEstimator(cfg.PriorMTTI, cfg.PriorWeight)
	if err != nil {
		return nil, fmt.Errorf("adapt: %w", err)
	}
	c := &Controller{
		cfg:      cfg,
		rate:     rate,
		syncCost: NewEWMA(cfg.Alpha),
		capture:  NewEWMA(cfg.Alpha),
		backgrnd: NewEWMA(cfg.Alpha),
		recovery: NewEWMA(cfg.Alpha),
		abftRec:  NewEWMA(cfg.Alpha),
		ratio:    NewEWMA(cfg.Alpha),
		boundRat: NewEWMA(cfg.Alpha),
	}
	c.interval = c.clamp(cfg.InitialInterval)
	return c, nil
}

// Async reports whether the controller plans against the asynchronous
// stall model.
func (c *Controller) Async() bool { return c.cfg.Async }

// ObserveCheckpoint folds one completed checkpoint's measured cost
// into the estimators.
func (c *Controller) ObserveCheckpoint(o CheckpointObs) {
	if o.SyncSeconds > 0 {
		c.syncCost.Observe(o.SyncSeconds)
		c.dirty = true
	}
	if o.CaptureSeconds > 0 || o.BackgroundSeconds > 0 {
		c.capture.Observe(math.Max(o.CaptureSeconds, 0))
		c.backgrnd.Observe(math.Max(o.BackgroundSeconds, 0))
		c.dirty = true
	}
	if o.RawBytes > 0 && o.Bytes > 0 {
		c.ratio.Observe(float64(o.RawBytes) / float64(o.Bytes))
	}
}

// ObserveRecovery records the measured duration of one completed
// checkpoint-restart recovery. The estimate is informational
// (Estimates.Recovery) — neither Young's nor Daly's formula consumes
// R, so recoveries do not trigger a re-plan; a lossy-aware policy
// folding the restart cost into the plan is a ROADMAP candidate.
// Equivalent to ObserveRecoveryKind with RestartIO set.
func (c *Controller) ObserveRecovery(seconds float64) {
	c.ObserveRecoveryKind(RecoveryObs{Seconds: seconds, RestartIO: true})
}

// ObserveRecoveryKind records one completed recovery with its tier
// flavor. Checkpoint restarts (RestartIO) feed the Recovery estimate;
// ABFT reconstructions feed the separate ABFTRecovery estimate, so a
// run where ABFT usually succeeds does not drag the I/O restart-cost
// estimate toward zero. Either way the failure-rate posterior is
// untouched — recoveries are consequences of failures already reported
// via ObserveFailure, never additional evidence about λ.
func (c *Controller) ObserveRecoveryKind(o RecoveryObs) {
	if o.Seconds < 0 {
		return
	}
	c.rate.ObserveRecovery(o.RestartIO)
	if o.RestartIO {
		c.recovery.Observe(o.Seconds)
	} else {
		c.abftRec.Observe(o.Seconds)
	}
}

// ObserveQuality folds one audited checkpoint's distortion summary
// into the estimators. Strictly informational plumbing: the feed
// surfaces through Estimates (and the metrics bundle) but no planning
// policy consumes it yet — the planned interval is unchanged, so
// quality-instrumented runs plan identically to uninstrumented ones.
func (c *Controller) ObserveQuality(o QualityObs) {
	if o.BoundRatio > 0 {
		c.boundRat.Observe(o.BoundRatio)
	}
	// Deliberately NOT fed into c.ratio: ObserveCheckpoint already
	// observed this checkpoint's byte ratio, and double-counting would
	// shift the planned cost — i.e. the quality feed would perturb the
	// run it observes.
	c.qualObs++
}

// ObserveFailure records a fail-stop event at time when, updating the
// failure-rate posterior.
func (c *Controller) ObserveFailure(when float64) {
	c.rate.ObserveFailure(when)
	c.dirty = true
}

// Interval returns the planned checkpoint interval at time now,
// re-planning first if fresh observations arrived and the planning
// epoch has elapsed.
func (c *Controller) Interval(now float64) float64 {
	if c.dirty && (!c.planned || now >= c.lastPlanAt+c.cfg.PlanEvery) {
		c.Replan(now)
	}
	return c.interval
}

// Replan recomputes the interval from the current estimates
// unconditionally (Interval calls it on the planning-epoch cadence)
// and records the decision in the trajectory. Without any cost
// observation the current plan stands.
func (c *Controller) Replan(now float64) Plan {
	lambda := c.rate.Rate(now)
	cost, ok := c.plannedCost()
	if ok {
		tau := c.solve(1/lambda, cost)
		if tau > 0 && !math.IsInf(tau, 0) && !math.IsNaN(tau) {
			c.interval = c.clamp(tau)
		}
	}
	c.dirty = false
	c.planned = true
	c.lastPlanAt = now
	p := Plan{
		When:     now,
		Interval: c.interval,
		Lambda:   lambda,
		Cost:     c.effectiveCost(c.interval),
		Ratio:    c.ratio.Value(),
	}
	c.traj = append(c.traj, p)
	c.met.observePlan(p, c.recovery.Value())
	return p
}

// plannedCost returns the cost estimate a re-plan starts from: the
// sync checkpoint cost, or (async) the worst-case unoverlapped stall —
// in async mode solve derives its own bisection bracket from the
// capture/background estimators, so the value only gates whether any
// cost has been observed yet.
func (c *Controller) plannedCost() (float64, bool) {
	if c.cfg.Async {
		if !c.capture.Ok() && !c.backgrnd.Ok() {
			return 0, false
		}
		return c.capture.Value() + c.backgrnd.Value(), true
	}
	if !c.syncCost.Ok() {
		return 0, false
	}
	return c.syncCost.Value(), true
}

// effectiveCost is the solver-visible cost per checkpoint at interval
// tau under the current estimates.
func (c *Controller) effectiveCost(tau float64) float64 {
	if c.cfg.Async {
		return model.AsyncEffectiveStall(c.capture.Value(), c.backgrnd.Value(), tau)
	}
	return c.syncCost.Value()
}

// policyInterval evaluates the configured optimal-interval formula.
func (c *Controller) policyInterval(mtti, cost float64) float64 {
	if c.cfg.Policy == PolicyYoung {
		return model.YoungInterval(mtti, cost)
	}
	return model.DalyInterval(mtti, cost)
}

// solve returns the optimal interval for the estimated MTTI and
// worst-case cost. Synchronous runs evaluate the policy directly;
// asynchronous runs solve the fixed point
//
//	τ = policy(M̂, AsyncEffectiveStall(t̂cap, t̂bg, τ))
//
// by bisection: the right-hand side f(τ) is continuous and
// non-increasing in τ (a longer interval overlaps more of the
// background write, so the stall — and with it the policy's interval —
// only shrinks), so h(τ) = f(τ) − τ is strictly decreasing with
// h(0) = f(0) > 0 and h(f(0)) ≤ 0: exactly one crossing, bracketed by
// [0, f(0)]. Plain iteration would not do — near the crossing
// |f′| = M̂/τ* can far exceed 1 (cheap capture, long background write),
// where even damped fixed-point updates oscillate. In the common
// regime where the policy interval for the capture stall alone already
// exceeds t̂bg, the crossing lands there and the plan degenerates to
// policy(M̂, t̂cap).
func (c *Controller) solve(mtti, seedCost float64) float64 {
	if !c.cfg.Async {
		return c.policyInterval(mtti, seedCost)
	}
	tcap, tbg := c.capture.Value(), c.backgrnd.Value()
	f := func(tau float64) float64 {
		return c.policyInterval(mtti, model.AsyncEffectiveStall(tcap, tbg, tau))
	}
	hi := f(0) // the unoverlapped (synchronous-cost) plan bounds τ* above
	if hi <= 0 {
		return 0
	}
	if f(hi) >= hi {
		return hi // f flat on [0, hi] (tbg ≈ 0): hi is the fixed point
	}
	lo := 0.0
	for i := 0; i < 64; i++ {
		mid := (lo + hi) / 2
		if f(mid) > mid {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi
}

// clamp applies the configured interval bounds.
func (c *Controller) clamp(tau float64) float64 {
	if c.cfg.MinInterval > 0 && tau < c.cfg.MinInterval {
		tau = c.cfg.MinInterval
	}
	if c.cfg.MaxInterval > 0 && tau > c.cfg.MaxInterval {
		tau = c.cfg.MaxInterval
	}
	return tau
}

// Estimates snapshots the controller's current beliefs at time now.
func (c *Controller) Estimates(now float64) Estimates {
	lambda := c.rate.Rate(now)
	return Estimates{
		Lambda:         lambda,
		MTTI:           1 / lambda,
		SyncCost:       c.syncCost.Value(),
		Capture:        c.capture.Value(),
		Background:     c.backgrnd.Value(),
		Recovery:       c.recovery.Value(),
		Ratio:          c.ratio.Value(),
		Failures:       c.rate.Failures(),
		ABFTRecovery:   c.abftRec.Value(),
		IORestarts:     c.rate.IORestarts(),
		ABFTRecoveries: c.rate.ABFTRecoveries(),
		BoundRatio:     c.boundRat.Value(),
		QualityObs:     c.qualObs,
	}
}

// Trajectory returns every re-planning decision in order. The slice is
// owned by the controller; callers must not mutate it.
func (c *Controller) Trajectory() []Plan { return c.traj }
