package experiments

import (
	"fmt"
	"io"
	"math"

	"repro/internal/precond"
	"repro/internal/solver"
	"repro/internal/sparse"
)

func init() {
	register("fig3", "Figure 3: GMRES(30)+Jacobi on a KKT system — execution time and iterations vs processes", runFig3)
}

// Fig3Result reports the strong-scaling behaviour of GMRES(30) with a
// Jacobi preconditioner on a symmetric indefinite KKT system. The
// paper runs SuiteSparse's KKT240 (28 M equations) on Bebop; we run a
// structurally matching synthetic KKT system for the numerics and
// extrapolate execution time with the calibrated strong-scaling model.
type Fig3Result struct {
	MatrixRows     int
	MeasuredIters  int
	Procs          []int
	ModeledSeconds []float64
	// PaperIters is the iteration range the paper reports (per-process
	// counts vary between 5e5 and 7e5 on KKT240).
	PaperIters [2]float64
}

// fig3TimeModel extrapolates per-iteration cost at paper scale: the
// matvec work of ≈28 M equations divides across p ranks while the
// GMRES reductions add a log(p) latency term. Constants are anchored
// to the paper's observation that solving KKT240 once at 4,096
// processes takes over an hour at ≈6e5 iterations (≈7 ms/iteration).
func fig3TimeModel(procs int, iters float64) float64 {
	const (
		workSecProcs = 7.68   // per-iteration compute, seconds × procs
		reduceCoeff  = 4.3e-4 // seconds per log2(p) of collective latency
	)
	perIter := workSecProcs/float64(procs) + reduceCoeff*math.Log2(float64(procs))
	return perIter * iters
}

func runFig3(cfg Config) (Result, error) {
	gridN := 46
	nc := 500
	if cfg.Quick {
		gridN = 16
		nc = 60
	}
	a := sparse.KKT(gridN, nc, cfg.Seed+3)
	xe := sparse.SmoothField(a.Rows, cfg.Seed+4)
	b := sparse.RHSForSolution(a, xe)
	d := make([]float64, a.Rows)
	a.Diag(d)
	m := precond.NewJacobi(d)
	s := solver.NewGMRES(a, m, b, nil, 30, solver.SeqSpace{}, solver.Options{RTol: 1e-6})
	res, err := solver.RunToConvergence(s, solver.Options{MaxIter: 400000}, nil)
	if err != nil {
		return nil, err
	}
	if !res.Converged {
		return nil, fmt.Errorf("fig3: GMRES did not converge on the KKT system in %d iterations", res.Iterations)
	}

	out := &Fig3Result{
		MatrixRows:    a.Rows,
		MeasuredIters: res.Iterations,
		Procs:         []int{256, 512, 1024, 2048, 4096},
		PaperIters:    [2]float64{5e5, 7e5},
	}
	// The paper's iteration counts on KKT240 sit in [5e5, 7e5]; scale
	// modeled execution time with the paper's count so the time curve
	// is directly comparable.
	const paperIterations = 6e5
	for _, p := range out.Procs {
		out.ModeledSeconds = append(out.ModeledSeconds, fig3TimeModel(p, paperIterations))
	}
	return out, nil
}

// WriteText renders the two series of Figure 3.
func (r *Fig3Result) WriteText(w io.Writer) error {
	fmt.Fprintln(w, "Figure 3 — GMRES(30)+Jacobi on symmetric indefinite KKT")
	fmt.Fprintf(w, "synthetic KKT: %d equations, converged in %d iterations (rtol 1e-6)\n",
		r.MatrixRows, r.MeasuredIters)
	fmt.Fprintf(w, "modeled execution time at KKT240 scale (28M equations, %.0fk iterations):\n", 6e2)
	for i, p := range r.Procs {
		fmt.Fprintf(w, "  %5d procs: %8.0f s\n", p, r.ModeledSeconds[i])
	}
	fmt.Fprintln(w, "paper: >1 hour at 4,096 processes; iterations between 5e5 and 7e5")
	return nil
}
