package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fti"
	"repro/internal/lossless"
	"repro/internal/solver"
	"repro/internal/sparse"
	"repro/internal/sz"
)

// methodNames lists the three iterative methods the paper evaluates.
var methodNames = []string{"jacobi", "gmres", "cg"}

// schemeOrder lists the three checkpointing schemes in paper order.
var schemeOrder = []core.Scheme{core.Traditional, core.Lossless, core.Lossy}

// buildSolver constructs the named method on A·x = b with the paper's
// configuration (block-Jacobi/ILU-class preconditioning for CG, plain
// GMRES(30), plain Jacobi sweeps) and the paper's per-method rtol.
func buildSolver(method string, a *sparse.CSR, b []float64, rtol float64) (solver.Checkpointable, error) {
	opts := solver.Options{RTol: rtol}
	switch method {
	case "jacobi":
		s, err := solver.NewStationary(solver.KindJacobi, a, b, nil, 0, opts)
		if err != nil {
			return nil, err
		}
		return s, nil
	case "gmres":
		// The paper runs GMRES(30) with N ≈ 5,875 iterations (≈200
		// Krylov cycles). Our laptop-scale systems converge in tens to
		// hundreds of iterations, so the restart length scales down to
		// keep N ≫ k — otherwise a single lossy restart would wipe out
		// the only Krylov cycle of the run, a regime the paper never
		// operates in.
		return solver.NewGMRES(a, nil, b, nil, 5, solver.SeqSpace{}, opts), nil
	case "cg":
		// Unpreconditioned CG: at laptop scale the block-ILU
		// preconditioner collapses the iteration count to a handful,
		// which would leave the simulated iteration time comparable to
		// the checkpoint interval — again a regime the paper's
		// 2,400-iteration CG never enters. The preconditioned variant
		// is exercised by the solver tests and the ablation bench.
		return solver.NewCG(a, nil, b, nil, solver.SeqSpace{}, opts), nil
	}
	return nil, fmt.Errorf("experiments: unknown method %q", method)
}

// simGrid returns the per-method grid dimension for the virtual-time
// experiments, chosen so the failure-free iteration count keeps the
// simulated iteration time well below the checkpoint interval.
func simGrid(method string, quick bool) int {
	full := map[string]int{"jacobi": 14, "gmres": 20, "cg": 20}
	q := map[string]int{"jacobi": 8, "gmres": 12, "cg": 12}
	if quick {
		return q[method]
	}
	return full[method]
}

// poissonSystem builds the paper's Eq. (15) system at grid dimension m
// (n = m³ unknowns) with the all-ones right-hand side.
func poissonSystem(m int) (*sparse.CSR, []float64) {
	a := sparse.Poisson3D(m)
	return a, sparse.OnesRHS(a.Rows)
}

// gridFor picks a laptop-scale grid dimension standing in for a paper
// scale, preserving the weak-scaling shape (larger scale → larger
// problem).
func gridFor(procs int, quick bool) int {
	base := map[int]int{256: 10, 512: 12, 768: 13, 1024: 14, 1280: 15, 1536: 16, 1792: 17, 2048: 18}
	m, ok := base[procs]
	if !ok {
		m = 12
	}
	if quick {
		m = m/2 + 3
	}
	return m
}

// gridForMethod scales the method's sim grid across the weak-scaling
// axis (larger paper scale → larger laptop problem), keeping each
// method in its healthy iteration regime.
func gridForMethod(method string, procs int, quick bool) int {
	g := simGrid(method, quick)
	switch procs {
	case 256:
		g = g * 7 / 10
	case 512:
		g = g * 85 / 100
	case 1024:
		// base size
	case 2048:
		g = g * 115 / 100
	}
	if g < 5 {
		g = 5
	}
	return g
}

// ratios holds measured compression ratios per checkpointing scheme on
// a real solver state.
type ratios struct {
	Traditional float64 // always 1
	Lossless    float64
	Lossy       float64
}

// measureRatios runs the method partway to convergence on an
// affordable system, captures the checkpoint vector(s), and measures
// the compression ratio of each scheme on that real solver state.
//
// The system is the 7-point Poisson operator on an anisotropic grid
// whose x-extent matches the paper's grids (≈2,160): the compression
// ratio of 1D SZ on checkpoint data is governed by the smoothness of
// the vector in traversal order, i.e. by the grid's x-resolution, not
// by the total unknown count. A cubic laptop-scale grid (runs of ≈16
// values) would understate the paper's ratios by ≈5×; the anisotropic
// grid reproduces the paper's 20–60× regime on real solver state. The
// lossy ratio uses the value-range-relative bound, matching the SZ
// 1.4.12 REL mode the paper deploys; the pointwise-relative bound
// (the theorems' definition) is what the numerical experiments use.
func measureRatios(method string, grid int, eb float64) (ratios, error) {
	nx := 135 * grid / 16 * 16 // ≈2,160 at grid 16, scaled down in quick mode
	if nx < 256 {
		nx = 256
	}
	a := sparse.Poisson3DAniso(nx, 8, 8)
	b := sparse.SmoothField(a.Rows, 77)
	base := cluster.PaperBaselines()[method]
	s, err := buildSolver(method, a, b, base.RTol)
	if err != nil {
		return ratios{}, err
	}
	// Advance to roughly half convergence so the state is realistic
	// (neither the trivial guess nor the converged fixed point).
	res, err := solver.RunToConvergence(s, solver.Options{MaxIter: 100000}, nil)
	if err != nil {
		return ratios{}, err
	}
	half := res.Iterations / 2
	if half < 1 {
		half = 1
	}
	s2, err := buildSolver(method, a, b, base.RTol)
	if err != nil {
		return ratios{}, err
	}
	for i := 0; i < half; i++ {
		s2.Step()
	}
	state := s2.CaptureDynamic()

	out := ratios{Traditional: 1}
	var rawTotal, flateTotal, szTotal int
	for _, v := range state.Vectors {
		rawTotal += 8 * len(v)
		fl, err := (lossless.Flate{}).Compress(v)
		if err != nil {
			return ratios{}, err
		}
		flateTotal += len(fl)
		lz, err := sz.Compress(v, sz.Params{Mode: sz.RelRange, ErrorBound: eb})
		if err != nil {
			return ratios{}, err
		}
		szTotal += len(lz)
	}
	if flateTotal == 0 || szTotal == 0 {
		return ratios{}, fmt.Errorf("experiments: empty compressed state")
	}
	out.Lossless = float64(rawTotal) / float64(flateTotal)
	out.Lossy = float64(rawTotal) / float64(szTotal)
	return out, nil
}

// schemeTimes derives per-scheme checkpoint and recovery seconds at a
// given paper scale from the measured ratios and the cluster model.
type schemeTimes struct {
	Ckpt, Rec map[core.Scheme]float64
}

func timesAtScale(mdl *cluster.Model, procs int, perProcMB float64, r ratios) schemeTimes {
	raw := float64(procs) * perProcMB * 1e6
	st := schemeTimes{Ckpt: map[core.Scheme]float64{}, Rec: map[core.Scheme]float64{}}
	st.Ckpt[core.Traditional] = mdl.CheckpointSeconds(procs, raw, raw, cluster.Uncompressed)
	st.Rec[core.Traditional] = mdl.RecoverySeconds(procs, raw, raw, cluster.Uncompressed)
	st.Ckpt[core.Lossless] = mdl.CheckpointSeconds(procs, raw/r.Lossless, raw, cluster.LosslessCompressed)
	st.Rec[core.Lossless] = mdl.RecoverySeconds(procs, raw/r.Lossless, raw, cluster.LosslessCompressed)
	// The lossy scheme checkpoints only x (one vector), so for CG the
	// raw volume halves before compression — handled by the caller via
	// perProcMB when needed; here ratios already refer to the full
	// dynamic state.
	st.Ckpt[core.Lossy] = mdl.CheckpointSeconds(procs, raw/r.Lossy, raw, cluster.LossyCompressed)
	st.Rec[core.Lossy] = mdl.RecoverySeconds(procs, raw/r.Lossy, raw, cluster.LossyCompressed)
	return st
}

// managedRun builds a solver plus manager pair for a sim run.
func managedRun(method string, a *sparse.CSR, b []float64, rtol float64, scheme core.Scheme, eb float64) (solver.Checkpointable, *core.Manager, error) {
	s, err := buildSolver(method, a, b, rtol)
	if err != nil {
		return nil, nil, err
	}
	cfg := core.Config{Scheme: scheme}
	if scheme == core.Lossy {
		cfg.SZParams = sz.Params{Mode: sz.PWRel, ErrorBound: eb}
		if method == "gmres" {
			cfg.Adaptive = true
			cfg.AdaptiveC = 1
			cfg.BNorm = solver.SeqSpace{}.Norm2(b)
		}
	}
	m, err := core.NewManager(cfg, fti.NewMemStorage(), s)
	if err != nil {
		return nil, nil, err
	}
	return s, m, nil
}
