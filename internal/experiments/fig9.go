package experiments

import (
	"fmt"
	"io"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fti"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/solver"
)

func init() {
	register("fig9", "Figure 9: Jacobi residual traces with lossy checkpointing and 0/1/2 failures", runFig9)
}

// Fig9Trace is one execution's residual series.
type Fig9Trace struct {
	Label      string
	Residuals  []float64 // per executed iteration
	FailureAt  []int     // iteration indices where failures struck
	Iterations int
	FinalRes   float64
}

// Fig9Result reproduces Figure 9: typical Jacobi executions with lossy
// checkpointing — failure-free, one failure/restart, and two
// failures/restarts — all converging to the same residual level.
type Fig9Result struct {
	Traces []Fig9Trace
}

func runFig9(cfg Config) (Result, error) {
	grid := 16
	if cfg.Quick {
		grid = 9
	}
	a, b := poissonSystem(grid)
	base := cluster.PaperBaselines()["jacobi"]

	ratio, err := measureRatios("jacobi", gridFor(1024, cfg.Quick), base.LossyErrorBound)
	if err != nil {
		return nil, err
	}
	ckptSec, recSec := simTimes("jacobi", 2048, true, ratio)

	// Failure-free baseline fixes the simulated wall clock.
	sBase, err := buildSolver("jacobi", a, b, base.RTol)
	if err != nil {
		return nil, err
	}
	resBase, err := solver.RunToConvergence(sBase, solver.Options{MaxIter: 500000}, nil)
	if err != nil || !resBase.Converged {
		return nil, fmt.Errorf("fig9: baseline Jacobi failed: %v", err)
	}
	tit := base.BaselineSeconds / float64(resBase.Iterations)
	duration := base.BaselineSeconds

	out := &Fig9Result{}
	runs := []struct {
		label    string
		schedule []float64
	}{
		{"no failure/restart", nil},
		{"lossy checkpointing, 1 failure/restart", []float64{duration * 0.45}},
		{"lossy checkpointing, 2 failures/restarts", []float64{duration * 0.3, duration * 0.65}},
	}
	for _, rr := range runs {
		s, m, err := managedRun("jacobi", a, b, base.RTol, core.Lossy, base.LossyErrorBound)
		if err != nil {
			return nil, err
		}
		outSim, err := sim.Run(sim.Config{
			Stepper:           s,
			Manager:           m,
			X0:                make([]float64, a.Rows),
			TitSeconds:        tit,
			IntervalSeconds:   model.YoungInterval(3600, ckptSec(fti.Info{})),
			CheckpointSeconds: ckptSec,
			RecoverySeconds:   recSec,
			FailureSchedule:   rr.schedule,
			RecordResiduals:   true,
			MaxIterations:     2000000,
		})
		if err != nil {
			return nil, err
		}
		if !outSim.Converged {
			return nil, fmt.Errorf("fig9: run %q did not converge", rr.label)
		}
		trace := Fig9Trace{
			Label:      rr.label,
			Residuals:  outSim.Residuals,
			Iterations: outSim.IterationsExecuted,
			FinalRes:   outSim.FinalResidual,
		}
		for _, e := range outSim.FailureEvents {
			trace.FailureAt = append(trace.FailureAt, e.Iteration)
		}
		out.Traces = append(out.Traces, trace)
	}
	return out, nil
}

// WriteText renders downsampled residual series.
func (r *Fig9Result) WriteText(w io.Writer) error {
	fmt.Fprintln(w, "Figure 9 — typical Jacobi executions with lossy checkpointing")
	for _, tr := range r.Traces {
		fmt.Fprintf(w, "%s: %d iterations, final residual %.3e, failures at iterations %v\n",
			tr.Label, tr.Iterations, tr.FinalRes, tr.FailureAt)
		step := len(tr.Residuals) / 12
		if step < 1 {
			step = 1
		}
		for i := 0; i < len(tr.Residuals); i += step {
			fmt.Fprintf(w, "    it %6d  residual %.4e\n", i+1, tr.Residuals[i])
		}
	}
	fmt.Fprintln(w, "paper: after a lossy recovery the residual rejoins the failure-free curve with no extra iterations")
	return nil
}
