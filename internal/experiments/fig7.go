package experiments

import (
	"fmt"
	"io"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/model"
)

func init() {
	register("fig7", "Figure 7: expected fault tolerance overhead vs processes (MTTI 1h and 3h)", runFig7)
}

// Fig7Curve is one method × scheme series across the scaling grid.
type Fig7Curve struct {
	Method string
	Scheme core.Scheme
	// Overhead[mtti][i] is the expected overhead fraction at
	// Procs[i]; mtti index 0 = 1 hour, 1 = 3 hours.
	Overhead [2][]float64
}

// Fig7Result reproduces both panels of Figure 7 via Eqs. (4)/(8) with
// the per-scheme checkpoint times of Figures 4–6 and the per-method
// N′ values of §4.4 (Jacobi ≈6, GMRES 0, CG 594).
type Fig7Result struct {
	Procs  []int
	MTTIs  []float64
	Curves []Fig7Curve
}

// paperNPrime returns the expected extra iterations per lossy recovery
// the paper uses in its Fig. 7 analysis (absolute counts at the
// paper's problem scale).
func paperNPrime(method string) float64 {
	switch method {
	case "jacobi":
		return 6
	case "gmres":
		return 0
	case "cg":
		return 594
	}
	return 0
}

// nPrimeFraction expresses the same values as a fraction of the
// paper's total iteration counts, the form that transfers to problems
// of other sizes.
func nPrimeFraction(method string) float64 {
	base := cluster.PaperBaselines()[method]
	return paperNPrime(method) / float64(base.Iterations)
}

func runFig7(cfg Config) (Result, error) {
	measGrid := 16
	if cfg.Quick {
		measGrid = 8
	}
	mdl := cluster.Bebop()
	out := &Fig7Result{MTTIs: []float64{3600, 3 * 3600}}
	for _, sc := range cluster.Table3ProblemSizes() {
		out.Procs = append(out.Procs, sc.Procs)
	}
	for _, method := range methodNames {
		base := cluster.PaperBaselines()[method]
		r, err := measureRatios(method, measGrid, base.LossyErrorBound)
		if err != nil {
			return nil, err
		}
		tit := base.TitSeconds()
		for _, scheme := range schemeOrder {
			curve := Fig7Curve{Method: method, Scheme: scheme}
			for mi, mtti := range out.MTTIs {
				lambda := 1 / mtti
				for _, sc := range cluster.Table3ProblemSizes() {
					elemsPerProc := float64(sc.N) * float64(sc.N) * float64(sc.N) / float64(sc.Procs)
					oneVec := elemsPerProc * 8 * float64(sc.Procs)
					tradRaw := oneVec * float64(base.CkptVectors)
					var tckp, overhead float64
					switch scheme {
					case core.Traditional:
						tckp = mdl.CheckpointSeconds(sc.Procs, tradRaw, tradRaw, cluster.Uncompressed)
						overhead = model.ExpectedOverheadRatio(lambda, tckp)
					case core.Lossless:
						tckp = mdl.CheckpointSeconds(sc.Procs, tradRaw/r.Lossless, tradRaw, cluster.LosslessCompressed)
						overhead = model.ExpectedOverheadRatio(lambda, tckp)
					case core.Lossy:
						tckp = mdl.CheckpointSeconds(sc.Procs, oneVec/r.Lossy, oneVec, cluster.LossyCompressed)
						overhead = model.LossyOverheadRatio(lambda, tckp, paperNPrime(method), tit)
					}
					curve.Overhead[mi] = append(curve.Overhead[mi], overhead)
				}
			}
			out.Curves = append(out.Curves, curve)
		}
	}
	return out, nil
}

// Curve returns the series for a method × scheme (nil if absent).
func (r *Fig7Result) Curve(method string, scheme core.Scheme) *Fig7Curve {
	for i := range r.Curves {
		if r.Curves[i].Method == method && r.Curves[i].Scheme == scheme {
			return &r.Curves[i]
		}
	}
	return nil
}

// WriteText renders both MTTI panels.
func (r *Fig7Result) WriteText(w io.Writer) error {
	for mi, mtti := range r.MTTIs {
		fmt.Fprintf(w, "Figure 7(%c) — expected FT overhead, MTTI = %.0f h\n", 'a'+mi, mtti/3600)
		fmt.Fprintf(w, "%-18s", "curve\\procs")
		for _, p := range r.Procs {
			fmt.Fprintf(w, "%8d", p)
		}
		fmt.Fprintln(w)
		for _, c := range r.Curves {
			fmt.Fprintf(w, "%-18s", c.Method+"-"+c.Scheme.String())
			for _, v := range c.Overhead[mi] {
				fmt.Fprintf(w, "%7.1f%%", 100*v)
			}
			fmt.Fprintln(w)
		}
	}
	fmt.Fprintln(w, "paper: lossy curves lowest and flattest; CG-lossy crosses traditional near 1536 (1 h) / 768 (3 h) procs")
	return nil
}
