package experiments

import (
	"fmt"
	"io"

	"repro/internal/cluster"
)

func init() {
	register("table3", "Table 3: problem sizes and checkpoint sizes per process", runTable3)
}

// Table3Row is one scale row of the paper's Table 3.
type Table3Row struct {
	Procs      int
	N          int                // problem dimension (N³ unknowns)
	PerProcMB  map[string]float64 // method -> traditional MB
	LosslessMB map[string]float64
	LossyMB    map[string]float64
}

// Table3Result reproduces the checkpoint-size table. Traditional sizes
// follow from the element counts (CG checkpoints two vectors);
// compressed sizes apply ratios measured on real solver states at
// laptop scale.
type Table3Result struct {
	Rows       []Table3Row
	RatiosUsed map[string]ratios
}

func runTable3(cfg Config) (Result, error) {
	measGrid := 16
	if cfg.Quick {
		measGrid = 8
	}
	ratiosUsed := map[string]ratios{}
	for _, method := range methodNames {
		eb := cluster.PaperBaselines()[method].LossyErrorBound
		r, err := measureRatios(method, measGrid, eb)
		if err != nil {
			return nil, fmt.Errorf("table3: %s: %w", method, err)
		}
		ratiosUsed[method] = r
	}

	out := &Table3Result{RatiosUsed: ratiosUsed}
	for _, sc := range cluster.Table3ProblemSizes() {
		row := Table3Row{
			Procs:      sc.Procs,
			N:          sc.N,
			PerProcMB:  map[string]float64{},
			LosslessMB: map[string]float64{},
			LossyMB:    map[string]float64{},
		}
		elemsPerProc := float64(sc.N) * float64(sc.N) * float64(sc.N) / float64(sc.Procs)
		oneVecMB := elemsPerProc * 8 / 1e6
		for _, method := range methodNames {
			vecs := float64(cluster.PaperBaselines()[method].CkptVectors)
			trad := oneVecMB * vecs
			r := ratiosUsed[method]
			row.PerProcMB[method] = trad
			row.LosslessMB[method] = trad / r.Lossless
			// The lossy scheme checkpoints only x (one vector for
			// every method), compressed.
			row.LossyMB[method] = oneVecMB / r.Lossy
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// WriteText renders the table in the paper's layout.
func (r *Table3Result) WriteText(w io.Writer) error {
	fmt.Fprintln(w, "Table 3 — problem sizes and checkpoint sizes per process (MB)")
	fmt.Fprintf(w, "%6s %8s | %8s %8s %8s | %8s %8s %8s | %8s %8s %8s\n",
		"procs", "size", "trad-J", "trad-G", "trad-CG",
		"less-J", "less-G", "less-CG", "lossy-J", "lossy-G", "lossy-CG")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%6d %5d^3 | %8.1f %8.1f %8.1f | %8.2f %8.2f %8.2f | %8.2f %8.2f %8.2f\n",
			row.Procs, row.N,
			row.PerProcMB["jacobi"], row.PerProcMB["gmres"], row.PerProcMB["cg"],
			row.LosslessMB["jacobi"], row.LosslessMB["gmres"], row.LosslessMB["cg"],
			row.LossyMB["jacobi"], row.LossyMB["gmres"], row.LossyMB["cg"])
	}
	fmt.Fprintln(w, "measured compression ratios on real solver state:")
	for _, m := range methodNames {
		rr := r.RatiosUsed[m]
		fmt.Fprintf(w, "  %-6s lossless %5.2fx   lossy %6.1fx\n", m, rr.Lossless, rr.Lossy)
	}
	fmt.Fprintln(w, "paper: traditional ≈38–40 MB (J, G) / ≈77–80 MB (CG);")
	fmt.Fprintln(w, "       lossless ratio ≈6.4 (J) and ≈1.2 (G, CG); lossy ≈1.1–1.7 MB per process")
	return nil
}
