package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
)

func quickCfg() Config { return Config{Quick: true, Seed: 1} }

// runExperiment executes an experiment in quick mode and returns its
// result plus rendered text.
func runExperiment(t *testing.T, id string) (Result, string) {
	t.Helper()
	res, err := Run(id, quickCfg())
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	var buf bytes.Buffer
	if err := res.WriteText(&buf); err != nil {
		t.Fatalf("%s render: %v", id, err)
	}
	if buf.Len() == 0 {
		t.Fatalf("%s rendered nothing", id)
	}
	return res, buf.String()
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"adapt", "fig1", "fig10", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "table3"}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("registry has %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("registry has %v, want %v", got, want)
		}
	}
	for _, id := range want {
		if Title(id) == "" {
			t.Fatalf("missing title for %s", id)
		}
	}
}

func TestRunUnknownID(t *testing.T) {
	if _, err := Run("nope", quickCfg()); err == nil {
		t.Fatal("expected error for unknown experiment")
	}
}

func TestFig1SurfaceAnchors(t *testing.T) {
	res, text := runExperiment(t, "fig1")
	r := res.(*Fig1Result)
	// Paper anchor: ≈40% overhead near λ=1/h, Tckp=120 s. Our grid has
	// λ=1.05: the value there must be 0.35–0.50.
	v := r.At(1.05, 120)
	if v < 0.3 || v > 0.55 {
		t.Fatalf("overhead at (1.05/h, 120 s) = %v, want ≈0.40", v)
	}
	// Monotone along both axes.
	if !(r.At(3.5, 140) > r.At(0.35, 140) && r.At(3.5, 140) > r.At(3.5, 20)) {
		t.Fatal("surface not monotone")
	}
	if !strings.Contains(text, "Figure 1") {
		t.Fatal("render missing title")
	}
}

func TestFig2CGExtraIterations(t *testing.T) {
	res, _ := runExperiment(t, "fig2")
	r := res.(*Fig2Result)
	if len(r.ExtraPercent) != 4 {
		t.Fatalf("want 4 bounds, got %d", len(r.ExtraPercent))
	}
	for i, p := range r.ExtraPercent {
		if p < 0 || p > 60 {
			t.Fatalf("extra iterations %v%% at bound %v outside sane band", p, r.Bounds[i])
		}
	}
}

func TestFig3Shape(t *testing.T) {
	res, _ := runExperiment(t, "fig3")
	r := res.(*Fig3Result)
	if r.MeasuredIters <= 0 {
		t.Fatal("no measured iterations")
	}
	// Execution time decreases with processes but flattens (the log
	// term): strictly decreasing across the grid.
	for i := 1; i < len(r.ModeledSeconds); i++ {
		if r.ModeledSeconds[i] >= r.ModeledSeconds[i-1] {
			t.Fatalf("time must fall with procs: %v", r.ModeledSeconds)
		}
	}
	// Paper anchor: >1 hour at 4,096 processes.
	last := r.ModeledSeconds[len(r.ModeledSeconds)-1]
	if last < 3600 || last > 3*3600 {
		t.Fatalf("time at 4096 procs = %.0f s, paper says just over an hour", last)
	}
}

func TestTable3Shape(t *testing.T) {
	res, _ := runExperiment(t, "table3")
	r := res.(*Table3Result)
	if len(r.Rows) != 8 {
		t.Fatalf("want 8 scales, got %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		// CG checkpoints two vectors: traditional CG ≈ 2× Jacobi.
		if row.PerProcMB["cg"] < 1.9*row.PerProcMB["jacobi"] {
			t.Fatalf("CG traditional %v should be ≈2× Jacobi %v",
				row.PerProcMB["cg"], row.PerProcMB["jacobi"])
		}
		for _, m := range methodNames {
			if !(row.LossyMB[m] < row.LosslessMB[m] && row.LosslessMB[m] <= row.PerProcMB[m]*1.01) {
				t.Fatalf("%s at %d procs: lossy %v < lossless %v < trad %v violated",
					m, row.Procs, row.LossyMB[m], row.LosslessMB[m], row.PerProcMB[m])
			}
		}
		// Paper's traditional sizes are ≈38–40 MB (one vector).
		if row.PerProcMB["jacobi"] < 30 || row.PerProcMB["jacobi"] > 50 {
			t.Fatalf("Jacobi traditional %v MB/proc outside the paper's ≈38–40", row.PerProcMB["jacobi"])
		}
	}
	for _, m := range methodNames {
		if r.RatiosUsed[m].Lossy < 5 {
			t.Fatalf("%s lossy ratio %v too low to reproduce the paper's regime", m, r.RatiosUsed[m].Lossy)
		}
	}
}

func TestFig456Shapes(t *testing.T) {
	for _, id := range []string{"fig4", "fig5", "fig6"} {
		res, _ := runExperiment(t, id)
		r := res.(*CkptTimesResult)
		for i := range r.Procs {
			ct, cl, cy := r.Ckpt[core.Traditional][i], r.Ckpt[core.Lossless][i], r.Ckpt[core.Lossy][i]
			if !(cy < cl && cl < ct) {
				t.Fatalf("%s at %d procs: ckpt ordering lossy %v < lossless %v < trad %v violated",
					id, r.Procs[i], cy, cl, ct)
			}
			if r.Rec[core.Traditional][i] <= ct {
				t.Fatalf("%s: recovery must exceed checkpoint (static vars)", id)
			}
		}
		// Times grow with scale.
		last := len(r.Procs) - 1
		if r.Ckpt[core.Traditional][last] <= r.Ckpt[core.Traditional][0] {
			t.Fatalf("%s: checkpoint time must grow with scale", id)
		}
	}
}

func TestFig5GMRESAnchor(t *testing.T) {
	res, _ := runExperiment(t, "fig5")
	r := res.(*CkptTimesResult)
	// §4.3: traditional ≈120 s and lossy ≈25 s at 2,048 processes.
	trad := r.CkptAt(core.Traditional, 2048)
	if trad < 90 || trad > 150 {
		t.Fatalf("traditional GMRES ckpt at 2048 = %.1f s, paper ≈120", trad)
	}
	lossy := r.CkptAt(core.Lossy, 2048)
	if lossy < 10 || lossy > 45 {
		t.Fatalf("lossy GMRES ckpt at 2048 = %.1f s, paper ≈25", lossy)
	}
}

func TestFig7Shape(t *testing.T) {
	res, _ := runExperiment(t, "fig7")
	r := res.(*Fig7Result)
	if len(r.Curves) != 9 {
		t.Fatalf("want 9 curves, got %d", len(r.Curves))
	}
	for _, m := range methodNames {
		lossy := r.Curve(m, core.Lossy)
		trad := r.Curve(m, core.Traditional)
		for mi := range r.MTTIs {
			// At the largest scale the lossy curve must be below
			// traditional for every method (Fig. 7 crossover happens
			// at or before 1536 procs even for CG).
			last := len(r.Procs) - 1
			if lossy.Overhead[mi][last] >= trad.Overhead[mi][last] {
				t.Fatalf("%s MTTI[%d]: lossy %v ≥ traditional %v at largest scale",
					m, mi, lossy.Overhead[mi][last], trad.Overhead[mi][last])
			}
		}
	}
	// Jacobi and GMRES lossy beat both other schemes everywhere.
	for _, m := range []string{"jacobi", "gmres"} {
		lossy := r.Curve(m, core.Lossy)
		lossless := r.Curve(m, core.Lossless)
		for i := range r.Procs {
			if lossy.Overhead[0][i] >= lossless.Overhead[0][i] {
				t.Fatalf("%s: lossy must beat lossless at %d procs", m, r.Procs[i])
			}
		}
	}
	// Overhead at 3 h MTTI is lower than at 1 h.
	c := r.Curve("gmres", core.Traditional)
	for i := range r.Procs {
		if c.Overhead[1][i] >= c.Overhead[0][i] {
			t.Fatal("3 h MTTI must give lower overhead than 1 h")
		}
	}
}

func TestFig8Shape(t *testing.T) {
	res, _ := runExperiment(t, "fig8")
	r := res.(*Fig8Result)
	if len(r.Cells) != 12 {
		t.Fatalf("want 3 methods × 4 scales = 12 cells, got %d", len(r.Cells))
	}
	for _, c := range r.Cells {
		if c.FailureFree <= 0 || c.Lossy <= 0 {
			t.Fatalf("%+v: empty counts", c)
		}
		delta := float64(c.Lossy-c.FailureFree) / float64(c.FailureFree)
		switch c.Method {
		case "jacobi":
			if delta < -0.02 || delta > 0.10 {
				t.Fatalf("jacobi delta %v outside ≈0 band: %+v", delta, c)
			}
		case "gmres":
			if delta < -0.30 || delta > 0.15 {
				t.Fatalf("gmres delta %v outside ≤0-ish band: %+v", delta, c)
			}
		case "cg":
			if delta < -0.05 || delta > 0.8 {
				t.Fatalf("cg delta %v outside expected band: %+v", delta, c)
			}
		}
	}
}

func TestFig9Traces(t *testing.T) {
	res, _ := runExperiment(t, "fig9")
	r := res.(*Fig9Result)
	if len(r.Traces) != 3 {
		t.Fatalf("want 3 traces, got %d", len(r.Traces))
	}
	wantFailures := []int{0, 1, 2}
	for i, tr := range r.Traces {
		if len(tr.FailureAt) != wantFailures[i] {
			t.Fatalf("trace %d has %d failures, want %d", i, len(tr.FailureAt), wantFailures[i])
		}
		if len(tr.Residuals) == 0 {
			t.Fatalf("trace %d empty", i)
		}
	}
	// All executions converge to the same residual level (§4.4.4
	// tolerance-based reproducibility): final residuals within 2×.
	ref := r.Traces[0].FinalRes
	for _, tr := range r.Traces[1:] {
		if tr.FinalRes > 2*ref || ref > 2*tr.FinalRes {
			t.Fatalf("final residuals diverge: %v vs %v", ref, tr.FinalRes)
		}
	}
}

func TestFig10HeadlineReductions(t *testing.T) {
	res, text := runExperiment(t, "fig10")
	r := res.(*Fig10Result)
	if len(r.Cells) != 9 {
		t.Fatalf("want 9 cells, got %d", len(r.Cells))
	}
	for _, m := range methodNames {
		redTrad := r.Reduction(m, core.Traditional)
		redLossless := r.Reduction(m, core.Lossless)
		// The paper's headline: lossy cuts FT overhead by 23–70% vs
		// traditional and 20–58% vs lossless. Quick mode with 3 trials
		// is noisy; require the sign and a generous band.
		if redTrad < 5 || redTrad > 95 {
			t.Fatalf("%s: reduction vs traditional %.0f%% outside (5,95)", m, redTrad)
		}
		if redLossless < 0 || redLossless > 95 {
			t.Fatalf("%s: reduction vs lossless %.0f%% outside (0,95)", m, redLossless)
		}
	}
	if !strings.Contains(text, "Figure 10") {
		t.Fatal("render missing title")
	}
}

func TestAdaptSweep(t *testing.T) {
	res, text := runExperiment(t, "adapt")
	r := res.(*AdaptResult)
	if len(r.Scenarios) != 3 {
		t.Fatalf("want 3 scenarios, got %d", len(r.Scenarios))
	}
	steady := r.Scenario("steady")
	if steady == nil {
		t.Fatal("steady scenario missing")
	}
	// Quick mode runs 3 seeds on a smaller grid; allow a wider band
	// than the sim package's strict 5% acceptance test (12 seeds).
	if steady.AdaptiveSecs > 1.10*steady.BestSeconds {
		t.Fatalf("steady: adaptive %.1f s far off best fixed %.1f s", steady.AdaptiveSecs, steady.BestSeconds)
	}
	drift := r.Scenario("ratio-drift")
	if drift == nil {
		t.Fatal("ratio-drift scenario missing")
	}
	if drift.AdaptiveSecs >= drift.ProbeSeconds {
		t.Fatalf("drift: adaptive %.1f s does not beat the stale probe interval %.1f s",
			drift.AdaptiveSecs, drift.ProbeSeconds)
	}
	lossy := r.Scenario("lossy-steady")
	if lossy == nil {
		t.Fatal("lossy-steady scenario missing — the sweep must run the lossy scheme, not only lossless")
	}
	if lossy.Scheme != "lossy" {
		t.Fatalf("lossy-steady scheme = %q, want lossy", lossy.Scheme)
	}
	// The convergence-delay term exists precisely because lossy restores
	// are inexact: failures must cost at least the rolled-back work, so
	// the adaptive runs cannot beat the failure-free baseline.
	if lossy.BaselineIters <= 0 {
		t.Fatalf("lossy-steady baseline iterations = %.0f, want > 0", lossy.BaselineIters)
	}
	if lossy.ConvergenceDelay < 0 {
		t.Fatalf("lossy-steady convergence delay %.0f is negative (adaptive mean %.0f vs baseline %.0f)",
			lossy.ConvergenceDelay, lossy.AdaptiveIters, lossy.BaselineIters)
	}
	if lossy.AdaptiveSecs > 1.25*lossy.BestSeconds {
		t.Fatalf("lossy-steady: adaptive %.1f s far off best fixed %.1f s", lossy.AdaptiveSecs, lossy.BestSeconds)
	}
	if !strings.Contains(text, "Adaptive checkpoint interval") {
		t.Fatal("render missing title")
	}
	if !strings.Contains(text, "convergence delay") {
		t.Fatal("render missing the convergence-delay row")
	}
}
