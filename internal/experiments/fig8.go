package experiments

import (
	"fmt"
	"io"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/failure"
	"repro/internal/fti"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/solver"
)

func init() {
	register("fig8", "Figure 8: number of convergence iterations, failure-free vs lossy checkpointing", runFig8)
}

// Fig8Cell is one (method, scale) comparison.
type Fig8Cell struct {
	Method      string
	Procs       int
	Unknowns    int
	FailureFree int
	Lossy       int
	Failures    int
}

// Fig8Result reproduces Figure 8: convergence iterations with lossy
// checkpointing under injected failures (MTTI = 1 h) versus the
// failure-free baseline, across the weak-scaling grid. Real solves at
// laptop scale; the simulated clock maps each run onto the paper's
// wall-clock baseline so the failure dynamics match.
type Fig8Result struct {
	Cells []Fig8Cell
}

// simTimes builds the cluster-model checkpoint/recovery cost functions
// for a method at a paper scale, extrapolating measured ratios.
func simTimes(method string, procs int, lossyScheme bool, r ratios) (func(fti.Info) float64, func(fti.Info) float64) {
	mdl := cluster.Bebop()
	base := cluster.PaperBaselines()[method]
	oneVec := base.PerProcMB / float64(base.CkptVectors) * 1e6 * float64(procs)
	tradRaw := oneVec * float64(base.CkptVectors)
	if lossyScheme {
		return func(fti.Info) float64 {
				return mdl.CheckpointSeconds(procs, oneVec/r.Lossy, oneVec, cluster.LossyCompressed)
			}, func(fti.Info) float64 {
				return mdl.RecoverySeconds(procs, oneVec/r.Lossy, oneVec, cluster.LossyCompressed)
			}
	}
	return func(fti.Info) float64 {
			return mdl.CheckpointSeconds(procs, tradRaw, tradRaw, cluster.Uncompressed)
		}, func(fti.Info) float64 {
			return mdl.RecoverySeconds(procs, tradRaw, tradRaw, cluster.Uncompressed)
		}
}

func runFig8(cfg Config) (Result, error) {
	scales := []int{256, 512, 1024, 2048}
	out := &Fig8Result{}
	for _, method := range methodNames {
		base := cluster.PaperBaselines()[method]
		ratio, err := measureRatios(method, gridFor(1024, cfg.Quick), base.LossyErrorBound)
		if err != nil {
			return nil, err
		}
		for _, procs := range scales {
			grid := gridForMethod(method, procs, cfg.Quick)
			a, b := poissonSystem(grid)

			// Failure-free baseline.
			sBase, err := buildSolver(method, a, b, base.RTol)
			if err != nil {
				return nil, err
			}
			resBase, err := solver.RunToConvergence(sBase, solver.Options{MaxIter: 500000}, nil)
			if err != nil {
				return nil, err
			}
			if !resBase.Converged {
				return nil, fmt.Errorf("fig8: %s baseline did not converge at grid %d", method, grid)
			}
			// Map real iterations to the paper's wall clock so the
			// MTTI=1h failure process interacts with the run the way
			// it did on Bebop.
			tit := base.BaselineSeconds / float64(resBase.Iterations)

			s, m, err := managedRun(method, a, b, base.RTol, core.Lossy, base.LossyErrorBound)
			if err != nil {
				return nil, err
			}
			ckptSec, recSec := simTimes(method, procs, true, ratio)
			interval := model.YoungInterval(3600, ckptSec(fti.Info{}))
			outSim, err := sim.Run(sim.Config{
				Stepper:           s,
				Manager:           m,
				X0:                make([]float64, a.Rows),
				TitSeconds:        tit,
				IntervalSeconds:   interval,
				CheckpointSeconds: ckptSec,
				RecoverySeconds:   recSec,
				Failures:          failure.NewInjector(3600, cfg.Seed+int64(procs)),
				MaxIterations:     2000000,
			})
			if err != nil {
				return nil, err
			}
			if !outSim.Converged {
				return nil, fmt.Errorf("fig8: %s lossy run did not converge at grid %d", method, grid)
			}
			out.Cells = append(out.Cells, Fig8Cell{
				Method:      method,
				Procs:       procs,
				Unknowns:    a.Rows,
				FailureFree: resBase.Iterations,
				Lossy:       outSim.ConvergenceIterations,
				Failures:    outSim.Failures,
			})
		}
	}
	return out, nil
}

// Cell returns the entry for (method, procs), nil if absent.
func (r *Fig8Result) Cell(method string, procs int) *Fig8Cell {
	for i := range r.Cells {
		if r.Cells[i].Method == method && r.Cells[i].Procs == procs {
			return &r.Cells[i]
		}
	}
	return nil
}

// WriteText renders the grouped bars of Figure 8.
func (r *Fig8Result) WriteText(w io.Writer) error {
	fmt.Fprintln(w, "Figure 8 — convergence iterations: failure-free vs lossy checkpointing (MTTI = 1 h)")
	fmt.Fprintf(w, "%-8s %6s %9s | %12s %12s %9s %8s\n",
		"method", "procs", "unknowns", "failure-free", "lossy", "failures", "delta")
	for _, c := range r.Cells {
		delta := 100 * float64(c.Lossy-c.FailureFree) / float64(c.FailureFree)
		fmt.Fprintf(w, "%-8s %6d %9d | %12d %12d %9d %+7.1f%%\n",
			c.Method, c.Procs, c.Unknowns, c.FailureFree, c.Lossy, c.Failures, delta)
	}
	fmt.Fprintln(w, "paper: Jacobi +0%, GMRES ≤0% (slightly accelerated), CG ≈+25%")
	return nil
}
