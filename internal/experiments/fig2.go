package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/solver"
	"repro/internal/sz"
)

func init() {
	register("fig2", "Figure 2: average extra iterations of CG per lossy recovery vs relative error bound", runFig2)
}

// Fig2Result reports, per error bound, the average extra iterations a
// single lossy compress/decompress restart costs the CG method,
// expressed as a percentage of the failure-free iteration count
// (paper: 10–25% across 1e-3..1e-6).
type Fig2Result struct {
	Bounds        []float64
	ExtraPercent  []float64
	BaselineIters int
	Trials        int
}

func runFig2(cfg Config) (Result, error) {
	grid := 14
	trials := 8
	if cfg.Quick {
		grid = 8
		trials = 3
	}
	if cfg.Trials > 0 {
		trials = cfg.Trials
	}
	a, b := poissonSystem(grid)
	const rtol = 1e-7 // the paper's CG tolerance

	newCG := func() *solver.CG {
		return solver.NewCG(a, nil, b, nil, solver.SeqSpace{}, solver.Options{RTol: rtol})
	}
	base, err := solver.RunToConvergence(newCG(), solver.Options{MaxIter: 200000}, nil)
	if err != nil {
		return nil, err
	}
	if !base.Converged {
		return nil, fmt.Errorf("fig2: baseline CG did not converge")
	}
	n := base.Iterations

	rng := rand.New(rand.NewSource(cfg.Seed + 2))
	bounds := []float64{1e-3, 1e-4, 1e-5, 1e-6}
	out := &Fig2Result{Bounds: bounds, BaselineIters: n, Trials: trials}
	for _, eb := range bounds {
		totalExtra := 0
		for trial := 0; trial < trials; trial++ {
			// "Randomly select an iteration to compress the
			// approximate solution vector, decompress it to continue
			// the computations, and count the extra iterations" §4.4.3.
			t := n/10 + rng.Intn(n*8/10)
			s := newCG()
			for i := 0; i < t; i++ {
				s.Step()
			}
			comp, err := sz.Compress(s.X(), sz.Params{Mode: sz.PWRel, ErrorBound: eb})
			if err != nil {
				return nil, err
			}
			xr, err := sz.Decompress(comp)
			if err != nil {
				return nil, err
			}
			s.Restart(xr)
			res, err := solver.RunToConvergence(s, solver.Options{MaxIter: 400000}, nil)
			if err != nil {
				return nil, err
			}
			if !res.Converged {
				return nil, fmt.Errorf("fig2: CG did not re-converge after lossy restart (eb=%g)", eb)
			}
			extra := res.Iterations - n
			if extra < 0 {
				extra = 0
			}
			totalExtra += extra
		}
		out.ExtraPercent = append(out.ExtraPercent,
			100*float64(totalExtra)/float64(trials)/float64(n))
	}
	return out, nil
}

// WriteText renders the bar chart data.
func (r *Fig2Result) WriteText(w io.Writer) error {
	fmt.Fprintln(w, "Figure 2 — average extra iterations of CG per lossy recovery")
	fmt.Fprintf(w, "baseline: %d iterations to converge; %d trials per bound\n", r.BaselineIters, r.Trials)
	for i, eb := range r.Bounds {
		fmt.Fprintf(w, "  rel. error bound %.0e: %6.1f%% extra iterations\n", eb, r.ExtraPercent[i])
	}
	fmt.Fprintln(w, "paper: 10%–25% across these bounds")
	return nil
}
