package experiments

import (
	"fmt"
	"io"

	"repro/internal/model"
)

func init() {
	register("fig1", "Figure 1: expected fault tolerance overhead vs failure rate and checkpoint time", runFig1)
}

// Fig1Result tabulates Eq. (5) over the paper's grid: λ from 0 to 3.5
// failures/hour, Tckp from 0 to 140 s.
type Fig1Result struct {
	Lambdas []float64 // per hour
	Tckps   []float64 // seconds
	Grid    []model.SurfacePoint
}

func runFig1(cfg Config) (Result, error) {
	lambdas := []float64{0.35, 0.7, 1.05, 1.4, 1.75, 2.1, 2.45, 2.8, 3.15, 3.5}
	tckps := []float64{20, 40, 60, 80, 100, 120, 140}
	return &Fig1Result{
		Lambdas: lambdas,
		Tckps:   tckps,
		Grid:    model.OverheadSurface(lambdas, tckps),
	}, nil
}

// At returns the overhead at a grid point.
func (r *Fig1Result) At(lambdaPerHour, tckp float64) float64 {
	for _, p := range r.Grid {
		if p.LambdaPerHour == lambdaPerHour && p.TckpSeconds == tckp {
			return p.Overhead
		}
	}
	return -1
}

// WriteText renders the surface as a table (rows: Tckp, cols: λ/hour).
func (r *Fig1Result) WriteText(w io.Writer) error {
	fmt.Fprintln(w, "Figure 1 — expected fault tolerance overhead (fraction of productive time)")
	fmt.Fprintf(w, "%10s", "Tckp(s)\\λ/h")
	for _, l := range r.Lambdas {
		fmt.Fprintf(w, "%8.2f", l)
	}
	fmt.Fprintln(w)
	for _, tc := range r.Tckps {
		fmt.Fprintf(w, "%10.0f", tc)
		for _, l := range r.Lambdas {
			fmt.Fprintf(w, "%8.3f", r.At(l, tc))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "paper anchor: overhead ≈ 0.40 at λ=1/h, Tckp=120 s; model gives %.3f\n",
		model.ExpectedOverheadRatio(1.0/3600, 120))
	return nil
}
