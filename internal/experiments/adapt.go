package experiments

import (
	"fmt"
	"io"
	"math"

	"repro/internal/adapt"
	"repro/internal/core"
	"repro/internal/failure"
	"repro/internal/fti"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/solver"
	"repro/internal/sparse"
	"repro/internal/sz"
)

func init() {
	register("adapt", "Adaptive interval: fixed-interval sweep vs online controller (steady and drifting compression ratio, lossless and lossy schemes)", runAdapt)
}

// AdaptScenario is one cost regime of the fixed-vs-adaptive sweep.
type AdaptScenario struct {
	Name           string
	Scheme         string // checkpoint scheme the scenario runs under
	FixedIntervals []float64
	FixedSeconds   []float64 // mean simulated wall-clock per fixed interval
	BestInterval   float64
	BestSeconds    float64
	ProbeInterval  float64 // Young's interval from the probe-time cost (the offline recipe)
	ProbeSeconds   float64
	AdaptiveSecs   float64
	FinalInterval  float64 // last planned interval of the first seed's adaptive run

	// Convergence-delay accounting: lossy restarts resume from a
	// perturbed state, so failures cost extra iterations on top of the
	// rolled-back work — wall time alone under-reports the lossy
	// scheme's overhead. BaselineIters is the failure-free iteration
	// count, AdaptiveIters the adaptive runs' mean under injected
	// failures, ConvergenceDelay their difference.
	BaselineIters    float64
	AdaptiveIters    float64
	ConvergenceDelay float64
}

// AdaptResult is the Table-3-style overhead comparison between fixed
// checkpoint intervals and the online controller: mean simulated
// wall-clock over a deterministic seed set with shared failure traces,
// under a steady checkpoint cost and under a compression ratio that
// degrades mid-run (the Theorem-3 adaptive bound tightening as the
// residual drops).
type AdaptResult struct {
	MTTI      float64
	Seeds     int
	Scenarios []AdaptScenario
}

// adaptMTTI is the injected failure rate of the sweep; the controller
// is seeded with a 1.5× pessimistic prior and learns the rest online.
const adaptMTTI = 150.0

func adaptControllerConfig() adapt.Config {
	return adapt.Config{PriorMTTI: 100, PriorWeight: 1}
}

// adaptTrace pre-draws one seed's absolute failure times so every
// policy under a seed faces the identical trace.
func adaptTrace(seed int64) []float64 {
	inj := failure.NewInjector(adaptMTTI, seed)
	var times []float64
	now := 0.0
	for now < 50000 {
		now = inj.Next(now)
		times = append(times, now)
	}
	return times
}

// runAdaptOnce executes one Jacobi run under the given checkpoint
// scheme: fixed cadence when fixedInterval > 0, adaptive when ctrl is
// non-nil. ckptCost maps the live solver's residual to the
// per-checkpoint cost; trace is the shared failure schedule (nil for a
// failure-free baseline). Lossless restores are exact-state (the
// regime the Young/Daly model is derived for); lossy restores resume
// from the decompressed approximation and pay a convergence delay.
func runAdaptOnce(grid int, fixedInterval float64, ctrl *adapt.Controller,
	scheme core.Scheme, trace []float64, ckptCost func(rnorm float64) float64) (*sim.Outcome, error) {
	a := sparse.Poisson2D(grid)
	b := sparse.OnesRHS(a.Rows)
	s, err := solver.NewStationary(solver.KindJacobi, a, b, nil, 0, solver.Options{RTol: 1e-7})
	if err != nil {
		return nil, err
	}
	m, err := core.NewManager(core.Config{
		Scheme:   scheme,
		SZParams: sz.Params{Mode: sz.PWRel, ErrorBound: 1e-4},
	}, fti.NewMemStorage(), s)
	if err != nil {
		return nil, err
	}
	return sim.Run(sim.Config{
		Stepper:           s,
		Manager:           m,
		X0:                make([]float64, a.Rows),
		TitSeconds:        1,
		IntervalSeconds:   fixedInterval,
		Controller:        ctrl,
		CheckpointSeconds: func(fti.Info) float64 { return ckptCost(s.ResidualNorm()) },
		RecoverySeconds:   func(fti.Info) float64 { return 8 },
		FailureSchedule:   trace,
		MaxIterations:     500000,
	})
}

func runAdapt(cfg Config) (Result, error) {
	grid := 16
	trials := 6
	if cfg.Quick {
		grid = 12
		trials = 3
	}
	if cfg.Trials > 0 {
		trials = cfg.Trials
	}
	// Consecutive seeds from cfg.Seed: each seed is one shared failure
	// trace every policy in the sweep runs against.
	seeds := make([]int64, trials)
	for i := range seeds {
		seeds[i] = cfg.Seed + int64(i)
	}
	const steadyCost, probeCost, lateCost, lossyCost = 6.0, 1.5, 12.0, 2.0
	scenarios := []struct {
		name      string
		scheme    core.Scheme
		probeCost float64 // the cost an offline probe at run start sees
		cost      func(rnorm float64) float64
	}{
		{"steady", core.Lossless, steadyCost, func(float64) float64 { return steadyCost }},
		// The ratio-drift regime: checkpoints are cheap while the
		// residual is large (loose bound, high compression ratio) and
		// 8× costlier once it passes 1e-2 — the drift the Theorem-3
		// adaptive GMRES bound produces as it tightens with convergence.
		{"ratio-drift", core.Lossless, probeCost, func(rnorm float64) float64 {
			if rnorm > 1e-2 {
				return probeCost
			}
			return lateCost
		}},
		// The lossy scheme the paper actually advocates — previously
		// excluded from this sweep because its restores are inexact. Its
		// checkpoints are cheap (SZ-compressed) but every restore resumes
		// from a perturbed state, so the row carries the convergence-delay
		// term alongside wall time.
		{"lossy-steady", core.Lossy, lossyCost, func(float64) float64 { return lossyCost }},
	}

	mean := func(fixedInterval float64, ctrlFor func() (*adapt.Controller, error),
		scheme core.Scheme, cost func(rnorm float64) float64) (float64, float64, *sim.Outcome, error) {
		var sum, iters float64
		var first *sim.Outcome
		for _, seed := range seeds {
			var ctrl *adapt.Controller
			if ctrlFor != nil {
				var err error
				ctrl, err = ctrlFor()
				if err != nil {
					return 0, 0, nil, err
				}
			}
			out, err := runAdaptOnce(grid, fixedInterval, ctrl, scheme, adaptTrace(seed), cost)
			if err != nil {
				return 0, 0, nil, err
			}
			if !out.Converged {
				return 0, 0, nil, fmt.Errorf("adapt: seed %d interval %g did not converge", seed, fixedInterval)
			}
			if first == nil {
				first = out
			}
			sum += out.SimSeconds
			iters += float64(out.IterationsExecuted)
		}
		n := float64(len(seeds))
		return sum / n, iters / n, first, nil
	}

	out := &AdaptResult{MTTI: adaptMTTI, Seeds: len(seeds)}
	fixedIntervals := []float64{20, 30, 42, 55, 70, 90, 120}
	for _, sc := range scenarios {
		row := AdaptScenario{Name: sc.name, Scheme: schemeName(sc.scheme), FixedIntervals: fixedIntervals}
		row.BestSeconds = math.Inf(1)
		// Failure-free baseline: fixes the convergence-delay zero point.
		base, err := runAdaptOnce(grid, fixedIntervals[len(fixedIntervals)-1], nil, sc.scheme, nil, sc.cost)
		if err != nil {
			return nil, err
		}
		if !base.Converged {
			return nil, fmt.Errorf("adapt: %s failure-free baseline did not converge", sc.name)
		}
		row.BaselineIters = float64(base.IterationsExecuted)
		for _, iv := range fixedIntervals {
			m, _, _, err := mean(iv, nil, sc.scheme, sc.cost)
			if err != nil {
				return nil, err
			}
			row.FixedSeconds = append(row.FixedSeconds, m)
			if m < row.BestSeconds {
				row.BestSeconds, row.BestInterval = m, iv
			}
		}
		row.ProbeInterval = model.YoungInterval(adaptMTTI, sc.probeCost)
		probeSecs, _, _, err := mean(row.ProbeInterval, nil, sc.scheme, sc.cost)
		if err != nil {
			return nil, err
		}
		row.ProbeSeconds = probeSecs
		adaptive, adaptIters, first, err := mean(0, func() (*adapt.Controller, error) {
			return adapt.New(adaptControllerConfig())
		}, sc.scheme, sc.cost)
		if err != nil {
			return nil, err
		}
		row.AdaptiveSecs = adaptive
		row.AdaptiveIters = adaptIters
		row.ConvergenceDelay = adaptIters - row.BaselineIters
		if n := len(first.IntervalPlans); n > 0 {
			row.FinalInterval = first.IntervalPlans[n-1].Interval
		}
		out.Scenarios = append(out.Scenarios, row)
	}
	return out, nil
}

// schemeName renders the core scheme for the result row.
func schemeName(s core.Scheme) string {
	switch s {
	case core.Lossy:
		return "lossy"
	case core.Lossless:
		return "lossless"
	case core.Traditional:
		return "traditional"
	}
	return fmt.Sprintf("Scheme(%d)", int(s))
}

// Scenario returns the named scenario row (nil if absent).
func (r *AdaptResult) Scenario(name string) *AdaptScenario {
	for i := range r.Scenarios {
		if r.Scenarios[i].Name == name {
			return &r.Scenarios[i]
		}
	}
	return nil
}

// WriteText renders the sweep in the paper's overhead-table shape.
func (r *AdaptResult) WriteText(w io.Writer) error {
	fmt.Fprintf(w, "Adaptive checkpoint interval — Jacobi, MTTI %.0f s, %d shared failure traces\n", r.MTTI, r.Seeds)
	for _, sc := range r.Scenarios {
		fmt.Fprintf(w, "%s (%s):\n", sc.Name, sc.Scheme)
		fmt.Fprintf(w, "  %-14s", "fixed τ (s)")
		for _, iv := range sc.FixedIntervals {
			fmt.Fprintf(w, "%9.0f", iv)
		}
		fmt.Fprintln(w)
		fmt.Fprintf(w, "  %-14s", "mean wall (s)")
		for _, v := range sc.FixedSeconds {
			fmt.Fprintf(w, "%9.1f", v)
		}
		fmt.Fprintln(w)
		fmt.Fprintf(w, "  probe-Young τ=%.1f s → %.1f s;  best fixed τ=%.0f s → %.1f s\n",
			sc.ProbeInterval, sc.ProbeSeconds, sc.BestInterval, sc.BestSeconds)
		fmt.Fprintf(w, "  adaptive → %.1f s (%+.1f%% vs best fixed, %+.1f%% vs probe-Young; final τ=%.0f s)\n",
			sc.AdaptiveSecs, 100*(sc.AdaptiveSecs/sc.BestSeconds-1), 100*(sc.AdaptiveSecs/sc.ProbeSeconds-1), sc.FinalInterval)
		fmt.Fprintf(w, "  convergence delay: %.0f extra iterations (failure-free %.0f → adaptive mean %.0f)\n",
			sc.ConvergenceDelay, sc.BaselineIters, sc.AdaptiveIters)
	}
	fmt.Fprintln(w, "expected: adaptive within 5% of the best fixed interval while never told C, R, or λ;")
	fmt.Fprintln(w, "          under ratio drift the probe-derived interval is stale and adaptive wins outright")
	return nil
}
