package experiments

import (
	"fmt"
	"io"

	"repro/internal/cluster"
	"repro/internal/core"
)

func init() {
	register("fig4", "Figure 4: Jacobi checkpoint/recovery time vs processes", figCkptTimes("jacobi", "Figure 4"))
	register("fig5", "Figure 5: GMRES checkpoint/recovery time vs processes", figCkptTimes("gmres", "Figure 5"))
	register("fig6", "Figure 6: CG checkpoint/recovery time vs processes", figCkptTimes("cg", "Figure 6"))
}

// CkptTimesResult reproduces Figures 4–6: the average time of one
// checkpoint and one recovery for a method, per scheme, across the
// weak-scaling grid, using measured compression ratios and the
// calibrated cluster model.
type CkptTimesResult struct {
	Figure string
	Method string
	Procs  []int
	Ckpt   map[core.Scheme][]float64
	Rec    map[core.Scheme][]float64
	Ratios ratios
}

func figCkptTimes(method, figure string) Runner {
	return func(cfg Config) (Result, error) {
		measGrid := 16
		if cfg.Quick {
			measGrid = 8
		}
		base := cluster.PaperBaselines()[method]
		r, err := measureRatios(method, measGrid, base.LossyErrorBound)
		if err != nil {
			return nil, err
		}
		mdl := cluster.Bebop()
		out := &CkptTimesResult{
			Figure: figure,
			Method: method,
			Ckpt:   map[core.Scheme][]float64{},
			Rec:    map[core.Scheme][]float64{},
			Ratios: r,
		}
		for _, sc := range cluster.Table3ProblemSizes() {
			out.Procs = append(out.Procs, sc.Procs)
			elemsPerProc := float64(sc.N) * float64(sc.N) * float64(sc.N) / float64(sc.Procs)
			oneVec := elemsPerProc * 8 * float64(sc.Procs) // bytes, one global vector
			tradRaw := oneVec * float64(base.CkptVectors)
			// Traditional and lossless move the full dynamic state;
			// lossy moves only x.
			out.Ckpt[core.Traditional] = append(out.Ckpt[core.Traditional],
				mdl.CheckpointSeconds(sc.Procs, tradRaw, tradRaw, cluster.Uncompressed))
			out.Rec[core.Traditional] = append(out.Rec[core.Traditional],
				mdl.RecoverySeconds(sc.Procs, tradRaw, tradRaw, cluster.Uncompressed))
			out.Ckpt[core.Lossless] = append(out.Ckpt[core.Lossless],
				mdl.CheckpointSeconds(sc.Procs, tradRaw/r.Lossless, tradRaw, cluster.LosslessCompressed))
			out.Rec[core.Lossless] = append(out.Rec[core.Lossless],
				mdl.RecoverySeconds(sc.Procs, tradRaw/r.Lossless, tradRaw, cluster.LosslessCompressed))
			out.Ckpt[core.Lossy] = append(out.Ckpt[core.Lossy],
				mdl.CheckpointSeconds(sc.Procs, oneVec/r.Lossy, oneVec, cluster.LossyCompressed))
			out.Rec[core.Lossy] = append(out.Rec[core.Lossy],
				mdl.RecoverySeconds(sc.Procs, oneVec/r.Lossy, oneVec, cluster.LossyCompressed))
		}
		return out, nil
	}
}

// CkptAt returns the checkpoint seconds for a scheme at a process
// count (-1 if absent).
func (r *CkptTimesResult) CkptAt(s core.Scheme, procs int) float64 {
	for i, p := range r.Procs {
		if p == procs {
			return r.Ckpt[s][i]
		}
	}
	return -1
}

// RecAt returns the recovery seconds for a scheme at a process count.
func (r *CkptTimesResult) RecAt(s core.Scheme, procs int) float64 {
	for i, p := range r.Procs {
		if p == procs {
			return r.Rec[s][i]
		}
	}
	return -1
}

// WriteText renders both panels of the figure.
func (r *CkptTimesResult) WriteText(w io.Writer) error {
	fmt.Fprintf(w, "%s — average time of one checkpoint and recovery, %s\n", r.Figure, r.Method)
	fmt.Fprintf(w, "(measured ratios: lossless %.2fx, lossy %.1fx)\n", r.Ratios.Lossless, r.Ratios.Lossy)
	fmt.Fprintf(w, "%6s | %10s %10s %10s | %10s %10s %10s\n", "procs",
		"ckpt-trad", "ckpt-less", "ckpt-lossy", "rec-trad", "rec-less", "rec-lossy")
	for i, p := range r.Procs {
		fmt.Fprintf(w, "%6d | %10.1f %10.1f %10.1f | %10.1f %10.1f %10.1f\n", p,
			r.Ckpt[core.Traditional][i], r.Ckpt[core.Lossless][i], r.Ckpt[core.Lossy][i],
			r.Rec[core.Traditional][i], r.Rec[core.Lossless][i], r.Rec[core.Lossy][i])
	}
	return nil
}
