package experiments

import (
	"fmt"
	"io"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/failure"
	"repro/internal/fti"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/solver"
)

func init() {
	register("fig10", "Figure 10: experimental vs expected fault tolerance overhead with optimal intervals", runFig10)
}

// Fig10Cell is one method × scheme outcome.
type Fig10Cell struct {
	Method          string
	Scheme          core.Scheme
	ExperimentalPct float64 // measured FT overhead / baseline productive time
	ExpectedPct     float64 // model Eq. (4)/(8)
	CkptSeconds     float64 // one checkpoint at 2,048 procs
	IntervalSeconds float64 // Young-optimal interval
	MeanFailures    float64
	Trials          int
}

// Fig10Result reproduces the paper's headline experiment (§5.4): the
// average fault tolerance overhead of the three schemes with their
// Young-optimal checkpoint intervals under injected failures
// (MTTI = 1 h) at the 2,048-process scale, next to the performance
// model's expectation.
type Fig10Result struct {
	Cells []Fig10Cell
}

func runFig10(cfg Config) (Result, error) {
	trials := 10
	measGrid := 16
	if cfg.Quick {
		trials = 3
		measGrid = 8
	}
	if cfg.Trials > 0 {
		trials = cfg.Trials
	}
	const procs = 2048
	mdl := cluster.Bebop()
	out := &Fig10Result{}

	for _, method := range methodNames {
		base := cluster.PaperBaselines()[method]
		ratio, err := measureRatios(method, measGrid, base.LossyErrorBound)
		if err != nil {
			return nil, err
		}
		a, b := poissonSystem(simGrid(method, cfg.Quick))
		sBase, err := buildSolver(method, a, b, base.RTol)
		if err != nil {
			return nil, err
		}
		resBase, err := solver.RunToConvergence(sBase, solver.Options{MaxIter: 500000}, nil)
		if err != nil || !resBase.Converged {
			return nil, fmt.Errorf("fig10: %s baseline failed: %v", method, err)
		}
		tit := base.BaselineSeconds / float64(resBase.Iterations)
		baselineSeconds := base.BaselineSeconds

		oneVec := base.PerProcMB / float64(base.CkptVectors) * 1e6 * procs
		tradRaw := oneVec * float64(base.CkptVectors)

		for _, scheme := range schemeOrder {
			var ckptSec, recSec float64
			switch scheme {
			case core.Traditional:
				ckptSec = mdl.CheckpointSeconds(procs, tradRaw, tradRaw, cluster.Uncompressed)
				recSec = mdl.RecoverySeconds(procs, tradRaw, tradRaw, cluster.Uncompressed)
			case core.Lossless:
				ckptSec = mdl.CheckpointSeconds(procs, tradRaw/ratio.Lossless, tradRaw, cluster.LosslessCompressed)
				recSec = mdl.RecoverySeconds(procs, tradRaw/ratio.Lossless, tradRaw, cluster.LosslessCompressed)
			case core.Lossy:
				ckptSec = mdl.CheckpointSeconds(procs, oneVec/ratio.Lossy, oneVec, cluster.LossyCompressed)
				recSec = mdl.RecoverySeconds(procs, oneVec/ratio.Lossy, oneVec, cluster.LossyCompressed)
			}
			interval := model.YoungInterval(3600, ckptSec)

			var sumOverhead float64
			var sumFailures int
			for trial := 0; trial < trials; trial++ {
				s, m, err := managedRun(method, a, b, base.RTol, scheme, base.LossyErrorBound)
				if err != nil {
					return nil, err
				}
				outSim, err := sim.Run(sim.Config{
					Stepper:           s,
					Manager:           m,
					X0:                make([]float64, a.Rows),
					TitSeconds:        tit,
					IntervalSeconds:   interval,
					CheckpointSeconds: func(fti.Info) float64 { return ckptSec },
					RecoverySeconds:   func(fti.Info) float64 { return recSec },
					Failures:          failure.NewInjector(3600, cfg.Seed+int64(100*trial)+int64(len(method))),
					MaxIterations:     5000000,
				})
				if err != nil {
					return nil, err
				}
				if !outSim.Converged {
					return nil, fmt.Errorf("fig10: %s/%s trial %d did not converge", method, scheme, trial)
				}
				sumOverhead += outSim.FaultToleranceOverhead(baselineSeconds)
				sumFailures += outSim.Failures
			}
			meanOverheadPct := 100 * sumOverhead / float64(trials) / baselineSeconds

			lambda := 1.0 / 3600
			var expected float64
			if scheme == core.Lossy {
				// The paper's N′ values are absolute iteration counts
				// at its problem scale; what transfers across scales
				// is the *fraction* of the total iteration count
				// (Jacobi 6/3941, GMRES 0, CG 594/2400 ≈ 25%).
				nPrime := nPrimeFraction(method) * float64(resBase.Iterations)
				expected = model.LossyOverheadRatio(lambda, ckptSec, nPrime, tit)
			} else {
				expected = model.ExpectedOverheadRatio(lambda, ckptSec)
			}
			out.Cells = append(out.Cells, Fig10Cell{
				Method:          method,
				Scheme:          scheme,
				ExperimentalPct: meanOverheadPct,
				ExpectedPct:     100 * expected,
				CkptSeconds:     ckptSec,
				IntervalSeconds: interval,
				MeanFailures:    float64(sumFailures) / float64(trials),
				Trials:          trials,
			})
		}
	}
	return out, nil
}

// Cell returns the entry for (method, scheme), nil if absent.
func (r *Fig10Result) Cell(method string, scheme core.Scheme) *Fig10Cell {
	for i := range r.Cells {
		if r.Cells[i].Method == method && r.Cells[i].Scheme == scheme {
			return &r.Cells[i]
		}
	}
	return nil
}

// Reduction returns the relative reduction of lossy FT overhead vs the
// given scheme for a method, in percent (paper: 23–70% vs traditional,
// 20–58% vs lossless).
func (r *Fig10Result) Reduction(method string, vs core.Scheme) float64 {
	lossy := r.Cell(method, core.Lossy)
	ref := r.Cell(method, vs)
	if lossy == nil || ref == nil || ref.ExperimentalPct == 0 {
		return 0
	}
	return 100 * (ref.ExperimentalPct - lossy.ExperimentalPct) / ref.ExperimentalPct
}

// WriteText renders the paired experimental/expected bars.
func (r *Fig10Result) WriteText(w io.Writer) error {
	fmt.Fprintln(w, "Figure 10 — fault tolerance overhead, optimal intervals, MTTI = 1 h, 2,048 procs")
	fmt.Fprintf(w, "%-8s %-12s | %8s %8s | %10s %10s %9s\n",
		"method", "scheme", "exp.", "model", "Tckp(s)", "intvl(s)", "failures")
	for _, c := range r.Cells {
		fmt.Fprintf(w, "%-8s %-12s | %7.1f%% %7.1f%% | %10.1f %10.0f %9.1f\n",
			c.Method, c.Scheme, c.ExperimentalPct, c.ExpectedPct,
			c.CkptSeconds, c.IntervalSeconds, c.MeanFailures)
	}
	for _, m := range methodNames {
		fmt.Fprintf(w, "%s: lossy reduces FT overhead by %.0f%% vs traditional, %.0f%% vs lossless\n",
			m, r.Reduction(m, core.Traditional), r.Reduction(m, core.Lossless))
	}
	fmt.Fprintln(w, "paper: reductions of 23–70% vs traditional and 20–58% vs lossless")
	return nil
}
