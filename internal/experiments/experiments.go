// Package experiments reproduces every table and figure of the
// paper's evaluation (§5). Each experiment is a named driver that
// produces a structured result and can render itself as text in the
// shape of the paper's artifact (same rows, same series). The cmd/repro
// binary and the top-level benchmarks are thin wrappers around this
// registry.
package experiments

import (
	"fmt"
	"io"
	"sort"
)

// Config tunes an experiment run.
type Config struct {
	// Quick shrinks problem sizes and trial counts so the whole suite
	// runs in CI time; the full configuration is the default for
	// cmd/repro.
	Quick bool
	// Seed makes stochastic experiments reproducible.
	Seed int64
	// Trials overrides the per-experiment trial count (0 = default).
	Trials int
}

// Result is a rendered experiment outcome.
type Result interface {
	// WriteText renders the paper-shaped table/series.
	WriteText(w io.Writer) error
}

// Runner executes one experiment.
type Runner func(cfg Config) (Result, error)

// registryEntry describes one reproducible artifact.
type registryEntry struct {
	ID    string
	Title string
	Run   Runner
}

var registry []registryEntry

func register(id, title string, run Runner) {
	registry = append(registry, registryEntry{ID: id, Title: title, Run: run})
}

// IDs returns all experiment IDs in a stable order.
func IDs() []string {
	ids := make([]string, len(registry))
	for i, e := range registry {
		ids[i] = e.ID
	}
	sort.Strings(ids)
	return ids
}

// Title returns the human title for an experiment ID.
func Title(id string) string {
	for _, e := range registry {
		if e.ID == id {
			return e.Title
		}
	}
	return ""
}

// Run executes the experiment with the given ID.
func Run(id string, cfg Config) (Result, error) {
	for _, e := range registry {
		if e.ID == id {
			return e.Run(cfg)
		}
	}
	return nil, fmt.Errorf("experiments: unknown experiment %q (known: %v)", id, IDs())
}
