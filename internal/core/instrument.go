package core

import (
	"repro/internal/obs"
)

// managerObs is the Manager's observability bundle: checkpoint
// lifecycle counters, per-tier recovery counters, the recovery-chain
// latency histogram, the realized interval-window gauge, and the
// trace sink for tiered-recovery spans. A nil bundle (the default)
// makes every hook a no-op.
type managerObs struct {
	committed   *obs.Counter
	aborted     *obs.Counter
	degraded    *obs.Counter
	recoverySec *obs.Histogram
	window      *obs.Gauge
	tiers       [TierRestartZero + 1]*obs.Counter
	tr          *obs.Tracer
}

// Instrument attaches metric and trace sinks to the Manager and to
// every subsystem it owns: the checkpointer (sync or async pipeline),
// the ABFT guard, and the adaptive-interval controller. Passing nil
// for both detaches. Only safe while no checkpoint is in flight.
//
// Instrumentation is strictly an observer — it never adds controller
// calls, clock reads that feed decisions, or extra storage traffic —
// so an instrumented Manager converges bitwise-identically to an
// uninstrumented one.
func (m *Manager) Instrument(reg *obs.Registry, tr *obs.Tracer) {
	if m.async != nil {
		m.async.Instrument(reg, tr)
	} else {
		m.ckpt.Instrument(reg, tr)
	}
	if m.abft != nil {
		m.abft.Instrument(reg)
	}
	if m.ctrl != nil {
		m.ctrl.Instrument(reg)
	}
	if reg == nil && tr == nil {
		m.mobs = nil
		return
	}
	mo := &managerObs{
		committed:   reg.Counter(obs.MCoreCheckpointsCommittedTotal),
		aborted:     reg.Counter(obs.MCoreCheckpointsAbortedTotal),
		degraded:    reg.Counter(obs.MCoreDegradedSavesTotal),
		recoverySec: reg.Histogram(obs.MCoreRecoverySeconds, obs.LatencyBuckets()),
		window:      reg.Gauge(obs.MCoreIntervalSeconds),
		tr:          tr,
	}
	for t := TierABFT; t <= TierRestartZero; t++ {
		mo.tiers[t] = reg.With(obs.L("tier", t.String())).Counter(obs.MCoreRecoveriesTotal)
	}
	m.mobs = mo
}

func (o *managerObs) observeCommit() {
	if o == nil {
		return
	}
	o.committed.Inc()
}

// observeDegraded counts a save swallowed by degraded-writes mode.
func (o *managerObs) observeDegraded() {
	if o == nil {
		return
	}
	o.degraded.Inc()
}

func (o *managerObs) observeAbort() {
	if o == nil {
		return
	}
	o.aborted.Inc()
}

// observeWindow records the realized interval between consecutive
// checkpoint captures (adaptive-interval runs, where the Manager has
// a clock).
func (o *managerObs) observeWindow(sec float64) {
	if o == nil {
		return
	}
	o.window.Set(sec)
}

// observeRecovery counts one completed recovery under the tier that
// finally restored the solver and records the whole chain's duration.
func (o *managerObs) observeRecovery(tier RecoveryTier, sec float64) {
	if o == nil {
		return
	}
	if tier >= 0 && int(tier) < len(o.tiers) {
		o.tiers[tier].Inc()
	}
	o.recoverySec.Observe(sec)
}

// traceStart returns the trace-relative start time of a recovery
// chain about to run (0 when tracing is off).
func (o *managerObs) traceStart() float64 {
	if o == nil {
		return 0
	}
	return o.tr.Now()
}

// finishTiered records a finished recovery chain: the per-tier
// counter and chain histogram, plus one span per tier attempt laid
// out sequentially from the chain's start — the attempts did run
// back-to-back, so the measured durations tile the chain.
func (o *managerObs) finishTiered(rep *RecoveryReport, start, totalSec float64) {
	if o == nil {
		return
	}
	o.observeRecovery(rep.Used, totalSec)
	if o.tr == nil {
		return
	}
	cursor := start
	for _, att := range rep.Attempts {
		args := map[string]float64{"accepted": 0}
		if att.Accepted {
			args["accepted"] = 1
		}
		if att.Iterations > 0 {
			args["iterations"] = float64(att.Iterations)
		}
		if att.ReadBytes > 0 {
			args["read_bytes"] = float64(att.ReadBytes)
		}
		if att.Seq > 0 {
			args["seq"] = float64(att.Seq)
		}
		o.tr.Complete(obs.TrackRecovery, obs.CatRecovery,
			obs.SpanTierPrefix+att.Tier.String(), cursor, att.Seconds, args)
		cursor += att.Seconds
	}
}
