package core

import (
	"repro/internal/adapt"
	"repro/internal/quality"
)

// InstrumentQuality attaches the numerical-telemetry auditor: every
// committed save's vectors pass through its (sampled) distortion
// audit, and recoveries are marked for convergence-delay attribution.
// Passing nil detaches. Only safe while no checkpoint is in flight.
//
// Like Instrument, this is strictly an observer: the auditor never
// mutates solver or checkpoint state, so a quality-instrumented run
// converges bitwise-identically to an uninstrumented one. The driver
// still owns the residual feed (quality.Auditor.ObserveResidual once
// per iteration) — the Manager cannot see iterations.
func (m *Manager) InstrumentQuality(qa *quality.Auditor) {
	m.qa = qa
	m.ckpt.SetSaveAudit(qa)
}

// Quality returns the attached auditor (nil when uninstrumented).
func (m *Manager) Quality() *quality.Auditor { return m.qa }

// observeQualityCommit forwards a committed checkpoint's audited
// distortion to the adaptive-interval controller's quality feed
// (plumbing only — the controller's planning ignores it).
func (m *Manager) observeQualityCommit(seq, rawBytes, bytes int) {
	if m.qa == nil || m.ctrl == nil {
		return
	}
	d := m.qa.DistortionFor(seq)
	if d == nil {
		return
	}
	o := adapt.QualityObs{Relative: d.Relative}
	if m.clock != nil {
		o.When = m.clock()
	}
	if d.RequestedBound > 0 {
		o.BoundRatio = d.MaxError / d.RequestedBound
	}
	if bytes > 0 {
		o.CompressionRatio = float64(rawBytes) / float64(bytes)
	}
	m.ctrl.ObserveQuality(o)
}
