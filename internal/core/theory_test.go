package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/model"
	"repro/internal/solver"
	"repro/internal/sparse"
	"repro/internal/sz"
	"repro/internal/vec"
)

// TestTheorem2BoundHoldsEmpirically validates Theorem 2 against real
// Jacobi executions: the measured extra iterations after a lossy
// restart at iteration t must not exceed the analytic bound
// N′(t) = t − log_R(Rᵗ + eb), with R estimated from the failure-free
// run itself.
func TestTheorem2BoundHoldsEmpirically(t *testing.T) {
	a := sparse.Poisson2D(10)
	xe := sparse.SmoothField(a.Rows, 61)
	b := sparse.RHSForSolution(a, xe)
	const rtol = 1e-8

	mk := func() *solver.Stationary {
		s, err := solver.NewStationary(solver.KindJacobi, a, b, nil, 0, solver.Options{RTol: rtol})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	base := mk()
	r0 := base.ResidualNorm()
	resBase, err := solver.RunToConvergence(base, solver.Options{MaxIter: 100000}, nil)
	if err != nil || !resBase.Converged {
		t.Fatalf("baseline Jacobi failed: %v", err)
	}
	n := resBase.Iterations
	contraction := resBase.FinalResidual / r0
	radius, err := model.EstimateSpectralRadius(contraction, n)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(3))
	const eb = 1e-4
	for trial := 0; trial < 4; trial++ {
		restartAt := n/4 + rng.Intn(n/2)
		s := mk()
		for i := 0; i < restartAt; i++ {
			s.Step()
		}
		comp, err := sz.Compress(s.X(), sz.Params{Mode: sz.PWRel, ErrorBound: eb})
		if err != nil {
			t.Fatal(err)
		}
		xr, err := sz.Decompress(comp)
		if err != nil {
			t.Fatal(err)
		}
		s.Restart(xr)
		res, err := solver.RunToConvergence(s, solver.Options{MaxIter: 200000}, nil)
		if err != nil || !res.Converged {
			t.Fatalf("restarted Jacobi failed: %v", err)
		}
		extra := res.Iterations - n
		bound, err := model.StationaryExtraIterations(radius, eb, float64(restartAt))
		if err != nil {
			t.Fatal(err)
		}
		// The theorem bounds the expected value; allow the bound plus
		// a small discreteness margin per trial.
		if float64(extra) > bound+3 {
			t.Fatalf("trial %d (restart at %d): extra %d exceeds Theorem 2 bound %.1f",
				trial, restartAt, extra, bound)
		}
	}
}

// TestTheorem3ResidualJumpBounded validates Theorem 3 directly: after
// compressing the GMRES iterate with eb = ‖r‖/‖b‖, the new residual is
// of the same order: ‖r′‖ ≤ ‖r‖ + eb·‖b‖ (Eq. 14) ⇒ ‖r′‖ ≤ 2‖r‖·(1+ε).
func TestTheorem3ResidualJumpBounded(t *testing.T) {
	a := sparse.Poisson2D(12)
	xe := sparse.SmoothField(a.Rows, 67)
	b := sparse.RHSForSolution(a, xe)
	bnorm := vec.Norm2(b)
	s := solver.NewGMRES(a, nil, b, nil, 10, solver.SeqSpace{}, solver.Options{RTol: 1e-12})

	r := make([]float64, a.Rows)
	for step := 0; step < 60; step++ {
		s.Step()
		if step%7 != 3 {
			continue
		}
		x := s.CurrentX()
		a.MulVecSub(r, b, x)
		rnorm := vec.Norm2(r)
		if rnorm == 0 {
			break
		}
		eb := model.GMRESAdaptiveBound(rnorm, bnorm, 1)
		if eb == 0 {
			continue
		}
		comp, err := sz.Compress(x, sz.Params{Mode: sz.PWRel, ErrorBound: eb})
		if err != nil {
			t.Fatal(err)
		}
		xr, err := sz.Decompress(comp)
		if err != nil {
			t.Fatal(err)
		}
		a.MulVecSub(r, b, xr)
		rnormAfter := vec.Norm2(r)
		// Eq. (14): ‖r′‖ ≤ ‖r‖ + eb·‖b‖ up to the (1+eb) factor. With
		// eb = ‖r‖/‖b‖ the bound is 2‖r‖; allow 10% slack for the
		// norm inequalities' constants.
		if rnormAfter > 2.2*rnorm {
			t.Fatalf("step %d: residual jumped %g -> %g, beyond Theorem 3's O(‖r‖)",
				step, rnorm, rnormAfter)
		}
	}
}

// TestTheorem1BudgetConsistentWithFig2 checks the paper's §4.3 logic
// end to end at our scale: the measured CG extra iterations per
// recovery (fig2 machinery) stay within the Theorem-1 budget computed
// from our own checkpoint-time model, confirming lossy checkpointing
// is profitable for CG here too.
func TestTheorem1BudgetConsistentWithFig2(t *testing.T) {
	// Checkpoint times at 2,048 procs: traditional CG moves two
	// vectors (≈224 s per our Fig. 6 model), lossy one compressed
	// vector (≈25 s).
	const (
		tckpTrad  = 224.0
		tckpLossy = 25.0
		lambda    = 1.0 / 3600
	)
	a := sparse.Poisson3D(10)
	b := sparse.OnesRHS(a.Rows)
	mk := func() *solver.CG {
		return solver.NewCG(a, nil, b, nil, solver.SeqSpace{}, solver.Options{RTol: 1e-7})
	}
	base, err := solver.RunToConvergence(mk(), solver.Options{MaxIter: 100000}, nil)
	if err != nil || !base.Converged {
		t.Fatalf("baseline CG failed: %v", err)
	}
	// Map to paper wall-clock: Tit = paper CG baseline / our N.
	tit := 35.0 * 60 / float64(base.Iterations)
	budget := model.MaxExtraIterations(tckpTrad, tckpLossy, lambda, tit)

	// One measured lossy recovery.
	s := mk()
	for i := 0; i < base.Iterations/2; i++ {
		s.Step()
	}
	comp, err := sz.Compress(s.X(), sz.Params{Mode: sz.PWRel, ErrorBound: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	xr, err := sz.Decompress(comp)
	if err != nil {
		t.Fatal(err)
	}
	s.Restart(xr)
	res, err := solver.RunToConvergence(s, solver.Options{MaxIter: 200000}, nil)
	if err != nil || !res.Converged {
		t.Fatalf("restarted CG failed: %v", err)
	}
	extra := float64(res.Iterations - base.Iterations)
	if extra > budget {
		t.Fatalf("measured N' = %.0f exceeds Theorem-1 budget %.0f — lossy would not pay off",
			extra, budget)
	}
}

// TestCGDirectionsAConjugate is the textbook CG invariant: successive
// search directions are A-conjugate (pᵢᵀ·A·pⱼ ≈ 0 for i ≠ j).
func TestCGDirectionsAConjugate(t *testing.T) {
	a := sparse.Poisson2D(8)
	xe := sparse.SmoothField(a.Rows, 71)
	b := sparse.RHSForSolution(a, xe)
	s := solver.NewCG(a, nil, b, nil, solver.SeqSpace{}, solver.Options{RTol: 1e-14})

	var dirs [][]float64
	for i := 0; i < 8; i++ {
		dirs = append(dirs, append([]float64(nil), s.P()...))
		s.Step()
	}
	ap := make([]float64, a.Rows)
	scale := vec.Norm2(dirs[0])
	for i := 0; i < len(dirs); i++ {
		a.MulVec(ap, dirs[i])
		for j := i + 1; j < len(dirs); j++ {
			q := vec.Dot(dirs[j], ap)
			norm := vec.Norm2(dirs[i]) * vec.Norm2(dirs[j])
			if norm == 0 {
				continue
			}
			if math.Abs(q)/norm > 1e-8 {
				t.Fatalf("p%d' A p%d = %g not A-conjugate (scale %g)", j, i, q/norm, scale)
			}
		}
	}
}

// TestLossyRestartBreaksThenRebuildsConjugacy documents the paper's
// §4.2 argument: compression destroys the A-conjugacy of the direction
// vector, which is exactly why Algorithm 2 restarts instead of
// patching p.
func TestLossyRestartBreaksThenRebuildsConjugacy(t *testing.T) {
	a := sparse.Poisson2D(8)
	xe := sparse.SmoothField(a.Rows, 73)
	b := sparse.RHSForSolution(a, xe)
	s := solver.NewCG(a, nil, b, nil, solver.SeqSpace{}, solver.Options{RTol: 1e-14})
	for i := 0; i < 5; i++ {
		s.Step()
	}
	pPrev := append([]float64(nil), s.P()...)
	// Corrupt x as a lossy checkpoint would and restart.
	comp, err := sz.Compress(s.X(), sz.Params{Mode: sz.PWRel, ErrorBound: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	xr, err := sz.Decompress(comp)
	if err != nil {
		t.Fatal(err)
	}
	s.Restart(xr)
	// The restarted direction is p = z = M⁻¹r — generally NOT
	// A-conjugate to the old p (conjugacy was intentionally abandoned).
	ap := make([]float64, a.Rows)
	a.MulVec(ap, pPrev)
	q := math.Abs(vec.Dot(s.P(), ap)) / (vec.Norm2(s.P()) * vec.Norm2(pPrev))
	if q < 1e-12 {
		t.Logf("note: old/new directions coincidentally conjugate (q=%g)", q)
	}
	// But conjugacy is re-established among post-restart directions.
	var dirs [][]float64
	for i := 0; i < 6; i++ {
		dirs = append(dirs, append([]float64(nil), s.P()...))
		s.Step()
	}
	for i := 0; i < len(dirs); i++ {
		a.MulVec(ap, dirs[i])
		for j := i + 1; j < len(dirs); j++ {
			q := math.Abs(vec.Dot(dirs[j], ap)) / (vec.Norm2(dirs[i]) * vec.Norm2(dirs[j]))
			if q > 1e-8 {
				t.Fatalf("post-restart directions not A-conjugate: %g", q)
			}
		}
	}
}
