package core

import (
	"testing"

	"repro/internal/fti"
	"repro/internal/solver"
	"repro/internal/sparse"
	"repro/internal/sz"
	"repro/internal/vec"
)

// TestLossyWithZFPEncoder swaps the SZ-like compressor for the
// ZFP-like transform codec via the LossyEncoder override and verifies
// recovery still converges.
func TestLossyWithZFPEncoder(t *testing.T) {
	a := sparse.Poisson2D(10)
	xe := sparse.SmoothField(a.Rows, 51)
	b := sparse.RHSForSolution(a, xe)
	s := solver.NewCG(a, nil, b, nil, solver.SeqSpace{}, solver.Options{RTol: 1e-9})
	m, err := NewManager(Config{
		Scheme:       Lossy,
		Interval:     10,
		LossyEncoder: fti.ZFP{Bound: 1e-5},
	}, fti.NewMemStorage(), s)
	if err != nil {
		t.Fatal(err)
	}
	failed := false
	res, err := solver.RunToConvergence(s, solver.Options{MaxIter: 10000}, func(it int, rnorm float64) error {
		if _, err := m.MaybeCheckpoint(); err != nil {
			return err
		}
		if it == 25 && !failed {
			failed = true
			if _, err := m.Recover(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || !failed {
		t.Fatalf("converged=%v failed=%v", res.Converged, failed)
	}
	if m.LastInfo().EncoderName != "zfp" {
		t.Fatalf("encoder = %q, want zfp", m.LastInfo().EncoderName)
	}
	diff := make([]float64, len(xe))
	vec.Sub(diff, s.X(), xe)
	if rel := vec.Norm2(diff) / vec.Norm2(xe); rel > 1e-5 {
		t.Fatalf("solution error %g after ZFP lossy recovery", rel)
	}
}

// TestBiCGSTABLossyCheckpointing extends the paper's scheme to
// BiCGSTAB (future-work direction): lossy recovery restarts the
// recurrence from the decompressed iterate and convergence survives.
func TestBiCGSTABLossyCheckpointing(t *testing.T) {
	// Nonsymmetric system: Poisson plus skew coupling.
	base := sparse.Poisson2D(10)
	bld := sparse.NewBuilder(base.Rows, base.Cols)
	for i := 0; i < base.Rows; i++ {
		for k := base.RowPtr[i]; k < base.RowPtr[i+1]; k++ {
			bld.Add(i, base.ColIdx[k], base.Val[k])
		}
		if i+1 < base.Rows {
			bld.Add(i, i+1, 0.4)
		}
	}
	a := bld.Build()
	xe := sparse.SmoothField(a.Rows, 53)
	b := sparse.RHSForSolution(a, xe)

	mk := func() *solver.BiCGSTAB {
		return solver.NewBiCGSTAB(a, nil, b, nil, solver.SeqSpace{}, solver.Options{RTol: 1e-9})
	}
	baseRes, err := solver.RunToConvergence(mk(), solver.Options{MaxIter: 10000}, nil)
	if err != nil || !baseRes.Converged {
		t.Fatalf("baseline BiCGSTAB failed: %v", err)
	}

	s := mk()
	m, err := NewManager(Config{
		Scheme:   Lossy,
		Interval: 8,
		SZParams: sz.Params{Mode: sz.PWRel, ErrorBound: 1e-5},
	}, fti.NewMemStorage(), s)
	if err != nil {
		t.Fatal(err)
	}
	failAt := baseRes.Iterations / 2
	if failAt < 9 {
		failAt = 9
	}
	failed := false
	res, err := solver.RunToConvergence(s, solver.Options{MaxIter: 20000}, func(it int, rnorm float64) error {
		if _, err := m.MaybeCheckpoint(); err != nil {
			return err
		}
		if it == failAt && !failed {
			failed = true
			if _, err := m.Recover(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || !failed {
		t.Fatalf("converged=%v failed=%v", res.Converged, failed)
	}
	diff := make([]float64, len(xe))
	vec.Sub(diff, s.X(), xe)
	if rel := vec.Norm2(diff) / vec.Norm2(xe); rel > 1e-5 {
		t.Fatalf("solution error %g after BiCGSTAB lossy recovery", rel)
	}
}

// TestBiCGSTABTraditionalCheckpointing verifies the full dynamic-state
// capture path for BiCGSTAB under the traditional scheme.
func TestBiCGSTABTraditionalCheckpointing(t *testing.T) {
	a := sparse.Poisson2D(8)
	xe := sparse.SmoothField(a.Rows, 57)
	b := sparse.RHSForSolution(a, xe)
	s := solver.NewBiCGSTAB(a, nil, b, nil, solver.SeqSpace{}, solver.Options{RTol: 1e-9})
	m, err := NewManager(Config{Scheme: Traditional, Interval: 5}, fti.NewMemStorage(), s)
	if err != nil {
		t.Fatal(err)
	}
	failed := false
	res, err := solver.RunToConvergence(s, solver.Options{MaxIter: 10000}, func(it int, rnorm float64) error {
		if _, err := m.MaybeCheckpoint(); err != nil {
			return err
		}
		if it == 12 && !failed {
			failed = true
			rolledTo, err := m.Recover()
			if err != nil {
				return err
			}
			if rolledTo != 10 {
				t.Errorf("rolled to %d, want 10", rolledTo)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
}
