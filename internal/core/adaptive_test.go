package core

import (
	"testing"

	"repro/internal/adapt"
	"repro/internal/fti"
	"repro/internal/solver"
)

// fakeClock is a manually advanced clock for deterministic adaptive
// Manager tests.
type fakeClock struct{ now float64 }

func (c *fakeClock) read() float64 { return c.now }

func pinnedController(t *testing.T, tau float64, async bool) *adapt.Controller {
	t.Helper()
	ctrl, err := adapt.New(adapt.Config{
		PriorMTTI: 1000, Async: async,
		MinInterval: tau, MaxInterval: tau, InitialInterval: tau,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ctrl
}

// TestAdaptiveConfigExclusivity: Interval and AdaptiveInterval cannot
// both drive the cadence, and the controller's cost model must match
// the Manager's checkpoint mode.
func TestAdaptiveConfigExclusivity(t *testing.T) {
	a, b, _ := cgSystem(t)
	ctrl := pinnedController(t, 10, false)
	_, err := NewManager(Config{Scheme: Traditional, Interval: 5, AdaptiveInterval: ctrl},
		fti.NewMemStorage(), newCG(t, a, b))
	if err == nil {
		t.Fatal("Interval + AdaptiveInterval accepted")
	}
	asyncCtrl := pinnedController(t, 10, true)
	_, err = NewManager(Config{Scheme: Traditional, AdaptiveInterval: asyncCtrl},
		fti.NewMemStorage(), newCG(t, a, b))
	if err == nil {
		t.Fatal("async controller accepted for a sync Manager")
	}
}

// TestAdaptiveDueFollowsClock: Due fires exactly when the controller's
// interval has elapsed on the configured clock, and the window resets
// at each checkpoint.
func TestAdaptiveDueFollowsClock(t *testing.T) {
	a, b, _ := cgSystem(t)
	s := newCG(t, a, b)
	clk := &fakeClock{}
	m, err := NewManager(Config{
		Scheme:           Traditional,
		AdaptiveInterval: pinnedController(t, 10, false),
		Clock:            clk.read,
	}, fti.NewMemStorage(), s)
	if err != nil {
		t.Fatal(err)
	}
	if m.Due() {
		t.Fatal("due at iteration 0")
	}
	s.Step()
	clk.now = 9.9
	if m.Due() {
		t.Fatal("due before the interval elapsed")
	}
	clk.now = 10
	if !m.Due() {
		t.Fatal("not due after the interval elapsed")
	}
	if _, err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Same iteration: never due twice, even after more clock time.
	clk.now = 19
	if m.Due() {
		t.Fatal("due twice at one iteration")
	}
	s.Step()
	clk.now = 19.5 // 9.5 s into the window that opened at the t=10 save
	if m.Due() {
		t.Fatal("due before a full window since the last checkpoint")
	}
	clk.now = 20
	if !m.Due() {
		t.Fatal("not due a window after the last checkpoint")
	}
}

// TestAdaptiveManagerFeedsObservations: checkpoints and recoveries
// populate the controller's estimators with the measured stage
// timings, and a full checkpoint/recover cycle works under the
// adaptive cadence.
func TestAdaptiveManagerFeedsObservations(t *testing.T) {
	a, b, _ := cgSystem(t)
	s := newCG(t, a, b)
	clk := &fakeClock{}
	ctrl := pinnedController(t, 5, false)
	m, err := NewManager(Config{
		Scheme:           Lossy,
		AdaptiveInterval: ctrl,
		Clock:            clk.read,
	}, fti.NewMemStorage(), s)
	if err != nil {
		t.Fatal(err)
	}
	recovered := false
	res, err := solver.RunToConvergence(s, solver.Options{MaxIter: 2000}, func(it int, rnorm float64) error {
		clk.now += 1 // one virtual second per iteration
		if it == 12 && !recovered {
			recovered = true
			if _, err := m.Recover(); err != nil {
				return err
			}
		}
		_, err := m.MaybeCheckpoint()
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge under adaptive checkpointing")
	}
	est := ctrl.Estimates(clk.now)
	if est.SyncCost <= 0 {
		t.Errorf("no sync-cost observations reached the controller: %+v", est)
	}
	if est.Recovery <= 0 {
		t.Errorf("no recovery observation reached the controller: %+v", est)
	}
	if est.Ratio <= 1 {
		t.Errorf("compression-ratio estimate %g, want > 1 for the lossy scheme", est.Ratio)
	}
	if len(ctrl.Trajectory()) == 0 {
		t.Error("controller never re-planned")
	}
}

// TestAdaptiveAsyncManagerFeedsStageTimings: in async mode the
// capture/background split reaches the controller once saves commit.
func TestAdaptiveAsyncManagerFeedsStageTimings(t *testing.T) {
	a, b, _ := cgSystem(t)
	s := newCG(t, a, b)
	clk := &fakeClock{}
	ctrl := pinnedController(t, 5, true)
	m, err := NewManager(Config{
		Scheme:           Lossy,
		Async:            true,
		AdaptiveInterval: ctrl,
		Clock:            clk.read,
	}, fti.NewMemStorage(), s)
	if err != nil {
		t.Fatal(err)
	}
	res, err := solver.RunToConvergence(s, solver.Options{MaxIter: 2000}, func(it int, rnorm float64) error {
		clk.now += 1
		_, err := m.MaybeCheckpoint()
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	if _, err := m.WaitCheckpoint(); err != nil {
		t.Fatal(err)
	}
	// Promote the drained save so its observation lands.
	m.promote()
	est := ctrl.Estimates(clk.now)
	if est.Capture <= 0 && est.Background <= 0 {
		t.Errorf("no async stage observations reached the controller: %+v", est)
	}
	if est.SyncCost != 0 {
		t.Errorf("async Manager fed sync-cost observations: %+v", est)
	}
}
