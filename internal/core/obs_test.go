package core

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/abft"
	"repro/internal/fti"
	"repro/internal/obs"
	"repro/internal/precond"
	"repro/internal/solver"
	"repro/internal/sparse"
	"repro/internal/sz"
)

// flakyListStorage fails List on demand — the restore walk then fails
// before any per-checkpoint read begins.
type flakyListStorage struct {
	*fti.MemStorage
	failList bool
}

func (s *flakyListStorage) List() ([]string, error) {
	if s.failList {
		return nil, errors.New("storage listing unavailable")
	}
	return s.MemStorage.List()
}

func newGuardedManager(t *testing.T, st fti.Storage) (*Manager, *solver.CG, *abft.Guard) {
	t.Helper()
	a := sparse.Poisson3D(8)
	b := sparse.OnesRHS(a.Rows)
	cg := solver.NewCG(a, precond.NewJacobiFromMatrix(a), b, nil, solver.SeqSpace{},
		solver.Options{RTol: 1e-8})
	g, err := abft.NewGuard(a, b, cg, abft.Config{Seed: 1})
	if err != nil {
		t.Fatalf("NewGuard: %v", err)
	}
	m, err := NewManager(Config{
		Scheme:   Lossy,
		SZParams: sz.Params{Mode: sz.PWRel, ErrorBound: 1e-4},
		ABFT:     g,
	}, st, cg)
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	return m, cg, g
}

// Satellite fix: every attempt of an exhausted chain — the rejected
// ones and the final restart-from-zero — carries a measured duration.
func TestRecoverTieredRecordsAttemptDurations(t *testing.T) {
	r := newTieredRig(t, 1)
	r.steps(t, 4)
	r.checkpoint(t)
	r.steps(t, 4)

	r.g.CorruptRetained()
	r.corruptAllCheckpoints(t)
	r.g.FailNextRank()
	rep, err := r.m.RecoverTiered(r.x0)
	if err != nil {
		t.Fatalf("RecoverTiered: %v", err)
	}
	if rep.Used != TierRestartZero {
		t.Fatalf("used %v, want restart-zero; attempts %+v", rep.Used, rep.Attempts)
	}
	for i, att := range rep.Attempts {
		if att.Seconds <= 0 {
			t.Fatalf("attempt %d (%v, accepted=%v) has no duration: %+v",
				i, att.Tier, att.Accepted, att)
		}
	}
}

// Satellite fix: a restore walk that dies before reading any
// checkpoint (the storage listing failed) still reports the rejected
// checkpoint tier with the time it cost, instead of dropping it.
func TestRecoverTieredReportsFailedWalk(t *testing.T) {
	st := &flakyListStorage{MemStorage: fti.NewMemStorage()}
	m, cg, g := newGuardedManager(t, st)
	for i := 0; i < 4; i++ {
		cg.Step()
		g.Observe()
	}
	if _, err := m.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	for i := 0; i < 4; i++ {
		cg.Step()
		g.Observe()
	}

	st.failList = true
	g.CorruptRetained()
	g.FailNextRank()
	rep, err := m.RecoverTiered(make([]float64, len(cg.X())))
	if err != nil {
		t.Fatalf("RecoverTiered: %v", err)
	}
	if rep.Used != TierRestartZero {
		t.Fatalf("used %v, want restart-zero; attempts %+v", rep.Used, rep.Attempts)
	}
	// abft rejected, synthesized checkpoint rejection, restart-zero.
	if len(rep.Attempts) != 3 {
		t.Fatalf("attempts %+v, want 3", rep.Attempts)
	}
	walk := rep.Attempts[1]
	if walk.Tier != TierCheckpoint || walk.Accepted {
		t.Fatalf("second attempt %+v, want rejected checkpoint tier", walk)
	}
	if !strings.Contains(walk.Err, "listing unavailable") {
		t.Fatalf("walk rejection %q does not carry the storage error", walk.Err)
	}
	if walk.Seconds <= 0 {
		t.Fatalf("failed walk attempt has no duration: %+v", walk)
	}
}

// The Manager's bundle counts lifecycle events across every layer it
// owns, and the recovery chain lands per-attempt tier spans on the
// recovery track.
func TestManagerInstrumentCountsLifecycle(t *testing.T) {
	r := newTieredRig(t, 1)
	reg := obs.New()
	tr := obs.NewTracer()
	r.m.Instrument(reg, tr)

	r.steps(t, 5)
	r.checkpoint(t)
	r.steps(t, 5)
	r.checkpoint(t)
	r.g.FailNextRank()
	rep, err := r.m.RecoverTiered(r.x0)
	if err != nil {
		t.Fatalf("RecoverTiered: %v", err)
	}
	if rep.Used != TierABFT {
		t.Fatalf("used %v, want abft", rep.Used)
	}

	snap := reg.Snapshot()
	want := map[string]float64{
		obs.MCoreCheckpointsCommittedTotal: 2,
		obs.MFTICheckpointsTotal:           2,
		obs.MABFTReconstructionsTotal:      1,
	}
	for name, v := range want {
		md := snap.Get(name)
		if md == nil || md.Value != v {
			t.Fatalf("%s = %+v, want %g", name, md, v)
		}
	}
	if md := snap.Get(obs.MABFTObservesTotal); md == nil || md.Value != 10 {
		t.Fatalf("abft_observes_total = %+v, want 10", md)
	}
	if md := snap.Get(obs.MCoreRecoveriesTotal, obs.L("tier", "abft")); md == nil || md.Value != 1 {
		t.Fatalf("core_recoveries_total{tier=abft} = %+v, want 1", md)
	}
	if md := snap.Get(obs.MFTICompressionRatio); md == nil || md.Value <= 0 {
		t.Fatalf("fti_compression_ratio = %+v, want positive gauge", md)
	}

	var tierSpans, encodeSpans int
	for _, e := range tr.Events() {
		switch {
		case strings.HasPrefix(e.Name, obs.SpanTierPrefix):
			tierSpans++
			if e.Track != obs.TrackRecovery {
				t.Fatalf("tier span %q on track %d, want recovery track", e.Name, e.Track)
			}
		case e.Name == obs.SpanEncode:
			encodeSpans++
		}
	}
	if tierSpans != len(rep.Attempts) {
		t.Fatalf("%d tier spans, want one per attempt (%d)", tierSpans, len(rep.Attempts))
	}
	if encodeSpans != 2 {
		t.Fatalf("%d encode spans, want 2 (one per checkpoint)", encodeSpans)
	}
}
