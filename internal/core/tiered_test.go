package core

import (
	"math"
	"strings"
	"testing"

	"repro/internal/abft"
	"repro/internal/failure"
	"repro/internal/fti"
	"repro/internal/precond"
	"repro/internal/solver"
	"repro/internal/sparse"
	"repro/internal/sz"
)

// tieredRig is one guarded CG + lossy Manager under test.
type tieredRig struct {
	a  *sparse.CSR
	cg *solver.CG
	g  *abft.Guard
	m  *Manager
	st *fti.MemStorage
	x0 []float64
}

func newTieredRig(t *testing.T, seed int64) *tieredRig {
	t.Helper()
	a := sparse.Poisson3D(8)
	b := sparse.OnesRHS(a.Rows)
	cg := solver.NewCG(a, precond.NewJacobiFromMatrix(a), b, nil, solver.SeqSpace{},
		solver.Options{RTol: 1e-8})
	g, err := abft.NewGuard(a, b, cg, abft.Config{Seed: seed})
	if err != nil {
		t.Fatalf("NewGuard: %v", err)
	}
	st := fti.NewMemStorage()
	m, err := NewManager(Config{
		Scheme:   Lossy,
		SZParams: sz.Params{Mode: sz.PWRel, ErrorBound: 1e-4},
		ABFT:     g,
	}, st, cg)
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	return &tieredRig{a: a, cg: cg, g: g, m: m, st: st, x0: make([]float64, a.Rows)}
}

// steps advances n iterations with per-iteration ABFT retention.
func (r *tieredRig) steps(t *testing.T, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		r.cg.Step()
		r.g.Observe()
	}
}

func (r *tieredRig) checkpoint(t *testing.T) {
	t.Helper()
	if _, err := r.m.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
}

// corruptAllCheckpoints flips a byte in every stored checkpoint object.
func (r *tieredRig) corruptAllCheckpoints(t *testing.T) {
	t.Helper()
	names, err := r.st.List()
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	for _, name := range names {
		if !strings.HasPrefix(name, "ckpt-") {
			continue
		}
		data, err := r.st.Read(name)
		if err != nil {
			t.Fatalf("Read %s: %v", name, err)
		}
		mut := append([]byte(nil), data...)
		mut[len(mut)/2] ^= 0xFF
		if err := r.st.Write(name, mut); err != nil {
			t.Fatalf("Write %s: %v", name, err)
		}
	}
}

func TestRecoverTieredUsesABFTFirst(t *testing.T) {
	r := newTieredRig(t, 1)
	r.steps(t, 5)
	r.checkpoint(t)
	r.steps(t, 5)
	pre := r.cg.Iteration()

	r.g.FailNextRank()
	rep, err := r.m.RecoverTiered(r.x0)
	if err != nil {
		t.Fatalf("RecoverTiered: %v", err)
	}
	if rep.Used != TierABFT {
		t.Fatalf("used %v, want abft", rep.Used)
	}
	if len(rep.Attempts) != 1 || !rep.Attempts[0].Accepted {
		t.Fatalf("attempts = %+v, want one accepted abft attempt", rep.Attempts)
	}
	if rep.Iteration != pre {
		t.Fatalf("recovered to iteration %d, want pre-failure %d (no rollback)", rep.Iteration, pre)
	}
	if rb := rep.ReadBytes(); rb != 0 {
		t.Fatalf("ABFT recovery read %d bytes from storage, want 0", rb)
	}
}

func TestRecoverTieredFallsBackToLatestCheckpoint(t *testing.T) {
	r := newTieredRig(t, 1)
	r.steps(t, 5)
	r.checkpoint(t)
	ckptIt := r.m.LastCheckpointIteration()
	r.steps(t, 5)

	r.g.CorruptRetained() // ABFT tier must fail verification
	r.g.FailNextRank()
	rep, err := r.m.RecoverTiered(r.x0)
	if err != nil {
		t.Fatalf("RecoverTiered: %v", err)
	}
	if rep.Used != TierCheckpoint {
		t.Fatalf("used %v, want checkpoint", rep.Used)
	}
	if len(rep.Attempts) != 2 {
		t.Fatalf("attempts = %+v, want rejected abft then accepted checkpoint", rep.Attempts)
	}
	if rep.Attempts[0].Tier != TierABFT || rep.Attempts[0].Accepted {
		t.Fatalf("first attempt %+v, want rejected abft", rep.Attempts[0])
	}
	if !strings.Contains(rep.Attempts[0].Err, "checksum") {
		t.Fatalf("abft rejection %q does not name the checksum", rep.Attempts[0].Err)
	}
	if rep.Attempts[1].Tier != TierCheckpoint || !rep.Attempts[1].Accepted || rep.Attempts[1].ReadBytes == 0 {
		t.Fatalf("second attempt %+v, want accepted checkpoint with bytes read", rep.Attempts[1])
	}
	if rep.Iteration != ckptIt {
		t.Fatalf("recovered to iteration %d, want checkpoint's %d", rep.Iteration, ckptIt)
	}
}

func TestRecoverTieredFallsBackToPreviousCheckpoint(t *testing.T) {
	r := newTieredRig(t, 1)
	r.steps(t, 4)
	r.checkpoint(t)
	r.steps(t, 4)
	r.checkpoint(t) // two committed checkpoints (keep=2)
	r.steps(t, 4)

	r.g.CorruptRetained()
	if _, err := failure.CorruptLatestManifest(r.st); err != nil {
		t.Fatalf("CorruptLatestManifest: %v", err)
	}
	r.g.FailNextRank()
	rep, err := r.m.RecoverTiered(r.x0)
	if err != nil {
		t.Fatalf("RecoverTiered: %v", err)
	}
	if rep.Used != TierPreviousCheckpoint {
		t.Fatalf("used %v, want previous-checkpoint; attempts %+v", rep.Used, rep.Attempts)
	}
	tiers := make([]RecoveryTier, len(rep.Attempts))
	for i, a := range rep.Attempts {
		tiers[i] = a.Tier
	}
	want := []RecoveryTier{TierABFT, TierCheckpoint, TierPreviousCheckpoint}
	for i := range want {
		if i >= len(tiers) || tiers[i] != want[i] {
			t.Fatalf("attempt tiers %v, want %v", tiers, want)
		}
	}
	if rep.Attempts[1].Accepted {
		t.Fatal("corrupted latest checkpoint was accepted")
	}
	// The rejected read was still paid: its bytes count in the total.
	if rep.Attempts[1].ReadBytes == 0 {
		t.Fatal("rejected checkpoint attempt reports no read bytes")
	}
}

func TestRecoverTieredDegradesToRestartZero(t *testing.T) {
	r := newTieredRig(t, 1)
	r.steps(t, 4)
	r.checkpoint(t)
	r.steps(t, 4)
	r.checkpoint(t)
	r.steps(t, 4)

	r.g.CorruptRetained()
	r.corruptAllCheckpoints(t)
	r.g.FailNextRank()
	rep, err := r.m.RecoverTiered(r.x0)
	if err != nil {
		t.Fatalf("RecoverTiered must never error for a degraded recovery, got %v", err)
	}
	if rep.Used != TierRestartZero {
		t.Fatalf("used %v, want restart-zero; attempts %+v", rep.Used, rep.Attempts)
	}
	if rep.Iteration != 0 {
		t.Fatalf("restart-zero recovered to iteration %d, want 0", rep.Iteration)
	}
	last := rep.Attempts[len(rep.Attempts)-1]
	if last.Tier != TierRestartZero || !last.Accepted {
		t.Fatalf("final attempt %+v, want accepted restart-zero", last)
	}
	// Every tier was tried: abft, both checkpoints, zero.
	if len(rep.Attempts) != 4 {
		t.Fatalf("attempts = %+v, want 4 (full exhaustion)", rep.Attempts)
	}
	// The solver must be healthy: continue to convergence.
	res, err := solver.RunToConvergence(r.cg, solver.Options{}, nil)
	if err != nil || !res.Converged {
		t.Fatalf("post-exhaustion solve: converged=%v err=%v", res != nil && res.Converged, err)
	}
}

func TestRecoverTieredAfterMidCheckpointAbort(t *testing.T) {
	r := newTieredRig(t, 1)
	r.steps(t, 4)
	r.checkpoint(t)
	r.steps(t, 4)
	// A failure strikes mid-write: the in-flight checkpoint never
	// commits, and the ABFT redundancy was corrupted by the same event.
	r.checkpoint(t)
	if err := r.m.AbortLastCheckpoint(); err != nil {
		t.Fatalf("AbortLastCheckpoint: %v", err)
	}
	r.g.CorruptRetained()
	r.g.FailNextRank()
	rep, err := r.m.RecoverTiered(r.x0)
	if err != nil {
		t.Fatalf("RecoverTiered: %v", err)
	}
	// After the abort the surviving earlier checkpoint is the latest
	// committed one again — recovery restores it as TierCheckpoint.
	if rep.Used != TierCheckpoint {
		t.Fatalf("used %v, want checkpoint (the pre-abort survivor); attempts %+v", rep.Used, rep.Attempts)
	}
	if rep.Iteration != 4 {
		t.Fatalf("recovered to iteration %d, want 4", rep.Iteration)
	}
}

func TestRecoverTieredWithNoRetentionNoCheckpoint(t *testing.T) {
	r := newTieredRig(t, 1)
	// Failure before any Observe or Checkpoint: the chain must bottom
	// out at restart-from-zero without panicking.
	r.cg.Step()
	r.g.FailRank(0)
	rep, err := r.m.RecoverTiered(r.x0)
	if err != nil {
		t.Fatalf("RecoverTiered: %v", err)
	}
	if rep.Used != TierRestartZero {
		t.Fatalf("used %v, want restart-zero", rep.Used)
	}
}

// tieredTrace is the determinism fingerprint of one full injected run.
type tieredTrace struct {
	tiers    []RecoveryTier
	attempts []string
	iters    int
	residual uint64
}

// runTieredScenario drives a fixed failure scenario end to end and
// fingerprints every recovery decision plus the final solver state.
func runTieredScenario(t *testing.T, seed int64) tieredTrace {
	t.Helper()
	r := newTieredRig(t, seed)
	var tr tieredTrace
	fail := func(prep func()) {
		if prep != nil {
			prep()
		}
		r.g.FailNextRank()
		rep, err := r.m.RecoverTiered(r.x0)
		if err != nil {
			t.Fatalf("RecoverTiered: %v", err)
		}
		tr.tiers = append(tr.tiers, rep.Used)
		for _, a := range rep.Attempts {
			status := "+"
			if !a.Accepted {
				status = "-"
			}
			tr.attempts = append(tr.attempts,
				a.Tier.String()+status+string(rune('0'+a.Seq%10)))
		}
	}
	r.steps(t, 4)
	r.checkpoint(t)
	r.steps(t, 4)
	fail(nil) // ABFT tier
	r.steps(t, 2)
	fail(func() { r.g.CorruptRetained() }) // checkpoint tier
	r.steps(t, 2)
	r.checkpoint(t)
	r.steps(t, 2)
	fail(func() {
		r.g.CorruptRetained()
		if _, err := failure.CorruptLatestManifest(r.st); err != nil {
			t.Fatalf("CorruptLatestManifest: %v", err)
		}
	}) // previous-checkpoint tier
	res, err := solver.RunToConvergence(r.cg, solver.Options{}, func(int, float64) error {
		r.g.Observe()
		return nil
	})
	if err != nil || !res.Converged {
		t.Fatalf("scenario solve: converged=%v err=%v", res != nil && res.Converged, err)
	}
	tr.iters = res.Iterations
	tr.residual = math.Float64bits(res.FinalResidual)
	return tr
}

func TestTieredRecoveryBitwiseDeterministic(t *testing.T) {
	a, b := runTieredScenario(t, 7), runTieredScenario(t, 7)
	if len(a.tiers) != len(b.tiers) {
		t.Fatalf("tier sequences differ in length: %v vs %v", a.tiers, b.tiers)
	}
	for i := range a.tiers {
		if a.tiers[i] != b.tiers[i] {
			t.Fatalf("tier sequences diverge at %d: %v vs %v", i, a.tiers, b.tiers)
		}
	}
	if strings.Join(a.attempts, ",") != strings.Join(b.attempts, ",") {
		t.Fatalf("attempt traces diverge:\n%v\n%v", a.attempts, b.attempts)
	}
	if a.iters != b.iters {
		t.Fatalf("iteration counts diverge: %d vs %d", a.iters, b.iters)
	}
	if a.residual != b.residual {
		t.Fatalf("final residuals are not bitwise equal: %x vs %x", a.residual, b.residual)
	}
	// The scenario must actually have exercised three distinct tiers.
	want := []RecoveryTier{TierABFT, TierCheckpoint, TierPreviousCheckpoint}
	for i, w := range want {
		if a.tiers[i] != w {
			t.Fatalf("scenario tiers %v, want %v", a.tiers, want)
		}
	}
}
