// Package core implements the paper's contribution: the lossy
// checkpointing scheme for iterative methods (§4.2).
//
// Three schemes are provided, matching the paper's evaluation:
//
//   - Traditional: dynamic variables are checkpointed verbatim
//     (Algorithm 1). For CG that is (i, ρ, p, x); recovery restores
//     them and recomputes r = b − A·x.
//   - Lossless: identical state, but the vectors pass through a
//     lossless codec (the paper's Gzip baseline).
//   - Lossy: only the approximate solution x is checkpointed, through
//     an error-bounded lossy compressor (Algorithm 2). Recovery
//     decompresses x and *restarts* the method with x as a fresh
//     initial guess, rebuilding the Krylov state — the paper's answer
//     to compression errors breaking CG's orthogonality relations.
//
// For GMRES the scheme optionally applies Theorem 3: the compressor's
// pointwise-relative bound is re-derived before every checkpoint as
// eb = O(‖r⁽ᵗ⁾‖/‖b‖), which provably keeps the post-recovery residual
// on the order of the pre-failure residual (expected N′ = 0).
package core

import (
	"fmt"
	"time"

	"repro/internal/abft"
	"repro/internal/adapt"
	"repro/internal/codec"
	"repro/internal/fti"
	"repro/internal/lossless"
	"repro/internal/model"
	"repro/internal/quality"
	"repro/internal/solver"
	"repro/internal/sz"
)

// Scheme selects the checkpoint flavor.
type Scheme int

// The three checkpointing schemes compared throughout the paper.
const (
	Traditional Scheme = iota
	Lossless
	Lossy
)

// String names the scheme as the paper does.
func (s Scheme) String() string {
	switch s {
	case Traditional:
		return "traditional"
	case Lossless:
		return "lossless"
	case Lossy:
		return "lossy"
	}
	return fmt.Sprintf("Scheme(%d)", int(s))
}

// Config assembles a Manager.
type Config struct {
	// Scheme picks traditional, lossless, or lossy checkpointing.
	Scheme Scheme
	// Interval checkpoints every Interval iterations (Algorithm 1
	// line 3, "i % ckpt_intvl == 0"). Zero disables periodic
	// checkpoints (explicit Checkpoint calls still work).
	Interval int
	// SZParams configure the lossy compressor (ignored otherwise).
	// The zero value means PWRel at 1e-4 — the paper's setting for
	// Jacobi and CG.
	SZParams sz.Params
	// Adaptive enables the Theorem-3 bound: before each checkpoint the
	// pointwise-relative bound is set to AdaptiveC·‖r‖/‖b‖. Requires
	// BNorm. The paper uses this for GMRES.
	Adaptive  bool
	AdaptiveC float64
	// BNorm is ‖b‖ (or ‖M⁻¹b‖ for left-preconditioned GMRES), the
	// denominator of the Theorem-3 bound.
	BNorm float64
	// Codec overrides the lossless codec (default flate/Gzip).
	Codec lossless.Codec
	// LossyEncoder overrides the lossy compressor entirely (e.g. the
	// ZFP-like transform codec). When set, SZParams and Adaptive are
	// ignored — the caller owns the error-bound policy.
	LossyEncoder fti.Encoder
	// Async routes checkpoints through the asynchronous pipeline:
	// Checkpoint returns after the capture copy (the returned Info is
	// provisional — Bytes is unknown until the background encode
	// finishes; WaitCheckpoint or LastInfo report the final
	// accounting), and the encode+write run concurrently with solver
	// iterations. HasCheckpoint and LastCheckpointIteration report
	// committed checkpoints only; Recover drains the in-flight write
	// first, and a background write that failed falls back to the
	// previous committed checkpoint — the paper's failure-during-
	// checkpoint semantics.
	Async bool
	// Shards splits every checkpoint into this many shard objects
	// (written concurrently, cut along SZG2 block boundaries) plus a
	// manifest committed last; 0 or 1 keeps the monolithic layout.
	// Recovery from a group with any missing or corrupted shard falls
	// back to the previous committed checkpoint. fti.Info.Shards
	// reports the layout to striped-PFS cost models
	// (cluster.Model.ShardedCheckpointSeconds).
	Shards int
	// StorageWorkers bounds the worker pool writing/reading shard
	// objects (0 = GOMAXPROCS-sized; capped at Shards).
	StorageWorkers int
	// AdaptiveInterval plugs the online checkpoint-interval controller
	// into the periodic-checkpoint decision: Due consults the
	// controller's currently planned interval (in seconds of Clock
	// time since the last checkpoint) instead of the fixed
	// iteration-count Interval, and the Manager feeds the controller
	// its measured per-checkpoint stage timings (fti.Info's capture/
	// encode/write seconds and byte counts) and measured recovery
	// durations. Failures are outside the Manager's sight — the
	// embedding application reports them via the controller's
	// ObserveFailure. Mutually exclusive with Interval; the
	// controller's Async flag must match Async. Virtual-time runs
	// drive the controller through sim.Config.Controller instead.
	AdaptiveInterval *adapt.Controller
	// Clock supplies "now" in seconds for AdaptiveInterval. Nil
	// defaults to wall-clock seconds since the Manager was built.
	// The per-checkpoint cost observations are measured internally by
	// the checkpoint path regardless of this clock, so a coarse Clock
	// only coarsens when checkpoints trigger, not what they cost.
	Clock func() float64
	// DegradedWrites makes a failed checkpoint save non-fatal: instead
	// of surfacing the storage error to the solver loop, Checkpoint
	// (and the async pipeline's deferred error surfacing) swallows it,
	// counts it (DegradedSaves, core_degraded_saves_total), remembers
	// it (LastSaveError), and keeps iterating — the previous committed
	// checkpoint remains the recovery target and the next interval
	// simply tries again. This is the graceful-degradation contract of
	// the fault-tolerant storage layer: a shard write that exhausted
	// its retries costs one checkpoint group, never the solve. Errors
	// from Recover are never degraded — failing to *read* state back
	// is not survivable by waiting.
	DegradedWrites bool
	// ABFT plugs the algorithm-based recovery guard in as the first
	// tier of RecoverTiered: a failed solve first attempts the
	// checkpoint-free algorithmic reconstruction (verified against the
	// true residual) and only falls back to stored checkpoints when it
	// is rejected. The guard must protect the same solver the Manager
	// wires; the embedding loop must call the guard's Observe after
	// every accepted step.
	ABFT *abft.Guard
}

// Manager connects a solver to a checkpointer under one of the three
// schemes and keeps the bookkeeping the experiments need (bytes
// written, compression ratios, rollback distances).
type Manager struct {
	cfg          Config
	ckpt         *fti.Checkpointer
	async        *fti.AsyncCheckpointer // non-nil in async mode
	slv          solver.Checkpointable
	rst          solver.Restartable
	gmres        *solver.GMRES // non-nil when the solver is GMRES (CurrentX)
	lastCkptIter int
	lastInfo     fti.Info
	haveCkpt     bool
	prevCkptIter int
	prevInfo     fti.Info
	prevHaveCkpt bool

	// In-flight async save, promoted to the committed fields above
	// once its background write finishes.
	inflight     fti.Ticket
	inflightIter int
	inflightLive bool
	asyncErr     error // failed background save, surfaced on next Checkpoint

	// recoverBuf holds the decode targets Recover reuses across
	// recoveries: the restore path decodes vector payloads straight
	// into these slices (fti.Checkpointer.RestoreInto), and the
	// solvers copy on Restart/RestoreDynamic, so the buffers stay
	// owned here — repeated recoveries (thousands per simulated run)
	// stop allocating fresh payload-sized vectors.
	recoverBuf map[string][]float64

	// Adaptive-interval state: the controller (nil when disabled), the
	// clock it is consulted on, and the clock time of the last
	// checkpoint capture (the start of the current interval window).
	ctrl          *adapt.Controller
	clock         func() float64
	lastCkptClock float64

	// abft is the optional first recovery tier (Config.ABFT).
	abft *abft.Guard

	// Degraded-writes accounting (Config.DegradedWrites): saves
	// swallowed instead of surfaced, and the most recent one.
	degradedSaves int
	lastSaveErr   error

	// mobs is the observability bundle (nil when uninstrumented).
	mobs *managerObs

	// qa is the numerical-telemetry auditor (nil when uninstrumented);
	// it rides the checkpointer's save-audit hook and is marked on
	// every recovery for convergence-delay attribution.
	qa *quality.Auditor
}

// NewManager wires solver s to storage through the scheme in cfg. The
// solver must implement Restartable for the lossy scheme.
func NewManager(cfg Config, storage fti.Storage, s solver.Checkpointable) (*Manager, error) {
	if cfg.Scheme == Lossy {
		if _, ok := s.(solver.Restartable); !ok {
			return nil, fmt.Errorf("core: lossy checkpointing needs a restartable solver, %T is not", s)
		}
		if cfg.SZParams.ErrorBound == 0 {
			cfg.SZParams = sz.Params{Mode: sz.PWRel, ErrorBound: 1e-4}
		}
		if cfg.Adaptive {
			if cfg.AdaptiveC <= 0 {
				cfg.AdaptiveC = 1
			}
			if cfg.BNorm <= 0 {
				return nil, fmt.Errorf("core: adaptive bound requires BNorm > 0")
			}
		}
	}
	if cfg.Codec == nil {
		// Blocked container by default: compression runs block-parallel
		// and sharded checkpoints restore block-by-block; legacy flate
		// checkpoints still decode through the adapter's fallback.
		cfg.Codec = codec.BlockedFlate{}
	}
	if cfg.AdaptiveInterval != nil {
		if cfg.Interval > 0 {
			return nil, fmt.Errorf("core: Interval and AdaptiveInterval are mutually exclusive")
		}
		if cfg.AdaptiveInterval.Async() != cfg.Async {
			return nil, fmt.Errorf("core: controller async=%v does not match Config.Async=%v",
				cfg.AdaptiveInterval.Async(), cfg.Async)
		}
	}
	if cfg.ABFT != nil && cfg.ABFT.Solver() != s {
		return nil, fmt.Errorf("core: the ABFT guard protects a different solver than the Manager wires")
	}
	m := &Manager{cfg: cfg, slv: s, abft: cfg.ABFT}
	m.ctrl = cfg.AdaptiveInterval
	m.clock = cfg.Clock
	if m.ctrl != nil && m.clock == nil {
		start := time.Now()
		m.clock = func() float64 { return time.Since(start).Seconds() }
	}
	m.rst, _ = s.(solver.Restartable)
	m.gmres, _ = s.(*solver.GMRES)
	m.ckpt = fti.New(storage, m.encoder())
	if err := m.ckpt.SetSharding(cfg.Shards, cfg.StorageWorkers); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if cfg.Async {
		m.async = fti.NewAsync(m.ckpt)
	}
	return m, nil
}

// encoder returns the fti encoder for the configured scheme,
// re-deriving the adaptive bound when enabled.
func (m *Manager) encoder() fti.Encoder {
	switch m.cfg.Scheme {
	case Traditional:
		return fti.Raw{}
	case Lossless:
		return fti.Lossless{Codec: m.cfg.Codec}
	default:
		if m.cfg.LossyEncoder != nil {
			return m.cfg.LossyEncoder
		}
		p := m.cfg.SZParams
		if m.cfg.Adaptive {
			eb := model.GMRESAdaptiveBound(m.slv.ResidualNorm(), m.cfg.BNorm, m.cfg.AdaptiveC)
			if eb > 0 {
				p.Mode = sz.PWRel
				p.ErrorBound = eb
			}
		}
		return fti.SZ{Params: p}
	}
}

// Checkpointer exposes the underlying fti.Checkpointer (for statics).
// In async mode, direct use is only safe while no save is in flight
// (WaitCheckpoint drains).
func (m *Manager) Checkpointer() *fti.Checkpointer { return m.ckpt }

// AsyncCheckpointer exposes the asynchronous pipeline, nil unless
// Config.Async is set. Useful for stall accounting (Stats).
func (m *Manager) AsyncCheckpointer() *fti.AsyncCheckpointer { return m.async }

// Due reports whether the periodic checkpoint condition of Algorithm 1
// line 3 holds at the solver's current iteration. An async checkpoint
// captured at this iteration — committed or still in flight — counts
// as taken. With AdaptiveInterval, the condition is instead that the
// controller's currently planned interval has elapsed on the
// configured clock since the last checkpoint capture.
func (m *Manager) Due() bool {
	it := m.slv.Iteration()
	if m.ctrl != nil {
		if it == 0 {
			return false
		}
		if m.async != nil {
			m.promote()
			if m.inflightLive && it == m.inflightIter {
				return false
			}
		}
		if it == m.lastCkptIter {
			return false
		}
		now := m.clock()
		return now-m.lastCkptClock >= m.ctrl.Interval(now)
	}
	if m.cfg.Interval <= 0 || it == 0 || it%m.cfg.Interval != 0 {
		return false
	}
	if m.async != nil {
		m.promote()
		if m.inflightLive && it == m.inflightIter {
			return false
		}
	}
	return it != m.lastCkptIter
}

// MaybeCheckpoint takes a checkpoint if one is due. It returns the
// checkpoint info when one was written (nil when none was due, or
// when a degraded-mode save was swallowed).
func (m *Manager) MaybeCheckpoint() (*fti.Info, error) {
	if !m.Due() {
		return nil, nil
	}
	info, err := m.Checkpoint()
	if err != nil {
		return nil, err
	}
	if info.Seq == 0 {
		return nil, nil // degraded-mode save swallowed; nothing committed
	}
	return &info, nil
}

// Checkpoint writes a checkpoint now, regardless of the interval. In
// async mode it returns after the capture copy with a provisional Info
// (Seq, EncoderName, RawBytes; Bytes unknown until the background
// encode finishes); an error from the previous background save is
// returned here, before a new capture is taken.
func (m *Manager) Checkpoint() (fti.Info, error) {
	if m.async != nil {
		return m.checkpointAsync()
	}
	snap := m.capture()
	m.ckpt.SetEncoder(m.encoder())
	info, err := m.ckpt.Save(snap)
	if err != nil {
		if m.cfg.DegradedWrites {
			// The save rolled back; the previous committed checkpoint is
			// still the recovery target and the next interval retries.
			m.noteDegraded(err)
			return fti.Info{}, nil
		}
		return fti.Info{}, err
	}
	m.prevCkptIter, m.prevHaveCkpt = m.lastCkptIter, m.haveCkpt
	m.prevInfo = m.lastInfo
	m.lastCkptIter = m.slv.Iteration()
	m.lastInfo = info
	m.haveCkpt = true
	m.mobs.observeCommit()
	m.observeQualityCommit(info.Seq, info.RawBytes, info.Bytes)
	if m.ctrl != nil {
		now := m.clock()
		m.mobs.observeWindow(now - m.lastCkptClock)
		m.lastCkptClock = now
		// The stage timings are measured inside the save, so a coarse or
		// virtual Clock cannot zero the cost observation.
		m.ctrl.ObserveCheckpoint(adapt.CheckpointObs{
			When:        now,
			SyncSeconds: info.EncodeSeconds + info.WriteSeconds,
			RawBytes:    info.RawBytes,
			Bytes:       info.Bytes,
		})
	}
	return info, nil
}

// checkpointAsync is the capture-stall-only checkpoint path.
func (m *Manager) checkpointAsync() (fti.Info, error) {
	// Drain first: SetEncoder below mutates the wrapped Checkpointer,
	// which the background stage reads. This is also where the
	// at-most-one-in-flight backpressure lands in the solver's time,
	// so the wait is accounted as backpressure in Stats.
	m.async.WaitBackpressure()
	m.promote()
	if err := m.takeAsyncErr(); err != nil {
		return fti.Info{}, err
	}
	m.ckpt.SetEncoder(m.encoder())
	snap := m.captureAsync()
	t, err := m.async.SaveAsync(snap)
	if err != nil {
		return fti.Info{}, err
	}
	m.inflight, m.inflightLive = t, true
	m.inflightIter = m.slv.Iteration()
	if m.ctrl != nil {
		// The interval window restarts at capture completion; the cost
		// observation follows at promote time, when the background
		// encode+write durations are known.
		now := m.clock()
		m.mobs.observeWindow(now - m.lastCkptClock)
		m.lastCkptClock = now
	}
	info := fti.Info{Seq: t.Seq, EncoderName: m.ckpt.Encoder().Name()}
	for _, v := range snap.Vectors {
		info.RawBytes += 8 * len(v)
	}
	info.RawBytes += 8 * len(snap.Scalars)
	return info, nil
}

// promote folds a finished background save into the committed-
// checkpoint bookkeeping. Non-blocking: an in-flight save stays
// in flight.
func (m *Manager) promote() {
	if !m.inflightLive {
		return
	}
	select {
	case <-m.inflight.Done():
	default:
		return
	}
	info, err := m.inflight.Wait()
	m.inflightLive = false
	if err != nil {
		// The save rolled back; nothing was committed. Surface the
		// error on the next Checkpoint call.
		m.asyncErr = err
		return
	}
	m.prevCkptIter, m.prevHaveCkpt = m.lastCkptIter, m.haveCkpt
	m.prevInfo = m.lastInfo
	m.lastCkptIter = m.inflightIter
	m.lastInfo = info
	m.haveCkpt = true
	m.mobs.observeCommit()
	m.observeQualityCommit(info.Seq, info.RawBytes, info.Bytes)
	if m.ctrl != nil {
		m.ctrl.ObserveCheckpoint(adapt.CheckpointObs{
			When:              m.clock(),
			CaptureSeconds:    info.CaptureSeconds,
			BackgroundSeconds: info.EncodeSeconds + info.WriteSeconds,
			RawBytes:          info.RawBytes,
			Bytes:             info.Bytes,
		})
	}
}

// WaitCheckpoint blocks until no checkpoint is in flight and returns
// the Info of the most recent committed checkpoint. In sync mode it
// returns LastInfo immediately. The error, if any, is the failure of
// the drained background save (also cleared from the pipeline).
func (m *Manager) WaitCheckpoint() (fti.Info, error) {
	if m.async == nil {
		return m.lastInfo, nil
	}
	m.async.Wait()
	m.promote()
	return m.lastInfo, m.takeAsyncErr()
}

// takeAsyncErr consumes the pending background-save error, swallowing
// (and counting) it in degraded-writes mode.
func (m *Manager) takeAsyncErr() error {
	err := m.asyncErr
	m.asyncErr = nil
	if err != nil && m.cfg.DegradedWrites {
		m.noteDegraded(err)
		return nil
	}
	return err
}

// noteDegraded records a save swallowed by degraded-writes mode.
func (m *Manager) noteDegraded(err error) {
	m.degradedSaves++
	m.lastSaveErr = err
	m.mobs.observeDegraded()
}

// DegradedSaves reports how many checkpoint saves degraded-writes
// mode swallowed instead of surfacing.
func (m *Manager) DegradedSaves() int { return m.degradedSaves }

// LastSaveError returns the most recent save failure swallowed by
// degraded-writes mode, nil if none.
func (m *Manager) LastSaveError() error { return m.lastSaveErr }

// AbortLastCheckpoint models a failure striking while the checkpoint
// was being written: the partial file is discarded and the previous
// checkpoint becomes the recovery target again. The virtual-time
// simulator calls this when a failure lands inside a checkpoint
// window. In async mode the in-flight save is drained first; if it
// already failed there is nothing to drop, otherwise the just-
// committed file is discarded.
func (m *Manager) AbortLastCheckpoint() error {
	if m.async != nil {
		m.async.Wait()
		m.promote()
		if m.asyncErr != nil {
			// The aborted save never committed; dropping is a no-op.
			m.asyncErr = nil
			return nil
		}
	}
	if err := m.ckpt.DropLatest(); err != nil {
		return err
	}
	m.mobs.observeAbort()
	m.lastCkptIter, m.haveCkpt = m.prevCkptIter, m.prevHaveCkpt
	// Roll the accounting back too: LastInfo must describe the
	// checkpoint recovery will actually restore, not the dropped one
	// (the sim prices RecoverySeconds off it).
	m.lastInfo = m.prevInfo
	// Consult storage, not the sequence counter: with keep=1 the gc of
	// the just-dropped checkpoint already removed its predecessor, so
	// the abort can leave nothing to recover from — recovery must then
	// restart from scratch rather than chase a deleted file.
	if m.ckpt.CheckpointCount() == 0 {
		m.haveCkpt = false
	}
	return nil
}

// capture builds the scheme's snapshot: full dynamic state for
// traditional/lossless (Algorithm 1 line 4: i, ρ, p, x), solution-only
// for lossy (Algorithm 2 lines 4–5: i, compressed x).
func (m *Manager) capture() *fti.Snapshot {
	if m.cfg.Scheme != Lossy {
		st := m.slv.CaptureDynamic()
		return &fti.Snapshot{Iteration: st.Iteration, Scalars: st.Scalars, Vectors: st.Vectors}
	}
	return &fti.Snapshot{
		Iteration: m.slv.Iteration(),
		Vectors:   map[string][]float64{"x": m.currentX()},
	}
}

// captureAsync builds the async snapshot. The deep copy happens inside
// SaveAsync (the pipeline's capture stage, into the double buffer), so
// the lossy scheme can hand over the live solution vector without the
// extra copy that the synchronous capture() pays.
func (m *Manager) captureAsync() *fti.Snapshot {
	if m.cfg.Scheme != Lossy {
		// CaptureDynamic deep-copies by contract; SaveAsync copies once
		// more into its reusable buffer — correct, just not zero-copy.
		return m.capture()
	}
	x := m.slv.X()
	if m.gmres != nil {
		x = m.gmres.CurrentX()
	}
	return &fti.Snapshot{
		Iteration: m.slv.Iteration(),
		Vectors:   map[string][]float64{"x": x},
	}
}

// currentX returns the best available approximate solution: GMRES
// materializes the mid-cycle iterate; other solvers expose x directly.
func (m *Manager) currentX() []float64 {
	if m.gmres != nil {
		return m.gmres.CurrentX()
	}
	return append([]float64(nil), m.slv.X()...)
}

// HasCheckpoint reports whether at least one committed checkpoint
// exists. An async save still in flight does not count: until its
// write completes it is not a recovery target.
func (m *Manager) HasCheckpoint() bool {
	m.promote()
	return m.haveCkpt
}

// LastInfo returns the accounting of the most recent committed
// checkpoint.
func (m *Manager) LastInfo() fti.Info {
	m.promote()
	return m.lastInfo
}

// LastCheckpointIteration returns the iteration number at the most
// recent committed checkpoint (0 if none) — the rollback target. An
// in-flight async save is not yet a rollback target.
func (m *Manager) LastCheckpointIteration() int {
	m.promote()
	if !m.haveCkpt {
		return 0
	}
	return m.lastCkptIter
}

// InFlight reports whether an async checkpoint is currently being
// encoded or written in the background.
func (m *Manager) InFlight() bool {
	if m.async == nil {
		return false
	}
	m.promote()
	return m.inflightLive
}

// Recover reinstates the solver from the latest checkpoint according
// to the scheme. For lossy checkpointing this is Algorithm 2 lines
// 7–13: decompress x, adopt it as a fresh initial guess, rebuild the
// auxiliary state. It returns the iteration the solver rolled back to.
//
// In async mode, Recover first drains the in-flight write. If that
// write completed, it is the recovery target like any committed
// checkpoint; if it failed (the failure struck between SaveAsync and
// write completion), nothing was committed and recovery falls back to
// the previous committed checkpoint — exactly the paper's failure-
// during-checkpoint path.
func (m *Manager) Recover() (int, error) {
	m.qa.ObserveFailure()
	if m.async != nil {
		m.async.Wait()
		m.promote()
		// A failed in-flight save is superseded by the recovery itself:
		// its sequence rolled back, so Restore below already targets
		// the previous committed checkpoint.
		m.asyncErr = nil
	}
	if m.recoverBuf == nil {
		m.recoverBuf = map[string][]float64{}
	}
	restoreStart := time.Now()
	snap, attempts, err := m.ckpt.RestoreIntoTrace(m.recoverBuf)
	if err != nil {
		return 0, err
	}
	if m.ctrl != nil {
		// The restart duration feeds the recovery-cost estimator, and
		// the interval window restarts: the state just went to storage's
		// version of itself, so nothing is at risk yet.
		m.ctrl.ObserveRecovery(time.Since(restoreStart).Seconds())
		m.lastCkptClock = m.clock()
	}
	it, aerr := m.adoptSnapshot(snap)
	if aerr == nil {
		m.mobs.observeRecovery(TierCheckpoint, time.Since(restoreStart).Seconds())
		seq := 0
		if len(attempts) > 0 {
			seq = attempts[len(attempts)-1].Seq
		}
		m.qa.ObserveRecovery(seq, TierCheckpoint.String(), it, m.slv.ResidualNorm())
	}
	return it, aerr
}

// adoptSnapshot reinstates the solver from a restored snapshot
// according to the scheme and adopts the snapshot's vectors as the
// next recovery's in-place decode targets. It returns the iteration
// the solver rolled back to.
func (m *Manager) adoptSnapshot(snap *fti.Snapshot) (int, error) {
	// Adopt the restored vectors as next recovery's decode targets:
	// same lengths next time means the decode lands in place again.
	for k, v := range snap.Vectors {
		m.recoverBuf[k] = v
	}
	if m.cfg.Scheme != Lossy {
		err := m.slv.RestoreDynamic(solver.DynamicState{
			Iteration: snap.Iteration,
			Scalars:   snap.Scalars,
			Vectors:   snap.Vectors,
		})
		if err != nil {
			return 0, err
		}
		return snap.Iteration, nil
	}
	x, ok := snap.Vectors["x"]
	if !ok {
		return 0, fmt.Errorf("core: lossy checkpoint lacks x")
	}
	m.rst.Restart(x)
	return snap.Iteration, nil
}

// RecoverFresh is the no-checkpoint recovery path: the execution
// restarts from the initial guess (iteration 0). Used when a failure
// strikes before the first checkpoint.
func (m *Manager) RecoverFresh(x0 []float64) int {
	if m.rst != nil {
		m.rst.Restart(x0)
		m.qa.ObserveRecovery(0, TierRestartZero.String(), 0, m.slv.ResidualNorm())
		return 0
	}
	// Traditional solvers are all Restartable in this codebase, but
	// keep a defensive fallback via RestoreDynamic.
	_ = m.slv.RestoreDynamic(solver.DynamicState{
		Iteration: 0,
		Vectors:   map[string][]float64{"x": x0},
	})
	m.qa.ObserveRecovery(0, TierRestartZero.String(), 0, m.slv.ResidualNorm())
	return 0
}
