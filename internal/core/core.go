// Package core implements the paper's contribution: the lossy
// checkpointing scheme for iterative methods (§4.2).
//
// Three schemes are provided, matching the paper's evaluation:
//
//   - Traditional: dynamic variables are checkpointed verbatim
//     (Algorithm 1). For CG that is (i, ρ, p, x); recovery restores
//     them and recomputes r = b − A·x.
//   - Lossless: identical state, but the vectors pass through a
//     lossless codec (the paper's Gzip baseline).
//   - Lossy: only the approximate solution x is checkpointed, through
//     an error-bounded lossy compressor (Algorithm 2). Recovery
//     decompresses x and *restarts* the method with x as a fresh
//     initial guess, rebuilding the Krylov state — the paper's answer
//     to compression errors breaking CG's orthogonality relations.
//
// For GMRES the scheme optionally applies Theorem 3: the compressor's
// pointwise-relative bound is re-derived before every checkpoint as
// eb = O(‖r⁽ᵗ⁾‖/‖b‖), which provably keeps the post-recovery residual
// on the order of the pre-failure residual (expected N′ = 0).
package core

import (
	"fmt"

	"repro/internal/fti"
	"repro/internal/lossless"
	"repro/internal/model"
	"repro/internal/solver"
	"repro/internal/sz"
)

// Scheme selects the checkpoint flavor.
type Scheme int

// The three checkpointing schemes compared throughout the paper.
const (
	Traditional Scheme = iota
	Lossless
	Lossy
)

// String names the scheme as the paper does.
func (s Scheme) String() string {
	switch s {
	case Traditional:
		return "traditional"
	case Lossless:
		return "lossless"
	case Lossy:
		return "lossy"
	}
	return fmt.Sprintf("Scheme(%d)", int(s))
}

// Config assembles a Manager.
type Config struct {
	// Scheme picks traditional, lossless, or lossy checkpointing.
	Scheme Scheme
	// Interval checkpoints every Interval iterations (Algorithm 1
	// line 3, "i % ckpt_intvl == 0"). Zero disables periodic
	// checkpoints (explicit Checkpoint calls still work).
	Interval int
	// SZParams configure the lossy compressor (ignored otherwise).
	// The zero value means PWRel at 1e-4 — the paper's setting for
	// Jacobi and CG.
	SZParams sz.Params
	// Adaptive enables the Theorem-3 bound: before each checkpoint the
	// pointwise-relative bound is set to AdaptiveC·‖r‖/‖b‖. Requires
	// BNorm. The paper uses this for GMRES.
	Adaptive  bool
	AdaptiveC float64
	// BNorm is ‖b‖ (or ‖M⁻¹b‖ for left-preconditioned GMRES), the
	// denominator of the Theorem-3 bound.
	BNorm float64
	// Codec overrides the lossless codec (default flate/Gzip).
	Codec lossless.Codec
	// LossyEncoder overrides the lossy compressor entirely (e.g. the
	// ZFP-like transform codec). When set, SZParams and Adaptive are
	// ignored — the caller owns the error-bound policy.
	LossyEncoder fti.Encoder
}

// Manager connects a solver to a checkpointer under one of the three
// schemes and keeps the bookkeeping the experiments need (bytes
// written, compression ratios, rollback distances).
type Manager struct {
	cfg          Config
	ckpt         *fti.Checkpointer
	slv          solver.Checkpointable
	rst          solver.Restartable
	gmres        *solver.GMRES // non-nil when the solver is GMRES (CurrentX)
	lastCkptIter int
	lastInfo     fti.Info
	haveCkpt     bool
	prevCkptIter int
	prevHaveCkpt bool
}

// NewManager wires solver s to storage through the scheme in cfg. The
// solver must implement Restartable for the lossy scheme.
func NewManager(cfg Config, storage fti.Storage, s solver.Checkpointable) (*Manager, error) {
	if cfg.Scheme == Lossy {
		if _, ok := s.(solver.Restartable); !ok {
			return nil, fmt.Errorf("core: lossy checkpointing needs a restartable solver, %T is not", s)
		}
		if cfg.SZParams.ErrorBound == 0 {
			cfg.SZParams = sz.Params{Mode: sz.PWRel, ErrorBound: 1e-4}
		}
		if cfg.Adaptive {
			if cfg.AdaptiveC <= 0 {
				cfg.AdaptiveC = 1
			}
			if cfg.BNorm <= 0 {
				return nil, fmt.Errorf("core: adaptive bound requires BNorm > 0")
			}
		}
	}
	if cfg.Codec == nil {
		cfg.Codec = lossless.Flate{}
	}
	m := &Manager{cfg: cfg, slv: s}
	m.rst, _ = s.(solver.Restartable)
	m.gmres, _ = s.(*solver.GMRES)
	m.ckpt = fti.New(storage, m.encoder())
	return m, nil
}

// encoder returns the fti encoder for the configured scheme,
// re-deriving the adaptive bound when enabled.
func (m *Manager) encoder() fti.Encoder {
	switch m.cfg.Scheme {
	case Traditional:
		return fti.Raw{}
	case Lossless:
		return fti.Lossless{Codec: m.cfg.Codec}
	default:
		if m.cfg.LossyEncoder != nil {
			return m.cfg.LossyEncoder
		}
		p := m.cfg.SZParams
		if m.cfg.Adaptive {
			eb := model.GMRESAdaptiveBound(m.slv.ResidualNorm(), m.cfg.BNorm, m.cfg.AdaptiveC)
			if eb > 0 {
				p.Mode = sz.PWRel
				p.ErrorBound = eb
			}
		}
		return fti.SZ{Params: p}
	}
}

// Checkpointer exposes the underlying fti.Checkpointer (for statics).
func (m *Manager) Checkpointer() *fti.Checkpointer { return m.ckpt }

// Due reports whether the periodic checkpoint condition of Algorithm 1
// line 3 holds at the solver's current iteration.
func (m *Manager) Due() bool {
	it := m.slv.Iteration()
	return m.cfg.Interval > 0 && it > 0 && it%m.cfg.Interval == 0 && it != m.lastCkptIter
}

// MaybeCheckpoint takes a checkpoint if one is due. It returns the
// checkpoint info when one was written.
func (m *Manager) MaybeCheckpoint() (*fti.Info, error) {
	if !m.Due() {
		return nil, nil
	}
	info, err := m.Checkpoint()
	if err != nil {
		return nil, err
	}
	return &info, nil
}

// Checkpoint writes a checkpoint now, regardless of the interval.
func (m *Manager) Checkpoint() (fti.Info, error) {
	snap := m.capture()
	m.ckpt.SetEncoder(m.encoder())
	info, err := m.ckpt.Save(snap)
	if err != nil {
		return fti.Info{}, err
	}
	m.prevCkptIter, m.prevHaveCkpt = m.lastCkptIter, m.haveCkpt
	m.lastCkptIter = m.slv.Iteration()
	m.lastInfo = info
	m.haveCkpt = true
	return info, nil
}

// AbortLastCheckpoint models a failure striking while the checkpoint
// was being written: the partial file is discarded and the previous
// checkpoint becomes the recovery target again. The virtual-time
// simulator calls this when a failure lands inside a checkpoint
// window.
func (m *Manager) AbortLastCheckpoint() error {
	if err := m.ckpt.DropLatest(); err != nil {
		return err
	}
	m.lastCkptIter, m.haveCkpt = m.prevCkptIter, m.prevHaveCkpt
	if m.ckpt.LatestSeq() == 0 {
		m.haveCkpt = false
	}
	return nil
}

// capture builds the scheme's snapshot: full dynamic state for
// traditional/lossless (Algorithm 1 line 4: i, ρ, p, x), solution-only
// for lossy (Algorithm 2 lines 4–5: i, compressed x).
func (m *Manager) capture() *fti.Snapshot {
	if m.cfg.Scheme != Lossy {
		st := m.slv.CaptureDynamic()
		return &fti.Snapshot{Iteration: st.Iteration, Scalars: st.Scalars, Vectors: st.Vectors}
	}
	return &fti.Snapshot{
		Iteration: m.slv.Iteration(),
		Vectors:   map[string][]float64{"x": m.currentX()},
	}
}

// currentX returns the best available approximate solution: GMRES
// materializes the mid-cycle iterate; other solvers expose x directly.
func (m *Manager) currentX() []float64 {
	if m.gmres != nil {
		return m.gmres.CurrentX()
	}
	return append([]float64(nil), m.slv.X()...)
}

// HasCheckpoint reports whether at least one checkpoint exists.
func (m *Manager) HasCheckpoint() bool { return m.haveCkpt }

// LastInfo returns the accounting of the most recent checkpoint.
func (m *Manager) LastInfo() fti.Info { return m.lastInfo }

// LastCheckpointIteration returns the iteration number at the most
// recent checkpoint (0 if none) — the rollback target.
func (m *Manager) LastCheckpointIteration() int {
	if !m.haveCkpt {
		return 0
	}
	return m.lastCkptIter
}

// Recover reinstates the solver from the latest checkpoint according
// to the scheme. For lossy checkpointing this is Algorithm 2 lines
// 7–13: decompress x, adopt it as a fresh initial guess, rebuild the
// auxiliary state. It returns the iteration the solver rolled back to.
func (m *Manager) Recover() (int, error) {
	snap, err := m.ckpt.Restore()
	if err != nil {
		return 0, err
	}
	if m.cfg.Scheme != Lossy {
		err := m.slv.RestoreDynamic(solver.DynamicState{
			Iteration: snap.Iteration,
			Scalars:   snap.Scalars,
			Vectors:   snap.Vectors,
		})
		if err != nil {
			return 0, err
		}
		return snap.Iteration, nil
	}
	x, ok := snap.Vectors["x"]
	if !ok {
		return 0, fmt.Errorf("core: lossy checkpoint lacks x")
	}
	m.rst.Restart(x)
	return snap.Iteration, nil
}

// RecoverFresh is the no-checkpoint recovery path: the execution
// restarts from the initial guess (iteration 0). Used when a failure
// strikes before the first checkpoint.
func (m *Manager) RecoverFresh(x0 []float64) int {
	if m.rst != nil {
		m.rst.Restart(x0)
		return 0
	}
	// Traditional solvers are all Restartable in this codebase, but
	// keep a defensive fallback via RestoreDynamic.
	_ = m.slv.RestoreDynamic(solver.DynamicState{
		Iteration: 0,
		Vectors:   map[string][]float64{"x": x0},
	})
	return 0
}
