package core

import (
	"fmt"
	"math"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fti"
	"repro/internal/solver"
	"repro/internal/sz"
)

// hookStorage injects write failures under a real MemStorage — the
// crash-consistency harness: a failing write models the node dying
// between SaveAsync and write completion (nothing durable remains
// either way).
type hookStorage struct {
	fti.Storage
	failNext atomic.Bool
}

func (h *hookStorage) Write(name string, data []byte) error {
	if h.failNext.CompareAndSwap(true, false) {
		return fmt.Errorf("injected failure mid-write")
	}
	return h.Storage.Write(name, data)
}

// traceRun drives CG with checkpoints every `interval` iterations and
// one recovery at iteration failAt, returning the residual after every
// step. Shared by the sync/async bitwise-equivalence tests.
func traceRun(t *testing.T, scheme Scheme, async bool, interval, failAt int) []float64 {
	t.Helper()
	a, b, _ := cgSystem(t)
	s := newCG(t, a, b)
	m, err := NewManager(Config{
		Scheme:   scheme,
		Interval: interval,
		Async:    async,
		SZParams: sz.Params{Mode: sz.PWRel, ErrorBound: 1e-4},
	}, fti.NewMemStorage(), s)
	if err != nil {
		t.Fatal(err)
	}
	var trace []float64
	failed := false
	_, err = solver.RunToConvergence(s, solver.Options{MaxIter: 5000}, func(it int, rnorm float64) error {
		trace = append(trace, rnorm)
		if _, err := m.MaybeCheckpoint(); err != nil {
			return err
		}
		if !failed && it == failAt {
			failed = true
			if _, err := m.Recover(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.WaitCheckpoint(); err != nil {
		t.Fatal(err)
	}
	return trace
}

// TestAsyncTraceBitwiseIdenticalToSync is the paper-facing guarantee:
// moving encode+write off the critical path must not change a single
// bit of the numerics — same checkpoints, same recovery, same
// convergence trace.
func TestAsyncTraceBitwiseIdenticalToSync(t *testing.T) {
	for _, scheme := range []Scheme{Traditional, Lossy} {
		syncTrace := traceRun(t, scheme, false, 10, 35)
		asyncTrace := traceRun(t, scheme, true, 10, 35)
		if len(syncTrace) != len(asyncTrace) {
			t.Fatalf("%s: sync %d iterations, async %d", scheme, len(syncTrace), len(asyncTrace))
		}
		for i := range syncTrace {
			if math.Float64bits(syncTrace[i]) != math.Float64bits(asyncTrace[i]) {
				t.Fatalf("%s: traces diverge at iteration %d: %x vs %x",
					scheme, i, syncTrace[i], asyncTrace[i])
			}
		}
	}
}

// TestAsyncCrashConsistency: a failure between SaveAsync and write
// completion must leave the previous committed checkpoint as the
// recovery target (the paper's failure-during-checkpoint path).
func TestAsyncCrashConsistency(t *testing.T) {
	a, b, _ := cgSystem(t)
	s := newCG(t, a, b)
	st := &hookStorage{Storage: fti.NewMemStorage()}
	m, err := NewManager(Config{Scheme: Traditional, Async: true}, st, s)
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 10; i++ {
		s.Step()
	}
	if _, err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.WaitCheckpoint(); err != nil {
		t.Fatal(err)
	}
	if got := m.LastCheckpointIteration(); got != 10 {
		t.Fatalf("committed checkpoint at %d, want 10", got)
	}

	for i := 0; i < 10; i++ {
		s.Step()
	}
	st.failNext.Store(true)
	if _, err := m.Checkpoint(); err != nil {
		t.Fatal(err) // capture succeeds; the write dies in flight
	}
	for i := 0; i < 3; i++ {
		s.Step() // the solver keeps going, unaware
	}

	rolledTo, err := m.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rolledTo != 10 {
		t.Fatalf("recovered to iteration %d, want 10 (previous committed checkpoint)", rolledTo)
	}
	if got := m.LastCheckpointIteration(); got != 10 {
		t.Fatalf("rollback target %d after recovery, want 10", got)
	}
	// The pipeline is healthy again: the next checkpoint commits.
	for i := 0; i < 5; i++ {
		s.Step() // resume from the restored iteration 10
	}
	if _, err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.WaitCheckpoint(); err != nil {
		t.Fatal(err)
	}
	if got := m.LastCheckpointIteration(); got != 15 {
		t.Fatalf("post-recovery checkpoint at %d, want 15", got)
	}
}

// TestAsyncErrorSurfacedOnNextCheckpoint: when no recovery intervenes,
// a failed background write surfaces as an explicit error on the next
// Checkpoint call, and the committed bookkeeping is unchanged.
func TestAsyncErrorSurfacedOnNextCheckpoint(t *testing.T) {
	a, b, _ := cgSystem(t)
	s := newCG(t, a, b)
	st := &hookStorage{Storage: fti.NewMemStorage()}
	m, err := NewManager(Config{Scheme: Traditional, Async: true}, st, s)
	if err != nil {
		t.Fatal(err)
	}
	s.Step()
	if _, err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.WaitCheckpoint(); err != nil {
		t.Fatal(err)
	}

	s.Step()
	st.failNext.Store(true)
	if _, err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	s.Step()
	if _, err := m.Checkpoint(); err == nil {
		t.Fatal("background write failure was swallowed")
	}
	if got := m.LastCheckpointIteration(); got != 1 {
		t.Fatalf("committed checkpoint moved to %d despite the failed write", got)
	}
	// Error consumed; checkpointing resumes.
	if _, err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.WaitCheckpoint(); err != nil {
		t.Fatal(err)
	}
	if got := m.LastCheckpointIteration(); got != 3 {
		t.Fatalf("recovered pipeline checkpointed at %d, want 3", got)
	}
}

// TestAsyncInFlightNotARecoveryTarget: HasCheckpoint and
// LastCheckpointIteration must ignore a save whose write has not
// committed yet.
func TestAsyncInFlightNotARecoveryTarget(t *testing.T) {
	a, b, _ := cgSystem(t)
	s := newCG(t, a, b)
	gate := make(chan struct{})
	st := &gatedStorage{Storage: fti.NewMemStorage(), gate: gate}
	m, err := NewManager(Config{Scheme: Traditional, Async: true}, st, s)
	if err != nil {
		t.Fatal(err)
	}
	s.Step()
	if _, err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if m.HasCheckpoint() || m.LastCheckpointIteration() != 0 {
		t.Fatal("in-flight save already counted as committed")
	}
	if !m.InFlight() {
		t.Fatal("save should be in flight")
	}
	close(gate)
	if _, err := m.WaitCheckpoint(); err != nil {
		t.Fatal(err)
	}
	if !m.HasCheckpoint() || m.LastCheckpointIteration() != 1 {
		t.Fatal("committed save not promoted")
	}
}

type gatedStorage struct {
	fti.Storage
	gate chan struct{}
}

func (g *gatedStorage) Write(name string, data []byte) error {
	<-g.gate
	return g.Storage.Write(name, data)
}

// TestAsyncManagerRecordsBackpressure: a Checkpoint issued while the
// previous write is still in flight stalls the solver, and that stall
// must show up in Stats — the capture+backpressure sum is the
// advertised total solver-visible cost.
func TestAsyncManagerRecordsBackpressure(t *testing.T) {
	a, b, _ := cgSystem(t)
	s := newCG(t, a, b)
	gate := make(chan struct{})
	st := &gatedStorage{Storage: fti.NewMemStorage(), gate: gate}
	m, err := NewManager(Config{Scheme: Traditional, Async: true}, st, s)
	if err != nil {
		t.Fatal(err)
	}
	s.Step()
	if _, err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(30 * time.Millisecond)
		close(gate)
	}()
	s.Step()
	if _, err := m.Checkpoint(); err != nil { // stalls until the gate opens
		t.Fatal(err)
	}
	if _, err := m.WaitCheckpoint(); err != nil {
		t.Fatal(err)
	}
	if bp := m.AsyncCheckpointer().Stats().BackpressureSeconds; bp <= 0 {
		t.Fatalf("BackpressureSeconds = %g, want > 0: the solver stalled on the in-flight write", bp)
	}
}

// TestAsyncAbortDropsCompletedInFlight: the virtual-time simulator's
// abort path — the failure struck inside the checkpoint window — must
// restore the previous rollback target even when the background write
// had already finished in real time.
func TestAsyncAbortDropsCompletedInFlight(t *testing.T) {
	a, b, _ := cgSystem(t)
	s := newCG(t, a, b)
	m, err := NewManager(Config{Scheme: Traditional, Async: true}, fti.NewMemStorage(), s)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		s.Step()
	}
	if _, err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.WaitCheckpoint(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		s.Step()
	}
	infoBefore, err := m.WaitCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := m.AbortLastCheckpoint(); err != nil {
		t.Fatal(err)
	}
	if got := m.LastCheckpointIteration(); got != 5 {
		t.Fatalf("after abort the rollback target is %d, want 5", got)
	}
	if got := m.LastInfo(); got.Seq != infoBefore.Seq || got.Bytes != infoBefore.Bytes {
		t.Fatalf("LastInfo after abort describes the dropped checkpoint: %+v, want %+v", got, infoBefore)
	}
	rolledTo, err := m.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rolledTo != 5 {
		t.Fatalf("recovered to %d, want 5", rolledTo)
	}
}

// TestAbortWithKeepOneLeavesNoPhantomCheckpoint: with a retention
// window of 1, aborting the latest checkpoint empties storage (the gc
// already removed its predecessor), and HasCheckpoint must say so —
// otherwise the failure handler would attempt a recovery that can only
// fail instead of restarting from scratch.
func TestAbortWithKeepOneLeavesNoPhantomCheckpoint(t *testing.T) {
	for _, async := range []bool{false, true} {
		a, b, _ := cgSystem(t)
		s := newCG(t, a, b)
		m, err := NewManager(Config{Scheme: Traditional, Async: async}, fti.NewMemStorage(), s)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Checkpointer().SetKeep(1); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4; i++ {
			s.Step()
			if _, err := m.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			if _, err := m.WaitCheckpoint(); err != nil {
				t.Fatal(err)
			}
		}
		if err := m.AbortLastCheckpoint(); err != nil {
			t.Fatal(err)
		}
		if m.HasCheckpoint() {
			t.Fatalf("async=%v: HasCheckpoint()==true with empty storage", async)
		}
		if _, err := m.Recover(); err == nil {
			t.Fatalf("async=%v: Recover should fail with no checkpoints; callers must use RecoverFresh", async)
		}
		m.RecoverFresh(make([]float64, a.Rows))
	}
}

// TestAsyncConcurrentStepping exercises the actual overlap under the
// race detector: the solver mutates its state while background encodes
// and writes are in flight, checkpoints are never awaited explicitly,
// and a mid-run recovery drains whatever is in the pipe.
func TestAsyncConcurrentStepping(t *testing.T) {
	a, b, xe := cgSystem(t)
	s := newCG(t, a, b)
	m, err := NewManager(Config{
		Scheme:   Lossy,
		Interval: 5,
		Async:    true,
		SZParams: sz.Params{Mode: sz.PWRel, ErrorBound: 1e-4},
	}, fti.NewMemStorage(), s)
	if err != nil {
		t.Fatal(err)
	}
	failed := false
	res, err := solver.RunToConvergence(s, solver.Options{MaxIter: 5000}, func(it int, rnorm float64) error {
		if _, err := m.MaybeCheckpoint(); err != nil {
			return err
		}
		if !failed && it == 42 {
			failed = true
			if _, err := m.Recover(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("async-checkpointed CG did not converge")
	}
	if _, err := m.WaitCheckpoint(); err != nil {
		t.Fatal(err)
	}
	stats := m.AsyncCheckpointer().Stats()
	if stats.Saves == 0 {
		t.Fatal("no async saves happened")
	}
	_ = xe
}
