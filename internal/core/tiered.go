package core

import (
	"fmt"
	"time"

	"repro/internal/abft"
	"repro/internal/adapt"
	"repro/internal/quality"
)

// RecoveryTier names one rung of the tiered recovery chain, tried in
// order until one succeeds:
//
//	TierABFT               checkpoint-free algorithmic reconstruction
//	                       (needs the ABFT guard's retained redundancy;
//	                       costs local-solve iterations, no PFS reads)
//	TierCheckpoint         the latest committed checkpoint (one PFS
//	                       read of the newest group)
//	TierPreviousCheckpoint an older committed checkpoint the restore
//	                       walk fell back to (the newest was missing or
//	                       corrupt; its rejected read was still paid)
//	TierRestartZero        restart from the initial guess — always
//	                       available, loses all progress
type RecoveryTier int

const (
	TierABFT RecoveryTier = iota
	TierCheckpoint
	TierPreviousCheckpoint
	TierRestartZero
)

// String names the tier.
func (t RecoveryTier) String() string {
	switch t {
	case TierABFT:
		return "abft"
	case TierCheckpoint:
		return "checkpoint"
	case TierPreviousCheckpoint:
		return "previous-checkpoint"
	case TierRestartZero:
		return "restart-zero"
	}
	return fmt.Sprintf("RecoveryTier(%d)", int(t))
}

// TierAttempt is the fti.Info-style observation of one tier try: what
// was attempted, whether it was accepted, and what it cost — wall
// seconds, local-solve iterations (the ABFT tier's currency) and
// encoded bytes read from storage (the checkpoint tiers'). The sim and
// cluster layers price tiers from these fields.
type TierAttempt struct {
	Tier     RecoveryTier
	Accepted bool
	Err      string // rejection reason, empty when accepted
	Seconds  float64
	// Iterations is the ABFT tier's local reconstruction iteration
	// count — the tier costs iterations, not PFS reads.
	Iterations int
	// ReadBytes is the encoded bytes read from storage for the attempt
	// (0 for the ABFT and restart-zero tiers).
	ReadBytes int
	// Seq is the checkpoint sequence number of a checkpoint-tier
	// attempt (0 otherwise).
	Seq int
}

// RecoveryReport is the outcome of one RecoverTiered call: every tier
// attempt in order, the tier that finally recovered the solver, and
// the iteration the solver stands at afterwards.
type RecoveryReport struct {
	Attempts  []TierAttempt
	Used      RecoveryTier
	Iteration int
	// AdoptedDistortion is the audited distortion of the checkpoint
	// whose state the chain adopted — nil when the quality auditor is
	// not attached, the adopted save was not sampled, or the chain
	// recovered without a checkpoint (ABFT, restart-zero).
	AdoptedDistortion *quality.Distortion
	// Interrupted marks a chain whose recovered state was lost to a
	// new failure before the chain's cost had fully elapsed (the
	// virtual-time harness sets it): the attempts and their durations
	// were still paid and are reported, but the chain recovered
	// nothing durable and its Used tier does not count as a completed
	// recovery.
	Interrupted bool
}

// ReadBytes sums the encoded bytes read from storage across all
// attempts — the recovery's total PFS read traffic, including reads of
// checkpoints that were then rejected.
func (r *RecoveryReport) ReadBytes() int {
	total := 0
	for _, a := range r.Attempts {
		total += a.ReadBytes
	}
	return total
}

// ABFTGuard returns the configured ABFT guard (nil when the tier is
// disabled).
func (m *Manager) ABFTGuard() *abft.Guard { return m.abft }

// RecoverTiered runs the full recovery chain after a failure:
// ABFT reconstruction → latest checkpoint → older checkpoints →
// restart-from-zero, accepting the highest tier that verifies. It
// never returns an error for a merely-degraded recovery — the chain
// bottoms out at restart-from-zero, which always succeeds — so the
// error return covers only broken invariants (an aborted in-flight
// checkpoint that cannot be dropped, for instance).
//
// The per-tier timings, iteration counts and read bytes are recorded
// in the returned report; an adaptive-interval controller wired into
// the Manager additionally receives the recovery observation with its
// tier flavor (ABFT recoveries never contaminate the I/O restart-cost
// estimate, and neither kind touches the failure-rate posterior).
func (m *Manager) RecoverTiered(x0 []float64) (*RecoveryReport, error) {
	rep := &RecoveryReport{}
	m.qa.ObserveFailure()
	chainStart := time.Now()
	traceAt := m.mobs.traceStart()
	defer func() {
		m.mobs.finishTiered(rep, traceAt, time.Since(chainStart).Seconds())
	}()

	// Tier 0: algorithmic reconstruction, no storage involved.
	if m.abft != nil {
		start := time.Now()
		recon, err := m.abft.Reconstruct()
		att := TierAttempt{Tier: TierABFT, Seconds: time.Since(start).Seconds()}
		if recon != nil {
			att.Iterations = recon.LocalIterations
		}
		if err == nil {
			att.Accepted = true
			rep.Attempts = append(rep.Attempts, att)
			rep.Used = TierABFT
			rep.Iteration = recon.Iteration
			// The state is recovered but nothing new is durable: the
			// interval window keeps running, and the controller sees a
			// no-I/O recovery.
			if m.ctrl != nil {
				m.ctrl.ObserveRecoveryKind(adapt.RecoveryObs{Seconds: att.Seconds, RestartIO: false})
			}
			m.qa.ObserveRecovery(0, TierABFT.String(), recon.Iteration, m.slv.ResidualNorm())
			return rep, nil
		}
		att.Err = err.Error()
		rep.Attempts = append(rep.Attempts, att)
	}

	// Tiers 1–2: the stored-checkpoint chain. The fti restore walk
	// already falls back newest-first; its per-attempt trace is mapped
	// onto tiers by comparing each attempt against the latest committed
	// sequence.
	if m.async != nil {
		m.async.Wait()
		m.promote()
		m.asyncErr = nil
	}
	if m.HasCheckpoint() {
		if m.recoverBuf == nil {
			m.recoverBuf = map[string][]float64{}
		}
		start := time.Now()
		snap, attempts, err := m.ckpt.RestoreIntoTrace(m.recoverBuf)
		if err != nil && len(attempts) == 0 {
			// The walk failed before any per-checkpoint read began
			// (e.g. the storage listing errored): the elapsed time was
			// still paid, so the rejection is reported with it rather
			// than dropped.
			rep.Attempts = append(rep.Attempts, TierAttempt{
				Tier:    TierCheckpoint,
				Err:     err.Error(),
				Seconds: time.Since(start).Seconds(),
			})
		}
		latest := m.lastInfo.Seq
		for _, fa := range attempts {
			tier := TierCheckpoint
			if fa.Seq != latest {
				tier = TierPreviousCheckpoint
			}
			rep.Attempts = append(rep.Attempts, TierAttempt{
				Tier:      tier,
				Accepted:  fa.Err == "",
				Err:       fa.Err,
				Seconds:   fa.Seconds,
				ReadBytes: fa.Bytes,
				Seq:       fa.Seq,
			})
		}
		if err == nil {
			adoptStart := time.Now()
			it, aerr := m.adoptSnapshot(snap)
			if aerr == nil {
				last := &rep.Attempts[len(rep.Attempts)-1]
				rep.Used = last.Tier
				rep.Iteration = it
				rep.AdoptedDistortion = m.qa.DistortionFor(last.Seq)
				m.qa.ObserveRecovery(last.Seq, last.Tier.String(), it, m.slv.ResidualNorm())
				if m.ctrl != nil {
					m.ctrl.ObserveRecoveryKind(adapt.RecoveryObs{
						Seconds:   time.Since(start).Seconds(),
						RestartIO: true,
					})
					// The state just went back to storage's version of
					// itself: the interval window restarts.
					m.lastCkptClock = m.clock()
				}
				return rep, nil
			}
			// The snapshot decoded but the solver rejected it (missing
			// dynamic variables, dimension mismatch): demote the accepted
			// attempt and degrade to restart-from-zero. The adoption
			// work belongs to the rejected attempt's duration.
			last := &rep.Attempts[len(rep.Attempts)-1]
			last.Accepted = false
			last.Err = aerr.Error()
			last.Seconds += time.Since(adoptStart).Seconds()
		}
		// err != nil: every checkpoint was invalid; the rejected
		// attempts are already in the report. Degrade to tier 3.
	}

	// Tier 3: restart from the initial guess. Always succeeds. Its
	// duration is measured like every other tier's, so a report's
	// attempts carry consistent timings whichever rung recovered.
	freshStart := time.Now()
	it := m.RecoverFresh(x0)
	rep.Attempts = append(rep.Attempts, TierAttempt{
		Tier:     TierRestartZero,
		Accepted: true,
		Seconds:  time.Since(freshStart).Seconds(),
	})
	rep.Used = TierRestartZero
	rep.Iteration = it
	return rep, nil
}
