package core

import (
	"math"
	"testing"
	"time"

	"repro/internal/failure"
	"repro/internal/fti"
	"repro/internal/solver"
	"repro/internal/sparse"
)

// TestStorageFaultCampaignInvisibleToSolver is the PR's headline
// property: a sustained storage-fault campaign — the first attempt of
// every distinct storage object fails transiently — must be entirely
// absorbed by the retry layer. The solver sees zero errors, degrades
// nothing, and produces a residual trace bitwise identical to the
// fault-free run.
func TestStorageFaultCampaignInvisibleToSolver(t *testing.T) {
	a := sparse.Poisson2D(30)
	xe := sparse.SmoothField(a.Rows, 21)
	b := sparse.RHSForSolution(a, xe)
	newSolver := func() *solver.CG {
		return solver.NewCG(a, nil, b, nil, solver.SeqSpace{}, solver.Options{RTol: 1e-10})
	}
	cfg := Config{Scheme: Traditional, Interval: 1, Shards: 8}

	run := func(st fti.Storage, mgrCfg Config) ([]float64, *Manager, int, error) {
		s := newSolver()
		m, err := NewManager(mgrCfg, st, s)
		if err != nil {
			t.Fatal(err)
		}
		var trace []float64
		ckpts := 0
		_, err = solver.RunToConvergence(s, solver.Options{MaxIter: 2000}, func(it int, rnorm float64) error {
			trace = append(trace, rnorm)
			info, err := m.MaybeCheckpoint()
			if err != nil {
				return err
			}
			if info != nil {
				ckpts++
			}
			return nil
		})
		return trace, m, ckpts, err
	}

	// Fault-free reference.
	want, _, _, err := run(fti.NewMemStorage(), cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Fault campaign: injector under the retry wrapper, every object's
	// first write attempt fails.
	inj := failure.NewStorageInjector(fti.NewMemStorage(), 7, failure.StorageProfile{FailFirstAttempt: true})
	res := fti.NewResilient(inj, fti.FaultPolicy{MaxRetries: 4, Seed: 7, Sleep: func(time.Duration) {}})
	degCfg := cfg
	degCfg.DegradedWrites = true
	got, m, ckpts, err := run(res, degCfg)
	if err != nil {
		t.Fatalf("solver saw a storage error through the retry layer: %v", err)
	}

	injected := inj.Stats().Total()
	if injected < 500 {
		t.Fatalf("campaign injected only %d faults over %d checkpoints, want ≥ 500 — grow the system", injected, ckpts)
	}
	if m.DegradedSaves() != 0 {
		t.Fatalf("%d checkpoints degraded; every fault should have been absorbed (last: %v)",
			m.DegradedSaves(), m.LastSaveError())
	}
	st := res.Stats()
	if st.Recovered == 0 || st.Exhausted != 0 || st.Permanent != 0 {
		t.Fatalf("retry stats %+v: want recoveries only", st)
	}

	// Bitwise-identical convergence: storage faults may not perturb the
	// numerics by even one ULP.
	if len(got) != len(want) {
		t.Fatalf("trace lengths differ: %d vs %d iterations", len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("iteration %d: residual %x != fault-free %x", i, got[i], want[i])
		}
	}
	t.Logf("campaign: %d faults across %d checkpoints absorbed (%d retries), trace of %d residuals bitwise identical",
		injected, ckpts, st.Retries, len(got))
}
