package core

import (
	"math"
	"testing"

	"repro/internal/fti"
	"repro/internal/obs"
	"repro/internal/quality"
	"repro/internal/solver"
	"repro/internal/sz"
	"repro/internal/vec"
)

// TestQualityNonPerturbationMatrix is the observer-purity contract in
// executable form: across sync/async × sharded/monolithic ×
// lossy/lossless pipelines, a run with the quality auditor attached
// (exhaustive audits, live registry and tracer, residual feed, one
// mid-run recovery) must produce a bitwise-identical residual
// trajectory and final solution to the uninstrumented run. CI re-runs
// this under the race detector, covering the async pipeline's
// background audit goroutine.
func TestQualityNonPerturbationMatrix(t *testing.T) {
	a, b, _ := cgSystem(t)
	bnorm := vec.Norm2(b)
	cases := []struct {
		name   string
		scheme Scheme
		shards int
		async  bool
	}{
		{"sync-monolithic-lossy", Lossy, 0, false},
		{"sync-sharded-lossy", Lossy, 4, false},
		{"async-monolithic-lossy", Lossy, 0, true},
		{"async-sharded-lossy", Lossy, 4, true},
		{"sync-monolithic-lossless", Lossless, 0, false},
		{"async-sharded-lossless", Lossless, 4, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			run := func(qa *quality.Auditor) ([]uint64, []uint64) {
				s := newCG(t, a, b)
				m, err := NewManager(Config{
					Scheme:         tc.scheme,
					SZParams:       sz.Params{Mode: sz.PWRel, ErrorBound: 1e-4},
					Shards:         tc.shards,
					StorageWorkers: 2,
					Async:          tc.async,
				}, fti.NewMemStorage(), s)
				if err != nil {
					t.Fatal(err)
				}
				m.InstrumentQuality(qa) // nil detaches; non-nil audits
				var trace []uint64
				failed := false
				_, err = solver.RunToConvergence(s, solver.Options{MaxIter: 500}, func(it int, rnorm float64) error {
					qa.ObserveResidual(it, rnorm)
					trace = append(trace, math.Float64bits(rnorm))
					if it%10 == 0 {
						if _, err := m.Checkpoint(); err != nil {
							return err
						}
					}
					if it == 35 && !failed {
						failed = true
						if _, err := m.Recover(); err != nil {
							return err
						}
					}
					return nil
				})
				if err != nil {
					t.Fatal(err)
				}
				if _, err := m.WaitCheckpoint(); err != nil {
					t.Fatal(err)
				}
				x := s.X()
				xbits := make([]uint64, len(x))
				for i, v := range x {
					xbits[i] = math.Float64bits(v)
				}
				return trace, xbits
			}

			baseTrace, baseX := run(nil)
			qa := quality.New(quality.Config{Exhaustive: true, BNorm: bnorm})
			qa.Instrument(obs.New(), obs.NewTracer())
			instTrace, instX := run(qa)

			if len(baseTrace) != len(instTrace) {
				t.Fatalf("trajectory length diverged: %d vs %d iterations", len(baseTrace), len(instTrace))
			}
			for i := range baseTrace {
				if baseTrace[i] != instTrace[i] {
					t.Fatalf("residual trace diverged at iteration %d: %x vs %x",
						i, baseTrace[i], instTrace[i])
				}
			}
			for i := range baseX {
				if baseX[i] != instX[i] {
					t.Fatalf("final solution diverged at element %d", i)
				}
			}
			// The identity must be evidence of instrumentation, not of a
			// silently detached auditor.
			if len(qa.Records()) == 0 {
				t.Fatal("instrumented run audited nothing")
			}
			if len(qa.RecoveryEntries()) != 1 {
				t.Fatalf("expected 1 recovery attribution, got %d", len(qa.RecoveryEntries()))
			}
		})
	}
}
