package core

import (
	"testing"

	"repro/internal/fti"
	"repro/internal/solver"
	"repro/internal/sz"
)

// shardTraceRun drives CG with checkpoints every interval iterations
// and one recovery at failAt, under an arbitrary layout/pipeline
// configuration, returning the residual after every step.
func shardTraceRun(t *testing.T, async bool, shards, workers, interval, failAt int) ([]float64, fti.Info) {
	t.Helper()
	a, b, _ := cgSystem(t)
	s := newCG(t, a, b)
	m, err := NewManager(Config{
		Scheme:         Lossy,
		Interval:       interval,
		Async:          async,
		Shards:         shards,
		StorageWorkers: workers,
		SZParams:       sz.Params{Mode: sz.PWRel, ErrorBound: 1e-4},
	}, fti.NewMemStorage(), s)
	if err != nil {
		t.Fatal(err)
	}
	var trace []float64
	failed := false
	_, err = solver.RunToConvergence(s, solver.Options{MaxIter: 5000}, func(it int, rnorm float64) error {
		trace = append(trace, rnorm)
		if _, err := m.MaybeCheckpoint(); err != nil {
			return err
		}
		if !failed && it == failAt {
			failed = true
			if _, err := m.Recover(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	info, err := m.WaitCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	return trace, info
}

// TestShardedAsyncTraceBitwiseIdenticalToMonolithicSync is the
// acceptance property: the storage layout (monolithic vs 8-way
// sharded) and the pipeline (sync vs async) change where checkpoint
// bytes live and when they are written — never the numerics. All four
// combinations must produce bitwise-identical residual traces through
// a checkpoint/recover cycle.
func TestShardedAsyncTraceBitwiseIdenticalToMonolithicSync(t *testing.T) {
	ref, refInfo := shardTraceRun(t, false, 1, 0, 10, 35)
	if refInfo.Shards != 1 {
		t.Fatalf("monolithic run reported %d shards", refInfo.Shards)
	}
	for _, tc := range []struct {
		name           string
		async          bool
		shards, wkrs   int
		expectedShards int
	}{
		{"sync/sharded", false, 8, 4, 8},
		{"async/monolithic", true, 1, 0, 1},
		{"async/sharded", true, 8, 4, 8},
	} {
		trace, info := shardTraceRun(t, tc.async, tc.shards, tc.wkrs, 10, 35)
		if info.Shards != tc.expectedShards {
			t.Fatalf("%s: committed %d shards, want %d", tc.name, info.Shards, tc.expectedShards)
		}
		if len(trace) != len(ref) {
			t.Fatalf("%s: %d residuals vs %d in the reference", tc.name, len(trace), len(ref))
		}
		for i := range ref {
			if trace[i] != ref[i] {
				t.Fatalf("%s: residual %d differs bitwise: %g vs %g", tc.name, i, trace[i], ref[i])
			}
		}
	}
}

// TestManagerRejectsAbsurdSharding: the config path validates through
// to fti.SetSharding.
func TestManagerRejectsAbsurdSharding(t *testing.T) {
	a, b, _ := cgSystem(t)
	s := newCG(t, a, b)
	_, err := NewManager(Config{
		Scheme: Lossy,
		Shards: 1 << 20,
	}, fti.NewMemStorage(), s)
	if err == nil {
		t.Fatal("Manager accepted 2^20 shards")
	}
}
