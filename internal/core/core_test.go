package core

import (
	"testing"

	"repro/internal/fti"
	"repro/internal/solver"
	"repro/internal/sparse"
	"repro/internal/sz"
	"repro/internal/vec"
)

func cgSystem(t *testing.T) (*sparse.CSR, []float64, []float64) {
	t.Helper()
	a := sparse.Poisson2D(10)
	xe := sparse.SmoothField(a.Rows, 21)
	b := sparse.RHSForSolution(a, xe)
	return a, b, xe
}

func newCG(t *testing.T, a *sparse.CSR, b []float64) *solver.CG {
	t.Helper()
	return solver.NewCG(a, nil, b, nil, solver.SeqSpace{}, solver.Options{RTol: 1e-10})
}

func TestSchemeString(t *testing.T) {
	if Traditional.String() != "traditional" || Lossless.String() != "lossless" || Lossy.String() != "lossy" {
		t.Fatal("scheme names wrong")
	}
}

func TestTraditionalCheckpointRecoverContinues(t *testing.T) {
	a, b, xe := cgSystem(t)
	s := newCG(t, a, b)
	m, err := NewManager(Config{Scheme: Traditional, Interval: 5}, fti.NewMemStorage(), s)
	if err != nil {
		t.Fatal(err)
	}
	// Failure-free baseline iteration count.
	base := newCG(t, a, b)
	resBase, _ := solver.RunToConvergence(base, solver.Options{MaxIter: 2000}, nil)

	var failed bool
	res, err := solver.RunToConvergence(s, solver.Options{MaxIter: 2000}, func(it int, rnorm float64) error {
		if _, err := m.MaybeCheckpoint(); err != nil {
			return err
		}
		if it == 23 && !failed {
			failed = true
			// Simulate the fail-stop: recover from the last checkpoint.
			rolledTo, err := m.Recover()
			if err != nil {
				return err
			}
			if rolledTo != 20 {
				t.Errorf("rolled back to %d, want 20", rolledTo)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge after recovery")
	}
	diff := make([]float64, len(xe))
	vec.Sub(diff, s.X(), xe)
	if rel := vec.Norm2(diff) / vec.Norm2(xe); rel > 1e-6 {
		t.Fatalf("solution error %g after traditional recovery", rel)
	}
	// Traditional recovery replays the rolled-back iterations exactly:
	// no extra iterations beyond the rollback.
	if res.Iterations < resBase.Iterations {
		t.Fatalf("iterations %d below failure-free baseline %d?", res.Iterations, resBase.Iterations)
	}
}

func TestLossyCheckpointRecoverConverges(t *testing.T) {
	a, b, xe := cgSystem(t)
	s := newCG(t, a, b)
	m, err := NewManager(Config{
		Scheme:   Lossy,
		Interval: 10,
		SZParams: sz.Params{Mode: sz.PWRel, ErrorBound: 1e-4},
	}, fti.NewMemStorage(), s)
	if err != nil {
		t.Fatal(err)
	}
	failures := 0
	res, err := solver.RunToConvergence(s, solver.Options{MaxIter: 5000}, func(it int, rnorm float64) error {
		if _, err := m.MaybeCheckpoint(); err != nil {
			return err
		}
		if it == 35 && failures == 0 {
			failures++
			if _, err := m.Recover(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("lossy recovery prevented convergence")
	}
	diff := make([]float64, len(xe))
	vec.Sub(diff, s.X(), xe)
	if rel := vec.Norm2(diff) / vec.Norm2(xe); rel > 1e-5 {
		t.Fatalf("solution error %g after lossy recovery", rel)
	}
}

func TestLossyCheckpointOnlySavesX(t *testing.T) {
	a, b, _ := cgSystem(t)
	s := newCG(t, a, b)
	m, err := NewManager(Config{Scheme: Lossy, Interval: 1}, fti.NewMemStorage(), s)
	if err != nil {
		t.Fatal(err)
	}
	s.Step()
	info, err := m.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	// One vector of n values (plus negligible header): the paper's
	// point that lossy CG checkpoints one vector, traditional two.
	if info.RawBytes != 8*a.Rows {
		t.Fatalf("lossy checkpoint raw bytes %d, want %d (x only)", info.RawBytes, 8*a.Rows)
	}

	s2 := newCG(t, a, b)
	m2, err := NewManager(Config{Scheme: Traditional, Interval: 1}, fti.NewMemStorage(), s2)
	if err != nil {
		t.Fatal(err)
	}
	s2.Step()
	info2, err := m2.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if info2.RawBytes != 8*2*a.Rows+8 {
		t.Fatalf("traditional checkpoint raw bytes %d, want %d (x, p, rho)",
			info2.RawBytes, 8*2*a.Rows+8)
	}
}

func TestLossyCompressionBeatsLossless(t *testing.T) {
	// Use a system large enough that compressor headers amortize.
	a := sparse.Poisson2D(40)
	xe := sparse.SmoothField(a.Rows, 3)
	b := sparse.RHSForSolution(a, xe)
	run := func(scheme Scheme) fti.Info {
		s := newCG(t, a, b)
		m, err := NewManager(Config{Scheme: scheme, Interval: 0,
			SZParams: sz.Params{Mode: sz.PWRel, ErrorBound: 1e-4}}, fti.NewMemStorage(), s)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 30; i++ {
			s.Step()
		}
		info, err := m.Checkpoint()
		if err != nil {
			t.Fatal(err)
		}
		return info
	}
	lossy := run(Lossy)
	losslessInfo := run(Lossless)
	trad := run(Traditional)
	// Vector payloads: lossy ≪ lossless < traditional. Compare
	// per-vector byte rates because the schemes checkpoint different
	// variable sets (lossy: x; others: x and p).
	lossyRate := float64(lossy.VectorBytes) / float64(lossy.RawBytes)
	losslessRate := float64(losslessInfo.VectorBytes) / float64(losslessInfo.RawBytes-8)
	tradRate := float64(trad.VectorBytes) / float64(trad.RawBytes-8)
	if !(lossyRate < losslessRate && losslessRate < tradRate*1.01) {
		t.Fatalf("byte rates: lossy %.3f, lossless %.3f, traditional %.3f",
			lossyRate, losslessRate, tradRate)
	}
}

func TestDueRespectsInterval(t *testing.T) {
	a, b, _ := cgSystem(t)
	s := newCG(t, a, b)
	m, err := NewManager(Config{Scheme: Traditional, Interval: 3}, fti.NewMemStorage(), s)
	if err != nil {
		t.Fatal(err)
	}
	var ckptAt []int
	for i := 0; i < 10; i++ {
		s.Step()
		info, err := m.MaybeCheckpoint()
		if err != nil {
			t.Fatal(err)
		}
		if info != nil {
			ckptAt = append(ckptAt, s.Iteration())
		}
	}
	want := []int{3, 6, 9}
	if len(ckptAt) != len(want) {
		t.Fatalf("checkpoints at %v, want %v", ckptAt, want)
	}
	for i := range want {
		if ckptAt[i] != want[i] {
			t.Fatalf("checkpoints at %v, want %v", ckptAt, want)
		}
	}
}

func TestMaybeCheckpointDoesNotDuplicate(t *testing.T) {
	a, b, _ := cgSystem(t)
	s := newCG(t, a, b)
	m, err := NewManager(Config{Scheme: Traditional, Interval: 2}, fti.NewMemStorage(), s)
	if err != nil {
		t.Fatal(err)
	}
	s.Step()
	s.Step()
	if i1, _ := m.MaybeCheckpoint(); i1 == nil {
		t.Fatal("first call at iteration 2 should checkpoint")
	}
	if i2, _ := m.MaybeCheckpoint(); i2 != nil {
		t.Fatal("second call at the same iteration must not checkpoint again")
	}
}

func TestAdaptiveBoundTightensWithConvergence(t *testing.T) {
	// Theorem 3: as GMRES converges, ‖r‖ shrinks and so must the
	// adaptive error bound — later checkpoints compress less.
	a, b, _ := cgSystem(t)
	s := solver.NewGMRES(a, nil, b, nil, 30, solver.SeqSpace{}, solver.Options{RTol: 1e-12})
	m, err := NewManager(Config{
		Scheme:    Lossy,
		Adaptive:  true,
		AdaptiveC: 1,
		BNorm:     vec.Norm2(b),
	}, fti.NewMemStorage(), s)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		s.Step()
	}
	early, err := m.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		s.Step()
	}
	late, err := m.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if late.VectorBytes <= early.VectorBytes {
		t.Fatalf("adaptive bound should tighten: early %d bytes, late %d bytes",
			early.VectorBytes, late.VectorBytes)
	}
}

func TestAdaptiveRequiresBNorm(t *testing.T) {
	a, b, _ := cgSystem(t)
	s := newCG(t, a, b)
	_, err := NewManager(Config{Scheme: Lossy, Adaptive: true}, fti.NewMemStorage(), s)
	if err == nil {
		t.Fatal("expected error without BNorm")
	}
}

func TestGMRESLossyRecoveryNoDelay(t *testing.T) {
	// §4.4.2: with the Theorem-3 bound, restarted GMRES converges with
	// no delay (N' ≈ 0) — sometimes even faster — after a lossy
	// recovery.
	a, b, _ := cgSystem(t)
	baseline := solver.NewGMRES(a, nil, b, nil, 30, solver.SeqSpace{}, solver.Options{RTol: 1e-8})
	resBase, _ := solver.RunToConvergence(baseline, solver.Options{MaxIter: 5000}, nil)
	if !resBase.Converged {
		t.Fatal("baseline GMRES did not converge")
	}

	s := solver.NewGMRES(a, nil, b, nil, 30, solver.SeqSpace{}, solver.Options{RTol: 1e-8})
	m, err := NewManager(Config{
		Scheme: Lossy, Interval: 10, Adaptive: true, AdaptiveC: 1, BNorm: vec.Norm2(b),
	}, fti.NewMemStorage(), s)
	if err != nil {
		t.Fatal(err)
	}
	failAt := resBase.Iterations / 2
	failed := false
	rollback := 0
	res, err := solver.RunToConvergence(s, solver.Options{MaxIter: 5000}, func(it int, rnorm float64) error {
		if _, err := m.MaybeCheckpoint(); err != nil {
			return err
		}
		if !failed && it == failAt {
			failed = true
			rolledTo, err := m.Recover()
			if err != nil {
				return err
			}
			rollback = failAt - rolledTo
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("GMRES with lossy recovery did not converge")
	}
	// Total iterations = baseline + rollback + N'. Allow a one-cycle
	// margin for N'; any real convergence delay would exceed it.
	if res.Iterations > resBase.Iterations+rollback+31 {
		t.Fatalf("GMRES delayed: %d its vs baseline %d + rollback %d",
			res.Iterations, resBase.Iterations, rollback)
	}
}

func TestRecoverFreshRestartsFromGuess(t *testing.T) {
	a, b, _ := cgSystem(t)
	s := newCG(t, a, b)
	m, err := NewManager(Config{Scheme: Lossy}, fti.NewMemStorage(), s)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		s.Step()
	}
	x0 := make([]float64, a.Rows)
	rolled := m.RecoverFresh(x0)
	if rolled != 0 {
		t.Fatalf("RecoverFresh rolled to %d", rolled)
	}
	if vec.Norm2(s.X()) != 0 {
		t.Fatal("solver not reset to the initial guess")
	}
	if s.Iteration() != 7 {
		t.Fatal("iteration work counter must keep counting executed steps")
	}
}

func TestRecoverWithoutCheckpointFails(t *testing.T) {
	a, b, _ := cgSystem(t)
	s := newCG(t, a, b)
	m, err := NewManager(Config{Scheme: Traditional}, fti.NewMemStorage(), s)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Recover(); err == nil {
		t.Fatal("expected error with no checkpoints")
	}
}

func TestStaticsRoundTrip(t *testing.T) {
	a, b, _ := cgSystem(t)
	ck := fti.New(fti.NewMemStorage(), fti.Raw{})
	if err := RegisterStatics(ck, a, b); err != nil {
		t.Fatal(err)
	}
	gotA, gotB, err := RecoverStatics(ck)
	if err != nil {
		t.Fatal(err)
	}
	if gotA == nil || gotA.NNZ() != a.NNZ() {
		t.Fatal("static A not recovered")
	}
	if gotB == nil || vec.MaxAbsDiff(gotB, b) != 0 {
		t.Fatal("static b not recovered")
	}
}

func TestLossyStationaryRecovery(t *testing.T) {
	// Theorem 2 in practice: Jacobi recovers from a lossy checkpoint
	// with essentially no extra iterations at eb = 1e-4.
	a := sparse.Poisson2D(8)
	xe := sparse.SmoothField(a.Rows, 31)
	b := sparse.RHSForSolution(a, xe)
	mkSolver := func() *solver.Stationary {
		s, err := solver.NewStationary(solver.KindJacobi, a, b, nil, 0, solver.Options{RTol: 1e-6})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	base := mkSolver()
	resBase, _ := solver.RunToConvergence(base, solver.Options{MaxIter: 20000}, nil)
	if !resBase.Converged {
		t.Fatal("baseline Jacobi did not converge")
	}

	s := mkSolver()
	m, err := NewManager(Config{
		Scheme: Lossy, Interval: 25,
		SZParams: sz.Params{Mode: sz.PWRel, ErrorBound: 1e-4},
	}, fti.NewMemStorage(), s)
	if err != nil {
		t.Fatal(err)
	}
	failAt := resBase.Iterations / 2
	failed := false
	rollback := 0
	res, err := solver.RunToConvergence(s, solver.Options{MaxIter: 20000}, func(it int, rnorm float64) error {
		if _, err := m.MaybeCheckpoint(); err != nil {
			return err
		}
		if !failed && it == failAt {
			failed = true
			rolledTo, err := m.Recover()
			if err != nil {
				return err
			}
			rollback = failAt - rolledTo
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("Jacobi with lossy recovery did not converge")
	}
	// Theorem 2 upper bound at this spectrum/eb is single digits;
	// allow 15 for safety.
	extra := res.Iterations - resBase.Iterations - rollback
	if extra > 15 {
		t.Fatalf("Jacobi lossy recovery cost %d extra iterations (Theorem 2 says single digits)", extra)
	}
}

// TestRepeatedRecoverReusesBuffersAndStaysDeterministic: Recover
// decodes into Manager-owned reusable buffers (the solvers copy on
// Restart/RestoreDynamic), so back-to-back recoveries must keep
// returning the same restored state — a fresh Manager over the same
// storage agrees — and the solver must converge after each.
func TestRepeatedRecoverReusesBuffersAndStaysDeterministic(t *testing.T) {
	for _, scheme := range []Scheme{Traditional, Lossy} {
		a, b, xe := cgSystem(t)
		s := newCG(t, a, b)
		st := fti.NewMemStorage()
		m, err := NewManager(Config{Scheme: scheme, Shards: 4, StorageWorkers: 2}, st, s)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 12; i++ {
			s.Step()
		}
		if _, err := m.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 9; i++ {
			s.Step()
		}
		it1, err := m.Recover()
		if err != nil {
			t.Fatal(err)
		}
		x1 := append([]float64(nil), s.X()...)
		for i := 0; i < 5; i++ {
			s.Step() // mutate state between recoveries
		}
		it2, err := m.Recover()
		if err != nil {
			t.Fatal(err)
		}
		if it1 != it2 {
			t.Fatalf("scheme %v: rollback iteration changed: %d then %d", scheme, it1, it2)
		}
		if d := vec.MaxAbsDiff(x1, s.X()); d != 0 {
			t.Fatalf("scheme %v: repeated recovery changed restored x by %g", scheme, d)
		}
		// A fresh Manager over the same storage restores identically.
		s2 := newCG(t, a, b)
		m2, err := NewManager(Config{Scheme: scheme, Shards: 4, StorageWorkers: 2}, st, s2)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m2.Recover(); err != nil {
			t.Fatal(err)
		}
		if d := vec.MaxAbsDiff(s.X(), s2.X()); d != 0 {
			t.Fatalf("scheme %v: fresh-manager recovery differs by %g", scheme, d)
		}
		res, err := solver.RunToConvergence(s, solver.Options{MaxIter: 100000}, nil)
		if err != nil || !res.Converged {
			t.Fatalf("scheme %v: post-recovery solve failed: %v", scheme, err)
		}
		if d := vec.MaxAbsDiff(s.X(), xe); d > 1e-5 {
			t.Fatalf("scheme %v: converged far from the exact solution: %g", scheme, d)
		}
	}
}
