package core

import (
	"fmt"

	"repro/internal/fti"
	"repro/internal/sparse"
)

// RegisterStatics checkpoints the static variables of an iterative
// method once, before the iteration loop (paper §3: the system matrix
// A, the preconditioner M — represented here by its defining matrix or
// omitted when it is rebuilt from A — and the right-hand side b).
func RegisterStatics(ck *fti.Checkpointer, a *sparse.CSR, b []float64) error {
	if a != nil {
		if err := ck.WriteStatic("A", a.Serialize()); err != nil {
			return fmt.Errorf("core: static A: %w", err)
		}
	}
	if b != nil {
		raw, err := (fti.Raw{}).Encode(b)
		if err != nil {
			return err
		}
		if err := ck.WriteStatic("b", raw); err != nil {
			return fmt.Errorf("core: static b: %w", err)
		}
	}
	return nil
}

// RecoverStatics reads back the static variables written by
// RegisterStatics; either return value may be nil if it was not
// registered.
func RecoverStatics(ck *fti.Checkpointer) (*sparse.CSR, []float64, error) {
	var a *sparse.CSR
	var b []float64
	if blob, err := ck.ReadStatic("A"); err == nil {
		m, err := sparse.Deserialize(blob)
		if err != nil {
			return nil, nil, fmt.Errorf("core: static A corrupt: %w", err)
		}
		a = m
	}
	if blob, err := ck.ReadStatic("b"); err == nil {
		v, err := (fti.Raw{}).Decode(blob)
		if err != nil {
			return nil, nil, fmt.Errorf("core: static b corrupt: %w", err)
		}
		b = v
	}
	return a, b, nil
}
