package model

import (
	"math"
	"testing"
)

func approx(got, want, tol float64) bool {
	return math.Abs(got-want) <= tol*(1+math.Abs(want))
}

func TestYoungIntervalPaperExample(t *testing.T) {
	// §3: MTTI 4 h, Tckp = 18 s ⇒ optimal frequency ≈ 5 checkpoints
	// per hour (interval √(2·14400·18) = 720 s = 12 min).
	got := YoungInterval(4*3600, 18)
	if !approx(got, 720, 1e-9) {
		t.Fatalf("YoungInterval = %v, want 720", got)
	}
}

func TestYoungIntervalsMatchSection54(t *testing.T) {
	// §5.4: Tf = 3600 s with Tckp ∈ {120, 72, 25} s gives optimal
	// intervals of about 16, 12, and 7 minutes.
	cases := []struct {
		tckp    float64
		minutes float64
	}{
		{120, 15.5}, {72, 12}, {25, 7.07},
	}
	for _, c := range cases {
		got := YoungInterval(3600, c.tckp) / 60
		if !approx(got, c.minutes, 0.05) {
			t.Fatalf("Tckp=%v: interval %.1f min, want ≈%.1f", c.tckp, got, c.minutes)
		}
	}
}

func TestYoungIntervalDegenerate(t *testing.T) {
	if YoungInterval(0, 10) != 0 || YoungInterval(10, 0) != 0 {
		t.Fatal("degenerate inputs must return 0")
	}
}

func TestExpectedOverheadFigure1Anchor(t *testing.T) {
	// §4.1/Fig. 1: with hourly MTTI and Tckp = 120 s the expected
	// overhead is ≈40 %.
	got := ExpectedOverheadRatio(1.0/3600, 120)
	if got < 0.35 || got > 0.45 {
		t.Fatalf("overhead at (1/h, 120 s) = %.3f, want ≈0.40", got)
	}
}

func TestExpectedOverheadMonotone(t *testing.T) {
	prev := -1.0
	for _, tckp := range []float64{1, 10, 30, 60, 120} {
		got := ExpectedOverheadRatio(1.0/3600, tckp)
		if got <= prev {
			t.Fatalf("overhead must grow with Tckp: %v after %v", got, prev)
		}
		prev = got
	}
	prev = -1
	for _, lph := range []float64{0.1, 0.5, 1, 2, 3.5} {
		got := ExpectedOverheadRatio(lph/3600, 60)
		if got <= prev {
			t.Fatalf("overhead must grow with λ: %v after %v", got, prev)
		}
		prev = got
	}
}

func TestExpectedOverheadZeroFailureRate(t *testing.T) {
	if got := ExpectedOverheadRatio(0, 120); got != 0 {
		t.Fatalf("no failures ⇒ no expected overhead, got %v", got)
	}
}

func TestExpectedOverheadSaturation(t *testing.T) {
	// Absurd failure rates drive the system into pure fault handling.
	if got := ExpectedOverheadRatio(1, 3600); !math.IsInf(got, 1) {
		t.Fatalf("want +Inf at saturation, got %v", got)
	}
}

func TestExpectedTotalTime(t *testing.T) {
	// Failure-free: total = N·Tit exactly.
	if got := ExpectedTotalTime(100, 2, 0, 120, 120); got != 200 {
		t.Fatalf("failure-free total = %v, want 200", got)
	}
	// With failures the total strictly grows.
	if got := ExpectedTotalTime(100, 2, 1.0/3600, 120, 120); got <= 200 {
		t.Fatalf("total with failures = %v, want > 200", got)
	}
}

func TestMaxExtraIterationsPaperExample(t *testing.T) {
	// §4.3 worked example: λ = 1/3600, Tckp 120 → 25 s, GMRES with
	// 5875 iterations in 7160 s ⇒ Tit ≈ 1.2 s ⇒ N′max ≈ 500.
	tit := 7160.0 / 5875
	got := MaxExtraIterations(120, 25, 1.0/3600, tit)
	if got < 450 || got > 550 {
		t.Fatalf("N'max = %.0f, paper says ≈500", got)
	}
}

func TestMaxExtraIterationsSignFlips(t *testing.T) {
	// If lossy checkpoints were *slower*, the bound goes negative: no
	// extra iteration budget exists.
	got := MaxExtraIterations(25, 120, 1.0/3600, 1)
	if got >= 0 {
		t.Fatalf("want negative budget, got %v", got)
	}
}

func TestLossyOverheadBeatsTraditionalWithinBudget(t *testing.T) {
	lambda := 1.0 / 3600
	tit := 1.2
	trad := ExpectedOverheadRatio(lambda, 120)
	budget := MaxExtraIterations(120, 25, lambda, tit)
	within := LossyOverheadRatio(lambda, 25, budget*0.9, tit)
	beyond := LossyOverheadRatio(lambda, 25, budget*1.1, tit)
	if within >= trad {
		t.Fatalf("N' below budget must win: lossy %.4f vs trad %.4f", within, trad)
	}
	if beyond <= trad {
		t.Fatalf("N' above budget must lose: lossy %.4f vs trad %.4f", beyond, trad)
	}
}

func TestStationaryExtraIterationsPaperNumbers(t *testing.T) {
	// §5.3: R ≈ 0.99998, N = 3941, eb = 1e-4 ⇒ expected N′ ≈ 6.
	lo, hi, err := StationaryExtraIterationBounds(0.99998, 1e-4, 3941)
	if err != nil {
		t.Fatal(err)
	}
	if lo < 1 || hi > 12 || lo > hi+1e-9 {
		t.Fatalf("bounds [%f, %f] inconsistent with paper's ≈6", lo, hi)
	}
	mid := (lo + hi) / 2
	if mid < 3 || mid > 9 {
		t.Fatalf("expected N' ≈ 6, interval midpoint %f", mid)
	}
}

func TestStationaryExtraIterationsTighterBoundFewerIterations(t *testing.T) {
	prev := math.Inf(1)
	for _, eb := range []float64{1e-2, 1e-4, 1e-6} {
		got, err := StationaryExtraIterations(0.999, eb, 2000)
		if err != nil {
			t.Fatal(err)
		}
		if got >= prev {
			t.Fatalf("tighter eb must need fewer extra iterations: %v after %v", got, prev)
		}
		if got < 0 {
			t.Fatalf("negative extra iterations %v", got)
		}
		prev = got
	}
}

func TestStationaryExtraIterationsValidation(t *testing.T) {
	if _, err := StationaryExtraIterations(1.5, 1e-4, 10); err == nil {
		t.Fatal("R > 1 must error")
	}
	if _, err := StationaryExtraIterations(0.9, -1, 10); err == nil {
		t.Fatal("negative eb must error")
	}
}

func TestEstimateSpectralRadius(t *testing.T) {
	// A solver that contracts by 1e-4 over 3941 iterations has
	// R = (1e-4)^(1/3941) ≈ 0.99766... — and the paper's 0.99998 comes
	// from its own run. Round-trip: R^n must reproduce the contraction.
	r, err := EstimateSpectralRadius(1e-4, 3941)
	if err != nil {
		t.Fatal(err)
	}
	if back := math.Pow(r, 3941); !approx(back, 1e-4, 1e-6) {
		t.Fatalf("round trip gives %g, want 1e-4", back)
	}
	if _, err := EstimateSpectralRadius(2, 10); err == nil {
		t.Fatal("contraction ≥ 1 must error")
	}
}

func TestGMRESAdaptiveBound(t *testing.T) {
	if got := GMRESAdaptiveBound(1e-3, 1, 1); !approx(got, 1e-3, 1e-12) {
		t.Fatalf("bound = %v", got)
	}
	// Clamped when the residual exceeds b.
	if got := GMRESAdaptiveBound(10, 1, 1); got != 0.5 {
		t.Fatalf("clamped bound = %v, want 0.5", got)
	}
	if got := GMRESAdaptiveBound(0, 1, 1); got != 0 {
		t.Fatalf("degenerate bound = %v, want 0", got)
	}
}

func TestOverheadSurfaceShape(t *testing.T) {
	lambdas := []float64{0.5, 1, 2}
	tckps := []float64{20, 60, 120}
	pts := OverheadSurface(lambdas, tckps)
	if len(pts) != 9 {
		t.Fatalf("surface has %d points, want 9", len(pts))
	}
	// Corner orders: overhead grows along both axes.
	get := func(l, tc float64) float64 {
		for _, p := range pts {
			if p.LambdaPerHour == l && p.TckpSeconds == tc {
				return p.Overhead
			}
		}
		t.Fatalf("missing point (%v,%v)", l, tc)
		return 0
	}
	if !(get(0.5, 20) < get(2, 20) && get(0.5, 20) < get(0.5, 120) && get(2, 120) > get(1, 60)) {
		t.Fatal("surface not monotone in λ and Tckp")
	}
}
