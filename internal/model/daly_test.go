package model

import (
	"math"
	"testing"
)

// TestDalyAgreesWithYoungSmallCost: in the δ ≪ M regime Daly's
// higher-order formula reduces to Young's first-order one — the
// correction terms are O(√(δ/M)).
func TestDalyAgreesWithYoungSmallCost(t *testing.T) {
	cases := []struct{ tf, tckp float64 }{
		{3600, 1},    // 1 s checkpoint, 1 h MTTI
		{3600, 10},   // the paper's lossy regime
		{86400, 60},  // 1 min checkpoint, 1 day MTTI
		{1e6, 0.5},   // near-free checkpoints
		{36000, 120}, // the paper's traditional 120 s write, long MTTI
	}
	for _, c := range cases {
		young := YoungInterval(c.tf, c.tckp)
		daly := DalyInterval(c.tf, c.tckp)
		relDiff := math.Abs(young-daly) / young
		// The leading correction is −(2/3)·δ/√(2δM) = −(2/3)·√(δ/2M).
		bound := math.Sqrt(c.tckp / (2 * c.tf)) // one full unit of x
		if relDiff > bound {
			t.Errorf("tf=%g tckp=%g: young=%.4f daly=%.4f relDiff=%.4f > %.4f",
				c.tf, c.tckp, young, daly, relDiff, bound)
		}
		if relDiff > 0.05 {
			t.Errorf("tf=%g tckp=%g: small-cost regime should agree within 5%%, got %.2f%%",
				c.tf, c.tckp, 100*relDiff)
		}
		// Daly is always below Young on δ < 2M: failures during the
		// checkpoint shorten the profitable interval.
		if daly >= young {
			t.Errorf("tf=%g tckp=%g: daly %.4f not below young %.4f", c.tf, c.tckp, daly, young)
		}
	}
}

// TestDalyDivergesFromYoungLargeCost: once the checkpoint cost is
// comparable to the MTTI, Young's formula (which ignores failures
// during the checkpoint itself) overestimates the interval badly while
// Daly saturates at the MTTI.
func TestDalyDivergesFromYoungLargeCost(t *testing.T) {
	// δ = M: Young says √2·M, Daly's polynomial stays well below it.
	tf, tckp := 100.0, 100.0
	young := YoungInterval(tf, tckp)
	daly := DalyInterval(tf, tckp)
	if young <= tf {
		t.Fatalf("young %.2f should exceed the MTTI %.2f at δ = M", young, tf)
	}
	if rel := (young - daly) / young; rel < 0.25 {
		t.Fatalf("δ = M: expected ≥25%% divergence, young=%.2f daly=%.2f (%.1f%%)",
			young, daly, 100*rel)
	}
	// δ ≥ 2M: Daly clamps to the MTTI; Young keeps growing with √δ.
	for _, tckp := range []float64{200, 500, 1e4} {
		if got := DalyInterval(tf, tckp); got != tf {
			t.Errorf("δ=%g ≥ 2M: daly=%g, want the MTTI %g", tckp, got, tf)
		}
		if y := YoungInterval(tf, tckp); y < 2*tf {
			t.Errorf("δ=%g: young=%g unexpectedly small", tckp, y)
		}
	}
}

// TestDalyMonotoneInCost: a costlier checkpoint never shortens the
// divergence ordering and the interval stays positive and finite on
// the valid domain.
func TestDalyMonotoneInCost(t *testing.T) {
	tf := 3600.0
	prev := 0.0
	for _, tckp := range []float64{0.1, 1, 10, 100, 1000} {
		d := DalyInterval(tf, tckp)
		if d <= 0 || math.IsInf(d, 0) || math.IsNaN(d) {
			t.Fatalf("tckp=%g: invalid interval %g", tckp, d)
		}
		if d < prev {
			t.Fatalf("tckp=%g: interval %g decreased below %g", tckp, d, prev)
		}
		prev = d
	}
}

// TestDalyDegenerateInputs matches YoungInterval's contract: zero on
// nonpositive inputs.
func TestDalyDegenerateInputs(t *testing.T) {
	for _, c := range []struct{ tf, tckp float64 }{{0, 1}, {1, 0}, {-1, 1}, {1, -1}, {0, 0}} {
		if got := DalyInterval(c.tf, c.tckp); got != 0 {
			t.Errorf("DalyInterval(%g, %g) = %g, want 0", c.tf, c.tckp, got)
		}
	}
}
