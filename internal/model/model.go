// Package model implements the paper's analytic performance model:
// Young's optimal checkpoint interval (Eq. 1), the expected execution
// time and fault-tolerance overhead of traditional checkpointing
// (Eqs. 2–5), the lossy-checkpointing overhead with convergence delay
// (Eqs. 6–8), the sufficient condition for lossy checkpointing to win
// (Theorem 1, Eq. 9), the stationary-method extra-iteration bound
// (Theorem 2), and the GMRES adaptive error bound (Theorem 3).
//
// All times are in seconds and rates in failures per second unless
// stated otherwise.
package model

import (
	"fmt"
	"math"
)

// YoungInterval returns Young's optimal checkpoint interval
// k·Tit = √(2·Tf·Tckp) (Eq. 1), in seconds, where Tf is the mean time
// to interruption and Tckp the cost of one checkpoint.
func YoungInterval(tf, tckp float64) float64 {
	if tf <= 0 || tckp <= 0 {
		return 0
	}
	return math.Sqrt(2 * tf * tckp)
}

// DalyInterval returns Daly's higher-order estimate of the optimum
// checkpoint interval ("A higher order estimate of the optimum
// checkpoint interval for restart dumps", FGCS 2006), in seconds, for
// mean time to interruption tf (Daly's M) and per-checkpoint cost tckp
// (Daly's δ):
//
//	τ = √(2·δ·M)·[1 + ⅓·√(δ/(2M)) + (1/9)·(δ/(2M))] − δ   for δ < 2M
//	τ = M                                                  for δ ≥ 2M
//
// In the small-δ/M regime the correction terms vanish and τ agrees
// with Young's √(2·δ·M) (Eq. 1); as δ approaches M, Young's first-order
// formula overestimates the interval (it ignores failures during the
// checkpoint itself) while Daly's saturates at the MTTI. The adaptive
// interval controller (package adapt) can plan with either.
func DalyInterval(tf, tckp float64) float64 {
	if tf <= 0 || tckp <= 0 {
		return 0
	}
	if tckp >= 2*tf {
		return tf
	}
	// With x = √(δ/2M), the bracket minus the trailing δ factors as
	// √(2δM)·(1 − x/3)²: strictly positive everywhere on δ < 2M.
	x := math.Sqrt(tckp / (2 * tf))
	return math.Sqrt(2*tckp*tf)*(1+x/3+x*x/9) - tckp
}

// OverheadFactor is f(t, λ) = √(2λt) + λt, the per-unit-time overhead
// factor of Theorem 1.
func OverheadFactor(tckp, lambda float64) float64 {
	lt := lambda * tckp
	return math.Sqrt(2*lt) + lt
}

// ExpectedOverheadRatio is Eq. (5): the ratio of expected fault
// tolerance overhead to productive time for traditional checkpointing,
// f/(1−f) with f = OverheadFactor(Tckp, λ). It assumes Trc ≈ Tckp
// (the paper's Eq. 4 simplification). Returns +Inf when the system
// spends all time on fault handling (f ≥ 1).
func ExpectedOverheadRatio(lambda, tckp float64) float64 {
	f := OverheadFactor(tckp, lambda)
	if f >= 1 {
		return math.Inf(1)
	}
	return f / (1 - f)
}

// ExpectedTotalTime is Eq. (2): expected wall time of N iterations of
// mean cost Tit under failures at rate λ with per-checkpoint cost
// tckp and per-recovery cost trc.
func ExpectedTotalTime(n float64, tit, lambda, tckp, trc float64) float64 {
	denom := 1 - math.Sqrt(2*lambda*tckp) - lambda*trc
	if denom <= 0 {
		return math.Inf(1)
	}
	return n * tit / denom
}

// AsyncEffectiveStall is the solver-visible stall per checkpoint under
// the asynchronous pipeline: the capture copy tcap, plus backpressure
// when the background encode+write tbg does not fit inside the
// checkpoint interval. The overlapped part of tbg is free — that is
// the point of the pipeline: Eqs. (5) and (8) keep their form with
// Tckp replaced by this stall.
//
//	stall = tcap + max(0, tbg − interval)
//
// interval ≤ 0 means "no overlap window" (back-to-back checkpoints)
// and degenerates to the synchronous cost tcap + tbg.
func AsyncEffectiveStall(tcap, tbg, interval float64) float64 {
	if tcap < 0 {
		tcap = 0
	}
	if tbg < 0 {
		tbg = 0
	}
	if interval <= 0 {
		return tcap + tbg
	}
	bp := tbg - interval
	if bp < 0 {
		bp = 0
	}
	return tcap + bp
}

// AsyncOverheadRatio is Eq. (5) with the overlapped checkpoint cost:
// the expected fault-tolerance overhead ratio when only
// AsyncEffectiveStall(tcap, tbg, interval) sits on the critical path
// per checkpoint. Note the implicit fixed point: the Young-optimal
// interval itself depends on the stall, which depends on the interval;
// in the common regime tbg < interval the stall is just tcap and the
// fixed point is YoungInterval(tf, tcap).
func AsyncOverheadRatio(lambda, tcap, tbg, interval float64) float64 {
	return ExpectedOverheadRatio(lambda, AsyncEffectiveStall(tcap, tbg, interval))
}

// LossyOverheadRatio is Eq. (8): the expected fault tolerance overhead
// ratio for lossy checkpointing, accounting for the N′ extra
// iterations each lossy recovery costs. tit is the mean iteration
// time and nExtra the expected extra iterations per recovery.
func LossyOverheadRatio(lambda, tckpLossy, nExtra, tit float64) float64 {
	f := OverheadFactor(tckpLossy, lambda) + lambda*nExtra*tit
	if f >= 1 {
		return math.Inf(1)
	}
	return f / (1 - f)
}

// MaxExtraIterations is Theorem 1 (Eq. 9): the largest expected number
// of extra iterations per lossy recovery for which lossy checkpointing
// still beats traditional checkpointing:
//
//	N′ ≤ (f(T_trad, λ) − f(T_lossy, λ)) / (λ·Tit).
func MaxExtraIterations(tckpTrad, tckpLossy, lambda, tit float64) float64 {
	if lambda <= 0 || tit <= 0 {
		return math.Inf(1)
	}
	return (OverheadFactor(tckpTrad, lambda) - OverheadFactor(tckpLossy, lambda)) / (lambda * tit)
}

// StationaryExtraIterations is the Theorem 2 pointwise bound: if a
// stationary method with convergence factor R (spectral radius of the
// iteration matrix, 0 < R < 1) restarts at iteration t from a lossy
// checkpoint with relative error bound eb, the extra iterations to
// regain the pre-failure accuracy are at most
//
//	N′(t) = t − log_R(Rᵗ + eb).
func StationaryExtraIterations(r, eb float64, t float64) (float64, error) {
	if r <= 0 || r >= 1 {
		return 0, fmt.Errorf("model: spectral radius R = %g outside (0,1)", r)
	}
	if eb < 0 {
		return 0, fmt.Errorf("model: negative error bound %g", eb)
	}
	rt := math.Exp(t * math.Log(r))
	return t - math.Log(rt+eb)/math.Log(r), nil
}

// StationaryExtraIterationBounds evaluates Theorem 2's interval for
// the expected upper bound on extra iterations when the failure lands
// uniformly in [0, N]: the bound at t = (N+1)/2 and at t = N,
// [ (N+1)/2 − log_R(R^((N+1)/2) + eb), N − log_R(R^N + eb) ].
func StationaryExtraIterationBounds(r, eb float64, n float64) (lo, hi float64, err error) {
	lo, err = StationaryExtraIterations(r, eb, (n+1)/2)
	if err != nil {
		return 0, 0, err
	}
	hi, err = StationaryExtraIterations(r, eb, n)
	if err != nil {
		return 0, 0, err
	}
	return lo, hi, nil
}

// EstimateSpectralRadius recovers R from an observed convergence run:
// after N iterations the residual contracted by factor ρ = ‖r_N‖/‖r_0‖,
// so R ≈ ρ^(1/N) (Eq. 10 rearranged). The paper estimates R ≈ 0.99998
// for its Jacobi runs this way.
func EstimateSpectralRadius(contraction float64, n int) (float64, error) {
	if contraction <= 0 || contraction >= 1 || n <= 0 {
		return 0, fmt.Errorf("model: need contraction in (0,1) over n > 0 iterations, got %g over %d", contraction, n)
	}
	return math.Exp(math.Log(contraction) / float64(n)), nil
}

// GMRESAdaptiveBound is Theorem 3: the relative error bound for the
// lossy checkpoint of GMRES's iterate that keeps the post-recovery
// residual on the order of the pre-failure residual,
// eb = c·‖r⁽ᵗ⁾‖/‖b‖ with a safety constant c (1 recovers the theorem's
// O(·) with unit constant).
func GMRESAdaptiveBound(rnorm, bnorm, c float64) float64 {
	if bnorm <= 0 || rnorm <= 0 || c <= 0 {
		return 0
	}
	eb := c * rnorm / bnorm
	// Pointwise-relative compressors require eb < 1; a residual larger
	// than b (possible in the first iterations) is clamped.
	if eb > 0.5 {
		eb = 0.5
	}
	return eb
}

// OverheadSurface tabulates Eq. (5) — the paper's Figure 1 — over a
// grid of failure rates (per hour) and checkpoint times (seconds).
// Returns one row per (lambdaPerHour, tckpSeconds) pair.
type SurfacePoint struct {
	LambdaPerHour float64
	TckpSeconds   float64
	Overhead      float64 // ratio of FT overhead to productive time
}

// OverheadSurface evaluates Eq. (5) on the cartesian grid.
func OverheadSurface(lambdasPerHour, tckpSeconds []float64) []SurfacePoint {
	var out []SurfacePoint
	for _, lh := range lambdasPerHour {
		for _, tc := range tckpSeconds {
			out = append(out, SurfacePoint{
				LambdaPerHour: lh,
				TckpSeconds:   tc,
				Overhead:      ExpectedOverheadRatio(lh/3600, tc),
			})
		}
	}
	return out
}
