package model

import (
	"math"
	"testing"
)

func TestAsyncEffectiveStall(t *testing.T) {
	cases := []struct {
		tcap, tbg, interval, want float64
	}{
		{1, 5, 10, 1},   // background fits: capture only
		{1, 15, 10, 6},  // backpressure: 15 − 10 spills onto the solver
		{1, 10, 10, 1},  // exact fit: capture only
		{1, 5, 0, 6},    // no overlap window: degenerates to sync cost
		{0, 0, 10, 0},   // free checkpoint
		{-1, -1, 10, 0}, // garbage clamps to zero
	}
	for _, c := range cases {
		if got := AsyncEffectiveStall(c.tcap, c.tbg, c.interval); got != c.want {
			t.Errorf("AsyncEffectiveStall(%g,%g,%g) = %g, want %g",
				c.tcap, c.tbg, c.interval, got, c.want)
		}
	}
}

func TestAsyncOverheadRatioBeatsSync(t *testing.T) {
	const (
		lambda   = 1.0 / 3600 // one failure per hour
		tcap     = 0.5
		tbg      = 30
		interval = 120
	)
	async := AsyncOverheadRatio(lambda, tcap, tbg, interval)
	sync := ExpectedOverheadRatio(lambda, tcap+tbg)
	if !(async < sync) {
		t.Fatalf("overlap must reduce overhead: async %g, sync %g", async, sync)
	}
	// With the background hidden entirely, the ratio equals the
	// capture-only Eq. (5).
	if got, want := async, ExpectedOverheadRatio(lambda, tcap); math.Abs(got-want) > 1e-15 {
		t.Fatalf("capture-only equivalence: %g vs %g", got, want)
	}
	// Degenerate interval reproduces the synchronous ratio exactly.
	if got := AsyncOverheadRatio(lambda, tcap, tbg, 0); got != sync {
		t.Fatalf("interval=0 must equal sync: %g vs %g", got, sync)
	}
}
