package vec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestDot(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{4, -5, 6}
	if got := Dot(x, y); got != 1*4-2*5+3*6 {
		t.Fatalf("Dot = %v, want 12", got)
	}
}

func TestDotEmpty(t *testing.T) {
	if got := Dot(nil, nil); got != 0 {
		t.Fatalf("Dot(nil,nil) = %v, want 0", got)
	}
}

func TestDotMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestNorm2(t *testing.T) {
	x := []float64{3, 4}
	if got := Norm2(x); !almostEqual(got, 5, 1e-15) {
		t.Fatalf("Norm2 = %v, want 5", got)
	}
}

func TestNorm2Overflow(t *testing.T) {
	// Naive sum-of-squares would overflow; scaled algorithm must not.
	x := []float64{1e200, 1e200}
	want := 1e200 * math.Sqrt2
	if got := Norm2(x); !almostEqual(got, want, 1e-14) {
		t.Fatalf("Norm2 = %v, want %v", got, want)
	}
}

func TestNorm2Zero(t *testing.T) {
	if got := Norm2([]float64{0, 0, 0}); got != 0 {
		t.Fatalf("Norm2(zeros) = %v, want 0", got)
	}
	if got := Norm2(nil); got != 0 {
		t.Fatalf("Norm2(nil) = %v, want 0", got)
	}
}

func TestNormInf(t *testing.T) {
	if got := NormInf([]float64{1, -7, 3}); got != 7 {
		t.Fatalf("NormInf = %v, want 7", got)
	}
}

func TestAxpy(t *testing.T) {
	y := []float64{1, 1}
	Axpy(2, []float64{3, 4}, y)
	if y[0] != 7 || y[1] != 9 {
		t.Fatalf("Axpy result %v, want [7 9]", y)
	}
}

func TestAypx(t *testing.T) {
	y := []float64{1, 2}
	Aypx(3, []float64{10, 20}, y) // y = x + 3y
	if y[0] != 13 || y[1] != 26 {
		t.Fatalf("Aypx result %v, want [13 26]", y)
	}
}

func TestScale(t *testing.T) {
	x := []float64{1, -2}
	Scale(-3, x)
	if x[0] != -3 || x[1] != 6 {
		t.Fatalf("Scale result %v", x)
	}
}

func TestSubAddPointwise(t *testing.T) {
	x := []float64{5, 7}
	y := []float64{2, 3}
	d := make([]float64, 2)
	Sub(d, x, y)
	if d[0] != 3 || d[1] != 4 {
		t.Fatalf("Sub = %v", d)
	}
	Add(d, x, y)
	if d[0] != 7 || d[1] != 10 {
		t.Fatalf("Add = %v", d)
	}
	PointwiseMult(d, x, y)
	if d[0] != 10 || d[1] != 21 {
		t.Fatalf("PointwiseMult = %v", d)
	}
}

func TestSubAliasing(t *testing.T) {
	x := []float64{5, 7}
	Sub(x, x, []float64{1, 2})
	if x[0] != 4 || x[1] != 5 {
		t.Fatalf("aliased Sub = %v", x)
	}
}

func TestCloneIndependence(t *testing.T) {
	x := []float64{1, 2}
	y := Clone(x)
	y[0] = 99
	if x[0] != 1 {
		t.Fatal("Clone must not share backing storage")
	}
}

func TestZeroFill(t *testing.T) {
	x := []float64{1, 2, 3}
	Fill(x, 4)
	for _, v := range x {
		if v != 4 {
			t.Fatalf("Fill result %v", x)
		}
	}
	Zero(x)
	for _, v := range x {
		if v != 0 {
			t.Fatalf("Zero result %v", x)
		}
	}
}

func TestMaxAbsDiff(t *testing.T) {
	if got := MaxAbsDiff([]float64{1, 2}, []float64{1.5, 1}); got != 1 {
		t.Fatalf("MaxAbsDiff = %v, want 1", got)
	}
}

func TestMaxRelDiffSkipsZeros(t *testing.T) {
	got := MaxRelDiff([]float64{0, 2}, []float64{5, 1})
	if got != 0.5 {
		t.Fatalf("MaxRelDiff = %v, want 0.5", got)
	}
}

func TestRange(t *testing.T) {
	lo, hi := Range([]float64{3, -1, 7})
	if lo != -1 || hi != 7 {
		t.Fatalf("Range = (%v,%v), want (-1,7)", lo, hi)
	}
	lo, hi = Range(nil)
	if lo != 0 || hi != 0 {
		t.Fatalf("Range(nil) = (%v,%v)", lo, hi)
	}
}

// TestUnrolledKernelsMatchNaive: the 4-way unrolled Dot/Norm2/NormInf
// must agree with a naive reference at every length around the unroll
// boundary (remainder handling is where unrolled loops break).
func TestUnrolledKernelsMatchNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for n := 0; n <= 33; n++ {
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64() * 10
			y[i] = rng.NormFloat64() * 10
		}
		var dotRef, ssqRef, infRef float64
		for i := range x {
			dotRef += x[i] * y[i]
			ssqRef += x[i] * x[i]
			if a := math.Abs(x[i]); a > infRef {
				infRef = a
			}
		}
		if got := Dot(x, y); !almostEqual(got, dotRef, 1e-13) {
			t.Fatalf("n=%d: Dot = %v, naive %v", n, got, dotRef)
		}
		if got := Norm2(x); !almostEqual(got, math.Sqrt(ssqRef), 1e-13) {
			t.Fatalf("n=%d: Norm2 = %v, naive %v", n, got, math.Sqrt(ssqRef))
		}
		if got := NormInf(x); got != infRef {
			t.Fatalf("n=%d: NormInf = %v, naive %v", n, got, infRef)
		}
	}
}

// TestNorm2Infinite: an infinite component must yield +Inf, not NaN
// (diverging solver residuals should record the direction of blow-up).
func TestNorm2Infinite(t *testing.T) {
	if got := Norm2([]float64{1, math.Inf(1), 2}); !math.IsInf(got, 1) {
		t.Fatalf("Norm2 with +Inf component = %v, want +Inf", got)
	}
	if got := Norm2([]float64{math.Inf(-1)}); !math.IsInf(got, 1) {
		t.Fatalf("Norm2 with -Inf component = %v, want +Inf", got)
	}
}

// TestNorm2SubnormalScale: a vector whose largest magnitude is
// subnormal must not produce Inf or 0 from the reciprocal-scaling
// fast path.
func TestNorm2SubnormalScale(t *testing.T) {
	x := []float64{5e-324, 0, -5e-324}
	got := Norm2(x)
	want := 5e-324 * math.Sqrt2
	if math.IsInf(got, 0) || got == 0 {
		t.Fatalf("Norm2 of subnormal vector = %v", got)
	}
	if !almostEqual(got, want, 1e-10) {
		t.Fatalf("Norm2 = %g, want about %g", got, want)
	}
}

// Property: Dot is symmetric and bilinear within floating-point
// tolerance, and Norm2(x)^2 ≈ Dot(x,x).
func TestDotNormProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		if !almostEqual(Dot(x, y), Dot(y, x), 1e-12) {
			return false
		}
		n2 := Norm2(x)
		return almostEqual(n2*n2, Dot(x, x), 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Axpy followed by Axpy with negated coefficient restores y.
func TestAxpyInverseProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(100)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.Float64()
			y[i] = rng.Float64()
		}
		orig := Clone(y)
		a := rng.Float64()
		Axpy(a, x, y)
		Axpy(-a, x, y)
		return MaxAbsDiff(orig, y) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: triangle inequality for Norm2.
func TestNormTriangleProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(100)
		x := make([]float64, n)
		y := make([]float64, n)
		s := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64() * 100
			y[i] = rng.NormFloat64() * 100
		}
		Add(s, x, y)
		return Norm2(s) <= Norm2(x)+Norm2(y)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
