// Package vec provides dense vector kernels used by the iterative
// solvers. All kernels operate on []float64 slices in place where
// possible to avoid allocation inside solver loops; the distributed
// variants in package mpi build on these local kernels.
package vec

import (
	"fmt"
	"math"
)

// Dot returns the inner product x·y. It panics if the lengths differ,
// because a length mismatch in a solver is always a programming error.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("vec: Dot length mismatch %d != %d", len(x), len(y)))
	}
	var s float64
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Norm2 returns the Euclidean norm ‖x‖₂ computed with scaling to avoid
// overflow for very large components.
func Norm2(x []float64) float64 {
	var scale, ssq float64
	ssq = 1
	for _, v := range x {
		if v == 0 {
			continue
		}
		a := math.Abs(v)
		if scale < a {
			r := scale / a
			ssq = 1 + ssq*r*r
			scale = a
		} else {
			r := a / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// NormInf returns the maximum-magnitude component of x.
func NormInf(x []float64) float64 {
	var m float64
	for _, v := range x {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// Axpy computes y ← a·x + y.
func Axpy(a float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("vec: Axpy length mismatch %d != %d", len(x), len(y)))
	}
	for i, v := range x {
		y[i] += a * v
	}
}

// Aypx computes y ← x + a·y (the PETSc VecAYPX kernel used by CG's
// direction update p ← z + β·p).
func Aypx(a float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("vec: Aypx length mismatch %d != %d", len(x), len(y)))
	}
	for i, v := range x {
		y[i] = v + a*y[i]
	}
}

// Scale computes x ← a·x.
func Scale(a float64, x []float64) {
	for i := range x {
		x[i] *= a
	}
}

// Copy copies src into dst. It panics on length mismatch.
func Copy(dst, src []float64) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("vec: Copy length mismatch %d != %d", len(dst), len(src)))
	}
	copy(dst, src)
}

// Clone returns a freshly allocated copy of x.
func Clone(x []float64) []float64 {
	y := make([]float64, len(x))
	copy(y, x)
	return y
}

// Zero sets every component of x to zero.
func Zero(x []float64) {
	for i := range x {
		x[i] = 0
	}
}

// Fill sets every component of x to a.
func Fill(x []float64, a float64) {
	for i := range x {
		x[i] = a
	}
}

// Sub computes dst ← x − y. dst may alias x or y.
func Sub(dst, x, y []float64) {
	if len(x) != len(y) || len(dst) != len(x) {
		panic("vec: Sub length mismatch")
	}
	for i := range dst {
		dst[i] = x[i] - y[i]
	}
}

// Add computes dst ← x + y. dst may alias x or y.
func Add(dst, x, y []float64) {
	if len(x) != len(y) || len(dst) != len(x) {
		panic("vec: Add length mismatch")
	}
	for i := range dst {
		dst[i] = x[i] + y[i]
	}
}

// PointwiseMult computes dst ← x ∘ y (Hadamard product), used by
// diagonal (Jacobi) preconditioning.
func PointwiseMult(dst, x, y []float64) {
	if len(x) != len(y) || len(dst) != len(x) {
		panic("vec: PointwiseMult length mismatch")
	}
	for i := range dst {
		dst[i] = x[i] * y[i]
	}
}

// MaxAbsDiff returns max_i |x_i − y_i|, used by tests to assert
// error-bound compliance of lossy compressors.
func MaxAbsDiff(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("vec: MaxAbsDiff length mismatch")
	}
	var m float64
	for i := range x {
		if d := math.Abs(x[i] - y[i]); d > m {
			m = d
		}
	}
	return m
}

// MaxRelDiff returns max_i |x_i − y_i| / |x_i| over components with
// x_i ≠ 0, the pointwise-relative error used by the paper's bound
// definition (|x_i − x'_i| ≤ eb·|x_i|).
func MaxRelDiff(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("vec: MaxRelDiff length mismatch")
	}
	var m float64
	for i := range x {
		if x[i] == 0 {
			continue
		}
		if d := math.Abs(x[i]-y[i]) / math.Abs(x[i]); d > m {
			m = d
		}
	}
	return m
}

// Range returns (min, max) over the components of x; (0, 0) for an
// empty vector. Lossy compressors use the value range to convert
// range-relative bounds into absolute bounds.
func Range(x []float64) (lo, hi float64) {
	if len(x) == 0 {
		return 0, 0
	}
	lo, hi = x[0], x[0]
	for _, v := range x[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}
