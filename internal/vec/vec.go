// Package vec provides dense vector kernels used by the iterative
// solvers. All kernels operate on []float64 slices in place where
// possible to avoid allocation inside solver loops; the distributed
// variants in package mpi build on these local kernels.
package vec

import (
	"fmt"
	"math"
)

// Dot returns the inner product x·y. It panics if the lengths differ,
// because a length mismatch in a solver is always a programming error.
//
// The sum runs over four independent accumulators: the partial sums
// have no loop-carried dependency, so the CPU overlaps the
// multiply-adds (a measurable speedup on every superscalar core), and
// pairwise-combining four shorter sums also carries less rounding
// error than one long serial sum.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("vec: Dot length mismatch %d != %d", len(x), len(y)))
	}
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(x); i += 4 {
		s0 += x[i] * y[i]
		s1 += x[i+1] * y[i+1]
		s2 += x[i+2] * y[i+2]
		s3 += x[i+3] * y[i+3]
	}
	for ; i < len(x); i++ {
		s0 += x[i] * y[i]
	}
	return (s0 + s1) + (s2 + s3)
}

// Norm2 returns the Euclidean norm ‖x‖₂, scaled by the largest
// magnitude so that components near the float64 overflow (or
// underflow) threshold square safely. The scaled sum of squares uses
// four independent accumulators like Dot.
func Norm2(x []float64) float64 {
	scale := NormInf(x)
	if scale == 0 {
		return 0
	}
	if math.IsInf(scale, 0) {
		// An infinite component makes the norm +Inf; the scaled loop
		// would produce Inf·0 = NaN instead.
		return math.Inf(1)
	}
	var s0, s1, s2, s3 float64
	if scale >= tinyNormal {
		// Multiplying by 1/scale is exact enough here and much cheaper
		// than a divide per element.
		inv := 1 / scale
		i := 0
		for ; i+4 <= len(x); i += 4 {
			r0, r1, r2, r3 := x[i]*inv, x[i+1]*inv, x[i+2]*inv, x[i+3]*inv
			s0 += r0 * r0
			s1 += r1 * r1
			s2 += r2 * r2
			s3 += r3 * r3
		}
		for ; i < len(x); i++ {
			r := x[i] * inv
			s0 += r * r
		}
	} else {
		// Subnormal maximum: 1/scale would overflow, divide instead.
		for _, v := range x {
			r := v / scale
			s0 += r * r
		}
	}
	return scale * math.Sqrt((s0+s1)+(s2+s3))
}

// tinyNormal is the smallest positive normal float64; below it the
// reciprocal 1/scale overflows to +Inf.
const tinyNormal = 2.2250738585072014e-308

// NormInf returns the maximum-magnitude component of x.
func NormInf(x []float64) float64 {
	var m0, m1, m2, m3 float64
	i := 0
	for ; i+4 <= len(x); i += 4 {
		if a := math.Abs(x[i]); a > m0 {
			m0 = a
		}
		if a := math.Abs(x[i+1]); a > m1 {
			m1 = a
		}
		if a := math.Abs(x[i+2]); a > m2 {
			m2 = a
		}
		if a := math.Abs(x[i+3]); a > m3 {
			m3 = a
		}
	}
	for ; i < len(x); i++ {
		if a := math.Abs(x[i]); a > m0 {
			m0 = a
		}
	}
	if m1 > m0 {
		m0 = m1
	}
	if m2 > m0 {
		m0 = m2
	}
	if m3 > m0 {
		m0 = m3
	}
	return m0
}

// Axpy computes y ← a·x + y.
func Axpy(a float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("vec: Axpy length mismatch %d != %d", len(x), len(y)))
	}
	for i, v := range x {
		y[i] += a * v
	}
}

// Aypx computes y ← x + a·y (the PETSc VecAYPX kernel used by CG's
// direction update p ← z + β·p).
func Aypx(a float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("vec: Aypx length mismatch %d != %d", len(x), len(y)))
	}
	for i, v := range x {
		y[i] = v + a*y[i]
	}
}

// Scale computes x ← a·x.
func Scale(a float64, x []float64) {
	for i := range x {
		x[i] *= a
	}
}

// Copy copies src into dst. It panics on length mismatch.
func Copy(dst, src []float64) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("vec: Copy length mismatch %d != %d", len(dst), len(src)))
	}
	copy(dst, src)
}

// Clone returns a freshly allocated copy of x.
func Clone(x []float64) []float64 {
	y := make([]float64, len(x))
	copy(y, x)
	return y
}

// Zero sets every component of x to zero.
func Zero(x []float64) {
	for i := range x {
		x[i] = 0
	}
}

// Fill sets every component of x to a.
func Fill(x []float64, a float64) {
	for i := range x {
		x[i] = a
	}
}

// Sub computes dst ← x − y. dst may alias x or y.
func Sub(dst, x, y []float64) {
	if len(x) != len(y) || len(dst) != len(x) {
		panic("vec: Sub length mismatch")
	}
	for i := range dst {
		dst[i] = x[i] - y[i]
	}
}

// Add computes dst ← x + y. dst may alias x or y.
func Add(dst, x, y []float64) {
	if len(x) != len(y) || len(dst) != len(x) {
		panic("vec: Add length mismatch")
	}
	for i := range dst {
		dst[i] = x[i] + y[i]
	}
}

// PointwiseMult computes dst ← x ∘ y (Hadamard product), used by
// diagonal (Jacobi) preconditioning.
func PointwiseMult(dst, x, y []float64) {
	if len(x) != len(y) || len(dst) != len(x) {
		panic("vec: PointwiseMult length mismatch")
	}
	for i := range dst {
		dst[i] = x[i] * y[i]
	}
}

// MaxAbsDiff returns max_i |x_i − y_i|, used by tests to assert
// error-bound compliance of lossy compressors.
func MaxAbsDiff(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("vec: MaxAbsDiff length mismatch")
	}
	var m float64
	for i := range x {
		if d := math.Abs(x[i] - y[i]); d > m {
			m = d
		}
	}
	return m
}

// MaxRelDiff returns max_i |x_i − y_i| / |x_i| over components with
// x_i ≠ 0, the pointwise-relative error used by the paper's bound
// definition (|x_i − x'_i| ≤ eb·|x_i|).
func MaxRelDiff(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("vec: MaxRelDiff length mismatch")
	}
	var m float64
	for i := range x {
		if x[i] == 0 {
			continue
		}
		if d := math.Abs(x[i]-y[i]) / math.Abs(x[i]); d > m {
			m = d
		}
	}
	return m
}

// Range returns (min, max) over the components of x; (0, 0) for an
// empty vector. Lossy compressors use the value range to convert
// range-relative bounds into absolute bounds.
func Range(x []float64) (lo, hi float64) {
	if len(x) == 0 {
		return 0, 0
	}
	lo, hi = x[0], x[0]
	for _, v := range x[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}
