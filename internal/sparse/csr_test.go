package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/vec"
)

func TestBuilderBasic(t *testing.T) {
	b := NewBuilder(2, 3)
	b.Add(0, 1, 5)
	b.Add(1, 0, 2)
	b.Add(0, 1, 3) // duplicate entry sums
	b.Add(1, 2, -1)
	m := b.Build()
	if m.NNZ() != 3 {
		t.Fatalf("NNZ = %d, want 3", m.NNZ())
	}
	if got := m.At(0, 1); got != 8 {
		t.Fatalf("At(0,1) = %v, want 8 (duplicates must sum)", got)
	}
	if got := m.At(1, 2); got != -1 {
		t.Fatalf("At(1,2) = %v, want -1", got)
	}
	if got := m.At(0, 0); got != 0 {
		t.Fatalf("At(0,0) = %v, want 0", got)
	}
}

func TestBuilderDropsZeros(t *testing.T) {
	b := NewBuilder(1, 1)
	b.Add(0, 0, 0)
	if m := b.Build(); m.NNZ() != 0 {
		t.Fatalf("explicit zero stored: NNZ = %d", m.NNZ())
	}
}

func TestBuilderColumnsSorted(t *testing.T) {
	b := NewBuilder(1, 5)
	b.Add(0, 4, 1)
	b.Add(0, 0, 1)
	b.Add(0, 2, 1)
	m := b.Build()
	for k := 1; k < m.NNZ(); k++ {
		if m.ColIdx[k] <= m.ColIdx[k-1] {
			t.Fatalf("columns not strictly increasing: %v", m.ColIdx)
		}
	}
}

func TestMulVec(t *testing.T) {
	// [2 0 1; 0 3 0] * [1 2 3] = [5 6]
	b := NewBuilder(2, 3)
	b.Add(0, 0, 2)
	b.Add(0, 2, 1)
	b.Add(1, 1, 3)
	m := b.Build()
	dst := make([]float64, 2)
	m.MulVec(dst, []float64{1, 2, 3})
	if dst[0] != 5 || dst[1] != 6 {
		t.Fatalf("MulVec = %v, want [5 6]", dst)
	}
}

func TestMulVecSub(t *testing.T) {
	m := Tridiag(3, -1, 2, -1)
	x := []float64{1, 1, 1}
	bvec := []float64{1, 0, 1}
	r := make([]float64, 3)
	m.MulVecSub(r, bvec, x) // b - Ax: Ax = [1,0,1] so r = 0
	for _, v := range r {
		if v != 0 {
			t.Fatalf("residual = %v, want zeros", r)
		}
	}
}

func TestDiag(t *testing.T) {
	m := Tridiag(4, -1, 2, -1)
	d := make([]float64, 4)
	m.Diag(d)
	for _, v := range d {
		if v != 2 {
			t.Fatalf("Diag = %v", d)
		}
	}
}

func TestDiagMissingEntry(t *testing.T) {
	b := NewBuilder(2, 2)
	b.Add(0, 1, 5) // no diagonal at all
	m := b.Build()
	d := make([]float64, 2)
	m.Diag(d)
	if d[0] != 0 || d[1] != 0 {
		t.Fatalf("Diag with missing entries = %v, want zeros", d)
	}
}

func TestTransposeInvolution(t *testing.T) {
	m := KKT(4, 5, 1)
	tt := m.Transpose().Transpose()
	if tt.NNZ() != m.NNZ() {
		t.Fatalf("double transpose changed nnz: %d vs %d", tt.NNZ(), m.NNZ())
	}
	for k := range m.Val {
		if tt.ColIdx[k] != m.ColIdx[k] || tt.Val[k] != m.Val[k] {
			t.Fatal("double transpose is not identity")
		}
	}
}

func TestIsSymmetric(t *testing.T) {
	if !Poisson2D(4).IsSymmetric(0) {
		t.Error("Poisson2D must be symmetric")
	}
	if !Poisson3D(3).IsSymmetric(0) {
		t.Error("Poisson3D must be symmetric")
	}
	if !KKT(3, 4, 7).IsSymmetric(0) {
		t.Error("KKT must be symmetric")
	}
	b := NewBuilder(2, 2)
	b.Add(0, 1, 1)
	if b.Build().IsSymmetric(0) {
		t.Error("strictly upper triangular matrix reported symmetric")
	}
}

func TestSubmatrixRows(t *testing.T) {
	m := Tridiag(5, -1, 2, -1)
	sub := m.SubmatrixRows(1, 3)
	if sub.Rows != 2 || sub.Cols != 5 {
		t.Fatalf("dims = %dx%d", sub.Rows, sub.Cols)
	}
	if sub.At(0, 0) != -1 || sub.At(0, 1) != 2 || sub.At(0, 2) != -1 {
		t.Fatal("row 1 content wrong")
	}
	if sub.At(1, 1) != -1 || sub.At(1, 2) != 2 || sub.At(1, 3) != -1 {
		t.Fatal("row 2 content wrong")
	}
}

func TestPoisson3DStructure(t *testing.T) {
	n := 3
	m := Poisson3D(n)
	N := n * n * n
	if m.Rows != N || m.Cols != N {
		t.Fatalf("dims %dx%d, want %dx%d", m.Rows, m.Cols, N, N)
	}
	// Interior point (1,1,1) has 7 entries; corner (0,0,0) has 4.
	center := (1*n+1)*n + 1
	if got := m.RowPtr[center+1] - m.RowPtr[center]; got != 7 {
		t.Fatalf("interior row has %d entries, want 7", got)
	}
	if got := m.RowPtr[1] - m.RowPtr[0]; got != 4 {
		t.Fatalf("corner row has %d entries, want 4", got)
	}
	if m.At(center, center) != 6 {
		t.Fatalf("diagonal = %v, want 6", m.At(center, center))
	}
	if m.At(center, center-1) != -1 {
		t.Fatal("x-neighbor missing")
	}
	if m.At(center, center-n) != -1 {
		t.Fatal("y-neighbor missing")
	}
	if m.At(center, center-n*n) != -1 {
		t.Fatal("z-neighbor missing")
	}
}

func TestPoisson3DPositiveDefinite(t *testing.T) {
	// Smallest eigenvalue of the n³ operator is 6 − 6·cos(π/(n+1)) > 0;
	// check positive definiteness via x'Ax > 0 for random x.
	m := Poisson3D(4)
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		x := make([]float64, m.Rows)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		ax := make([]float64, m.Rows)
		m.MulVec(ax, x)
		if q := vec.Dot(x, ax); q <= 0 {
			t.Fatalf("x'Ax = %v, matrix not positive definite", q)
		}
	}
}

func TestKKTIndefinite(t *testing.T) {
	m := KKT(4, 8, 3)
	// The (2,2) block is zero: diagonal entries in the constraint rows
	// must be zero, which makes the matrix indefinite.
	d := make([]float64, m.Rows)
	m.Diag(d)
	for i := 16; i < m.Rows; i++ {
		if d[i] != 0 {
			t.Fatalf("constraint row %d has diagonal %v, want 0", i, d[i])
		}
	}
	// Positive curvature along a primal basis direction.
	e := make([]float64, m.Rows)
	e[0] = 1
	ae := make([]float64, m.Rows)
	m.MulVec(ae, e)
	if vec.Dot(e, ae) <= 0 {
		t.Fatal("primal direction should have positive curvature")
	}
	// Negative curvature: for x = (−ε·Bᵀλ, λ) with the zero (2,2)
	// block, x'Ax = ε²·(Bᵀλ)'H(Bᵀλ) − 2ε·‖Bᵀλ‖², which is negative
	// for small ε. Build Bᵀλ through the assembled operator.
	nPrimal := 16
	lam := make([]float64, m.Rows)
	for i := nPrimal; i < m.Rows; i++ {
		lam[i] = 1
	}
	alam := make([]float64, m.Rows)
	m.MulVec(alam, lam) // = (Bᵀλ, 0)
	const eps = 1e-3
	x := make([]float64, m.Rows)
	for i := 0; i < nPrimal; i++ {
		x[i] = -eps * alam[i]
	}
	for i := nPrimal; i < m.Rows; i++ {
		x[i] = lam[i]
	}
	ax := make([]float64, m.Rows)
	m.MulVec(ax, x)
	if q := vec.Dot(x, ax); q >= 0 {
		t.Fatalf("x'Ax = %v, expected negative curvature (indefinite)", q)
	}
}

func TestRandomSPDIsSPD(t *testing.T) {
	m := RandomSPD(50, 3, 9)
	if !m.IsSymmetric(1e-14) {
		t.Fatal("RandomSPD not symmetric")
	}
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 20; trial++ {
		x := make([]float64, m.Rows)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		ax := make([]float64, m.Rows)
		m.MulVec(ax, x)
		if q := vec.Dot(x, ax); q <= 0 {
			t.Fatalf("x'Ax = %v ≤ 0", q)
		}
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	for _, m := range []*CSR{
		Tridiag(7, -1, 2.5, -1),
		Poisson2D(5),
		KKT(3, 4, 2),
	} {
		buf := m.Serialize()
		got, err := Deserialize(buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.Rows != m.Rows || got.Cols != m.Cols || got.NNZ() != m.NNZ() {
			t.Fatal("shape mismatch after round trip")
		}
		for k := range m.Val {
			if got.ColIdx[k] != m.ColIdx[k] || got.Val[k] != m.Val[k] {
				t.Fatal("content mismatch after round trip")
			}
		}
	}
}

func TestDeserializeRejectsGarbage(t *testing.T) {
	if _, err := Deserialize([]byte{1, 2, 3}); err == nil {
		t.Fatal("expected error on truncated input")
	}
	m := Tridiag(3, -1, 2, -1)
	buf := m.Serialize()
	if _, err := Deserialize(buf[:len(buf)-5]); err == nil {
		t.Fatal("expected error on truncated payload")
	}
}

func TestRHSForSolution(t *testing.T) {
	m := Tridiag(3, -1, 2, -1)
	xe := []float64{1, 2, 3}
	b := RHSForSolution(m, xe)
	want := []float64{2*1 - 2, -1 + 4 - 3, -2 + 6}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("RHS = %v, want %v", b, want)
		}
	}
}

func TestSmoothFieldDeterministic(t *testing.T) {
	a := SmoothField(100, 3)
	b := SmoothField(100, 3)
	c := SmoothField(100, 4)
	if vec.MaxAbsDiff(a, b) != 0 {
		t.Fatal("SmoothField must be deterministic per seed")
	}
	if vec.MaxAbsDiff(a, c) == 0 {
		t.Fatal("different seeds should differ")
	}
}

// Property: (A·x)·y == x·(Aᵀ·y) for random sparse matrices.
func TestTransposeAdjointProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 1 + rng.Intn(20)
		cols := 1 + rng.Intn(20)
		bld := NewBuilder(rows, cols)
		for e := 0; e < rows+cols; e++ {
			bld.Add(rng.Intn(rows), rng.Intn(cols), rng.NormFloat64())
		}
		m := bld.Build()
		mt := m.Transpose()
		x := make([]float64, cols)
		y := make([]float64, rows)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		for i := range y {
			y[i] = rng.NormFloat64()
		}
		ax := make([]float64, rows)
		m.MulVec(ax, x)
		aty := make([]float64, cols)
		mt.MulVec(aty, y)
		lhs := vec.Dot(ax, y)
		rhs := vec.Dot(x, aty)
		return math.Abs(lhs-rhs) <= 1e-9*(1+math.Abs(lhs))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: serialize/deserialize is the identity on random matrices.
func TestSerializeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 1 + rng.Intn(15)
		cols := 1 + rng.Intn(15)
		bld := NewBuilder(rows, cols)
		for e := 0; e < rng.Intn(40); e++ {
			bld.Add(rng.Intn(rows), rng.Intn(cols), rng.NormFloat64())
		}
		m := bld.Build()
		got, err := Deserialize(m.Serialize())
		if err != nil {
			return false
		}
		if got.Rows != m.Rows || got.Cols != m.Cols || got.NNZ() != m.NNZ() {
			return false
		}
		for k := range m.Val {
			if got.ColIdx[k] != m.ColIdx[k] || got.Val[k] != m.Val[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
