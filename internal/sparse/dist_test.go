package sparse

import (
	"math/rand"
	"testing"

	"repro/internal/mpi"
	"repro/internal/vec"
)

func TestPartitionStarts(t *testing.T) {
	starts := PartitionStarts(10, 3)
	want := []int{0, 3, 6, 10}
	for i := range want {
		if starts[i] != want[i] {
			t.Fatalf("starts = %v, want %v", starts, want)
		}
	}
}

func TestPartitionStartsMoreRanksThanRows(t *testing.T) {
	starts := PartitionStarts(2, 4)
	if starts[0] != 0 || starts[4] != 2 {
		t.Fatalf("starts = %v", starts)
	}
	total := 0
	for r := 0; r < 4; r++ {
		n := starts[r+1] - starts[r]
		if n < 0 {
			t.Fatalf("negative count at rank %d", r)
		}
		total += n
	}
	if total != 2 {
		t.Fatalf("counts sum to %d, want 2", total)
	}
}

// distMatVecMatches checks the distributed matvec against the
// sequential one for a given matrix and rank count.
func distMatVecMatches(t *testing.T, a *CSR, p int) {
	t.Helper()
	x := make([]float64, a.Cols)
	rng := rand.New(rand.NewSource(123))
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	want := make([]float64, a.Rows)
	a.MulVec(want, x)

	err := mpi.Run(p, func(c *mpi.Comm) error {
		d := NewDist(c, a)
		lo := d.RowStart()
		n := d.LocalRows()
		xl := make([]float64, n)
		copy(xl, x[lo:lo+n])
		dst := make([]float64, n)
		// Run twice to confirm the exchange plan is reusable.
		for rep := 0; rep < 2; rep++ {
			d.MulVec(dst, xl)
			for i := 0; i < n; i++ {
				if diff := dst[i] - want[lo+i]; diff > 1e-12 || diff < -1e-12 {
					t.Errorf("p=%d rank %d row %d: got %v want %v",
						p, c.Rank(), lo+i, dst[i], want[lo+i])
					return nil
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDistMulVecPoisson(t *testing.T) {
	a := Poisson3D(4) // 64 rows
	for _, p := range []int{1, 2, 3, 7, 16} {
		distMatVecMatches(t, a, p)
	}
}

func TestDistMulVecTridiag(t *testing.T) {
	a := Tridiag(31, -1, 2, -1)
	for _, p := range []int{2, 5, 8} {
		distMatVecMatches(t, a, p)
	}
}

func TestDistMulVecKKT(t *testing.T) {
	// KKT has long-range couplings (random constraints), forcing
	// ghost exchange between non-adjacent ranks.
	a := KKT(4, 8, 11)
	for _, p := range []int{2, 4, 6} {
		distMatVecMatches(t, a, p)
	}
}

func TestDistMulVecMoreRanksThanRows(t *testing.T) {
	a := Tridiag(5, -1, 2, -1)
	distMatVecMatches(t, a, 8)
}

func TestDistDiag(t *testing.T) {
	a := Poisson2D(4)
	err := mpi.Run(3, func(c *mpi.Comm) error {
		d := NewDist(c, a)
		dl := make([]float64, d.LocalRows())
		d.Diag(dl)
		for i := range dl {
			if dl[i] != 4 {
				t.Errorf("rank %d diag[%d] = %v, want 4", c.Rank(), i, dl[i])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDistGather(t *testing.T) {
	a := Tridiag(10, -1, 2, -1)
	err := mpi.Run(4, func(c *mpi.Comm) error {
		d := NewDist(c, a)
		lo := d.RowStart()
		xl := make([]float64, d.LocalRows())
		for i := range xl {
			xl[i] = float64(lo + i)
		}
		full := d.Gather(xl)
		if len(full) != 10 {
			t.Errorf("Gather length %d", len(full))
			return nil
		}
		for i := range full {
			if full[i] != float64(i) {
				t.Errorf("Gather[%d] = %v", i, full[i])
				return nil
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDistributedResidualNorm(t *testing.T) {
	// End-to-end: distributed residual b − Ax and its allreduced norm
	// must match the sequential computation.
	a := Poisson3D(3)
	xe := SmoothField(a.Rows, 2)
	b := RHSForSolution(a, xe)
	x0 := make([]float64, a.Rows) // zero guess
	r := make([]float64, a.Rows)
	a.MulVecSub(r, b, x0)
	want := vec.Norm2(r)

	err := mpi.Run(5, func(c *mpi.Comm) error {
		d := NewDist(c, a)
		lo, n := d.RowStart(), d.LocalRows()
		xl := make([]float64, n)
		rl := make([]float64, n)
		d.MulVec(rl, xl)
		var part float64
		for i := 0; i < n; i++ {
			ri := b[lo+i] - rl[i]
			part += ri * ri
		}
		got := c.AllreduceSum(part)
		if diff := got - want*want; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("rank %d: ||r||² = %v, want %v", c.Rank(), got, want*want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
