package sparse

import (
	"math"
	"math/rand"
)

// Poisson3D returns the n³×n³ system matrix of the paper's Eq. (15):
// the 7-point stencil on an n×n×n grid. The paper writes the operator
// with −6 on the diagonal and +1 off-diagonal; we return the
// sign-flipped matrix (+6 diagonal, −1 off-diagonal) so that the
// matrix is symmetric positive definite as required by CG. Solving
// A·x = b with our A is identical to solving the paper's system with
// right-hand side −b, so every convergence result carries over.
func Poisson3D(n int) *CSR {
	if n <= 0 {
		panic("sparse: Poisson3D needs n > 0")
	}
	N := n * n * n
	nnz := 7 * N // upper bound
	m := &CSR{
		Rows:   N,
		Cols:   N,
		RowPtr: make([]int, N+1),
		ColIdx: make([]int, 0, nnz),
		Val:    make([]float64, 0, nnz),
	}
	idx := func(ix, iy, iz int) int { return (iz*n+iy)*n + ix }
	row := 0
	for iz := 0; iz < n; iz++ {
		for iy := 0; iy < n; iy++ {
			for ix := 0; ix < n; ix++ {
				// Neighbors in increasing column order:
				// -z, -y, -x, center, +x, +y, +z.
				if iz > 0 {
					m.ColIdx = append(m.ColIdx, idx(ix, iy, iz-1))
					m.Val = append(m.Val, -1)
				}
				if iy > 0 {
					m.ColIdx = append(m.ColIdx, idx(ix, iy-1, iz))
					m.Val = append(m.Val, -1)
				}
				if ix > 0 {
					m.ColIdx = append(m.ColIdx, idx(ix-1, iy, iz))
					m.Val = append(m.Val, -1)
				}
				m.ColIdx = append(m.ColIdx, row)
				m.Val = append(m.Val, 6)
				if ix < n-1 {
					m.ColIdx = append(m.ColIdx, idx(ix+1, iy, iz))
					m.Val = append(m.Val, -1)
				}
				if iy < n-1 {
					m.ColIdx = append(m.ColIdx, idx(ix, iy+1, iz))
					m.Val = append(m.Val, -1)
				}
				if iz < n-1 {
					m.ColIdx = append(m.ColIdx, idx(ix, iy, iz+1))
					m.Val = append(m.Val, -1)
				}
				row++
				m.RowPtr[row] = len(m.Val)
			}
		}
	}
	return m
}

// Poisson3DAniso returns the 7-point stencil operator on an
// nx×ny×nz grid (diagonal 6, off-diagonal −1), with the x index
// fastest in the row ordering. The paper's evaluation grids are cubic
// at dimension 1088–2160; an anisotropic grid with a paper-scale nx
// reproduces the 1D traversal smoothness of the paper's checkpoint
// data (runs of nx smoothly varying values) at laptop-scale total
// size, which is what the compression-ratio measurements need.
func Poisson3DAniso(nx, ny, nz int) *CSR {
	if nx <= 0 || ny <= 0 || nz <= 0 {
		panic("sparse: Poisson3DAniso needs positive dims")
	}
	N := nx * ny * nz
	m := &CSR{Rows: N, Cols: N, RowPtr: make([]int, N+1)}
	idx := func(ix, iy, iz int) int { return (iz*ny+iy)*nx + ix }
	row := 0
	for iz := 0; iz < nz; iz++ {
		for iy := 0; iy < ny; iy++ {
			for ix := 0; ix < nx; ix++ {
				if iz > 0 {
					m.ColIdx = append(m.ColIdx, idx(ix, iy, iz-1))
					m.Val = append(m.Val, -1)
				}
				if iy > 0 {
					m.ColIdx = append(m.ColIdx, idx(ix, iy-1, iz))
					m.Val = append(m.Val, -1)
				}
				if ix > 0 {
					m.ColIdx = append(m.ColIdx, idx(ix-1, iy, iz))
					m.Val = append(m.Val, -1)
				}
				m.ColIdx = append(m.ColIdx, row)
				m.Val = append(m.Val, 6)
				if ix < nx-1 {
					m.ColIdx = append(m.ColIdx, idx(ix+1, iy, iz))
					m.Val = append(m.Val, -1)
				}
				if iy < ny-1 {
					m.ColIdx = append(m.ColIdx, idx(ix, iy+1, iz))
					m.Val = append(m.Val, -1)
				}
				if iz < nz-1 {
					m.ColIdx = append(m.ColIdx, idx(ix, iy, iz+1))
					m.Val = append(m.Val, -1)
				}
				row++
				m.RowPtr[row] = len(m.Val)
			}
		}
	}
	return m
}

// Poisson2D returns the n²×n² 5-point stencil matrix (diagonal 4,
// off-diagonal −1), the 2D analogue used for smaller tests and as the
// (1,1) block of the KKT generator.
func Poisson2D(n int) *CSR {
	if n <= 0 {
		panic("sparse: Poisson2D needs n > 0")
	}
	N := n * n
	m := &CSR{Rows: N, Cols: N, RowPtr: make([]int, N+1)}
	idx := func(ix, iy int) int { return iy*n + ix }
	row := 0
	for iy := 0; iy < n; iy++ {
		for ix := 0; ix < n; ix++ {
			if iy > 0 {
				m.ColIdx = append(m.ColIdx, idx(ix, iy-1))
				m.Val = append(m.Val, -1)
			}
			if ix > 0 {
				m.ColIdx = append(m.ColIdx, idx(ix-1, iy))
				m.Val = append(m.Val, -1)
			}
			m.ColIdx = append(m.ColIdx, row)
			m.Val = append(m.Val, 4)
			if ix < n-1 {
				m.ColIdx = append(m.ColIdx, idx(ix+1, iy))
				m.Val = append(m.Val, -1)
			}
			if iy < n-1 {
				m.ColIdx = append(m.ColIdx, idx(ix, iy+1))
				m.Val = append(m.Val, -1)
			}
			row++
			m.RowPtr[row] = len(m.Val)
		}
	}
	return m
}

// Tridiag returns the n×n tridiagonal matrix with sub-diagonal a,
// diagonal b, and super-diagonal c. The classic 1D Poisson operator is
// Tridiag(n, -1, 2, -1).
func Tridiag(n int, a, b, c float64) *CSR {
	if n <= 0 {
		panic("sparse: Tridiag needs n > 0")
	}
	m := &CSR{Rows: n, Cols: n, RowPtr: make([]int, n+1)}
	for i := 0; i < n; i++ {
		if i > 0 && a != 0 {
			m.ColIdx = append(m.ColIdx, i-1)
			m.Val = append(m.Val, a)
		}
		if b != 0 {
			m.ColIdx = append(m.ColIdx, i)
			m.Val = append(m.Val, b)
		}
		if i < n-1 && c != 0 {
			m.ColIdx = append(m.ColIdx, i+1)
			m.Val = append(m.Val, c)
		}
		m.RowPtr[i+1] = len(m.Val)
	}
	return m
}

// KKT returns a symmetric indefinite saddle-point matrix
//
//	[ H  Bᵀ ]
//	[ B  0  ]
//
// with H the gridN²×gridN² 2D Poisson operator and B a sparse
// difference-constraint block with nc rows. This is our stand-in for
// the SuiteSparse KKT240 matrix used in the paper's Fig. 3: KKT240 is
// a symmetric indefinite KKT system from 3D PDE-constrained
// optimization; this generator reproduces the structural features that
// make such systems hard for GMRES (indefiniteness, zero diagonal
// block), at a size that fits in a test machine.
func KKT(gridN, nc int, seed int64) *CSR {
	h := Poisson2D(gridN)
	m := h.Rows
	if nc <= 0 {
		nc = m / 4
	}
	if nc > m {
		panic("sparse: KKT constraint count exceeds primal size")
	}
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(m+nc, m+nc)
	// H block.
	for i := 0; i < m; i++ {
		for k := h.RowPtr[i]; k < h.RowPtr[i+1]; k++ {
			b.Add(i, h.ColIdx[k], h.Val[k])
		}
	}
	// B and Bᵀ blocks: each constraint couples two distinct primal
	// unknowns with coefficients +1/−1 (a difference constraint), the
	// typical structure of equality-constrained discretizations.
	for i := 0; i < nc; i++ {
		j1 := rng.Intn(m)
		j2 := rng.Intn(m)
		for j2 == j1 {
			j2 = rng.Intn(m)
		}
		b.Add(m+i, j1, 1)
		b.Add(m+i, j2, -1)
		b.Add(j1, m+i, 1)
		b.Add(j2, m+i, -1)
	}
	return b.Build()
}

// RandomSPD returns a random sparse symmetric positive definite matrix
// with about extraPerRow off-diagonal entries per row, made strictly
// diagonally dominant. Used by property tests as an "arbitrary SPD
// system" source.
func RandomSPD(n, extraPerRow int, seed int64) *CSR {
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(n, n)
	rowAbs := make([]float64, n)
	for i := 0; i < n; i++ {
		for e := 0; e < extraPerRow; e++ {
			j := rng.Intn(n)
			if j == i {
				continue
			}
			v := rng.NormFloat64()
			b.Add(i, j, v)
			b.Add(j, i, v)
			rowAbs[i] += math.Abs(v)
			rowAbs[j] += math.Abs(v)
		}
	}
	for i := 0; i < n; i++ {
		b.Add(i, i, rowAbs[i]+1+rng.Float64())
	}
	return b.Build()
}

// SmoothField returns an n-vector sampled from a smooth superposition
// of sines. Iterative-method solution vectors for PDE systems are
// smooth, which is exactly why SZ-style prediction compresses them so
// well; tests and experiments use this as a realistic solver state.
func SmoothField(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	a1, a2, a3 := 1+rng.Float64(), rng.Float64(), 0.3*rng.Float64()
	p1, p2, p3 := rng.Float64()*math.Pi, rng.Float64()*math.Pi, rng.Float64()*math.Pi
	x := make([]float64, n)
	for i := range x {
		t := float64(i) / float64(n)
		x[i] = a1*math.Sin(2*math.Pi*t+p1) +
			a2*math.Sin(8*math.Pi*t+p2) +
			a3*math.Sin(32*math.Pi*t+p3)
	}
	return x
}

// RHSForSolution returns b = A·xExact, so that xExact is the known
// solution of A·x = b. Tests use it to measure true solution error.
func RHSForSolution(a *CSR, xExact []float64) []float64 {
	b := make([]float64, a.Rows)
	a.MulVec(b, xExact)
	return b
}

// OnesRHS returns the all-ones right-hand side of length n, the
// conventional test load for Poisson problems.
func OnesRHS(n int) []float64 {
	b := make([]float64, n)
	for i := range b {
		b[i] = 1
	}
	return b
}
