package sparse

import (
	"fmt"
	"sort"

	"repro/internal/mpi"
)

// Dist is a row-partitioned distributed matrix: each rank owns a
// contiguous block of rows and the matching block of every vector,
// exactly like PETSc's MPIAIJ layout. Off-rank vector entries needed
// by the local rows (the ghost region) are fetched with point-to-point
// exchange during MulVec.
type Dist struct {
	comm   *mpi.Comm
	n      int   // global dimension
	starts []int // starts[r] = first global row of rank r; len = size+1

	local *CSR // owned rows; columns remapped to [0, nLocal+nGhost)

	ghostGlobal []int // global index of each ghost slot, ascending
	recvFrom    []ghostRange
	sendTo      []sendPlan

	xExt []float64 // scratch [owned | ghosts]
}

type ghostRange struct {
	rank   int
	lo, hi int // ghost slot range [lo, hi) filled by this neighbor
}

type sendPlan struct {
	rank    int
	indices []int // local indices to gather and ship
	buf     []float64
}

const tagGhost = 1001

// PartitionStarts returns the canonical contiguous partition of n rows
// over size ranks: rank r owns [starts[r], starts[r+1]).
func PartitionStarts(n, size int) []int {
	starts := make([]int, size+1)
	for r := 0; r <= size; r++ {
		starts[r] = r * n / size
	}
	return starts
}

// NewDist builds the distributed form of the global matrix a on the
// calling rank. Every rank must call it collectively with an identical
// matrix. The matrix must be square (solvers require it).
func NewDist(comm *mpi.Comm, a *CSR) *Dist {
	if a.Rows != a.Cols {
		panic(fmt.Sprintf("sparse: NewDist requires square matrix, got %dx%d", a.Rows, a.Cols))
	}
	size := comm.Size()
	starts := PartitionStarts(a.Rows, size)
	rank := comm.Rank()
	lo, hi := starts[rank], starts[rank+1]
	nLocal := hi - lo

	sub := a.SubmatrixRows(lo, hi)

	// Collect ghost columns: global columns outside [lo, hi).
	ghostSet := map[int]bool{}
	for _, j := range sub.ColIdx {
		if j < lo || j >= hi {
			ghostSet[j] = true
		}
	}
	ghosts := make([]int, 0, len(ghostSet))
	for j := range ghostSet {
		ghosts = append(ghosts, j)
	}
	sort.Ints(ghosts)
	slot := make(map[int]int, len(ghosts))
	for s, j := range ghosts {
		slot[j] = s
	}

	// Remap local columns to [0, nLocal) ∪ ghost slots.
	for k, j := range sub.ColIdx {
		if j >= lo && j < hi {
			sub.ColIdx[k] = j - lo
		} else {
			sub.ColIdx[k] = nLocal + slot[j]
		}
	}
	sub.Cols = nLocal + len(ghosts)

	d := &Dist{
		comm:        comm,
		n:           a.Rows,
		starts:      starts,
		local:       sub,
		ghostGlobal: ghosts,
		xExt:        make([]float64, nLocal+len(ghosts)),
	}
	d.buildExchangePlan()
	return d
}

// owner returns the rank owning global row j.
func (d *Dist) owner(j int) int {
	return sort.SearchInts(d.starts[1:], j+1)
}

// buildExchangePlan agrees, collectively, on who sends what to whom.
// Each rank publishes its ghost requests (owner, index) via
// Allgatherv; every rank then extracts the requests addressed to it.
func (d *Dist) buildExchangePlan() {
	size := d.comm.Size()
	rank := d.comm.Rank()
	lo := d.starts[rank]

	// Requests as flat (ownerRank, globalIndex) pairs encoded in
	// float64 (exact for indices below 2^53).
	reqs := make([]float64, 0, 2*len(d.ghostGlobal))
	for _, j := range d.ghostGlobal {
		reqs = append(reqs, float64(d.owner(j)), float64(j))
	}

	// Share per-rank request counts, then the requests themselves.
	counts := make([]float64, size)
	counts[rank] = float64(len(reqs))
	d.comm.AllreduceSumVec(counts)
	icounts := make([]int, size)
	for r := range counts {
		icounts[r] = int(counts[r])
	}
	all := d.comm.Allgatherv(reqs, icounts)

	// Receive ranges: contiguous runs of my sorted ghost list per owner.
	for s := 0; s < len(d.ghostGlobal); {
		r := d.owner(d.ghostGlobal[s])
		e := s
		for e < len(d.ghostGlobal) && d.owner(d.ghostGlobal[e]) == r {
			e++
		}
		d.recvFrom = append(d.recvFrom, ghostRange{rank: r, lo: s, hi: e})
		s = e
	}

	// Send plans: scan the global request list for entries owned by me.
	perRequester := map[int][]int{}
	off := 0
	for r := 0; r < size; r++ {
		cnt := icounts[r]
		for k := 0; k < cnt; k += 2 {
			own := int(all[off+k])
			j := int(all[off+k+1])
			if own == rank {
				perRequester[r] = append(perRequester[r], j-lo)
			}
		}
		off += cnt
	}
	requesters := make([]int, 0, len(perRequester))
	for r := range perRequester {
		requesters = append(requesters, r)
	}
	sort.Ints(requesters)
	for _, r := range requesters {
		idx := perRequester[r]
		// Requests arrive in ascending global order because each
		// requester's ghost list is sorted, so the receive side's
		// contiguous slot range lines up with this order.
		d.sendTo = append(d.sendTo, sendPlan{
			rank:    r,
			indices: idx,
			buf:     make([]float64, len(idx)),
		})
	}
}

// GlobalRows returns the global dimension of the matrix.
func (d *Dist) GlobalRows() int { return d.n }

// LocalRows returns the number of rows owned by this rank.
func (d *Dist) LocalRows() int { return d.starts[d.comm.Rank()+1] - d.starts[d.comm.Rank()] }

// RowStart returns the first global row owned by this rank.
func (d *Dist) RowStart() int { return d.starts[d.comm.Rank()] }

// Comm returns the communicator this matrix was built on.
func (d *Dist) Comm() *mpi.Comm { return d.comm }

// Counts returns the per-rank row counts (shared by Allgatherv calls).
func (d *Dist) Counts() []int {
	counts := make([]int, d.comm.Size())
	for r := range counts {
		counts[r] = d.starts[r+1] - d.starts[r]
	}
	return counts
}

// MulVec computes dst ← A·x on the owned block. x and dst hold only
// the owned entries (length LocalRows); ghost values are exchanged
// internally. All ranks must call MulVec collectively.
func (d *Dist) MulVec(dst, x []float64) {
	nLocal := d.LocalRows()
	if len(x) != nLocal || len(dst) != nLocal {
		panic(fmt.Sprintf("sparse: Dist.MulVec local length %d, got x=%d dst=%d",
			nLocal, len(x), len(dst)))
	}
	copy(d.xExt[:nLocal], x)

	// Ship requested values to every requester first (buffered
	// channels make this safe), then collect our ghosts.
	for i := range d.sendTo {
		p := &d.sendTo[i]
		for k, li := range p.indices {
			p.buf[k] = x[li]
		}
		d.comm.Send(p.rank, tagGhost, p.buf)
	}
	for _, g := range d.recvFrom {
		vals := d.comm.Recv(g.rank, tagGhost)
		if len(vals) != g.hi-g.lo {
			panic("sparse: ghost exchange size mismatch")
		}
		copy(d.xExt[nLocal+g.lo:nLocal+g.hi], vals)
	}
	d.local.MulVec(dst, d.xExt)
}

// Diag extracts the owned part of the global diagonal.
func (d *Dist) Diag(dst []float64) {
	nLocal := d.LocalRows()
	if len(dst) != nLocal {
		panic("sparse: Dist.Diag length mismatch")
	}
	for i := 0; i < nLocal; i++ {
		dst[i] = 0
		for k := d.local.RowPtr[i]; k < d.local.RowPtr[i+1]; k++ {
			if d.local.ColIdx[k] == i {
				dst[i] = d.local.Val[k]
				break
			}
		}
	}
}

// Gather assembles the full global vector from the owned pieces on
// every rank (an Allgatherv). Used by tests and small demos only.
func (d *Dist) Gather(x []float64) []float64 {
	return d.comm.Allgatherv(x, d.Counts())
}
