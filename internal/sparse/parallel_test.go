package sparse

import (
	"math/rand"
	"testing"

	"repro/internal/parallel"
)

// mulVecReference is the plain serial CSR multiply, kept in the tests
// as the oracle the parallel kernel must match bitwise.
func mulVecReference(m *CSR, dst, x []float64) {
	for i := 0; i < m.Rows; i++ {
		var s float64
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			s += m.Val[k] * x[m.ColIdx[k]]
		}
		dst[i] = s
	}
}

func randomVector(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return x
}

// TestMulVecParallelBitwiseIdentical: row-partitioned parallel SpMV
// must produce exactly the serial bytes — each row's sum has the same
// association order regardless of the worker count.
func TestMulVecParallelBitwiseIdentical(t *testing.T) {
	a := Poisson3D(32) // 32,768 rows, ~223k nnz: well above the parallel threshold
	if a.NNZ() < parallelMinNNZ {
		t.Fatalf("test matrix too small (%d nnz) to exercise the parallel path", a.NNZ())
	}
	x := randomVector(a.Cols, 41)
	want := make([]float64, a.Rows)
	mulVecReference(a, want, x)

	got := make([]float64, a.Rows)
	for _, workers := range []int{1, 2, 8, 16} {
		prev := parallel.SetWorkers(workers)
		a.MulVec(got, x)
		parallel.SetWorkers(prev)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d row %d: parallel %v != serial %v (must be bitwise identical)",
					workers, i, got[i], want[i])
			}
		}
	}
}

// TestMulVecSubParallelBitwiseIdentical: the fused residual kernel
// matches b − A·x computed with the reference multiply, bitwise.
func TestMulVecSubParallelBitwiseIdentical(t *testing.T) {
	a := Poisson3D(32)
	x := randomVector(a.Cols, 43)
	b := randomVector(a.Rows, 47)
	ax := make([]float64, a.Rows)
	mulVecReference(a, ax, x)
	want := make([]float64, a.Rows)
	for i := range want {
		want[i] = b[i] - ax[i]
	}

	got := make([]float64, a.Rows)
	for _, workers := range []int{1, 8} {
		prev := parallel.SetWorkers(workers)
		a.MulVecSub(got, b, x)
		parallel.SetWorkers(prev)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d row %d: %v != %v", workers, i, got[i], want[i])
			}
		}
	}
}

// TestMulVecSmallStaysCorrect: matrices below the parallel threshold
// run the serial path and still match the oracle.
func TestMulVecSmallStaysCorrect(t *testing.T) {
	a := Poisson2D(20) // 400 rows: far below the threshold
	if a.NNZ() >= parallelMinNNZ {
		t.Fatalf("expected a sub-threshold matrix, got %d nnz", a.NNZ())
	}
	x := randomVector(a.Cols, 53)
	want := make([]float64, a.Rows)
	mulVecReference(a, want, x)
	got := make([]float64, a.Rows)
	a.MulVec(got, x)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d: %v != %v", i, got[i], want[i])
		}
	}
}
