// Package sparse provides compressed sparse row (CSR) matrices, the
// problem generators used by the paper's evaluation (3D Poisson,
// KKT-like saddle point, random SPD), and a row-partitioned
// distributed matrix with ghost exchange over the mpi runtime.
package sparse

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"repro/internal/parallel"
)

// CSR is a sparse matrix in compressed sparse row format. Column
// indices within each row are strictly increasing.
type CSR struct {
	Rows, Cols int
	RowPtr     []int // length Rows+1
	ColIdx     []int // length NNZ
	Val        []float64
}

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int { return len(m.Val) }

// At returns the value at (i, j); zero if no entry is stored. It is a
// binary search per call and intended for tests and small matrices,
// not for inner loops.
func (m *CSR) At(i, j int) float64 {
	if i < 0 || i >= m.Rows || j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("sparse: At(%d,%d) out of range %dx%d", i, j, m.Rows, m.Cols))
	}
	lo, hi := m.RowPtr[i], m.RowPtr[i+1]
	k := lo + sort.SearchInts(m.ColIdx[lo:hi], j)
	if k < hi && m.ColIdx[k] == j {
		return m.Val[k]
	}
	return 0
}

// parallelMinNNZ is the matrix size below which MulVec stays serial:
// under ~32k stored entries the multiply finishes in tens of
// microseconds and goroutine scheduling would dominate, so small
// solves keep their exact serial cost profile.
const parallelMinNNZ = 1 << 15

// mulVecRange computes dst[i] ← Σ_k A[i,k]·x[k] for rows in [lo, hi).
// Each row's sum is accumulated left to right exactly as in the serial
// kernel, so a row-partitioned parallel multiply is bitwise identical
// to the serial one.
func (m *CSR) mulVecRange(dst, x []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		var s float64
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			s += m.Val[k] * x[m.ColIdx[k]]
		}
		dst[i] = s
	}
}

// MulVec computes dst ← A·x. dst must not alias x. Large matrices are
// processed by row ranges across the parallel worker pool; because
// rows are independent and each row sums in serial order, the result
// is bitwise identical to the serial kernel at any worker count.
func (m *CSR) MulVec(dst, x []float64) {
	if len(x) != m.Cols || len(dst) != m.Rows {
		panic(fmt.Sprintf("sparse: MulVec dims: A is %dx%d, x has %d, dst has %d",
			m.Rows, m.Cols, len(x), len(dst)))
	}
	if m.NNZ() < parallelMinNNZ {
		m.mulVecRange(dst, x, 0, m.Rows)
		return
	}
	parallel.For(m.Rows, parallel.Grain(m.Rows, 512, 4), func(lo, hi int) {
		m.mulVecRange(dst, x, lo, hi)
	})
}

// MulVecSub computes dst ← b − A·x (the residual kernel). The
// subtraction is fused into the row loop so the parallel path touches
// dst once per row instead of twice.
func (m *CSR) MulVecSub(dst, b, x []float64) {
	if len(b) != m.Rows {
		panic("sparse: MulVecSub b length mismatch")
	}
	if len(x) != m.Cols || len(dst) != m.Rows {
		panic(fmt.Sprintf("sparse: MulVecSub dims: A is %dx%d, x has %d, dst has %d",
			m.Rows, m.Cols, len(x), len(dst)))
	}
	sub := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			var s float64
			for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
				s += m.Val[k] * x[m.ColIdx[k]]
			}
			dst[i] = b[i] - s
		}
	}
	if m.NNZ() < parallelMinNNZ {
		sub(0, m.Rows)
		return
	}
	parallel.For(m.Rows, parallel.Grain(m.Rows, 512, 4), sub)
}

// Diag extracts the main diagonal into dst (length Rows). Missing
// diagonal entries yield zero.
func (m *CSR) Diag(dst []float64) {
	if len(dst) != m.Rows {
		panic("sparse: Diag length mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		dst[i] = 0
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			if m.ColIdx[k] == i {
				dst[i] = m.Val[k]
				break
			}
		}
	}
}

// Transpose returns Aᵀ as a new CSR matrix.
func (m *CSR) Transpose() *CSR {
	counts := make([]int, m.Cols+1)
	for _, j := range m.ColIdx {
		counts[j+1]++
	}
	for j := 0; j < m.Cols; j++ {
		counts[j+1] += counts[j]
	}
	t := &CSR{
		Rows:   m.Cols,
		Cols:   m.Rows,
		RowPtr: counts,
		ColIdx: make([]int, m.NNZ()),
		Val:    make([]float64, m.NNZ()),
	}
	next := make([]int, m.Cols)
	copy(next, counts[:m.Cols])
	for i := 0; i < m.Rows; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			j := m.ColIdx[k]
			p := next[j]
			t.ColIdx[p] = i
			t.Val[p] = m.Val[k]
			next[j]++
		}
	}
	return t
}

// IsSymmetric reports whether the matrix equals its transpose within
// tolerance tol on every stored entry.
func (m *CSR) IsSymmetric(tol float64) bool {
	if m.Rows != m.Cols {
		return false
	}
	t := m.Transpose()
	if t.NNZ() != m.NNZ() {
		return false
	}
	for i := 0; i <= m.Rows; i++ {
		if t.RowPtr[i] != m.RowPtr[i] {
			return false
		}
	}
	for k := range m.Val {
		if t.ColIdx[k] != m.ColIdx[k] || math.Abs(t.Val[k]-m.Val[k]) > tol {
			return false
		}
	}
	return true
}

// SubmatrixRows returns the block of rows [lo, hi) as a new CSR matrix
// that keeps the original (global) column space.
func (m *CSR) SubmatrixRows(lo, hi int) *CSR {
	if lo < 0 || hi > m.Rows || lo > hi {
		panic(fmt.Sprintf("sparse: SubmatrixRows [%d,%d) out of range %d", lo, hi, m.Rows))
	}
	s, e := m.RowPtr[lo], m.RowPtr[hi]
	sub := &CSR{
		Rows:   hi - lo,
		Cols:   m.Cols,
		RowPtr: make([]int, hi-lo+1),
		ColIdx: make([]int, e-s),
		Val:    make([]float64, e-s),
	}
	for i := lo; i <= hi; i++ {
		sub.RowPtr[i-lo] = m.RowPtr[i] - s
	}
	copy(sub.ColIdx, m.ColIdx[s:e])
	copy(sub.Val, m.Val[s:e])
	return sub
}

// Builder accumulates coordinate-format entries and compresses them
// into a CSR matrix. Duplicate (i, j) entries are summed, matching the
// usual finite-element assembly convention.
type Builder struct {
	rows, cols int
	is, js     []int
	vs         []float64
}

// NewBuilder returns a Builder for a rows×cols matrix.
func NewBuilder(rows, cols int) *Builder {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("sparse: invalid builder dims %dx%d", rows, cols))
	}
	return &Builder{rows: rows, cols: cols}
}

// Add records entry (i, j) += v. Zero values are kept out to preserve
// sparsity.
func (b *Builder) Add(i, j int, v float64) {
	if i < 0 || i >= b.rows || j < 0 || j >= b.cols {
		panic(fmt.Sprintf("sparse: Add(%d,%d) out of range %dx%d", i, j, b.rows, b.cols))
	}
	if v == 0 {
		return
	}
	b.is = append(b.is, i)
	b.js = append(b.js, j)
	b.vs = append(b.vs, v)
}

// Build compresses the accumulated entries into a CSR matrix.
func (b *Builder) Build() *CSR {
	type key struct{ i, j int }
	order := make([]int, len(b.is))
	for k := range order {
		order[k] = k
	}
	sort.Slice(order, func(a, c int) bool {
		ka, kc := order[a], order[c]
		if b.is[ka] != b.is[kc] {
			return b.is[ka] < b.is[kc]
		}
		return b.js[ka] < b.js[kc]
	})
	m := &CSR{Rows: b.rows, Cols: b.cols, RowPtr: make([]int, b.rows+1)}
	last := key{-1, -1}
	for _, k := range order {
		cur := key{b.is[k], b.js[k]}
		if cur == last {
			m.Val[len(m.Val)-1] += b.vs[k]
			continue
		}
		m.ColIdx = append(m.ColIdx, cur.j)
		m.Val = append(m.Val, b.vs[k])
		m.RowPtr[cur.i+1]++
		last = cur
	}
	for i := 0; i < b.rows; i++ {
		m.RowPtr[i+1] += m.RowPtr[i]
	}
	return m
}

// Serialize encodes the matrix into a portable byte stream (little
// endian). The checkpoint library stores static variables (A, M, b)
// with this encoding.
func (m *CSR) Serialize() []byte {
	n := 16 + 8*(len(m.RowPtr)+len(m.ColIdx)) + 8*len(m.Val)
	buf := make([]byte, 0, n)
	var scratch [8]byte
	putInt := func(v int) {
		binary.LittleEndian.PutUint64(scratch[:], uint64(v))
		buf = append(buf, scratch[:]...)
	}
	putInt(m.Rows)
	putInt(m.Cols)
	for _, v := range m.RowPtr {
		putInt(v)
	}
	for _, v := range m.ColIdx {
		putInt(v)
	}
	for _, v := range m.Val {
		binary.LittleEndian.PutUint64(scratch[:], math.Float64bits(v))
		buf = append(buf, scratch[:]...)
	}
	return buf
}

// Deserialize decodes a matrix produced by Serialize.
func Deserialize(buf []byte) (*CSR, error) {
	if len(buf) < 16 {
		return nil, fmt.Errorf("sparse: truncated header (%d bytes)", len(buf))
	}
	off := 0
	getInt := func() int {
		v := int(binary.LittleEndian.Uint64(buf[off:]))
		off += 8
		return v
	}
	rows, cols := getInt(), getInt()
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("sparse: invalid dims %dx%d", rows, cols)
	}
	need := 16 + 8*(rows+1)
	if len(buf) < need {
		return nil, fmt.Errorf("sparse: truncated row pointers")
	}
	m := &CSR{Rows: rows, Cols: cols, RowPtr: make([]int, rows+1)}
	for i := range m.RowPtr {
		m.RowPtr[i] = getInt()
	}
	nnz := m.RowPtr[rows]
	if nnz < 0 || len(buf) != 16+8*(rows+1)+16*nnz {
		return nil, fmt.Errorf("sparse: payload size %d does not match nnz %d", len(buf), nnz)
	}
	m.ColIdx = make([]int, nnz)
	for i := range m.ColIdx {
		m.ColIdx[i] = getInt()
		if m.ColIdx[i] < 0 || m.ColIdx[i] >= cols {
			return nil, fmt.Errorf("sparse: column index %d out of range", m.ColIdx[i])
		}
	}
	m.Val = make([]float64, nnz)
	for i := range m.Val {
		m.Val[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
		off += 8
	}
	return m, nil
}
