package sim

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fti"
	"repro/internal/solver"
	"repro/internal/sparse"
	"repro/internal/sz"
)

// newShardedCG wires a CG solver to a lossy Manager with the given
// storage layout.
func newShardedCG(t *testing.T, a *sparse.CSR, b []float64, shards, workers int) (*solver.CG, *core.Manager) {
	t.Helper()
	s := solver.NewCG(a, nil, b, nil, solver.SeqSpace{}, solver.Options{RTol: 1e-9})
	m, err := core.NewManager(core.Config{
		Scheme:         core.Lossy,
		SZParams:       sz.Params{Mode: sz.PWRel, ErrorBound: 1e-4},
		Shards:         shards,
		StorageWorkers: workers,
	}, fti.NewMemStorage(), s)
	if err != nil {
		t.Fatal(err)
	}
	return s, m
}

// shardedSimRun executes one failure-injected run whose checkpoint
// write cost comes from the striped-PFS model at the given shard
// count.
func shardedSimRun(t *testing.T, shards, workers int) *Outcome {
	t.Helper()
	a, b, _ := testSystem()
	s, m := newShardedCG(t, a, b, shards, workers)
	mdl := cluster.Bebop()
	// Price the write at the paper's weak-scaled size: each of the 256
	// ranks contributes a state like this test system's, so the PFS
	// transfer term dominates and the striping is visible. The local
	// solve still produces the real (small) checkpoint bytes; only the
	// virtual-time cost is scaled.
	const ranks = 256
	raw := float64(a.Rows) * 8 * ranks
	out, err := Run(Config{
		Stepper:         s,
		Manager:         m,
		X0:              make([]float64, a.Rows),
		TitSeconds:      2,
		IntervalSeconds: 25,
		CheckpointSeconds: func(info fti.Info) float64 {
			return mdl.ShardedCheckpointSeconds(ranks, float64(info.Bytes)*ranks, raw, cluster.LossyCompressed, info.Shards)
		},
		RecoverySeconds: func(info fti.Info) float64 { return 3 },
		FailureSchedule: []float64{120, 260},
		MaxIterations:   200000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Converged {
		t.Fatal("did not converge")
	}
	return out
}

// shardedRecoveryRun executes one controlled-failure run whose restart
// cost comes from the streaming read model at the layout's shard
// count; the checkpoint cost is held constant so the two layouts
// execute identical virtual-time schedules and the only difference is
// the priced recovery.
func shardedRecoveryRun(t *testing.T, shards, workers int) *Outcome {
	t.Helper()
	a, b, _ := testSystem()
	s, m := newShardedCG(t, a, b, shards, workers)
	mdl := cluster.Bebop()
	const ranks = 256
	raw := float64(a.Rows) * 8 * ranks
	out, err := Run(Config{
		Stepper:           s,
		Manager:           m,
		X0:                make([]float64, a.Rows),
		TitSeconds:        2,
		IntervalSeconds:   25,
		CheckpointSeconds: func(info fti.Info) float64 { return 3 },
		RecoverySeconds: func(info fti.Info) float64 {
			return mdl.ShardedRecoverySeconds(ranks, float64(info.Bytes)*ranks, raw, cluster.LossyCompressed, info.Shards)
		},
		// One failure only, after the first committed checkpoint: the
		// recovery duration then shifts the completion time but not
		// the iteration/checkpoint sequence.
		FailureSchedule: []float64{40},
		MaxIterations:   200000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Converged {
		t.Fatal("did not converge")
	}
	if out.Failures != 1 {
		t.Fatalf("expected 1 failure, got %d", out.Failures)
	}
	return out
}

// TestShardedRecoveryPricing: restarts priced off Info.Shards through
// the streaming read model must leave the numerics untouched while
// shrinking the recovery time for sharded layouts.
func TestShardedRecoveryPricing(t *testing.T) {
	mono := shardedRecoveryRun(t, 1, 0)
	sharded := shardedRecoveryRun(t, 8, 4)
	if mono.IterationsExecuted != sharded.IterationsExecuted ||
		mono.ConvergenceIterations != sharded.ConvergenceIterations ||
		mono.FinalResidual != sharded.FinalResidual {
		t.Fatalf("recovery pricing changed the numerics:\nmono    %+v\nsharded %+v", mono, sharded)
	}
	if !(sharded.RecoveryTime < mono.RecoveryTime) {
		t.Fatalf("streaming restart did not shrink recovery time: mono %.3fs sharded %.3fs",
			mono.RecoveryTime, sharded.RecoveryTime)
	}
}

// TestShardedSimNumericsLayoutIndependent: through real recoveries,
// the sharded and monolithic layouts must execute the identical
// iteration sequence — only the simulated checkpoint time (the
// striped write) may differ, and it must shrink with sharding.
func TestShardedSimNumericsLayoutIndependent(t *testing.T) {
	mono := shardedSimRun(t, 1, 0)
	sharded := shardedSimRun(t, 8, 4)
	if mono.IterationsExecuted != sharded.IterationsExecuted ||
		mono.ConvergenceIterations != sharded.ConvergenceIterations ||
		mono.FinalResidual != sharded.FinalResidual {
		t.Fatalf("layout changed the numerics:\nmono    %+v\nsharded %+v", mono, sharded)
	}
	if !(sharded.CheckpointTime < mono.CheckpointTime) {
		t.Fatalf("striped write did not shrink checkpoint time: mono %.2fs sharded %.2fs",
			mono.CheckpointTime, sharded.CheckpointTime)
	}
}
