package sim

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/failure"
	"repro/internal/fti"
	"repro/internal/obs"
	"repro/internal/quality"
	"repro/internal/vec"
)

// TestQualityInSimVirtualTime covers the simulator surface of the
// quality layer: a failure-injected virtual-time run with the auditor
// attached converges identically to the uninstrumented run (same
// iterations, bitwise-same final state), its audit and reacquire
// spans are stamped on the VIRTUAL clock, and recoveries get
// convergence-delay attributions.
func TestQualityInSimVirtualTime(t *testing.T) {
	a, b, _ := testSystem()
	run := func(qa *quality.Auditor, tr *obs.Tracer) (*Outcome, []uint64) {
		s, m := newManagedCG(t, a, b, core.Lossy)
		m.InstrumentQuality(qa)
		out, err := Run(Config{
			Stepper:           s,
			Manager:           m,
			X0:                make([]float64, a.Rows),
			TitSeconds:        2,
			IntervalSeconds:   20,
			CheckpointSeconds: func(fti.Info) float64 { return 3 },
			RecoverySeconds:   func(fti.Info) float64 { return 4 },
			Failures:          failure.NewInjector(60, 7),
			MaxIterations:     100000,
			Tracer:            tr,
			Quality:           qa,
		})
		if err != nil {
			t.Fatal(err)
		}
		x := s.X()
		bits := make([]uint64, len(x))
		for i, v := range x {
			bits[i] = math.Float64bits(v)
		}
		return out, bits
	}

	base, baseX := run(nil, nil)
	if base.Failures == 0 {
		t.Fatal("the seeded injector should produce failures")
	}

	qa := quality.New(quality.Config{Exhaustive: true, BNorm: vec.Norm2(b)})
	tr := obs.NewTracerWithClock(func() float64 { return 0 }) // sim overrides per-span via SetSpanClock
	qa.Instrument(obs.New(), tr)
	inst, instX := run(qa, tr)

	if inst.IterationsExecuted != base.IterationsExecuted ||
		inst.Failures != base.Failures ||
		inst.Checkpoints != base.Checkpoints ||
		math.Float64bits(inst.FinalResidual) != math.Float64bits(base.FinalResidual) {
		t.Fatalf("instrumented sim diverged: base %+v vs instrumented %+v", base, inst)
	}
	for i := range baseX {
		if baseX[i] != instX[i] {
			t.Fatalf("final solution diverged at element %d", i)
		}
	}

	if len(qa.Records()) == 0 {
		t.Fatal("no checkpoint audits recorded")
	}
	entries := qa.RecoveryEntries()
	if len(entries) == 0 {
		t.Fatal("no recovery attributions recorded")
	}
	resolved := 0
	for _, e := range entries {
		if e.Resolved {
			resolved++
		}
	}
	if resolved == 0 {
		t.Fatal("a converged run must resolve at least one recovery attribution")
	}

	// Quality spans must carry virtual timestamps: within [0, SimSeconds]
	// and with zero wall duration (the virtual clock stamps instants).
	audits, reacquires := 0, 0
	for _, ev := range tr.Events() {
		if ev.Cat != obs.CatQuality {
			continue
		}
		if ev.Start < 0 || ev.Start > inst.SimSeconds {
			t.Fatalf("quality span %q at %g outside virtual time [0, %g]", ev.Name, ev.Start, inst.SimSeconds)
		}
		switch ev.Name {
		case obs.SpanQualityAudit:
			audits++
			if ev.Dur != 0 {
				t.Fatalf("virtual-time audit span has wall duration %g", ev.Dur)
			}
		case obs.SpanQualityReacquire:
			reacquires++
		}
	}
	if audits == 0 || reacquires == 0 {
		t.Fatalf("expected audit and reacquire spans on the virtual clock, got %d/%d", audits, reacquires)
	}
}
