// Package sim is the virtual-time execution engine behind the paper's
// experimental evaluation (§5.4): it drives a *real* iterative solver
// (real numerics, real lossy checkpoints, real restarts from
// decompressed state) while advancing a simulated wall clock whose
// iteration, checkpoint, and recovery durations come from the
// calibrated cluster model. Failures are injected with exponential
// inter-arrival times and may strike during computation, checkpointing
// or recovery — exactly the paper's setup.
//
// The numerical consequences (extra iterations after a lossy restart,
// residual jumps, reproducibility to the convergence tolerance) emerge
// from the actual solver; only the clock is modeled.
package sim

import (
	"fmt"
	"math"

	"repro/internal/adapt"
	"repro/internal/core"
	"repro/internal/failure"
	"repro/internal/fti"
	"repro/internal/obs"
	"repro/internal/quality"
	"repro/internal/solver"
)

// Config assembles one simulated run.
type Config struct {
	// Stepper is the live solver; it must be the same object the
	// Manager was built around.
	Stepper solver.Stepper
	// Manager wires the checkpoint scheme.
	Manager *core.Manager
	// X0 is the initial guess used when a failure precedes the first
	// checkpoint (recover-from-scratch).
	X0 []float64

	// TitSeconds is the simulated duration of one iteration.
	TitSeconds float64
	// IntervalSeconds is the checkpoint interval in simulated seconds
	// (Young's optimum in the experiments). Zero disables periodic
	// checkpointing. Mutually exclusive with Controller.
	IntervalSeconds float64
	// Controller, when non-nil, replaces the fixed IntervalSeconds with
	// the adaptive interval controller: every checkpoint decision asks
	// the controller for the current planned interval, and the
	// simulator feeds it the modeled costs (sync checkpoint seconds, or
	// capture stall + background write in AsyncCheckpoint mode), the
	// checkpoint byte counts, every injected failure, and every
	// completed recovery — all in virtual time, so a given seed
	// reproduces the identical interval trajectory. The controller's
	// Async flag must match AsyncCheckpoint. The controller is driven,
	// not copied: pass a fresh one per run.
	Controller *adapt.Controller
	// CheckpointSeconds maps a written checkpoint to its simulated
	// duration (cluster model + measured compression ratio). In async
	// mode this is the background encode+write time, overlapped with
	// iterations. Sharded checkpoints report their shard count in
	// info.Shards, so striped-PFS costing is
	// cluster.Model.ShardedCheckpointSeconds(..., info.Shards): the
	// write engages min(shards, stripes) stripes. The numerics are
	// layout-independent — sharded and monolithic runs execute
	// identical iteration sequences — so only this callback changes.
	CheckpointSeconds func(info fti.Info) float64
	// RecoverySeconds maps the checkpoint being restored to the
	// simulated recovery duration. Like the write side, sharded
	// checkpoints carry their layout in info.Shards, so restarts are
	// priced through the streaming read model —
	// cluster.Model.ShardedRecoverySeconds(..., info.Shards): min(
	// shards, stripes) concurrent per-stripe reads overlapped with
	// decompression, falling back to the serial RecoverySeconds cost
	// at shards ≤ 1.
	RecoverySeconds func(info fti.Info) float64

	// StorageRetrySeconds prices the expected retry/backoff delay the
	// fault-tolerant storage layer adds to one checkpoint write under a
	// lossy PFS — cluster.Model.StorageRetrySeconds is the calibrated
	// form. The delay is added to the synchronous checkpoint stall (or
	// the background write duration in async mode) and accumulated in
	// Outcome.StorageRetryTime. Nil means a fault-free store: zero
	// retry delay.
	StorageRetrySeconds func(info fti.Info) float64

	// AsyncCheckpoint enables the overlapped-checkpoint cost mode and
	// requires a synchronous Manager (core.Config.Async off): the
	// simulator models the overlap in virtual time, so the in-process
	// checkpoint must complete inside m.Checkpoint() to yield the full
	// Info the cost callbacks need. With an async Manager the Info
	// would be provisional (Bytes 0) and Run returns an error. The
	// solver is charged only CaptureSeconds per checkpoint plus any
	// backpressure wait for the previous background encode+write
	// (which occupies CheckpointSeconds of virtual time concurrently
	// with iterations). A checkpoint whose background write has not
	// finished when a failure strikes is not a recovery target — it is
	// aborted and recovery falls back to the previous committed one,
	// the same semantics the real AsyncCheckpointer has. Only the
	// clock differs from sync mode: the solver executes the identical
	// iteration/checkpoint/recovery sequence for a given failure
	// trace.
	AsyncCheckpoint bool
	// CaptureSeconds maps a checkpoint to the solver-visible capture
	// stall (the deep copy of the protected state) in async mode.
	// Nil means a free capture.
	CaptureSeconds func(info fti.Info) float64

	// ABFTSeconds prices one ABFT tier attempt in simulated seconds
	// when the Manager carries an ABFT guard (core.Config.ABFT): the
	// tier costs local reconstruction iterations and neighbor block
	// fetches, not PFS reads — cluster.Model.ABFTRecoverySeconds is the
	// calibrated form. Nil defaults to Iterations × TitSeconds.
	// Rejected attempts are priced too: a verification that failed
	// still ran the local solve.
	ABFTSeconds func(att core.TierAttempt) float64

	// OnStep, when non-nil, runs after every completed iteration (after
	// the ABFT guard's retention refresh) — the hook deterministic
	// fault-injection couples through to damage state mid-run.
	OnStep func()

	// Failures injects fail-stop errors; nil disables them.
	Failures *failure.Injector
	// FailureSchedule, when non-empty, overrides Failures with an
	// explicit list of absolute failure times (ascending). Figure 9's
	// controlled 1-failure and 2-failure traces use it.
	FailureSchedule []float64

	// MaxIterations caps the run (defends against divergence).
	MaxIterations int
	// RecordResiduals retains the per-iteration residual trace
	// (Figure 9 needs it).
	RecordResiduals bool

	// Metrics, when non-nil, receives the harness's lifecycle counters
	// (the sim_* catalog: failures, checkpoints, aborts, recoveries by
	// tier, elapsed virtual seconds). Tracer, when non-nil, receives
	// the same span schema real runs emit — compute, checkpoint,
	// capture and background-write spans plus per-tier recovery spans
	// — stamped with the virtual clock, so a simulated trace opens in
	// chrome://tracing like a wall-clock one. Both are pure observers
	// and never alter the simulated trajectory.
	Metrics *obs.Registry
	Tracer  *obs.Tracer

	// Quality, when non-nil, is the numerical-telemetry auditor. It
	// must be the same auditor attached to the Manager
	// (InstrumentQuality); the simulator feeds it the per-iteration
	// residual trajectory and retargets its span clock at the virtual
	// clock for the duration of the run, so audit and reacquire spans
	// carry virtual timestamps under the same schema real runs emit.
	// Like Metrics and Tracer it is a pure observer: a
	// quality-instrumented simulation executes the bitwise-identical
	// trajectory of an uninstrumented one.
	Quality *quality.Auditor
}

// Event marks a failure in the trace.
type Event struct {
	SimSeconds float64
	Iteration  int // iterations executed when the failure struck
}

// Outcome reports one simulated run.
type Outcome struct {
	Converged          bool
	SimSeconds         float64 // total wall time Tt
	IterationsExecuted int     // solver steps actually performed
	// ConvergenceIterations is the paper's "number of convergence
	// iterations": the logical iteration index at convergence, which
	// rolls back to the checkpointed index on recovery (re-executed
	// work is not double counted). GMRES's occasional post-recovery
	// acceleration shows up here as a count *below* the failure-free
	// baseline (paper Fig. 8).
	ConvergenceIterations int
	Failures              int
	Checkpoints           int
	AbortedCheckpoints    int
	CheckpointTime        float64 // solver-visible seconds spent checkpointing
	// BackpressureTime is the part of CheckpointTime spent waiting for
	// the previous background encode+write (async mode only): the
	// checkpoint interval was shorter than the background pipeline.
	BackpressureTime float64
	// StorageRetryTime is the simulated seconds checkpoint writes spent
	// in the storage layer's retry/backoff loops (part of
	// CheckpointTime in sync mode, of the background write duration in
	// async mode).
	StorageRetryTime float64
	RecoveryTime     float64 // simulated seconds spent recovering
	FailureEvents    []Event
	Residuals        []float64 // per executed iteration (optional)
	FinalResidual    float64
	// Recovery-tier accounting. Every recovery increments exactly one
	// of the three counters: ABFTRecoveries (checkpoint-free
	// reconstruction — no PFS reads), CheckpointRestarts (latest or
	// previous committed checkpoint), FreshRestarts (restart from the
	// initial guess). RecoveryReadBytes totals the encoded bytes
	// recoveries read from storage, including reads of checkpoints that
	// were then rejected — the PFS read-traffic metric the ABFT tier
	// exists to reduce.
	ABFTRecoveries     int
	CheckpointRestarts int
	FreshRestarts      int
	RecoveryReadBytes  int64
	// RecoveryReports holds the per-failure tier reports of a tiered
	// run (Manager with an ABFT guard), in failure order. Chains cut
	// short by a new failure before their simulated cost had elapsed
	// are included too, marked Interrupted — their attempts (and the
	// attempts' virtual durations) were still paid — and do not count
	// against the tier counters above.
	RecoveryReports []core.RecoveryReport
	// IntervalPlans is the adaptive controller's re-planning trajectory
	// (adaptive runs only): every interval decision with the estimates
	// it was made from, in virtual-time order.
	IntervalPlans []adapt.Plan
}

// Run executes the simulation to convergence or the iteration cap.
func Run(cfg Config) (*Outcome, error) {
	if cfg.Stepper == nil || cfg.Manager == nil {
		return nil, fmt.Errorf("sim: Stepper and Manager are required")
	}
	if cfg.Manager.AsyncCheckpointer() != nil {
		// Either way round, the simulator needs the full Info a
		// synchronous Checkpoint returns: async overlap is modeled in
		// virtual time via cfg.AsyncCheckpoint, not by the real
		// pipeline, whose provisional Info (Bytes 0) would zero out
		// the cost callbacks.
		return nil, fmt.Errorf("sim: the simulator needs a synchronous Manager (disable core.Config.Async; use Config.AsyncCheckpoint for overlapped-cost modeling)")
	}
	if cfg.TitSeconds <= 0 {
		return nil, fmt.Errorf("sim: TitSeconds must be positive")
	}
	if cfg.Controller != nil {
		if cfg.IntervalSeconds > 0 {
			return nil, fmt.Errorf("sim: IntervalSeconds and Controller are mutually exclusive")
		}
		if cfg.Controller.Async() != cfg.AsyncCheckpoint {
			return nil, fmt.Errorf("sim: controller async=%v does not match AsyncCheckpoint=%v (the controller would plan against the wrong cost model)",
				cfg.Controller.Async(), cfg.AsyncCheckpoint)
		}
	}
	if cfg.MaxIterations == 0 {
		cfg.MaxIterations = 1_000_000
	}
	if cfg.CheckpointSeconds == nil {
		cfg.CheckpointSeconds = func(fti.Info) float64 { return 0 }
	}
	if cfg.RecoverySeconds == nil {
		cfg.RecoverySeconds = func(fti.Info) float64 { return 0 }
	}
	if cfg.CaptureSeconds == nil {
		cfg.CaptureSeconds = func(fti.Info) float64 { return 0 }
	}
	if cfg.StorageRetrySeconds == nil {
		cfg.StorageRetrySeconds = func(fti.Info) float64 { return 0 }
	}

	out := &Outcome{}
	s := cfg.Stepper
	m := cfg.Manager
	ob := newSimObs(cfg.Metrics, cfg.Tracer)

	t := 0.0
	if cfg.Quality != nil {
		// Quality spans are stamped with the virtual clock while the
		// simulation runs (the closure reads t as it advances).
		cfg.Quality.SetSpanClock(func() float64 { return t })
		defer cfg.Quality.SetSpanClock(nil)
	}
	lastCkptAt := 0.0
	// computeAt marks the virtual start of the current uninterrupted
	// stretch of solver iterations; markCompute closes the stretch as
	// one coalesced span on the solver track.
	computeAt := 0.0
	markCompute := func(now float64) {
		ob.compute(computeAt, now)
		computeAt = now
	}
	logical := 0       // logical iteration index (paper's i)
	logicalAtCkpt := 0 // logical index captured by the latest checkpoint
	prevLogicalAtCkpt := 0
	schedule := append([]float64(nil), cfg.FailureSchedule...)
	drawFail := func(now float64) float64 {
		if len(schedule) > 0 {
			next := schedule[0]
			schedule = schedule[1:]
			if next <= now {
				next = now + 1e-9
			}
			return next
		}
		if cfg.Failures != nil {
			return cfg.Failures.Next(now)
		}
		return math.Inf(1)
	}
	nextFail := drawFail(0)

	// interval returns the checkpoint cadence in force at virtual time
	// t: the fixed IntervalSeconds, or the controller's current plan
	// (re-planned on its epoch cadence as observations arrive).
	ctrl := cfg.Controller
	interval := func() float64 {
		if ctrl != nil {
			return ctrl.Interval(t)
		}
		return cfg.IntervalSeconds
	}

	// Async mode: the background encode+write of the latest checkpoint
	// occupies virtual time [capture end, pendingCommitAt) concurrently
	// with iterations. Until it commits, that checkpoint is not a
	// recovery target.
	pendingLive := false
	pendingCommitAt := 0.0
	pendingStart := 0.0 // capture end: when the background write began
	// commitPending marks the pending checkpoint committed if its
	// background write finished by virtual time `now`.
	commitPending := func(now float64) {
		if pendingLive && pendingCommitAt <= now {
			pendingLive = false
			out.Checkpoints++
			ob.checkpoint()
			ob.span(obs.TrackPipeline, obs.CatCheckpoint, obs.SpanBackground,
				pendingStart, pendingCommitAt-pendingStart, nil)
		}
	}
	// abortPending discards a still-uncommitted pending checkpoint —
	// the failure struck mid-write, so recovery must fall back to the
	// previous committed one.
	abortPending := func() error {
		if !pendingLive {
			return nil
		}
		pendingLive = false
		out.AbortedCheckpoints++
		ob.abort()
		ob.span(obs.TrackPipeline, obs.CatCheckpoint, obs.SpanBackground,
			pendingStart, t-pendingStart, map[string]float64{"aborted": 1})
		if err := m.AbortLastCheckpoint(); err != nil {
			return fmt.Errorf("sim: abort in-flight checkpoint: %w", err)
		}
		logicalAtCkpt = prevLogicalAtCkpt
		return nil
	}

	// Tiered recovery engages when the Manager carries an ABFT guard:
	// each failure loses one rank's block and the full chain
	// (ABFT → latest ckpt → previous ckpt → zero) runs, priced per
	// tier attempt. Without a guard the legacy single-tier path runs
	// unchanged (plus read-traffic accounting).
	guard := m.ABFTGuard()
	abftSec := cfg.ABFTSeconds
	if abftSec == nil {
		abftSec = func(att core.TierAttempt) float64 { return float64(att.Iterations) * cfg.TitSeconds }
	}
	// priceReport prices every tier attempt of one chain recovery in
	// simulated seconds and writes the price back onto the attempt, so
	// the report's durations are consistently virtual for accepted and
	// rejected attempts alike (the wall-clock timings RecoverTiered
	// measured are meaningless inside the virtual clock). ABFT
	// attempts cost reconstruction work (accepted or not — a failed
	// verification still ran the local solve), each checkpoint-tier
	// attempt costs one restore read (rejected reads were still paid),
	// restart-from-zero is free. Returns the chain's total.
	priceReport := func(rep *core.RecoveryReport) float64 {
		total := 0.0
		for i := range rep.Attempts {
			att := &rep.Attempts[i]
			sec := 0.0
			switch att.Tier {
			case core.TierABFT:
				sec = abftSec(*att)
			case core.TierCheckpoint, core.TierPreviousCheckpoint:
				sec = cfg.RecoverySeconds(m.LastInfo())
			}
			att.Seconds = sec
			total += sec
		}
		return total
	}

	// handleFailure advances the clock through the recovery (including
	// nested failures during recovery) and restores the solver.
	handleFailure := func() error {
		out.Failures++
		out.FailureEvents = append(out.FailureEvents, Event{SimSeconds: t, Iteration: out.IterationsExecuted})
		if ctrl != nil {
			ctrl.ObserveFailure(t)
		}
		ob.failure(t)
		if guard == nil {
			for {
				rec := cfg.RecoverySeconds(m.LastInfo())
				nextFail = drawFail(t)
				if t+rec <= nextFail {
					ob.span(obs.TrackRecovery, obs.CatRecovery, obs.SpanRestore, t, rec, nil)
					t += rec
					out.RecoveryTime += rec
					if ctrl != nil {
						ctrl.ObserveRecovery(rec)
					}
					break
				}
				// Failure during recovery: the recovery restarts.
				wasted := nextFail - t
				ob.span(obs.TrackRecovery, obs.CatRecovery, obs.SpanRestore, t, wasted,
					map[string]float64{"interrupted": 1})
				t = nextFail
				out.RecoveryTime += wasted
				out.Failures++
				out.FailureEvents = append(out.FailureEvents, Event{SimSeconds: t, Iteration: out.IterationsExecuted})
				if ctrl != nil {
					ctrl.ObserveFailure(t)
				}
				ob.failure(t)
			}
			if m.HasCheckpoint() {
				if _, err := m.Recover(); err != nil {
					return fmt.Errorf("sim: recovery: %w", err)
				}
				out.CheckpointRestarts++
				ob.recoveryTier(core.TierCheckpoint)
				out.RecoveryReadBytes += int64(m.LastInfo().Bytes)
				logical = logicalAtCkpt
			} else {
				m.RecoverFresh(cfg.X0)
				out.FreshRestarts++
				ob.recoveryTier(core.TierRestartZero)
				logical = 0
			}
			lastCkptAt = t // the interval clock restarts after recovery
			computeAt = t
			return nil
		}
		for {
			// Each failure (including one striking during recovery)
			// loses one rank drawn from the guard's seeded stream.
			guard.FailNextRank()
			rep, err := m.RecoverTiered(cfg.X0)
			if err != nil {
				return fmt.Errorf("sim: tiered recovery: %w", err)
			}
			rec := priceReport(rep)
			out.RecoveryReadBytes += int64(rep.ReadBytes())
			nextFail = drawFail(t)
			if t+rec <= nextFail {
				ob.recovery(rep, t, math.Inf(1))
				t += rec
				out.RecoveryTime += rec
				out.RecoveryReports = append(out.RecoveryReports, *rep)
				switch rep.Used {
				case core.TierABFT:
					out.ABFTRecoveries++
					if ctrl != nil {
						ctrl.ObserveRecoveryKind(adapt.RecoveryObs{Seconds: rec, RestartIO: false})
					}
					// Exact pre-failure state restored: no logical
					// rollback, no re-executed work.
				case core.TierCheckpoint:
					out.CheckpointRestarts++
					if ctrl != nil {
						ctrl.ObserveRecoveryKind(adapt.RecoveryObs{Seconds: rec, RestartIO: true})
					}
					logical = logicalAtCkpt
				case core.TierPreviousCheckpoint:
					out.CheckpointRestarts++
					if ctrl != nil {
						ctrl.ObserveRecoveryKind(adapt.RecoveryObs{Seconds: rec, RestartIO: true})
					}
					logical = prevLogicalAtCkpt
				default:
					out.FreshRestarts++
					logical = 0
				}
				break
			}
			// Failure during recovery: the chain's work is wasted and
			// the chain reruns against the new loss. The report is
			// still kept — its attempts and their virtual durations
			// were paid — marked Interrupted so tier accounting skips
			// it.
			rep.Interrupted = true
			out.RecoveryReports = append(out.RecoveryReports, *rep)
			ob.recovery(rep, t, nextFail)
			wasted := nextFail - t
			t = nextFail
			out.RecoveryTime += wasted
			out.Failures++
			out.FailureEvents = append(out.FailureEvents, Event{SimSeconds: t, Iteration: out.IterationsExecuted})
			if ctrl != nil {
				ctrl.ObserveFailure(t)
			}
			ob.failure(t)
		}
		lastCkptAt = t // the interval clock restarts after recovery
		computeAt = t
		return nil
	}

	// failDuringCheckpoint is the failure-inside-the-checkpoint-window
	// path, shared by the sync write and the async capture: charge the
	// wasted time up to the failure, discard the unusable checkpoint,
	// and recover. (In sync mode the write was partial; in async mode
	// the capture copy was.)
	failDuringCheckpoint := func() error {
		wasted := nextFail - t
		ob.span(obs.TrackSolver, obs.CatCheckpoint, obs.SpanCheckpoint, t, wasted,
			map[string]float64{"aborted": 1})
		t = nextFail
		computeAt = t
		out.CheckpointTime += wasted
		out.AbortedCheckpoints++
		ob.abort()
		if err := m.AbortLastCheckpoint(); err != nil {
			return fmt.Errorf("sim: abort checkpoint: %w", err)
		}
		logicalAtCkpt = prevLogicalAtCkpt
		return handleFailure()
	}

	rnorm := s.ResidualNorm()
	for !s.Converged(rnorm) {
		if out.IterationsExecuted >= cfg.MaxIterations {
			break
		}

		// Periodic checkpoint (Algorithm 1/2 line 3), expressed in
		// simulated time as in the paper's optimal-interval runs (fixed
		// cadence) or re-planned online by the adaptive controller.
		if iv := interval(); iv > 0 && t-lastCkptAt >= iv {
			markCompute(t)
			if cfg.AsyncCheckpoint {
				// Backpressure: SaveAsync drains the previous
				// background encode+write before capturing.
				if pendingLive && pendingCommitAt > t {
					if pendingCommitAt > nextFail {
						// The failure strikes during the wait; the
						// in-flight write never completes.
						wasted := nextFail - t
						t = nextFail
						out.CheckpointTime += wasted
						out.BackpressureTime += wasted
						if err := abortPending(); err != nil {
							return nil, err
						}
						if err := handleFailure(); err != nil {
							return nil, err
						}
						rnorm = s.ResidualNorm()
						continue
					}
					wait := pendingCommitAt - t
					t = pendingCommitAt
					out.CheckpointTime += wait
					out.BackpressureTime += wait
				}
				commitPending(t)
				info, err := m.Checkpoint()
				if err != nil {
					return nil, fmt.Errorf("sim: checkpoint: %w", err)
				}
				prevLogicalAtCkpt, logicalAtCkpt = logicalAtCkpt, logical
				capSec := cfg.CaptureSeconds(info)
				if t+capSec > nextFail {
					if err := failDuringCheckpoint(); err != nil {
						return nil, err
					}
					rnorm = s.ResidualNorm()
					continue
				}
				t += capSec
				out.CheckpointTime += capSec
				ob.span(obs.TrackSolver, obs.CatCheckpoint, obs.SpanCapture, t-capSec, capSec, nil)
				retrySec := cfg.StorageRetrySeconds(info)
				out.StorageRetryTime += retrySec
				bg := cfg.CheckpointSeconds(info) + retrySec
				pendingLive = true
				pendingCommitAt = t + bg
				pendingStart = t
				lastCkptAt = t
				computeAt = t
				if ctrl != nil {
					ctrl.ObserveCheckpoint(adapt.CheckpointObs{
						When:              t,
						CaptureSeconds:    capSec,
						BackgroundSeconds: bg,
						RawBytes:          info.RawBytes,
						Bytes:             info.Bytes,
					})
				}
			} else {
				info, err := m.Checkpoint()
				if err != nil {
					return nil, fmt.Errorf("sim: checkpoint: %w", err)
				}
				prevLogicalAtCkpt, logicalAtCkpt = logicalAtCkpt, logical
				retrySec := cfg.StorageRetrySeconds(info)
				out.StorageRetryTime += retrySec
				d := cfg.CheckpointSeconds(info) + retrySec
				if t+d > nextFail {
					if err := failDuringCheckpoint(); err != nil {
						return nil, err
					}
					rnorm = s.ResidualNorm()
					continue
				}
				t += d
				out.CheckpointTime += d
				out.Checkpoints++
				ob.checkpoint()
				ob.span(obs.TrackSolver, obs.CatCheckpoint, obs.SpanCheckpoint, t-d, d,
					map[string]float64{"bytes": float64(info.Bytes)})
				lastCkptAt = t
				computeAt = t
				if ctrl != nil {
					ctrl.ObserveCheckpoint(adapt.CheckpointObs{
						When:        t,
						SyncSeconds: d,
						RawBytes:    info.RawBytes,
						Bytes:       info.Bytes,
					})
				}
			}
		}

		// One iteration of simulated duration Tit.
		if t+cfg.TitSeconds > nextFail {
			// Failure mid-iteration: the step's work is lost. A pending
			// background write that finished before the failure had
			// committed; one still in flight is lost with the node.
			t = nextFail
			markCompute(t)
			commitPending(t)
			if err := abortPending(); err != nil {
				return nil, err
			}
			if err := handleFailure(); err != nil {
				return nil, err
			}
			rnorm = s.ResidualNorm()
			continue
		}
		rnorm = s.Step()
		cfg.Quality.ObserveResidual(s.Iteration(), rnorm)
		if guard != nil {
			// The ABFT guard retains its per-iteration redundancy after
			// every accepted step, as the paper's protected CG does.
			guard.Observe()
		}
		if cfg.OnStep != nil {
			cfg.OnStep()
		}
		out.IterationsExecuted++
		logical++
		t += cfg.TitSeconds
		if cfg.RecordResiduals {
			out.Residuals = append(out.Residuals, rnorm)
		}
	}

	// A background write still running at convergence completes during
	// shutdown; it counts as taken but adds no solver-visible time.
	commitPending(math.Inf(1))
	markCompute(t)
	ob.setElapsed(t)
	out.Converged = s.Converged(rnorm)
	out.SimSeconds = t
	out.ConvergenceIterations = logical
	out.FinalResidual = rnorm
	if ctrl != nil {
		out.IntervalPlans = append([]adapt.Plan(nil), ctrl.Trajectory()...)
	}
	return out, nil
}

// FaultToleranceOverhead computes the paper's metric: total running
// time minus the failure-free baseline's productive time.
func (o *Outcome) FaultToleranceOverhead(baselineSeconds float64) float64 {
	return o.SimSeconds - baselineSeconds
}
