// Package sim is the virtual-time execution engine behind the paper's
// experimental evaluation (§5.4): it drives a *real* iterative solver
// (real numerics, real lossy checkpoints, real restarts from
// decompressed state) while advancing a simulated wall clock whose
// iteration, checkpoint, and recovery durations come from the
// calibrated cluster model. Failures are injected with exponential
// inter-arrival times and may strike during computation, checkpointing
// or recovery — exactly the paper's setup.
//
// The numerical consequences (extra iterations after a lossy restart,
// residual jumps, reproducibility to the convergence tolerance) emerge
// from the actual solver; only the clock is modeled.
package sim

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/failure"
	"repro/internal/fti"
	"repro/internal/solver"
)

// Config assembles one simulated run.
type Config struct {
	// Stepper is the live solver; it must be the same object the
	// Manager was built around.
	Stepper solver.Stepper
	// Manager wires the checkpoint scheme.
	Manager *core.Manager
	// X0 is the initial guess used when a failure precedes the first
	// checkpoint (recover-from-scratch).
	X0 []float64

	// TitSeconds is the simulated duration of one iteration.
	TitSeconds float64
	// IntervalSeconds is the checkpoint interval in simulated seconds
	// (Young's optimum in the experiments). Zero disables periodic
	// checkpointing.
	IntervalSeconds float64
	// CheckpointSeconds maps a written checkpoint to its simulated
	// duration (cluster model + measured compression ratio).
	CheckpointSeconds func(info fti.Info) float64
	// RecoverySeconds maps the checkpoint being restored to the
	// simulated recovery duration.
	RecoverySeconds func(info fti.Info) float64

	// Failures injects fail-stop errors; nil disables them.
	Failures *failure.Injector
	// FailureSchedule, when non-empty, overrides Failures with an
	// explicit list of absolute failure times (ascending). Figure 9's
	// controlled 1-failure and 2-failure traces use it.
	FailureSchedule []float64

	// MaxIterations caps the run (defends against divergence).
	MaxIterations int
	// RecordResiduals retains the per-iteration residual trace
	// (Figure 9 needs it).
	RecordResiduals bool
}

// Event marks a failure in the trace.
type Event struct {
	SimSeconds float64
	Iteration  int // iterations executed when the failure struck
}

// Outcome reports one simulated run.
type Outcome struct {
	Converged          bool
	SimSeconds         float64 // total wall time Tt
	IterationsExecuted int     // solver steps actually performed
	// ConvergenceIterations is the paper's "number of convergence
	// iterations": the logical iteration index at convergence, which
	// rolls back to the checkpointed index on recovery (re-executed
	// work is not double counted). GMRES's occasional post-recovery
	// acceleration shows up here as a count *below* the failure-free
	// baseline (paper Fig. 8).
	ConvergenceIterations int
	Failures              int
	Checkpoints           int
	AbortedCheckpoints    int
	CheckpointTime        float64 // simulated seconds spent checkpointing
	RecoveryTime          float64 // simulated seconds spent recovering
	FailureEvents         []Event
	Residuals             []float64 // per executed iteration (optional)
	FinalResidual         float64
}

// Run executes the simulation to convergence or the iteration cap.
func Run(cfg Config) (*Outcome, error) {
	if cfg.Stepper == nil || cfg.Manager == nil {
		return nil, fmt.Errorf("sim: Stepper and Manager are required")
	}
	if cfg.TitSeconds <= 0 {
		return nil, fmt.Errorf("sim: TitSeconds must be positive")
	}
	if cfg.MaxIterations == 0 {
		cfg.MaxIterations = 1_000_000
	}
	if cfg.CheckpointSeconds == nil {
		cfg.CheckpointSeconds = func(fti.Info) float64 { return 0 }
	}
	if cfg.RecoverySeconds == nil {
		cfg.RecoverySeconds = func(fti.Info) float64 { return 0 }
	}

	out := &Outcome{}
	s := cfg.Stepper
	m := cfg.Manager

	t := 0.0
	lastCkptAt := 0.0
	logical := 0       // logical iteration index (paper's i)
	logicalAtCkpt := 0 // logical index captured by the latest checkpoint
	prevLogicalAtCkpt := 0
	schedule := append([]float64(nil), cfg.FailureSchedule...)
	drawFail := func(now float64) float64 {
		if len(schedule) > 0 {
			next := schedule[0]
			schedule = schedule[1:]
			if next <= now {
				next = now + 1e-9
			}
			return next
		}
		if cfg.Failures != nil {
			return cfg.Failures.Next(now)
		}
		return math.Inf(1)
	}
	nextFail := drawFail(0)

	// handleFailure advances the clock through the recovery (including
	// nested failures during recovery) and restores the solver.
	handleFailure := func() error {
		out.Failures++
		out.FailureEvents = append(out.FailureEvents, Event{SimSeconds: t, Iteration: out.IterationsExecuted})
		for {
			rec := cfg.RecoverySeconds(m.LastInfo())
			nextFail = drawFail(t)
			if t+rec <= nextFail {
				t += rec
				out.RecoveryTime += rec
				break
			}
			// Failure during recovery: the recovery restarts.
			wasted := nextFail - t
			t = nextFail
			out.RecoveryTime += wasted
			out.Failures++
			out.FailureEvents = append(out.FailureEvents, Event{SimSeconds: t, Iteration: out.IterationsExecuted})
		}
		if m.HasCheckpoint() {
			if _, err := m.Recover(); err != nil {
				return fmt.Errorf("sim: recovery: %w", err)
			}
			logical = logicalAtCkpt
		} else {
			m.RecoverFresh(cfg.X0)
			logical = 0
		}
		lastCkptAt = t // the interval clock restarts after recovery
		return nil
	}

	rnorm := s.ResidualNorm()
	for !s.Converged(rnorm) {
		if out.IterationsExecuted >= cfg.MaxIterations {
			break
		}

		// Periodic checkpoint (Algorithm 1/2 line 3), expressed in
		// simulated time as in the paper's optimal-interval runs.
		if cfg.IntervalSeconds > 0 && t-lastCkptAt >= cfg.IntervalSeconds {
			info, err := m.Checkpoint()
			if err != nil {
				return nil, fmt.Errorf("sim: checkpoint: %w", err)
			}
			prevLogicalAtCkpt, logicalAtCkpt = logicalAtCkpt, logical
			d := cfg.CheckpointSeconds(info)
			if t+d > nextFail {
				// The failure lands inside the checkpoint write: the
				// partial checkpoint is unusable.
				wasted := nextFail - t
				t = nextFail
				out.CheckpointTime += wasted
				out.AbortedCheckpoints++
				if err := m.AbortLastCheckpoint(); err != nil {
					return nil, fmt.Errorf("sim: abort checkpoint: %w", err)
				}
				logicalAtCkpt = prevLogicalAtCkpt
				if err := handleFailure(); err != nil {
					return nil, err
				}
				rnorm = s.ResidualNorm()
				continue
			}
			t += d
			out.CheckpointTime += d
			out.Checkpoints++
			lastCkptAt = t
		}

		// One iteration of simulated duration Tit.
		if t+cfg.TitSeconds > nextFail {
			// Failure mid-iteration: the step's work is lost.
			t = nextFail
			if err := handleFailure(); err != nil {
				return nil, err
			}
			rnorm = s.ResidualNorm()
			continue
		}
		rnorm = s.Step()
		out.IterationsExecuted++
		logical++
		t += cfg.TitSeconds
		if cfg.RecordResiduals {
			out.Residuals = append(out.Residuals, rnorm)
		}
	}

	out.Converged = s.Converged(rnorm)
	out.SimSeconds = t
	out.ConvergenceIterations = logical
	out.FinalResidual = rnorm
	return out, nil
}

// FaultToleranceOverhead computes the paper's metric: total running
// time minus the failure-free baseline's productive time.
func (o *Outcome) FaultToleranceOverhead(baselineSeconds float64) float64 {
	return o.SimSeconds - baselineSeconds
}
