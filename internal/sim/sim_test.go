package sim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/failure"
	"repro/internal/fti"
	"repro/internal/solver"
	"repro/internal/sparse"
	"repro/internal/sz"
	"repro/internal/vec"
)

// testSystem returns a Poisson system small enough for fast sim runs.
func testSystem() (*sparse.CSR, []float64, []float64) {
	a := sparse.Poisson2D(12)
	xe := sparse.SmoothField(a.Rows, 41)
	b := sparse.RHSForSolution(a, xe)
	return a, b, xe
}

func newManagedCG(t *testing.T, a *sparse.CSR, b []float64, scheme core.Scheme) (*solver.CG, *core.Manager) {
	t.Helper()
	s := solver.NewCG(a, nil, b, nil, solver.SeqSpace{}, solver.Options{RTol: 1e-9})
	m, err := core.NewManager(core.Config{
		Scheme:   scheme,
		SZParams: sz.Params{Mode: sz.PWRel, ErrorBound: 1e-4},
	}, fti.NewMemStorage(), s)
	if err != nil {
		t.Fatal(err)
	}
	return s, m
}

func TestFailureFreeRunMatchesDirectSolve(t *testing.T) {
	a, b, _ := testSystem()
	direct := solver.NewCG(a, nil, b, nil, solver.SeqSpace{}, solver.Options{RTol: 1e-9})
	resDirect, _ := solver.RunToConvergence(direct, solver.Options{MaxIter: 5000}, nil)

	s, m := newManagedCG(t, a, b, core.Traditional)
	out, err := Run(Config{
		Stepper:    s,
		Manager:    m,
		TitSeconds: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Converged {
		t.Fatal("sim did not converge")
	}
	if out.IterationsExecuted != resDirect.Iterations {
		t.Fatalf("sim executed %d iterations, direct solve %d",
			out.IterationsExecuted, resDirect.Iterations)
	}
	if out.SimSeconds != float64(resDirect.Iterations) {
		t.Fatalf("sim time %v, want %v", out.SimSeconds, float64(resDirect.Iterations))
	}
	if out.Failures != 0 || out.Checkpoints != 0 {
		t.Fatalf("failure-free run recorded %d failures, %d checkpoints", out.Failures, out.Checkpoints)
	}
}

func TestCheckpointsAtInterval(t *testing.T) {
	a, b, _ := testSystem()
	s, m := newManagedCG(t, a, b, core.Traditional)
	ckptCost := 5.0
	out, err := Run(Config{
		Stepper:           s,
		Manager:           m,
		TitSeconds:        1,
		IntervalSeconds:   10,
		CheckpointSeconds: func(fti.Info) float64 { return ckptCost },
	})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Converged {
		t.Fatal("did not converge")
	}
	if out.Checkpoints == 0 {
		t.Fatal("no checkpoints taken")
	}
	// Each 10 s window of compute triggers one 5 s checkpoint.
	wantTime := float64(out.IterationsExecuted) + float64(out.Checkpoints)*ckptCost
	if out.SimSeconds != wantTime {
		t.Fatalf("sim time %v, want %v", out.SimSeconds, wantTime)
	}
	if out.CheckpointTime != float64(out.Checkpoints)*ckptCost {
		t.Fatalf("checkpoint time %v", out.CheckpointTime)
	}
}

func TestFailuresForceRecoveryAndStillConverge(t *testing.T) {
	a, b, xe := testSystem()
	for _, scheme := range []core.Scheme{core.Traditional, core.Lossless, core.Lossy} {
		s, m := newManagedCG(t, a, b, scheme)
		out, err := Run(Config{
			Stepper:           s,
			Manager:           m,
			X0:                make([]float64, a.Rows),
			TitSeconds:        2,
			IntervalSeconds:   20,
			CheckpointSeconds: func(fti.Info) float64 { return 3 },
			RecoverySeconds:   func(fti.Info) float64 { return 4 },
			Failures:          failure.NewInjector(60, 7),
			MaxIterations:     100000,
		})
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		if !out.Converged {
			t.Fatalf("%v: did not converge", scheme)
		}
		if out.Failures == 0 {
			t.Fatalf("%v: expected injected failures (MTTI 60 s, run >> 60 s)", scheme)
		}
		if out.RecoveryTime <= 0 {
			t.Fatalf("%v: no recovery time accounted", scheme)
		}
		// The solution must still satisfy the tolerance-based
		// reproducibility claim (§4.4.4).
		diff := make([]float64, len(xe))
		vec.Sub(diff, s.X(), xe)
		if rel := vec.Norm2(diff) / vec.Norm2(xe); rel > 1e-5 {
			t.Fatalf("%v: solution error %g after failures", scheme, rel)
		}
	}
}

func TestLossyRunExecutesMoreIterationsThanTraditional(t *testing.T) {
	// CG's lossy restarts cost extra iterations (paper §4.4.3), while
	// traditional recovery replays only the rollback. Compare total
	// executed iterations under the same failure schedule.
	a, b, _ := testSystem()
	run := func(scheme core.Scheme) *Outcome {
		s, m := newManagedCG(t, a, b, scheme)
		out, err := Run(Config{
			Stepper:           s,
			Manager:           m,
			X0:                make([]float64, a.Rows),
			TitSeconds:        2,
			IntervalSeconds:   30,
			CheckpointSeconds: func(fti.Info) float64 { return 1 },
			RecoverySeconds:   func(fti.Info) float64 { return 1 },
			Failures:          failure.NewInjector(100, 11),
			MaxIterations:     100000,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !out.Converged {
			t.Fatalf("%v did not converge", scheme)
		}
		return out
	}
	trad := run(core.Traditional)
	lossy := run(core.Lossy)
	if lossy.IterationsExecuted < trad.IterationsExecuted {
		t.Fatalf("lossy executed %d < traditional %d — lossy restarts should not be cheaper in iterations",
			lossy.IterationsExecuted, trad.IterationsExecuted)
	}
}

func TestFailureBeforeFirstCheckpointRestartsFresh(t *testing.T) {
	a, b, _ := testSystem()
	// Loose tolerance so a failure-free window long enough to converge
	// is likely; every failure restarts from scratch (no checkpoints).
	s := solver.NewCG(a, nil, b, nil, solver.SeqSpace{}, solver.Options{RTol: 1e-3})
	m, err := core.NewManager(core.Config{
		Scheme:   core.Lossy,
		SZParams: sz.Params{Mode: sz.PWRel, ErrorBound: 1e-4},
	}, fti.NewMemStorage(), s)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Run(Config{
		Stepper:         s,
		Manager:         m,
		X0:              make([]float64, a.Rows),
		TitSeconds:      4,
		IntervalSeconds: 1e9, // never checkpoint
		RecoverySeconds: func(fti.Info) float64 { return 1 },
		Failures:        failure.NewInjector(120, 9), // seed 9: first failure at t≈1.1 s
		MaxIterations:   100000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Converged {
		t.Fatal("did not converge")
	}
	if out.Failures == 0 {
		t.Fatal("expected at least one failure")
	}
	if out.Checkpoints != 0 {
		t.Fatalf("no checkpoints expected, got %d", out.Checkpoints)
	}
}

func TestEventTrace(t *testing.T) {
	a, b, _ := testSystem()
	s, m := newManagedCG(t, a, b, core.Lossy)
	out, err := Run(Config{
		Stepper:         s,
		Manager:         m,
		X0:              make([]float64, a.Rows),
		TitSeconds:      5,
		IntervalSeconds: 25,
		RecoverySeconds: func(fti.Info) float64 { return 2 },
		Failures:        failure.NewInjector(80, 5),
		RecordResiduals: true,
		MaxIterations:   100000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Residuals) != out.IterationsExecuted {
		t.Fatalf("residual trace has %d entries for %d iterations",
			len(out.Residuals), out.IterationsExecuted)
	}
	if len(out.FailureEvents) != out.Failures {
		t.Fatalf("%d failure events for %d failures", len(out.FailureEvents), out.Failures)
	}
	for _, e := range out.FailureEvents {
		if e.SimSeconds < 0 || e.SimSeconds > out.SimSeconds {
			t.Fatalf("failure event outside run: %+v", e)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("missing stepper/manager must error")
	}
	a, b, _ := testSystem()
	s, m := newManagedCG(t, a, b, core.Traditional)
	if _, err := Run(Config{Stepper: s, Manager: m}); err == nil {
		t.Fatal("missing TitSeconds must error")
	}
}

func TestMaxIterationsCap(t *testing.T) {
	a, b, _ := testSystem()
	// Absurd tolerance so the solver never converges.
	s := solver.NewCG(a, nil, b, nil, solver.SeqSpace{}, solver.Options{RTol: 1e-300, ATol: 1e-300})
	m, err := core.NewManager(core.Config{Scheme: core.Traditional}, fti.NewMemStorage(), s)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Run(Config{Stepper: s, Manager: m, TitSeconds: 1, MaxIterations: 50})
	if err != nil {
		t.Fatal(err)
	}
	if out.Converged {
		t.Fatal("should not converge at rtol 1e-300")
	}
	if out.IterationsExecuted != 50 {
		t.Fatalf("executed %d, want cap 50", out.IterationsExecuted)
	}
}
