package sim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/failure"
	"repro/internal/fti"
)

// runSeeded executes one lossy CG sim with the given failure seed.
func runSeeded(t *testing.T, seed int64) *Outcome {
	t.Helper()
	a, b, _ := testSystem()
	s, m := newManagedCG(t, a, b, core.Lossy)
	out, err := Run(Config{
		Stepper:           s,
		Manager:           m,
		X0:                make([]float64, a.Rows),
		TitSeconds:        2,
		IntervalSeconds:   25,
		CheckpointSeconds: func(fti.Info) float64 { return 2 },
		RecoverySeconds:   func(fti.Info) float64 { return 3 },
		Failures:          failure.NewInjector(120, seed),
		MaxIterations:     200000,
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestSimDeterministicPerSeed: identical seeds must give bitwise
// identical outcomes — required for reproducible experiments.
func TestSimDeterministicPerSeed(t *testing.T) {
	a := runSeeded(t, 42)
	b := runSeeded(t, 42)
	if a.SimSeconds != b.SimSeconds ||
		a.IterationsExecuted != b.IterationsExecuted ||
		a.Failures != b.Failures ||
		a.Checkpoints != b.Checkpoints ||
		a.FinalResidual != b.FinalResidual {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a, b)
	}
}

// TestSimSeedsDiffer: different failure schedules should generally
// produce different outcomes.
func TestSimSeedsDiffer(t *testing.T) {
	a := runSeeded(t, 1)
	c := runSeeded(t, 2)
	if a.SimSeconds == c.SimSeconds && a.Failures == c.Failures &&
		a.IterationsExecuted == c.IterationsExecuted {
		t.Fatal("different seeds produced identical outcomes (suspicious)")
	}
}

// TestFailureScheduleExact: an explicit schedule fires exactly the
// listed failures.
func TestFailureScheduleExact(t *testing.T) {
	a, b, _ := testSystem()
	s, m := newManagedCG(t, a, b, core.Lossy)
	out, err := Run(Config{
		Stepper:           s,
		Manager:           m,
		X0:                make([]float64, a.Rows),
		TitSeconds:        2,
		IntervalSeconds:   20,
		CheckpointSeconds: func(fti.Info) float64 { return 1 },
		RecoverySeconds:   func(fti.Info) float64 { return 1 },
		FailureSchedule:   []float64{30, 70},
		MaxIterations:     200000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Converged {
		t.Fatal("did not converge")
	}
	if out.Failures != 2 {
		t.Fatalf("got %d failures, want exactly 2", out.Failures)
	}
	if len(out.FailureEvents) != 2 {
		t.Fatalf("events: %+v", out.FailureEvents)
	}
	// First failure at t=30: by then 1 checkpoint (t=20..21) and ~14
	// iterations have happened; event times must match the schedule.
	if out.FailureEvents[0].SimSeconds != 30 || out.FailureEvents[1].SimSeconds != 70 {
		t.Fatalf("failure times %+v, want 30 and 70", out.FailureEvents)
	}
}

// TestConvergenceIterationsNeverExceedExecuted: logical iterations
// roll back on failures, so they are bounded by executed steps.
func TestConvergenceIterationsNeverExceedExecuted(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		out := runSeeded(t, seed)
		if out.ConvergenceIterations > out.IterationsExecuted {
			t.Fatalf("seed %d: logical %d > executed %d",
				seed, out.ConvergenceIterations, out.IterationsExecuted)
		}
		if out.Failures == 0 && out.ConvergenceIterations != out.IterationsExecuted {
			t.Fatalf("seed %d: failure-free logical %d != executed %d",
				seed, out.ConvergenceIterations, out.IterationsExecuted)
		}
	}
}
